// Streaming: the online view of IS-GC decoding (Sec. V-A, Fig. 3).
//
// Gradients arrive at the master one at a time. A master that greedily
// commits to arrivals can get trapped: in CR(4, 2), taking W1's upload
// blocks both W2 and W4, which together would have recovered everything.
// The StreamDecoder re-optimizes after every arrival, so the master can
// stop as soon as enough of the gradient is decodable — an alternative to
// fixed-w waiting that adapts to how the race actually unfolds.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	icore "isgc/internal/isgc"
	"isgc/internal/placement"
)

func main() {
	p, err := placement.CR(8, 3)
	if err != nil {
		log.Fatal(err)
	}
	scheme := icore.New(p, 1)
	fmt.Println(p.Render())

	// Simulate arrivals in a random order (this is what exponential
	// straggling does to arrival order in expectation).
	rng := rand.New(rand.NewSource(7))
	order := rng.Perm(p.N())
	fmt.Printf("arrival order: %v\n\n", order)

	sd := icore.NewStreamDecoder(scheme)
	const targetFraction = 0.75
	target := int(targetFraction * float64(p.N()))
	for _, w := range order {
		if err := sd.Add(w); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("worker %d arrived: best set %v recovers %d/%d partitions\n",
			w, sd.Current().Slice(), sd.RecoveredPartitions(), p.N())
		if sd.RecoveredPartitions() >= target {
			fmt.Printf("\nreached the %d-partition target after %d arrivals — ignoring the remaining stragglers\n",
				target, sd.Arrived())
			break
		}
	}

	// The paper's Fig. 3 trap, replayed explicitly on CR(4, 2).
	fmt.Println("\n--- Fig. 3 trap on CR(4,2) ---")
	p4, err := placement.CR(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	sd4 := icore.NewStreamDecoder(icore.New(p4, 1))
	for _, w := range []int{0, 1, 3} { // W1 first, then W2 and W4 (0-indexed)
		if err := sd4.Add(w); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("after worker %d: best = %v (%d partitions)\n",
			w, sd4.Current().Slice(), sd4.RecoveredPartitions())
	}
	fmt.Println("worker 0 was dropped in favor of {1, 3} — greedy-by-arrival would have kept it")
}
