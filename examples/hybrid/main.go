// Hybrid: a Fig. 13-style exploration of the hybrid-repetition (HR)
// trade-off between FR and CR.
//
// With n = 8 workers, c = 4 partitions per worker and g = 2 groups, the
// family HR(8, c1, 4-c1) interpolates between CR (c1 = 0) and an
// FR-equivalent placement (c1 = 3, which equals c1 = 4 by the paper's
// equivalence). The program shows (a) the recovered-gradient fraction as a
// function of c1 for several w, and (b) the training loss after a fixed
// number of steps at w = 2 — both improve monotonically with c1.
//
// Run with: go run ./examples/hybrid
package main

import (
	"fmt"
	"log"

	"isgc"
	"isgc/internal/experiments"
)

func main() {
	// Part 1 — pure decode view via the public API: how much is recovered
	// from a fixed straggler pattern as c1 moves from CR toward FR.
	fmt.Println("Recovered fraction from availability {0, 3, 4, 7}:")
	for c1 := 0; c1 <= 3; c1++ {
		s, err := isgc.NewHR(8, c1, 4-c1, 2, 1)
		if err != nil {
			log.Fatal(err)
		}
		frac := s.RecoveredFraction([]int{0, 3, 4, 7})
		fmt.Printf("  %-22s -> %.2f\n", s, frac)
	}

	// Part 2 — the full experiment with straggler sampling and training
	// (the actual Fig. 13 reproduction).
	cfg := experiments.DefaultFig13()
	rows, curves, tables, err := experiments.Fig13(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	for _, tab := range tables {
		fmt.Println(tab.String())
	}

	// Headline numbers.
	for _, w := range cfg.Ws {
		cr := experiments.FindFig13Row(rows, 0, w)
		fr := experiments.FindFig13Row(rows, 3, w)
		fmt.Printf("w=%d: recovery CR-end %.3f -> FR-end %.3f\n", w, cr.Recovered, fr.Recovered)
	}
	for _, curve := range curves {
		fmt.Printf("c1=%d: final loss after %d steps at w=%d: %.4f\n",
			curve.C1, len(curve.Losses), cfg.LossW, curve.Losses[len(curve.Losses)-1])
	}
}
