// Distributed: a complete IS-GC training cluster over real TCP sockets —
// one master and four workers, all in one process for convenience (the
// cmd/isgc-master and cmd/isgc-worker binaries run the same protocol as
// separate processes).
//
// Two of the four workers are persistent stragglers with real sleeps, and a
// third *crashes outright* mid-run: at step 8 worker 3 dies without a
// farewell, exactly like a killed process. The master waits only for the
// two fastest uploads per step (the paper's ray.wait(w) gather), decodes
// with IS-GC over CR(4, 2), notices the death through its liveness layer,
// and keeps training on the survivors — CR(4, 2) tolerates the loss
// because every partition still has a live replica.
//
// The master also exposes its observability endpoint (Prometheus /metrics,
// JSON /healthz, /debug/pprof) on a loopback port; the example prints the
// URL and scrapes it once mid-run, right around the injected crash.
//
// With -events the run also writes a JSONL structured event log ("-" for
// stderr) — the crash shows up as master.worker_evicted — and -timeline
// writes a Chrome trace-event file to load in ui.perfetto.dev.
//
// Run with: go run ./examples/distributed
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"time"

	"isgc/internal/admin"
	"isgc/internal/checkpoint"
	"isgc/internal/cliconfig"
	"isgc/internal/cluster"
	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/events"
	icore "isgc/internal/isgc"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

func main() {
	eventsPath := flag.String("events", "", `write a JSONL structured event log to this path ("-" = stderr)`)
	timelinePath := flag.String("timeline", "", "write a Chrome trace-event file of the run to this path")
	wire := flag.String("wire", "binary", "wire codec for the gradient/params hot path: binary or gob")
	staleness := flag.Int("staleness", 0, "bounded staleness: wait for this many fewer workers and fold late gradients in as corrections (implies the pipelined loop)")
	gatherShards := flag.Int("gather-shards", 1, "split each worker's gradient upload across this many parallel lanes (binaryv2)")
	checkpointDir := flag.String("checkpoint-dir", "", "persist durable run snapshots in this directory (empty disables; restart the example with -restore to resume)")
	restore := flag.Bool("restore", false, "resume from the newest checkpoint in -checkpoint-dir")
	flag.Parse()
	const (
		n         = 4
		c         = 2
		w         = 2
		batch     = 8
		seed      = 42
		crashStep = 8
	)
	data, err := dataset.SyntheticClusters(240, 6, 3, 2.0, seed)
	if err != nil {
		log.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}

	place, err := placement.CR(n, c)
	if err != nil {
		log.Fatal(err)
	}
	strategy, err := engine.NewISGC(icore.New(place, seed))
	if err != nil {
		log.Fatal(err)
	}

	reg := metrics.NewRegistry()
	mm := cluster.NewMasterMetrics(reg)
	var ev *events.Log
	if *eventsPath != "" {
		log2, closer, err := cliconfig.OpenEventLog(*eventsPath, "info")
		if err != nil {
			log.Fatal(err)
		}
		if closer != nil {
			defer closer.Close()
		}
		ev = log2
	}
	var tl *events.Timeline
	if *timelinePath != "" {
		tl = events.NewTimeline(0)
	}
	var store *checkpoint.Store
	if *checkpointDir != "" {
		store, err = checkpoint.NewStore(*checkpointDir, checkpoint.DefaultRetain)
		if err != nil {
			log.Fatal(err)
		}
	}
	master, err := cluster.NewMaster(cluster.MasterConfig{
		Addr:            "127.0.0.1:0",
		Strategy:        strategy,
		Model:           mdl,
		Data:            data,
		LearningRate:    0.2,
		W:               w,
		MaxSteps:        30,
		LossThreshold:   0.05,
		Seed:            seed,
		Wire:            *wire,
		Staleness:       *staleness,
		LivenessTimeout: 2 * time.Second,
		Metrics:         mm,
		Events:          ev,
		Timeline:        tl,
		Checkpoint:      store,
		CheckpointEvery: 5,
		Restore:         *restore,
	})
	if err != nil {
		log.Fatal(err)
	}
	if store != nil {
		fmt.Printf("checkpointing every 5 steps into %s\n", *checkpointDir)
	}
	fmt.Printf("master listening on %s (%s, waiting for %d fastest of %d workers, wire=%s)\n",
		master.Addr(), place, w, n, *wire)

	// The master also serves live observability: Prometheus metrics,
	// a JSON liveness snapshot, and pprof. Scrape it while training runs:
	//   curl http://<addr>/metrics
	adm := admin.New(admin.Config{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Health:   func() any { return master.Health() },
		Events:   ev,
		Timeline: tl,
	})
	if err := adm.Start(); err != nil {
		log.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = adm.Shutdown(ctx)
	}()
	fmt.Printf("metrics at %s/metrics, health at %s/healthz\n", adm.URL(), adm.URL())

	// One scrape mid-run, right after the injected crash, to show the live
	// view a Prometheus server would collect. Failures only log:
	// observability must never take the training down.
	scraped := make(chan struct{})
	go func() {
		defer close(scraped)
		client := &http.Client{Timeout: time.Second}
		// Poll the health endpoint until the run has passed the crash step
		// (bounded: the run may finish first on a fast machine).
		var h cluster.MasterHealth
		sawRunning := false
		for i := 0; i < 200; i++ {
			resp, err := client.Get(adm.URL() + "/healthz")
			if err != nil {
				log.Printf("mid-run scrape: %v", err)
				return
			}
			err = json.NewDecoder(resp.Body).Decode(&h)
			resp.Body.Close()
			if err != nil {
				log.Printf("mid-run scrape: %v", err)
				return
			}
			sawRunning = sawRunning || h.Running
			if h.Step > crashStep || (sawRunning && !h.Running) {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		fmt.Printf("[scrape] step=%d alive=%d degraded_steps=%d\n",
			h.Step, h.AliveWorkers, h.DegradedSteps)
		resp, err := client.Get(adm.URL() + "/metrics")
		if err != nil {
			log.Printf("mid-run scrape: %v", err)
			return
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			log.Printf("mid-run scrape: %v", err)
			return
		}
		for _, line := range strings.Split(string(body), "\n") {
			if strings.HasPrefix(line, "isgc_master_recovered_fraction") ||
				strings.HasPrefix(line, "isgc_master_alive_workers") {
				fmt.Printf("[scrape] %s\n", line)
			}
		}
	}()

	parts, err := data.Partition(n)
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := place.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], batch, seed+int64(d)*7919)
				if err != nil {
					log.Fatal(err)
				}
			}
			// Workers 0 and 1 straggle: ~60ms of real sleep per upload.
			var delay straggler.Model
			if i < 2 {
				delay = straggler.Exponential{Mean: 60 * time.Millisecond}
			}
			// Worker 3 dies for real at crashStep — no farewell message.
			var fault straggler.Fault
			if i == 3 {
				fault = straggler.CrashAt{Step: crashStep}
			}
			worker, err := cluster.NewWorker(cluster.WorkerConfig{
				Addr:              master.Addr(),
				ID:                i,
				Partitions:        pids,
				Loaders:           loaders,
				Model:             mdl,
				Encode:            cluster.SumEncoder(),
				Delay:             delay,
				Wire:              *wire,
				GatherShards:      *gatherShards,
				DelaySeed:         int64(i),
				Fault:             fault,
				FaultSeed:         int64(i),
				HeartbeatInterval: 200 * time.Millisecond,
				Events:            ev,
				Timeline:          tl,
			})
			if err != nil {
				log.Fatal(err)
			}
			steps, err := worker.Run()
			if err != nil {
				log.Fatal(err)
			}
			if i == 3 {
				fmt.Printf("worker %d crashed after %d steps\n", i, steps)
				return
			}
			fmt.Printf("worker %d served %d steps\n", i, steps)
		}()
	}

	res, err := master.Run()
	if err != nil {
		log.Fatal(err)
	}
	wg.Wait()
	<-scraped
	if *timelinePath != "" {
		if err := tl.WriteFile(*timelinePath); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("timeline: wrote %s (load in ui.perfetto.dev)\n", *timelinePath)
	}

	fmt.Println()
	for _, rec := range res.Run.Records {
		mark := ""
		if rec.Degraded {
			mark = " DEGRADED"
		}
		fmt.Printf("step %2d: avail=%d alive=%d recovered=%.2f loss=%.4f elapsed=%v%s\n",
			rec.Step, rec.Available, rec.Alive, rec.RecoveredFraction, rec.Loss,
			rec.Elapsed.Round(time.Millisecond), mark)
	}
	fmt.Printf("\ntrained %d steps in %v (converged=%v, final loss %.4f, degraded steps %d)\n",
		res.Run.Steps(), res.Run.TotalTime().Round(time.Millisecond),
		res.Converged, res.Run.FinalLoss(), res.Run.DegradedSteps())
	fmt.Println("the master never waited for the slow workers 0 and 1, and kept")
	fmt.Printf("training after worker 3 died at step %d — arbitrary straggler\n", crashStep)
	fmt.Println("ignorance covers crashes, not just slowness.")
}
