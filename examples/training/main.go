// Training: a Fig. 12-style end-to-end comparison of the straggler
// mitigation schemes — Sync-SGD, classic GC, IS-SGD, and IS-GC over FR and
// CR — on a synthetic classification task with exponential stragglers.
//
// For each scheme the program trains to a fixed loss threshold and reports
// the four panels of the paper's Fig. 12: fraction of gradients recovered,
// steps to threshold, average step time, and total training time.
//
// Run with: go run ./examples/training
package main

import (
	"fmt"
	"log"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/gc"
	icore "isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

func main() {
	const (
		n         = 4
		c         = 2
		batch     = 1
		lr        = 0.2
		threshold = 0.30
		seed      = 7
	)
	data, err := dataset.SyntheticClusters(240, 6, 3, 1.0, seed)
	if err != nil {
		log.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}

	frPlace, err := placement.FR(n, c)
	if err != nil {
		log.Fatal(err)
	}
	crPlace, err := placement.CR(n, c)
	if err != nil {
		log.Fatal(err)
	}
	gcCode, err := gc.NewCR(n, c, seed)
	if err != nil {
		log.Fatal(err)
	}

	mustStrategy := func(st engine.Strategy, err error) engine.Strategy {
		if err != nil {
			log.Fatal(err)
		}
		return st
	}
	type entry struct {
		st engine.Strategy
		w  int
	}
	var entries []entry
	for w := 1; w <= n; w++ {
		entries = append(entries,
			entry{mustStrategy(engine.NewISSGD(n)), w},
			entry{mustStrategy(engine.NewISGC(icore.New(frPlace, seed))), w},
			entry{mustStrategy(engine.NewISGC(icore.New(crPlace, seed))), w},
		)
	}
	entries = append(entries,
		entry{mustStrategy(engine.NewSyncSGD(n)), n},
		entry{mustStrategy(engine.NewClassicGC(gcCode)), n - c + 1},
	)

	fmt.Printf("%-10s %-3s %-10s %-8s %-12s %-12s\n",
		"scheme", "w", "recovered", "steps", "step_time", "total_time")
	for _, e := range entries {
		res, err := engine.Train(engine.Config{
			Strategy:            e.st,
			Model:               mdl,
			Data:                data,
			BatchSize:           batch,
			LearningRate:        lr,
			W:                   e.w,
			MaxSteps:            3000,
			LossThreshold:       threshold,
			ComputePerPartition: 30 * time.Millisecond,
			Upload:              250 * time.Millisecond,
			Profile:             straggler.NewProfile(n, straggler.Exponential{Mean: 400 * time.Millisecond}, seed),
			Seed:                seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %-3d %-10.3f %-8d %-12v %-12v\n",
			e.st.Name(), e.w,
			res.Run.MeanRecovered(),
			res.StepsToThreshold,
			res.Run.MeanStepTime().Round(time.Millisecond),
			res.Run.TotalTime().Round(time.Millisecond))
	}
	fmt.Println("\nNote how IS-GC recovers more gradients than IS-SGD at every w,")
	fmt.Println("and how the total time is minimized at an intermediate w — the")
	fmt.Println("flexibility classic GC (fixed w = n-c+1) cannot offer.")
}
