// Controlplane: the elastic multi-job control plane end to end, in one
// process — a fleet of six worker agents, two concurrent IS-GC jobs with
// different schemes sharing that fleet, and a live re-placement drill: one
// of the second job's agents is killed abruptly mid-run, the plane detects
// the permanent eviction, quiesces the job at a step boundary, re-derives
// a smaller placement over the survivors, and resumes it warm from
// in-memory parameters while the first job keeps training untouched.
//
// The same topology runs as separate processes with:
//
//	isgc-master -controlplane -fleet-addr :7100 -metrics-addr :9100
//	isgc-worker -fleet 127.0.0.1:7100 &   # × 6
//	isgc-ctl -addr http://127.0.0.1:9100 submit -scheme cr -n 3 -c 2
//
// Run with: go run ./examples/controlplane
//
// With -admin ADDR the example also serves the observability surface —
// /debug/dash, /api/timeseries, /api/alerts — federated over both jobs,
// with a recovered-fraction SLO armed; -linger keeps the process (and the
// dashboard) up after the drill so CI can curl it.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"time"

	"isgc/internal/admin"
	"isgc/internal/cliconfig"
	"isgc/internal/controlplane"
	"isgc/internal/events"
	"isgc/internal/metrics"
	"isgc/internal/obs"
)

func main() {
	adminAddr := flag.String("admin", "", "serve the admin + dashboard surface on this address (empty disables)")
	linger := flag.Duration("linger", 0, "keep the process up this long after the drill (for smoke tests)")
	flag.Parse()

	ev := events.New(events.Config{MinLevel: events.LevelInfo, RingSize: 256})
	var (
		reg     *metrics.Registry
		tsStore *obs.Store
	)
	if *adminAddr != "" {
		reg = metrics.NewRegistry()
		tsStore = obs.NewStore(obs.StoreConfig{Interval: 250 * time.Millisecond})
		tsStore.Start()
		defer tsStore.Stop()
	}
	plane, err := controlplane.New(controlplane.Config{
		FleetAddr: "127.0.0.1:0",
		Events:    ev,
		Registry:  reg,
		Obs:       tsStore,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := plane.Start(); err != nil {
		log.Fatal(err)
	}
	defer plane.Stop()
	fmt.Printf("plane: fleet on %s\n", plane.FleetAddr())

	if *adminAddr != "" {
		tsStore.AddSource("plane", reg, nil)
		rules := obs.NewRules(obs.RulesConfig{
			Store:  tsStore,
			Events: ev,
			Rules: []obs.Rule{{
				Name:   "recovered-fraction-floor",
				Series: "isgc_master_recovered_fraction",
				Agg:    obs.AggLast,
				Window: 2 * time.Second,
				Op:     obs.OpBelow,
				Bound:  0.9,
			}},
		})
		rules.Start()
		defer rules.Stop()
		h := plane.Handler()
		adm := admin.New(admin.Config{
			Addr:       *adminAddr,
			Registry:   reg,
			Events:     ev,
			TimeSeries: tsStore,
			Alerts:     rules,
			Health: func() any {
				return map[string]any{"jobs": plane.Jobs(), "fleet": plane.FleetSnapshot()}
			},
			Extra: map[string]http.Handler{"/jobs": h, "/jobs/": h, "/fleet": h},
		})
		if err := adm.Start(); err != nil {
			log.Fatal(err)
		}
		defer func() {
			if *linger > 0 {
				fmt.Printf("lingering %v — dashboard stays on %s/debug/dash\n", *linger, adm.URL())
				time.Sleep(*linger)
			}
		}()
		fmt.Printf("dashboard: %s/debug/dash\n", adm.URL())
	}

	// Six agents join the shared pool.
	agents := make(map[string]*controlplane.Agent, 6)
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("agent-%d", i)
		a, err := controlplane.NewAgent(controlplane.AgentConfig{
			FleetAddr: plane.FleetAddr(),
			Name:      name,
		})
		if err != nil {
			log.Fatal(err)
		}
		agents[name] = a
		go func() { _ = a.Run() }()
	}

	// Two concurrent jobs share the fleet, three agents each. Job B runs
	// with tight liveness/permanence timeouts so the kill below turns into
	// a fast permanent eviction.
	jobA, err := plane.Submit(controlplane.JobSpec{
		Name:       "steady",
		Scheme:     cliconfig.SchemeSpec{Scheme: "cr", N: 3, C: 2},
		Data:       cliconfig.DefaultData(42),
		MaxSteps:   60,
		ComputePar: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Generation-0 delays slow job B down enough that the eviction timer
	// can beat the step cap; the replacement generation runs clean.
	jobB, err := plane.Submit(controlplane.JobSpec{
		Name:            "elastic",
		Scheme:          cliconfig.SchemeSpec{Scheme: "cr", N: 3, C: 2},
		Data:            cliconfig.DefaultData(7),
		MaxSteps:        80,
		ComputePar:      1,
		LivenessTimeout: 300 * time.Millisecond,
		PermanentAfter:  600 * time.Millisecond,
		Faults: []controlplane.WorkerFault{
			{Worker: 0, CrashAtStep: -1, Delay: 25 * time.Millisecond},
			{Worker: 1, CrashAtStep: -1, Delay: 25 * time.Millisecond},
			{Worker: 2, CrashAtStep: -1, Delay: 25 * time.Millisecond},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("submitted %s (steady) and %s (elastic)\n", jobA, jobB)

	// Wait until B is running, then kill one of its agents abruptly — no
	// farewell on either the fleet or the master connection.
	victim := waitForAgentOf(plane, agents, jobB)
	fmt.Printf("killing %s (assigned to %s) mid-run\n", victim, jobB)
	agents[victim].Kill()

	for _, id := range []string{jobA, jobB} {
		waitTerminal(plane, id)
	}
	for _, st := range plane.Jobs() {
		fmt.Printf("%s (%s): %s steps=%d/%d generations=%d replacements=%d final_loss=%.4f\n",
			st.ID, st.Name, st.State, st.Step, st.MaxSteps, st.Generation+1, st.Replacements, st.FinalLoss)
	}
	fmt.Println("\nreplacement events:")
	for _, e := range ev.Snapshot() {
		switch e.Type {
		case "plane.replacement_started", "plane.replacement_derived", "plane.replacement_completed":
			fmt.Printf("  %-28s %v\n", e.Type, e.Fields)
		}
	}
}

// waitForAgentOf blocks until the job is running with assigned workers and
// returns one of its agent names.
func waitForAgentOf(plane *controlplane.Plane, agents map[string]*controlplane.Agent, id string) string {
	for {
		st, ok := plane.Job(id)
		if ok && st.State == controlplane.JobRunning && len(st.Workers) > 0 && st.Step >= 3 {
			return st.Workers[len(st.Workers)-1].Agent
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func waitTerminal(plane *controlplane.Plane, id string) {
	for {
		st, _ := plane.Job(id)
		switch st.State {
		case controlplane.JobCompleted, controlplane.JobFailed, controlplane.JobKilled, controlplane.JobDrained:
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
