// Adaptive: the Sec. IV gather policies the paper sketches but does not
// evaluate — (1) an adaptive schedule that waits for few workers early and
// more workers near convergence ("receive gradients from fewer workers at
// the beginning to save time, and then from more workers afterwards"), and
// (2) a per-step deadline after which stragglers are simply ignored.
//
// Both run IS-GC over CR(4, 2) against the fixed-w policies under
// identical exponential stragglers and seeds.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/experiments"
	icore "isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

func main() {
	// Part 1 — the packaged ablation (averaged over trials).
	cfg := experiments.DefaultAblations()
	rows, tab, err := experiments.GatherPolicies(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tab.String())
	for _, r := range rows {
		fmt.Printf("%-22s recovered %.2f at %v/step, final loss %.4f\n",
			r.Policy, r.Recovered, r.StepTime.Round(time.Millisecond), r.FinalLoss)
	}

	// Part 2 — one annotated adaptive run, showing the ramp in action.
	data, err := dataset.SyntheticClusters(240, 6, 3, 1.0, 5)
	if err != nil {
		log.Fatal(err)
	}
	p, err := placement.CR(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	st, err := engine.NewISGC(icore.New(p, 5))
	if err != nil {
		log.Fatal(err)
	}
	const steps = 40
	res, err := engine.Train(engine.Config{
		Strategy:            st,
		Model:               model.SoftmaxRegression{Features: 6, Classes: 3},
		Data:                data,
		BatchSize:           2,
		LearningRate:        0.2,
		MaxSteps:            steps,
		ComputePerPartition: 30 * time.Millisecond,
		Upload:              250 * time.Millisecond,
		Profile:             straggler.NewProfile(4, straggler.Exponential{Mean: 400 * time.Millisecond}, 6),
		Seed:                5,
		WSchedule: func(step int) int {
			switch {
			case step < steps/3:
				return 1 // sprint: take whatever arrives first
			case step < 2*steps/3:
				return 2
			default:
				return 4 // polish: wait for everyone near convergence
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nadaptive ramp, one run:")
	for _, rec := range res.Run.Records {
		if rec.Step%5 == 0 {
			fmt.Printf("  step %2d: waited for %d workers, recovered %.2f, loss %.4f, %v\n",
				rec.Step, rec.Available, rec.RecoveredFraction, rec.Loss,
				rec.Elapsed.Round(time.Millisecond))
		}
	}
	fmt.Printf("total simulated time: %v\n", res.Run.TotalTime().Round(time.Millisecond))
}
