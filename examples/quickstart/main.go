// Quickstart: build an IS-GC scheme, lose some workers to stragglers, and
// see how much of the gradient the master still recovers.
//
// This walks the exact example of Fig. 1(d) in the paper: CR(4, 2) with two
// stragglers, where classic gradient coding (which tolerates only
// s = c-1 = 1 stragglers) would recover nothing, but IS-GC recovers the
// full gradient from the two surviving workers.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"isgc"
)

func main() {
	// CR(4, 2): worker i stores partitions {i, i+1 mod 4}.
	scheme, err := isgc.NewCR(4, 2, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scheme: %s\n", scheme)
	for i := 0; i < scheme.N(); i++ {
		fmt.Printf("  worker %d stores partitions %v\n", i, scheme.Partitions(i))
	}

	// Per-partition gradients (dimension 3 for the demo). In real training
	// these are the mini-batch gradients on each dataset partition.
	grads := [][]float64{
		{1, 0, 0},
		{0, 1, 0},
		{0, 0, 1},
		{1, 1, 1},
	}

	// Every worker uploads the plain SUM of its partitions' gradients —
	// that is the entire IS-GC encoding.
	coded := make([][]float64, scheme.N())
	for i := range coded {
		local := make([][]float64, scheme.C())
		for j, d := range scheme.Partitions(i) {
			local[j] = grads[d]
		}
		coded[i], err = scheme.EncodeLocal(i, local)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  worker %d uploads %v\n", i, coded[i])
	}

	// Workers 0 and 2 straggle; only 1 and 3 arrive (Fig. 1(d)).
	available := []int{1, 3}
	ghat, parts, chosen, err := scheme.DecodeAndAggregate(available, coded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\navailable workers: %v\n", available)
	fmt.Printf("decoder chose:     %v (maximum non-conflicting set)\n", chosen)
	fmt.Printf("recovered parts:   %v (%.0f%% of the gradient)\n",
		parts, 100*scheme.RecoveredFraction(available))
	fmt.Printf("recovered ĝ:       %v\n", ghat)

	// Compare: a greedy master that had committed to worker 0's upload
	// first could not add workers 1 or 3 (both conflict with 0) and would
	// recover only half the gradient.
	if n, err := scheme.Verify([]int{0, 2}); err == nil {
		fmt.Printf("\nthe other diagonal {0, 2} also recovers %d/4 partitions\n", n)
	}
	if _, err := scheme.Verify([]int{0, 1}); err != nil {
		fmt.Printf("{0, 1} is rejected: %v\n", err)
	}
}
