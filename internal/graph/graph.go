// Package graph provides the undirected-graph machinery behind IS-GC's
// conflict model: adjacency-bitset graphs, induced subgraphs, circulant
// graphs (Theorem 1 of the paper states the CR conflict graph is the
// circulant graph C_n^{1..c-1}), independence checks, and an exact
// maximum-independent-set solver used as the optimality oracle for the
// paper's linear-time decoders.
package graph

import (
	"fmt"

	"isgc/internal/bitset"
)

// Graph is an undirected graph on vertices 0..n-1 with adjacency stored as
// one bitset per vertex. The zero value is an empty graph with no vertices;
// use New to create a graph with a fixed vertex count.
type Graph struct {
	n   int
	adj []*bitset.Set
}

// New returns an edgeless graph on n vertices. n must be non-negative.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	g := &Graph{n: n, adj: make([]*bitset.Set, n)}
	for i := range g.adj {
		g.adj[i] = bitset.New(n)
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge (u, v). Self-loops are ignored, since
// a worker never conflicts with itself in the IS-GC model.
func (g *Graph) AddEdge(u, v int) {
	g.check(u)
	g.check(v)
	if u == v {
		return
	}
	g.adj[u].Add(v)
	g.adj[v].Add(u)
}

// HasEdge reports whether (u, v) is an edge.
func (g *Graph) HasEdge(u, v int) bool {
	g.check(u)
	g.check(v)
	return g.adj[u].Contains(v)
}

// Degree returns the number of neighbors of v.
func (g *Graph) Degree(v int) int {
	g.check(v)
	return g.adj[v].Len()
}

// Neighbors returns a copy of v's adjacency set.
func (g *Graph) Neighbors(v int) *bitset.Set {
	g.check(v)
	return g.adj[v].Clone()
}

// EdgeCount returns the number of undirected edges.
func (g *Graph) EdgeCount() int {
	total := 0
	for _, a := range g.adj {
		total += a.Len()
	}
	return total / 2
}

// Edges returns all undirected edges as ordered pairs (u < v).
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < g.n; u++ {
		g.adj[u].Range(func(v int) bool {
			if u < v {
				out = append(out, [2]int{u, v})
			}
			return true
		})
	}
	return out
}

// Clone returns an independent copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, adj: make([]*bitset.Set, g.n)}
	for i, a := range g.adj {
		c.adj[i] = a.Clone()
	}
	return c
}

// Equal reports whether g and o have the same vertex count and edge set.
func (g *Graph) Equal(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for i := range g.adj {
		if !g.adj[i].Equal(o.adj[i]) {
			return false
		}
	}
	return true
}

// SubgraphOf reports whether every edge of g is also an edge of o
// (both graphs must have the same vertex count).
func (g *Graph) SubgraphOf(o *Graph) bool {
	if g.n != o.n {
		return false
	}
	for i := range g.adj {
		if !g.adj[i].SubsetOf(o.adj[i]) {
			return false
		}
	}
	return true
}

// Induced returns the subgraph induced by the vertex set keep, preserving
// original vertex numbering: vertices outside keep become isolated and are
// excluded from independence computations via the availability mask.
//
// IS-GC decoders operate on G[W'] where W' is the set of non-straggling
// workers; representing the induced subgraph as (G, mask) keeps worker
// indices stable, which mirrors how the paper's algorithms address workers.
func (g *Graph) Induced(keep *bitset.Set) *Graph {
	c := New(g.n)
	keep.Range(func(u int) bool {
		a := g.adj[u].Clone()
		a.IntersectWith(keep)
		a.Range(func(v int) bool {
			c.AddEdge(u, v)
			return true
		})
		return true
	})
	return c
}

// IsIndependent reports whether set is an independent set of g: no two
// members are adjacent.
func (g *Graph) IsIndependent(set *bitset.Set) bool {
	ok := true
	set.Range(func(u int) bool {
		if u >= g.n {
			ok = false
			return false
		}
		if g.adj[u].Intersects(set) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// IsMaximalIndependent reports whether set is independent and no vertex of
// candidates\set can be added while preserving independence.
func (g *Graph) IsMaximalIndependent(set, candidates *bitset.Set) bool {
	if !g.IsIndependent(set) {
		return false
	}
	maximal := true
	candidates.Range(func(v int) bool {
		if set.Contains(v) {
			return true
		}
		if v < g.n && !g.adj[v].Intersects(set) {
			maximal = false
			return false
		}
		return true
	})
	return maximal
}

// Complement returns the complement graph on the same vertices.
func (g *Graph) Complement() *Graph {
	c := New(g.n)
	for u := 0; u < g.n; u++ {
		for v := u + 1; v < g.n; v++ {
			if !g.adj[u].Contains(v) {
				c.AddEdge(u, v)
			}
		}
	}
	return c
}

func (g *Graph) check(v int) {
	if v < 0 || v >= g.n {
		panic(fmt.Sprintf("graph: vertex %d out of range [0,%d)", v, g.n))
	}
}

// Circulant returns the circulant graph C_n^S: vertices 0..n-1 with u~v iff
// the circular distance min(|u-v|, n-|u-v|) is in S. Theorem 1 of the paper:
// the conflict graph of CR(n, c) is C_n^{1..c-1}.
func Circulant(n int, offsets []int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for _, d := range offsets {
			if d <= 0 || d >= n {
				continue
			}
			g.AddEdge(u, (u+d)%n)
		}
	}
	return g
}

// CirculantRange returns C_n^{1..k}: u~v iff circular distance ≤ k.
func CirculantRange(n, k int) *Graph {
	offsets := make([]int, 0, k)
	for d := 1; d <= k; d++ {
		offsets = append(offsets, d)
	}
	return Circulant(n, offsets)
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.AddEdge(u, v)
		}
	}
	return g
}

// IsClawFree reports whether g contains no induced K_{1,3} (claw): a
// vertex adjacent to three pairwise non-adjacent vertices. The paper's
// Sec. V-A cites the polynomial-time MIS algorithms for claw-free graphs
// [29-32] precisely because conflict graphs of cyclic placements are
// claw-free — a fact the placement tests verify through this predicate.
// O(n·d³) where d is the maximum degree.
func (g *Graph) IsClawFree() bool {
	for u := 0; u < g.n; u++ {
		nbrs := g.adj[u].Slice()
		for i := 0; i < len(nbrs); i++ {
			for j := i + 1; j < len(nbrs); j++ {
				if g.adj[nbrs[i]].Contains(nbrs[j]) {
					continue
				}
				for k := j + 1; k < len(nbrs); k++ {
					if !g.adj[nbrs[i]].Contains(nbrs[k]) && !g.adj[nbrs[j]].Contains(nbrs[k]) {
						return false // u;{i,j,k} is an induced claw
					}
				}
			}
		}
	}
	return true
}

// Components returns the connected components of g as sorted vertex
// slices, ordered by their smallest vertex. The FR conflict graph has
// exactly n/c components (its groups); CR with c ≥ 2 is connected — both
// facts are exercised in the placement tests.
func (g *Graph) Components() [][]int {
	seen := bitset.New(g.n)
	var out [][]int
	for v := 0; v < g.n; v++ {
		if seen.Contains(v) {
			continue
		}
		// Breadth-first flood from v.
		comp := []int{}
		frontier := []int{v}
		seen.Add(v)
		for len(frontier) > 0 {
			u := frontier[0]
			frontier = frontier[1:]
			comp = append(comp, u)
			g.adj[u].Range(func(w int) bool {
				if !seen.Contains(w) {
					seen.Add(w)
					frontier = append(frontier, w)
				}
				return true
			})
		}
		sortInts(comp)
		out = append(out, comp)
	}
	return out
}

func sortInts(xs []int) {
	// Insertion sort: component sizes here are small and this avoids an
	// extra import in a hot-path-free helper.
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// CircDist returns the circular distance min(|x-y|, n-|x-y|) between
// positions x and y on a cycle of n vertices. This is the d(x, y) used
// throughout Sec. V of the paper.
func CircDist(x, y, n int) int {
	d := x - y
	if d < 0 {
		d = -d
	}
	if n-d < d {
		return n - d
	}
	return d
}
