package graph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"isgc/internal/bitset"
)

func allVertices(n int) *bitset.Set {
	s := bitset.New(n)
	for i := 0; i < n; i++ {
		s.Add(i)
	}
	return s
}

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if rng.Float64() < p {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

func TestAddEdgeBasics(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 0) // duplicate, must be idempotent
	g.AddEdge(2, 2) // self-loop ignored
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Fatal("edge (0,1) missing or not symmetric")
	}
	if g.HasEdge(2, 2) {
		t.Fatal("self-loop must be ignored")
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatal("wrong degrees")
	}
}

func TestVertexRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on out-of-range vertex")
		}
	}()
	New(3).AddEdge(0, 3)
}

func TestEdgesListing(t *testing.T) {
	g := New(4)
	g.AddEdge(3, 1)
	g.AddEdge(0, 2)
	edges := g.Edges()
	if len(edges) != 2 {
		t.Fatalf("Edges len = %d, want 2", len(edges))
	}
	for _, e := range edges {
		if e[0] >= e[1] {
			t.Fatalf("edge %v not ordered u<v", e)
		}
	}
}

func TestCloneAndEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomGraph(rng, 12, 0.4)
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.AddEdge(0, 11)
	if g.HasEdge(0, 11) && !c.HasEdge(0, 11) {
		t.Fatal("clone mutation leaked")
	}
}

func TestSubgraphOf(t *testing.T) {
	small := New(5)
	small.AddEdge(0, 1)
	big := small.Clone()
	big.AddEdge(2, 3)
	if !small.SubgraphOf(big) {
		t.Fatal("small ⊆ big expected")
	}
	if big.SubgraphOf(small) {
		t.Fatal("big ⊄ small expected")
	}
	if small.SubgraphOf(New(4)) {
		t.Fatal("different vertex counts must not be subgraphs")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := New(5)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	keep := bitset.FromSlice([]int{0, 1, 3})
	ind := g.Induced(keep)
	if !ind.HasEdge(0, 1) {
		t.Fatal("edge (0,1) must survive induction")
	}
	if ind.HasEdge(1, 2) || ind.HasEdge(3, 4) {
		t.Fatal("edges to excluded vertices must not survive")
	}
	if ind.EdgeCount() != 1 {
		t.Fatalf("induced EdgeCount = %d, want 1", ind.EdgeCount())
	}
}

func TestIsIndependent(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	if !g.IsIndependent(bitset.FromSlice([]int{0, 2, 3})) {
		t.Fatal("{0,2,3} should be independent")
	}
	if g.IsIndependent(bitset.FromSlice([]int{0, 1})) {
		t.Fatal("{0,1} should not be independent")
	}
	if g.IsIndependent(bitset.FromSlice([]int{5})) {
		t.Fatal("sets with out-of-range vertices are not independent sets of g")
	}
}

func TestIsMaximalIndependent(t *testing.T) {
	g := New(4) // path 0-1-2-3
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	all := allVertices(4)
	if !g.IsMaximalIndependent(bitset.FromSlice([]int{0, 2}), all) {
		t.Fatal("{0,2} should be maximal")
	}
	if g.IsMaximalIndependent(bitset.FromSlice([]int{0}), all) {
		t.Fatal("{0} is not maximal: 2 or 3 can be added")
	}
	if g.IsMaximalIndependent(bitset.FromSlice([]int{0, 1}), all) {
		t.Fatal("a dependent set is never maximal independent")
	}
}

func TestComplement(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	c := g.Complement()
	if c.HasEdge(0, 1) || !c.HasEdge(0, 2) || !c.HasEdge(1, 2) {
		t.Fatal("wrong complement")
	}
	if got := g.EdgeCount() + c.EdgeCount(); got != 3 {
		t.Fatalf("edge counts must sum to C(3,2)=3, got %d", got)
	}
}

func TestCirculant(t *testing.T) {
	// C_6^{1,2}: each vertex adjacent to ±1, ±2.
	g := CirculantRange(6, 2)
	for u := 0; u < 6; u++ {
		if g.Degree(u) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", u, g.Degree(u))
		}
	}
	if !g.HasEdge(0, 2) || g.HasEdge(0, 3) {
		t.Fatal("wrong circulant adjacency")
	}
	// Offsets outside (0, n) are ignored.
	g2 := Circulant(4, []int{0, 4, 7, 1})
	if g2.EdgeCount() != 4 {
		t.Fatalf("C_4^{1} EdgeCount = %d, want 4", g2.EdgeCount())
	}
}

func TestComplete(t *testing.T) {
	g := Complete(5)
	if g.EdgeCount() != 10 {
		t.Fatalf("K_5 EdgeCount = %d, want 10", g.EdgeCount())
	}
}

func TestIsClawFree(t *testing.T) {
	// The claw K_{1,3} itself.
	claw := New(4)
	claw.AddEdge(0, 1)
	claw.AddEdge(0, 2)
	claw.AddEdge(0, 3)
	if claw.IsClawFree() {
		t.Fatal("K_{1,3} must be detected as a claw")
	}
	// Complete graphs and cycles are claw-free.
	if !Complete(5).IsClawFree() {
		t.Error("K_5 is claw-free")
	}
	if !CirculantRange(7, 1).IsClawFree() {
		t.Error("C_7 is claw-free")
	}
	// A claw embedded in a larger graph.
	g := New(6)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	g.AddEdge(2, 5)
	g.AddEdge(0, 1)
	if g.IsClawFree() {
		t.Fatal("embedded claw not found")
	}
	// Edgeless graphs are trivially claw-free.
	if !New(4).IsClawFree() {
		t.Error("edgeless graph is claw-free")
	}
}

// Sec. V-A connection: circulant graphs C_n^{1..k} (the CR conflict
// graphs by Theorem 1) are claw-free — the structural reason the paper
// can cite polynomial-time claw-free MIS algorithms as a fallback.
func TestCirculantRangeIsClawFree(t *testing.T) {
	for n := 3; n <= 16; n++ {
		for k := 1; k < n; k++ {
			if !CirculantRange(n, k).IsClawFree() {
				t.Errorf("C_%d^{1..%d} should be claw-free", n, k)
			}
		}
	}
}

func TestComponents(t *testing.T) {
	// Two triangles plus an isolated vertex.
	g := New(7)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	g.AddEdge(3, 5)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("components = %v, want 3", comps)
	}
	want := [][]int{{0, 1, 2}, {3, 4, 5}, {6}}
	for i, w := range want {
		if len(comps[i]) != len(w) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], w)
		}
		for j := range w {
			if comps[i][j] != w[j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], w)
			}
		}
	}
	// Vertices are covered exactly once.
	total := 0
	for _, c := range comps {
		total += len(c)
	}
	if total != 7 {
		t.Fatalf("components cover %d vertices, want 7", total)
	}
}

func TestComponentsStructuralFacts(t *testing.T) {
	// FR-style disjoint cliques: k groups of size c ⇒ k components.
	for _, tc := range []struct{ k, c int }{{2, 2}, {3, 3}, {4, 2}} {
		g := New(tc.k * tc.c)
		for grp := 0; grp < tc.k; grp++ {
			for u := grp * tc.c; u < (grp+1)*tc.c; u++ {
				for v := u + 1; v < (grp+1)*tc.c; v++ {
					g.AddEdge(u, v)
				}
			}
		}
		if got := len(g.Components()); got != tc.k {
			t.Errorf("k=%d c=%d: %d components, want %d", tc.k, tc.c, got, tc.k)
		}
	}
	// Circulant with c ≥ 2 (distance-1 edges present) is connected.
	if got := len(CirculantRange(9, 2).Components()); got != 1 {
		t.Errorf("C_9^{1,2} has %d components, want 1", got)
	}
}

func TestCircDist(t *testing.T) {
	cases := []struct{ x, y, n, want int }{
		{0, 0, 5, 0},
		{0, 1, 5, 1},
		{0, 4, 5, 1},
		{0, 2, 5, 2},
		{1, 7, 8, 2},
		{3, 3, 8, 0},
	}
	for _, c := range cases {
		if got := CircDist(c.x, c.y, c.n); got != c.want {
			t.Errorf("CircDist(%d,%d,%d) = %d, want %d", c.x, c.y, c.n, got, c.want)
		}
		if got := CircDist(c.y, c.x, c.n); got != c.want {
			t.Errorf("CircDist symmetric (%d,%d,%d) = %d, want %d", c.y, c.x, c.n, got, c.want)
		}
	}
}

func bruteForceAlpha(g *Graph, avail *bitset.Set) int {
	vs := avail.Slice()
	best := 0
	for mask := 0; mask < 1<<len(vs); mask++ {
		set := bitset.New(g.N())
		for i, v := range vs {
			if mask&(1<<i) != 0 {
				set.Add(v)
			}
		}
		if g.IsIndependent(set) && set.Len() > best {
			best = set.Len()
		}
	}
	return best
}

func TestMISAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 3 + rng.Intn(10)
		g := randomGraph(rng, n, 0.35)
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.8 {
				avail.Add(v)
			}
		}
		got := MaxIndependentSet(g, avail)
		if !got.SubsetOf(avail) {
			t.Fatalf("MIS %v not within availability %v", got, avail)
		}
		if !g.IsIndependent(got) {
			t.Fatalf("MIS %v not independent", got)
		}
		want := bruteForceAlpha(g, avail)
		if got.Len() != want {
			t.Fatalf("n=%d trial=%d: MIS size %d, brute force %d", n, trial, got.Len(), want)
		}
	}
}

func TestMISNilAvailability(t *testing.T) {
	g := Complete(4)
	if got := IndependenceNumber(g, nil); got != 1 {
		t.Fatalf("α(K_4) = %d, want 1", got)
	}
	if got := IndependenceNumber(New(4), nil); got != 4 {
		t.Fatalf("α(edgeless) = %d, want 4", got)
	}
}

func TestMISKnownGraphs(t *testing.T) {
	// α(C_n cycle) = floor(n/2).
	for n := 3; n <= 9; n++ {
		g := CirculantRange(n, 1)
		if got := IndependenceNumber(g, nil); got != n/2 {
			t.Errorf("α(C_%d) = %d, want %d", n, got, n/2)
		}
	}
	// α(C_n^{1..c-1}) = floor(n/c): circle packing with separation c.
	for _, tc := range []struct{ n, c int }{{6, 2}, {8, 3}, {10, 4}, {12, 5}, {7, 3}} {
		g := CirculantRange(tc.n, tc.c-1)
		if got := IndependenceNumber(g, nil); got != tc.n/tc.c {
			t.Errorf("α(C_%d^{1..%d}) = %d, want %d", tc.n, tc.c-1, got, tc.n/tc.c)
		}
	}
}

func TestGreedyIndependentSetIsMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(12)
		g := randomGraph(rng, n, 0.3)
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.7 {
				avail.Add(v)
			}
		}
		got := GreedyIndependentSet(g, avail)
		if !got.SubsetOf(avail) {
			t.Fatal("greedy set not within availability")
		}
		if !g.IsMaximalIndependent(got, avail) && !avail.Empty() {
			t.Fatalf("greedy set %v not maximal in G[%v]", got, avail)
		}
	}
}

// Property: α of an induced subgraph never exceeds α of the graph.
func TestQuickAlphaMonotoneUnderInduction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := randomGraph(rng, n, 0.4)
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.6 {
				avail.Add(v)
			}
		}
		return IndependenceNumber(g, avail) <= IndependenceNumber(g, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding edges never increases the independence number
// (this is the mechanism behind Theorem 4 in the paper).
func TestQuickAlphaAntitoneInEdges(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := randomGraph(rng, n, 0.25)
		g2 := g.Clone()
		for i := 0; i < 3; i++ {
			g2.AddEdge(rng.Intn(n), rng.Intn(n))
		}
		return IndependenceNumber(g2, nil) <= IndependenceNumber(g, nil)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
