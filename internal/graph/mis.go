package graph

import (
	"isgc/internal/bitset"
)

// MaxIndependentSet returns one maximum independent set of the subgraph of g
// induced by the available vertices, using an exact branch-and-bound search.
// It is exponential in the worst case and intended as a correctness oracle
// (and for small decode instances), not as the production decoder; the
// paper's point is precisely that FR/CR/HR admit linear-time exact decoders
// even though MIS is NP-hard in general (Sec. V-A).
//
// If available is nil, all vertices are considered available.
func MaxIndependentSet(g *Graph, available *bitset.Set) *bitset.Set {
	cand := bitset.New(g.n)
	if available == nil {
		for v := 0; v < g.n; v++ {
			cand.Add(v)
		}
	} else {
		available.Range(func(v int) bool {
			if v < g.n {
				cand.Add(v)
			}
			return true
		})
	}
	s := &misSolver{g: g, best: bitset.New(g.n)}
	s.search(cand, bitset.New(g.n))
	return s.best
}

// IndependenceNumber returns α(G[available]), the size of a maximum
// independent set of the induced subgraph.
func IndependenceNumber(g *Graph, available *bitset.Set) int {
	return MaxIndependentSet(g, available).Len()
}

type misSolver struct {
	g    *Graph
	best *bitset.Set
}

// search explores candidate extensions of the current independent set.
// Branching rule: pick a candidate vertex v of maximum degree within the
// candidate set; either include v (removing its closed neighborhood) or
// exclude it. Bound: |current| + |candidates| ≤ |best| prunes the branch.
func (s *misSolver) search(cand, cur *bitset.Set) {
	if cur.Len() > s.best.Len() {
		s.best = cur.Clone()
	}
	if cand.Empty() || cur.Len()+cand.Len() <= s.best.Len() {
		return
	}

	// Choose the branching vertex: highest degree inside cand, so the
	// "include" branch removes the most candidates.
	v, vdeg := -1, -1
	cand.Range(func(u int) bool {
		d := s.g.adj[u].IntersectionCount(cand)
		if d > vdeg {
			v, vdeg = u, d
		}
		return true
	})

	if vdeg == 0 {
		// No edges remain among candidates: take them all.
		union := cur.Clone()
		union.UnionWith(cand)
		if union.Len() > s.best.Len() {
			s.best = union
		}
		return
	}

	// Branch 1: include v.
	inCand := cand.Clone()
	inCand.Remove(v)
	inCand.DifferenceWith(s.g.adj[v])
	inCur := cur.Clone()
	inCur.Add(v)
	s.search(inCand, inCur)

	// Branch 2: exclude v.
	exCand := cand.Clone()
	exCand.Remove(v)
	s.search(exCand, cur)
}

// GreedyIndependentSet returns a maximal (not necessarily maximum)
// independent set of G[available] built by repeatedly taking the available
// vertex of minimum degree. This is the generic baseline the paper's
// scheme-specific decoders improve on.
func GreedyIndependentSet(g *Graph, available *bitset.Set) *bitset.Set {
	cand := bitset.New(g.n)
	if available == nil {
		for v := 0; v < g.n; v++ {
			cand.Add(v)
		}
	} else {
		available.Range(func(v int) bool {
			if v < g.n {
				cand.Add(v)
			}
			return true
		})
	}
	out := bitset.New(g.n)
	for !cand.Empty() {
		v, vdeg := -1, int(^uint(0)>>1)
		cand.Range(func(u int) bool {
			d := g.adj[u].IntersectionCount(cand)
			if d < vdeg {
				v, vdeg = u, d
			}
			return true
		})
		out.Add(v)
		cand.Remove(v)
		cand.DifferenceWith(g.adj[v])
	}
	return out
}
