package placement

import (
	"strconv"
	"strings"
	"testing"
)

func TestRenderCR(t *testing.T) {
	p := mustCR(t, 4, 2)
	out := p.Render()
	if !strings.Contains(out, "CR(n=4,c=2)") {
		t.Errorf("missing caption:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// caption + header + c rows.
	if len(lines) != 2+2 {
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[1], "W0") || !strings.Contains(lines[1], "W3") {
		t.Errorf("header wrong: %q", lines[1])
	}
	// Worker 3 of CR(4,2) stores {0, 3}: the first data row must show D0
	// in the last column.
	if !strings.HasSuffix(strings.TrimRight(lines[2], " "), "D0") {
		t.Errorf("row 0 = %q, want trailing D0 (worker 3's first partition)", lines[2])
	}
}

func TestRenderFRShowsGroupSeparators(t *testing.T) {
	p := mustFR(t, 4, 2)
	out := p.Render()
	if !strings.Contains(out, "|") {
		t.Errorf("FR render should mark group boundaries:\n%s", out)
	}
	// CR (single group) must not.
	if strings.Contains(mustCR(t, 4, 2).Render(), "|") {
		t.Error("CR render must not contain group separators")
	}
}

func TestRenderHR(t *testing.T) {
	p := mustHR(t, 8, 2, 2, 2)
	out := p.Render()
	if !strings.Contains(out, "HR(n=8,c1=2,c2=2,g=2)") {
		t.Errorf("missing caption:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+4 { // caption + header + c=4 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestRenderConflicts(t *testing.T) {
	p := mustCR(t, 4, 2)
	out := p.RenderConflicts()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 2+4 { // caption + column header + 4 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Row for worker 0: conflicts with 1 and 3, not 2; diagonal is '\'.
	row0 := lines[2]
	if !strings.Contains(row0, "\\") {
		t.Errorf("diagonal marker missing: %q", row0)
	}
	if strings.Count(row0, "#") != 2 {
		t.Errorf("worker 0 should conflict with exactly 2 workers: %q", row0)
	}
	if strings.Count(row0, ".") != 1 {
		t.Errorf("worker 0 should be independent of exactly 1 worker: %q", row0)
	}
}

// The rendered grid is a faithful projection of the placement: parse it
// back and compare.
func TestRenderRoundTripsPartitions(t *testing.T) {
	p := mustHR(t, 8, 3, 1, 2)
	lines := strings.Split(strings.TrimRight(p.Render(), "\n"), "\n")
	for r := 0; r < p.C(); r++ {
		cells := strings.Fields(strings.ReplaceAll(lines[2+r], "|", " "))
		if len(cells) != p.N() {
			t.Fatalf("row %d has %d cells, want %d: %q", r, len(cells), p.N(), lines[2+r])
		}
		for i, cell := range cells {
			want := p.Partitions(i)[r]
			got, err := strconv.Atoi(strings.TrimPrefix(cell, "D"))
			if err != nil {
				t.Fatalf("cell %q: %v", cell, err)
			}
			if got != want {
				t.Fatalf("worker %d row %d: rendered D%d, placement says D%d", i, r, got, want)
			}
		}
	}
}
