package placement

import (
	"math/rand"
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/graph"
)

func mustFR(t *testing.T, n, c int) *Placement {
	t.Helper()
	p, err := FR(n, c)
	if err != nil {
		t.Fatalf("FR(%d,%d): %v", n, c, err)
	}
	return p
}

func mustCR(t *testing.T, n, c int) *Placement {
	t.Helper()
	p, err := CR(n, c)
	if err != nil {
		t.Fatalf("CR(%d,%d): %v", n, c, err)
	}
	return p
}

func mustHR(t *testing.T, n, c1, c2, g int) *Placement {
	t.Helper()
	p, err := HR(n, c1, c2, g)
	if err != nil {
		t.Fatalf("HR(%d,%d,%d,%d): %v", n, c1, c2, g, err)
	}
	return p
}

// hrParams enumerates valid HR parameter combinations for property tests:
// g|n, c = c1+c2, c1 > 0, c ≤ n0 ≤ min(2c-1, c+c1), c1 ≤ n0 (Theorem 6).
func hrParams(maxN int) [][4]int {
	var out [][4]int
	for n := 4; n <= maxN; n++ {
		for g := 1; g <= n; g++ {
			if n%g != 0 {
				continue
			}
			n0 := n / g
			for c := 2; c <= n0; c++ {
				if n0 > 2*c-1 {
					continue
				}
				lo := 1
				if n0-c > lo {
					lo = n0 - c
				}
				for c1 := lo; c1 <= c && c1 <= n0; c1++ {
					out = append(out, [4]int{n, c1, c - c1, g})
				}
			}
		}
	}
	return out
}

func TestFRPlacementExample(t *testing.T) {
	// Fig. 2(a): n=4, c=2 — W1,W2 hold {D1,D2}; W3,W4 hold {D3,D4}
	// (0-indexed here).
	p := mustFR(t, 4, 2)
	want := [][]int{{0, 1}, {0, 1}, {2, 3}, {2, 3}}
	for i, w := range want {
		got := p.Partitions(i)
		if len(got) != len(w) || got[0] != w[0] || got[1] != w[1] {
			t.Errorf("FR worker %d partitions = %v, want %v", i, got, w)
		}
	}
	if p.Groups() != 2 || p.GroupSize() != 2 {
		t.Errorf("Groups=%d GroupSize=%d, want 2, 2", p.Groups(), p.GroupSize())
	}
	if p.GroupOf(0) != 0 || p.GroupOf(3) != 1 {
		t.Error("wrong GroupOf")
	}
}

func TestCRPlacementExample(t *testing.T) {
	// Fig. 2(b): n=4, c=2 — W_i holds {D_i, D_{i+1 mod 4}}.
	p := mustCR(t, 4, 2)
	want := [][]int{{0, 1}, {1, 2}, {2, 3}, {0, 3}}
	for i, w := range want {
		got := p.Partitions(i)
		if len(got) != 2 || got[0] != w[0] || got[1] != w[1] {
			t.Errorf("CR worker %d partitions = %v, want %v", i, got, w)
		}
	}
}

func TestConstructorErrors(t *testing.T) {
	cases := []struct {
		name string
		fn   func() (*Placement, error)
	}{
		{"FR c∤n", func() (*Placement, error) { return FR(5, 2) }},
		{"FR n=0", func() (*Placement, error) { return FR(0, 1) }},
		{"FR c=0", func() (*Placement, error) { return FR(4, 0) }},
		{"FR c>n", func() (*Placement, error) { return FR(4, 5) }},
		{"CR c=0", func() (*Placement, error) { return CR(4, 0) }},
		{"CR c>n", func() (*Placement, error) { return CR(4, 5) }},
		{"CR n<0", func() (*Placement, error) { return CR(-1, 1) }},
		{"HR g∤n", func() (*Placement, error) { return HR(8, 2, 1, 3) }},
		{"HR g=0", func() (*Placement, error) { return HR(8, 2, 1, 0) }},
		{"HR c1<0", func() (*Placement, error) { return HR(8, -1, 3, 2) }},
		{"HR n0>2c-1", func() (*Placement, error) { return HR(12, 1, 1, 2) }},            // n0=6, c=2
		{"HR n0<c", func() (*Placement, error) { return HR(8, 3, 3, 2) }},                // n0=4, c=6
		{"HR c1>n0", func() (*Placement, error) { return HR(8, 5, 0, 2) }},               // c1=5 > n0=4
		{"HR n0>c+c1", func() (*Placement, error) { return HR(15, 1, 2, 3) }},            // n0=5 > c+c1=4
		{"HR c=0", func() (*Placement, error) { return HR(8, 0, 0, 2) }},                 // c=0
		{"HR c1=0 g∤n ok but c>n", func() (*Placement, error) { return HR(4, 0, 5, 2) }}, // CR(4,5)
	}
	for _, tc := range cases {
		if _, err := tc.fn(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestEachWorkerStoresCPartitions(t *testing.T) {
	var ps []*Placement
	ps = append(ps, mustFR(t, 12, 3), mustCR(t, 12, 3), mustCR(t, 7, 3))
	for _, q := range hrParams(16) {
		ps = append(ps, mustHR(t, q[0], q[1], q[2], q[3]))
	}
	for _, p := range ps {
		for i := 0; i < p.N(); i++ {
			if got := len(p.Partitions(i)); got != p.C() {
				t.Errorf("%v: worker %d stores %d partitions, want %d", p, i, got, p.C())
			}
		}
	}
}

func TestEachPartitionReplicatedCTimes(t *testing.T) {
	// In all three schemes every partition is stored on exactly c workers,
	// which is what makes per-partition recovery probability uniform
	// (the fairness property of Sec. IV).
	var ps []*Placement
	ps = append(ps, mustFR(t, 12, 4), mustCR(t, 11, 4))
	for _, q := range hrParams(16) {
		ps = append(ps, mustHR(t, q[0], q[1], q[2], q[3]))
	}
	for _, p := range ps {
		for d, holders := range p.Workers() {
			if len(holders) != p.C() {
				t.Errorf("%v: partition %d on %d workers (%v), want %d", p, d, len(holders), holders, p.C())
			}
		}
	}
}

func TestConflictMatchesSharedPartition(t *testing.T) {
	// Ground-truth conflict graph: edge iff partition sets intersect.
	p := mustCR(t, 6, 2)
	if !p.Conflicts(0, 1) {
		t.Error("CR(6,2): workers 0,1 share partition 1, must conflict")
	}
	if p.Conflicts(0, 2) {
		t.Error("CR(6,2): workers 0,2 are disjoint, must not conflict")
	}
	if p.Conflicts(3, 3) {
		t.Error("a worker never conflicts with itself")
	}
}

// Theorem 1: the conflict graph of CR(n, c) is the circulant C_n^{1..c-1}.
func TestTheorem1CRConflictIsCirculant(t *testing.T) {
	for n := 2; n <= 20; n++ {
		for c := 1; c <= n; c++ {
			p := mustCR(t, n, c)
			want := graph.CirculantRange(n, c-1)
			if !p.ConflictGraph().Equal(want) {
				t.Fatalf("CR(%d,%d): conflict graph differs from C_%d^{1..%d}", n, c, n, c-1)
			}
		}
	}
}

// FR conflict graph = disjoint c-cliques.
func TestFRConflictIsGroupCliques(t *testing.T) {
	for _, tc := range []struct{ n, c int }{{4, 2}, {12, 3}, {12, 4}, {10, 5}, {6, 1}, {6, 6}} {
		p := mustFR(t, tc.n, tc.c)
		g := p.ConflictGraph()
		for u := 0; u < tc.n; u++ {
			for v := u + 1; v < tc.n; v++ {
				want := u/tc.c == v/tc.c
				if g.HasEdge(u, v) != want {
					t.Fatalf("FR(%d,%d): edge(%d,%d) = %v, want %v", tc.n, tc.c, u, v, g.HasEdge(u, v), want)
				}
			}
		}
	}
}

// The structural (parameter-only) conflict predicates must agree with the
// ground truth derived from actual partition intersections, for all schemes.
// For HR this validates our reconstruction of Alg. 4's CONFLICT function.
func TestStructuralConflictMatchesGroundTruth(t *testing.T) {
	var ps []*Placement
	for n := 2; n <= 14; n++ {
		for c := 1; c <= n; c++ {
			ps = append(ps, mustCR(t, n, c))
			if n%c == 0 {
				ps = append(ps, mustFR(t, n, c))
			}
		}
	}
	for _, q := range hrParams(20) {
		ps = append(ps, mustHR(t, q[0], q[1], q[2], q[3]))
	}
	for _, p := range ps {
		if !p.StructuralConflictGraph().Equal(p.ConflictGraph()) {
			t.Fatalf("%v: structural conflict graph differs from ground truth\nstructural: %v\nground:     %v",
				p, p.StructuralConflictGraph().Edges(), p.ConflictGraph().Edges())
		}
	}
}

// Theorem 5: the conflict graph of HR(n, c1, c2) with c2=0 (and of any HR in
// the valid range n0 ≤ 2c-1) makes each group a clique.
func TestTheorem5HRGroupsAreCliques(t *testing.T) {
	for _, q := range hrParams(20) {
		p := mustHR(t, q[0], q[1], q[2], q[3])
		n0 := p.GroupSize()
		g := p.ConflictGraph()
		for u := 0; u < p.N(); u++ {
			for v := u + 1; v < p.N(); v++ {
				if u/n0 == v/n0 && !g.HasEdge(u, v) {
					t.Fatalf("%v: same-group workers %d,%d do not conflict", p, u, v)
				}
			}
		}
	}
}

// HR(n, n0, 0) has exactly the FR(n, n0-group) conflict graph (Theorem 5).
func TestTheorem5HRC2ZeroEqualsFR(t *testing.T) {
	for _, tc := range []struct{ n, c, g int }{{4, 2, 2}, {8, 4, 2}, {9, 3, 3}, {16, 4, 4}} {
		p := mustHR(t, tc.n, tc.c, 0, tc.g)
		fr, err := FR(tc.n, tc.n/tc.g)
		if err != nil {
			t.Fatal(err)
		}
		if !p.ConflictGraph().Equal(fr.ConflictGraph()) {
			t.Fatalf("HR(%d,%d,0,g=%d) conflict graph ≠ FR(%d,%d)", tc.n, tc.c, tc.g, tc.n, tc.n/tc.g)
		}
	}
}

// Sec. VI-B: when n0 = c, HR(n, c, 0) ≡ HR(n, c-1, 1) (identical placements).
func TestHREquivalenceFullUpperVsOneLowerRow(t *testing.T) {
	for _, tc := range []struct{ n, c, g int }{{4, 2, 2}, {8, 4, 2}, {9, 3, 3}, {12, 3, 4}, {16, 4, 4}} {
		a := mustHR(t, tc.n, tc.c, 0, tc.g)
		b := mustHR(t, tc.n, tc.c-1, 1, tc.g)
		for i := 0; i < tc.n; i++ {
			if !a.PartitionSet(i).Equal(b.PartitionSet(i)) {
				t.Fatalf("n=%d c=%d g=%d: worker %d differs: %v vs %v",
					tc.n, tc.c, tc.g, i, a.Partitions(i), b.Partitions(i))
			}
		}
	}
}

// HR with g=1 (valid only near-complete: n ≤ min(2c-1, c+c1)) matches
// CR(n, c)'s conflict structure — the single group ring is a rotated CR.
func TestHRG1EqualsCR(t *testing.T) {
	for _, tc := range []struct{ n, c1, c2 int }{{4, 1, 2}, {7, 3, 1}, {5, 3, 0}, {6, 3, 1}} {
		p := mustHR(t, tc.n, tc.c1, tc.c2, 1)
		cr := mustCR(t, tc.n, tc.c1+tc.c2)
		if !p.ConflictGraph().Equal(cr.ConflictGraph()) {
			t.Fatalf("HR(%d,%d,%d,1) conflict ≠ CR(%d,%d)", tc.n, tc.c1, tc.c2, tc.n, tc.c1+tc.c2)
		}
	}
}

// HR with c1 = 0 collapses to a CR placement (Sec. VI-B: "the placement
// becomes a CR scheme when c1 = 0").
func TestHRC1ZeroIsCR(t *testing.T) {
	p, err := HR(8, 0, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Kind() != KindCR {
		t.Fatalf("HR(8,0,4,2).Kind = %v, want KindCR", p.Kind())
	}
	cr := mustCR(t, 8, 4)
	for i := 0; i < 8; i++ {
		if !p.PartitionSet(i).Equal(cr.PartitionSet(i)) {
			t.Fatalf("worker %d: HR(c1=0) placement %v ≠ CR %v", i, p.Partitions(i), cr.Partitions(i))
		}
	}
}

// Theorem 4: E_FR(n,c) ⊂ E_CR(n,c) ⊂ E_CR(n,c+1) ⊂ … ⊂ E_CR(n,n).
func TestTheorem4EdgeNesting(t *testing.T) {
	for n := 2; n <= 16; n++ {
		prev := (*Placement)(nil)
		for c := 1; c <= n; c++ {
			cr := mustCR(t, n, c)
			if prev != nil && !prev.ConflictGraph().SubgraphOf(cr.ConflictGraph()) {
				t.Fatalf("E_CR(%d,%d) ⊄ E_CR(%d,%d)", n, c-1, n, c)
			}
			if n%c == 0 {
				fr := mustFR(t, n, c)
				if !fr.ConflictGraph().SubgraphOf(cr.ConflictGraph()) {
					t.Fatalf("E_FR(%d,%d) ⊄ E_CR(%d,%d)", n, c, n, c)
				}
			}
			prev = cr
		}
	}
}

// Theorem 7: with c fixed, edges grow as c1 decreases:
// E_HR(n,c,0) ⊆ E_HR(n,c-1,1) ⊆ … and the chain ends at CR-like density.
func TestTheorem7HREdgeNesting(t *testing.T) {
	for _, tc := range []struct{ n, c, g int }{{8, 4, 2}, {16, 4, 4}, {9, 3, 3}, {12, 4, 3}, {10, 5, 2}} {
		n0 := tc.n / tc.g
		prev := (*Placement)(nil)
		for c1 := tc.c; c1 >= 1; c1-- {
			if n0 < tc.c || n0 > 2*tc.c-1 || n0 > tc.c+c1 || c1 > n0 {
				continue
			}
			c2 := tc.c - c1
			p := mustHR(t, tc.n, c1, c2, tc.g)
			if prev != nil && !prev.ConflictGraph().SubgraphOf(p.ConflictGraph()) {
				t.Fatalf("E_HR(%d,%d,%d) ⊄ E_HR(%d,%d,%d)", tc.n, c1+1, c2-1, tc.n, c1, c2)
			}
			prev = p
		}
	}
}

// Theorem 7 endpoint: HR(8, c1=0-equivalent...) — with n0 = c the chain's
// dense end HR(n, n0-c, 2c-n0) = HR(n, 0, c) is CR(n, c); we verify via g=1
// elsewhere, and here check monotonicity of α against FR/CR endpoints.
func TestHRAlphaBetweenFRAndCR(t *testing.T) {
	// n=8, c=4, g=2, n0=4 — the exact Fig. 13 configuration.
	fr := mustFR(t, 8, 4)
	cr := mustCR(t, 8, 4)
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		avail := bitset.New(8)
		for v := 0; v < 8; v++ {
			if rng.Float64() < 0.6 {
				avail.Add(v)
			}
		}
		aFR := graph.IndependenceNumber(fr.ConflictGraph(), avail)
		aCR := graph.IndependenceNumber(cr.ConflictGraph(), avail)
		prevAlpha := -1
		for c1 := 4; c1 >= 1; c1-- {
			p := mustHR(t, 8, c1, 4-c1, 2)
			a := graph.IndependenceNumber(p.ConflictGraph(), avail)
			if a > aFR || a < aCR {
				t.Fatalf("HR(8,%d,%d) α=%d outside [CR=%d, FR=%d] for W'=%v", c1, 4-c1, a, aCR, aFR, avail)
			}
			if prevAlpha >= 0 && a > prevAlpha {
				t.Fatalf("α must be non-increasing as c1 decreases: c1=%d α=%d > prev %d", c1, a, prevAlpha)
			}
			prevAlpha = a
		}
	}
}

func TestRecoveredPartitions(t *testing.T) {
	p := mustCR(t, 4, 2)
	// Fig. 1(d): workers W3, W4 (0-indexed 2, 3) are available and
	// independent: recover all of g1..g4? W2={2,3}, W3={3,0}: conflict.
	// Actually 0-indexed: worker2={2,3}, worker3={3,0} conflict. Use
	// workers 1 and 3: {1,2} ∪ {3,0} = everything.
	chosen := bitset.FromSlice([]int{1, 3})
	if !p.ConflictGraph().IsIndependent(chosen) {
		t.Fatal("{1,3} should be independent in CR(4,2)")
	}
	rec := p.RecoveredPartitions(chosen)
	if rec.Len() != 4 {
		t.Fatalf("recovered %d partitions, want 4 (full recovery)", rec.Len())
	}
}

func TestTheoremBounds(t *testing.T) {
	cases := []struct{ n, c, w, lo, hi int }{
		{4, 2, 2, 1, 2},
		{4, 2, 3, 2, 2},
		{4, 2, 4, 2, 2},
		{4, 2, 1, 1, 1},
		{12, 3, 7, 3, 4},
		{7, 3, 5, 2, 2},
		{7, 3, 2, 1, 2},
	}
	for _, tc := range cases {
		lo, hi := TheoremBounds(tc.n, tc.c, tc.w)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("TheoremBounds(%d,%d,%d) = (%d,%d), want (%d,%d)", tc.n, tc.c, tc.w, lo, hi, tc.lo, tc.hi)
		}
		if lo > hi {
			t.Errorf("lower bound exceeds upper for %+v", tc)
		}
	}
}

// Theorems 10 & 11 (via scheme-aware AlphaBounds): for every scheme and
// every availability set W', lower ≤ α(G[W']) ≤ upper.
func TestTheorems10And11AlphaBounds(t *testing.T) {
	var ps []*Placement
	ps = append(ps, mustFR(t, 8, 2), mustFR(t, 9, 3), mustCR(t, 8, 3), mustCR(t, 7, 2), mustCR(t, 10, 4))
	for _, q := range hrParams(12) {
		ps = append(ps, mustHR(t, q[0], q[1], q[2], q[3]))
	}
	rng := rand.New(rand.NewSource(11))
	for _, p := range ps {
		for trial := 0; trial < 100; trial++ {
			avail := bitset.New(p.N())
			for v := 0; v < p.N(); v++ {
				if rng.Float64() < 0.55 {
					avail.Add(v)
				}
			}
			w := avail.Len()
			if w == 0 {
				continue
			}
			alpha := graph.IndependenceNumber(p.ConflictGraph(), avail)
			lo, hi := p.AlphaBounds(w)
			if alpha < lo || alpha > hi {
				t.Fatalf("%v W'=%v (w=%d): α=%d outside [%d,%d]", p, avail, w, alpha, lo, hi)
			}
		}
	}
}

func TestStringers(t *testing.T) {
	if got := mustFR(t, 4, 2).String(); got != "FR(n=4,c=2)" {
		t.Errorf("FR String = %q", got)
	}
	if got := mustCR(t, 7, 3).String(); got != "CR(n=7,c=3)" {
		t.Errorf("CR String = %q", got)
	}
	if got := mustHR(t, 8, 3, 1, 2).String(); got != "HR(n=8,c1=3,c2=1,g=2)" {
		t.Errorf("HR String = %q", got)
	}
	if KindFR.String() != "FR" || KindCR.String() != "CR" || KindHR.String() != "HR" {
		t.Error("Kind stringer wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Error("unknown Kind stringer wrong")
	}
}

func TestPartitionsReturnsCopy(t *testing.T) {
	p := mustCR(t, 4, 2)
	row := p.Partitions(0)
	row[0] = 99
	if p.Partitions(0)[0] == 99 {
		t.Fatal("Partitions must return a defensive copy")
	}
}
