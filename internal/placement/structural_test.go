package placement

import (
	"testing"

	"isgc/internal/bitset"
)

// structuralPairs builds (eager, structural) placement pairs across all
// three families and a spread of parameters.
func structuralPairs(t *testing.T) [][2]*Placement {
	t.Helper()
	var out [][2]*Placement
	add := func(e *Placement, err error, s *Placement, serr error) {
		if err != nil || serr != nil {
			t.Fatalf("constructing pair: eager=%v structural=%v", err, serr)
		}
		out = append(out, [2]*Placement{e, s})
	}
	for _, nc := range [][2]int{{4, 2}, {9, 3}, {12, 4}, {15, 4}, {16, 1}, {24, 6}} {
		n, c := nc[0], nc[1]
		e, err := CR(n, c)
		s, serr := CR(n, c, Structural())
		add(e, err, s, serr)
		if n%c == 0 {
			e, err = FR(n, c)
			s, serr = FR(n, c, Structural())
			add(e, err, s, serr)
		}
	}
	for _, q := range [][4]int{{8, 2, 2, 2}, {8, 4, 0, 2}, {12, 2, 2, 3}, {12, 3, 1, 3}, {20, 3, 2, 4}} {
		e, err := HR(q[0], q[1], q[2], q[3])
		s, serr := HR(q[0], q[1], q[2], q[3], Structural())
		add(e, err, s, serr)
	}
	return out
}

// TestStructuralPlacementEquivalence proves a Structural placement is
// observationally identical to its eager twin: same partition rows and
// sets, same pairwise conflicts, same recovered-partition mapping, and the
// same lazily densified conflict graph.
func TestStructuralPlacementEquivalence(t *testing.T) {
	for _, pair := range structuralPairs(t) {
		e, s := pair[0], pair[1]
		if e.Kind() != s.Kind() || e.N() != s.N() || e.C() != s.C() || e.Groups() != s.Groups() {
			t.Fatalf("%v vs %v: parameter mismatch", e, s)
		}
		if s.Kind() == KindCR && s.IsStructural() == false {
			t.Fatalf("%v: structural CR lost its flag", s)
		}
		n := e.N()
		for i := 0; i < n; i++ {
			er, sr := e.Partitions(i), s.Partitions(i)
			if len(er) != len(sr) {
				t.Fatalf("%v worker %d: rows %v vs %v", e, i, er, sr)
			}
			for j := range er {
				if er[j] != sr[j] {
					t.Fatalf("%v worker %d: rows %v vs %v", e, i, er, sr)
				}
			}
			if !e.PartitionSet(i).Equal(s.PartitionSet(i)) {
				t.Fatalf("%v worker %d: partition sets differ", e, i)
			}
		}
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if e.Conflicts(u, v) != s.Conflicts(u, v) {
					t.Fatalf("%v: Conflicts(%d,%d) eager=%v structural=%v",
						e, u, v, e.Conflicts(u, v), s.Conflicts(u, v))
				}
			}
		}
		chosen := bitset.FromSlice([]int{0, n / 2})
		if !e.RecoveredPartitions(chosen).Equal(s.RecoveredPartitions(chosen)) {
			t.Fatalf("%v: RecoveredPartitions differ for %v", e, chosen)
		}
		if !e.ConflictGraph().Equal(s.ConflictGraph()) {
			t.Fatalf("%v: lazily densified conflict graph differs from ground truth", e)
		}
		holders, sh := e.Workers(), s.Workers()
		for d := range holders {
			if len(holders[d]) != len(sh[d]) {
				t.Fatalf("%v partition %d: holders %v vs %v", e, d, holders[d], sh[d])
			}
			for j := range holders[d] {
				if holders[d][j] != sh[d][j] {
					t.Fatalf("%v partition %d: holders %v vs %v", e, d, holders[d], sh[d])
				}
			}
		}
		if e.Render() != s.Render() {
			t.Fatalf("%v: Render differs between eager and structural", e)
		}
	}
}

// TestStructuralRejectsSameInvalidParams pins the structural constructors
// to the eager ones' validation, including the HR overlap check that the
// structural path performs on a single group's pattern.
func TestStructuralRejectsSameInvalidParams(t *testing.T) {
	cases := [][4]int{
		{8, 5, 0, 2},  // c1 > n0
		{12, 2, 1, 2}, // n0 > 2c-1
		{6, 1, 1, 3},  // n0 < c is fine here? n0=2, c=2 → valid; keep a real invalid below
		{9, 2, 2, 3},  // n0=3 < c=4
	}
	for _, q := range cases {
		_, eerr := HR(q[0], q[1], q[2], q[3])
		_, serr := HR(q[0], q[1], q[2], q[3], Structural())
		if (eerr == nil) != (serr == nil) {
			t.Fatalf("HR%v: eager err=%v, structural err=%v", q, eerr, serr)
		}
	}
}

// TestStructuralConstructionIsCheapAtScale is the scale smoke: building a
// 50k-worker structural placement must not materialize O(n²) state (the
// eager twin would need ~300 MB and billions of intersection probes).
func TestStructuralConstructionIsCheapAtScale(t *testing.T) {
	for _, build := range []func() (*Placement, error){
		func() (*Placement, error) { return FR(50000, 8, Structural()) },
		func() (*Placement, error) { return CR(50000, 8, Structural()) },
		func() (*Placement, error) { return HR(50000, 4, 4, 5000, Structural()) },
	} {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if p.N() != 50000 {
			t.Fatalf("n = %d", p.N())
		}
		// Spot-check conflicts and rows at the far end of the index space.
		if p.Kind() != KindFR && !p.Conflicts(49999, 0) {
			t.Fatalf("%v: wrap-around conflict (49999,0) missing", p)
		}
		if got := p.Partitions(49999); len(got) != 8 {
			t.Fatalf("%v: worker 49999 row %v", p, got)
		}
	}
}
