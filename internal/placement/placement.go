// Package placement implements the dataset-partition placement schemes of
// the paper: fractional repetition (FR), cyclic repetition (CR), and hybrid
// repetition (HR), together with the conflict graphs they induce.
//
// A placement assigns to each of n workers a set of c dataset partitions
// (out of n partitions total). Two workers *conflict* iff their partition
// sets intersect: their plain-sum coded gradients cannot both contribute to
// the recovered gradient ĝ = Σ_{i∈I} g_i without double-counting. The
// conflict graph is the decoding substrate of IS-GC (Sec. V-A).
//
// Workers and partitions are 0-indexed here; the paper is 1-indexed.
package placement

import (
	"fmt"
	"sync"

	"isgc/internal/bitset"
	"isgc/internal/graph"
)

// Kind identifies a placement scheme family.
type Kind int

// Placement scheme families.
const (
	KindFR Kind = iota + 1
	KindCR
	KindHR
)

// String returns the scheme family acronym used in the paper.
func (k Kind) String() string {
	switch k {
	case KindFR:
		return "FR"
	case KindCR:
		return "CR"
	case KindHR:
		return "HR"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Placement describes which partitions each worker stores, plus the derived
// conflict structure. Construct via FR, CR, or HR; the struct is immutable
// after construction (the one exception is the lazily memoized conflict
// graph of a Structural placement, guarded by a sync.Once).
type Placement struct {
	kind Kind
	n    int // number of workers == number of partitions
	c    int // partitions per worker
	// HR parameters (c = c1 + c2); for FR, c1 = c, c2 = 0 semantics differ,
	// so these are only meaningful when kind == KindHR.
	c1, c2 int
	groups int // number of groups g (FR: n/c, HR: given; CR: 1)

	// structural marks a placement built with the Structural option: parts,
	// partSets, and conflict stay nil and every query is answered from the
	// closed-form predicates instead.
	structural bool

	parts    [][]int       // parts[i] = sorted partitions on worker i (nil when structural)
	partSets []*bitset.Set // same, as bitsets (nil when structural)
	conflict *graph.Graph  // ground-truth conflict graph (nil when structural until demanded)
	lazyOnce sync.Once     // builds conflict on demand for structural placements
}

// Option configures placement construction.
type Option func(*buildOpts)

type buildOpts struct {
	structural bool
}

// Structural skips the O(n²) dense conflict graph and the per-worker
// partition bitsets at construction time: Conflicts answers via the
// paper's closed-form predicates (ConflictsFormula — Theorem 1 for CR,
// group arithmetic for FR, Alg. 4 for HR), and partition rows are
// generated on demand. This makes construction O(1) in n and is what lets
// the decoder scale-out harness instantiate placements with tens of
// thousands of workers; the structural predicates are proven equal to the
// ground truth by TestStructuralConflictMatchesGroundTruth and the
// structural decode-equivalence suite.
//
// ConflictGraph() still works on a structural placement — it densifies
// lazily on first call — but costs the full O(n²) it was built to avoid,
// so large-n callers should stick to Conflicts/ConflictsFormula.
func Structural() Option {
	return func(o *buildOpts) { o.structural = true }
}

func applyOpts(opts []Option) buildOpts {
	var o buildOpts
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// FR constructs a fractional-repetition placement: c must divide n; the n
// workers are split into n/c groups and every worker in group k stores
// exactly the partitions {kc, …, kc+c-1} (Sec. III).
func FR(n, c int, opts ...Option) (*Placement, error) {
	if err := checkNC(n, c); err != nil {
		return nil, fmt.Errorf("placement: FR: %w", err)
	}
	if n%c != 0 {
		return nil, fmt.Errorf("placement: FR requires c|n, got n=%d c=%d", n, c)
	}
	p := &Placement{kind: KindFR, n: n, c: c, groups: n / c}
	if applyOpts(opts).structural {
		p.structural = true
		return p, nil
	}
	p.parts = make([][]int, n)
	for i := 0; i < n; i++ {
		p.parts[i] = p.row(i)
	}
	p.finish()
	return p, nil
}

// CR constructs a cyclic-repetition placement: worker i stores partitions
// {i, i+1, …, i+c-1} mod n (Sec. III). No divisibility constraint.
func CR(n, c int, opts ...Option) (*Placement, error) {
	if err := checkNC(n, c); err != nil {
		return nil, fmt.Errorf("placement: CR: %w", err)
	}
	p := &Placement{kind: KindCR, n: n, c: c, groups: 1}
	if applyOpts(opts).structural {
		p.structural = true
		return p, nil
	}
	p.parts = make([][]int, n)
	for i := 0; i < n; i++ {
		p.parts[i] = p.row(i)
	}
	p.finish()
	return p, nil
}

// HR constructs the hybrid-repetition placement HR(n, c1, c2) of Sec. VI-B
// with g groups, g|n, n0 = n/g partitions (and workers) per group, and
// c = c1 + c2 partitions per worker:
//
//   - the "upper part" contributes c1 rows: worker j of group k stores the
//     group-local partitions base + ((j + r) mod n0) for
//     r = n0-c1, …, n0-1 (the bottom c1 rows of HR(n, n0, 0));
//   - the "lower part" contributes c2 rows: the top c2 rows of the global
//     CR(n, c) scheme, i.e. partitions (i + r) mod n for r = 0, …, c2-1.
//
// Special cases (paper, Sec. VI-B): c2 = 0 with c1 = n0 is FR-like grouping;
// c1 = 0 degenerates to CR(n, c) exactly, so HR returns a KindCR placement
// in that case; HR(n, c, 0) ≡ HR(n, c-1, 1) when n0 = c.
//
// Validity (Theorem 6): when c1 > 0 the scheme requires
// c ≤ n0 ≤ min(2c-1, c+c1) so that every group is a clique in the conflict
// graph (the proof of Theorem 6 derives both n0 ≤ c+c1 and n0 ≤ 2c-1), and
// c1 ≤ n0. Note the paper's own Fig. 13 uses g=2 < c=4: g ≥ c is NOT
// required — a worker's lower (CR) rows overflow at most c2-1 < n0
// positions, so conflicts never reach past the clockwise-neighboring group.
func HR(n, c1, c2, g int, opts ...Option) (*Placement, error) {
	c := c1 + c2
	if err := checkNC(n, c); err != nil {
		return nil, fmt.Errorf("placement: HR: %w", err)
	}
	if c1 < 0 || c2 < 0 {
		return nil, fmt.Errorf("placement: HR requires c1, c2 ≥ 0, got c1=%d c2=%d", c1, c2)
	}
	if c1 == 0 {
		return CR(n, c, opts...)
	}
	if g <= 0 || n%g != 0 {
		return nil, fmt.Errorf("placement: HR requires g|n with g > 0, got n=%d g=%d", n, g)
	}
	n0 := n / g
	if c1 > n0 {
		return nil, fmt.Errorf("placement: HR requires c1 ≤ n0, got c1=%d n0=%d", c1, n0)
	}
	if n0 < c || n0 > 2*c-1 || n0 > c+c1 {
		return nil, fmt.Errorf("placement: HR requires c ≤ n0 ≤ min(2c-1, c+c1) (Theorem 6), got c=%d c1=%d n0=%d", c, c1, n0)
	}
	p := &Placement{kind: KindHR, n: n, c: c, c1: c1, c2: c2, groups: g}
	if applyOpts(opts).structural {
		p.structural = true
		// Upper/lower row overlap depends only on the in-group index j (the
		// lower rows that cross a group boundary can never hit the upper
		// rows, which stay in-group), so validating one group's worth of
		// workers covers every worker at O(n0·c) instead of O(n·c).
		for i := 0; i < n0; i++ {
			if row := p.row(i); len(row) != c {
				return nil, fmt.Errorf("placement: HR(n=%d,c1=%d,c2=%d,g=%d): worker %d stores %d distinct partitions, want %d (overlapping upper/lower parts)",
					n, c1, c2, g, i, len(row), c)
			}
		}
		return p, nil
	}
	p.parts = make([][]int, n)
	for i := 0; i < n; i++ {
		p.parts[i] = p.row(i)
		if len(p.parts[i]) != c {
			return nil, fmt.Errorf("placement: HR(n=%d,c1=%d,c2=%d,g=%d): worker %d stores %d distinct partitions, want %d (overlapping upper/lower parts)",
				n, c1, c2, g, i, len(p.parts[i]), c)
		}
	}
	p.finish()
	return p, nil
}

// row generates worker i's sorted partition list from parameters alone —
// the single source of truth both the eager constructors and the
// structural on-demand accessors share.
func (p *Placement) row(i int) []int {
	switch p.kind {
	case KindFR:
		base := (i / p.c) * p.c
		row := make([]int, p.c)
		for j := range row {
			row[j] = base + j
		}
		return row
	case KindCR:
		row := make([]int, p.c)
		for j := range row {
			row[j] = (i + j) % p.n
		}
		return dedupSorted(row)
	case KindHR:
		n0 := p.n / p.groups
		base := (i / n0) * n0
		j := i % n0
		row := make([]int, 0, p.c)
		for r := n0 - p.c1; r < n0; r++ {
			row = append(row, base+(j+r)%n0)
		}
		for r := 0; r < p.c2; r++ {
			row = append(row, (i+r)%p.n)
		}
		return dedupSorted(row)
	default:
		panic(fmt.Sprintf("placement: unknown kind %v", p.kind))
	}
}

func checkNC(n, c int) error {
	if n <= 0 {
		return fmt.Errorf("need n > 0, got n=%d", n)
	}
	if c <= 0 || c > n {
		return fmt.Errorf("need 0 < c ≤ n, got n=%d c=%d", n, c)
	}
	return nil
}

func dedupSorted(vs []int) []int {
	s := bitset.FromSlice(vs)
	return s.Slice()
}

// finish derives bitsets and the ground-truth conflict graph from parts.
func (p *Placement) finish() {
	p.partSets = make([]*bitset.Set, p.n)
	for i, row := range p.parts {
		p.partSets[i] = bitset.FromSlice(row)
		p.parts[i] = p.partSets[i].Slice() // canonical sorted order
	}
	p.conflict = graph.New(p.n)
	for u := 0; u < p.n; u++ {
		for v := u + 1; v < p.n; v++ {
			if p.partSets[u].Intersects(p.partSets[v]) {
				p.conflict.AddEdge(u, v)
			}
		}
	}
}

// Kind returns the scheme family.
func (p *Placement) Kind() Kind { return p.kind }

// N returns the number of workers (== number of partitions).
func (p *Placement) N() int { return p.n }

// C returns the number of partitions per worker.
func (p *Placement) C() int { return p.c }

// C1 returns the HR upper-part row count (0 unless Kind == KindHR).
func (p *Placement) C1() int { return p.c1 }

// C2 returns the HR lower-part (CR) row count (0 unless Kind == KindHR).
func (p *Placement) C2() int { return p.c2 }

// Groups returns the number of groups (FR: n/c, HR: g, CR: 1).
func (p *Placement) Groups() int { return p.groups }

// GroupSize returns the number of workers per group.
func (p *Placement) GroupSize() int { return p.n / p.groups }

// GroupOf returns the group index of worker i.
func (p *Placement) GroupOf(i int) int { return i / p.GroupSize() }

// IsStructural reports whether the placement was built with the Structural
// option (no precomputed partition bitsets or dense conflict graph).
func (p *Placement) IsStructural() bool { return p.structural }

// Partitions returns a copy of the sorted partition list of worker i.
func (p *Placement) Partitions(i int) []int {
	if p.structural {
		return p.row(i)
	}
	out := make([]int, len(p.parts[i]))
	copy(out, p.parts[i])
	return out
}

// PartitionSet returns a copy of worker i's partition set.
func (p *Placement) PartitionSet(i int) *bitset.Set {
	if p.structural {
		return bitset.FromSlice(p.row(i))
	}
	return p.partSets[i].Clone()
}

// Workers returns, for each partition, the sorted list of workers storing it.
func (p *Placement) Workers() [][]int {
	holders := make([][]int, p.n)
	for w := 0; w < p.n; w++ {
		var row []int
		if p.structural {
			row = p.row(w)
		} else {
			row = p.parts[w]
		}
		for _, d := range row {
			holders[d] = append(holders[d], w)
		}
	}
	return holders
}

// ConflictGraph returns the ground-truth conflict graph: workers are
// adjacent iff their partition sets intersect. The returned graph is shared
// and must not be mutated; use Clone for a private copy.
//
// On a Structural placement the dense graph is built lazily on first call
// (from the same closed-form predicates Conflicts uses, which tests prove
// equal to partition-set intersection) — an O(n²) cost the structural mode
// otherwise avoids, so large-n callers should prefer Conflicts.
func (p *Placement) ConflictGraph() *graph.Graph {
	if p.structural {
		p.lazyOnce.Do(func() { p.conflict = p.StructuralConflictGraph() })
	}
	return p.conflict
}

// Conflicts reports whether workers u and v conflict (share a partition).
// O(1) via the precomputed adjacency bitsets, or via the closed-form
// predicate (O(c2) for HR, O(1) otherwise) on a Structural placement.
// Structural placements never consult the lazily built dense graph here,
// so Conflicts stays safe for concurrent use even while another goroutine
// densifies via ConflictGraph.
func (p *Placement) Conflicts(u, v int) bool {
	if p.structural {
		return p.ConflictsFormula(u, v)
	}
	return p.conflict.HasEdge(u, v)
}

// RecoveredPartitions returns the union of partitions held by the workers in
// the independent set chosen: these are the indices I of the paper's
// recovered gradient ĝ = Σ_{i∈I} g_i (after mapping worker set → partition
// set). The caller is responsible for chosen being an independent set; if it
// is, |result| = |chosen|·c exactly.
func (p *Placement) RecoveredPartitions(chosen *bitset.Set) *bitset.Set {
	out := bitset.New(p.n)
	chosen.Range(func(w int) bool {
		if p.structural {
			for _, d := range p.row(w) {
				out.Add(d)
			}
		} else {
			out.UnionWith(p.partSets[w])
		}
		return true
	})
	return out
}

// String renders a short description, e.g. "CR(n=8,c=3)".
func (p *Placement) String() string {
	switch p.kind {
	case KindHR:
		return fmt.Sprintf("HR(n=%d,c1=%d,c2=%d,g=%d)", p.n, p.c1, p.c2, p.groups)
	default:
		return fmt.Sprintf("%s(n=%d,c=%d)", p.kind, p.n, p.c)
	}
}
