package placement

import (
	"fmt"
	"strings"
)

// Render draws the placement as the paper draws Figs. 2 and 7: one column
// per worker, one row per placement slot, each cell naming the dataset
// partition stored there (the worker's sorted partition list top to
// bottom). Group boundaries are marked for FR and HR.
func (p *Placement) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", p)
	n0 := p.GroupSize()

	header := make([]string, p.n)
	for i := range header {
		header[i] = fmt.Sprintf("W%d", i)
	}
	width := cellWidth(p)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				if p.groups > 1 && i%n0 == 0 {
					b.WriteString(" | ")
				} else {
					b.WriteString("  ")
				}
			}
			fmt.Fprintf(&b, "%-*s", width, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for r := 0; r < p.c; r++ {
		row := make([]string, p.n)
		for i := 0; i < p.n; i++ {
			row[i] = fmt.Sprintf("D%d", p.Partitions(i)[r])
		}
		writeRow(row)
	}
	return b.String()
}

// RenderConflicts draws the conflict graph as an adjacency matrix: '#'
// marks a conflict, '.' independence, and the diagonal is '\'. Handy for
// eyeballing why a decode picked the workers it did.
func (p *Placement) RenderConflicts() string {
	var b strings.Builder
	fmt.Fprintf(&b, "conflicts of %s ('#' = share a partition)\n   ", p)
	for v := 0; v < p.n; v++ {
		fmt.Fprintf(&b, "%2d ", v)
	}
	b.WriteByte('\n')
	for u := 0; u < p.n; u++ {
		fmt.Fprintf(&b, "%2d ", u)
		for v := 0; v < p.n; v++ {
			switch {
			case u == v:
				b.WriteString(" \\ ")
			case p.conflict.HasEdge(u, v):
				b.WriteString(" # ")
			default:
				b.WriteString(" . ")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func cellWidth(p *Placement) int {
	w := len(fmt.Sprintf("W%d", p.n-1))
	if d := len(fmt.Sprintf("D%d", p.n-1)); d > w {
		w = d
	}
	return w
}
