package placement

import (
	"fmt"

	"isgc/internal/graph"
)

// StructuralConflictGraph returns the conflict graph predicted by the
// paper's structural theorems, computed from parameters alone (never from
// the actual placement):
//
//   - FR(n, c): disjoint cliques, one per group (Sec. IV).
//   - CR(n, c): the circulant graph C_n^{1..c-1} (Theorem 1).
//   - HR(n, c1, c2): each group is a clique (Theorem 6 guarantees this in
//     the valid parameter range); workers in clockwise-neighboring groups
//     conflict per the overflow predicate of Alg. 4 (Sec. VI-C).
//
// Tests assert it equals the ground-truth ConflictGraph derived from the
// placement itself, which is how we validate Theorems 1, 5, and 6 and the
// CONFLICT predicate of Alg. 4.
func (p *Placement) StructuralConflictGraph() *graph.Graph {
	g := graph.New(p.n)
	for u := 0; u < p.n; u++ {
		for v := u + 1; v < p.n; v++ {
			if p.ConflictsFormula(u, v) {
				g.AddEdge(u, v)
			}
		}
	}
	return g
}

// ConflictsFormula evaluates conflict between workers u and v using the
// paper's O(1)/O(c) parameter-based predicates instead of partition-set
// intersection:
//
//   - FR: same group ⇒ conflict (complete per-group subgraphs);
//   - CR: circular distance d(u, v) < c ⇒ conflict (Theorem 1);
//   - HR: Alg. 4 — same group ⇒ conflict (cliques by Theorem 6's valid
//     range); clockwise-adjacent groups conflict iff the earlier worker's
//     lower (CR) rows overflow into the next group far enough to hit one of
//     the later worker's partitions.
func (p *Placement) ConflictsFormula(u, v int) bool {
	if u == v {
		return false
	}
	switch p.kind {
	case KindFR:
		return u/p.c == v/p.c
	case KindCR:
		return graph.CircDist(u, v, p.n) < p.c
	case KindHR:
		return p.hrConflict(u, v) || p.hrConflict(v, u)
	default:
		panic(fmt.Sprintf("placement: unknown kind %v", p.kind))
	}
}

// hrConflict is the directional half of Alg. 4: does worker i1 conflict with
// worker i2 where i2 is in i1's group or in the group clockwise after i1's?
// (0-indexed throughout; the paper is 1-indexed.)
//
// Within a group the answer is always true: Theorem 6's valid range
// c ≤ n0 ≤ min(2c-1, c+c1) makes every group a clique, which the
// constructor enforces and tests verify against the ground truth.
//
// Across groups, only the lower part (global CR rows) of i1 reaches into
// the next group: its partitions are (i1 + r) mod n for r < c2, so the
// overflow covers offsets 0 .. j1+c2-1-n0 of the next group's partition
// range (empty unless j1+c2 > n0). Conflict holds iff some overflow offset
// lies in i2's in-group coverage, which from parameters is the cyclic
// window of length c1 ending at offset j2-1 plus the clipped linear window
// [j2, min(j2+c2-1, n0-1)].
func (p *Placement) hrConflict(i1, i2 int) bool {
	n0 := p.GroupSize()
	g1, g2 := i1/n0, i2/n0
	if g1 == g2 {
		return true
	}
	if p.groups < 2 || (g2-g1+p.groups)%p.groups != 1 {
		return false
	}
	j1, j2 := i1%n0, i2%n0
	if p.c2 == 0 || j1+p.c2 <= n0 {
		return false // no overflow into the next group
	}
	hi := j1 + p.c2 - 1 - n0
	for off := 0; off <= hi; off++ {
		// In i2's upper cyclic window of length c1 ending at j2-1?
		if ((off-(j2-p.c1))%n0+n0)%n0 < p.c1 {
			return true
		}
		// In i2's lower in-group window [j2, j2+c2-1] ∩ [0, n0)?
		if off >= j2 && off < j2+p.c2 {
			return true
		}
	}
	return false
}

// TheoremBounds returns the paper's worst/best-case bounds for the number
// of recoverable coded gradients α(G[W']) with w available workers
// (Theorems 10 and 11): lower = min(⌈w/c⌉, ⌊n/c⌋), upper = min(w, ⌊n/c⌋).
// These are stated for FR(n, c) and CR(n, c); they also apply to HR when
// n0 = c, because then E_FR ⊆ E_HR ⊆ E_CR squeezes α(G_HR[W']) between
// values satisfying the same bounds (Theorems 4 and 7).
func TheoremBounds(n, c, w int) (lower, upper int) {
	floorNC := n / c
	lower = (w + c - 1) / c
	if floorNC < lower {
		lower = floorNC
	}
	upper = w
	if floorNC < upper {
		upper = floorNC
	}
	return lower, upper
}

// AlphaBounds returns scheme-aware worst/best-case bounds for α(G[W'])
// given w = |W'| available workers.
//
// For FR and CR these are exactly Theorems 10–11. For HR with n0 = c they
// coincide with Theorems 10–11 by the squeeze argument above. For HR with
// n0 > c the paper's bounds do not apply (each group is a clique, so
// α ≤ g = n/n0 < ⌊n/c⌋ is the binding upper bound); the lower bound comes
// from picking one worker in every other nonempty group on the group ring,
// since only clockwise-neighboring groups can conflict.
func (p *Placement) AlphaBounds(w int) (lower, upper int) {
	if w < 0 {
		w = 0
	}
	if w > p.n {
		w = p.n
	}
	if p.kind != KindHR || p.GroupSize() == p.c {
		return TheoremBounds(p.n, p.c, w)
	}
	n0 := p.GroupSize()
	upper = w
	if p.groups < upper {
		upper = p.groups
	}
	if w == 0 {
		return 0, upper
	}
	// Worst case: the w workers pack into m = ⌈w/n0⌉ groups; a set of
	// every-other nonempty group is conflict-free across groups.
	m := (w + n0 - 1) / n0
	if m < p.groups {
		lower = (m + 1) / 2
	} else {
		lower = p.groups / 2
	}
	if lower < 1 {
		lower = 1
	}
	return lower, upper
}
