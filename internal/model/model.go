// Package model provides the differentiable models used as training
// workloads: linear regression, logistic regression, softmax regression,
// and a one-hidden-layer MLP (the repo's stand-in for the paper's
// ResNet-18 — see DESIGN.md for the substitution rationale). Each model
// exposes a flat parameter vector and computes loss and gradient on a batch
// of samples, which is exactly the interface the distributed engine and
// the IS-GC encoders need: gradients are plain []float64 vectors that can
// be encoded by summation.
package model

import (
	"fmt"
	"math"
	"math/rand"

	"isgc/internal/dataset"
)

// Model is a supervised model with a flat parameter vector.
//
// Grad computes the *mean* gradient of the loss over the batch with respect
// to the parameters, evaluated at params; Loss computes the mean loss.
// Implementations must not retain or mutate the inputs.
type Model interface {
	// Dim returns the length of the flat parameter vector.
	Dim() int
	// InitParams returns a fresh initial parameter vector drawn with the
	// given seed (the paper uses identical seeds across schemes so every
	// scheme starts from the same parameters).
	InitParams(seed int64) []float64
	// Loss returns the mean loss of params on the batch.
	Loss(params []float64, batch []dataset.Sample) float64
	// Grad returns the mean gradient of the loss on the batch. The result
	// is freshly allocated; hot paths should prefer GradInto.
	Grad(params []float64, batch []dataset.Sample) []float64
	// GradInto computes the mean gradient of the loss on the batch into
	// dst, which must have length Dim(); dst is zeroed first. The result
	// is bit-identical to Grad. Implementations draw any internal scratch
	// from the package buffer pool, so the steady-state path allocates
	// nothing.
	GradInto(dst, params []float64, batch []dataset.Sample)
	// String names the model for logs.
	String() string
}

// Classifier is implemented by models whose targets are class indices;
// Predict returns the argmax class for one input. The engine records
// training accuracy for Classifier models.
type Classifier interface {
	Model
	// Predict returns the predicted class index for x under params.
	Predict(params []float64, x []float64) int
}

// Accuracy returns the fraction of batch samples the classifier labels
// correctly (0 for an empty batch).
func Accuracy(c Classifier, params []float64, batch []dataset.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	correct := 0
	for _, s := range batch {
		if c.Predict(params, s.X) == int(s.Y) {
			correct++
		}
	}
	return float64(correct) / float64(len(batch))
}

// LinearRegression is least-squares regression: loss = ½·mean (⟨θ, x⟩ − y)².
type LinearRegression struct {
	// Features is the input dimension p; Dim() == p.
	Features int
}

// Dim implements Model.
func (m LinearRegression) Dim() int { return m.Features }

// InitParams implements Model.
func (m LinearRegression) InitParams(seed int64) []float64 {
	return gaussianInit(m.Dim(), 0.01, seed)
}

// Loss implements Model.
func (m LinearRegression) Loss(params []float64, batch []dataset.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range batch {
		r := dotFeatures(params, s.X) - s.Y
		sum += 0.5 * r * r
	}
	return sum / float64(len(batch))
}

// Grad implements Model.
func (m LinearRegression) Grad(params []float64, batch []dataset.Sample) []float64 {
	g := make([]float64, m.Dim())
	m.GradInto(g, params, batch)
	return g
}

// GradInto implements Model.
func (m LinearRegression) GradInto(g, params []float64, batch []dataset.Sample) {
	checkGradDim(len(g), m.Dim())
	zeroVec(g)
	if len(batch) == 0 {
		return
	}
	for _, s := range batch {
		r := dotFeatures(params, s.X) - s.Y
		for j, x := range s.X {
			g[j] += r * x
		}
	}
	inv := 1 / float64(len(batch))
	for j := range g {
		g[j] *= inv
	}
}

// String implements Model.
func (m LinearRegression) String() string { return fmt.Sprintf("linreg(p=%d)", m.Features) }

// LogisticRegression is binary classification with the logistic loss;
// labels must be 0 or 1.
type LogisticRegression struct {
	Features int
}

// Dim implements Model.
func (m LogisticRegression) Dim() int { return m.Features }

// InitParams implements Model.
func (m LogisticRegression) InitParams(seed int64) []float64 {
	return gaussianInit(m.Dim(), 0.01, seed)
}

// Loss implements Model.
func (m LogisticRegression) Loss(params []float64, batch []dataset.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	sum := 0.0
	for _, s := range batch {
		z := dotFeatures(params, s.X)
		// Numerically stable log(1 + e^{-yz}) with y ∈ {±1}.
		yz := z
		if s.Y < 0.5 {
			yz = -z
		}
		sum += math.Log1p(math.Exp(-abs(yz))) + max0(-yz)
	}
	return sum / float64(len(batch))
}

// Grad implements Model.
func (m LogisticRegression) Grad(params []float64, batch []dataset.Sample) []float64 {
	g := make([]float64, m.Dim())
	m.GradInto(g, params, batch)
	return g
}

// GradInto implements Model.
func (m LogisticRegression) GradInto(g, params []float64, batch []dataset.Sample) {
	checkGradDim(len(g), m.Dim())
	zeroVec(g)
	if len(batch) == 0 {
		return
	}
	for _, s := range batch {
		p := sigmoid(dotFeatures(params, s.X))
		diff := p - s.Y
		for j, x := range s.X {
			g[j] += diff * x
		}
	}
	inv := 1 / float64(len(batch))
	for j := range g {
		g[j] *= inv
	}
}

// Predict implements Classifier: class 1 iff the logit is non-negative.
func (m LogisticRegression) Predict(params []float64, x []float64) int {
	if dotFeatures(params, x) >= 0 {
		return 1
	}
	return 0
}

// String implements Model.
func (m LogisticRegression) String() string { return fmt.Sprintf("logreg(p=%d)", m.Features) }

// SoftmaxRegression is multinomial logistic regression over Classes
// classes with cross-entropy loss. Parameters are a row-major
// Classes×Features weight matrix. Y is the class index.
type SoftmaxRegression struct {
	Features int
	Classes  int
}

// Dim implements Model.
func (m SoftmaxRegression) Dim() int { return m.Features * m.Classes }

// InitParams implements Model.
func (m SoftmaxRegression) InitParams(seed int64) []float64 {
	return gaussianInit(m.Dim(), 0.01, seed)
}

// logitsInto fills z (length Classes) with the class logits of x — the
// scratch-reusing replacement for the old per-sample allocation.
func (m SoftmaxRegression) logitsInto(z, params []float64, x []float64) {
	for k := 0; k < m.Classes; k++ {
		z[k] = dotFeatures(params[k*m.Features:(k+1)*m.Features], x)
	}
}

// Loss implements Model.
func (m SoftmaxRegression) Loss(params []float64, batch []dataset.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	zp := getVec(m.Classes)
	z := *zp
	defer putVec(zp)
	sum := 0.0
	for _, s := range batch {
		m.logitsInto(z, params, s.X)
		lse := logSumExp(z)
		sum += lse - z[int(s.Y)]
	}
	return sum / float64(len(batch))
}

// Grad implements Model.
func (m SoftmaxRegression) Grad(params []float64, batch []dataset.Sample) []float64 {
	g := make([]float64, m.Dim())
	m.GradInto(g, params, batch)
	return g
}

// GradInto implements Model.
func (m SoftmaxRegression) GradInto(g, params []float64, batch []dataset.Sample) {
	checkGradDim(len(g), m.Dim())
	zeroVec(g)
	if len(batch) == 0 {
		return
	}
	zp := getVec(m.Classes)
	z := *zp
	defer putVec(zp)
	for _, s := range batch {
		m.logitsInto(z, params, s.X)
		softmaxInPlace(z)
		y := int(s.Y)
		for k := 0; k < m.Classes; k++ {
			diff := z[k]
			if k == y {
				diff -= 1
			}
			row := g[k*m.Features : (k+1)*m.Features]
			for j, x := range s.X {
				row[j] += diff * x
			}
		}
	}
	inv := 1 / float64(len(batch))
	for j := range g {
		g[j] *= inv
	}
}

// Predict implements Classifier: the argmax logit.
func (m SoftmaxRegression) Predict(params []float64, x []float64) int {
	zp := getVec(m.Classes)
	z := *zp
	defer putVec(zp)
	m.logitsInto(z, params, x)
	return argmax(z)
}

// String implements Model.
func (m SoftmaxRegression) String() string {
	return fmt.Sprintf("softmax(p=%d,k=%d)", m.Features, m.Classes)
}

// MLP is a one-hidden-layer network with tanh activation and softmax
// output — the deepest workload here, standing in for ResNet-18. The
// parameter layout is [W1 (Hidden×Features) | b1 (Hidden) |
// W2 (Classes×Hidden) | b2 (Classes)].
type MLP struct {
	Features int
	Hidden   int
	Classes  int
}

// Dim implements Model.
func (m MLP) Dim() int {
	return m.Hidden*m.Features + m.Hidden + m.Classes*m.Hidden + m.Classes
}

// InitParams implements Model.
func (m MLP) InitParams(seed int64) []float64 {
	// Xavier-style scaling per layer.
	rng := rand.New(rand.NewSource(seed))
	p := make([]float64, m.Dim())
	s1 := math.Sqrt(2 / float64(m.Features+m.Hidden))
	s2 := math.Sqrt(2 / float64(m.Hidden+m.Classes))
	o := 0
	for i := 0; i < m.Hidden*m.Features; i++ {
		p[o] = s1 * rng.NormFloat64()
		o++
	}
	o += m.Hidden // b1 zero
	for i := 0; i < m.Classes*m.Hidden; i++ {
		p[o] = s2 * rng.NormFloat64()
		o++
	}
	return p
}

func (m MLP) slices(params []float64) (w1, b1, w2, b2 []float64) {
	o := 0
	w1 = params[o : o+m.Hidden*m.Features]
	o += m.Hidden * m.Features
	b1 = params[o : o+m.Hidden]
	o += m.Hidden
	w2 = params[o : o+m.Classes*m.Hidden]
	o += m.Classes * m.Hidden
	b2 = params[o : o+m.Classes]
	return w1, b1, w2, b2
}

// forwardInto fills h (length Hidden) and z (length Classes) with the
// hidden activations and output logits of x — the scratch-reusing
// replacement for the old per-sample allocations.
func (m MLP) forwardInto(h, z, params []float64, x []float64) {
	w1, b1, w2, b2 := m.slices(params)
	for i := 0; i < m.Hidden; i++ {
		h[i] = math.Tanh(dotFeatures(w1[i*m.Features:(i+1)*m.Features], x) + b1[i])
	}
	for k := 0; k < m.Classes; k++ {
		z[k] = dotFeatures(w2[k*m.Hidden:(k+1)*m.Hidden], h) + b2[k]
	}
}

// Loss implements Model.
func (m MLP) Loss(params []float64, batch []dataset.Sample) float64 {
	if len(batch) == 0 {
		return 0
	}
	hp, zp := getVec(m.Hidden), getVec(m.Classes)
	h, z := *hp, *zp
	defer putVec(hp)
	defer putVec(zp)
	sum := 0.0
	for _, s := range batch {
		m.forwardInto(h, z, params, s.X)
		sum += logSumExp(z) - z[int(s.Y)]
	}
	return sum / float64(len(batch))
}

// Grad implements Model.
func (m MLP) Grad(params []float64, batch []dataset.Sample) []float64 {
	g := make([]float64, m.Dim())
	m.GradInto(g, params, batch)
	return g
}

// GradInto implements Model.
func (m MLP) GradInto(g, params []float64, batch []dataset.Sample) {
	checkGradDim(len(g), m.Dim())
	zeroVec(g)
	if len(batch) == 0 {
		return
	}
	w1Len := m.Hidden * m.Features
	gW1 := g[0:w1Len]
	gB1 := g[w1Len : w1Len+m.Hidden]
	gW2 := g[w1Len+m.Hidden : w1Len+m.Hidden+m.Classes*m.Hidden]
	gB2 := g[w1Len+m.Hidden+m.Classes*m.Hidden:]
	_, _, w2, _ := m.slices(params)
	hp, zp := getVec(m.Hidden), getVec(m.Classes)
	h, z := *hp, *zp
	defer putVec(hp)
	defer putVec(zp)
	for _, s := range batch {
		m.forwardInto(h, z, params, s.X)
		// softmaxInPlace turns the logits into probabilities; subtracting
		// the one-hot target below turns them into dz without another
		// buffer.
		softmaxInPlace(z)
		dz := z
		y := int(s.Y)
		// Output layer.
		for k := 0; k < m.Classes; k++ {
			if k == y {
				dz[k] -= 1
			}
			row := gW2[k*m.Hidden : (k+1)*m.Hidden]
			for i, hi := range h {
				row[i] += dz[k] * hi
			}
			gB2[k] += dz[k]
		}
		// Hidden layer: dh = W2ᵀ dz, through tanh'.
		for i := 0; i < m.Hidden; i++ {
			dh := 0.0
			for k := 0; k < m.Classes; k++ {
				dh += w2[k*m.Hidden+i] * dz[k]
			}
			da := dh * (1 - h[i]*h[i])
			row := gW1[i*m.Features : (i+1)*m.Features]
			for j, x := range s.X {
				row[j] += da * x
			}
			gB1[i] += da
		}
	}
	inv := 1 / float64(len(batch))
	for j := range g {
		g[j] *= inv
	}
}

// Predict implements Classifier: the argmax output logit.
func (m MLP) Predict(params []float64, x []float64) int {
	hp, zp := getVec(m.Hidden), getVec(m.Classes)
	h, z := *hp, *zp
	defer putVec(hp)
	defer putVec(zp)
	m.forwardInto(h, z, params, x)
	return argmax(z)
}

// String implements Model.
func (m MLP) String() string {
	return fmt.Sprintf("mlp(p=%d,h=%d,k=%d)", m.Features, m.Hidden, m.Classes)
}

// Helpers ----------------------------------------------------------------

// dotFeatures is Dot over the leading len(x) coordinates of w (w may be a
// row slice of a larger parameter block).
func dotFeatures(w, x []float64) float64 {
	s := 0.0
	for j, xj := range x {
		s += w[j] * xj
	}
	return s
}

func gaussianInit(n int, scale float64, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	p := make([]float64, n)
	for i := range p {
		p[i] = scale * rng.NormFloat64()
	}
	return p
}

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func logSumExp(z []float64) float64 {
	m := z[0]
	for _, v := range z[1:] {
		if v > m {
			m = v
		}
	}
	s := 0.0
	for _, v := range z {
		s += math.Exp(v - m)
	}
	return m + math.Log(s)
}

// softmaxInPlace overwrites the logits z with their softmax
// probabilities, using the same max-shifted arithmetic as the old
// allocating softmax so results are bit-identical.
func softmaxInPlace(z []float64) {
	m := z[0]
	for _, v := range z[1:] {
		if v > m {
			m = v
		}
	}
	s := 0.0
	for i, v := range z {
		z[i] = math.Exp(v - m)
		s += z[i]
	}
	for i := range z {
		z[i] /= s
	}
}

// checkGradDim guards the GradInto contract: dst must already have the
// model's full dimension so implementations can slice it without bounds
// surprises.
func checkGradDim(got, want int) {
	if got != want {
		panic(fmt.Sprintf("model: GradInto dst has length %d, want %d", got, want))
	}
}

func argmax(z []float64) int {
	best := 0
	for i, v := range z[1:] {
		if v > z[best] {
			best = i + 1
		}
	}
	return best
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func max0(x float64) float64 {
	if x > 0 {
		return x
	}
	return 0
}
