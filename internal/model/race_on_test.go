//go:build race

package model

// raceEnabled reports that the race detector instruments this build;
// allocation accounting is not meaningful then.
const raceEnabled = true
