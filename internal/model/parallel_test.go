package model

import (
	"math"
	"math/rand"
	"testing"
)

func testModels() []Model {
	return []Model{
		LinearRegression{Features: 5},
		LogisticRegression{Features: 5},
		SoftmaxRegression{Features: 5, Classes: 3},
		MLP{Features: 5, Hidden: 7, Classes: 3},
	}
}

// TestParallelGradMatchesSequential: the sharded kernel must agree with
// the sequential kernel to FP-reassociation tolerance, for every model
// and several shard counts.
func TestParallelGradMatchesSequential(t *testing.T) {
	for _, m := range testModels() {
		rng := rand.New(rand.NewSource(7))
		params := m.InitParams(3)
		batch := randomBatch(rng, 33, 5, 3)
		want := m.Grad(params, batch)
		wantLoss := m.Loss(params, batch)
		for _, par := range []int{2, 3, 4, 8} {
			p := NewParallelGrad(par)
			got := make([]float64, m.Dim())
			p.GradInto(got, params, m, batch)
			for j := range want {
				if math.Abs(got[j]-want[j]) > 1e-12*(1+math.Abs(want[j])) {
					t.Errorf("%v par=%d: grad[%d] = %v, want %v", m, par, j, got[j], want[j])
					break
				}
			}
			if gotLoss := p.Loss(params, m, batch); math.Abs(gotLoss-wantLoss) > 1e-12*(1+math.Abs(wantLoss)) {
				t.Errorf("%v par=%d: loss = %v, want %v", m, par, gotLoss, wantLoss)
			}
			p.Close()
		}
	}
}

// TestParallelGradDeterministic: for a fixed shard count the sharded
// result must be bit-identical across repeated runs — the merge order is
// shard order, never goroutine-completion order.
func TestParallelGradDeterministic(t *testing.T) {
	m := MLP{Features: 5, Hidden: 7, Classes: 3}
	rng := rand.New(rand.NewSource(11))
	params := m.InitParams(5)
	batch := randomBatch(rng, 29, 5, 3)
	p := NewParallelGrad(4)
	defer p.Close()
	ref := make([]float64, m.Dim())
	p.GradInto(ref, params, m, batch)
	refLoss := p.Loss(params, m, batch)
	for run := 0; run < 20; run++ {
		got := make([]float64, m.Dim())
		p.GradInto(got, params, m, batch)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("run %d: grad[%d] = %v, want bit-identical %v", run, j, got[j], ref[j])
			}
		}
		if l := p.Loss(params, m, batch); l != refLoss {
			t.Fatalf("run %d: loss = %v, want bit-identical %v", run, l, refLoss)
		}
	}
}

// TestParallelGradNested: Run inside Run must not deadlock (tasks that
// find no idle worker execute inline on the submitter).
func TestParallelGradNested(t *testing.T) {
	p := NewParallelGrad(2)
	defer p.Close()
	sum := make([]int, 4)
	outer := make([]func(), 4)
	for i := range outer {
		i := i
		outer[i] = func() {
			inner := make([]func(), 4)
			for j := range inner {
				j := j
				inner[j] = func() { sum[i] += j }
			}
			p.Run(inner...)
		}
	}
	p.Run(outer...)
	for i, s := range sum {
		if s != 6 {
			t.Fatalf("sum[%d] = %d, want 6", i, s)
		}
	}
}

// TestNilParallelGrad: the nil pool is the sequential path.
func TestNilParallelGrad(t *testing.T) {
	var p *ParallelGrad
	if p.Par() != 1 {
		t.Fatalf("nil pool Par() = %d", p.Par())
	}
	p.Close() // must not panic
	m := LinearRegression{Features: 3}
	rng := rand.New(rand.NewSource(1))
	params := m.InitParams(2)
	batch := randomBatch(rng, 9, 3, 2)
	got := make([]float64, m.Dim())
	p.GradInto(got, params, m, batch)
	want := m.Grad(params, batch)
	for j := range want {
		if got[j] != want[j] {
			t.Fatalf("nil pool grad[%d] = %v, want %v", j, got[j], want[j])
		}
	}
	if NewParallelGrad(1) != nil {
		t.Fatal("NewParallelGrad(1) should be the nil sequential pool")
	}
}

// TestGradIntoAllocationFree: after warm-up the sequential GradInto
// kernel must not allocate.
func TestGradIntoAllocationFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is unreliable under -race")
	}
	for _, m := range testModels() {
		rng := rand.New(rand.NewSource(2))
		params := m.InitParams(4)
		batch := randomBatch(rng, 16, 5, 3)
		dst := make([]float64, m.Dim())
		m.GradInto(dst, params, batch) // warm the scratch pool
		allocs := testing.AllocsPerRun(20, func() {
			m.GradInto(dst, params, batch)
		})
		if allocs > 0 {
			t.Errorf("%v: GradInto allocates %v objects/op after warm-up", m, allocs)
		}
	}
}
