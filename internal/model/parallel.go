package model

import (
	"runtime"
	"sync"

	"isgc/internal/dataset"
	"isgc/internal/linalg"
)

// ParallelGrad is a long-lived worker pool for sharded gradient and loss
// kernels. A pool is created once (per engine run, per cluster worker) and
// reused every step, so the steady state spawns no goroutines and — with
// the package scratch pool supplying per-shard accumulators — allocates
// nothing.
//
// Sharding splits a batch into contiguous ranges, computes each range's
// gradient into its own scratch vector, and merges the shards in shard
// order with per-shard weights. For a fixed shard count the result is
// fully deterministic (the merge order never depends on goroutine
// scheduling), but it is not bit-identical to the sequential kernel:
// floating-point summation is reassociated across shard boundaries.
// Callers that require bit-identity with the sequential path (the engine
// simulator, replicated partitions in cluster workers) must parallelize
// at a coarser grain — one task per partition via Run — and keep each
// partition's kernel sequential.
//
// A nil *ParallelGrad is valid and means "sequential": Run executes the
// tasks inline and GradInto/Loss delegate to the plain kernels.
type ParallelGrad struct {
	par  int
	jobs chan func()
	wg   sync.WaitGroup
	once sync.Once
}

// NewParallelGrad creates a pool with par long-lived workers. par <= 0
// selects GOMAXPROCS. As a special case par == 1 returns nil — the
// sequential pool — so callers can treat "one shard" and "no pool"
// uniformly.
func NewParallelGrad(par int) *ParallelGrad {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par == 1 {
		return nil
	}
	p := &ParallelGrad{par: par, jobs: make(chan func())}
	for i := 0; i < par; i++ {
		go func() {
			for fn := range p.jobs {
				fn()
			}
		}()
	}
	return p
}

// Par reports the pool's parallelism (1 for the nil/sequential pool).
func (p *ParallelGrad) Par() int {
	if p == nil {
		return 1
	}
	return p.par
}

// Close tears the worker goroutines down. The pool must not be used after
// Close; Close is idempotent.
func (p *ParallelGrad) Close() {
	if p == nil {
		return
	}
	p.once.Do(func() { close(p.jobs) })
}

// Run executes the tasks concurrently on the pool and returns when all
// have finished. Tasks that find no idle worker run inline on the calling
// goroutine, which makes Run deadlock-free under nesting (a task may
// itself call Run) and keeps the caller productive instead of blocked.
// On the nil pool the tasks simply run sequentially.
func (p *ParallelGrad) Run(fns ...func()) {
	if p == nil || len(fns) == 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		fn := fn
		wg.Add(1)
		wrapped := func() {
			defer wg.Done()
			fn()
		}
		select {
		case p.jobs <- wrapped:
		default:
			wrapped()
		}
	}
	wg.Wait()
}

// shardRanges splits n items into at most p contiguous ranges of
// near-equal size, returning the boundary offsets (len = shards+1).
func shardRanges(n, p int) []int {
	if p > n {
		p = n
	}
	bounds := make([]int, p+1)
	for i := 0; i <= p; i++ {
		bounds[i] = i * n / p
	}
	return bounds
}

// GradInto computes the mean gradient of the batch into dst by sharding
// the batch across the pool: shard i computes the mean gradient of its
// range into pooled scratch, and the shards are merged in shard order as
// dst = Σ_i (len_i/len) · g_i. Deterministic for a fixed pool size; see
// the type comment for the bit-identity caveat. The nil pool delegates to
// m.GradInto unchanged.
func (p *ParallelGrad) GradInto(dst, params []float64, m Model, batch []dataset.Sample) {
	if p == nil || len(batch) < 2 {
		m.GradInto(dst, params, batch)
		return
	}
	bounds := shardRanges(len(batch), p.par)
	shards := len(bounds) - 1
	if shards == 1 {
		m.GradInto(dst, params, batch)
		return
	}
	scratch := make([]*[]float64, shards)
	fns := make([]func(), shards)
	for i := 0; i < shards; i++ {
		i := i
		scratch[i] = getVec(len(dst))
		fns[i] = func() {
			m.GradInto(*scratch[i], params, batch[bounds[i]:bounds[i+1]])
		}
	}
	p.Run(fns...)
	inv := 1 / float64(len(batch))
	for i := 0; i < shards; i++ {
		w := float64(bounds[i+1]-bounds[i]) * inv
		if i == 0 {
			linalg.ScaleInto(dst, w, *scratch[i])
		} else {
			linalg.AXPY(dst, w, *scratch[i])
		}
		putVec(scratch[i])
	}
}

// Loss computes the mean loss of the batch by sharding it across the
// pool and combining the per-shard means with per-shard weights, in
// shard order. Same determinism contract as GradInto.
func (p *ParallelGrad) Loss(params []float64, m Model, batch []dataset.Sample) float64 {
	if p == nil || len(batch) < 2 {
		return m.Loss(params, batch)
	}
	bounds := shardRanges(len(batch), p.par)
	shards := len(bounds) - 1
	if shards == 1 {
		return m.Loss(params, batch)
	}
	partial := make([]float64, shards)
	fns := make([]func(), shards)
	for i := 0; i < shards; i++ {
		i := i
		fns[i] = func() {
			partial[i] = m.Loss(params, batch[bounds[i]:bounds[i+1]])
		}
	}
	p.Run(fns...)
	sum := 0.0
	inv := 1 / float64(len(batch))
	for i, l := range partial {
		sum += l * float64(bounds[i+1]-bounds[i]) * inv
	}
	return sum
}
