package model

import (
	"fmt"

	"isgc/internal/dataset"
)

// Constant is a synthetic Model with an arbitrarily large parameter vector
// and O(Dim) kernels containing no arithmetic worth profiling: the loss is
// fixed and every gradient element takes the same value. Wire and gather
// benchmarks use it at dim ≥ 2^20 so serialization and transport dominate
// the measurement instead of model math; it deliberately never converges.
type Constant struct {
	// D is the parameter dimension.
	D int
	// G is the value every gradient element takes; 0 means 1e-6, small
	// enough that parameters barely drift over a benchmark run.
	G float64
}

func (m Constant) grad() float64 {
	if m.G != 0 {
		return m.G
	}
	return 1e-6
}

// Dim implements Model.
func (m Constant) Dim() int { return m.D }

// InitParams implements Model; the start point is the zero vector for
// every seed.
func (m Constant) InitParams(seed int64) []float64 { return make([]float64, m.D) }

// Loss implements Model with a constant.
func (m Constant) Loss(params []float64, batch []dataset.Sample) float64 { return 1 }

// Grad implements Model.
func (m Constant) Grad(params []float64, batch []dataset.Sample) []float64 {
	g := make([]float64, m.D)
	m.GradInto(g, params, batch)
	return g
}

// GradInto implements Model; it is a pure fill and allocates nothing.
func (m Constant) GradInto(dst, params []float64, batch []dataset.Sample) {
	g := m.grad()
	for i := range dst {
		dst[i] = g
	}
}

func (m Constant) String() string { return fmt.Sprintf("constant(dim=%d)", m.D) }
