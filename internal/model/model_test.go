package model

import (
	"math"
	"math/rand"
	"testing"

	"isgc/internal/dataset"
)

// numericalGrad approximates the gradient of m.Loss by central differences —
// the oracle every analytic Grad implementation is checked against.
func numericalGrad(m Model, params []float64, batch []dataset.Sample) []float64 {
	const h = 1e-6
	g := make([]float64, len(params))
	p := make([]float64, len(params))
	copy(p, params)
	for j := range p {
		orig := p[j]
		p[j] = orig + h
		lp := m.Loss(p, batch)
		p[j] = orig - h
		lm := m.Loss(p, batch)
		p[j] = orig
		g[j] = (lp - lm) / (2 * h)
	}
	return g
}

func randomBatch(rng *rand.Rand, n, dim int, classes int) []dataset.Sample {
	batch := make([]dataset.Sample, n)
	for i := range batch {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64()
		}
		var y float64
		if classes <= 0 {
			y = rng.NormFloat64() // regression target
		} else {
			y = float64(rng.Intn(classes))
		}
		batch[i] = dataset.Sample{X: x, Y: y}
	}
	return batch
}

func checkGradAgainstNumerical(t *testing.T, m Model, batch []dataset.Sample, seed int64, tol float64) {
	t.Helper()
	params := m.InitParams(seed)
	// Move away from the origin so gradients are non-trivial.
	rng := rand.New(rand.NewSource(seed + 1))
	for j := range params {
		params[j] += 0.3 * rng.NormFloat64()
	}
	analytic := m.Grad(params, batch)
	numeric := numericalGrad(m, params, batch)
	if len(analytic) != m.Dim() {
		t.Fatalf("%s: grad dim %d ≠ %d", m, len(analytic), m.Dim())
	}
	for j := range analytic {
		if diff := math.Abs(analytic[j] - numeric[j]); diff > tol {
			t.Fatalf("%s: grad[%d] analytic %v vs numeric %v (diff %g)", m, j, analytic[j], numeric[j], diff)
		}
	}
	// GradInto is the same kernel writing into caller scratch: bit-identical.
	into := make([]float64, m.Dim())
	m.GradInto(into, params, batch)
	for j := range analytic {
		if into[j] != analytic[j] {
			t.Fatalf("%s: GradInto[%d] = %v, Grad = %v (must be bit-identical)", m, j, into[j], analytic[j])
		}
	}
	// The sharded kernel reassociates FP summation, so it is checked
	// against the central-differences oracle at the same tolerance.
	pool := NewParallelGrad(4)
	defer pool.Close()
	pool.GradInto(into, params, m, batch)
	for j := range numeric {
		if diff := math.Abs(into[j] - numeric[j]); diff > tol {
			t.Fatalf("%s: sharded grad[%d] %v vs numeric %v (diff %g)", m, j, into[j], numeric[j], diff)
		}
	}
}

func TestLinearRegressionGradMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := LinearRegression{Features: 6}
	checkGradAgainstNumerical(t, m, randomBatch(rng, 12, 6, 0), 2, 1e-5)
}

func TestLogisticRegressionGradMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := LogisticRegression{Features: 5}
	checkGradAgainstNumerical(t, m, randomBatch(rng, 12, 5, 2), 3, 1e-5)
}

func TestSoftmaxRegressionGradMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := SoftmaxRegression{Features: 4, Classes: 3}
	checkGradAgainstNumerical(t, m, randomBatch(rng, 10, 4, 3), 4, 1e-5)
}

func TestMLPGradMatchesNumerical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := MLP{Features: 3, Hidden: 4, Classes: 3}
	checkGradAgainstNumerical(t, m, randomBatch(rng, 8, 3, 3), 5, 1e-4)
}

func TestDims(t *testing.T) {
	if (LinearRegression{Features: 7}).Dim() != 7 {
		t.Error("linreg dim")
	}
	if (LogisticRegression{Features: 7}).Dim() != 7 {
		t.Error("logreg dim")
	}
	if (SoftmaxRegression{Features: 4, Classes: 3}).Dim() != 12 {
		t.Error("softmax dim")
	}
	m := MLP{Features: 3, Hidden: 5, Classes: 2}
	if m.Dim() != 3*5+5+5*2+2 {
		t.Errorf("mlp dim = %d", m.Dim())
	}
	if len(m.InitParams(1)) != m.Dim() {
		t.Error("mlp init length")
	}
}

func TestInitParamsDeterministic(t *testing.T) {
	for _, m := range []Model{
		LinearRegression{Features: 5},
		LogisticRegression{Features: 5},
		SoftmaxRegression{Features: 4, Classes: 3},
		MLP{Features: 3, Hidden: 4, Classes: 2},
	} {
		a, b := m.InitParams(9), m.InitParams(9)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("%s: InitParams not deterministic", m)
			}
		}
	}
}

func TestEmptyBatch(t *testing.T) {
	for _, m := range []Model{
		LinearRegression{Features: 3},
		LogisticRegression{Features: 3},
		SoftmaxRegression{Features: 3, Classes: 2},
		MLP{Features: 3, Hidden: 2, Classes: 2},
	} {
		params := m.InitParams(1)
		if m.Loss(params, nil) != 0 {
			t.Errorf("%s: empty-batch loss must be 0", m)
		}
		g := m.Grad(params, nil)
		if len(g) != m.Dim() {
			t.Errorf("%s: empty-batch grad must have full dim", m)
		}
		for _, v := range g {
			if v != 0 {
				t.Errorf("%s: empty-batch grad must be zero", m)
			}
		}
	}
}

// SGD on each model must drive the loss down on a learnable task.
func TestSGDDecreasesLoss(t *testing.T) {
	linData, _, err := dataset.SyntheticLinear(256, 6, 0.05, 10)
	if err != nil {
		t.Fatal(err)
	}
	clsData, err := dataset.SyntheticClusters(256, 6, 3, 4.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Binary version for logistic regression.
	binSamples := make([]dataset.Sample, 0, 256)
	for i := 0; i < clsData.Len(); i++ {
		s := clsData.At(i)
		if s.Y < 2 {
			binSamples = append(binSamples, s)
		}
	}
	binData, err := dataset.New(binSamples)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		m    Model
		data *dataset.Dataset
		lr   float64
	}{
		{LinearRegression{Features: 6}, linData, 0.05},
		{LogisticRegression{Features: 6}, binData, 0.2},
		{SoftmaxRegression{Features: 6, Classes: 3}, clsData, 0.2},
		{MLP{Features: 6, Hidden: 8, Classes: 3}, clsData, 0.2},
	}
	for _, tc := range cases {
		all := make([]dataset.Sample, tc.data.Len())
		for i := range all {
			all[i] = tc.data.At(i)
		}
		params := tc.m.InitParams(42)
		initial := tc.m.Loss(params, all)
		for step := 0; step < 150; step++ {
			g := tc.m.Grad(params, all)
			for j := range params {
				params[j] -= tc.lr * g[j]
			}
		}
		final := tc.m.Loss(params, all)
		if !(final < 0.6*initial) {
			t.Errorf("%s: loss %v → %v; expected ≥40%% reduction", tc.m, initial, final)
		}
	}
}

// Gradient linearity: the mean gradient over a union of equal-size batches
// is the mean of per-batch gradients — the algebraic fact that makes
// summing per-partition gradients (IS-GC encoding) equal the gradient over
// the union of partitions.
func TestGradLinearityOverBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := SoftmaxRegression{Features: 4, Classes: 3}
	params := m.InitParams(7)
	b1 := randomBatch(rng, 10, 4, 3)
	b2 := randomBatch(rng, 10, 4, 3)
	union := append(append([]dataset.Sample{}, b1...), b2...)
	g1 := m.Grad(params, b1)
	g2 := m.Grad(params, b2)
	gu := m.Grad(params, union)
	for j := range gu {
		if diff := math.Abs(gu[j] - (g1[j]+g2[j])/2); diff > 1e-12 {
			t.Fatalf("grad[%d]: union %v ≠ mean of parts %v", j, gu[j], (g1[j]+g2[j])/2)
		}
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", s)
	}
}

func TestLogSumExpStability(t *testing.T) {
	z := []float64{1000, 1000}
	if got := logSumExp(z); math.IsInf(got, 1) || math.Abs(got-(1000+math.Log(2))) > 1e-9 {
		t.Errorf("logSumExp overflow: %v", got)
	}
	z2 := []float64{-1000, -1000}
	if got := logSumExp(z2); math.IsInf(got, -1) || math.Abs(got-(-1000+math.Log(2))) > 1e-9 {
		t.Errorf("logSumExp underflow: %v", got)
	}
}

func TestSoftmaxSumsToOne(t *testing.T) {
	p := []float64{1, 2, 3, 1000}
	softmaxInPlace(p)
	sum := 0.0
	for _, v := range p {
		if v < 0 {
			t.Fatal("negative probability")
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sums to %v", sum)
	}
}

func TestStringers(t *testing.T) {
	for _, m := range []Model{
		LinearRegression{Features: 2},
		LogisticRegression{Features: 2},
		SoftmaxRegression{Features: 2, Classes: 2},
		MLP{Features: 2, Hidden: 2, Classes: 2},
	} {
		if m.String() == "" {
			t.Errorf("%T: empty String()", m)
		}
	}
}
