package model

import "sync"

// vecPool recycles the per-call scratch vectors (logits, hidden
// activations, per-shard gradient accumulators) so that the steady-state
// compute path — GradInto, Loss, Predict — allocates nothing once the pool
// is warm. Buffers are shared across models and goroutines; a buffer is
// reused at whatever capacity it was first grown to.
var vecPool = sync.Pool{New: func() any { return new([]float64) }}

// getVec borrows a length-n vector with unspecified contents. Callers that
// accumulate into it must zero it first (zeroVec); callers that assign every
// element need not.
func getVec(n int) *[]float64 {
	vp := vecPool.Get().(*[]float64)
	if cap(*vp) < n {
		*vp = make([]float64, n)
	}
	*vp = (*vp)[:n]
	return vp
}

// putVec returns a borrowed vector to the pool.
func putVec(vp *[]float64) { vecPool.Put(vp) }

// zeroVec clears v in place.
func zeroVec(v []float64) {
	for i := range v {
		v[i] = 0
	}
}
