package model

import (
	"math/rand"
	"testing"

	"isgc/internal/dataset"
)

// Compile-time interface compliance.
var (
	_ Classifier = LogisticRegression{}
	_ Classifier = SoftmaxRegression{}
	_ Classifier = MLP{}
)

func TestLogisticPredict(t *testing.T) {
	m := LogisticRegression{Features: 2}
	params := []float64{1, -1}
	if m.Predict(params, []float64{2, 1}) != 1 { // logit 1 ≥ 0
		t.Error("positive logit must predict class 1")
	}
	if m.Predict(params, []float64{0, 3}) != 0 { // logit -3 < 0
		t.Error("negative logit must predict class 0")
	}
}

func TestSoftmaxPredictArgmax(t *testing.T) {
	m := SoftmaxRegression{Features: 2, Classes: 3}
	// Class k's row is e_k-ish: class 2 has the largest weight on x[1].
	params := []float64{
		1, 0, // class 0
		0, 1, // class 1
		0, 5, // class 2
	}
	if got := m.Predict(params, []float64{0, 1}); got != 2 {
		t.Fatalf("Predict = %d, want 2", got)
	}
	if got := m.Predict(params, []float64{10, 0}); got != 0 {
		t.Fatalf("Predict = %d, want 0", got)
	}
}

func TestArgmaxFirstWinsOnTies(t *testing.T) {
	if argmax([]float64{1, 1, 1}) != 0 {
		t.Error("ties must resolve to the first index")
	}
	if argmax([]float64{0, 2, 2}) != 1 {
		t.Error("first maximum wins")
	}
}

func TestAccuracy(t *testing.T) {
	m := SoftmaxRegression{Features: 1, Classes: 2}
	params := []float64{
		-1, // class 0 likes negative x
		1,  // class 1 likes positive x
	}
	batch := []dataset.Sample{
		{X: []float64{1}, Y: 1},  // correct
		{X: []float64{-1}, Y: 0}, // correct
		{X: []float64{1}, Y: 0},  // wrong
		{X: []float64{-2}, Y: 1}, // wrong
	}
	if got := Accuracy(m, params, batch); got != 0.5 {
		t.Fatalf("Accuracy = %v, want 0.5", got)
	}
	if Accuracy(m, params, nil) != 0 {
		t.Fatal("empty batch accuracy must be 0")
	}
}

// Trained classifiers must reach high accuracy on well-separated clusters,
// for every classifier model.
func TestTrainingImprovesAccuracy(t *testing.T) {
	data, err := dataset.SyntheticClusters(300, 5, 3, 4.0, 13)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]dataset.Sample, data.Len())
	for i := range all {
		all[i] = data.At(i)
	}
	for _, m := range []Classifier{
		SoftmaxRegression{Features: 5, Classes: 3},
		MLP{Features: 5, Hidden: 8, Classes: 3},
	} {
		params := m.InitParams(3)
		before := Accuracy(m, params, all)
		for step := 0; step < 200; step++ {
			g := m.Grad(params, all)
			for j := range params {
				params[j] -= 0.2 * g[j]
			}
		}
		after := Accuracy(m, params, all)
		if !(after > before) || after < 0.9 {
			t.Errorf("%s: accuracy %v → %v, want ≥0.9 after training", m, before, after)
		}
	}
}

// Binary accuracy for logistic regression on a separable task.
func TestLogisticAccuracyOnSeparableData(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	batch := make([]dataset.Sample, 200)
	for i := range batch {
		x := []float64{rng.NormFloat64(), rng.NormFloat64()}
		y := 0.0
		if x[0]+x[1] > 0 {
			y = 1
		}
		batch[i] = dataset.Sample{X: x, Y: y}
	}
	m := LogisticRegression{Features: 2}
	params := m.InitParams(1)
	for step := 0; step < 300; step++ {
		g := m.Grad(params, batch)
		for j := range params {
			params[j] -= 0.5 * g[j]
		}
	}
	if acc := Accuracy(m, params, batch); acc < 0.95 {
		t.Fatalf("accuracy %v, want ≥0.95 on separable data", acc)
	}
}
