// Package analysis provides the numerical tools behind the paper's
// theoretical claims (Sec. VII):
//
//   - empirical estimation of the smoothness constant L (Assumption 1) and
//     the gradient second-moment bound σ² (Assumption 3) for a workload;
//   - per-step validation of the Theorem 12 descent inequality
//     E[f(β^{t+1})] ≤ f(β^t) − η‖∇f(β^t)‖² + L·η²·σ²/2
//     (stated here for the count-normalized update the engine performs, so
//     the recovered gradient is an unbiased estimate of ∇f per
//     Assumption 2);
//   - exact and Monte-Carlo computation of the expected recovered fraction
//     E[α(G[W'])]·c/n over uniform random w-subsets W', the quantity
//     plotted in Figs. 12(a) and 13(a).
package analysis

import (
	"fmt"
	"math"
	"math/rand"

	"isgc/internal/bitset"
	"isgc/internal/dataset"
	"isgc/internal/graph"
	"isgc/internal/linalg"
	"isgc/internal/model"
	"isgc/internal/placement"
)

// EstimateLipschitz returns an empirical lower estimate of the Lipschitz
// constant L of ∇f on the full dataset: the maximum of
// ‖∇f(a) − ∇f(b)‖ / ‖a − b‖ over random parameter pairs drawn within
// radius of the model's initialization. For convex quadratic-like losses
// this converges quickly to the true L from below; callers should apply a
// safety factor when using it as an upper bound.
func EstimateLipschitz(m model.Model, data []dataset.Sample, trials int, radius float64, seed int64) float64 {
	if trials <= 0 || radius <= 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	base := m.InitParams(seed)
	best := 0.0
	a := make([]float64, len(base))
	b := make([]float64, len(base))
	for t := 0; t < trials; t++ {
		for j := range base {
			a[j] = base[j] + radius*rng.NormFloat64()
			b[j] = base[j] + radius*rng.NormFloat64()
		}
		ga := m.Grad(a, data)
		gb := m.Grad(b, data)
		linalg.AXPY(ga, -1, gb)
		num := linalg.Norm2(ga)
		den := 0.0
		for j := range a {
			den += (a[j] - b[j]) * (a[j] - b[j])
		}
		den = math.Sqrt(den)
		if den > 1e-12 && num/den > best {
			best = num / den
		}
	}
	return best
}

// EstimateSigma2 returns an empirical estimate of σ² = max E‖ĝ‖² over
// partial-recovery gradient estimates: it samples random partition subsets
// of each size, computes the count-normalized partial mean gradient at
// parameters near the initialization, and returns the maximum squared norm
// observed (Assumption 3's bound).
func EstimateSigma2(m model.Model, parts [][]dataset.Sample, trials int, radius float64, seed int64) float64 {
	if trials <= 0 || len(parts) == 0 {
		return 0
	}
	rng := rand.New(rand.NewSource(seed))
	base := m.InitParams(seed)
	p := make([]float64, len(base))
	worst := 0.0
	n := len(parts)
	for t := 0; t < trials; t++ {
		for j := range base {
			p[j] = base[j] + radius*rng.NormFloat64()
		}
		k := 1 + rng.Intn(n)
		perm := rng.Perm(n)[:k]
		ghat := make([]float64, len(base))
		for _, d := range perm {
			linalg.AddTo(ghat, m.Grad(p, parts[d]))
		}
		linalg.Scale(ghat, 1/float64(k))
		if sq := linalg.Dot(ghat, ghat); sq > worst {
			worst = sq
		}
	}
	return worst
}

// DescentReport summarizes a Theorem 12 validation run.
type DescentReport struct {
	// Steps is the number of SGD steps checked.
	Steps int
	// Violations counts steps where the realized loss exceeded the
	// Theorem 12 bound (with the estimated L and σ²).
	Violations int
	// MaxSlack is the largest amount by which the bound exceeded the
	// realized loss (how loose the bound is at its loosest).
	MaxSlack float64
	// FinalLoss is the loss after the run.
	FinalLoss float64
	// L and Sigma2 are the constants used.
	L, Sigma2 float64
}

// CheckDescent runs `steps` SGD steps with partial recovery — at each step
// a uniformly random availability pattern recovers `recover` of the n
// partitions — and validates the Theorem 12 inequality
//
//	f(β^{t+1}) ≤ f(β^t) − η·⟨∇f(β^t), ĝ⟩ + L·η²·‖ĝ‖²/2
//
// pathwise (the deterministic descent lemma, whose expectation over
// Assumptions 2-3 is Theorem 12), plus the averaged form with σ². The
// pathwise form must hold for every step whenever L is a true Lipschitz
// bound; the report counts violations (expected: 0 with a safety margin on
// L).
func CheckDescent(m model.Model, data []dataset.Sample, n, recover int, eta float64, steps int, lSafety float64, seed int64) (*DescentReport, error) {
	if n <= 0 || recover <= 0 || recover > n {
		return nil, fmt.Errorf("analysis: need 0 < recover ≤ n, got n=%d recover=%d", n, recover)
	}
	if eta <= 0 || steps <= 0 {
		return nil, fmt.Errorf("analysis: need eta > 0 and steps > 0")
	}
	if len(data)%n != 0 {
		return nil, fmt.Errorf("analysis: %d samples not divisible by n=%d", len(data), n)
	}
	size := len(data) / n
	parts := make([][]dataset.Sample, n)
	for d := range parts {
		parts[d] = data[d*size : (d+1)*size]
	}

	lip := EstimateLipschitz(m, data, 60, 0.5, seed) * lSafety
	sigma2 := EstimateSigma2(m, parts, 120, 0.5, seed+1)

	rng := rand.New(rand.NewSource(seed + 2))
	params := m.InitParams(seed)
	rep := &DescentReport{Steps: steps, L: lip, Sigma2: sigma2}
	for t := 0; t < steps; t++ {
		lossBefore := m.Loss(params, data)
		gradFull := m.Grad(params, data)

		// Partial recovery: `recover` uniformly random partitions.
		perm := rng.Perm(n)[:recover]
		ghat := make([]float64, len(params))
		for _, d := range perm {
			linalg.AddTo(ghat, m.Grad(params, parts[d]))
		}
		linalg.Scale(ghat, 1/float64(recover))

		linalg.AXPY(params, -eta, ghat)
		lossAfter := m.Loss(params, data)

		bound := lossBefore - eta*linalg.Dot(gradFull, ghat) + lip*eta*eta*linalg.Dot(ghat, ghat)/2
		if lossAfter > bound+1e-12 {
			rep.Violations++
		}
		if slack := bound - lossAfter; slack > rep.MaxSlack {
			rep.MaxSlack = slack
		}
	}
	rep.FinalLoss = m.Loss(params, data)
	return rep, nil
}

// VarianceProfile returns, for each recovery count k = 1..n, the empirical
// mean squared error E‖ĝ_mean − ∇f‖² of the count-normalized partial
// gradient built from k uniformly random partitions, evaluated at random
// parameters near the initialization. The profile quantifies the variance
// mechanism behind Fig. 12(b): with i.i.d. partitions the MSE decays like
// (n-k)/(k·(n-1)) · σ²_part (sampling without replacement), so more
// recovery ⇒ lower-variance steps ⇒ fewer steps to threshold, vanishing
// exactly at k = n.
func VarianceProfile(m model.Model, parts [][]dataset.Sample, trials int, radius float64, seed int64) ([]float64, error) {
	n := len(parts)
	if n == 0 || trials <= 0 {
		return nil, fmt.Errorf("analysis: need partitions and trials > 0")
	}
	all := make([]dataset.Sample, 0)
	for _, p := range parts {
		all = append(all, p...)
	}
	rng := rand.New(rand.NewSource(seed))
	base := m.InitParams(seed)
	p := make([]float64, len(base))
	out := make([]float64, n)
	for k := 1; k <= n; k++ {
		sum := 0.0
		for t := 0; t < trials; t++ {
			for j := range base {
				p[j] = base[j] + radius*rng.NormFloat64()
			}
			full := m.Grad(p, all)
			ghat := make([]float64, len(base))
			for _, d := range rng.Perm(n)[:k] {
				linalg.AddTo(ghat, m.Grad(p, parts[d]))
			}
			linalg.Scale(ghat, 1/float64(k))
			linalg.AXPY(ghat, -1, full)
			sum += linalg.Dot(ghat, ghat)
		}
		out[k-1] = sum / float64(trials)
	}
	return out, nil
}

// ExpectedRecovery returns E[α(G[W'])]·c/n where W' is a uniformly random
// w-subset of the n workers — the expected recovered fraction plotted in
// Figs. 12(a)/13(a). For small instances (C(n, w) ≤ exactLimit) the
// expectation is exact by enumeration; otherwise it is estimated from
// `trials` Monte-Carlo draws. The exact path makes the figure values
// checkable to machine precision.
func ExpectedRecovery(p *placement.Placement, w int, exactLimit, trials int, seed int64) (float64, error) {
	n := p.N()
	if w <= 0 || w > n {
		return 0, fmt.Errorf("analysis: need 0 < w ≤ %d, got %d", n, w)
	}
	scale := float64(p.C()) / float64(n)
	if binomial(n, w) <= int64(exactLimit) {
		sum, count := 0.0, 0
		forEachSubset(n, w, func(workers []int) {
			avail := bitset.FromSlice(workers)
			sum += float64(graph.IndependenceNumber(p.ConflictGraph(), avail))
			count++
		})
		return sum / float64(count) * scale, nil
	}
	if trials <= 0 {
		return 0, fmt.Errorf("analysis: instance too large for exact enumeration and trials=%d", trials)
	}
	rng := rand.New(rand.NewSource(seed))
	sum := 0.0
	for t := 0; t < trials; t++ {
		avail := bitset.FromSlice(rng.Perm(n)[:w])
		sum += float64(graph.IndependenceNumber(p.ConflictGraph(), avail))
	}
	return sum / float64(trials) * scale, nil
}

func binomial(n, k int) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	out := int64(1)
	for i := 1; i <= k; i++ {
		out = out * int64(n-k+i) / int64(i)
		if out < 0 || out > 1<<40 {
			return 1 << 40 // saturate: definitely not "small"
		}
	}
	return out
}

func forEachSubset(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(idx)
			return
		}
		for v := start; v <= n-(k-depth); v++ {
			idx[depth] = v
			rec(v+1, depth+1)
		}
	}
	rec(0, 0)
}
