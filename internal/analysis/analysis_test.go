package analysis

import (
	"math"
	"testing"

	"isgc/internal/dataset"
	"isgc/internal/model"
	"isgc/internal/placement"
)

func linearTask(t *testing.T, m, dim int) (model.Model, []dataset.Sample) {
	t.Helper()
	d, _, err := dataset.SyntheticLinear(m, dim, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	samples := make([]dataset.Sample, d.Len())
	for i := range samples {
		samples[i] = d.At(i)
	}
	return model.LinearRegression{Features: dim}, samples
}

// For linear regression the true Lipschitz constant of the mean gradient
// is λ_max(XᵀX)/m ≤ tr(XᵀX)/m; the empirical estimate must land in
// (0, tr/m] — the gradient map is exactly linear, so every sampled ratio
// is a valid lower bound and none can exceed λ_max.
func TestEstimateLipschitzLinearRegression(t *testing.T) {
	mdl, data := linearTask(t, 200, 4)
	est := EstimateLipschitz(mdl, data, 80, 1.0, 1)
	if est <= 0 {
		t.Fatal("estimate must be positive")
	}
	// tr(XᵀX)/m = mean squared row norm.
	trace := 0.0
	for _, s := range data {
		for _, x := range s.X {
			trace += x * x
		}
	}
	trace /= float64(len(data))
	if est > trace+1e-9 {
		t.Fatalf("estimate %v exceeds trace bound %v", est, trace)
	}
	// With x ~ N(0, I_4), λ_max ≈ a bit above 1; the estimate should be
	// at least the average eigenvalue (= trace/4).
	if est < trace/4-0.2 {
		t.Fatalf("estimate %v suspiciously below mean eigenvalue %v", est, trace/4)
	}
}

func TestEstimateLipschitzDegenerateInputs(t *testing.T) {
	mdl, data := linearTask(t, 10, 2)
	if EstimateLipschitz(mdl, data, 0, 1, 1) != 0 {
		t.Error("trials=0 must yield 0")
	}
	if EstimateLipschitz(mdl, data, 5, 0, 1) != 0 {
		t.Error("radius=0 must yield 0")
	}
}

func TestEstimateSigma2Positive(t *testing.T) {
	mdl, data := linearTask(t, 40, 3)
	parts := [][]dataset.Sample{data[:10], data[10:20], data[20:30], data[30:]}
	s2 := EstimateSigma2(mdl, parts, 50, 0.5, 2)
	if s2 <= 0 {
		t.Fatalf("σ² estimate %v, want > 0", s2)
	}
	if EstimateSigma2(mdl, nil, 50, 0.5, 2) != 0 {
		t.Error("no partitions must yield 0")
	}
	if EstimateSigma2(mdl, parts, 0, 0.5, 2) != 0 {
		t.Error("trials=0 must yield 0")
	}
}

// Theorem 12 (pathwise descent form): with a safety factor on the
// estimated L, the inequality must hold at every step, for full and for
// partial recovery.
func TestCheckDescentNoViolations(t *testing.T) {
	mdl, data := linearTask(t, 240, 4)
	for _, recover := range []int{1, 2, 4} {
		rep, err := CheckDescent(mdl, data, 4, recover, 0.05, 120, 1.5, 7)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Violations != 0 {
			t.Fatalf("recover=%d: %d/%d descent violations (L=%v)", recover, rep.Violations, rep.Steps, rep.L)
		}
		if rep.Steps != 120 {
			t.Fatalf("steps = %d", rep.Steps)
		}
		if rep.L <= 0 || rep.Sigma2 <= 0 {
			t.Fatal("constants must be positive")
		}
		if math.IsNaN(rep.FinalLoss) || rep.FinalLoss < 0 {
			t.Fatalf("final loss %v", rep.FinalLoss)
		}
		if rep.MaxSlack < 0 {
			t.Fatalf("MaxSlack %v", rep.MaxSlack)
		}
	}
}

// Convergence corollary of Theorem 12: with a small enough η the loss
// decreases substantially even under partial recovery.
func TestCheckDescentConverges(t *testing.T) {
	mdl, data := linearTask(t, 240, 4)
	initial := mdl.Loss(mdl.InitParams(7), data)
	rep, err := CheckDescent(mdl, data, 4, 2, 0.05, 200, 1.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !(rep.FinalLoss < 0.3*initial) {
		t.Fatalf("loss %v → %v: insufficient descent under partial recovery", initial, rep.FinalLoss)
	}
}

func TestCheckDescentErrors(t *testing.T) {
	mdl, data := linearTask(t, 240, 4)
	cases := []struct {
		n, recover int
		eta        float64
		steps      int
	}{
		{0, 1, 0.1, 10},
		{4, 0, 0.1, 10},
		{4, 5, 0.1, 10},
		{4, 2, 0, 10},
		{4, 2, 0.1, 0},
		{7, 2, 0.1, 10}, // 240 not divisible by 7
	}
	for i, tc := range cases {
		if _, err := CheckDescent(mdl, data, tc.n, tc.recover, tc.eta, tc.steps, 1.5, 1); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

// The variance of the count-normalized partial gradient must decrease
// monotonically (up to sampling noise) in the recovered count and vanish
// at full recovery — the mechanism behind Fig. 12(b)'s step counts.
func TestVarianceProfileDecreases(t *testing.T) {
	mdl, data := linearTask(t, 240, 4)
	parts := make([][]dataset.Sample, 4)
	for d := range parts {
		parts[d] = data[d*60 : (d+1)*60]
	}
	prof, err := VarianceProfile(mdl, parts, 200, 0.5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != 4 {
		t.Fatalf("profile length %d", len(prof))
	}
	for k := 1; k < len(prof); k++ {
		if prof[k] > prof[k-1]*1.1 {
			t.Fatalf("variance not decreasing: k=%d %v after %v", k+1, prof[k], prof[k-1])
		}
	}
	if prof[3] > 1e-20 {
		t.Fatalf("full recovery must have zero MSE, got %v", prof[3])
	}
	if prof[0] <= 0 {
		t.Fatalf("partial recovery must have positive MSE, got %v", prof[0])
	}
	// Without-replacement scaling: MSE(k=1)/MSE(k=2) ≈ (3/1)/(2/2·... ) —
	// ratio (n-k)/(k) / ((n-k')/(k')) for n=4: k=1: 3/1=3, k=2: 2/2=1 ⇒
	// ratio 3. Allow generous sampling slack.
	ratio := prof[0] / prof[1]
	if ratio < 2 || ratio > 4.5 {
		t.Fatalf("MSE(1)/MSE(2) = %v, want ≈3 (without-replacement scaling)", ratio)
	}
}

func TestVarianceProfileErrors(t *testing.T) {
	mdl, _ := linearTask(t, 10, 2)
	if _, err := VarianceProfile(mdl, nil, 10, 0.5, 1); err == nil {
		t.Error("no partitions must error")
	}
	if _, err := VarianceProfile(mdl, make([][]dataset.Sample, 2), 0, 0.5, 1); err == nil {
		t.Error("trials=0 must error")
	}
}

// Exact expected recovery for FR(4,2) at w=2: availability pairs are the 6
// 2-subsets; the 2 same-group pairs recover 1 worker (fraction 1/2), the 4
// cross-group pairs recover 2 workers (fraction 1):
// E = (2·1/2 + 4·1)/6 = 5/6.
func TestExpectedRecoveryExactFR(t *testing.T) {
	p, err := placement.FR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExpectedRecovery(p, 2, 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-5.0/6) > 1e-12 {
		t.Fatalf("E[recovery] = %v, want 5/6", got)
	}
}

// CR(4,2) at w=2: the 2 diagonal pairs recover everything, the 4 adjacent
// pairs recover half: E = (4·1/2 + 2·1)/6 = 2/3.
func TestExpectedRecoveryExactCR(t *testing.T) {
	p, err := placement.CR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExpectedRecovery(p, 2, 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-2.0/3) > 1e-12 {
		t.Fatalf("E[recovery] = %v, want 2/3", got)
	}
}

// Monte-Carlo path agrees with the exact path within sampling error.
func TestExpectedRecoveryMonteCarloAgreesWithExact(t *testing.T) {
	p, err := placement.CR(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := ExpectedRecovery(p, 4, 1000, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := ExpectedRecovery(p, 4, 1, 20000, 2) // force Monte Carlo
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exact-mc) > 0.02 {
		t.Fatalf("exact %v vs MC %v", exact, mc)
	}
}

func TestExpectedRecoveryErrors(t *testing.T) {
	p, err := placement.CR(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ExpectedRecovery(p, 0, 100, 100, 1); err == nil {
		t.Error("w=0 must error")
	}
	if _, err := ExpectedRecovery(p, 7, 100, 100, 1); err == nil {
		t.Error("w>n must error")
	}
	if _, err := ExpectedRecovery(p, 3, 1, 0, 1); err == nil {
		t.Error("too-large exact with trials=0 must error")
	}
}

// Theorem 4 corollary at the expectation level: E[recovery] of FR ≥ CR for
// every w (exact enumeration).
func TestExpectedRecoveryFRDominatesCR(t *testing.T) {
	fr, err := placement.FR(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := placement.CR(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 8; w++ {
		efr, err := ExpectedRecovery(fr, w, 1000, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		ecr, err := ExpectedRecovery(cr, w, 1000, 0, 1)
		if err != nil {
			t.Fatal(err)
		}
		if efr < ecr-1e-12 {
			t.Fatalf("w=%d: E[FR]=%v < E[CR]=%v", w, efr, ecr)
		}
	}
}

func TestBinomialSaturation(t *testing.T) {
	if binomial(4, 2) != 6 {
		t.Fatal("binomial(4,2)")
	}
	if binomial(4, 5) != 0 || binomial(4, -1) != 0 {
		t.Fatal("out-of-range binomial")
	}
	if binomial(100, 50) != 1<<40 {
		t.Fatal("large binomial must saturate")
	}
}
