package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestVectorOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}

	c := CloneVec(a)
	c[0] = 9
	if a[0] != 1 {
		t.Fatal("CloneVec must copy")
	}

	d := CloneVec(a)
	AddTo(d, b)
	if d[0] != 5 || d[1] != 7 || d[2] != 9 {
		t.Fatalf("AddTo = %v", d)
	}

	e := CloneVec(a)
	AXPY(e, 2, b)
	if e[0] != 9 || e[1] != 12 || e[2] != 15 {
		t.Fatalf("AXPY = %v", e)
	}

	f := CloneVec(a)
	Scale(f, -1)
	if f[0] != -1 || f[2] != -3 {
		t.Fatalf("Scale = %v", f)
	}

	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := Norm2([]float64{3, 4}); got != 5 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if got := MaxAbsDiff(a, b); got != 3 {
		t.Fatalf("MaxAbsDiff = %v, want 3", got)
	}
	if len(Zeros(4)) != 4 {
		t.Fatal("Zeros length")
	}

	g := []float64{0, 0, 0}
	AXPYInto(g, 2, b, a)
	if g[0] != 9 || g[1] != 12 || g[2] != 15 {
		t.Fatalf("AXPYInto = %v", g)
	}
	// Aliasing dst with y degenerates to AXPY.
	h := CloneVec(a)
	AXPYInto(h, 2, b, h)
	if h[0] != 9 || h[1] != 12 || h[2] != 15 {
		t.Fatalf("aliased AXPYInto = %v", h)
	}

	s := []float64{7, 7, 7}
	ScaleInto(s, 3, a)
	if s[0] != 3 || s[1] != 6 || s[2] != 9 {
		t.Fatalf("ScaleInto = %v", s)
	}

	ZeroVec(s)
	if s[0] != 0 || s[1] != 0 || s[2] != 0 {
		t.Fatalf("ZeroVec = %v", s)
	}
}

func TestVectorOpsPanicOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"AddTo":      func() { AddTo([]float64{1}, []float64{1, 2}) },
		"AXPY":       func() { AXPY([]float64{1}, 2, []float64{1, 2}) },
		"AXPYInto":   func() { AXPYInto([]float64{1}, 2, []float64{1, 2}, []float64{1, 2}) },
		"ScaleInto":  func() { ScaleInto([]float64{1}, 2, []float64{1, 2}) },
		"Dot":        func() { Dot([]float64{1}, []float64{1, 2}) },
		"MaxAbsDiff": func() { MaxAbsDiff([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic on length mismatch", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("Set/At broken")
	}
	r := m.Row(1)
	r[0] = 7
	if m.At(1, 0) != 7 {
		t.Fatal("Row must be a view")
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone must deep-copy")
	}
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 5 {
		t.Fatal("T broken")
	}
}

func TestMatVecAndVecMat(t *testing.T) {
	m := NewMatrix(2, 3)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	y, err := m.MatVec([]float64{1, 0, -1})
	if err != nil {
		t.Fatal(err)
	}
	if y[0] != -2 || y[1] != -2 {
		t.Fatalf("MatVec = %v", y)
	}
	z, err := m.VecMat([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if z[0] != 5 || z[1] != 7 || z[2] != 9 {
		t.Fatalf("VecMat = %v", z)
	}
	if _, err := m.MatVec([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("MatVec shape error = %v", err)
	}
	if _, err := m.VecMat([]float64{1}); !errors.Is(err, ErrShape) {
		t.Fatalf("VecMat shape error = %v", err)
	}
}

func TestMatMul(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 3, 4})
	b := NewMatrix(2, 2)
	copy(b.Data, []float64{0, 1, 1, 0})
	c, err := a.MatMul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 1, 4, 3}
	for i, v := range want {
		if c.Data[i] != v {
			t.Fatalf("MatMul = %v, want %v", c.Data, want)
		}
	}
	if _, err := a.MatMul(NewMatrix(3, 2)); !errors.Is(err, ErrShape) {
		t.Fatal("expected shape error")
	}
}

func TestSelectRows(t *testing.T) {
	m := NewMatrix(3, 2)
	copy(m.Data, []float64{1, 2, 3, 4, 5, 6})
	s, err := m.SelectRows([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	if s.At(0, 0) != 5 || s.At(1, 1) != 2 {
		t.Fatalf("SelectRows = %v", s.Data)
	}
	if _, err := m.SelectRows([]int{3}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := m.SelectRows([]int{-1}); err == nil {
		t.Fatal("expected out-of-range error")
	}
}

func TestSolveKnownSystem(t *testing.T) {
	a := NewMatrix(3, 3)
	copy(a.Data, []float64{2, 1, -1, -3, -1, 2, -2, 1, 2})
	b := []float64{8, -11, -3}
	x, err := Solve(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !almostEqual(x[i], want[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, want)
		}
	}
	// Inputs must be unmodified.
	if a.At(0, 0) != 2 || b[0] != 8 {
		t.Fatal("Solve must not modify inputs")
	}
}

func TestSolveRequiresPivoting(t *testing.T) {
	// Leading zero pivot forces a row swap.
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{0, 1, 1, 0})
	x, err := Solve(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 7, 1e-12) || !almostEqual(x[1], 3, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveShapeErrors(t *testing.T) {
	if _, err := Solve(NewMatrix(2, 3), []float64{1, 2}); !errors.Is(err, ErrShape) {
		t.Fatal("expected shape error for non-square")
	}
	if _, err := Solve(NewMatrix(2, 2), []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatal("expected shape error for bad b")
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined but consistent: recovers exact solution.
	a := NewMatrix(4, 2)
	copy(a.Data, []float64{1, 0, 0, 1, 1, 1, 2, 1})
	xTrue := []float64{3, -2}
	b, err := a.MatVec(xTrue)
	if err != nil {
		t.Fatal(err)
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xTrue {
		if !almostEqual(x[i], xTrue[i], 1e-9) {
			t.Fatalf("x = %v, want %v", x, xTrue)
		}
	}
}

func TestLeastSquaresResidualOrthogonality(t *testing.T) {
	// The residual of a least-squares solution is orthogonal to the column
	// space: Aᵀ(Ax − b) = 0.
	rng := rand.New(rand.NewSource(3))
	a := NewMatrix(6, 3)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	b := make([]float64, 6)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := LeastSquares(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := a.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	res := CloneVec(ax)
	AXPY(res, -1, b)
	atr, err := a.T().MatVec(res)
	if err != nil {
		t.Fatal(err)
	}
	if Norm2(atr) > 1e-8 {
		t.Fatalf("‖Aᵀr‖ = %v, want ~0", Norm2(atr))
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(NewMatrix(3, 2), []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatal("expected shape error")
	}
	// Rank-deficient A: duplicate columns.
	a := NewMatrix(3, 2)
	copy(a.Data, []float64{1, 1, 2, 2, 3, 3})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveAnyUniqueSystem(t *testing.T) {
	a := NewMatrix(2, 2)
	copy(a.Data, []float64{2, 0, 0, 4})
	x, err := SolveAny(a, []float64{6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 3, 1e-12) || !almostEqual(x[1], 2, 1e-12) {
		t.Fatalf("x = %v", x)
	}
}

func TestSolveAnyRankDeficientConsistent(t *testing.T) {
	// Duplicate rows: consistent, infinitely many solutions.
	a := NewMatrix(3, 2)
	copy(a.Data, []float64{1, 1, 1, 1, 2, 0})
	b := []float64{3, 3, 2}
	x, err := SolveAny(a, b)
	if err != nil {
		t.Fatal(err)
	}
	ax, err := a.MatVec(x)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(ax, b) > 1e-9 {
		t.Fatalf("A·x = %v, want %v", ax, b)
	}
}

func TestSolveAnyUnderdetermined(t *testing.T) {
	// One equation, three unknowns: free variables must be zero.
	a := NewMatrix(1, 3)
	copy(a.Data, []float64{0, 2, 0})
	x, err := SolveAny(a, []float64{10})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || !almostEqual(x[1], 5, 1e-12) || x[2] != 0 {
		t.Fatalf("x = %v, want [0 5 0]", x)
	}
}

func TestSolveAnyInconsistent(t *testing.T) {
	a := NewMatrix(2, 1)
	copy(a.Data, []float64{1, 1})
	if _, err := SolveAny(a, []float64{1, 2}); !errors.Is(err, ErrInconsistent) {
		t.Fatalf("err = %v, want ErrInconsistent", err)
	}
}

func TestSolveAnyShapeError(t *testing.T) {
	if _, err := SolveAny(NewMatrix(2, 2), []float64{1}); !errors.Is(err, ErrShape) {
		t.Fatal("expected shape error")
	}
}

// Property: for random consistent systems (b = A·x0), SolveAny returns some
// x with A·x = b.
func TestQuickSolveAnyConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rows, cols := 1+rng.Intn(6), 1+rng.Intn(6)
		a := NewMatrix(rows, cols)
		for i := range a.Data {
			// Low-rank-ish: occasionally zero entries and duplicated rows.
			if rng.Float64() < 0.3 {
				a.Data[i] = 0
			} else {
				a.Data[i] = rng.NormFloat64()
			}
		}
		if rows > 1 && rng.Float64() < 0.5 {
			copy(a.Row(rows-1), a.Row(0)) // force rank deficiency
		}
		x0 := make([]float64, cols)
		for i := range x0 {
			x0[i] = rng.NormFloat64()
		}
		b, err := a.MatVec(x0)
		if err != nil {
			return false
		}
		x, err := SolveAny(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MatVec(x)
		if err != nil {
			return false
		}
		return MaxAbsDiff(ax, b) < 1e-7
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		rows, cols int
		data       []float64
		want       int
	}{
		{2, 2, []float64{1, 0, 0, 1}, 2},
		{2, 2, []float64{1, 2, 2, 4}, 1},
		{2, 2, []float64{0, 0, 0, 0}, 0},
		{3, 2, []float64{1, 0, 0, 1, 1, 1}, 2},
		{2, 3, []float64{1, 2, 3, 2, 4, 6}, 1},
		{3, 3, []float64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 2},
	}
	for i, tc := range cases {
		m := NewMatrix(tc.rows, tc.cols)
		copy(m.Data, tc.data)
		if got := Rank(m); got != tc.want {
			t.Errorf("case %d: Rank = %d, want %d", i, got, tc.want)
		}
	}
}

// Property: Solve returns x with A·x ≈ b for random well-conditioned
// systems (diagonally dominant by construction).
func TestQuickSolveResidual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
			a.Set(i, i, a.At(i, i)+float64(n)) // diagonal dominance
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x, err := Solve(a, b)
		if err != nil {
			return false
		}
		ax, err := a.MatVec(x)
		if err != nil {
			return false
		}
		return MaxAbsDiff(ax, b) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: (AᵀB)ᵀ = BᵀA for random matrices.
func TestQuickTransposeProduct(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c, k := 1+rng.Intn(5), 1+rng.Intn(5), 1+rng.Intn(5)
		a := NewMatrix(r, c)
		b := NewMatrix(r, k)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = rng.NormFloat64()
		}
		atb, err := a.T().MatMul(b)
		if err != nil {
			return false
		}
		bta, err := b.T().MatMul(a)
		if err != nil {
			return false
		}
		lhs := atb.T()
		return MaxAbsDiff(lhs.Data, bta.Data) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
