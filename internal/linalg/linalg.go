// Package linalg provides the small dense linear-algebra kernel the rest of
// the repository builds on: vector arithmetic for gradient manipulation,
// dense matrices for the classic gradient-coding construction (Tandon et
// al.), Gaussian elimination with partial pivoting for decode-vector
// solves, and least squares via normal equations.
//
// Only float64 and the standard library are used; this is deliberately a
// minimal, well-tested kernel rather than a general BLAS.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear solve meets a (numerically)
// singular system.
var ErrSingular = errors.New("linalg: singular matrix")

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("linalg: dimension mismatch")

// pivotEps is the absolute pivot threshold below which a matrix is treated
// as singular during elimination.
const pivotEps = 1e-12

// Vector operations ----------------------------------------------------

// Zeros returns an all-zero vector of length n.
func Zeros(n int) []float64 { return make([]float64, n) }

// CloneVec returns a copy of v.
func CloneVec(v []float64) []float64 {
	out := make([]float64, len(v))
	copy(out, v)
	return out
}

// AddTo adds src into dst element-wise. Panics on length mismatch: callers
// control both operands, so a mismatch is a programming error.
func AddTo(dst, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: AddTo length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, x := range src {
		dst[i] += x
	}
}

// AXPY computes dst += a*src element-wise.
func AXPY(dst []float64, a float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: AXPY length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, x := range src {
		dst[i] += a * x
	}
}

// AXPYInto computes dst = y + a*x element-wise, overwriting dst. dst may
// alias y (then it degenerates to AXPY) but must not partially overlap x.
// This is the fused form the compute pipeline uses to combine a scratch
// gradient into a pooled destination without an intermediate copy.
func AXPYInto(dst []float64, a float64, x, y []float64) {
	if len(dst) != len(x) || len(dst) != len(y) {
		panic(fmt.Sprintf("linalg: AXPYInto length mismatch %d vs %d vs %d", len(dst), len(x), len(y)))
	}
	for i := range dst {
		dst[i] = y[i] + a*x[i]
	}
}

// ScaleInto computes dst = a*src element-wise, overwriting dst. dst may
// alias src (then it degenerates to Scale).
func ScaleInto(dst []float64, a float64, src []float64) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("linalg: ScaleInto length mismatch %d vs %d", len(dst), len(src)))
	}
	for i, x := range src {
		dst[i] = a * x
	}
}

// ZeroVec sets every element of v to zero, retaining the allocation —
// the reset half of every pooled-buffer reuse.
func ZeroVec(v []float64) {
	for i := range v {
		v[i] = 0
	}
}

// Scale multiplies v by a in place.
func Scale(v []float64, a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	s := 0.0
	for i, x := range a {
		s += x * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	return math.Sqrt(Dot(v, v))
}

// MaxAbsDiff returns max_i |a[i]-b[i]|, a convenient convergence metric.
func MaxAbsDiff(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: MaxAbsDiff length mismatch %d vs %d", len(a), len(b)))
	}
	m := 0.0
	for i, x := range a {
		if d := math.Abs(x - b[i]); d > m {
			m = d
		}
	}
	return m
}

// Matrix ----------------------------------------------------------------

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zero matrix with the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a view (not a copy) of row i.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// MatVec returns m·x.
func (m *Matrix) MatVec(x []float64) ([]float64, error) {
	if len(x) != m.Cols {
		return nil, fmt.Errorf("%w: %dx%d · %d", ErrShape, m.Rows, m.Cols, len(x))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Dot(m.Row(i), x)
	}
	return out, nil
}

// VecMat returns xᵀ·m as a vector of length Cols.
func (m *Matrix) VecMat(x []float64) ([]float64, error) {
	if len(x) != m.Rows {
		return nil, fmt.Errorf("%w: %d · %dx%d", ErrShape, len(x), m.Rows, m.Cols)
	}
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		AXPY(out, x[i], m.Row(i))
	}
	return out, nil
}

// MatMul returns m·o.
func (m *Matrix) MatMul(o *Matrix) (*Matrix, error) {
	if m.Cols != o.Rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrShape, m.Rows, m.Cols, o.Rows, o.Cols)
	}
	out := NewMatrix(m.Rows, o.Cols)
	for i := 0; i < m.Rows; i++ {
		mi := m.Row(i)
		oi := out.Row(i)
		for k := 0; k < m.Cols; k++ {
			AXPY(oi, mi[k], o.Row(k))
		}
	}
	return out, nil
}

// SelectRows returns the submatrix of the given rows (copied).
func (m *Matrix) SelectRows(rows []int) (*Matrix, error) {
	out := NewMatrix(len(rows), m.Cols)
	for i, r := range rows {
		if r < 0 || r >= m.Rows {
			return nil, fmt.Errorf("linalg: row %d out of range [0,%d)", r, m.Rows)
		}
		copy(out.Row(i), m.Row(r))
	}
	return out, nil
}

// Solvers ----------------------------------------------------------------

// Solve solves the square system A·x = b by Gaussian elimination with
// partial pivoting. A and b are left unmodified.
func Solve(a *Matrix, b []float64) ([]float64, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("%w: Solve needs square matrix, got %dx%d", ErrShape, a.Rows, a.Cols)
	}
	if len(b) != a.Rows {
		return nil, fmt.Errorf("%w: b length %d for %dx%d system", ErrShape, len(b), a.Rows, a.Cols)
	}
	n := a.Rows
	m := a.Clone()
	x := CloneVec(b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv, pval := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pval {
				piv, pval = r, v
			}
		}
		if pval < pivotEps {
			return nil, fmt.Errorf("%w: pivot %g at column %d", ErrSingular, pval, col)
		}
		if piv != col {
			swapRows(m, piv, col)
			x[piv], x[col] = x[col], x[piv]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			AXPY(m.Row(r), -f, m.Row(col))
			m.Set(r, col, 0)
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := m.Row(i)
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x, nil
}

func swapRows(m *Matrix, i, j int) {
	ri, rj := m.Row(i), m.Row(j)
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// LeastSquares solves min_x ‖A·x − b‖₂ via the normal equations
// AᵀA·x = Aᵀb. A must have full column rank (else ErrSingular).
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("%w: b length %d for %dx%d matrix", ErrShape, len(b), a.Rows, a.Cols)
	}
	at := a.T()
	ata, err := at.MatMul(a)
	if err != nil {
		return nil, err
	}
	atb, err := at.MatVec(b)
	if err != nil {
		return nil, err
	}
	return Solve(ata, atb)
}

// ErrInconsistent is returned by SolveAny when the system has no solution.
var ErrInconsistent = errors.New("linalg: inconsistent system")

// SolveAny returns a particular solution x of the (possibly rectangular,
// possibly rank-deficient) system A·x = b, with free variables set to zero.
// It returns ErrInconsistent when no solution exists. A and b are left
// unmodified. This is what the classic-GC decoder needs: B_{W'} often has
// repeated rows (FR) or more rows than needed (w > n-s), so the decode
// system is consistent but rank-deficient.
func SolveAny(a *Matrix, b []float64) ([]float64, error) {
	if len(b) != a.Rows {
		return nil, fmt.Errorf("%w: b length %d for %dx%d system", ErrShape, len(b), a.Rows, a.Cols)
	}
	m := a.Clone()
	rhs := CloneVec(b)
	maxAbs := 0.0
	for _, v := range m.Data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	tol := pivotEps
	if maxAbs > 1 {
		tol *= maxAbs
	}
	// Forward elimination to row echelon form, recording pivot columns.
	pivotCols := make([]int, 0, m.Cols)
	row := 0
	for col := 0; col < m.Cols && row < m.Rows; col++ {
		piv, pval := row, math.Abs(m.At(row, col))
		for r := row + 1; r < m.Rows; r++ {
			if v := math.Abs(m.At(r, col)); v > pval {
				piv, pval = r, v
			}
		}
		if pval <= tol {
			continue
		}
		if piv != row {
			swapRows(m, piv, row)
			rhs[piv], rhs[row] = rhs[row], rhs[piv]
		}
		inv := 1 / m.At(row, col)
		for r := row + 1; r < m.Rows; r++ {
			f := m.At(r, col) * inv
			if f != 0 {
				AXPY(m.Row(r), -f, m.Row(row))
				m.Set(r, col, 0)
				rhs[r] -= f * rhs[row]
			}
		}
		pivotCols = append(pivotCols, col)
		row++
	}
	// Consistency: zero rows must have (near-)zero RHS.
	rhsScale := 1.0
	for _, v := range b {
		if av := math.Abs(v); av > rhsScale {
			rhsScale = av
		}
	}
	for r := row; r < m.Rows; r++ {
		if math.Abs(rhs[r]) > 1e-8*rhsScale*float64(m.Cols+1) {
			return nil, fmt.Errorf("%w: residual %g in eliminated row %d", ErrInconsistent, rhs[r], r)
		}
	}
	// Back substitution over pivot columns; free variables stay zero.
	x := make([]float64, m.Cols)
	for k := len(pivotCols) - 1; k >= 0; k-- {
		col := pivotCols[k]
		s := rhs[k]
		rowv := m.Row(k)
		for j := col + 1; j < m.Cols; j++ {
			s -= rowv[j] * x[j]
		}
		x[col] = s / rowv[col]
	}
	return x, nil
}

// Rank returns the numerical rank of a (Gaussian elimination with full row
// pivoting and threshold pivotEps relative to the largest element).
func Rank(a *Matrix) int {
	m := a.Clone()
	maxAbs := 0.0
	for _, v := range m.Data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	if maxAbs == 0 {
		return 0
	}
	tol := pivotEps * maxAbs * float64(max(m.Rows, m.Cols))
	rank := 0
	for col := 0; col < m.Cols && rank < m.Rows; col++ {
		piv, pval := rank, math.Abs(m.At(rank, col))
		for r := rank + 1; r < m.Rows; r++ {
			if v := math.Abs(m.At(r, col)); v > pval {
				piv, pval = r, v
			}
		}
		if pval <= tol {
			continue
		}
		if piv != rank {
			swapRows(m, piv, rank)
		}
		inv := 1 / m.At(rank, col)
		for r := rank + 1; r < m.Rows; r++ {
			f := m.At(r, col) * inv
			if f != 0 {
				AXPY(m.Row(r), -f, m.Row(rank))
			}
		}
		rank++
	}
	return rank
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
