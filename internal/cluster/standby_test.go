package cluster

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"isgc/internal/checkpoint"
	"isgc/internal/engine"
	"isgc/internal/model"
)

func TestStandbyStopsOnRequest(t *testing.T) {
	store, err := checkpoint.NewStore(t.TempDir(), checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	close(stop)
	if err := WaitForTakeover(store, 200*time.Millisecond, stop, nil); !errors.Is(err, ErrStandbyStopped) {
		t.Fatalf("err = %v, want ErrStandbyStopped", err)
	}
}

func TestStandbyWaitsForFirstPrimary(t *testing.T) {
	// Empty directory, no lease ever written: the standby must NOT take
	// over — it would cold-start a second run of its own.
	store, err := checkpoint.NewStore(t.TempDir(), checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- WaitForTakeover(store, 100*time.Millisecond, stop, nil) }()
	select {
	case err := <-done:
		t.Fatalf("standby took over an empty directory: %v", err)
	case <-time.After(600 * time.Millisecond):
	}
	close(stop)
	if err := <-done; !errors.Is(err, ErrStandbyStopped) {
		t.Fatalf("err = %v, want ErrStandbyStopped", err)
	}
}

func TestStandbyTakesOverExpiredLease(t *testing.T) {
	// A crashed primary leaves a lease that stops being renewed; the
	// standby must wait out the TTL and then take over.
	store, err := checkpoint.NewStore(t.TempDir(), checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.WriteLease("pid1@dead", 150*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	done := make(chan error, 1)
	go func() { done <- WaitForTakeover(store, 150*time.Millisecond, nil, nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("standby never took over a stale lease")
	}
	if waited := time.Since(start); waited < 150*time.Millisecond {
		t.Fatalf("standby took over after %v, before the %v TTL lapsed", waited, 150*time.Millisecond)
	}
}

func TestStandbyTakesOverReleasedLease(t *testing.T) {
	// A graceful exit removes the lease; with a checkpoint present the
	// standby takes over without waiting out the TTL.
	store, err := checkpoint.NewStore(t.TempDir(), checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Save(3, map[string]int{"step": 3}); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- WaitForTakeover(store, 10*time.Second, nil, nil) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("standby waited for a TTL despite a released lease + checkpoint")
	}
}

// TestClusterStandbyFailover is the warm-standby acceptance check: the
// primary is stopped mid-run, the standby notices the released lease,
// restores from the shared checkpoint directory on the same address, and
// the completed run matches an uninterrupted reference bit for bit.
func TestClusterStandbyFailover(t *testing.T) {
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)
	base := func(st engine.Strategy, addr string) MasterConfig {
		return MasterConfig{
			Addr: addr, Strategy: st, Model: mdl, Data: data,
			LearningRate: 0.3, W: 4, MaxSteps: 12, Seed: 42,
			ComputePar: 1,
		}
	}

	refMaster, err := NewMaster(base(freshISGC(t, 4, 2, 11), "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	refFleet := startFleet(t, refMaster.cfg.Strategy, data, mdl, refMaster.Addr(), 0, nil)
	ref, err := refMaster.Run()
	if err != nil {
		t.Fatal(err)
	}
	refFleet.Wait()

	addr := freeLoopbackAddr(t)
	dir := t.TempDir()
	store1, err := checkpoint.NewStore(dir, checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := base(freshISGC(t, 4, 2, 11), addr)
	cfg1.Checkpoint = store1
	cfg1.CheckpointEvery = 3
	cfg1.LeaseTTL = 500 * time.Millisecond
	m1, err := NewMaster(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	// A constant 60ms upload delay bounds each step from below: the ≥7
	// steps remaining after waitForStep(5) take ≥420ms, so the 300ms
	// standby observation window below provably overlaps a live primary.
	// (Without it the 12-step run finishes — and gracefully releases its
	// lease — before the standby's first poll, a legitimate takeover.)
	fleet := startFleet(t, cfg1.Strategy, data, mdl, addr, 30*time.Second, fixedDelay{60 * time.Millisecond})
	res1Ch := make(chan *engine.Result, 1)
	go func() {
		res, err := m1.Run()
		if err != nil {
			t.Error(err)
		}
		res1Ch <- res
	}()
	waitForStep(t, m1, 5)

	// The standby watches the lease while the primary is still alive; it
	// must not fire until the primary goes away.
	standbyStore, err := checkpoint.NewStore(dir, checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	takeover := make(chan error, 1)
	go func() { takeover <- WaitForTakeover(standbyStore, 500*time.Millisecond, nil, nil) }()
	select {
	case err := <-takeover:
		t.Fatalf("standby fired while the primary was alive: %v", err)
	case <-time.After(300 * time.Millisecond):
	}

	m1.Stop()
	res1 := <-res1Ch
	if res1 == nil || !res1.Interrupted {
		t.Fatalf("primary did not report an interrupted run: %+v", res1)
	}
	select {
	case err := <-takeover:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("standby never took over after the primary released its lease")
	}

	cfg2 := base(freshISGC(t, 4, 2, 11), addr)
	cfg2.Checkpoint = standbyStore
	cfg2.CheckpointEvery = 3
	cfg2.Restore = true
	cfg2.LeaseTTL = 500 * time.Millisecond
	m2, err := NewMaster(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	fleet.Wait()

	combined := append(zeroElapsed(res1.Run.Records), zeroElapsed(res2.Run.Records)...)
	if !reflect.DeepEqual(combined, zeroElapsed(ref.Run.Records)) {
		t.Fatal("failover run's records diverged from the uninterrupted reference")
	}
	if !reflect.DeepEqual(res2.Params, ref.Params) {
		t.Fatal("final params are not bit-identical after standby failover")
	}
}
