package cluster

import (
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/events"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

// faultyOpts configures one fault-injection cluster run.
type faultyOpts struct {
	w           int
	maxSteps    int
	stepTimeout time.Duration
	liveness    time.Duration
	heartbeat   time.Duration
	reconnect   time.Duration
	faults      []straggler.Fault // per worker, may be nil
	delays      []straggler.Model // per worker, may be nil
	events      *events.Log       // shared by master and workers, may be nil
}

// runFaultyCluster launches a master plus its fleet with fault injection
// and returns the master (for post-run accounting) and Run's outcome. A
// watchdog fails the test if the master hangs — the exact regression this
// PR's liveness tracking is meant to prevent.
func runFaultyCluster(t *testing.T, st engine.Strategy, o faultyOpts) (*Master, *engine.Result, error) {
	t.Helper()
	n := st.N()
	data := testData(t)
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	master, err := NewMaster(MasterConfig{
		Addr:            "127.0.0.1:0",
		Strategy:        st,
		Model:           mdl,
		Data:            data,
		LearningRate:    0.3,
		W:               o.w,
		MaxSteps:        o.maxSteps,
		Seed:            42,
		StepTimeout:     o.stepTimeout,
		LivenessTimeout: o.liveness,
		Events:          o.events,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Partition(n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if err != nil {
					t.Error(err)
					return
				}
			}
			var fault straggler.Fault
			if o.faults != nil {
				fault = o.faults[i]
			}
			var delay straggler.Model
			if o.delays != nil {
				delay = o.delays[i]
			}
			wk, err := NewWorker(WorkerConfig{
				Addr:              master.Addr(),
				ID:                i,
				Partitions:        pids,
				Loaders:           loaders,
				Model:             mdl,
				Encode:            SumEncoder(),
				Delay:             delay,
				DelaySeed:         int64(i) + 1,
				Fault:             fault,
				FaultSeed:         int64(i) + 1,
				HeartbeatInterval: o.heartbeat,
				ReconnectTimeout:  o.reconnect,
				Events:            o.events,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := wk.Run(); err != nil {
				t.Error(err)
			}
		}()
	}

	var res *engine.Result
	var runErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		res, runErr = master.Run()
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("master hung: the liveness-aware gather must terminate in bounded time")
	}
	wg.Wait()
	return master, res, runErr
}

// newCRStrategy builds IS-GC over CR(n, 2) — the flexible scheme used by
// the fault scenarios (it can decode any subset of workers).
func newCRStrategy(t *testing.T, n int) engine.Strategy {
	t.Helper()
	p, err := placement.CR(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 7))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// The acceptance scenario: n=12, w=8, three workers crash at step 5. The
// alive set (9) still covers the wait target (8), so training proceeds at
// full target with zero degradation and converges.
func TestClusterSurvivesCrashesWithinSlack(t *testing.T) {
	st := newCRStrategy(t, 12)
	faults := make([]straggler.Fault, 12)
	for i := 0; i < 3; i++ {
		faults[i] = straggler.CrashAt{Step: 5}
	}
	_, res, err := runFaultyCluster(t, st, faultyOpts{w: 8, maxSteps: 15, faults: faults})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	if res.Run.Steps() != 15 {
		t.Fatalf("steps = %d, want 15: the run must survive the crashes", res.Run.Steps())
	}
	for _, rec := range res.Run.Records {
		if rec.Available != 8 {
			t.Fatalf("step %d gathered %d, want the full target 8 (9 alive ≥ 8)", rec.Step, rec.Available)
		}
		if rec.Degraded {
			t.Fatalf("step %d degraded though the alive set covers the target", rec.Step)
		}
	}
	// Liveness accounting: once the crashes land, the records report the
	// shrunken fleet.
	last := res.Run.Records[len(res.Run.Records)-1]
	if last.Alive != 9 {
		t.Fatalf("final alive = %d, want 9 after 3 crashes", last.Alive)
	}
	first, lastLoss := res.Run.Records[0].Loss, res.Run.FinalLoss()
	if !(lastLoss < first) {
		t.Fatalf("loss %v → %v, expected decrease despite crashes", first, lastLoss)
	}
}

// The over-slack acceptance scenario: five crashes leave 7 alive, below
// the w=8 target. The flexible scheme degrades to the alive set instead of
// hanging and keeps training.
func TestClusterDegradesBeyondSlack(t *testing.T) {
	st := newCRStrategy(t, 12)
	faults := make([]straggler.Fault, 12)
	for i := 0; i < 5; i++ {
		faults[i] = straggler.CrashAt{Step: 3}
	}
	_, res, err := runFaultyCluster(t, st, faultyOpts{w: 8, maxSteps: 10, faults: faults})
	if err != nil {
		t.Fatalf("master must degrade, not fail: %v", err)
	}
	if res.Run.Steps() != 10 {
		t.Fatalf("steps = %d, want 10", res.Run.Steps())
	}
	if res.Run.DegradedSteps() == 0 {
		t.Fatal("no degraded steps recorded after losing 5 of 12 workers with w=8")
	}
	for _, rec := range res.Run.Records {
		if rec.Step < 3 && (rec.Available != 8 || rec.Degraded) {
			t.Fatalf("step %d: available=%d degraded=%v before any crash", rec.Step, rec.Available, rec.Degraded)
		}
		if rec.Step > 3 {
			if !rec.Degraded {
				t.Fatalf("step %d not degraded with only 7 alive for w=8", rec.Step)
			}
			if rec.Available > 7 {
				t.Fatalf("step %d gathered %d from 7 alive workers", rec.Step, rec.Available)
			}
			if rec.Alive != 7 {
				t.Fatalf("step %d alive = %d, want 7", rec.Step, rec.Alive)
			}
		}
	}
	first, last := res.Run.Records[0].Loss, res.Run.FinalLoss()
	if !(last < first) {
		t.Fatalf("loss %v → %v, expected decrease in degraded mode", first, last)
	}
}

// A rigid scheme cannot decode a subset: worker loss must produce a
// descriptive error in bounded time, not a hang (the master.go:234 bug).
func TestRigidSchemeFailsFastOnWorkerLoss(t *testing.T) {
	st, err := engine.NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	faults := []straggler.Fault{nil, nil, straggler.CrashAt{Step: 2}, nil}
	_, _, runErr := runFaultyCluster(t, st, faultyOpts{w: 4, maxSteps: 20, faults: faults})
	if runErr == nil {
		t.Fatal("Sync-SGD must fail when a worker dies")
	}
	if !strings.Contains(runErr.Error(), "failing fast") {
		t.Fatalf("error %q must carry the fail-fast diagnostic", runErr)
	}
}

// Disconnect-then-rejoin round trip: the worker drops its connection
// mid-run, redials with backoff, re-registers, and the master accepts the
// rejoin instead of treating the reborn id as a fatal duplicate.
func TestWorkerDisconnectRejoin(t *testing.T) {
	st := newCRStrategy(t, 4)
	faults := []straggler.Fault{nil, nil, straggler.DisconnectAt{Step: 3}, nil}
	master, res, err := runFaultyCluster(t, st, faultyOpts{
		w: 4, maxSteps: 12, faults: faults, reconnect: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	if res.Run.Steps() != 12 {
		t.Fatalf("steps = %d, want 12", res.Run.Steps())
	}
	if master.Rejoins() != 1 {
		t.Fatalf("rejoins = %d, want 1", master.Rejoins())
	}
	// After the round trip the full fleet serves again.
	last := res.Run.Records[len(res.Run.Records)-1]
	if last.Available != 4 || last.Alive != 4 {
		t.Fatalf("final step: available=%d alive=%d, want the full fleet back", last.Available, last.Alive)
	}
	// The wanderer missed at most a couple of steps around the disconnect.
	counts := master.ArrivalCounts()
	if counts[2] < 9 {
		t.Fatalf("worker 2 arrived only %d/12 times; the rejoin must resume participation", counts[2])
	}
}

// A rejoining worker is re-handed the in-flight step; the fault model
// must not re-fire on that re-delivery. Regression: DisconnectAt used to
// re-trigger on the re-delivered step, tearing the fresh connection down
// in a tight loop (thousands of rejoins) until the master advanced past
// the step. The slow worker stretches the disconnect step to ~300 ms,
// which is exactly the window the storm needs.
func TestDisconnectDoesNotRefireOnRedeliveredStep(t *testing.T) {
	st := newCRStrategy(t, 4)
	faults := []straggler.Fault{nil, nil, straggler.DisconnectAt{Step: 3}, nil}
	delays := []straggler.Model{straggler.Constant{D: 300 * time.Millisecond}, nil, nil, nil}
	master, res, err := runFaultyCluster(t, st, faultyOpts{
		w: 4, maxSteps: 6, faults: faults, delays: delays,
		reconnect: 10 * time.Second,
	})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	if res.Run.Steps() != 6 {
		t.Fatalf("steps = %d, want 6", res.Run.Steps())
	}
	if got := master.Rejoins(); got != 1 {
		t.Fatalf("rejoins = %d, want exactly 1 — the fault re-fired on the re-delivered step", got)
	}
}

// Workers that heartbeat but never upload (pure gradient loss) must not
// stall the fastest-w gather: the step timeout degrades the step.
func TestDropFaultDegradesViaStepTimeout(t *testing.T) {
	st := newCRStrategy(t, 4)
	faults := []straggler.Fault{
		nil,
		straggler.DropWithProb{P: 1},
		straggler.DropWithProb{P: 1},
		straggler.DropWithProb{P: 1},
	}
	_, res, err := runFaultyCluster(t, st, faultyOpts{
		w: 4, maxSteps: 3, faults: faults,
		stepTimeout: 250 * time.Millisecond, heartbeat: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	for _, rec := range res.Run.Records {
		if rec.Available != 1 {
			t.Fatalf("step %d gathered %d, want only the one uploading worker", rec.Step, rec.Available)
		}
		if !rec.Degraded {
			t.Fatalf("step %d must be marked degraded (timeout-bounded gather)", rec.Step)
		}
		if rec.Alive != 4 {
			t.Fatalf("step %d alive = %d; droppers are alive, just lossy", rec.Step, rec.Alive)
		}
	}
}

// A registered connection that goes completely silent (no heartbeats, no
// gradients — a hung process, not a dead socket) is reaped by the liveness
// monitor and the gather degrades around it.
func TestLivenessTimeoutReapsSilentWorker(t *testing.T) {
	st, err := engine.NewISSGD(2)
	if err != nil {
		t.Fatal(err)
	}
	data := testData(t)
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	master, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.3, W: 2, MaxSteps: 3, Seed: 42,
		LivenessTimeout: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Partition(2)
	if err != nil {
		t.Fatal(err)
	}

	// Worker 0 is real and heartbeats fast enough to stay off the reaper's
	// list even while idle between steps.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		loader, err := dataset.NewLoader(parts[0], 16, 42)
		if err != nil {
			t.Error(err)
			return
		}
		wk, err := NewWorker(WorkerConfig{
			Addr: master.Addr(), ID: 0, Partitions: []int{0},
			Loaders: []*dataset.Loader{loader}, Model: mdl, Encode: SumEncoder(),
			HeartbeatInterval: 50 * time.Millisecond,
		})
		if err != nil {
			t.Error(err)
			return
		}
		_, _ = wk.Run()
	}()

	// Worker 1 registers and then hangs: open socket, no traffic at all.
	raw, err := net.Dial("tcp", master.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	silent := newConn(raw, 0, nil)
	if err := silent.send(&Envelope{Kind: MsgHello, Worker: 1}); err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var res *engine.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = master.Run()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("master hung on a silent worker")
	}
	wg.Wait()
	if runErr != nil {
		t.Fatalf("master: %v", runErr)
	}
	if res.Run.Steps() != 3 {
		t.Fatalf("steps = %d, want 3", res.Run.Steps())
	}
	if res.Run.DegradedSteps() != 3 {
		t.Fatalf("degraded steps = %d, want all 3 (only worker 0 ever uploads)", res.Run.DegradedSteps())
	}
	last := res.Run.Records[len(res.Run.Records)-1]
	if last.Alive != 1 {
		t.Fatalf("final alive = %d; the silent worker must be reaped", last.Alive)
	}
}

// A gradient whose dimension mismatches the model must be rejected before
// it reaches Strategy.Recover / linalg.AXPY, where it would panic the
// master mid-run.
func TestMasterRejectsMalformedGradient(t *testing.T) {
	st, err := engine.NewSyncSGD(1)
	if err != nil {
		t.Fatal(err)
	}
	data := testData(t)
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	dim := len(mdl.InitParams(42))
	master, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.3, W: 1, MaxSteps: 1, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan struct{})
	var res *engine.Result
	var runErr error
	go func() {
		defer close(done)
		res, runErr = master.Run()
	}()

	raw, err := net.Dial("tcp", master.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	c := newConn(raw, 0, nil)
	if err := c.send(&Envelope{Kind: MsgHello, Worker: 0}); err != nil {
		t.Fatal(err)
	}
	step, err := c.recv()
	if err != nil || step.Kind != MsgStep {
		t.Fatalf("expected a step broadcast, got %v %v", step, err)
	}
	if len(step.Params) != dim {
		t.Fatalf("params dim = %d, want %d", len(step.Params), dim)
	}
	// First a malformed gradient (wrong dimension), then a valid one.
	if err := c.send(&Envelope{Kind: MsgGradient, Worker: 0, Step: step.Step, Coded: []float64{1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := c.send(&Envelope{Kind: MsgGradient, Worker: 0, Step: step.Step, Coded: make([]float64, dim)}); err != nil {
		t.Fatal(err)
	}

	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("master hung after a malformed gradient")
	}
	if runErr != nil {
		t.Fatalf("master must survive the malformed gradient: %v", runErr)
	}
	if res.Run.Steps() != 1 {
		t.Fatalf("steps = %d, want 1", res.Run.Steps())
	}
	if master.MalformedGradients() != 1 {
		t.Fatalf("malformed count = %d, want 1", master.MalformedGradients())
	}
}
