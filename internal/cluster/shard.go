// Master-side support for the dim-sharded gather: lane attachment and the
// per-worker sub-frame assembler. A binaryv2 worker splits each step's
// gradient into contiguous (offset, len) spans, one per lane connection;
// recvFrameV2 asks the assembler to reserve the destination span before
// the payload bytes are read, decodes straight into the step's gather
// buffer at the offset (no reassembly copy), and the reader commits the
// span afterwards — the step surfaces as an ordinary whole-vector arrival
// once the last span lands.
package cluster

import (
	"sync"
	"time"

	"isgc/internal/events"
)

// shardWindowMin is the fewest in-flight steps an assembler keeps before
// evicting stale ones; the staleness window widens it so foldable
// stragglers are not thrown away mid-reassembly.
const shardWindowMin = 3

// grantShards resolves a worker's proposed lane count against the
// master's cap: 0 caps at the protocol maximum, anything else at
// min(proposal, cap). The result is always ≥ 1.
func grantShards(proposed, cap int) int {
	if proposed < 1 {
		proposed = 1
	}
	if proposed > maxGatherShards {
		proposed = maxGatherShards
	}
	if cap > 0 && proposed > cap {
		proposed = cap
	}
	return proposed
}

// shardAssembler reassembles one worker's gradient sub-frames into whole
// vectors. One assembler per worker id, shared by the primary reader and
// every lane reader — all state sits behind its mutex, and the
// reserve/commit split matches recvFrameV2's read sequence (reserve
// before the payload bytes arrive, commit after they decoded).
type shardAssembler struct {
	mu     sync.Mutex
	window int // in-flight steps kept before eviction
	newest int
	steps  map[int]*shardBuf
	// onReject counts protocol violations (overlapping spans, total
	// mismatch) — the sub-frame flavor of the malformed-gradient counter.
	onReject func(step, offset, count, total int)
}

// shardBuf is one step's gather buffer under reassembly.
type shardBuf struct {
	buf   []float64
	got   int      // float64 words committed so far
	spans [][2]int // reserved (offset, len) intervals, for overlap checks
}

// reserveFor is the gradReserve hook: it maps an incoming sub-frame to
// the destination slice its payload decodes into, or declines with nil.
// The worker id claimed in the frame is ignored — the assembler is bound
// to the authenticated connection's id.
func (a *shardAssembler) reserveFor(_, step, offset, count, total int) []float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	sb := a.steps[step]
	if sb == nil {
		if step > a.newest {
			a.newest = step
		}
		// Evict steps that fell out of the in-flight window: their missing
		// spans are never coming (the worker sends lanes step by step), and
		// an unbounded map would leak on a perpetually straggling lane.
		for s := range a.steps {
			if s <= a.newest-a.window {
				delete(a.steps, s)
			}
		}
		sb = &shardBuf{buf: make([]float64, total)}
		a.steps[step] = sb
	}
	if len(sb.buf) != total || offset+count > total {
		a.reject(step, offset, count, total)
		return nil
	}
	for _, sp := range sb.spans {
		if offset < sp[0]+sp[1] && sp[0] < offset+count {
			a.reject(step, offset, count, total)
			return nil
		}
	}
	sb.spans = append(sb.spans, [2]int{offset, count})
	return sb.buf[offset : offset+count]
}

func (a *shardAssembler) reject(step, offset, count, total int) {
	if a.onReject != nil {
		a.onReject(step, offset, count, total)
	}
}

// commit records a decoded sub-frame and returns the completed vector
// once every element has landed; ownership of the buffer transfers to
// the caller on completion. A commit for an evicted step reports not-done
// (its reserved span decoded into an orphaned buffer, harmlessly).
func (a *shardAssembler) commit(e *Envelope) ([]float64, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	sb := a.steps[e.Step]
	if sb == nil || len(sb.buf) != e.Total {
		return nil, false
	}
	sb.got += len(e.Coded)
	if sb.got < len(sb.buf) {
		return nil, false
	}
	delete(a.steps, e.Step)
	return sb.buf, true
}

// shardAsmFor returns worker id's sub-frame assembler, creating it on
// first use. Assemblers survive re-registrations — the worker serializes
// its lane sends, so spans never interleave across generations.
func (m *Master) shardAsmFor(id int) *shardAssembler {
	m.shardMu.Lock()
	defer m.shardMu.Unlock()
	if m.shardAsms == nil {
		m.shardAsms = make(map[int]*shardAssembler)
	}
	a := m.shardAsms[id]
	if a == nil {
		window := m.cfg.Staleness + 2
		if window < shardWindowMin {
			window = shardWindowMin
		}
		a = &shardAssembler{window: window, newest: -1, steps: make(map[int]*shardBuf),
			onReject: func(step, offset, count, total int) {
				m.malformed.Add(1)
				m.cfg.Metrics.markMalformed()
				m.cfg.Events.Warn("master.malformed_subframe", "gradient sub-frame rejected before decode",
					step, id, events.Fields{"offset": offset, "count": count, "total": total})
			}}
		m.shardAsms[id] = a
	}
	return a
}

// attachLane joins one extra gather-lane connection to an already
// registered binaryv2 worker. The lane hello names the lane index and the
// master generation it registered under; a lane for a dead, unsharded, or
// previous-life registration is refused by closing it — the worker's
// dialLanes then fails as a unit and the whole registration retries.
func (m *Master) attachLane(c *conn, hello *Envelope, readers *sync.WaitGroup) {
	id := hello.Worker
	m.mu.Lock()
	ws := m.workers[id]
	masterGen := m.generation
	done := m.done
	ok := !done && ws != nil && ws.alive && ws.c.wireV2 && hello.Gen == masterGen &&
		hello.Shard >= 1 && hello.Shard < maxGatherShards
	gen := -1
	if ok {
		gen = ws.gen
	}
	m.mu.Unlock()
	if !ok {
		if done {
			_ = c.send(&Envelope{Kind: MsgJobGone})
		}
		_ = c.close()
		return
	}
	c.gradReserve = m.shardAsmFor(id).reserveFor
	if err := c.send(&Envelope{Kind: MsgHello, Worker: id, Wire: WireBinary2, Shard: hello.Shard, Gen: masterGen}); err != nil {
		_ = c.close()
		return
	}
	c.upgradeV2(false)
	// Register the lane on the generation it validated against: a rejoin
	// that raced in installs a fresh workerState this lane must not join.
	m.mu.Lock()
	cur := m.workers[id]
	attached := cur != nil && cur.gen == gen && cur.alive
	if attached {
		cur.lanes = append(cur.lanes, c)
	}
	m.mu.Unlock()
	if !attached {
		_ = c.close()
		return
	}
	m.cfg.Metrics.markShardLane()
	m.cfg.Events.Debug("master.lane_attached", "gather lane attached", events.NoStep, id,
		events.Fields{"lane": hello.Shard, "generation": gen})
	readers.Add(1)
	go m.readLane(id, gen, c, readers)
}

// readLane pumps one extra gather-lane connection. Lanes carry gradient
// sub-frames only; heartbeats and control traffic stay on the primary. A
// broken lane breaks the worker's whole gather pipe, so its exit closes
// the primary connection — the eviction then runs exactly once, through
// the primary reader's exit path, like any other connection loss.
func (m *Master) readLane(id, gen int, c *conn, readers *sync.WaitGroup) {
	defer readers.Done()
	for {
		e, err := c.recv()
		if err != nil {
			break
		}
		m.mu.Lock()
		if ws := m.workers[id]; ws != nil && ws.gen == gen {
			ws.lastSeen = time.Now()
		}
		m.mu.Unlock()
		if e.Kind == MsgGradient {
			if !m.deliverGradient(id, e) {
				return
			}
		}
	}
	_ = c.close()
	m.mu.Lock()
	if ws := m.workers[id]; ws != nil && ws.gen == gen && ws.alive {
		_ = ws.c.close()
	}
	m.mu.Unlock()
}
