package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"isgc/internal/checkpoint"
	"isgc/internal/dataset"
	"isgc/internal/events"
	"isgc/internal/model"
	"isgc/internal/randsrc"
	"isgc/internal/straggler"
)

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Addr is the master's address.
	Addr string
	// ID is this worker's index in [0, n).
	ID int
	// Partitions lists the dataset partitions this worker stores
	// (Strategy.Partitions(ID) on the master side).
	Partitions []int
	// Loaders yields mini-batches per stored partition, index-aligned
	// with Partitions. Loader seeds must follow the shared discipline so
	// partition replicas see identical batches.
	Loaders []*dataset.Loader
	// Model computes gradients.
	Model model.Model
	// Encode combines the worker's per-partition gradients into the coded
	// upload: it receives the gradients aligned with Partitions. For
	// IS-GC this is the plain sum; for classic GC a fixed linear
	// combination (use CodedEncoder helpers).
	Encode func(localGrads [][]float64) ([]float64, error)
	// Delay optionally injects an artificial straggler delay before each
	// upload, sampled from the model (nil = none). This is how the
	// integration tests and the distributed example reproduce the paper's
	// delay injection over real sockets.
	Delay straggler.Model
	// DelaySeed seeds the delay sampling.
	DelaySeed int64
	// ComputePar sizes the worker's gradient compute pool: 0 picks
	// GOMAXPROCS, 1 forces sequential, >1 is explicit. With several
	// partitions the pool computes them concurrently (bit-identical to
	// sequential, so replicas on hosts with different settings still
	// agree); with a single partition it shards the batch instead, which
	// reassociates the mean's floating-point sum — safe because a
	// single-partition placement has no replicas to disagree with.
	ComputePar int
	// Fault optionally injects crash/drop/disconnect faults per step
	// (nil = none) — the deterministic worker-death counterpart of Delay,
	// used by integration tests and examples to reproduce machine loss.
	Fault straggler.Fault
	// FaultSeed seeds the fault sampling.
	FaultSeed int64
	// HeartbeatInterval is the period of MsgHeartbeat liveness pings sent
	// from a dedicated goroutine, so the master can tell "slow" from
	// "hung" even while this worker computes or sleeps (default 1s;
	// negative disables).
	HeartbeatInterval time.Duration
	// ReconnectTimeout, when positive, makes a worker whose connection
	// drops (or that injects FaultDisconnect) redial the master with
	// exponential backoff for up to this long, re-registering via
	// MsgHello with its last completed step. 0 disables reconnection:
	// a dropped connection ends Run.
	ReconnectTimeout time.Duration
	// DialTimeout bounds the initial connection (default 5s).
	DialTimeout time.Duration
	// Checkpoint, when non-nil, is where Stop persists the worker's
	// resumable state (RNG stream positions, step counter). Give each
	// worker its own store directory — a WorkerState names a single ID.
	Checkpoint *checkpoint.Store
	// Restore loads the latest WorkerState from Checkpoint before
	// registering, so delay/fault sampling resumes bit-identically and the
	// hello reports the pre-restart step count.
	Restore bool
	// Wire selects the wire codec the worker proposes in its hello:
	// WireBinary (or empty, the default) upgrades to binary frames when
	// the master agrees; WireGob pins the connection to the legacy gob
	// stream and skips the negotiation entirely.
	Wire string
	// GatherShards, when > 1, proposes the binaryv2 dim-sharded upload:
	// the worker opens that many parallel lane connections and splits
	// every gradient into contiguous sub-frames sent concurrently, one
	// per lane. The master may grant fewer lanes; a master that does not
	// speak binaryv2 falls back per the negotiation rules and the worker
	// runs a single lane. 0 or 1 keeps the classic single-stream upload
	// (the default, bit-identical to the pre-sharding wire).
	GatherShards int
	// Metrics, when non-nil, receives live instrumentation (compute time,
	// upload bytes, reconnects); serve it via the admin package.
	Metrics *WorkerMetrics
	// Events, when non-nil, receives the worker's structured event stream
	// (connects, injected faults, reconnects). Nil disables it.
	Events *events.Log
	// Timeline, when non-nil, collects this worker's local compute and
	// injected-delay spans for Chrome trace export. Nil disables it.
	Timeline *events.Timeline
}

// Worker trains on its partitions and uploads coded gradients until the
// master says stop.
type Worker struct {
	cfg WorkerConfig
	// connMu guards the w.c pointer itself: reconnect (Run's goroutine)
	// replaces it while Stop (signal-handler goroutine) reads it to close.
	// It also guards lanes, the extra binaryv2 gather-lane connections
	// (empty on a single-stream negotiation); shards is the negotiated
	// lane count including the primary (1 = unsharded).
	connMu sync.Mutex
	c      *conn
	lanes  []*conn
	shards int
	// delaySrc/faultSrc are the counting sources behind rng/frng, kept so
	// Stop can serialize the stream positions and a restored worker can
	// land on the very next delay/fault draw.
	delaySrc *randsrc.Source
	faultSrc *randsrc.Source
	rng      *rand.Rand
	frng     *rand.Rand
	stopHB   chan struct{}
	stopping atomic.Bool
	stopOnce sync.Once

	// pool and localBuf make computeStep allocation-free: one long-lived
	// compute pool and one reusable gradient buffer per stored partition.
	pool     *model.ParallelGrad
	localBuf [][]float64
	tasks    []func()

	// faultedThrough is the highest step the fault model has been
	// consulted for. A rejoining worker is re-handed the in-flight step by
	// the master; re-rolling the fault on that re-delivery would make
	// DisconnectAt tear the fresh connection down again immediately — a
	// rejoin storm that lasts until the master advances past the step.
	faultedThrough int

	// steps, reconnects, and connected are atomics because the admin
	// server's Health snapshot reads them while Run mutates.
	steps      atomic.Int64
	reconnects atomic.Int64
	connected  atomic.Bool
	// jobGone latches a MsgJobGone terminal reject: the job this worker
	// was serving no longer exists, so reconnection stopped early. Fleet
	// agents read it via JobGone() to return the worker to the pool.
	jobGone atomic.Bool
}

// JobGone reports whether the worker's run ended on a MsgJobGone terminal
// reject — the master (or its tombstone) said the job no longer exists.
// Valid after Run returns; a fleet agent uses it to return to the pool
// instead of treating the exit as a completed run.
func (w *Worker) JobGone() bool { return w.jobGone.Load() }

// Health returns a point-in-time snapshot for the worker's /healthz
// payload. Safe to call from any goroutine.
func (w *Worker) Health() WorkerHealth {
	return WorkerHealth{
		ID:          w.cfg.ID,
		Connected:   w.connected.Load(),
		StepsServed: w.steps.Load(),
		Reconnects:  w.reconnects.Load(),
	}
}

// NewWorker connects to the master and registers.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	switch {
	case cfg.ID < 0:
		return nil, fmt.Errorf("cluster: negative worker id %d", cfg.ID)
	case len(cfg.Partitions) == 0:
		return nil, fmt.Errorf("cluster: worker %d has no partitions", cfg.ID)
	case len(cfg.Loaders) != len(cfg.Partitions):
		return nil, fmt.Errorf("cluster: worker %d: %d loaders for %d partitions", cfg.ID, len(cfg.Loaders), len(cfg.Partitions))
	case cfg.Model == nil:
		return nil, fmt.Errorf("cluster: worker %d: nil model", cfg.ID)
	case cfg.Encode == nil:
		return nil, fmt.Errorf("cluster: worker %d: nil encoder", cfg.ID)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	wireCfg, err := ParseWire(cfg.Wire)
	if err != nil {
		return nil, err
	}
	cfg.Wire = wireCfg
	if cfg.GatherShards < 0 || cfg.GatherShards > maxGatherShards {
		return nil, fmt.Errorf("cluster: worker %d: gather shards %d outside [0, %d]", cfg.ID, cfg.GatherShards, maxGatherShards)
	}
	if cfg.GatherShards == 0 {
		cfg.GatherShards = 1
	}

	// Load any resumable state before registering, so the hello reports the
	// restored step count and the master's rejoin path skips completed work.
	var resumed *checkpoint.WorkerState
	if cfg.Restore && cfg.Checkpoint != nil {
		var st checkpoint.WorkerState
		switch _, err := cfg.Checkpoint.Latest(&st); {
		case err == nil:
			if st.ID != cfg.ID {
				return nil, fmt.Errorf("cluster: worker %d: checkpoint belongs to worker %d", cfg.ID, st.ID)
			}
			resumed = &st
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Nothing saved yet — a cold start with -restore is fine.
		default:
			return nil, fmt.Errorf("cluster: worker %d: restore: %w", cfg.ID, err)
		}
	}
	startSteps := 0
	if resumed != nil {
		startSteps = int(resumed.Steps)
	}

	raw, err := dialWithRetry(cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := newConn(raw, defaultWriteTimeout, cfg.Metrics.sentCounter())
	wire, ack, err := clientHello(c, cfg.ID, startSteps, cfg.Wire, cfg.GatherShards)
	if err != nil {
		_ = c.close()
		return nil, err
	}
	lanes, shards, err := dialLanes(wire, ack, cfg)
	if err != nil {
		_ = c.close()
		return nil, err
	}
	cfg.Metrics.markWire(wire)
	cfg.Metrics.setGatherLanes(shards)
	w := &Worker{
		cfg:            cfg,
		c:              c,
		lanes:          lanes,
		shards:         shards,
		delaySrc:       randsrc.New(cfg.DelaySeed),
		faultSrc:       randsrc.New(cfg.FaultSeed),
		faultedThrough: -1,
		pool:           model.NewParallelGrad(cfg.ComputePar),
		localBuf:       make([][]float64, len(cfg.Partitions)),
		tasks:          make([]func(), len(cfg.Partitions)),
	}
	if resumed != nil {
		// Reposition the streams under the checkpointed seeds (which win
		// over the configured ones — the run's streams must continue).
		w.delaySrc.Restore(resumed.DelaySeed, resumed.DelayDraws)
		w.faultSrc.Restore(resumed.FaultSeed, resumed.FaultDraws)
		w.faultedThrough = resumed.FaultedThrough
		w.steps.Store(resumed.Steps)
	}
	w.rng = w.delaySrc.Rand()
	w.frng = w.faultSrc.Rand()
	for j := range w.localBuf {
		w.localBuf[j] = make([]float64, cfg.Model.Dim())
	}
	cfg.Metrics.setComputeShards(w.pool.Par())
	w.setConnected(true)
	w.startHeartbeat()
	cfg.Events.Info("worker.connected", "registered with master", events.NoStep, cfg.ID,
		events.Fields{"addr": cfg.Addr, "wire": wire})
	if resumed != nil {
		cfg.Events.Info("worker.restored", "resumed from checkpoint", events.NoStep, cfg.ID,
			events.Fields{"steps": resumed.Steps, "delay_draws": resumed.DelayDraws, "fault_draws": resumed.FaultDraws})
	}
	cfg.Timeline.SetThreadName(cfg.ID+1, fmt.Sprintf("worker %d", cfg.ID))
	return w, nil
}

// dialLanes opens the extra gather-lane connections a binaryv2 negotiation
// granted — lanes 1..shards-1, each attached via laneHello under the
// master's generation — and returns them with the effective lane count
// (primary included). A v1 or gob negotiation has no lanes.
func dialLanes(wire string, ack *Envelope, cfg WorkerConfig) ([]*conn, int, error) {
	if wire != WireBinary2 || ack == nil {
		return nil, 1, nil
	}
	shards := ack.Shards
	if shards > cfg.GatherShards {
		shards = cfg.GatherShards // never open more lanes than configured
	}
	if shards < 1 {
		shards = 1
	}
	lanes := make([]*conn, 0, shards-1)
	for lane := 1; lane < shards; lane++ {
		raw, err := dialWithRetry(cfg.Addr, cfg.DialTimeout)
		if err != nil {
			closeConns(lanes)
			return nil, 0, fmt.Errorf("cluster: worker %d lane %d: %w", cfg.ID, lane, err)
		}
		lc := newConn(raw, defaultWriteTimeout, cfg.Metrics.sentCounter())
		if err := laneHello(lc, cfg.ID, lane, ack.Gen); err != nil {
			_ = lc.close()
			closeConns(lanes)
			return nil, 0, fmt.Errorf("cluster: worker %d: %w", cfg.ID, err)
		}
		lanes = append(lanes, lc)
	}
	return lanes, shards, nil
}

// closeConns closes every connection in cs, tolerating nils.
func closeConns(cs []*conn) {
	for _, c := range cs {
		if c != nil {
			_ = c.close()
		}
	}
}

// Stop makes the worker leave the fleet gracefully: reconnection is
// suppressed, the blocked recv is unstuck by closing the connection, and —
// when a checkpoint store is configured — Run persists the worker's RNG
// positions and progress on its way out. Safe to call from a signal-handler
// goroutine; idempotent.
func (w *Worker) Stop() {
	w.stopOnce.Do(func() {
		w.stopping.Store(true)
		w.connMu.Lock()
		c := w.c
		lanes := w.lanes
		w.connMu.Unlock()
		_ = c.close()
		closeConns(lanes)
	})
}

// saveState persists the worker's resumable position. Failures are logged,
// never fatal: a worker that cannot checkpoint still exits cleanly.
func (w *Worker) saveState() {
	if w.cfg.Checkpoint == nil {
		return
	}
	ds, dd := w.delaySrc.State()
	fs, fd := w.faultSrc.State()
	st := checkpoint.WorkerState{
		Version:        checkpoint.Version,
		ID:             w.cfg.ID,
		Steps:          w.steps.Load(),
		DelaySeed:      ds,
		DelayDraws:     dd,
		FaultSeed:      fs,
		FaultDraws:     fd,
		FaultedThrough: w.faultedThrough,
	}
	if _, err := w.cfg.Checkpoint.Save(int(st.Steps), st); err != nil {
		w.cfg.Events.Warn("worker.checkpoint_error", err.Error(), events.NoStep, w.cfg.ID, nil)
		return
	}
	w.cfg.Events.Info("worker.checkpoint_written", "resumable state persisted", events.NoStep, w.cfg.ID,
		events.Fields{"steps": st.Steps, "delay_draws": dd, "fault_draws": fd})
}

// setConnected keeps the atomic state and the gauge in lockstep.
func (w *Worker) setConnected(up bool) {
	w.connected.Store(up)
	w.cfg.Metrics.setConnected(up)
}

// Run processes step requests until the master stops the worker or the
// connection drops (and, with ReconnectTimeout set, cannot be re-dialed).
// It returns the number of steps served.
func (w *Worker) Run() (int, error) {
	defer func() {
		w.stopHeartbeat()
		w.connMu.Lock()
		c, lanes := w.c, w.lanes
		w.connMu.Unlock()
		_ = c.close()
		closeConns(lanes)
		w.setConnected(false)
		w.pool.Close()
		if w.stopping.Load() {
			// Graceful shutdown: leave a resumable snapshot behind.
			w.saveState()
		}
	}()
	for {
		e, err := w.c.recv()
		if err != nil {
			// Stop() closed the connection under us, the master tore it
			// down after MsgStop raced us, or a genuine failure; try to
			// rejoin, else we are done.
			if w.reconnect() {
				continue
			}
			return int(w.steps.Load()), nil
		}
		switch e.Kind {
		case MsgStop:
			return int(w.steps.Load()), nil
		case MsgJobGone:
			// Terminal reject from a done master (a gob-pinned worker gets
			// it as a regular message rather than a hello-ack): the job is
			// gone for good, so leave without redialing.
			w.jobGone.Store(true)
			w.cfg.Events.Info("worker.job_gone", "master rejected registration: job no longer exists",
				events.NoStep, w.cfg.ID, nil)
			return int(w.steps.Load()), nil
		case MsgStep:
			action := straggler.FaultNone
			if w.cfg.Fault != nil && e.Step > w.faultedThrough {
				action = w.cfg.Fault.At(e.Step, w.frng)
				w.faultedThrough = e.Step
			}
			if action == straggler.FaultCrash {
				// Die abruptly — no farewell message, exactly like a
				// killed process; the master learns via the closed socket.
				w.cfg.Events.Warn("worker.crash_injected", "injected crash; dying without farewell",
					e.Step, w.cfg.ID, nil)
				return int(w.steps.Load()), nil
			}
			if action == straggler.FaultDisconnect {
				w.cfg.Events.Warn("worker.disconnect_injected", "injected disconnect; will redial",
					e.Step, w.cfg.ID, nil)
				w.stopHeartbeat()
				_ = w.c.close()
				w.setConnected(false)
				if w.reconnect() {
					continue
				}
				return int(w.steps.Load()), nil
			}
			coded, computeStart, computeDur, err := w.computeStep(e.Step, e.Params)
			if err != nil {
				return int(w.steps.Load()), err
			}
			w.cfg.Timeline.Add(events.Span{Name: "compute", Cat: "compute", TID: w.cfg.ID + 1,
				Start: computeStart, Dur: computeDur, Args: map[string]any{"step": e.Step}})
			if w.cfg.Delay != nil {
				delayStart := time.Now()
				time.Sleep(w.cfg.Delay.Sample(w.rng))
				w.cfg.Timeline.Add(events.Span{Name: "delay", Cat: "delay", TID: w.cfg.ID + 1,
					Start: delayStart, Dur: time.Since(delayStart), Args: map[string]any{"step": e.Step}})
			}
			if action == straggler.FaultDrop {
				w.steps.Add(1) // computed, but the upload is lost
				w.cfg.Metrics.markStep()
				w.cfg.Metrics.markDrop()
				w.cfg.Events.Warn("worker.upload_dropped", "injected drop; gradient not sent",
					e.Step, w.cfg.ID, nil)
				continue
			}
			if err := w.sendGradient(e.Step, coded, computeStart, computeDur); err != nil {
				if w.reconnect() {
					continue
				}
				return int(w.steps.Load()), nil // master already gone
			}
			w.steps.Add(1)
			w.cfg.Metrics.markStep()
		}
	}
}

// sendGradient uploads one step's coded gradient: a single whole envelope
// on a classic connection, or — when binaryv2 lanes were negotiated —
// contiguous sub-frames encoded and sent concurrently, one per lane. The
// sends complete before sendGradient returns, so the encoder's reusable
// buffer (SumEncoder's contract) is never read after the next encode.
func (w *Worker) sendGradient(step int, coded []float64, computeStart time.Time, computeDur time.Duration) error {
	w.connMu.Lock()
	c, lanes, shards := w.c, w.lanes, w.shards
	w.connMu.Unlock()
	if !c.wireV2 {
		return c.send(&Envelope{Kind: MsgGradient, Worker: w.cfg.ID, Step: step, Coded: coded,
			ComputeStartUnixNano: computeStart.UnixNano(), ComputeDurNanos: int64(computeDur)})
	}
	spans := shardSpans(len(coded), shards)
	conns := make([]*conn, 0, len(spans))
	conns = append(conns, c)
	conns = append(conns, lanes...)
	var wg sync.WaitGroup
	errs := make([]error, len(spans))
	for i, sp := range spans {
		if sp[1] == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, cc *conn, off, ln int) {
			defer wg.Done()
			errs[i] = cc.send(&Envelope{Kind: MsgGradient, Worker: w.cfg.ID, Step: step,
				Coded: coded[off : off+ln], Offset: off, Total: len(coded),
				ComputeStartUnixNano: computeStart.UnixNano(), ComputeDurNanos: int64(computeDur)})
		}(i, conns[i], sp[0], sp[1])
	}
	wg.Wait()
	w.cfg.Metrics.markSubFrames(len(spans))
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// reconnect redials the master with exponential backoff and re-registers
// with the last completed step. It reports whether the worker is connected
// again; false when reconnection is disabled or the budget ran out.
func (w *Worker) reconnect() bool {
	if w.stopping.Load() || w.cfg.ReconnectTimeout <= 0 {
		return false
	}
	w.stopHeartbeat()
	_ = w.c.close()
	w.setConnected(false)
	deadline := time.Now().Add(w.cfg.ReconnectTimeout)
	backoff := 25 * time.Millisecond
	for {
		if w.stopping.Load() {
			// Stop() arrived mid-backoff: a fleet agent re-assigning this
			// worker must not wait out the rest of the redial budget.
			return false
		}
		w.cfg.Metrics.markReconnectAttempt()
		raw, err := net.DialTimeout("tcp", w.cfg.Addr, 500*time.Millisecond)
		if err == nil {
			c := newConn(raw, defaultWriteTimeout, w.cfg.Metrics.sentCounter())
			// A rejoin renegotiates the codec from scratch: the fresh
			// connection starts in gob like any other registration, and a
			// sharded worker re-dials its lanes under the new generation.
			wire, ack, helloErr := clientHello(c, w.cfg.ID, int(w.steps.Load()), w.cfg.Wire, w.cfg.GatherShards)
			if errors.Is(helloErr, ErrJobGone) {
				// Terminal reject: whoever answers this address says the job
				// no longer exists. Burning the rest of the redial budget
				// cannot change that — bow out and report it.
				_ = c.close()
				w.jobGone.Store(true)
				w.cfg.Events.Info("worker.job_gone", "redial rejected: job no longer exists",
					events.NoStep, w.cfg.ID, nil)
				return false
			}
			if helloErr == nil {
				lanes, shards, laneErr := dialLanes(wire, ack, w.cfg)
				if laneErr == nil {
					w.cfg.Metrics.markWire(wire)
					w.cfg.Metrics.setGatherLanes(shards)
					w.connMu.Lock()
					w.c = c
					w.lanes = lanes
					w.shards = shards
					stopped := w.stopping.Load()
					w.connMu.Unlock()
					if stopped {
						// Stop raced the redial: it closed the old conn just
						// before we swapped in the new one. Tear the fresh
						// connections down too and bow out.
						_ = c.close()
						closeConns(lanes)
						return false
					}
					w.reconnects.Add(1)
					w.cfg.Metrics.markReconnect()
					w.setConnected(true)
					w.startHeartbeat()
					w.cfg.Events.Info("worker.reconnected", "re-registered after connection loss",
						events.NoStep, w.cfg.ID, events.Fields{"completed_steps": w.steps.Load(), "wire": wire, "lanes": shards})
					return true
				}
			}
			_ = c.close()
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(backoff)
		backoff *= 2
		if backoff > time.Second {
			backoff = time.Second
		}
	}
}

// startHeartbeat launches the liveness pinger for the current connection;
// it exits on stopHeartbeat or when a ping fails (connection gone).
func (w *Worker) startHeartbeat() {
	if w.cfg.HeartbeatInterval < 0 {
		return
	}
	interval := w.cfg.HeartbeatInterval
	if interval == 0 {
		interval = time.Second
	}
	c := w.c
	stop := make(chan struct{})
	w.stopHB = stop
	go func() {
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				if c.send(&Envelope{Kind: MsgHeartbeat, Worker: w.cfg.ID}) != nil {
					return
				}
			}
		}
	}()
}

func (w *Worker) stopHeartbeat() {
	if w.stopHB != nil {
		close(w.stopHB)
		w.stopHB = nil
	}
}

// computeStep runs the local gradient computation and returns the coded
// upload plus its timing (start and duration), which the caller stamps
// into the gradient envelope for master-side straggler attribution.
//
// With several partitions the pool computes them concurrently, each into
// its own reusable buffer — bit-identical to sequential. With one
// partition there are no replicas to stay bit-identical with, so the pool
// shards the batch itself.
func (w *Worker) computeStep(step int, params []float64) ([]float64, time.Time, time.Duration, error) {
	start := time.Now()
	if len(w.cfg.Partitions) == 1 {
		w.pool.GradInto(w.localBuf[0], params, w.cfg.Model, w.cfg.Loaders[0].Samples(step))
	} else {
		for j := range w.cfg.Loaders {
			j := j
			w.tasks[j] = func() {
				w.cfg.Model.GradInto(w.localBuf[j], params, w.cfg.Loaders[j].Samples(step))
			}
		}
		w.pool.Run(w.tasks...)
	}
	coded, err := w.cfg.Encode(w.localBuf)
	if err != nil {
		return nil, start, 0, fmt.Errorf("cluster: worker %d step %d: %w", w.cfg.ID, step, err)
	}
	dur := time.Since(start)
	w.cfg.Metrics.observeCompute(dur)
	return coded, start, dur, nil
}

// SumEncoder returns the IS-GC encoder: the plain sum of the local
// per-partition gradients. The closure owns a reusable output buffer, so
// steady-state encoding allocates nothing; the returned slice is only
// valid until the next call. That is safe for WorkerConfig.Encode — the
// worker sends the upload synchronously before encoding the next step —
// but means one encoder must not be shared between workers.
func SumEncoder() func([][]float64) ([]float64, error) {
	var out []float64
	return func(local [][]float64) ([]float64, error) {
		if len(local) == 0 {
			return nil, fmt.Errorf("cluster: no local gradients")
		}
		if len(out) != len(local[0]) {
			out = make([]float64, len(local[0]))
		}
		for k := range out {
			out[k] = 0
		}
		for _, g := range local {
			if len(g) != len(out) {
				return nil, fmt.Errorf("cluster: gradient dim mismatch %d vs %d", len(g), len(out))
			}
			for k, x := range g {
				out[k] += x
			}
		}
		return out, nil
	}
}

// LinearEncoder returns a fixed-coefficient encoder (classic GC): coeffs is
// aligned with the worker's partition list. Buffer-reuse contract matches
// SumEncoder: one encoder per worker, result valid until the next call.
func LinearEncoder(coeffs []float64) func([][]float64) ([]float64, error) {
	cs := append([]float64(nil), coeffs...)
	var out []float64
	return func(local [][]float64) ([]float64, error) {
		if len(local) != len(cs) {
			return nil, fmt.Errorf("cluster: %d gradients for %d coefficients", len(local), len(cs))
		}
		if len(out) != len(local[0]) {
			out = make([]float64, len(local[0]))
		}
		for k := range out {
			out[k] = 0
		}
		for j, g := range local {
			if len(g) != len(out) {
				return nil, fmt.Errorf("cluster: gradient dim mismatch %d vs %d", len(g), len(out))
			}
			for k, x := range g {
				out[k] += cs[j] * x
			}
		}
		return out, nil
	}
}
