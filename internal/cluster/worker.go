package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/model"
	"isgc/internal/straggler"
)

// WorkerConfig configures one worker process.
type WorkerConfig struct {
	// Addr is the master's address.
	Addr string
	// ID is this worker's index in [0, n).
	ID int
	// Partitions lists the dataset partitions this worker stores
	// (Strategy.Partitions(ID) on the master side).
	Partitions []int
	// Loaders yields mini-batches per stored partition, index-aligned
	// with Partitions. Loader seeds must follow the shared discipline so
	// partition replicas see identical batches.
	Loaders []*dataset.Loader
	// Model computes gradients.
	Model model.Model
	// Encode combines the worker's per-partition gradients into the coded
	// upload: it receives the gradients aligned with Partitions. For
	// IS-GC this is the plain sum; for classic GC a fixed linear
	// combination (use CodedEncoder helpers).
	Encode func(localGrads [][]float64) ([]float64, error)
	// Delay optionally injects an artificial straggler delay before each
	// upload, sampled from the model (nil = none). This is how the
	// integration tests and the distributed example reproduce the paper's
	// delay injection over real sockets.
	Delay straggler.Model
	// DelaySeed seeds the delay sampling.
	DelaySeed int64
	// DialTimeout bounds the initial connection (default 5s).
	DialTimeout time.Duration
}

// Worker trains on its partitions and uploads coded gradients until the
// master says stop.
type Worker struct {
	cfg WorkerConfig
	c   *conn
	rng *rand.Rand
}

// NewWorker connects to the master and registers.
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	switch {
	case cfg.ID < 0:
		return nil, fmt.Errorf("cluster: negative worker id %d", cfg.ID)
	case len(cfg.Partitions) == 0:
		return nil, fmt.Errorf("cluster: worker %d has no partitions", cfg.ID)
	case len(cfg.Loaders) != len(cfg.Partitions):
		return nil, fmt.Errorf("cluster: worker %d: %d loaders for %d partitions", cfg.ID, len(cfg.Loaders), len(cfg.Partitions))
	case cfg.Model == nil:
		return nil, fmt.Errorf("cluster: worker %d: nil model", cfg.ID)
	case cfg.Encode == nil:
		return nil, fmt.Errorf("cluster: worker %d: nil encoder", cfg.ID)
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	raw, err := dialWithRetry(cfg.Addr, cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	c := newConn(raw)
	if err := c.send(&Envelope{Kind: MsgHello, Worker: cfg.ID}); err != nil {
		_ = c.close()
		return nil, err
	}
	return &Worker{cfg: cfg, c: c, rng: rand.New(rand.NewSource(cfg.DelaySeed))}, nil
}

// Run processes step requests until the master stops the worker or the
// connection drops. It returns the number of steps served.
func (w *Worker) Run() (int, error) {
	defer w.c.close()
	steps := 0
	for {
		e, err := w.c.recv()
		if err != nil {
			// Connection torn down by the master after MsgStop raced us,
			// or a genuine failure; either way we are done serving.
			return steps, nil
		}
		switch e.Kind {
		case MsgStop:
			return steps, nil
		case MsgStep:
			coded, err := w.computeStep(e.Step, e.Params)
			if err != nil {
				return steps, err
			}
			if w.cfg.Delay != nil {
				time.Sleep(w.cfg.Delay.Sample(w.rng))
			}
			if err := w.c.send(&Envelope{Kind: MsgGradient, Worker: w.cfg.ID, Step: e.Step, Coded: coded}); err != nil {
				return steps, nil // master already gone
			}
			steps++
		}
	}
}

func (w *Worker) computeStep(step int, params []float64) ([]float64, error) {
	local := make([][]float64, len(w.cfg.Partitions))
	for j, l := range w.cfg.Loaders {
		local[j] = w.cfg.Model.Grad(params, l.Samples(step))
	}
	coded, err := w.cfg.Encode(local)
	if err != nil {
		return nil, fmt.Errorf("cluster: worker %d step %d: %w", w.cfg.ID, step, err)
	}
	return coded, nil
}

// SumEncoder returns the IS-GC encoder: the plain sum of the local
// per-partition gradients.
func SumEncoder() func([][]float64) ([]float64, error) {
	return func(local [][]float64) ([]float64, error) {
		if len(local) == 0 {
			return nil, fmt.Errorf("cluster: no local gradients")
		}
		out := make([]float64, len(local[0]))
		for _, g := range local {
			if len(g) != len(out) {
				return nil, fmt.Errorf("cluster: gradient dim mismatch %d vs %d", len(g), len(out))
			}
			for k, x := range g {
				out[k] += x
			}
		}
		return out, nil
	}
}

// LinearEncoder returns a fixed-coefficient encoder (classic GC): coeffs is
// aligned with the worker's partition list.
func LinearEncoder(coeffs []float64) func([][]float64) ([]float64, error) {
	cs := append([]float64(nil), coeffs...)
	return func(local [][]float64) ([]float64, error) {
		if len(local) != len(cs) {
			return nil, fmt.Errorf("cluster: %d gradients for %d coefficients", len(local), len(cs))
		}
		out := make([]float64, len(local[0]))
		for j, g := range local {
			if len(g) != len(out) {
				return nil, fmt.Errorf("cluster: gradient dim mismatch %d vs %d", len(g), len(out))
			}
			for k, x := range g {
				out[k] += cs[j] * x
			}
		}
		return out, nil
	}
}
