package cluster

import (
	"net"
	"sync"
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/model"
)

// pipePair returns two connected conns over an in-memory duplex pipe.
func pipePair() (*conn, *conn) {
	a, b := net.Pipe()
	return newConn(a, 0, nil), newConn(b, 0, nil)
}

func TestEnvelopeRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()

	want := &Envelope{
		Kind:   MsgGradient,
		Worker: 3,
		Step:   17,
		Coded:  []float64{1.5, -2.25, 0},
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := a.send(want); err != nil {
			t.Error(err)
		}
	}()
	got, err := b.recv()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if got.Kind != want.Kind || got.Worker != want.Worker || got.Step != want.Step {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	if len(got.Coded) != 3 || got.Coded[1] != -2.25 {
		t.Fatalf("coded = %v", got.Coded)
	}
}

func TestEnvelopeParamsRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()

	params := make([]float64, 1000)
	for i := range params {
		params[i] = float64(i) * 0.5
	}
	go func() {
		_ = a.send(&Envelope{Kind: MsgStep, Step: 2, Params: params})
	}()
	got, err := b.recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != MsgStep || len(got.Params) != 1000 || got.Params[999] != 499.5 {
		t.Fatalf("bad round trip: kind=%s len=%d", got.Kind, len(got.Params))
	}
}

func TestRecvAfterCloseFails(t *testing.T) {
	a, b := pipePair()
	a.close()
	b.close()
	if _, err := b.recv(); err == nil {
		t.Fatal("recv on closed conn must fail")
	}
	if err := a.send(&Envelope{Kind: MsgStop}); err == nil {
		t.Fatal("send on closed conn must fail")
	}
}

func TestDialWithRetryTimesOut(t *testing.T) {
	start := time.Now()
	_, err := dialWithRetry("127.0.0.1:1", 200*time.Millisecond) // port 1: nothing listens
	if err == nil {
		t.Fatal("expected dial failure")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("retry loop ran too long: %v", elapsed)
	}
}

func TestMasterRejectsBadHello(t *testing.T) {
	st, err := engine.NewSyncSGD(2)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dataset.SyntheticLinear(10, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st,
		Model: model.LinearRegression{Features: 2}, Data: data,
		LearningRate: 0.1, MaxSteps: 1, AcceptTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Run()
		done <- err
	}()
	// Connect and send an out-of-range worker id: the master drops the
	// connection (it must survive strangers mid-run) and, with no valid
	// workers ever registering, fails the accept phase on its timeout.
	raw, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	c := newConn(raw, 0, nil)
	if err := c.send(&Envelope{Kind: MsgHello, Worker: 99}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.recv(); err == nil {
		t.Fatal("master must close the connection of an out-of-range worker id")
	}
	if err := <-done; err == nil {
		t.Fatal("master must not start training without valid workers")
	}
	c.close()
}

func TestMasterRejectsDuplicateWorker(t *testing.T) {
	st, err := engine.NewSyncSGD(2)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dataset.SyntheticLinear(10, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st,
		Model: model.LinearRegression{Features: 2}, Data: data,
		LearningRate: 0.1, MaxSteps: 1, AcceptTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := m.Run()
		done <- err
	}()
	dial := func() *conn {
		raw, err := net.Dial("tcp", m.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return newConn(raw, 0, nil)
	}
	c1 := dial()
	defer c1.close()
	if err := c1.send(&Envelope{Kind: MsgHello, Worker: 0}); err != nil {
		t.Fatal(err)
	}
	c2 := dial()
	defer c2.close()
	if err := c2.send(&Envelope{Kind: MsgHello, Worker: 0}); err != nil {
		t.Fatal(err)
	}
	// The duplicate registration for the live worker 0 is refused (its
	// connection closes) while the first one stays registered; the master
	// then times out waiting for the still-missing worker 1.
	if _, err := c2.recv(); err == nil {
		t.Fatal("master must close the duplicate's connection")
	}
	if err := <-done; err == nil {
		t.Fatal("master must not start training with a missing worker")
	}
}

func TestMasterAcceptTimeout(t *testing.T) {
	st, err := engine.NewSyncSGD(2)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dataset.SyntheticLinear(10, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st,
		Model: model.LinearRegression{Features: 2}, Data: data,
		LearningRate: 0.1, MaxSteps: 1, AcceptTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := m.Run(); err == nil {
		t.Fatal("master must fail when no workers register")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("accept timeout not enforced")
	}
}
