package cluster

import (
	"strings"
	"testing"
)

// FuzzDecodeMessage hammers the wire-decode choke point with adversarial
// bytes: whatever arrives on a socket, decoding must return an envelope or
// an error — never panic the master. Seeds cover every message kind plus
// truncations and flipped bytes of valid encodings.
func FuzzDecodeMessage(f *testing.F) {
	seeds := []*Envelope{
		{Kind: MsgHello, Worker: 3},
		{Kind: MsgHello, Worker: 2, Step: 17},
		{Kind: MsgStep, Step: 5, Params: []float64{1.5, -2.25, 0}},
		{Kind: MsgGradient, Worker: 1, Step: 9, Coded: []float64{0.25, 3}},
		{Kind: MsgGradient, Worker: 4, Step: 2, Coded: []float64{1},
			ComputeStartUnixNano: 1_700_000_000_000_000_000, ComputeDurNanos: 12_345_678},
		{Kind: MsgHeartbeat, Worker: 0},
		{Kind: MsgStop},
	}
	for _, e := range seeds {
		data, err := EncodeMessage(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations exercise mid-stream EOF handling.
		f.Add(data[:len(data)/2])
		f.Add(data[:1])
		// A flipped byte in the gob type descriptor or payload.
		corrupt := append([]byte(nil), data...)
		corrupt[len(corrupt)/2] ^= 0xff
		f.Add(corrupt)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeMessage(data)
		if err != nil {
			return
		}
		// Whatever decodes successfully must satisfy the structural
		// invariants the runtime relies on downstream.
		switch e.Kind {
		case MsgHello, MsgStep, MsgGradient, MsgHeartbeat, MsgStop:
		default:
			t.Fatalf("decoded envelope with unvalidated kind %q", e.Kind)
		}
		if e.Worker < 0 || e.Step < 0 {
			t.Fatalf("decoded envelope with negative ids: %+v", e)
		}
		if len(e.Params) > maxVectorLen || len(e.Coded) > maxVectorLen {
			t.Fatalf("decoded envelope exceeding vector cap: params=%d coded=%d", len(e.Params), len(e.Coded))
		}
		if e.ComputeStartUnixNano < 0 || e.ComputeDurNanos < 0 {
			t.Fatalf("decoded envelope with negative compute timing: %+v", e)
		}
	})
}

// FuzzDecodeFrame is the binary counterpart of FuzzDecodeMessage: the
// frame parser fronts adversarial bytes on every negotiated connection, so
// whatever arrives must decode to a valid envelope or an error — never a
// panic, and never an envelope violating the structural invariants. The
// corpus is seeded with the golden vectors plus targeted corruptions of
// each rejection path (truncation, magic, version skew, reserved bytes,
// dim overflow).
func FuzzDecodeFrame(f *testing.F) {
	for _, e := range goldenEnvelopes() {
		data, err := EncodeFrame(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(append(append([]byte(nil), data...), 0))
		corrupt := append([]byte(nil), data...)
		corrupt[len(corrupt)/3] ^= 0xff
		f.Add(corrupt)
	}
	grad, err := EncodeFrame(&Envelope{Kind: MsgGradient, Worker: 1, Step: 2, Coded: []float64{1}})
	if err != nil {
		f.Fatal(err)
	}
	skew := append([]byte(nil), grad...)
	skew[4] = frameVersion + 1
	f.Add(skew)
	overflow := append([]byte(nil), grad...)
	putU32(overflow[32:], maxVectorLen+1)
	f.Add(overflow)
	f.Add([]byte{})
	f.Add([]byte("ISGC"))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if verr := validateEnvelope(e); verr != nil {
			t.Fatalf("decoded envelope fails validation: %v (%+v)", verr, e)
		}
		if e.Wire != "" {
			t.Fatalf("binary frame produced negotiation field %q", e.Wire)
		}
		// Canonical format: whatever decodes must re-encode to the exact
		// input bytes.
		re, err := AppendFrame(nil, e)
		if err != nil {
			t.Fatalf("re-encode of decoded envelope failed: %v (%+v)", err, e)
		}
		if len(re) != len(data) {
			t.Fatalf("re-encode length %d != input length %d", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encode differs from input at byte %d", i)
			}
		}
	})
}

// FuzzDecodeSubFrame hammers the binaryv2 parser the way FuzzDecodeFrame
// hammers v1. The extra geometry fields add rejection paths (offset/total
// overflow, zero-total gradients, geometry on control frames) — all seeded
// here — and the canonical-encoding invariant extends to them: whatever
// decodes must re-encode to the exact input bytes, sub-frame geometry
// included.
func FuzzDecodeSubFrame(f *testing.F) {
	for _, e := range goldenSubFrameEnvelopes() {
		data, err := EncodeSubFrame(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(append(append([]byte(nil), data...), 0))
		corrupt := append([]byte(nil), data...)
		corrupt[len(corrupt)/3] ^= 0xff
		f.Add(corrupt)
	}
	grad, err := EncodeSubFrame(&Envelope{Kind: MsgGradient, Worker: 1, Step: 2,
		Coded: []float64{1}, Offset: 4, Total: 8})
	if err != nil {
		f.Fatal(err)
	}
	skewDown := append([]byte(nil), grad...)
	skewDown[4] = frameVersion
	f.Add(skewDown)
	skewUp := append([]byte(nil), grad...)
	skewUp[4] = frameVersion2 + 1
	f.Add(skewUp)
	dimOverflow := append([]byte(nil), grad...)
	putU32(dimOverflow[32:], maxVectorLen+1)
	f.Add(dimOverflow)
	offOverflow := append([]byte(nil), grad...)
	putU32(offOverflow[36:], maxVectorLen+1)
	f.Add(offOverflow)
	zeroTotal := append([]byte(nil), grad...)
	putU32(zeroTotal[40:], 0)
	f.Add(zeroTotal)
	f.Add([]byte{})
	f.Add([]byte("ISGC"))

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeSubFrame(data)
		if err != nil {
			return
		}
		if verr := validateEnvelope(e); verr != nil {
			t.Fatalf("decoded envelope fails validation: %v (%+v)", verr, e)
		}
		if e.Wire != "" || e.Shards != 0 || e.Shard != 0 {
			t.Fatalf("v2 frame produced negotiation fields: %+v", e)
		}
		re, err := AppendSubFrame(nil, e)
		if err != nil {
			t.Fatalf("re-encode of decoded envelope failed: %v (%+v)", err, e)
		}
		if len(re) != len(data) {
			t.Fatalf("re-encode length %d != input length %d", len(re), len(data))
		}
		for i := range re {
			if re[i] != data[i] {
				t.Fatalf("re-encode differs from input at byte %d", i)
			}
		}
	})
}

func TestDecodeMessageRoundTrip(t *testing.T) {
	want := &Envelope{Kind: MsgGradient, Worker: 2, Step: 11, Coded: []float64{1, 2, 3},
		ComputeStartUnixNano: 1_700_000_000_000_000_000, ComputeDurNanos: 42_000_000}
	data, err := EncodeMessage(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.Worker != want.Worker || got.Step != want.Step || len(got.Coded) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.ComputeStartUnixNano != want.ComputeStartUnixNano || got.ComputeDurNanos != want.ComputeDurNanos {
		t.Fatalf("compute timing lost in round trip: %+v", got)
	}
}

func TestDecodeMessageRejectsMalformed(t *testing.T) {
	cases := map[string]*Envelope{
		"unknown kind":              {Kind: "pwn"},
		"negative worker":           {Kind: MsgGradient, Worker: -2},
		"negative step":             {Kind: MsgStep, Step: -1},
		"negative compute start":    {Kind: MsgGradient, Worker: 1, ComputeStartUnixNano: -5},
		"negative compute duration": {Kind: MsgGradient, Worker: 1, ComputeDurNanos: -1},
	}
	for name, e := range cases {
		data, err := EncodeMessage(e)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, err := DecodeMessage(data); err == nil {
			t.Errorf("%s: DecodeMessage accepted %+v", name, e)
		}
	}
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("DecodeMessage accepted empty input")
	}
	if _, err := DecodeMessage([]byte("garbage that is not gob")); err == nil {
		t.Error("DecodeMessage accepted garbage")
	}
}

// TestRecvRejectsUnknownKind pins that the validation applies on the live
// connection path, not just the standalone DecodeMessage helper.
func TestRecvRejectsUnknownKind(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()
	go func() {
		// send bypasses validation (it trusts our own code); the receiver
		// must not.
		_ = a.send(&Envelope{Kind: "bogus"})
	}()
	if _, err := b.recv(); err == nil || !strings.Contains(err.Error(), "unknown message kind") {
		t.Fatalf("recv must reject unknown kinds, got err=%v", err)
	}
}
