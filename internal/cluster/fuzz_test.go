package cluster

import (
	"strings"
	"testing"
)

// FuzzDecodeMessage hammers the wire-decode choke point with adversarial
// bytes: whatever arrives on a socket, decoding must return an envelope or
// an error — never panic the master. Seeds cover every message kind plus
// truncations and flipped bytes of valid encodings.
func FuzzDecodeMessage(f *testing.F) {
	seeds := []*Envelope{
		{Kind: MsgHello, Worker: 3},
		{Kind: MsgHello, Worker: 2, Step: 17},
		{Kind: MsgStep, Step: 5, Params: []float64{1.5, -2.25, 0}},
		{Kind: MsgGradient, Worker: 1, Step: 9, Coded: []float64{0.25, 3}},
		{Kind: MsgGradient, Worker: 4, Step: 2, Coded: []float64{1},
			ComputeStartUnixNano: 1_700_000_000_000_000_000, ComputeDurNanos: 12_345_678},
		{Kind: MsgHeartbeat, Worker: 0},
		{Kind: MsgStop},
	}
	for _, e := range seeds {
		data, err := EncodeMessage(e)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		// Truncations exercise mid-stream EOF handling.
		f.Add(data[:len(data)/2])
		f.Add(data[:1])
		// A flipped byte in the gob type descriptor or payload.
		corrupt := append([]byte(nil), data...)
		corrupt[len(corrupt)/2] ^= 0xff
		f.Add(corrupt)
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := DecodeMessage(data)
		if err != nil {
			return
		}
		// Whatever decodes successfully must satisfy the structural
		// invariants the runtime relies on downstream.
		switch e.Kind {
		case MsgHello, MsgStep, MsgGradient, MsgHeartbeat, MsgStop:
		default:
			t.Fatalf("decoded envelope with unvalidated kind %q", e.Kind)
		}
		if e.Worker < 0 || e.Step < 0 {
			t.Fatalf("decoded envelope with negative ids: %+v", e)
		}
		if len(e.Params) > maxVectorLen || len(e.Coded) > maxVectorLen {
			t.Fatalf("decoded envelope exceeding vector cap: params=%d coded=%d", len(e.Params), len(e.Coded))
		}
		if e.ComputeStartUnixNano < 0 || e.ComputeDurNanos < 0 {
			t.Fatalf("decoded envelope with negative compute timing: %+v", e)
		}
	})
}

func TestDecodeMessageRoundTrip(t *testing.T) {
	want := &Envelope{Kind: MsgGradient, Worker: 2, Step: 11, Coded: []float64{1, 2, 3},
		ComputeStartUnixNano: 1_700_000_000_000_000_000, ComputeDurNanos: 42_000_000}
	data, err := EncodeMessage(want)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeMessage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != want.Kind || got.Worker != want.Worker || got.Step != want.Step || len(got.Coded) != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.ComputeStartUnixNano != want.ComputeStartUnixNano || got.ComputeDurNanos != want.ComputeDurNanos {
		t.Fatalf("compute timing lost in round trip: %+v", got)
	}
}

func TestDecodeMessageRejectsMalformed(t *testing.T) {
	cases := map[string]*Envelope{
		"unknown kind":              {Kind: "pwn"},
		"negative worker":           {Kind: MsgGradient, Worker: -2},
		"negative step":             {Kind: MsgStep, Step: -1},
		"negative compute start":    {Kind: MsgGradient, Worker: 1, ComputeStartUnixNano: -5},
		"negative compute duration": {Kind: MsgGradient, Worker: 1, ComputeDurNanos: -1},
	}
	for name, e := range cases {
		data, err := EncodeMessage(e)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if _, err := DecodeMessage(data); err == nil {
			t.Errorf("%s: DecodeMessage accepted %+v", name, e)
		}
	}
	if _, err := DecodeMessage(nil); err == nil {
		t.Error("DecodeMessage accepted empty input")
	}
	if _, err := DecodeMessage([]byte("garbage that is not gob")); err == nil {
		t.Error("DecodeMessage accepted garbage")
	}
}

// TestRecvRejectsUnknownKind pins that the validation applies on the live
// connection path, not just the standalone DecodeMessage helper.
func TestRecvRejectsUnknownKind(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()
	go func() {
		// send bypasses validation (it trusts our own code); the receiver
		// must not.
		_ = a.send(&Envelope{Kind: "bogus"})
	}()
	if _, err := b.recv(); err == nil || !strings.Contains(err.Error(), "unknown message kind") {
		t.Fatalf("recv must reject unknown kinds, got err=%v", err)
	}
}
