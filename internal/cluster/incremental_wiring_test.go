package cluster

import (
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/placement"
)

// TestMasterWiresIncrementalDecode checks the IncrementalDecode config
// plumbing end to end at the construction boundary: NewMaster must enable
// the scheme's repair path and hook its repair/fallback callbacks to the
// master's counters, without requiring DecodeCache.
func TestMasterWiresIncrementalDecode(t *testing.T) {
	p, err := placement.FR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	scheme := isgc.New(p, 7)
	st, err := engine.NewISGC(scheme)
	if err != nil {
		t.Fatal(err)
	}
	data, _, err := dataset.SyntheticLinear(10, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mm := NewMasterMetrics(metrics.NewRegistry())
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: model.LinearRegression{Features: 2},
		Data: data, LearningRate: 0.1, MaxSteps: 1,
		IncrementalDecode: true, Metrics: mm,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.ln.Close()

	// Drive the shared scheme exactly as the gather loop would: a fresh
	// solve, then a one-departure delta the repair path must absorb.
	full := bitset.FromSlice([]int{0, 1, 2, 3})
	scheme.Decode(full)
	delta := full.Clone()
	delta.Remove(1)
	scheme.Decode(delta)

	stats := scheme.IncrementalDecodeStats()
	if stats.FullSolves != 1 || stats.Repairs != 1 {
		t.Fatalf("stats = %+v, want 1 full solve + 1 repair (incremental path not enabled?)", stats)
	}
	if got := mm.DecodeRepairs.Value(); got != 1 {
		t.Fatalf("isgc_master_decode_repairs_total = %d, want 1 (hooks not wired)", got)
	}
	if got := mm.DecodeFallbacks.Value(); got != 0 {
		t.Fatalf("isgc_master_decode_fallbacks_total = %d, want 0", got)
	}
}
