package cluster

import (
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"isgc/internal/checkpoint"
	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// freshISGC builds a new IS-GC strategy instance (its own decoder RNG) so
// each master life starts from a clean object, exactly like a restarted
// process.
func freshISGC(t *testing.T, n, c int, seed int64) engine.Strategy {
	t.Helper()
	p, err := placement.CR(n, c)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, seed))
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// startFleet launches the full worker fleet against addr and returns its
// WaitGroup. With a positive reconnect budget the fleet survives master
// restarts — the failover path the durable tests exercise.
func startFleet(t *testing.T, st engine.Strategy, data *dataset.Dataset, mdl model.Model,
	addr string, reconnect time.Duration, delay straggler.Model) *sync.WaitGroup {
	t.Helper()
	n := st.N()
	parts, err := data.Partition(n)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if err != nil {
					t.Error(err)
					return
				}
			}
			wk, err := NewWorker(WorkerConfig{
				Addr: addr, ID: i, Partitions: pids, Loaders: loaders,
				Model: mdl, Encode: SumEncoder(), Delay: delay, DelaySeed: int64(i) + 1,
				ReconnectTimeout: reconnect,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := wk.Run(); err != nil {
				t.Error(err)
			}
		}()
	}
	return &wg
}

// fixedDelay pins every upload behind a constant pause, giving the
// durable-run tests a hard lower bound on step duration: a Stop or a
// standby observation window then provably lands mid-run instead of racing
// a microsecond-per-step fleet to the finish line. Delays only stretch
// wall clock — the deterministic record fields are unaffected.
type fixedDelay struct{ d time.Duration }

func (f fixedDelay) Sample(*rand.Rand) time.Duration { return f.d }
func (f fixedDelay) String() string                  { return "fixed(" + f.d.String() + ")" }

// freeLoopbackAddr grabs a free port and releases it, so a master can be
// started on a known address a fleet can follow across restarts.
func freeLoopbackAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// waitForStep polls the master's health snapshot until the broadcast step
// reaches target.
func waitForStep(t *testing.T, m *Master, target int) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		h := m.Health()
		if h.Running && h.Step >= target {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("master never reached step %d (at %d)", target, h.Step)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// zeroElapsed strips the wall-clock field records legitimately disagree on
// between runs, leaving only the deterministic content.
func zeroElapsed(recs []trace.StepRecord) []trace.StepRecord {
	out := append([]trace.StepRecord(nil), recs...)
	for i := range out {
		out[i].Elapsed = 0
	}
	return out
}

// TestClusterCheckpointRestoreEquivalence is the tentpole acceptance check
// at the cluster layer: a master stopped mid-run and restarted with Restore
// on the same address — against the same still-running fleet — produces
// step records and final params bit-identical to an uninterrupted run from
// the checkpoint boundary on.
func TestClusterCheckpointRestoreEquivalence(t *testing.T) {
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)
	base := func(st engine.Strategy, addr string) MasterConfig {
		return MasterConfig{
			Addr: addr, Strategy: st, Model: mdl, Data: data,
			LearningRate: 0.3, W: 4, MaxSteps: 20, Seed: 42,
			// Sequential loss eval: the sharded sum is pool-size dependent
			// in its float bits, and this test compares bits.
			ComputePar: 1,
		}
	}

	// Uninterrupted reference run.
	refMaster, err := NewMaster(base(freshISGC(t, 4, 2, 7), "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	refFleet := startFleet(t, refMaster.cfg.Strategy, data, mdl, refMaster.Addr(), 0, nil)
	ref, err := refMaster.Run()
	if err != nil {
		t.Fatal(err)
	}
	refFleet.Wait()

	// First life: fixed port, checkpoints on, stopped after step 8.
	addr := freeLoopbackAddr(t)
	dir := t.TempDir()
	store1, err := checkpoint.NewStore(dir, checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	cfg1 := base(freshISGC(t, 4, 2, 7), addr)
	cfg1.Checkpoint = store1
	cfg1.CheckpointEvery = 5
	cfg1.LeaseTTL = time.Second
	m1, err := NewMaster(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	fleet := startFleet(t, cfg1.Strategy, data, mdl, addr, 30*time.Second, fixedDelay{8 * time.Millisecond})
	res1Ch := make(chan *engine.Result, 1)
	go func() {
		res, err := m1.Run()
		if err != nil {
			t.Error(err)
		}
		res1Ch <- res
	}()
	waitForStep(t, m1, 8)
	m1.Stop()
	res1 := <-res1Ch
	if res1 == nil || !res1.Interrupted {
		t.Fatalf("first life did not report an interrupted run: %+v", res1)
	}
	if res1.Run.Steps() == 0 || res1.Run.Steps() >= 20 {
		t.Fatalf("first life recorded %d steps; the stop must land mid-run", res1.Run.Steps())
	}

	// Second life: a fresh master restores on the same address; the fleet's
	// reconnect loops find it and the run completes.
	store2, err := checkpoint.NewStore(dir, checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := base(freshISGC(t, 4, 2, 7), addr)
	cfg2.Checkpoint = store2
	cfg2.CheckpointEvery = 5
	cfg2.Restore = true
	m2, err := NewMaster(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	fleet.Wait()

	if gen := m2.Health().Generation; gen != 1 {
		t.Fatalf("restored master generation = %d, want 1", gen)
	}
	combined := append(zeroElapsed(res1.Run.Records), zeroElapsed(res2.Run.Records)...)
	refRecs := zeroElapsed(ref.Run.Records)
	if len(combined) != len(refRecs) {
		t.Fatalf("two lives recorded %d steps, reference %d", len(combined), len(refRecs))
	}
	for i := range combined {
		if !reflect.DeepEqual(combined[i], refRecs[i]) {
			t.Fatalf("record %d diverged across the restart:\n lives %+v\n   ref %+v", i, combined[i], refRecs[i])
		}
	}
	if !reflect.DeepEqual(res2.Params, ref.Params) {
		t.Fatal("final params are not bit-identical after kill/restore")
	}
}

// TestWorkerStopPersistsAndResumes covers the worker half of durability: a
// gracefully stopped worker persists its RNG positions and step counter,
// and a restarted worker restores them and rejoins the same run.
func TestWorkerStopPersistsAndResumes(t *testing.T) {
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)
	st := freshISGC(t, 4, 2, 9)
	master, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.3, W: 4, MaxSteps: 60, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	mkLoaders := func(pids []int) []*dataset.Loader {
		loaders := make([]*dataset.Loader, len(pids))
		for j, d := range pids {
			var err error
			loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
			if err != nil {
				t.Fatal(err)
			}
		}
		return loaders
	}
	cfgFor := func(i int) WorkerConfig {
		pids := st.Partitions(i)
		return WorkerConfig{
			Addr: master.Addr(), ID: i, Partitions: pids, Loaders: mkLoaders(pids),
			Model: mdl, Encode: SumEncoder(),
			Delay: straggler.Exponential{Mean: 3 * time.Millisecond}, DelaySeed: int64(i) + 1,
			ReconnectTimeout: 10 * time.Second,
		}
	}

	dir := t.TempDir()
	store, err := checkpoint.NewStore(dir, checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	// The master must be running before workers register: the hello ack is
	// served by Run's accept loop, not the listener alone.
	resCh := make(chan *engine.Result, 1)
	go func() {
		res, err := master.Run()
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()
	var wg sync.WaitGroup
	workers := make([]*Worker, 4)
	for i := 0; i < 4; i++ {
		cfg := cfgFor(i)
		if i == 2 {
			cfg.Checkpoint = store
		}
		workers[i], err = NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := workers[i].Run(); err != nil {
				t.Error(err)
			}
		}()
	}

	// Let worker 2 serve a few steps, then stop it gracefully.
	deadline := time.Now().Add(30 * time.Second)
	for workers[2].Health().StepsServed < 3 {
		if time.Now().After(deadline) {
			t.Fatal("worker 2 never served 3 steps")
		}
		time.Sleep(2 * time.Millisecond)
	}
	workers[2].Stop()

	var ws checkpoint.WorkerState
	deadline = time.Now().Add(10 * time.Second)
	for {
		if _, err := store.Latest(&ws); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stopped worker never persisted its state")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if ws.ID != 2 || ws.Steps < 3 {
		t.Fatalf("worker state = %+v, want ID 2 with ≥3 steps", ws)
	}
	if ws.DelayDraws == 0 {
		t.Fatalf("worker state did not capture the delay RNG position: %+v", ws)
	}

	// Restart worker 2 from the checkpoint: it must resume its counters and
	// rejoin the still-running master.
	store2, err := checkpoint.NewStore(dir, checkpoint.DefaultRetain)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfgFor(2)
	cfg2.Checkpoint = store2
	cfg2.Restore = true
	w2b, err := NewWorker(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := w2b.Health().StepsServed; got != ws.Steps {
		t.Fatalf("restored worker starts at %d steps, checkpoint says %d", got, ws.Steps)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := w2b.Run(); err != nil {
			t.Error(err)
		}
	}()

	res := <-resCh
	wg.Wait()
	if res == nil || res.Run.Steps() != 60 {
		t.Fatalf("master did not finish the run: %+v", res)
	}
	if got := w2b.Health().StepsServed; got <= ws.Steps {
		t.Fatalf("restored worker served no further steps (%d)", got)
	}
}
