package cluster

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// goldenSubFrameEnvelopes are the committed binaryv2 wire fixtures: a
// mid-vector gradient sub-frame (the format's reason to exist), a whole-
// vector gradient (offset 0, total = dim — what a single-lane binaryv2
// worker sends), and the geometry-free kinds. Like the v1 fixtures they
// pin the byte layout so an accidental encoding change breaks loudly
// instead of silently splitting mixed-version fleets.
func goldenSubFrameEnvelopes() map[string]*Envelope {
	return map[string]*Envelope{
		"subframe-gradient": {Kind: MsgGradient, Worker: 2, Step: 9,
			Coded:                []float64{0.25, -3, 1e-300, math.Inf(1)},
			ComputeStartUnixNano: 1_700_000_000_000_000_000, ComputeDurNanos: 12_345_678,
			Offset: 3, Total: 16},
		"subframe-gradient-whole": {Kind: MsgGradient, Worker: 1, Step: 4,
			Coded: []float64{1, -0.5}, Total: 2},
		"subframe-step":      {Kind: MsgStep, Step: 5, Params: []float64{0, 1, -2.5, 0.5, math.Pi}},
		"subframe-heartbeat": {Kind: MsgHeartbeat, Worker: 1},
	}
}

// TestGoldenSubFrames pins the binaryv2 encoding to the committed fixtures
// and proves DecodeSubFrame inverts EncodeSubFrame on them.
func TestGoldenSubFrames(t *testing.T) {
	for name, e := range goldenSubFrameEnvelopes() {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			enc, err := EncodeSubFrame(e)
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				writeGolden(t, name, enc)
			}
			want := readGolden(t, name)
			if !bytes.Equal(enc, want) {
				t.Fatalf("EncodeSubFrame drifted from committed fixture:\n got %x\nwant %x", enc, want)
			}
			got, err := DecodeSubFrame(want)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, e) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
			}
		})
	}
}

// TestGoldenSubFrameHeaderBytes spells the 44-byte v2 header out field by
// field — the subframe.go frame diagram asserted byte for byte, including
// the two fields v1 does not have: offset at [36, 40) and total at [40, 44).
func TestGoldenSubFrameHeaderBytes(t *testing.T) {
	data := readGolden(t, "subframe-gradient")
	if len(data) < frameHeaderSizeV2 {
		t.Fatalf("fixture shorter than a v2 header: %d bytes", len(data))
	}
	if string(data[:4]) != "ISGC" {
		t.Errorf("magic = %q", data[:4])
	}
	if data[4] != frameVersion2 {
		t.Errorf("version = %d", data[4])
	}
	if data[5] != frameTypeGradient {
		t.Errorf("type = %d", data[5])
	}
	if data[6] != 0 || data[7] != 0 {
		t.Errorf("reserved = % x", data[6:8])
	}
	if got := getU32(data[8:]); got != 2 {
		t.Errorf("worker = %d", got)
	}
	if got := getU32(data[12:]); got != 9 {
		t.Errorf("step = %d", got)
	}
	if got := int64(getU64(data[16:])); got != 1_700_000_000_000_000_000 {
		t.Errorf("compute start = %d", got)
	}
	if got := int64(getU64(data[24:])); got != 12_345_678 {
		t.Errorf("compute duration = %d", got)
	}
	if got := getU32(data[32:]); got != 4 {
		t.Errorf("dim = %d", got)
	}
	if got := getU32(data[36:]); got != 3 {
		t.Errorf("offset = %d", got)
	}
	if got := getU32(data[40:]); got != 16 {
		t.Errorf("total = %d", got)
	}
	if want := frameHeaderSizeV2 + 8*4; len(data) != want {
		t.Errorf("frame length = %d, want %d", len(data), want)
	}
	if got := math.Float64frombits(getU64(data[frameHeaderSizeV2:])); got != 0.25 {
		t.Errorf("payload[0] = %v", got)
	}
}

// TestSubFrameStepMatchesV1PlusGeometry pins the compatibility claim in the
// subframe.go header comment: a geometry-free v2 frame is byte-for-byte the
// v1 frame with the version bumped and eight zero bytes spliced in before
// the payload.
func TestSubFrameStepMatchesV1PlusGeometry(t *testing.T) {
	e := goldenSubFrameEnvelopes()["subframe-step"]
	v1, err := EncodeFrame(e)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := EncodeSubFrame(e)
	if err != nil {
		t.Fatal(err)
	}
	want := append([]byte(nil), v1[:frameHeaderSize]...)
	want[4] = frameVersion2
	want = append(want, 0, 0, 0, 0, 0, 0, 0, 0)
	want = append(want, v1[frameHeaderSize:]...)
	if !bytes.Equal(v2, want) {
		t.Fatalf("v2 step frame is not v1 + version bump + zero geometry:\n got %x\nwant %x", v2, want)
	}
}

// TestAppendSubFrameRejections: every envelope the v2 format cannot
// represent — or whose geometry the decoder would refuse — must be refused
// at encode time, keeping the encoding canonical.
func TestAppendSubFrameRejections(t *testing.T) {
	cases := map[string]*Envelope{
		"unknown kind":        {Kind: "pwn"},
		"negotiation field":   {Kind: MsgHello, Worker: 1, Wire: WireBinary2},
		"lane count field":    {Kind: MsgHello, Worker: 1, Shards: 2},
		"lane index field":    {Kind: MsgHello, Worker: 1, Shard: 1},
		"worker over limit":   {Kind: MsgHeartbeat, Worker: maxFrameID + 1},
		"gradient zero total": {Kind: MsgGradient, Worker: 1, Coded: []float64{1}},
		"geometry on hello":   {Kind: MsgHello, Worker: 1, Total: 4},
		"geometry on step":    {Kind: MsgStep, Params: []float64{1}, Total: 1},
		"offset without total": {Kind: MsgGradient, Worker: 1, Offset: 2,
			Coded: []float64{1}},
		"span exceeds total": {Kind: MsgGradient, Worker: 1, Offset: 3, Total: 4,
			Coded: []float64{1, 1}},
	}
	for name, e := range cases {
		if _, err := AppendSubFrame(nil, e); err == nil {
			t.Errorf("%s: AppendSubFrame accepted %+v", name, e)
		}
	}
}

// TestDecodeSubFrameRejections walks every rejection path of the v2 parser
// with targeted corruptions of a valid frame.
func TestDecodeSubFrameRejections(t *testing.T) {
	valid, err := EncodeSubFrame(goldenSubFrameEnvelopes()["subframe-gradient"])
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(d []byte)) []byte {
		d := append([]byte(nil), valid...)
		f(d)
		return d
	}
	cases := map[string][]byte{
		"empty":             nil,
		"truncated header":  valid[:20],
		"truncated payload": valid[:len(valid)-1],
		"trailing byte":     append(append([]byte(nil), valid...), 0),
		"bad magic":         mutate(func(d []byte) { d[0] ^= 0xff }),
		"v1 version":        mutate(func(d []byte) { d[4] = frameVersion }),
		"future version":    mutate(func(d []byte) { d[4] = frameVersion2 + 1 }),
		"unknown type":      mutate(func(d []byte) { d[5] = 99 }),
		"nonzero reserved":  mutate(func(d []byte) { d[6] = 1 }),
		"dim overflow":      mutate(func(d []byte) { putU32(d[32:], maxVectorLen+1) }),
		"offset overflow":   mutate(func(d []byte) { putU32(d[36:], maxVectorLen+1) }),
		"zero total":        mutate(func(d []byte) { putU32(d[40:], 0) }),
		// offset 3 + dim 4 lands at 7, past a shrunken total of 5.
		"span exceeds total": mutate(func(d []byte) { putU32(d[40:], 5) }),
	}
	for name, data := range cases {
		if e, err := DecodeSubFrame(data); err == nil {
			t.Errorf("%s: DecodeSubFrame accepted the corruption: %+v", name, e)
		}
	}

	step, err := EncodeSubFrame(goldenSubFrameEnvelopes()["subframe-step"])
	if err != nil {
		t.Fatal(err)
	}
	step[36] = 1 // offset = 1 on a step frame
	if e, err := DecodeSubFrame(step); err == nil {
		t.Errorf("geometry on step frame: DecodeSubFrame accepted %+v", e)
	}
}
