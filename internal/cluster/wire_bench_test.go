package cluster

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/model"
)

// benchDim is the gradient dimension the codec benchmarks use: 2^16
// float64s (512 KiB of payload), the scale at which the paper's ResNet-18
// stand-ins make serialization a first-order cost in the gather.
const benchDim = 1 << 16

func benchGradient() *Envelope {
	coded := make([]float64, benchDim)
	for i := range coded {
		coded[i] = float64(i) * 0.125
	}
	return &Envelope{Kind: MsgGradient, Worker: 3, Step: 7, Coded: coded,
		ComputeStartUnixNano: 1_700_000_000_000_000_000, ComputeDurNanos: 5_000_000}
}

// BenchmarkWireCodec compares the two negotiated codecs on the hot-path
// message (a 2^16-dim coded gradient) in the steady state each achieves on
// a long-lived connection: a persistent gob encoder/decoder pair (type
// descriptor amortized away), versus binary frames with the pooled send
// buffer and the receiver's reusable payload/vector scratch.
func BenchmarkWireCodec(b *testing.B) {
	e := benchGradient()

	b.Run("gob/encode", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := enc.Encode(e); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(buf.Len()))
	})

	b.Run("binary/encode", func(b *testing.B) {
		buf := make([]byte, 0, frameHeaderSize+8*benchDim)
		b.ReportAllocs()
		b.ResetTimer()
		var err error
		for i := 0; i < b.N; i++ {
			buf, err = AppendFrame(buf[:0], e)
			if err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(len(buf)))
	})

	b.Run("gob/roundtrip", func(b *testing.B) {
		var buf bytes.Buffer
		enc := gob.NewEncoder(&buf)
		dec := gob.NewDecoder(&buf)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := enc.Encode(e); err != nil {
				b.Fatal(err)
			}
			got, err := decodeEnvelope(dec)
			if err != nil {
				b.Fatal(err)
			}
			if len(got.Coded) != benchDim {
				b.Fatal("bad decode")
			}
		}
	})

	b.Run("binary/roundtrip", func(b *testing.B) {
		frame, err := EncodeFrame(e)
		if err != nil {
			b.Fatal(err)
		}
		rd := bytes.NewReader(frame)
		// A receive-side conn as the worker runs it after the upgrade:
		// shared bufio reader, reusable scratch, vector reuse on.
		c := &conn{r: bufio.NewReader(rd), binary: true, reuseVecs: true}
		sendBuf := make([]byte, 0, len(frame))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sendBuf, err = AppendFrame(sendBuf[:0], e)
			if err != nil {
				b.Fatal(err)
			}
			rd.Reset(sendBuf)
			c.r.Reset(rd)
			got, err := c.recvFrame()
			if err != nil {
				b.Fatal(err)
			}
			if len(got.Coded) != benchDim {
				b.Fatal("bad decode")
			}
		}
	})
}

// subFrameEnvelopes splits the benchmark gradient into per-lane sub-frame
// envelopes the way the worker's sharded upload does.
func subFrameEnvelopes(e *Envelope, shards int) []*Envelope {
	spans := shardSpans(len(e.Coded), shards)
	subs := make([]*Envelope, 0, len(spans))
	for _, sp := range spans {
		if sp[1] == 0 {
			continue
		}
		sub := *e
		sub.Offset, sub.Total = sp[0], len(e.Coded)
		sub.Coded = e.Coded[sp[0] : sp[0]+sp[1]]
		subs = append(subs, &sub)
	}
	return subs
}

// BenchmarkSubFrameSend measures the binaryv2 lane-send path: one full
// 2^16-dim gradient serialized as S sub-frames through the pooled frame
// buffer. Total payload bytes are constant across S, so ns/op isolates the
// per-lane framing overhead the sharded gather pays for its parallelism.
func BenchmarkSubFrameSend(b *testing.B) {
	e := benchGradient()
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			subs := subFrameEnvelopes(e, shards)
			c := &conn{w: io.Discard}
			b.ReportAllocs()
			b.SetBytes(int64(len(subs)*frameHeaderSizeV2 + 8*benchDim))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, sub := range subs {
					if err := c.sendFrameV2(sub); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// TestSubFrameSendSteadyStateAllocs pins the frame-buffer pool contract:
// sendFrameV2 pools its serialization buffer sized by the shard width, so
// a steady-state sharded upload allocates nothing per step. The bound is 1
// (not 0) only because a concurrently triggered GC may clear the pool
// mid-measurement.
func TestSubFrameSendSteadyStateAllocs(t *testing.T) {
	subs := subFrameEnvelopes(benchGradient(), 4)
	c := &conn{w: io.Discard}
	send := func() {
		for _, sub := range subs {
			if err := c.sendFrameV2(sub); err != nil {
				t.Fatal(err)
			}
		}
	}
	send() // warm the pool to the shard width
	if avg := testing.AllocsPerRun(50, send); avg > 1 {
		t.Errorf("sharded upload allocates %.1f objects/step in steady state, want 0", avg)
	}
}

// BenchmarkWorkerCompute measures the worker's per-step compute stage on
// a real dim≈2^16 MLP with c=4 partitions: the legacy allocating path
// (Grad per partition, sequential, fresh buffers) versus the pooled path
// computeStep now runs (GradInto into reusable buffers, partitions
// concurrent on the compute pool, SumEncoder buffer reuse).
func BenchmarkWorkerCompute(b *testing.B) {
	m := model.MLP{Features: 128, Hidden: 500, Classes: 4}
	params := m.InitParams(1)
	const c = 4
	rng := rand.New(rand.NewSource(2))
	batches := make([][]dataset.Sample, c)
	for j := range batches {
		batches[j] = make([]dataset.Sample, 16)
		for i := range batches[j] {
			x := make([]float64, m.Features)
			for k := range x {
				x[k] = rng.NormFloat64()
			}
			batches[j][i] = dataset.Sample{X: x, Y: float64(rng.Intn(m.Classes))}
		}
	}

	b.Run("legacy-sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			local := make([][]float64, c)
			for j := range batches {
				local[j] = m.Grad(params, batches[j])
			}
			out := make([]float64, m.Dim())
			for _, g := range local {
				for k, x := range g {
					out[k] += x
				}
			}
		}
	})

	b.Run("pooled-concurrent", func(b *testing.B) {
		pool := model.NewParallelGrad(0)
		defer pool.Close()
		local := make([][]float64, c)
		for j := range local {
			local[j] = make([]float64, m.Dim())
		}
		tasks := make([]func(), c)
		for j := range tasks {
			j := j
			tasks[j] = func() { m.GradInto(local[j], params, batches[j]) }
		}
		encode := SumEncoder()
		pool.Run(tasks...) // warm the scratch pool
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			pool.Run(tasks...)
			if _, err := encode(local); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchModel is a trivially cheap Model with a large parameter vector: the
// gather benchmark must measure the wire, not softmax arithmetic, so loss
// and gradient are O(dim) copies with no math worth profiling.
type benchModel struct{ dim int }

func (m benchModel) Dim() int { return m.dim }

func (m benchModel) InitParams(seed int64) []float64 { return make([]float64, m.dim) }

func (m benchModel) Loss(params []float64, batch []dataset.Sample) float64 { return 1 }

func (m benchModel) Grad(params []float64, batch []dataset.Sample) []float64 {
	g := make([]float64, m.dim)
	m.GradInto(g, params, batch)
	return g
}

func (m benchModel) GradInto(g, params []float64, batch []dataset.Sample) {
	for i := range g {
		g[i] = 1e-6
	}
}

func (m benchModel) String() string { return fmt.Sprintf("bench(dim=%d)", m.dim) }

// BenchmarkGatherLatency is the end-to-end number behind the codec choice:
// one full training step — params broadcast to 4 workers, 4 coded-gradient
// uploads, decode, update — over real loopback TCP, per codec, with a
// 2^16-dim parameter vector. b.N steps run inside one cluster so
// connection setup and negotiation are amortized away.
func BenchmarkGatherLatency(b *testing.B) {
	for _, wire := range []string{WireGob, WireBinary} {
		wire := wire
		b.Run(wire, func(b *testing.B) {
			st, err := engine.NewSyncSGD(4)
			if err != nil {
				b.Fatal(err)
			}
			mdl := benchModel{dim: benchDim}
			data, _, err := dataset.SyntheticLinear(64, 2, 0.1, 1)
			if err != nil {
				b.Fatal(err)
			}
			master, err := NewMaster(MasterConfig{
				Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
				LearningRate: 0.1, W: 4, MaxSteps: b.N, Seed: 42,
				AcceptTimeout: 10 * time.Second, Wire: wire,
			})
			if err != nil {
				b.Fatal(err)
			}
			parts, err := data.Partition(4)
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			for i := 0; i < 4; i++ {
				i := i
				wg.Add(1)
				go func() {
					defer wg.Done()
					pids := st.Partitions(i)
					loaders := make([]*dataset.Loader, len(pids))
					for j, d := range pids {
						var err error
						loaders[j], err = dataset.NewLoader(parts[d], 16, 42)
						if err != nil {
							b.Error(err)
							return
						}
					}
					wk, err := NewWorker(WorkerConfig{
						Addr: master.Addr(), ID: i, Partitions: pids, Loaders: loaders,
						Model: mdl, Encode: SumEncoder(), Wire: wire,
					})
					if err != nil {
						b.Error(err)
						return
					}
					_, _ = wk.Run()
				}()
			}
			b.ResetTimer()
			if _, err := master.Run(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			wg.Wait()
		})
	}
}
