// Package cluster is the real distributed runtime: a master and n workers
// speaking a gob-encoded protocol over TCP (stdlib net only). It plays the
// role Ray plays in the paper's implementation (Sec. VIII-A): workers train
// on their partitions' mini-batches, upload coded gradients, and the master
// gathers the fastest w (the ray.wait(w) equivalent), decodes with the
// configured strategy, updates the parameters, and broadcasts them.
//
// Unlike the in-process engine, real workers do not just slow down — they
// die. The runtime therefore layers fault tolerance on top of the paper's
// protocol: the master tracks per-worker liveness (reader-exit notification
// plus periodic MsgHeartbeat), shrinks its gather target to the alive set
// when a flexible scheme permits it (IS-GC can decode any subset), fails
// fast for rigid schemes, and accepts mid-run rejoins from workers that
// redial after a disconnect.
//
// The engine package is the fast in-process twin used for experiments; this
// package demonstrates the same protocol end-to-end over real sockets and
// is exercised by integration tests and the examples/distributed binary.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"
)

// Message kinds exchanged between master and workers.
const (
	// MsgHello registers a worker with the master. A rejoining worker
	// re-sends it with Step set to its last completed step.
	MsgHello = "hello"
	// MsgStep carries parameters from master to workers for one step.
	MsgStep = "step"
	// MsgGradient carries a coded gradient from a worker to the master.
	MsgGradient = "gradient"
	// MsgHeartbeat is a periodic worker→master liveness ping; it carries
	// no payload and exists so the master can distinguish "slow" from
	// "hung" on an otherwise idle connection.
	MsgHeartbeat = "heartbeat"
	// MsgStop tells workers to shut down cleanly.
	MsgStop = "stop"
)

// Envelope is the single wire message type; unused fields stay zero.
type Envelope struct {
	Kind string
	// Worker is the sender's worker id (Hello, Gradient, Heartbeat).
	Worker int
	// Step is the training step the message belongs to (Step, Gradient),
	// or the worker's last completed step on a rejoin Hello.
	Step int
	// Params are the model parameters (Step).
	Params []float64
	// Coded is the worker's coded gradient (Gradient).
	Coded []float64
}

// conn wraps a net.Conn with gob codecs. Decode is safe for a single
// goroutine; Encode is serialized internally so that heartbeat goroutines,
// broadcasts, and rejoin replies may share one connection.
type conn struct {
	raw net.Conn
	dec *gob.Decoder

	sendMu sync.Mutex
	enc    *gob.Encoder
	// writeTimeout bounds each send so one stalled socket cannot wedge a
	// broadcast (0 = no deadline).
	writeTimeout time.Duration
}

func newConn(c net.Conn, writeTimeout time.Duration) *conn {
	return &conn{raw: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c), writeTimeout: writeTimeout}
}

func (c *conn) send(e *Envelope) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.writeTimeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return fmt.Errorf("cluster: send %s: %w", e.Kind, err)
		}
	}
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("cluster: send %s: %w", e.Kind, err)
	}
	if c.writeTimeout > 0 {
		_ = c.raw.SetWriteDeadline(time.Time{})
	}
	return nil
}

func (c *conn) recv() (*Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("cluster: recv: %w", err)
	}
	return &e, nil
}

func (c *conn) close() error { return c.raw.Close() }

// dialWithRetry dials addr, retrying for up to timeout — workers typically
// start concurrently with the master.
func dialWithRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		c, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
