// Package cluster is the real distributed runtime: a master and n workers
// speaking a negotiated protocol over TCP (stdlib net only). It plays the
// role Ray plays in the paper's implementation (Sec. VIII-A): workers train
// on their partitions' mini-batches, upload coded gradients, and the master
// gathers the fastest w (the ray.wait(w) equivalent), decodes with the
// configured strategy, updates the parameters, and broadcasts them.
//
// Two codecs share one connection model. Registration always speaks gob —
// the low-rate control exchange where self-describing encoding is cheap and
// backward compatibility matters — and the hello exchange negotiates the
// codec for everything after it: by default both sides upgrade to the
// compact binary frame format of binary.go for the params/gradient hot
// path, and a gob-only peer (an old worker, or -wire=gob) simply never
// proposes the upgrade and keeps the legacy gob stream end to end.
//
// Unlike the in-process engine, real workers do not just slow down — they
// die. The runtime therefore layers fault tolerance on top of the paper's
// protocol: the master tracks per-worker liveness (reader-exit notification
// plus periodic MsgHeartbeat), shrinks its gather target to the alive set
// when a flexible scheme permits it (IS-GC can decode any subset), fails
// fast for rigid schemes, and accepts mid-run rejoins from workers that
// redial after a disconnect.
//
// The engine package is the fast in-process twin used for experiments; this
// package demonstrates the same protocol end-to-end over real sockets and
// is exercised by integration tests and the examples/distributed binary.
package cluster

import (
	"bufio"
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"isgc/internal/metrics"
)

// ErrJobGone is the terminal registration error: the peer answered a hello
// with MsgJobGone, meaning the job this worker was serving no longer exists
// anywhere behind that address. Reconnection is pointless — callers must
// stop redialing and (in fleet mode) return the worker to the pool.
var ErrJobGone = errors.New("cluster: job gone")

// Message kinds exchanged between master and workers.
const (
	// MsgHello registers a worker with the master. A rejoining worker
	// re-sends it with Step set to its last completed step.
	MsgHello = "hello"
	// MsgStep carries parameters from master to workers for one step.
	MsgStep = "step"
	// MsgGradient carries a coded gradient from a worker to the master.
	MsgGradient = "gradient"
	// MsgHeartbeat is a periodic worker→master liveness ping; it carries
	// no payload and exists so the master can distinguish "slow" from
	// "hung" on an otherwise idle connection.
	MsgHeartbeat = "heartbeat"
	// MsgStop tells workers to shut down cleanly.
	MsgStop = "stop"
	// MsgJobGone is a terminal registration reject: the master (or a
	// control-plane tombstone standing in for one) no longer runs the job
	// this worker belongs to. A worker that receives it stops its
	// reconnect loop immediately instead of burning the redial budget —
	// fleet workers return to the control plane's pool. Rides only in gob
	// messages (the registration phase), like the hello exchange.
	MsgJobGone = "job_gone"
)

// Wire codec names, as negotiated in the hello exchange and accepted by the
// -wire CLI flag (and the Wire fields of MasterConfig/WorkerConfig).
const (
	// WireGob keeps the legacy gob stream for every message.
	WireGob = "gob"
	// WireBinary upgrades the connection to the binary frame codec of
	// binary.go after the hello exchange. The version suffix is part of
	// the negotiated name: a v2 peer negotiates "binaryv2" and a v1
	// peer falls back to gob instead of misparsing frames.
	WireBinary = "binaryv1"
	// WireBinary2 is the dim-sharded extension of the binary codec: the
	// same frame grammar with a 44-byte header carrying an (offset, total)
	// sub-frame geometry, so one step's gradient may arrive split across
	// several parallel lane connections (see subframe.go). A worker
	// proposes it only when it wants more than one gather lane; a master
	// that does not speak it falls back to gob per the versioning rule
	// above, and a v2-capable master may still negotiate down to v1 when
	// sharding is disabled on its side.
	WireBinary2 = "binaryv2"
)

// maxGatherShards caps how many parallel gather lanes one worker may
// negotiate. The win saturates with the memory bandwidth of a handful of
// decode goroutines; a hostile hello must not be able to open hundreds of
// sockets.
const maxGatherShards = 16

// maxWireNameLen caps the negotiation string a peer may claim in a hello.
const maxWireNameLen = 64

// ParseWire canonicalizes a -wire flag value ("" and "binary" mean the
// current binary version; "gob" forces the legacy codec).
func ParseWire(s string) (string, error) {
	switch s {
	case "", "binary", WireBinary:
		return WireBinary, nil
	case WireGob:
		return WireGob, nil
	default:
		return "", fmt.Errorf("cluster: unknown wire codec %q (want gob or binary)", s)
	}
}

// maxVectorLen caps the Params/Coded length a peer may claim: a malformed
// or hostile envelope must not be able to commit the receiver to an absurd
// decode. 2^24 float64s is a 128 MiB vector — far beyond any model this
// runtime trains, and far below anything that would hurt the process.
const maxVectorLen = 1 << 24

// Envelope is the single wire message type; unused fields stay zero.
type Envelope struct {
	Kind string
	// Worker is the sender's worker id (Hello, Gradient, Heartbeat).
	Worker int
	// Step is the training step the message belongs to (Step, Gradient),
	// or the worker's last completed step on a rejoin Hello.
	Step int
	// Params are the model parameters (Step).
	Params []float64
	// Coded is the worker's coded gradient (Gradient).
	Coded []float64
	// ComputeStartUnixNano is when the worker began computing the gradient
	// (Gradient; worker's clock, Unix nanoseconds, 0 = not reported). With
	// ComputeDurNanos it lets the master attribute a late arrival to slow
	// compute versus slow network. Cross-machine clock skew shifts the
	// start, not the duration.
	ComputeStartUnixNano int64
	// ComputeDurNanos is how long the gradient computation took
	// (Gradient; 0 = not reported).
	ComputeDurNanos int64
	// Wire is the codec negotiation field of the hello exchange: on a
	// worker's MsgHello it names the codec the worker proposes to upgrade
	// to (empty = stay on gob, which is what pre-negotiation workers
	// send); on the master's MsgHello ack it names the codec chosen for
	// the rest of the connection. It rides only in gob messages — binary
	// frames cannot carry it, by construction.
	Wire string
	// Gen is the master's run generation on a MsgHello ack: 0 for a
	// first-life master, +1 per checkpoint restore or standby failover. A
	// worker that sees the generation change knows its master was reborn
	// from a durable checkpoint. Rides only in gob hello messages, like
	// Wire.
	Gen int
	// Shards is the gather-lane negotiation field of the binaryv2 hello
	// exchange: on a worker's MsgHello it proposes how many parallel lane
	// connections the worker wants for its gradient uploads; on the
	// master's ack it names the granted count. Rides only in gob hello
	// messages, like Wire.
	Shards int
	// Shard tags a lane-attach MsgHello with the lane index (1..Shards-1)
	// it registers; the primary connection is lane 0 and never sets it.
	// Rides only in gob hello messages.
	Shard int
	// Offset is the first gradient element a binaryv2 sub-frame carries
	// (Gradient only; whole uploads use 0).
	Offset int
	// Total is the full gradient dimension a binaryv2 sub-frame belongs
	// to (Gradient only; 0 on v1 envelopes, which always carry whole
	// vectors).
	Total int
}

// validateEnvelope enforces the structural invariants every well-formed
// message satisfies, independent of protocol state: a known kind, non-
// negative ids, and bounded vector lengths. Semantic checks (worker id in
// range, step currency, gradient dimension) stay with the master, which
// knows the cluster shape.
func validateEnvelope(e *Envelope) error {
	switch e.Kind {
	case MsgHello, MsgStep, MsgGradient, MsgHeartbeat, MsgStop, MsgJobGone:
	default:
		return fmt.Errorf("cluster: unknown message kind %q", e.Kind)
	}
	if e.Worker < 0 {
		return fmt.Errorf("cluster: negative worker id %d in %s", e.Worker, e.Kind)
	}
	if e.Step < 0 {
		return fmt.Errorf("cluster: negative step %d in %s", e.Step, e.Kind)
	}
	if len(e.Params) > maxVectorLen {
		return fmt.Errorf("cluster: params length %d exceeds limit %d", len(e.Params), maxVectorLen)
	}
	if len(e.Coded) > maxVectorLen {
		return fmt.Errorf("cluster: coded length %d exceeds limit %d", len(e.Coded), maxVectorLen)
	}
	if e.ComputeStartUnixNano < 0 {
		return fmt.Errorf("cluster: negative compute start %d in %s", e.ComputeStartUnixNano, e.Kind)
	}
	if e.ComputeDurNanos < 0 {
		return fmt.Errorf("cluster: negative compute duration %d in %s", e.ComputeDurNanos, e.Kind)
	}
	if len(e.Wire) > maxWireNameLen {
		return fmt.Errorf("cluster: wire name length %d exceeds limit %d", len(e.Wire), maxWireNameLen)
	}
	if e.Gen < 0 {
		return fmt.Errorf("cluster: negative generation %d in %s", e.Gen, e.Kind)
	}
	if e.Shards < 0 || e.Shards > maxGatherShards {
		return fmt.Errorf("cluster: shard count %d outside [0, %d] in %s", e.Shards, maxGatherShards, e.Kind)
	}
	if e.Shard < 0 || e.Shard >= maxGatherShards {
		return fmt.Errorf("cluster: lane index %d outside [0, %d) in %s", e.Shard, maxGatherShards, e.Kind)
	}
	if e.Offset < 0 || e.Offset > maxVectorLen {
		return fmt.Errorf("cluster: sub-frame offset %d outside [0, %d] in %s", e.Offset, maxVectorLen, e.Kind)
	}
	if e.Total < 0 || e.Total > maxVectorLen {
		return fmt.Errorf("cluster: sub-frame total %d outside [0, %d] in %s", e.Total, maxVectorLen, e.Kind)
	}
	if e.Total == 0 && e.Offset != 0 {
		return fmt.Errorf("cluster: sub-frame offset %d without a total in %s", e.Offset, e.Kind)
	}
	if e.Total > 0 && e.Offset+len(e.Coded) > e.Total {
		return fmt.Errorf("cluster: sub-frame [%d, %d) exceeds total %d in %s",
			e.Offset, e.Offset+len(e.Coded), e.Total, e.Kind)
	}
	return nil
}

// decodeEnvelope decodes and validates one envelope from dec. A malformed
// or truncated stream must yield an error, never a crash: gob's own error
// paths are converted, any decoder panic is recovered, and the result is
// validated before anyone trusts it. This is the single choke point every
// received message passes through — the fuzz target FuzzDecodeMessage
// hammers it with adversarial bytes.
func decodeEnvelope(dec *gob.Decoder) (e *Envelope, err error) {
	defer func() {
		if r := recover(); r != nil {
			e, err = nil, fmt.Errorf("cluster: decode panic: %v", r)
		}
	}()
	var env Envelope
	if err := dec.Decode(&env); err != nil {
		return nil, fmt.Errorf("cluster: recv: %w", err)
	}
	if err := validateEnvelope(&env); err != nil {
		return nil, err
	}
	return &env, nil
}

// DecodeMessage decodes a single envelope from a standalone gob stream
// (type descriptor + one value), as produced by EncodeMessage or by the
// first send on a fresh connection. It never panics on malformed input.
func DecodeMessage(data []byte) (*Envelope, error) {
	return decodeEnvelope(gob.NewDecoder(bytes.NewReader(data)))
}

// EncodeMessage renders one envelope as a standalone gob stream — the
// inverse of DecodeMessage, used by tests and fuzz seeds.
func EncodeMessage(e *Envelope) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		return nil, fmt.Errorf("cluster: encode %s: %w", e.Kind, err)
	}
	return buf.Bytes(), nil
}

// countingWriter counts bytes as they leave for the network, feeding a
// sent-bytes counter (the upload-volume metric).
type countingWriter struct {
	w io.Writer
	c *metrics.Counter
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 {
		cw.c.Add(uint64(n))
	}
	return n, err
}

// conn wraps a net.Conn with the negotiated codec. Every connection starts
// in gob mode (the registration exchange); upgrade switches both directions
// to binary frames at a message boundary, which is safe because gob never
// reads past the end of a message. recv is safe for a single goroutine;
// send is serialized internally so that heartbeat goroutines, broadcasts,
// and rejoin replies may share one connection.
type conn struct {
	raw net.Conn
	// w is the write side (wrapped in the counting layer when metrics are
	// on), shared by both codecs so sent-bytes always counts framed bytes.
	w io.Writer
	// r is the single buffered reader both codecs share. This is load-
	// bearing for the upgrade: gob.NewDecoder silently wraps any non-
	// ByteReader in its own bufio.Reader, whose readahead would swallow
	// the first binary frames if the frame parser read from raw directly.
	// Handing the decoder a bufio.Reader up front keeps every buffered
	// byte visible to whichever codec reads next.
	r   *bufio.Reader
	dec *gob.Decoder
	// binary is set by upgrade: all subsequent messages are frames.
	binary bool
	// wireV2 selects the 44-byte binaryv2 header (sub-frame geometry) for
	// both directions; set together with binary by upgradeV2.
	wireV2 bool
	// reuseVecs lets recvFrame decode payload vectors into a reusable
	// per-connection scratch slice. Only safe when the consumer never
	// retains a received vector past the next recv — true for the worker
	// (params are consumed within the step), never for the master
	// (gradient ownership transfers to the gather loop).
	reuseVecs bool
	// gradReserve, when set on a binaryv2 connection, maps an incoming
	// gradient sub-frame (worker, step, offset, count, total) to the
	// destination slice its payload decodes into — the zero-copy
	// reassembly hook the master's shard assembler provides. Returning
	// nil declines the sub-frame (stale, overlapping, or out of range):
	// the payload bytes are still drained but not decoded, and the
	// envelope surfaces with a nil Coded.
	gradReserve func(worker, step, offset, count, total int) []float64
	// hdrScratch is sized for the larger v2 header; v1 frames use the
	// first frameHeaderSize bytes.
	hdrScratch     [frameHeaderSizeV2]byte
	payloadScratch []byte
	vecScratch     []float64

	sendMu sync.Mutex
	enc    *gob.Encoder
	// writeTimeout bounds each send so one stalled socket cannot wedge a
	// broadcast (0 = no deadline).
	writeTimeout time.Duration
}

// newConn wraps c. sent, when non-nil, accumulates every byte written to
// the connection (metrics instrumentation); nil skips the counting layer.
func newConn(c net.Conn, writeTimeout time.Duration, sent *metrics.Counter) *conn {
	var w io.Writer = c
	if sent != nil {
		w = &countingWriter{w: c, c: sent}
	}
	r := bufio.NewReader(c)
	return &conn{raw: c, w: w, r: r, enc: gob.NewEncoder(w), dec: gob.NewDecoder(r), writeTimeout: writeTimeout}
}

// upgrade switches the connection to the binary frame codec for both
// directions. It must be called at a protocol quiet point — after the hello
// exchange, before the connection is visible to broadcasts or readers — on
// both peers of the connection.
func (c *conn) upgrade(reuseVecs bool) {
	c.sendMu.Lock()
	c.binary = true
	c.reuseVecs = reuseVecs
	c.sendMu.Unlock()
}

// upgradeV2 switches the connection to the binaryv2 sub-frame codec. Same
// quiet-point contract as upgrade.
func (c *conn) upgradeV2(reuseVecs bool) {
	c.sendMu.Lock()
	c.binary = true
	c.wireV2 = true
	c.reuseVecs = reuseVecs
	c.sendMu.Unlock()
}

func (c *conn) send(e *Envelope) error {
	c.sendMu.Lock()
	defer c.sendMu.Unlock()
	if c.writeTimeout > 0 {
		if err := c.raw.SetWriteDeadline(time.Now().Add(c.writeTimeout)); err != nil {
			return fmt.Errorf("cluster: send %s: %w", e.Kind, err)
		}
	}
	var err error
	switch {
	case c.wireV2:
		err = c.sendFrameV2(e)
	case c.binary:
		err = c.sendFrame(e)
	default:
		err = c.enc.Encode(e)
	}
	if err != nil {
		return fmt.Errorf("cluster: send %s: %w", e.Kind, err)
	}
	if c.writeTimeout > 0 {
		_ = c.raw.SetWriteDeadline(time.Time{})
	}
	return nil
}

func (c *conn) recv() (*Envelope, error) {
	if c.wireV2 {
		return c.recvFrameV2()
	}
	if c.binary {
		return c.recvFrame()
	}
	return decodeEnvelope(c.dec)
}

func (c *conn) close() error { return c.raw.Close() }

// clientHello runs the worker side of the registration exchange on a fresh
// connection: send the gob hello (carrying the last completed step on a
// rejoin and, unless the worker is pinned to gob, the proposed codec), and
// — only when an upgrade was proposed — wait for the master's ack naming
// the chosen codec and switch to it. A gob-pinned worker sends exactly the
// pre-negotiation hello and expects no ack, which is what keeps old
// workers and new masters interoperable in both pairings.
//
// shards > 1 raises the proposal to binaryv2 with that many gather lanes;
// the returned ack (nil on the no-ack gob path) carries the granted lane
// count and the master's generation, which the caller needs to attach the
// extra lane connections. A master that only speaks v1 answers the unknown
// "binaryv2" proposal with a gob ack (the documented fallback), and a
// v2-capable master may negotiate down to v1 when sharding is off on its
// side — the worker then runs a single lane either way.
func clientHello(c *conn, id, step int, wire string, shards int) (string, *Envelope, error) {
	hello := &Envelope{Kind: MsgHello, Worker: id, Step: step}
	if wire != WireGob {
		if shards > 1 {
			hello.Wire = WireBinary2
			hello.Shards = shards
		} else {
			hello.Wire = WireBinary
		}
	}
	if err := c.send(hello); err != nil {
		return "", nil, err
	}
	if hello.Wire == "" {
		return WireGob, nil, nil
	}
	_ = c.raw.SetReadDeadline(time.Now().Add(wireAckTimeout))
	ack, err := c.recv()
	if err != nil {
		return "", nil, fmt.Errorf("cluster: wire negotiation: %w", err)
	}
	_ = c.raw.SetReadDeadline(time.Time{})
	if ack.Kind == MsgJobGone {
		return "", nil, ErrJobGone
	}
	if ack.Kind != MsgHello {
		return "", nil, fmt.Errorf("cluster: wire negotiation: got %s before hello ack", ack.Kind)
	}
	switch ack.Wire {
	case WireBinary2:
		c.upgradeV2(true)
		return WireBinary2, ack, nil
	case WireBinary:
		c.upgrade(true)
		return WireBinary, ack, nil
	}
	return WireGob, ack, nil
}

// laneHello attaches one extra gather-lane connection to an already
// registered binaryv2 worker: a gob hello tagged with the lane index and
// the master's generation (so a lane from a previous life cannot attach to
// a reborn master), answered by a binaryv2 ack, after which the lane
// speaks sub-frames only.
func laneHello(c *conn, id, lane, gen int) error {
	hello := &Envelope{Kind: MsgHello, Worker: id, Wire: WireBinary2, Shard: lane, Gen: gen}
	if err := c.send(hello); err != nil {
		return err
	}
	_ = c.raw.SetReadDeadline(time.Now().Add(wireAckTimeout))
	ack, err := c.recv()
	if err != nil {
		return fmt.Errorf("cluster: lane %d negotiation: %w", lane, err)
	}
	_ = c.raw.SetReadDeadline(time.Time{})
	if ack.Kind == MsgJobGone {
		return ErrJobGone
	}
	if ack.Kind != MsgHello || ack.Wire != WireBinary2 {
		return fmt.Errorf("cluster: lane %d negotiation: got %s wire %q", lane, ack.Kind, ack.Wire)
	}
	c.upgradeV2(true)
	return nil
}

// wireAckTimeout bounds the wait for the master's hello ack: a peer that
// accepted the hello but never answers the negotiation is indistinguishable
// from a pre-negotiation master, and hanging on it would be worse than the
// explicit error.
const wireAckTimeout = 5 * time.Second

// dialWithRetry dials addr, retrying for up to timeout — workers typically
// start concurrently with the master.
func dialWithRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		c, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
