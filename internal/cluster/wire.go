// Package cluster is the real distributed runtime: a master and n workers
// speaking a gob-encoded protocol over TCP (stdlib net only). It plays the
// role Ray plays in the paper's implementation (Sec. VIII-A): workers train
// on their partitions' mini-batches, upload coded gradients, and the master
// gathers the fastest w (the ray.wait(w) equivalent), decodes with the
// configured strategy, updates the parameters, and broadcasts them.
//
// The engine package is the fast in-process twin used for experiments; this
// package demonstrates the same protocol end-to-end over real sockets and
// is exercised by integration tests and the examples/distributed binary.
package cluster

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"
)

// Message kinds exchanged between master and workers.
const (
	// MsgHello registers a worker with the master.
	MsgHello = "hello"
	// MsgStep carries parameters from master to workers for one step.
	MsgStep = "step"
	// MsgGradient carries a coded gradient from a worker to the master.
	MsgGradient = "gradient"
	// MsgStop tells workers to shut down cleanly.
	MsgStop = "stop"
)

// Envelope is the single wire message type; unused fields stay zero.
type Envelope struct {
	Kind string
	// Worker is the sender's worker id (Hello, Gradient).
	Worker int
	// Step is the training step the message belongs to (Step, Gradient).
	Step int
	// Params are the model parameters (Step).
	Params []float64
	// Coded is the worker's coded gradient (Gradient).
	Coded []float64
}

// conn wraps a net.Conn with gob codecs. Encode and Decode are each safe
// for a single goroutine; the master uses one reader goroutine and one
// writer per connection.
type conn struct {
	raw net.Conn
	enc *gob.Encoder
	dec *gob.Decoder
}

func newConn(c net.Conn) *conn {
	return &conn{raw: c, enc: gob.NewEncoder(c), dec: gob.NewDecoder(c)}
}

func (c *conn) send(e *Envelope) error {
	if err := c.enc.Encode(e); err != nil {
		return fmt.Errorf("cluster: send %s: %w", e.Kind, err)
	}
	return nil
}

func (c *conn) recv() (*Envelope, error) {
	var e Envelope
	if err := c.dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("cluster: recv: %w", err)
	}
	return &e, nil
}

func (c *conn) close() error { return c.raw.Close() }

// dialWithRetry dials addr, retrying for up to timeout — workers typically
// start concurrently with the master.
func dialWithRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	var lastErr error
	for {
		c, err := net.DialTimeout("tcp", addr, 500*time.Millisecond)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("cluster: dial %s: %w", addr, lastErr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
