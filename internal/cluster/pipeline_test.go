package cluster

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

// runShapedCluster runs one CR(4,2) IS-GC cluster with arbitrary tweaks to
// the master and per-worker configs, returning the result and the master's
// metrics for wire/shard assertions. With no delays and W = 4 the full
// fleet arrives every step, so two runs differing only in transport or
// scheduling knobs must produce bit-identical records and parameters.
func runShapedCluster(t *testing.T, shapeMaster func(*MasterConfig), shapeWorker func(i int, c *WorkerConfig)) (*engine.Result, *MasterMetrics) {
	t.Helper()
	p, err := placement.CR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 7))
	if err != nil {
		t.Fatal(err)
	}
	return runStrategyCluster(t, st, shapeMaster, shapeWorker)
}

// runStrategyCluster is runShapedCluster with the scheme under the
// caller's control (the staleness fold test needs IS-SGD's disjoint
// partitions so a late gradient is always foldable).
func runStrategyCluster(t *testing.T, st engine.Strategy, shapeMaster func(*MasterConfig), shapeWorker func(i int, c *WorkerConfig)) (*engine.Result, *MasterMetrics) {
	t.Helper()
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)

	reg := metrics.NewRegistry()
	mm := NewMasterMetrics(reg)
	mcfg := MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.3, W: 4, MaxSteps: 8, Seed: 42,
		AcceptTimeout: 10 * time.Second, Wire: WireBinary, Metrics: mm,
	}
	if shapeMaster != nil {
		shapeMaster(&mcfg)
	}
	master, err := NewMaster(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if err != nil {
					t.Error(err)
					return
				}
			}
			wcfg := WorkerConfig{
				Addr: master.Addr(), ID: i, Partitions: pids, Loaders: loaders,
				Model: mdl, Encode: SumEncoder(), Wire: WireBinary,
				DelaySeed: int64(i) + 1,
			}
			if shapeWorker != nil {
				shapeWorker(i, &wcfg)
			}
			wk, err := NewWorker(wcfg)
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := wk.Run(); err != nil {
				t.Error(err)
			}
		}()
	}
	res, err := master.Run()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	return res, mm
}

// normalizeRun strips wall-clock noise so two runs can be compared exactly.
func normalizeRun(res *engine.Result) {
	for j := range res.Run.Records {
		res.Run.Records[j].Elapsed = 0
	}
}

// TestPipelinedEquivalentToSync is the tentpole's determinism pin: with
// Staleness = 0 the pipelined loop changes only the send schedule — it must
// produce the exact records and final parameters of the synchronous loop,
// bit for bit.
func TestPipelinedEquivalentToSync(t *testing.T) {
	sync0, _ := runShapedCluster(t, nil, nil)
	piped, _ := runShapedCluster(t, func(c *MasterConfig) { c.Pipeline = true }, nil)
	normalizeRun(sync0)
	normalizeRun(piped)
	if len(sync0.Run.Records) == 0 {
		t.Fatal("empty run")
	}
	if !reflect.DeepEqual(sync0.Run.Records, piped.Run.Records) {
		for j := range sync0.Run.Records {
			if !reflect.DeepEqual(sync0.Run.Records[j], piped.Run.Records[j]) {
				t.Fatalf("step %d diverged:\n  sync      %+v\n  pipelined %+v",
					j, sync0.Run.Records[j], piped.Run.Records[j])
			}
		}
		t.Fatal("records diverged")
	}
	if len(sync0.Params) == 0 || !reflect.DeepEqual(sync0.Params, piped.Params) {
		t.Fatal("final parameters differ between sync and pipelined runs")
	}
}

// TestShardedGatherEquivalence pins the other half of the tentpole: the
// sharded wire must change only how gradient bytes travel. Runs with 1, 2,
// and 4 gather lanes per worker must match the unsharded baseline exactly,
// and the sharded runs must actually have moved sub-frames over extra
// lanes.
func TestShardedGatherEquivalence(t *testing.T) {
	base, _ := runShapedCluster(t, nil, nil)
	normalizeRun(base)
	if len(base.Run.Records) == 0 {
		t.Fatal("empty baseline run")
	}
	for _, shards := range []int{1, 2, 4} {
		shards := shards
		res, mm := runShapedCluster(t, nil, func(i int, c *WorkerConfig) { c.GatherShards = shards })
		normalizeRun(res)
		if !reflect.DeepEqual(base.Run.Records, res.Run.Records) {
			t.Fatalf("shards=%d: records diverged from unsharded baseline", shards)
		}
		if !reflect.DeepEqual(base.Params, res.Params) {
			t.Fatalf("shards=%d: final parameters diverged from unsharded baseline", shards)
		}
		lanes := mm.ShardLanes.Value()
		subFrames := mm.SubFrames.Value()
		if shards == 1 {
			if lanes != 0 || subFrames != 0 {
				t.Fatalf("shards=1 must stay on the single-stream path, got lanes=%d subframes=%d", lanes, subFrames)
			}
			continue
		}
		if lanes != uint64(4*(shards-1)) {
			t.Fatalf("shards=%d: %d lanes attached, want %d", shards, lanes, 4*(shards-1))
		}
		// 8 steps × 4 workers × shards sub-frames each.
		if want := uint64(8 * 4 * shards); subFrames != want {
			t.Fatalf("shards=%d: %d sub-frames, want %d", shards, subFrames, want)
		}
	}
}

// TestMixedFleetShardInterop runs a deliberately heterogeneous fleet
// against one binaryv2-capable master: a 4-lane binaryv2 worker, a plain
// binaryv1 worker, and a legacy gob worker must train together and land on
// the same math as a uniform fleet.
func TestMixedFleetShardInterop(t *testing.T) {
	base, _ := runShapedCluster(t, nil, nil)
	normalizeRun(base)
	res, mm := runShapedCluster(t, nil, func(i int, c *WorkerConfig) {
		switch i {
		case 0:
			c.GatherShards = 4 // binaryv2, 4 lanes
		case 1:
			c.GatherShards = 2 // binaryv2, 2 lanes
		case 2:
			c.Wire = WireGob // legacy stream
		default:
			// worker 3: plain binaryv1, single stream
		}
	})
	normalizeRun(res)
	if !reflect.DeepEqual(base.Run.Records, res.Run.Records) {
		t.Fatal("mixed fleet diverged from the uniform baseline")
	}
	if !reflect.DeepEqual(base.Params, res.Params) {
		t.Fatal("mixed fleet produced different final parameters")
	}
	if got := mm.WireConnections.With(WireGob).Value(); got != 1 {
		t.Fatalf("gob connections = %d, want 1", got)
	}
	if lanes := mm.ShardLanes.Value(); lanes != 3+1 {
		t.Fatalf("shard lanes = %d, want 4 (3 from worker 0, 1 from worker 1)", lanes)
	}
	if mm.SubFrames.Value() == 0 {
		t.Fatal("no sub-frames counted despite binaryv2 workers")
	}
}

// TestMasterGatherShardsCapNegotiatesDown: a master pinned to
// GatherShards = 1 must answer a binaryv2 proposal with binaryv1, keeping
// mixed-version fleets on the proven single-stream path.
func TestMasterGatherShardsCapNegotiatesDown(t *testing.T) {
	_, mm := runShapedCluster(t,
		func(c *MasterConfig) { c.GatherShards = 1 },
		func(i int, c *WorkerConfig) { c.GatherShards = 4 })
	if lanes := mm.ShardLanes.Value(); lanes != 0 {
		t.Fatalf("lanes = %d, want 0 (master capped shards at 1)", lanes)
	}
	if sf := mm.SubFrames.Value(); sf != 0 {
		t.Fatalf("sub-frames = %d, want 0", sf)
	}
	if got := mm.WireConnections.With(WireBinary).Value(); got != 4 {
		t.Fatalf("binaryv1 connections = %d, want 4", got)
	}
}

// TestPipelinedStalenessFoldsLateGradients runs the bounded-staleness mode
// over real sockets with a persistent straggler tuned so its uploads land
// during the NEXT step's gather: the master must wait for only 3 workers,
// fold the straggler's late gradients in as corrections, and keep the loss
// moving.
func TestPipelinedStalenessFoldsLateGradients(t *testing.T) {
	st, err := engine.NewISSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	res, mm := runStrategyCluster(t, st,
		func(c *MasterConfig) {
			c.Staleness = 1
			c.MaxSteps = 12
		},
		func(i int, c *WorkerConfig) {
			// Everyone sleeps 40ms; worker 3 sleeps 60ms. Each gather lasts
			// ~40ms and worker 3 arrives ~20ms into the following one — well
			// inside the fold window on any reasonable scheduler.
			d := 40 * time.Millisecond
			if i == 3 {
				d = 60 * time.Millisecond
			}
			c.Delay = straggler.Constant{D: d}
		})
	if res.Run.Steps() != 12 {
		t.Fatalf("steps = %d, want 12", res.Run.Steps())
	}
	for _, rec := range res.Run.Records {
		if rec.Available != 3 {
			t.Fatalf("step %d waited for %d workers, want 3 (W=4, staleness=1)", rec.Step, rec.Available)
		}
	}
	if folded := res.Run.TotalFolded(); folded == 0 {
		t.Fatal("no late gradients folded; the straggler's uploads should land mid-gather")
	} else if got := mm.FoldedGradients.Value(); got != uint64(folded) {
		t.Fatalf("folded counter = %d, records say %d", got, folded)
	}
	first, last := res.Run.Records[0].Loss, res.Run.FinalLoss()
	if !(last < first) {
		t.Fatalf("loss %v → %v, expected decrease", first, last)
	}
}

// TestPipelinedCrashMidOverlap is the -race satellite: a worker dies right
// in the overlap zone — after serving step t's gather but around step
// t+1's broadcast — while the master runs the pipelined loop with sharded
// lanes attached. The master must evict it (primary and lanes together)
// and finish on the survivors.
func TestPipelinedCrashMidOverlap(t *testing.T) {
	res, _ := runShapedCluster(t,
		func(c *MasterConfig) {
			c.Staleness = 1
			c.MaxSteps = 15
			c.LivenessTimeout = time.Second
		},
		func(i int, c *WorkerConfig) {
			c.GatherShards = 2
			if i == 3 {
				// Crash exactly at the overlap boundary: the fault fires
				// when the worker starts step 6, i.e. after its step-5
				// upload, as the pipelined broadcast races the gather tail.
				c.Fault = straggler.CrashAt{Step: 6}
				c.FaultSeed = 3
			}
		})
	if res.Run.Steps() != 15 {
		t.Fatalf("steps = %d, want 15", res.Run.Steps())
	}
	last := res.Run.Records[len(res.Run.Records)-1]
	if last.Alive != 3 {
		t.Fatalf("final alive = %d, want 3 after the crash", last.Alive)
	}
	first, final := res.Run.Records[0].Loss, res.Run.FinalLoss()
	if !(final < first) {
		t.Fatalf("loss %v → %v, expected decrease despite the crash", first, final)
	}
}

func TestMasterConfigPipelineValidation(t *testing.T) {
	st, err := engine.NewSyncSGD(2)
	if err != nil {
		t.Fatal(err)
	}
	flex, err := engine.NewISSGD(2)
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.LinearRegression{Features: 2}
	data, _, err := dataset.SyntheticLinear(10, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	good := MasterConfig{Addr: "127.0.0.1:0", Strategy: flex, Model: mdl, Data: data,
		LearningRate: 0.1, MaxSteps: 1}
	cases := []struct {
		name string
		mut  func(*MasterConfig)
	}{
		{"negative staleness", func(c *MasterConfig) { c.Staleness = -1 }},
		{"staleness on rigid scheme", func(c *MasterConfig) { c.Strategy = st; c.Staleness = 1 }},
		{"pipeline with deadline", func(c *MasterConfig) { c.Pipeline = true; c.Deadline = time.Second }},
		{"staleness with deadline", func(c *MasterConfig) { c.Staleness = 1; c.Deadline = time.Second }},
		{"negative shards", func(c *MasterConfig) { c.GatherShards = -1 }},
		{"shards beyond protocol max", func(c *MasterConfig) { c.GatherShards = maxGatherShards + 1 }},
	}
	for _, tc := range cases {
		bad := good
		tc.mut(&bad)
		if _, err := NewMaster(bad); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	// Staleness implies Pipeline.
	okCfg := good
	okCfg.Staleness = 1
	m, err := NewMaster(okCfg)
	if err != nil {
		t.Fatal(err)
	}
	if !m.cfg.Pipeline {
		t.Error("Staleness > 0 must imply Pipeline")
	}
	m.ln.Close()
}
