package cluster

import (
	"bytes"
	"encoding/hex"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/placement"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden wire fixtures in testdata/")

// goldenEnvelopes are the committed wire fixtures: one envelope per binary
// message type, exercising every header field. Changing the frame layout
// changes these bytes, which is exactly the point — the fixtures pin the
// v1 format so an accidental encoding change fails loudly instead of
// silently breaking cross-version clusters.
func goldenEnvelopes() map[string]*Envelope {
	return map[string]*Envelope{
		"hello": {Kind: MsgHello, Worker: 3, Step: 17},
		"step":  {Kind: MsgStep, Step: 5, Params: []float64{0, 1, -2.5, 0.5, math.Pi}},
		"gradient": {Kind: MsgGradient, Worker: 2, Step: 9,
			Coded:                []float64{0.25, -3, 1e-300, math.Inf(1)},
			ComputeStartUnixNano: 1_700_000_000_000_000_000, ComputeDurNanos: 12_345_678},
		"heartbeat": {Kind: MsgHeartbeat, Worker: 1},
		"stop":      {Kind: MsgStop},
	}
}

// goldenPath returns the fixture file for one message type.
func goldenPath(name string) string {
	return filepath.Join("testdata", name+".hex")
}

// readGolden loads and decodes a hex fixture (whitespace is ignored, so the
// files can be wrapped for readability).
func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	raw, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("read fixture (run with -update to generate): %v", err)
	}
	data, err := hex.DecodeString(strings.Join(strings.Fields(string(raw)), ""))
	if err != nil {
		t.Fatalf("fixture %s is not hex: %v", name, err)
	}
	return data
}

// writeGolden renders frame bytes as wrapped hex.
func writeGolden(t *testing.T, name string, data []byte) {
	t.Helper()
	h := hex.EncodeToString(data)
	var b strings.Builder
	for i := 0; i < len(h); i += 64 {
		end := i + 64
		if end > len(h) {
			end = len(h)
		}
		b.WriteString(h[i:end])
		b.WriteByte('\n')
	}
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(name), []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestGoldenFrames pins the binary encoding of every message type to the
// committed fixtures and proves DecodeFrame inverts EncodeFrame on them.
func TestGoldenFrames(t *testing.T) {
	for name, e := range goldenEnvelopes() {
		name, e := name, e
		t.Run(name, func(t *testing.T) {
			enc, err := EncodeFrame(e)
			if err != nil {
				t.Fatal(err)
			}
			if *updateGolden {
				writeGolden(t, name, enc)
			}
			want := readGolden(t, name)
			if !bytes.Equal(enc, want) {
				t.Fatalf("EncodeFrame drifted from committed fixture:\n got %x\nwant %x", enc, want)
			}
			got, err := DecodeFrame(want)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, e) {
				t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, e)
			}
		})
	}
}

// TestGoldenFrameHeaderBytes spells the v1 header out field by field for one
// fixture so a layout regression is diagnosable from the failure message
// alone (the DESIGN.md frame diagram is asserted here, byte for byte).
func TestGoldenFrameHeaderBytes(t *testing.T) {
	data := readGolden(t, "gradient")
	if len(data) < frameHeaderSize {
		t.Fatalf("fixture shorter than a header: %d bytes", len(data))
	}
	if string(data[:4]) != "ISGC" {
		t.Errorf("magic = %q", data[:4])
	}
	if data[4] != frameVersion {
		t.Errorf("version = %d", data[4])
	}
	if data[5] != frameTypeGradient {
		t.Errorf("type = %d", data[5])
	}
	if data[6] != 0 || data[7] != 0 {
		t.Errorf("reserved = % x", data[6:8])
	}
	if got := getU32(data[8:]); got != 2 {
		t.Errorf("worker = %d", got)
	}
	if got := getU32(data[12:]); got != 9 {
		t.Errorf("step = %d", got)
	}
	if got := int64(getU64(data[16:])); got != 1_700_000_000_000_000_000 {
		t.Errorf("compute start = %d", got)
	}
	if got := int64(getU64(data[24:])); got != 12_345_678 {
		t.Errorf("compute duration = %d", got)
	}
	if got := getU32(data[32:]); got != 4 {
		t.Errorf("dim = %d", got)
	}
	if want := frameHeaderSize + 8*4; len(data) != want {
		t.Errorf("frame length = %d, want %d", len(data), want)
	}
	if got := math.Float64frombits(getU64(data[frameHeaderSize:])); got != 0.25 {
		t.Errorf("payload[0] = %v", got)
	}
}

// TestAppendFrameRejections: envelopes the frame format cannot represent
// must be refused at encode time, not silently mangled.
func TestAppendFrameRejections(t *testing.T) {
	cases := map[string]*Envelope{
		"unknown kind":          {Kind: "pwn"},
		"negotiation field":     {Kind: MsgHello, Worker: 1, Wire: WireBinary},
		"worker over limit":     {Kind: MsgHeartbeat, Worker: maxFrameID + 1},
		"step over limit":       {Kind: MsgStep, Step: maxFrameID + 1},
		"payload on hello":      {Kind: MsgHello, Params: []float64{1}},
		"payload on heartbeat":  {Kind: MsgHeartbeat, Coded: []float64{1}},
		"params on gradient":    {Kind: MsgGradient, Worker: 1, Params: []float64{1}},
		"coded on step":         {Kind: MsgStep, Coded: []float64{1}},
		"negative worker":       {Kind: MsgGradient, Worker: -1},
		"negative compute time": {Kind: MsgGradient, Worker: 1, ComputeDurNanos: -1},
	}
	for name, e := range cases {
		if _, err := EncodeFrame(e); err == nil {
			t.Errorf("%s: EncodeFrame accepted %+v", name, e)
		}
	}
}

// TestDecodeFrameRejections: every malformed byte-level mutation of a valid
// frame must produce an error (and, per FuzzDecodeFrame, never a panic).
func TestDecodeFrameRejections(t *testing.T) {
	valid, err := EncodeFrame(&Envelope{Kind: MsgGradient, Worker: 1, Step: 2, Coded: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(off int, b byte) []byte {
		out := append([]byte(nil), valid...)
		out[off] = b
		return out
	}
	cases := map[string][]byte{
		"empty":             {},
		"truncated header":  valid[:frameHeaderSize-1],
		"truncated payload": valid[:len(valid)-1],
		"trailing bytes":    append(append([]byte(nil), valid...), 0),
		"bad magic":         mutate(0, 'X'),
		"version skew":      mutate(4, frameVersion+1),
		"unknown type":      mutate(5, 99),
		"reserved nonzero":  mutate(6, 1),
		"payload on stop": func() []byte {
			stop, _ := EncodeFrame(&Envelope{Kind: MsgStop})
			stop = append(stop, make([]byte, 8)...)
			putU32(stop[32:], 1)
			return stop
		}(),
		"dim overflow": func() []byte {
			out := append([]byte(nil), valid...)
			putU32(out[32:], maxVectorLen+1)
			return out
		}(),
		"worker over limit": func() []byte {
			out := append([]byte(nil), valid...)
			putU32(out[8:], maxFrameID+1)
			return out
		}(),
	}
	for name, data := range cases {
		if _, err := DecodeFrame(data); err == nil {
			t.Errorf("%s: DecodeFrame accepted % x", name, data)
		}
	}
	if _, err := DecodeFrame(valid); err != nil {
		t.Fatalf("control: valid frame rejected: %v", err)
	}
}

// TestDecodeFrameCanonical: decode followed by re-encode reproduces the
// input byte for byte — the format has exactly one representation per
// envelope, so fixtures and fuzz corpora cannot drift.
func TestDecodeFrameCanonical(t *testing.T) {
	for name, e := range goldenEnvelopes() {
		enc, err := EncodeFrame(e)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeFrame(enc)
		if err != nil {
			t.Fatal(err)
		}
		re, err := EncodeFrame(dec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, re) {
			t.Errorf("%s: re-encode differs:\n  in %x\n out %x", name, enc, re)
		}
	}
}

// TestConnBinaryUpgradeRoundTrip drives the codec switch on a raw conn
// pair: gob hello exchange, upgrade on both ends, then binary frames in
// both directions — the protocol sequence every negotiated connection runs.
func TestConnBinaryUpgradeRoundTrip(t *testing.T) {
	a, b := pipePair()
	defer a.close()
	defer b.close()

	done := make(chan error, 1)
	go func() {
		hello, err := b.recv() // gob
		if err != nil {
			done <- err
			return
		}
		if hello.Wire != WireBinary {
			done <- fmt.Errorf("hello.Wire = %q", hello.Wire)
			return
		}
		if err := b.send(&Envelope{Kind: MsgHello, Worker: hello.Worker, Wire: WireBinary}); err != nil {
			done <- err
			return
		}
		b.upgrade(false)
		g, err := b.recv() // first binary frame
		if err != nil {
			done <- err
			return
		}
		if g.Kind != MsgGradient || len(g.Coded) != 3 || g.Coded[2] != -0.5 {
			done <- fmt.Errorf("gradient mangled after upgrade: %+v", g)
			return
		}
		done <- b.send(&Envelope{Kind: MsgStep, Step: 1, Params: []float64{9, 8}})
	}()

	wire, _, err := clientHello(a, 4, 0, WireBinary, 1)
	if err != nil {
		t.Fatal(err)
	}
	if wire != WireBinary {
		t.Fatalf("negotiated %q", wire)
	}
	if err := a.send(&Envelope{Kind: MsgGradient, Worker: 4, Step: 0, Coded: []float64{1, 2, -0.5}}); err != nil {
		t.Fatal(err)
	}
	step, err := a.recv()
	if err != nil {
		t.Fatal(err)
	}
	if step.Kind != MsgStep || len(step.Params) != 2 || step.Params[0] != 9 {
		t.Fatalf("step mangled after upgrade: %+v", step)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// runWireCluster trains a small IS-GC cluster where the master and each
// worker are pinned to the given codecs, and returns the result plus the
// master's wire-connection counts per codec.
func runWireCluster(t *testing.T, masterWire string, workerWires []string) (*engine.Result, map[string]uint64) {
	t.Helper()
	p, err := placement.CR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 7))
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)

	reg := metrics.NewRegistry()
	mm := NewMasterMetrics(reg)
	master, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.3, W: 4, MaxSteps: 8, Seed: 42,
		AcceptTimeout: 10 * time.Second, Wire: masterWire, Metrics: mm,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if err != nil {
					t.Error(err)
					return
				}
			}
			wk, err := NewWorker(WorkerConfig{
				Addr: master.Addr(), ID: i, Partitions: pids, Loaders: loaders,
				Model: mdl, Encode: SumEncoder(), Wire: workerWires[i],
				DelaySeed: int64(i) + 1,
			})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := wk.Run(); err != nil {
				t.Error(err)
			}
		}()
	}
	res, err := master.Run()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()

	counts := map[string]uint64{
		WireGob:    mm.WireConnections.With(WireGob).Value(),
		WireBinary: mm.WireConnections.With(WireBinary).Value(),
	}
	return res, counts
}

// TestBinaryMasterAcceptsGobWorker is the interop satellite: a binary-
// default master must train a gob-pinned worker fleet end to end on the
// legacy stream — a gob worker sends exactly the pre-negotiation hello, so
// this also covers old binaries joining a new master.
func TestBinaryMasterAcceptsGobWorker(t *testing.T) {
	res, counts := runWireCluster(t, WireBinary,
		[]string{WireGob, WireGob, WireGob, WireGob})
	if res.Run.Steps() != 8 {
		t.Fatalf("steps = %d", res.Run.Steps())
	}
	if counts[WireGob] != 4 || counts[WireBinary] != 0 {
		t.Fatalf("wire counts = %v, want 4 gob connections", counts)
	}
}

// TestMixedWireFleet: gob and binary workers coexist on one master, each
// connection on its negotiated codec, and training is unaffected.
func TestMixedWireFleet(t *testing.T) {
	res, counts := runWireCluster(t, WireBinary,
		[]string{WireGob, WireBinary, WireGob, WireBinary})
	if res.Run.Steps() != 8 {
		t.Fatalf("steps = %d", res.Run.Steps())
	}
	if counts[WireGob] != 2 || counts[WireBinary] != 2 {
		t.Fatalf("wire counts = %v, want 2 gob + 2 binary", counts)
	}
	for _, rec := range res.Run.Records {
		if rec.RecoveredFraction != 1.0 {
			t.Fatalf("step %d recovered %v with full fleet", rec.Step, rec.RecoveredFraction)
		}
	}
}

// TestGobMasterRefusesUpgrade: a gob-pinned master (-wire=gob) answers the
// upgrade proposal with gob, and binary-preferring workers fall back.
func TestGobMasterRefusesUpgrade(t *testing.T) {
	res, counts := runWireCluster(t, WireGob,
		[]string{WireBinary, WireBinary, WireBinary, WireBinary})
	if res.Run.Steps() != 8 {
		t.Fatalf("steps = %d", res.Run.Steps())
	}
	if counts[WireGob] != 4 || counts[WireBinary] != 0 {
		t.Fatalf("wire counts = %v, want 4 gob after refusal", counts)
	}
}
