package cluster

import (
	"encoding/gob"
	"net"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/model"
	"isgc/internal/straggler"
)

// TestPermanentEvictionFiresOnce covers the control plane's re-placement
// trigger: a worker that crashes and never rejoins fires
// OnPermanentEviction exactly once for its generation, no matter how many
// monitor ticks pass afterwards, and names the right worker.
func TestPermanentEvictionFiresOnce(t *testing.T) {
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)
	st := freshISGC(t, 4, 2, 11)

	type eviction struct{ worker, gen int }
	var calls []eviction
	var mu sync.Mutex
	evicted := make(chan struct{}, 16)
	m, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.3, W: 2, MaxSteps: 400, Seed: 42,
		LivenessTimeout: 150 * time.Millisecond,
		PermanentAfter:  200 * time.Millisecond,
		OnPermanentEviction: func(worker, gen int) {
			mu.Lock()
			calls = append(calls, eviction{worker, gen})
			mu.Unlock()
			evicted <- struct{}{}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resCh := make(chan *engine.Result, 1)
	go func() {
		res, err := m.Run()
		if err != nil {
			t.Error(err)
		}
		resCh <- res
	}()

	// Worker 3 crashes permanently at step 5; the survivors keep the run
	// alive (W=2) with a small delay so the run comfortably outlasts the
	// eviction window plus many monitor ticks.
	parts, err := data.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		pids := st.Partitions(i)
		loaders := make([]*dataset.Loader, len(pids))
		for j, d := range pids {
			loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
			if err != nil {
				t.Fatal(err)
			}
		}
		cfg := WorkerConfig{
			Addr: m.Addr(), ID: i, Partitions: pids, Loaders: loaders,
			Model: mdl, Encode: SumEncoder(),
			Delay: fixedDelay{3 * time.Millisecond}, DelaySeed: int64(i) + 1,
		}
		if i == 3 {
			cfg.Fault = straggler.CrashAt{Step: 5}
			cfg.FaultSeed = 99
		}
		wk, err := NewWorker(cfg)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = wk.Run() // the crashed worker exits with an error by design
		}()
	}

	select {
	case <-evicted:
	case <-time.After(30 * time.Second):
		t.Fatal("permanent eviction never fired")
	}
	// Give the monitor many more ticks to (wrongly) fire again, then end
	// the run.
	time.Sleep(600 * time.Millisecond)
	m.Stop()
	<-resCh
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(calls) != 1 {
		t.Fatalf("OnPermanentEviction fired %d times, want exactly 1: %v", len(calls), calls)
	}
	if calls[0].worker != 3 {
		t.Fatalf("evicted worker = %d, want 3", calls[0].worker)
	}
}

// TestJobGoneEndsReconnectEarly covers the bounded reject: a worker that
// loses its master and redials into a MsgJobGone responder (a drained
// job's tombstone) gives up immediately with JobGone() set, instead of
// burning its whole redial budget against an address that will never come
// back.
func TestJobGoneEndsReconnectEarly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Fake master: the first connection completes the handshake (gob is
	// chosen, so no upgrade framing is needed) and is then dropped, as if
	// the master died; every later connection is answered with MsgJobGone,
	// exactly what a control-plane tombstone does.
	var conns atomic.Int64
	go func() {
		for {
			raw, err := ln.Accept()
			if err != nil {
				return
			}
			n := conns.Add(1)
			go func(raw net.Conn, n int64) {
				defer raw.Close()
				dec := gob.NewDecoder(raw)
				var hello Envelope
				if dec.Decode(&hello) != nil || hello.Kind != MsgHello {
					return
				}
				enc := gob.NewEncoder(raw)
				if n == 1 {
					// Choose gob (empty Wire in the ack), serve nothing, die.
					_ = enc.Encode(&Envelope{Kind: MsgHello})
					time.Sleep(50 * time.Millisecond)
					return
				}
				_ = enc.Encode(&Envelope{Kind: MsgJobGone})
			}(raw, n)
		}
	}()

	data := testData(t)
	parts, err := data.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := dataset.NewLoader(parts[0], 16, 42)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 60 * time.Second
	w, err := NewWorker(WorkerConfig{
		Addr: ln.Addr().String(), ID: 0, Partitions: []int{0},
		Loaders: []*dataset.Loader{loader},
		Model:   model.SoftmaxRegression{Features: 6, Classes: 3},
		Encode:  SumEncoder(), ReconnectTimeout: budget,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := w.Run(); err != nil {
		t.Fatalf("worker run: %v", err)
	}
	if elapsed := time.Since(start); elapsed > budget/2 {
		t.Fatalf("worker took %v to give up; MsgJobGone must end the redial budget (%v) early", elapsed, budget)
	}
	if !w.JobGone() {
		t.Fatal("worker did not latch JobGone after the terminal reject")
	}
	if got := conns.Load(); got < 2 {
		t.Fatalf("worker never redialed (connections=%d)", got)
	}
}

// TestWarmHandoffEquivalence is the re-placement handoff's correctness
// contract: a master stopped mid-run and succeeded by a fresh master with
// WarmState (in-memory params + next step + decoder RNG position) produces
// step records and final params bit-identical to an uninterrupted run — no
// disk involved — the checkpoint-equivalent path the scheduler uses
// between generations.
func TestWarmHandoffEquivalence(t *testing.T) {
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)
	base := func(st engine.Strategy, addr string) MasterConfig {
		return MasterConfig{
			Addr: addr, Strategy: st, Model: mdl, Data: data,
			LearningRate: 0.3, W: 4, MaxSteps: 20, Seed: 42,
			// Bit-compare needs a pool-size-independent loss reduction.
			ComputePar: 1,
		}
	}

	// Uninterrupted reference.
	refMaster, err := NewMaster(base(freshISGC(t, 4, 2, 7), "127.0.0.1:0"))
	if err != nil {
		t.Fatal(err)
	}
	refFleet := startFleet(t, refMaster.cfg.Strategy, data, mdl, refMaster.Addr(), 0, nil)
	ref, err := refMaster.Run()
	if err != nil {
		t.Fatal(err)
	}
	refFleet.Wait()

	// First life on a fixed port, stopped mid-run. No checkpoint store —
	// the handoff is purely in-memory.
	addr := freeLoopbackAddr(t)
	st1 := freshISGC(t, 4, 2, 7)
	m1, err := NewMaster(base(st1, addr))
	if err != nil {
		t.Fatal(err)
	}
	fleet := startFleet(t, st1, data, mdl, addr, 30*time.Second, fixedDelay{8 * time.Millisecond})
	res1Ch := make(chan *engine.Result, 1)
	go func() {
		res, err := m1.Run()
		if err != nil {
			t.Error(err)
		}
		res1Ch <- res
	}()
	waitForStep(t, m1, 8)
	m1.Stop()
	res1 := <-res1Ch
	if res1 == nil || !res1.Interrupted {
		t.Fatalf("first life did not report an interrupted run: %+v", res1)
	}
	if res1.Run.Steps() == 0 || res1.Run.Steps() >= 20 {
		t.Fatalf("first life recorded %d steps; the stop must land mid-run", res1.Run.Steps())
	}

	// Successor: fresh master and strategy objects, warm state handed over
	// in memory — params, next step, and the decoder RNG position.
	st2 := freshISGC(t, 4, 2, 7)
	if rs1, ok := st1.(engine.RandStateful); ok {
		seed, draws := rs1.RandState()
		st2.(engine.RandStateful).RestoreRandState(seed, draws)
	} else {
		t.Fatal("strategy does not expose its decoder RNG state")
	}
	cfg2 := base(st2, addr)
	cfg2.Warm = &WarmState{
		Params:     res1.Params,
		StartStep:  res1.Run.Records[res1.Run.Steps()-1].Step + 1,
		Generation: 1,
	}
	m2, err := NewMaster(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := m2.Run()
	if err != nil {
		t.Fatal(err)
	}
	fleet.Wait()

	if gen := m2.Health().Generation; gen != 1 {
		t.Fatalf("warm master generation = %d, want 1", gen)
	}
	combined := append(zeroElapsed(res1.Run.Records), zeroElapsed(res2.Run.Records)...)
	refRecs := zeroElapsed(ref.Run.Records)
	if len(combined) != len(refRecs) {
		t.Fatalf("two lives recorded %d steps, reference %d", len(combined), len(refRecs))
	}
	for i := range combined {
		if !reflect.DeepEqual(combined[i], refRecs[i]) {
			t.Fatalf("record %d diverged across the warm handoff:\n lives %+v\n   ref %+v", i, combined[i], refRecs[i])
		}
	}
	if !reflect.DeepEqual(res2.Params, ref.Params) {
		t.Fatal("final params are not bit-identical after the warm handoff")
	}
}
