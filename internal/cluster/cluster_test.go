package cluster

import (
	"math"
	"sync"
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/gc"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

// launchCluster starts a master plus its full worker fleet and returns the
// training result. delays[i] (may be nil) is worker i's injected straggler
// model.
func launchCluster(t *testing.T, st engine.Strategy, data *dataset.Dataset, mdl model.Model,
	w, maxSteps int, lossThreshold float64, delays []straggler.Model) *engine.Result {
	t.Helper()
	n := st.N()

	master, err := NewMaster(MasterConfig{
		Addr:          "127.0.0.1:0",
		Strategy:      st,
		Model:         mdl,
		Data:          data,
		LearningRate:  0.3,
		W:             w,
		MaxSteps:      maxSteps,
		LossThreshold: lossThreshold,
		Seed:          42,
		AcceptTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	parts, err := data.Partition(n)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	workerErrs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				// Same seed discipline as the engine: seed depends only
				// on the partition, so replicas agree.
				loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if err != nil {
					workerErrs <- err
					return
				}
			}
			var delay straggler.Model
			if delays != nil {
				delay = delays[i]
			}
			wk, err := NewWorker(WorkerConfig{
				Addr:       master.Addr(),
				ID:         i,
				Partitions: pids,
				Loaders:    loaders,
				Model:      mdl,
				Encode:     SumEncoder(),
				Delay:      delay,
				DelaySeed:  int64(i) + 1,
			})
			if err != nil {
				workerErrs <- err
				return
			}
			if _, err := wk.Run(); err != nil {
				workerErrs <- err
			}
		}()
	}

	res, err := master.Run()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	close(workerErrs)
	for err := range workerErrs {
		t.Fatalf("worker: %v", err)
	}
	return res
}

func testData(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.SyntheticClusters(240, 6, 3, 4.0, 101)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTCPTrainingISGCFullFleet(t *testing.T) {
	p, err := placement.CR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 7))
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	res := launchCluster(t, st, testData(t), mdl, 4, 40, 0, nil)
	if res.Run.Steps() != 40 {
		t.Fatalf("steps = %d", res.Run.Steps())
	}
	first, last := res.Run.Records[0].Loss, res.Run.FinalLoss()
	if !(last < 0.7*first) {
		t.Fatalf("loss %v → %v over TCP, expected decrease", first, last)
	}
	// With all 4 workers, IS-GC over CR(4,2) recovers fully.
	for _, rec := range res.Run.Records {
		if rec.RecoveredFraction != 1.0 {
			t.Fatalf("step %d recovered %v", rec.Step, rec.RecoveredFraction)
		}
	}
}

func TestTCPTrainingWithRealStragglers(t *testing.T) {
	p, err := placement.CR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 8))
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	// Workers 0 and 1 are consistently slow: real sleeps over real sockets.
	delays := []straggler.Model{
		straggler.Constant{D: 80 * time.Millisecond},
		straggler.Constant{D: 80 * time.Millisecond},
		nil, nil,
	}
	res := launchCluster(t, st, testData(t), mdl, 2, 12, 0, delays)
	for _, rec := range res.Run.Records {
		if rec.Available != 2 {
			t.Fatalf("step %d waited for %d workers, want 2", rec.Step, rec.Available)
		}
	}
	// The fast pair {2, 3} is adjacent in CR(4,2) wait — workers 2,3 are
	// 0-indexed consecutive, so they conflict and recovery is 0.5 per
	// step; crucially the master never waits for the slow workers, so the
	// mean step time must sit well below the 80ms injected delay.
	if mean := res.Run.MeanStepTime(); mean > 60*time.Millisecond {
		t.Fatalf("mean step time %v; master must ignore the 80ms stragglers", mean)
	}
	if got := res.Run.MeanRecovered(); got != 0.5 {
		t.Fatalf("mean recovered %v, want 0.5 (fast workers conflict)", got)
	}
}

// The master's per-worker arrival counts expose enduring stragglers.
func TestMasterArrivalCounts(t *testing.T) {
	p, err := placement.CR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 14))
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	delays := []straggler.Model{
		straggler.Constant{D: 100 * time.Millisecond}, // enduring straggler
		nil, nil, nil,
	}

	// launchCluster hides the master handle, so assemble inline.
	data := testData(t)
	master, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.3, W: 3, MaxSteps: 10, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if err != nil {
					t.Error(err)
					return
				}
			}
			wk, err := NewWorker(WorkerConfig{
				Addr: master.Addr(), ID: i, Partitions: pids, Loaders: loaders,
				Model: mdl, Encode: SumEncoder(), Delay: delays[i], DelaySeed: int64(i),
			})
			if err != nil {
				t.Error(err)
				return
			}
			_, _ = wk.Run()
		}()
	}
	if _, err := master.Run(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	counts := master.ArrivalCounts()
	if len(counts) != 4 {
		t.Fatalf("counts = %v", counts)
	}
	if counts[0] != 0 {
		t.Fatalf("enduring straggler arrived %d times; w=3 gathers should always beat it", counts[0])
	}
	for i := 1; i < 4; i++ {
		if counts[i] != 10 {
			t.Fatalf("worker %d arrived %d/10 times", i, counts[i])
		}
	}
}

func TestTCPLossThresholdStopsEarly(t *testing.T) {
	st, err := engine.NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	res := launchCluster(t, st, testData(t), mdl, 4, 500, 0.4, nil)
	if !res.Converged {
		t.Fatal("expected convergence")
	}
	if res.Run.FinalLoss() > 0.4 {
		t.Fatalf("final loss %v", res.Run.FinalLoss())
	}
	if res.Run.Steps() >= 500 {
		t.Fatal("did not stop early")
	}
}

// TCP and in-process engine must produce identical trajectories for a
// deterministic full-recovery scheme (same seeds, same batches, no
// stragglers): the transport must not change the math.
func TestTCPMatchesInProcessEngine(t *testing.T) {
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)

	pTCP, err := placement.FR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	stTCP, err := engine.NewISGC(isgc.New(pTCP, 3))
	if err != nil {
		t.Fatal(err)
	}
	resTCP := launchCluster(t, stTCP, data, mdl, 4, 25, 0, nil)

	pEng, err := placement.FR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	stEng, err := engine.NewISGC(isgc.New(pEng, 3))
	if err != nil {
		t.Fatal(err)
	}
	resEng, err := engine.Train(engine.Config{
		Strategy:     stEng,
		Model:        mdl,
		Data:         data,
		BatchSize:    16,
		LearningRate: 0.3,
		W:            4,
		MaxSteps:     25,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	for j := range resTCP.Params {
		if math.Abs(resTCP.Params[j]-resEng.Params[j]) > 1e-9 {
			t.Fatalf("param %d: TCP %v ≠ engine %v", j, resTCP.Params[j], resEng.Params[j])
		}
	}
}

// Classic gradient coding over real sockets: workers encode with their
// fixed B-matrix coefficients (LinearEncoder) and the master decodes the
// exact full gradient from the n-c+1 fastest — the baseline protocol the
// paper compares IS-GC against, running end to end on TCP.
func TestTCPClassicGC(t *testing.T) {
	code, err := gc.NewCR(4, 2, 21)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewClassicGC(code)
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)
	master, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.3, W: 1 /* ignored: GC waits for n-c+1 */, MaxSteps: 10, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if err != nil {
					t.Error(err)
					return
				}
			}
			// Worker i's fixed coefficients over its own partitions.
			coeffs := make([]float64, len(pids))
			for j, d := range pids {
				coeffs[j] = code.B().At(i, d)
			}
			var delay straggler.Model
			if i == 3 {
				delay = straggler.Constant{D: 60 * time.Millisecond} // the one tolerable straggler
			}
			wk, err := NewWorker(WorkerConfig{
				Addr: master.Addr(), ID: i, Partitions: pids, Loaders: loaders,
				Model: mdl, Encode: LinearEncoder(coeffs), Delay: delay, DelaySeed: int64(i),
			})
			if err != nil {
				t.Error(err)
				return
			}
			_, _ = wk.Run()
		}()
	}
	res, err := master.Run()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	for _, rec := range res.Run.Records {
		if rec.Available != 3 {
			t.Fatalf("step %d gathered %d workers, want n-c+1 = 3", rec.Step, rec.Available)
		}
		if rec.RecoveredFraction != 1.0 {
			t.Fatalf("step %d recovered %v, classic GC must fully recover", rec.Step, rec.RecoveredFraction)
		}
	}
	first, last := res.Run.Records[0].Loss, res.Run.FinalLoss()
	if !(last < first) {
		t.Fatalf("loss %v → %v, expected decrease", first, last)
	}
}

// Deadline gather over real sockets: the master accepts whatever arrives
// within the deadline, so persistent stragglers never block a step.
func TestTCPDeadlineGather(t *testing.T) {
	p, err := placement.CR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 12))
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)
	master, err := NewMaster(MasterConfig{
		Addr:         "127.0.0.1:0",
		Strategy:     st,
		Model:        mdl,
		Data:         data,
		LearningRate: 0.3,
		Deadline:     120 * time.Millisecond,
		MaxSteps:     8,
		Seed:         42,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if err != nil {
					t.Error(err)
					return
				}
			}
			var delay straggler.Model
			if i >= 2 {
				delay = straggler.Constant{D: 400 * time.Millisecond} // misses every deadline
			}
			wk, err := NewWorker(WorkerConfig{
				Addr: master.Addr(), ID: i, Partitions: pids, Loaders: loaders,
				Model: mdl, Encode: SumEncoder(), Delay: delay, DelaySeed: int64(i),
			})
			if err != nil {
				t.Error(err)
				return
			}
			_, _ = wk.Run()
		}()
	}
	res, err := master.Run()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	for _, rec := range res.Run.Records {
		// Only the two on-time workers (0, 1) make the deadline; they are
		// adjacent in CR(4,2), so the decoder picks one (recovery 0.5).
		if rec.Available != 2 {
			t.Fatalf("step %d: available %d, want 2", rec.Step, rec.Available)
		}
		if rec.RecoveredFraction != 0.5 {
			t.Fatalf("step %d: recovered %v, want 0.5", rec.Step, rec.RecoveredFraction)
		}
		if rec.Elapsed > 350*time.Millisecond {
			t.Fatalf("step %d took %v; the 400ms stragglers must not block it", rec.Step, rec.Elapsed)
		}
	}
}

func TestMasterConfigValidation(t *testing.T) {
	st, err := engine.NewSyncSGD(2)
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.LinearRegression{Features: 2}
	data, _, err := dataset.SyntheticLinear(10, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	good := MasterConfig{Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.1, MaxSteps: 1}
	muts := []func(*MasterConfig){
		func(c *MasterConfig) { c.Strategy = nil },
		func(c *MasterConfig) { c.Model = nil },
		func(c *MasterConfig) { c.Data = nil },
		func(c *MasterConfig) { c.LearningRate = 0 },
		func(c *MasterConfig) { c.MaxSteps = 0 },
	}
	for i, mut := range muts {
		bad := good
		mut(&bad)
		if _, err := NewMaster(bad); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
	m, err := NewMaster(good)
	if err != nil {
		t.Fatal(err)
	}
	if m.Addr() == "" {
		t.Error("Addr must report the bound address")
	}
	m.ln.Close()
}

func TestWorkerConfigValidation(t *testing.T) {
	data, _, err := dataset.SyntheticLinear(10, 2, 0.1, 1)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := dataset.NewLoader(data, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.LinearRegression{Features: 2}
	good := WorkerConfig{Addr: "127.0.0.1:1", ID: 0, Partitions: []int{0},
		Loaders: []*dataset.Loader{loader}, Model: mdl, Encode: SumEncoder(),
		DialTimeout: 50 * time.Millisecond}
	muts := []func(*WorkerConfig){
		func(c *WorkerConfig) { c.ID = -1 },
		func(c *WorkerConfig) { c.Partitions = nil },
		func(c *WorkerConfig) { c.Loaders = nil },
		func(c *WorkerConfig) { c.Model = nil },
		func(c *WorkerConfig) { c.Encode = nil },
	}
	for i, mut := range muts {
		bad := good
		mut(&bad)
		if _, err := NewWorker(bad); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
	// Valid config but nobody listening: dial must time out with an error.
	if _, err := NewWorker(good); err == nil {
		t.Error("expected dial error with no master")
	}
}

func TestSumEncoder(t *testing.T) {
	enc := SumEncoder()
	out, err := enc([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 4 || out[1] != 6 {
		t.Fatalf("out = %v", out)
	}
	if _, err := enc(nil); err == nil {
		t.Error("expected error for empty input")
	}
	if _, err := enc([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("expected error for dim mismatch")
	}
}

func TestLinearEncoder(t *testing.T) {
	enc := LinearEncoder([]float64{2, -1})
	out, err := enc([][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != -1 || out[1] != 0 {
		t.Fatalf("out = %v", out)
	}
	if _, err := enc([][]float64{{1, 2}}); err == nil {
		t.Error("expected error for count mismatch")
	}
	if _, err := enc([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("expected error for dim mismatch")
	}
	// The encoder must have copied the coefficient slice.
	coeffs := []float64{1, 1}
	enc2 := LinearEncoder(coeffs)
	coeffs[0] = 99
	out2, err := enc2([][]float64{{1}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	if out2[0] != 2 {
		t.Fatal("LinearEncoder must copy coefficients")
	}
}
