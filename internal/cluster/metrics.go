// Observability for the cluster runtime: the metric families a master or
// worker process exports on /metrics, and the health snapshots it serves
// on /healthz. The instrument sets are plain structs of nil-safe metrics
// — a nil *MasterMetrics / *WorkerMetrics disables instrumentation with
// zero changes to the hot paths.
package cluster

import (
	"strconv"
	"time"

	"isgc/internal/metrics"
	"isgc/internal/trace"
)

// MasterMetrics is the master's instrument set. Create one per master
// process with NewMasterMetrics and pass it in MasterConfig.Metrics; a
// MasterMetrics must not be shared between masters (the bound gauge
// functions would double-register).
type MasterMetrics struct {
	reg *metrics.Registry

	// GatherLatency is the per-step gather time — the paper's
	// per-iteration completion time (Fig. 12) observed live.
	GatherLatency *metrics.Histogram
	// Steps counts completed training steps.
	Steps *metrics.Counter
	// DegradedSteps counts steps whose gather target shrank below the
	// configured one because too few workers were alive.
	DegradedSteps *metrics.Counter
	// RecoveredFraction is the last step's recovered partition fraction —
	// the Fig. 11 quantity as a live gauge.
	RecoveredFraction *metrics.Gauge
	// Rejoins counts mid-run re-registrations.
	Rejoins *metrics.Counter
	// Evictions counts connections the master closed on liveness timeout
	// or send failure.
	Evictions *metrics.Counter
	// PermanentEvictions counts workers that stayed dead past the
	// permanent-eviction window (the control plane's re-placement
	// trigger); zero unless MasterConfig.OnPermanentEviction is set.
	PermanentEvictions *metrics.Counter
	// Malformed counts gradient envelopes rejected before decoding.
	Malformed *metrics.Counter
	// SentBytes counts every byte broadcast to workers.
	SentBytes *metrics.Counter
	// AcceptedGradients counts gathered gradients per worker — the live
	// view of ArrivalCounts.
	AcceptedGradients *metrics.CounterVec
	// WorkerAlive is 1/0 per worker id.
	WorkerAlive *metrics.GaugeVec
	// WireConnections counts accepted registrations per negotiated codec
	// — the operator's view of which workers still speak legacy gob.
	WireConnections *metrics.CounterVec
	// DecodeCacheHits and DecodeCacheMisses count availability-mask LRU
	// outcomes (zero unless MasterConfig.DecodeCache is enabled).
	DecodeCacheHits   *metrics.Counter
	DecodeCacheMisses *metrics.Counter
	// DecodeRepairs and DecodeFallbacks count incremental-decode outcomes
	// (zero unless MasterConfig.IncrementalDecode is enabled).
	DecodeRepairs   *metrics.Counter
	DecodeFallbacks *metrics.Counter
	// ComputeShards is the size of the master's loss-evaluation pool.
	ComputeShards *metrics.Gauge
	// CheckpointWrites/CheckpointBytes/CheckpointErrors count durable
	// checkpoint activity; RestoreSkipped counts corrupt files skipped
	// during restore (a nonzero value means the directory has torn or
	// bit-rotted checkpoints).
	CheckpointWrites *metrics.Counter
	CheckpointBytes  *metrics.Counter
	CheckpointErrors *metrics.Counter
	RestoreSkipped   *metrics.Counter
	// LastCheckpointStep is the step of the newest durable checkpoint
	// (-1 until the first write).
	LastCheckpointStep *metrics.Gauge
	// ShardLanes counts extra gather-lane connections accepted from
	// binaryv2 workers (zero on an unsharded fleet).
	ShardLanes *metrics.Counter
	// SubFrames counts gradient sub-frames reassembled into full
	// gradients (zero on an unsharded fleet).
	SubFrames *metrics.Counter
	// FoldedGradients counts straggler gradients folded into a later
	// step's parameters as a staleness correction (zero unless the
	// pipelined mode runs with -staleness > 0).
	FoldedGradients *metrics.Counter
}

// NewMasterMetrics registers the master's metric families on reg.
func NewMasterMetrics(reg *metrics.Registry) *MasterMetrics {
	return &MasterMetrics{
		reg: reg,
		GatherLatency: reg.NewHistogram("isgc_master_gather_latency_seconds",
			"Per-step gather latency: broadcast to decode-ready.", metrics.DefBuckets),
		Steps: reg.NewCounter("isgc_master_steps_total",
			"Completed training steps."),
		DegradedSteps: reg.NewCounter("isgc_master_degraded_steps_total",
			"Steps gathered with a degraded (shrunken) wait target."),
		RecoveredFraction: reg.NewGauge("isgc_master_recovered_fraction",
			"Fraction of dataset partitions recovered in the last step."),
		Rejoins: reg.NewCounter("isgc_master_rejoins_total",
			"Mid-run worker re-registrations accepted."),
		Evictions: reg.NewCounter("isgc_master_evicted_connections_total",
			"Worker connections closed on liveness timeout or send failure."),
		PermanentEvictions: reg.NewCounter("isgc_master_permanent_evictions_total",
			"Workers declared permanently gone after the no-rejoin window."),
		Malformed: reg.NewCounter("isgc_master_malformed_gradients_total",
			"Gradient envelopes rejected before decoding."),
		SentBytes: reg.NewCounter("isgc_master_sent_bytes_total",
			"Bytes broadcast to workers."),
		AcceptedGradients: reg.NewCounterVec("isgc_master_accepted_gradients_total",
			"Gradients gathered before the per-step cut-off, per worker.", "worker"),
		WorkerAlive: reg.NewGaugeVec("isgc_master_worker_alive",
			"Per-worker liveness (1 = alive).", "worker"),
		WireConnections: reg.NewCounterVec("isgc_master_wire_connections_total",
			"Accepted registrations per negotiated wire codec.", "codec"),
		DecodeRepairs: reg.NewCounter("isgc_master_decode_repairs_total",
			"Decode results served by incrementally repairing the previous chosen set."),
		DecodeFallbacks: reg.NewCounter("isgc_master_decode_fallbacks_total",
			"Incremental repairs that fell back to a fresh solve."),
		DecodeCacheHits: reg.NewCounter("isgc_master_decode_cache_hits_total",
			"Decode results served from the availability-mask LRU."),
		DecodeCacheMisses: reg.NewCounter("isgc_master_decode_cache_misses_total",
			"Decode results computed afresh and inserted into the LRU."),
		ComputeShards: reg.NewGauge("isgc_master_compute_shards",
			"Size of the master's loss-evaluation compute pool."),
		CheckpointWrites: reg.NewCounter("isgc_master_checkpoint_writes_total",
			"Durable checkpoints written."),
		CheckpointBytes: reg.NewCounter("isgc_master_checkpoint_bytes_total",
			"Bytes written as durable checkpoints."),
		CheckpointErrors: reg.NewCounter("isgc_master_checkpoint_errors_total",
			"Checkpoint writes that failed."),
		RestoreSkipped: reg.NewCounter("isgc_master_checkpoint_restore_skipped_total",
			"Corrupt or unreadable checkpoint files skipped during restore."),
		LastCheckpointStep: reg.NewGauge("isgc_master_last_checkpoint_step",
			"Step of the newest durable checkpoint (-1 before the first)."),
		ShardLanes: reg.NewCounter("isgc_master_shard_lanes_total",
			"Extra gather-lane connections accepted from binaryv2 workers."),
		SubFrames: reg.NewCounter("isgc_master_subframes_total",
			"Gradient sub-frames reassembled into full gradients."),
		FoldedGradients: reg.NewCounter("isgc_master_folded_gradients_total",
			"Straggler gradients folded into a later step as a staleness correction."),
	}
}

// bind registers the gauge functions that are views over live master
// state; called once from NewMaster.
func (mm *MasterMetrics) bind(m *Master) {
	if mm == nil || mm.reg == nil {
		return
	}
	mm.reg.NewGaugeFunc("isgc_master_alive_workers",
		"Workers with a live connection.",
		func() float64 { return float64(m.countAlive()) })
	mm.reg.NewGaugeFunc("isgc_master_max_heartbeat_age_seconds",
		"Age of the stalest alive worker's last message.",
		m.maxHeartbeatAge)
}

// The nil-safe observation helpers below are the only metrics surface the
// master's hot paths touch; with mm == nil each is a single branch.

func (mm *MasterMetrics) observeStep(elapsed time.Duration, frac float64, degraded bool) {
	if mm == nil {
		return
	}
	mm.GatherLatency.Observe(elapsed.Seconds())
	mm.Steps.Inc()
	mm.RecoveredFraction.Set(frac)
	if degraded {
		mm.DegradedSteps.Inc()
	}
}

func (mm *MasterMetrics) markCheckpointWrite(bytes int64, step int) {
	if mm != nil {
		mm.CheckpointWrites.Inc()
		mm.CheckpointBytes.Add(uint64(bytes))
		mm.LastCheckpointStep.Set(float64(step))
	}
}

func (mm *MasterMetrics) markCheckpointError() {
	if mm != nil {
		mm.CheckpointErrors.Inc()
	}
}

func (mm *MasterMetrics) markRestoreSkipped() {
	if mm != nil {
		mm.RestoreSkipped.Inc()
	}
}

func (mm *MasterMetrics) markRejoin() {
	if mm != nil {
		mm.Rejoins.Inc()
	}
}

func (mm *MasterMetrics) markEviction() {
	if mm != nil {
		mm.Evictions.Inc()
	}
}

func (mm *MasterMetrics) markPermanentEviction() {
	if mm != nil {
		mm.PermanentEvictions.Inc()
	}
}

func (mm *MasterMetrics) markShardLane() {
	if mm != nil {
		mm.ShardLanes.Inc()
	}
}

func (mm *MasterMetrics) markSubFrames(n int) {
	if mm != nil && n > 0 {
		mm.SubFrames.Add(uint64(n))
	}
}

func (mm *MasterMetrics) markFolded() {
	if mm != nil {
		mm.FoldedGradients.Inc()
	}
}

func (mm *MasterMetrics) markMalformed() {
	if mm != nil {
		mm.Malformed.Inc()
	}
}

func (mm *MasterMetrics) markWire(codec string) {
	if mm != nil {
		mm.WireConnections.With(codec).Inc()
	}
}

func (mm *MasterMetrics) markAccepted(worker int) {
	if mm != nil {
		mm.AcceptedGradients.With(strconv.Itoa(worker)).Inc()
	}
}

func (mm *MasterMetrics) setWorkerAlive(worker int, alive bool) {
	if mm == nil {
		return
	}
	v := 0.0
	if alive {
		v = 1
	}
	mm.WorkerAlive.With(strconv.Itoa(worker)).Set(v)
}

// sentCounter returns the byte counter for outbound connections (nil when
// metrics are disabled, which skips the counting writer entirely).
func (mm *MasterMetrics) sentCounter() *metrics.Counter {
	if mm == nil {
		return nil
	}
	return mm.SentBytes
}

// WorkerMetrics is the worker's instrument set; pass it in
// WorkerConfig.Metrics (nil disables instrumentation).
type WorkerMetrics struct {
	// ComputeTime is the per-step local gradient computation time.
	ComputeTime *metrics.Histogram
	// Steps counts steps served (computed, whether or not uploaded).
	Steps *metrics.Counter
	// SentBytes counts every byte written to the master connection —
	// dominated by gradient uploads.
	SentBytes *metrics.Counter
	// ReconnectAttempts counts redials (successful or not).
	ReconnectAttempts *metrics.Counter
	// Reconnects counts successful re-registrations.
	Reconnects *metrics.Counter
	// DroppedUploads counts uploads lost to injected drop faults.
	DroppedUploads *metrics.Counter
	// Connected is 1 while the worker holds a registered connection.
	Connected *metrics.Gauge
	// WireConnections counts completed registrations per negotiated
	// codec (a reconnecting worker renegotiates, so rejoins count too).
	WireConnections *metrics.CounterVec
	// ComputeShards is the size of the worker's gradient compute pool.
	ComputeShards *metrics.Gauge
	// GatherLanes is the number of parallel gather streams negotiated on
	// the current registration (1 on v1/gob connections).
	GatherLanes *metrics.Gauge
	// SubFrames counts gradient sub-frames sent across all lanes (zero
	// on unsharded connections).
	SubFrames *metrics.Counter
}

// decodeCacheHooks returns the hit/miss callbacks for the strategy's
// decode cache (nils when metrics are disabled).
func (mm *MasterMetrics) decodeCacheHooks() (onHit, onMiss func()) {
	if mm == nil {
		return nil, nil
	}
	return mm.DecodeCacheHits.Inc, mm.DecodeCacheMisses.Inc
}

// incrementalDecodeHooks returns the repair/fallback callbacks for the
// strategy's incremental decoder (nils when metrics are disabled).
func (mm *MasterMetrics) incrementalDecodeHooks() (onRepair, onFallback func()) {
	if mm == nil {
		return nil, nil
	}
	return mm.DecodeRepairs.Inc, mm.DecodeFallbacks.Inc
}

func (mm *MasterMetrics) setComputeShards(par int) {
	if mm != nil {
		mm.ComputeShards.Set(float64(par))
	}
}

// NewWorkerMetrics registers the worker's metric families on reg.
func NewWorkerMetrics(reg *metrics.Registry) *WorkerMetrics {
	return &WorkerMetrics{
		ComputeTime: reg.NewHistogram("isgc_worker_compute_seconds",
			"Per-step local gradient computation time.", metrics.DefBuckets),
		Steps: reg.NewCounter("isgc_worker_steps_total",
			"Steps served (gradient computed)."),
		SentBytes: reg.NewCounter("isgc_worker_sent_bytes_total",
			"Bytes written to the master connection (uploads dominate)."),
		ReconnectAttempts: reg.NewCounter("isgc_worker_reconnect_attempts_total",
			"Redial attempts after a lost connection."),
		Reconnects: reg.NewCounter("isgc_worker_reconnects_total",
			"Successful re-registrations."),
		DroppedUploads: reg.NewCounter("isgc_worker_dropped_uploads_total",
			"Uploads lost to injected drop faults."),
		Connected: reg.NewGauge("isgc_worker_connected",
			"1 while registered with the master."),
		WireConnections: reg.NewCounterVec("isgc_worker_wire_connections_total",
			"Completed registrations per negotiated wire codec.", "codec"),
		ComputeShards: reg.NewGauge("isgc_worker_compute_shards",
			"Size of the worker's gradient compute pool."),
		GatherLanes: reg.NewGauge("isgc_worker_gather_lanes",
			"Parallel gather streams negotiated on the current registration."),
		SubFrames: reg.NewCounter("isgc_worker_subframes_sent_total",
			"Gradient sub-frames sent across all gather lanes."),
	}
}

func (wm *WorkerMetrics) setGatherLanes(n int) {
	if wm != nil {
		wm.GatherLanes.Set(float64(n))
	}
}

func (wm *WorkerMetrics) markSubFrames(n int) {
	if wm != nil && n > 0 {
		wm.SubFrames.Add(uint64(n))
	}
}

func (wm *WorkerMetrics) setComputeShards(par int) {
	if wm != nil {
		wm.ComputeShards.Set(float64(par))
	}
}

func (wm *WorkerMetrics) markWire(codec string) {
	if wm != nil {
		wm.WireConnections.With(codec).Inc()
	}
}

func (wm *WorkerMetrics) observeCompute(elapsed time.Duration) {
	if wm != nil {
		wm.ComputeTime.Observe(elapsed.Seconds())
	}
}

func (wm *WorkerMetrics) markStep() {
	if wm != nil {
		wm.Steps.Inc()
	}
}

func (wm *WorkerMetrics) markDrop() {
	if wm != nil {
		wm.DroppedUploads.Inc()
	}
}

func (wm *WorkerMetrics) markReconnectAttempt() {
	if wm != nil {
		wm.ReconnectAttempts.Inc()
	}
}

func (wm *WorkerMetrics) markReconnect() {
	if wm != nil {
		wm.Reconnects.Inc()
	}
}

func (wm *WorkerMetrics) setConnected(up bool) {
	if wm == nil {
		return
	}
	v := 0.0
	if up {
		v = 1
	}
	wm.Connected.Set(v)
}

func (wm *WorkerMetrics) sentCounter() *metrics.Counter {
	if wm == nil {
		return nil
	}
	return wm.SentBytes
}

// Health snapshots ---------------------------------------------------------

// WorkerHealthView is one worker's liveness entry in the master's
// /healthz payload.
type WorkerHealthView struct {
	ID    int  `json:"id"`
	Alive bool `json:"alive"`
	// LastSeenAgeSeconds is the age of the last message received from the
	// worker; -1 when it never registered.
	LastSeenAgeSeconds float64 `json:"last_seen_age_seconds"`
	// Generation counts (re-)registrations; -1 when it never registered.
	Generation int `json:"generation"`
	// AcceptedSteps counts the steps that gathered this worker's gradient.
	AcceptedSteps int64 `json:"accepted_steps"`
}

// MasterHealth is the master's /healthz payload: per-worker liveness plus
// the degraded-step summary.
type MasterHealth struct {
	Running            bool  `json:"running"`
	Step               int   `json:"step"`
	AliveWorkers       int   `json:"alive_workers"`
	DegradedSteps      int   `json:"degraded_steps"`
	Rejoins            int   `json:"rejoins"`
	MalformedGradients int64 `json:"malformed_gradients"`
	// Generation counts this master's lives for the run: 0 cold start,
	// +1 per checkpoint restore or standby failover.
	Generation int `json:"generation"`
	// LastCheckpointStep is the step of the newest durable checkpoint
	// (-1 before any); LastCheckpointAgeSeconds its age (-1 before any).
	LastCheckpointStep       int     `json:"last_checkpoint_step"`
	LastCheckpointAgeSeconds float64 `json:"last_checkpoint_age_seconds"`
	// GatherP50Seconds / GatherP95Seconds are bucket-estimated quantiles
	// of the lifetime gather-latency histogram (0 when metrics are
	// disabled or before the first step) — the same estimator the
	// time-series store and the CLI's printed latency line use.
	GatherP50Seconds float64            `json:"gather_p50_seconds"`
	GatherP95Seconds float64            `json:"gather_p95_seconds"`
	Workers          []WorkerHealthView `json:"workers"`
}

// gatherQuantiles returns the estimated p50/p95 of the gather-latency
// histogram (zeros with metrics disabled or no observations yet).
func (mm *MasterMetrics) gatherQuantiles() (p50, p95 float64) {
	if mm == nil {
		return 0, 0
	}
	snap := mm.GatherLatency.Snapshot()
	if snap.Count == 0 {
		return 0, 0
	}
	return snap.Quantile(0.50), snap.Quantile(0.95)
}

// LatencySummary estimates the run's step-latency order statistics from
// the gather-latency histogram — the same quantity trace.LatencySummary
// computes exactly from retained records, available here without keeping
// every sample. ok is false with metrics disabled or no observations.
func (mm *MasterMetrics) LatencySummary() (trace.LatencySummary, bool) {
	if mm == nil {
		return trace.LatencySummary{}, false
	}
	snap := mm.GatherLatency.Snapshot()
	if snap.Count == 0 {
		return trace.LatencySummary{}, false
	}
	toDur := func(p float64) time.Duration {
		return time.Duration(snap.Quantile(p) * float64(time.Second))
	}
	return trace.LatencySummary{P50: toDur(0.50), P95: toDur(0.95), P99: toDur(0.99)}, true
}

// WorkerHealth is the worker's /healthz payload.
type WorkerHealth struct {
	ID          int   `json:"id"`
	Connected   bool  `json:"connected"`
	StepsServed int64 `json:"steps_served"`
	Reconnects  int64 `json:"reconnects"`
}
