package cluster

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"isgc/internal/bitset"
	"isgc/internal/checkpoint"
	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/events"
	"isgc/internal/linalg"
	"isgc/internal/model"
	"isgc/internal/trace"
)

// defaultWriteTimeout bounds a single outbound send on either side of the
// protocol so one stalled socket cannot wedge a broadcast or a heartbeat.
const defaultWriteTimeout = 5 * time.Second

// MasterConfig configures a training master.
type MasterConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// Strategy decodes coded gradients (shared vocabulary with the
	// in-process engine).
	Strategy engine.Strategy
	// Model evaluates the training loss; the master holds the parameters.
	Model model.Model
	// Data is the full training set (for loss evaluation).
	Data *dataset.Dataset
	// LearningRate is η.
	LearningRate float64
	// W is the number of workers to wait for per step (flexible schemes).
	W int
	// Deadline, when positive, replaces the fastest-w gather for flexible
	// schemes with the Sec. IV deadline policy: each step the master
	// accepts every gradient that arrives within Deadline of the step
	// broadcast and then proceeds (waiting for at least one arrival).
	// Rigid schemes (Sync-SGD, classic GC) ignore it.
	Deadline time.Duration
	// MaxSteps bounds the run.
	MaxSteps int
	// LossThreshold stops early when reached (0 disables).
	LossThreshold float64
	// Seed initializes the parameters (must match the workers' data seed
	// discipline).
	Seed int64
	// AcceptTimeout bounds how long the master waits for all workers to
	// register (default 10s).
	AcceptTimeout time.Duration
	// StepTimeout, when positive, bounds a single step's gather even when
	// every worker is alive — the guard against workers that heartbeat
	// but never upload (lossy links, FaultDrop). On expiry a flexible
	// scheme proceeds with whatever arrived (marked degraded) and a rigid
	// scheme fails with a diagnostic. 0 disables.
	StepTimeout time.Duration
	// LivenessTimeout declares a worker dead when nothing (gradient or
	// heartbeat) has been received from it for this long; its connection
	// is closed and the gather target degrades if the scheme permits.
	// Default 15s; negative disables the monitor (reader-exit detection
	// still catches closed connections).
	LivenessTimeout time.Duration
	// WriteTimeout bounds each outbound send (default 5s; negative
	// disables).
	WriteTimeout time.Duration
	// ComputePar sizes the master's loss-evaluation compute pool: the
	// full-dataset loss each step is sharded across this many goroutines.
	// 0 picks GOMAXPROCS, 1 forces the sequential evaluation. Sharding
	// reassociates the loss mean's floating-point sum, so runs with
	// different settings may differ in loss bits (never in parameters —
	// the master's update never touches the pool).
	ComputePar int
	// DecodeCache, when positive, memoizes decode results in an LRU of
	// that many availability masks — strategies that implement
	// engine.DecodeCacher (IS-GC) only. Hits and misses land on the
	// isgc_master_decode_cache_* counters.
	DecodeCache int
	// IncrementalDecode, when true, repairs the previous step's chosen
	// set against the availability delta instead of re-solving —
	// strategies that implement engine.IncrementalDecoder (IS-GC) only.
	// Repairs and fallbacks land on the isgc_master_decode_repairs/
	// fallbacks counters.
	IncrementalDecode bool
	// Wire selects the wire codec policy: WireBinary (or empty, the
	// default) upgrades every worker that proposes the binary codec in
	// its hello and keeps gob for the rest; WireGob pins every connection
	// to gob (the ack then tells upgrading workers to stay on gob).
	Wire string
	// GatherShards caps how many parallel gather lanes a worker proposing
	// the binaryv2 codec may open (1..16). 0 accepts the worker's proposal
	// up to the protocol maximum; 1 negotiates sharding workers down to a
	// single binaryv1 stream. Workers that never propose sharding are
	// untouched either way — the default path stays bit-identical.
	GatherShards int
	// Pipeline enables the overlapped step loop: step t+1's broadcast
	// goes out the moment step t's update lands, and step t's loss
	// evaluation + record finalization run under step t+1's compute
	// window. With Staleness == 0 the records and final parameters are
	// bit-identical to the synchronous loop — only wall clock moves.
	// Mutually exclusive with Deadline.
	Pipeline bool
	// Staleness, when positive, is the bounded-staleness window k: the
	// gather target drops to max(1, waitFor−k) and a decoded step stays
	// correctable for k more steps — a straggler gradient arriving while
	// a later step gathers folds into the parameters as the exact
	// correction that retroactively includes it in its own step's
	// normalized update. Implies Pipeline; requires a flexible scheme.
	Staleness int
	// Metrics, when non-nil, receives live instrumentation (gather
	// latency, recovered fraction, liveness, evictions); serve it via the
	// admin package. One MasterMetrics per master.
	Metrics *MasterMetrics
	// Events, when non-nil, receives the structured event stream
	// (registrations, evictions, rejoins, degraded steps). Nil disables
	// event logging with no overhead beyond a branch per call site.
	Events *events.Log
	// Timeline, when non-nil, collects per-step and per-worker spans for
	// Chrome trace export. Nil disables span collection.
	Timeline *events.Timeline
	// Checkpoint, when non-nil, persists durable run snapshots (params,
	// step, decoder RNG position, cursors) every CheckpointEvery steps,
	// on graceful Stop, and once more — marked Completed — when the run
	// finishes. The same store carries the primary-liveness lease a warm
	// standby watches.
	Checkpoint *checkpoint.Store
	// CheckpointEvery is the checkpoint period in steps (default 10 when
	// Checkpoint is set).
	CheckpointEvery int
	// Restore resumes from Checkpoint's newest valid snapshot when one
	// exists; a fresh directory cold-starts. The resumed run's records
	// and final params are bit-identical to an uninterrupted run from the
	// checkpoint boundary on, provided the fleet and config match (see
	// DESIGN.md "Durability" for the exact conditions).
	Restore bool
	// LeaseTTL is the primary-liveness lease's time-to-live (default 5s).
	// The master renews every TTL/3; a standby takes over when the lease
	// lapses for a full TTL or is released on graceful exit.
	LeaseTTL time.Duration
	// Warm, when non-nil, starts the run from in-memory state instead of
	// step 0 or a durable checkpoint — the control plane's live
	// re-placement handoff: a quiesced job's params and next step move
	// straight into a successor master (possibly with a different
	// placement) without touching disk. Mutually exclusive with Restore.
	Warm *WarmState
	// OnPermanentEviction, when non-nil, is invoked (from a monitor
	// goroutine, never under the master's lock) once per worker
	// generation when a dead worker has stayed dead for PermanentAfter —
	// i.e. it missed every heartbeat for a full liveness timeout and then
	// failed to rejoin for PermanentAfter more. This is the control
	// plane's re-placement trigger; a mere hiccup that rejoins in time
	// never fires it.
	OnPermanentEviction func(worker, gen int)
	// PermanentAfter is how long a worker may stay dead (no rejoin)
	// before OnPermanentEviction fires. Defaults to 2× LivenessTimeout
	// when the hook is set.
	PermanentAfter time.Duration
}

// WarmState is the in-memory resume point a control plane hands a
// successor master during live re-placement. It is checkpoint-equivalent:
// a run resumed warm is bit-identical to one resumed from a durable
// checkpoint holding the same params and step (see the warm-handoff
// equivalence test).
type WarmState struct {
	// Params is the post-update parameter vector the previous master
	// generation stopped on (copied by NewMaster; the caller keeps
	// ownership).
	Params []float64
	// StartStep is the next step to broadcast.
	StartStep int
	// Generation is this master life's generation number (the previous
	// life's + 1), surfaced in hello acks and /healthz.
	Generation int
}

// workerState is the master's per-worker liveness view. gen increments on
// every (re-)registration so a stale reader goroutine cannot mark a
// reborn worker's fresh connection dead.
type workerState struct {
	c *conn
	// lanes are the extra binaryv2 gather-lane connections a sharding
	// worker attached (nil on unsharded registrations). They carry
	// gradient sub-frames only; control traffic stays on c.
	lanes    []*conn
	alive    bool
	lastSeen time.Time
	gen      int
	// deadSince stamps the moment alive flipped false; the permanent-
	// eviction monitor measures the no-rejoin window from it.
	deadSince time.Time
	// permFired latches OnPermanentEviction for this generation, so the
	// hook fires exactly once per death no matter how often the monitor
	// ticks. A rejoin installs a fresh workerState (new generation), which
	// re-arms the hook naturally.
	permFired bool
}

// Master orchestrates distributed training over TCP and survives worker
// loss: it tracks per-worker liveness, degrades the gather target when a
// flexible scheme can decode the alive subset, fails fast for rigid
// schemes, and accepts mid-run rejoins.
type Master struct {
	cfg MasterConfig
	ln  net.Listener

	mu        sync.Mutex
	workers   []*workerState
	done      bool // training over: reject further registrations
	running   bool // a step has been broadcast: rejoiners get it re-sent
	curStep   int
	curParams []float64
	rejoins   int
	degraded  int // degraded steps so far (live view for Health)

	grads  chan arrival
	wakeup chan struct{} // liveness-changed signal for the gather loop
	quit   chan struct{} // closed when Run finishes; unblocks readers

	// stop is closed by Stop(): the gather loop winds down at the next
	// step boundary, writes a final resumable checkpoint, and Run returns
	// with Result.Interrupted — without telling the fleet to exit, so a
	// successor master can adopt the same workers.
	stop     chan struct{}
	stopOnce sync.Once
	// generation counts master lives for this run: 0 on a cold start, +1
	// per restore or failover. Guarded by mu.
	generation int
	runID      string
	// lastCkptStep/lastCkptUnixNano feed the /healthz last-checkpoint
	// fields and the last-checkpoint-step gauge (-1/0 = none yet).
	lastCkptStep     atomic.Int64
	lastCkptUnixNano atomic.Int64

	// accepted[i] counts the steps in which worker i's gradient was
	// gathered before the cut-off — the per-worker availability view an
	// operator uses to spot enduring stragglers. Atomic because the
	// admin server's Health snapshot reads it while the training loop
	// writes.
	accepted []atomic.Int64
	// malformed counts gradients rejected before decoding (wrong
	// dimension, bad worker id) — a nonzero value flags a misconfigured
	// or hostile worker. Atomic for the same live-read reason.
	malformed atomic.Int64
	// attribution accumulates per-worker arrival/compute samples for the
	// straggler-attribution report.
	attribution *trace.Attribution

	// shardAsms holds one sub-frame assembler per worker id that ever
	// registered with sharding (lazily created; see shard.go).
	shardMu   sync.Mutex
	shardAsms map[int]*shardAssembler
}

// ArrivalCounts returns, per worker, how many steps gathered that worker's
// gradient. Valid after Run returns.
func (m *Master) ArrivalCounts() []int {
	out := make([]int, len(m.accepted))
	for i := range m.accepted {
		out[i] = int(m.accepted[i].Load())
	}
	return out
}

// Rejoins returns how many mid-run re-registrations the master accepted.
// Valid after Run returns.
func (m *Master) Rejoins() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rejoins
}

// MalformedGradients returns how many gradient envelopes were rejected
// before decoding. Valid after Run returns.
func (m *Master) MalformedGradients() int { return int(m.malformed.Load()) }

// AttributionReport returns the per-worker straggler attribution
// accumulated so far — chosen vs. ignored deliveries and compute vs.
// arrival latency percentiles. Safe to call at any time.
func (m *Master) AttributionReport() trace.AttributionReport {
	return m.attribution.Report()
}

// arrival is one gradient delivery tagged with its origin and timing:
// recvAt is stamped on the master's clock when the envelope is read, and
// the compute fields carry the worker's self-reported timing from the
// envelope (zero when the worker did not report).
type arrival struct {
	worker       int
	step         int
	coded        []float64
	recvAt       time.Time
	computeStart time.Time
	computeDur   time.Duration
}

// NewMaster starts listening; workers may connect immediately after.
func NewMaster(cfg MasterConfig) (*Master, error) {
	switch {
	case cfg.Strategy == nil:
		return nil, fmt.Errorf("cluster: nil strategy")
	case cfg.Model == nil:
		return nil, fmt.Errorf("cluster: nil model")
	case cfg.Data == nil:
		return nil, fmt.Errorf("cluster: nil dataset")
	case cfg.LearningRate <= 0:
		return nil, fmt.Errorf("cluster: need LearningRate > 0")
	case cfg.MaxSteps <= 0:
		return nil, fmt.Errorf("cluster: need MaxSteps > 0")
	}
	if cfg.AcceptTimeout <= 0 {
		cfg.AcceptTimeout = 10 * time.Second
	}
	if cfg.LivenessTimeout == 0 {
		cfg.LivenessTimeout = 15 * time.Second
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = defaultWriteTimeout
	}
	if cfg.WriteTimeout < 0 {
		cfg.WriteTimeout = 0
	}
	if cfg.Checkpoint != nil && cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 10
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 5 * time.Second
	}
	if cfg.Warm != nil && cfg.Restore {
		return nil, fmt.Errorf("cluster: Warm and Restore are mutually exclusive")
	}
	if cfg.Warm != nil && cfg.Warm.StartStep >= cfg.MaxSteps {
		return nil, fmt.Errorf("cluster: warm start step %d is past MaxSteps %d", cfg.Warm.StartStep, cfg.MaxSteps)
	}
	if cfg.OnPermanentEviction != nil && cfg.PermanentAfter <= 0 {
		if cfg.LivenessTimeout > 0 {
			cfg.PermanentAfter = 2 * cfg.LivenessTimeout
		} else {
			cfg.PermanentAfter = 30 * time.Second
		}
	}
	wire, err := ParseWire(cfg.Wire)
	if err != nil {
		return nil, err
	}
	cfg.Wire = wire
	if cfg.GatherShards < 0 || cfg.GatherShards > maxGatherShards {
		return nil, fmt.Errorf("cluster: need 0 ≤ GatherShards ≤ %d, got %d", maxGatherShards, cfg.GatherShards)
	}
	if cfg.Staleness < 0 {
		return nil, fmt.Errorf("cluster: need Staleness ≥ 0, got %d", cfg.Staleness)
	}
	if cfg.Staleness > 0 {
		cfg.Pipeline = true
		if cfg.Strategy.WaitFor(1) == cfg.Strategy.WaitFor(cfg.Strategy.N()) {
			return nil, fmt.Errorf("cluster: Staleness requires a flexible scheme; %s is rigid", cfg.Strategy.Name())
		}
	}
	if cfg.Pipeline && cfg.Deadline > 0 {
		return nil, fmt.Errorf("cluster: Pipeline and Deadline are mutually exclusive")
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	if cfg.ComputePar < 0 {
		return nil, fmt.Errorf("cluster: need ComputePar ≥ 0, got %d", cfg.ComputePar)
	}
	if cfg.DecodeCache > 0 {
		if dc, ok := cfg.Strategy.(engine.DecodeCacher); ok {
			dc.SetDecodeCacheHooks(cfg.Metrics.decodeCacheHooks())
			dc.EnableDecodeCache(cfg.DecodeCache)
		}
	}
	if cfg.IncrementalDecode {
		if id, ok := cfg.Strategy.(engine.IncrementalDecoder); ok {
			id.SetIncrementalHooks(cfg.Metrics.incrementalDecodeHooks())
			id.EnableIncrementalDecode()
		}
	}
	m := &Master{cfg: cfg, ln: ln, attribution: trace.NewAttribution(cfg.Strategy.N()),
		stop: make(chan struct{})}
	m.lastCkptStep.Store(-1)
	m.runID = fmt.Sprintf("run-%d", time.Now().UnixNano())
	if cfg.Warm != nil {
		m.generation = cfg.Warm.Generation
	}
	if cfg.Checkpoint != nil {
		cfg.Checkpoint.SetSkipHook(func(file string, reason error) {
			m.cfg.Metrics.markRestoreSkipped()
			m.cfg.Events.Warn("master.checkpoint_restore_skipped", "corrupt checkpoint skipped during restore",
				events.NoStep, events.NoWorker, events.Fields{"file": file, "reason": reason.Error()})
		})
	}
	cfg.Metrics.bind(m)
	return m, nil
}

// Stop requests a graceful shutdown: the training loop winds down at the
// next step boundary (or mid-gather, abandoning the in-flight step), writes
// a final resumable checkpoint when one is configured, and Run returns with
// Result.Interrupted set. The fleet is NOT told to exit — workers keep
// their reconnect loops alive so a restarted or standby master can adopt
// them. Safe to call from any goroutine, any number of times, including
// before Run.
func (m *Master) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
}

// errInterrupted is the gather loops' sentinel for "Stop() was called":
// the training loop converts it into a checkpoint + clean return rather
// than an error.
var errInterrupted = errors.New("cluster: run interrupted")

// Health returns a point-in-time snapshot of the master's liveness view —
// the /healthz payload. Safe to call from any goroutine at any time
// (before Run it reports an empty worker list).
func (m *Master) Health() MasterHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	h := MasterHealth{
		Running:            m.running && !m.done,
		Step:               m.curStep,
		Generation:         m.generation,
		DegradedSteps:      m.degraded,
		Rejoins:            m.rejoins,
		MalformedGradients: m.malformed.Load(),
		LastCheckpointStep: int(m.lastCkptStep.Load()),
		Workers:            make([]WorkerHealthView, len(m.workers)),
	}
	if at := m.lastCkptUnixNano.Load(); at > 0 {
		h.LastCheckpointAgeSeconds = now.Sub(time.Unix(0, at)).Seconds()
	} else {
		h.LastCheckpointAgeSeconds = -1
	}
	h.GatherP50Seconds, h.GatherP95Seconds = m.cfg.Metrics.gatherQuantiles()
	for i, ws := range m.workers {
		v := WorkerHealthView{ID: i, LastSeenAgeSeconds: -1, Generation: -1}
		if i < len(m.accepted) {
			v.AcceptedSteps = m.accepted[i].Load()
		}
		if ws != nil {
			v.Alive = ws.alive
			v.LastSeenAgeSeconds = now.Sub(ws.lastSeen).Seconds()
			v.Generation = ws.gen
			if ws.alive {
				h.AliveWorkers++
			}
		}
		h.Workers[i] = v
	}
	return h
}

// maxHeartbeatAge returns the age in seconds of the stalest alive
// worker's last message (0 when no worker is alive) — the scrape-time
// heartbeat-lag gauge.
func (m *Master) maxHeartbeatAge() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	now := time.Now()
	max := 0.0
	for _, ws := range m.workers {
		if ws != nil && ws.alive {
			if age := now.Sub(ws.lastSeen).Seconds(); age > max {
				max = age
			}
		}
	}
	return max
}

// Addr returns the actual listen address (useful with ":0").
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Run accepts the n workers, trains, shuts the workers down, and returns
// the run result. It blocks until training finishes or fails, and — unlike
// a naive gather — it cannot hang forever on dead workers: connection loss
// and liveness timeouts feed the gather loop, which degrades or errors out.
func (m *Master) Run() (*engine.Result, error) {
	n := m.cfg.Strategy.N()
	m.cfg.Events.Info("master.run_started", "master listening", events.NoStep, events.NoWorker,
		events.Fields{"addr": m.Addr(), "scheme": m.cfg.Strategy.Name(), "workers": n})
	m.cfg.Timeline.SetThreadName(0, "master")
	for i := 0; i < n; i++ {
		m.cfg.Timeline.SetThreadName(i+1, fmt.Sprintf("worker %d", i))
	}
	m.grads = make(chan arrival, 8*n)
	m.wakeup = make(chan struct{}, 1)
	m.quit = make(chan struct{})
	// The admin server may snapshot Health concurrently with Run's setup,
	// so the shared slices appear under the lock.
	m.mu.Lock()
	m.workers = make([]*workerState, n)
	m.accepted = make([]atomic.Int64, n)
	m.mu.Unlock()

	var readers sync.WaitGroup
	acceptDone := make(chan struct{})
	go func() {
		defer close(acceptDone)
		m.acceptLoop(&readers)
	}()
	if m.cfg.LivenessTimeout > 0 {
		go m.monitorLiveness()
	}
	if m.cfg.OnPermanentEviction != nil {
		go m.monitorPermanentEvictions()
	}
	leaseDone := make(chan struct{})
	if m.cfg.Checkpoint != nil {
		go func() {
			defer close(leaseDone)
			m.renewLease()
		}()
	} else {
		close(leaseDone)
	}

	var res *engine.Result
	err := m.awaitFleet(n)
	if err == nil {
		res, err = m.trainLoop()
	}
	interrupted := res != nil && res.Interrupted
	switch {
	case err != nil:
		m.cfg.Events.Error("master.run_finished", "training failed", events.NoStep, events.NoWorker,
			events.Fields{"error": err.Error()})
	case interrupted:
		m.cfg.Events.Info("master.interrupted", "run stopped gracefully; fleet left running", events.NoStep,
			events.NoWorker, events.Fields{"steps": res.Run.Steps()})
	default:
		m.cfg.Events.Info("master.run_finished", "training finished", events.NoStep, events.NoWorker,
			events.Fields{"steps": res.Run.Steps(), "converged": res.Converged})
	}

	// Shutdown order matters: refuse further registrations, say goodbye,
	// stop accepting, then close every connection so readers drain. An
	// interrupted master says no goodbye — the workers' reconnect loops
	// keep the fleet alive for a successor master.
	m.mu.Lock()
	m.done = true
	m.mu.Unlock()
	if !interrupted {
		m.broadcast(&Envelope{Kind: MsgStop})
	}
	close(m.quit)
	<-leaseDone
	if m.cfg.Checkpoint != nil {
		// Released only on graceful exit: a standby may take over
		// immediately instead of waiting out the TTL. A crashed master
		// never reaches this line, which is the point of the lease.
		if lerr := m.cfg.Checkpoint.ReleaseLease(); lerr != nil {
			m.cfg.Events.Warn("master.lease_release_failed", "could not remove lease file",
				events.NoStep, events.NoWorker, events.Fields{"error": lerr.Error()})
		}
	}
	m.ln.Close()
	<-acceptDone
	m.closeAll()
	readers.Wait()
	return res, err
}

// renewLease marks this master as the live primary in the checkpoint
// directory until Run shuts down. Renewal failures are logged, not fatal —
// a wedged disk should not kill training, though it may trigger a standby.
func (m *Master) renewLease() {
	ttl := m.cfg.LeaseTTL
	holder := fmt.Sprintf("pid%d@%s", os.Getpid(), m.Addr())
	write := func() {
		if err := m.cfg.Checkpoint.WriteLease(holder, ttl); err != nil {
			m.cfg.Events.Warn("master.lease_renew_failed", "could not renew liveness lease",
				events.NoStep, events.NoWorker, events.Fields{"error": err.Error()})
		}
	}
	write()
	t := time.NewTicker(ttl / 3)
	defer t.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-t.C:
			write()
		}
	}
}

// acceptLoop serves registrations (initial and rejoin) until the listener
// closes.
func (m *Master) acceptLoop(readers *sync.WaitGroup) {
	for {
		raw, err := m.ln.Accept()
		if err != nil {
			return // listener closed: Run is shutting down
		}
		m.handshake(raw, readers)
	}
}

// handshake validates a MsgHello and registers (or re-registers) the
// worker. Invalid or duplicate registrations close the connection but keep
// the cluster running — a reborn worker must not be able to kill the
// master, and neither must a stranger.
func (m *Master) handshake(raw net.Conn, readers *sync.WaitGroup) {
	n := m.cfg.Strategy.N()
	c := newConn(raw, m.cfg.WriteTimeout, m.cfg.Metrics.sentCounter())
	_ = raw.SetReadDeadline(time.Now().Add(2 * time.Second))
	hello, err := c.recv()
	if err != nil || hello.Kind != MsgHello || hello.Worker < 0 || hello.Worker >= n {
		_ = c.close()
		return
	}
	_ = raw.SetReadDeadline(time.Time{})
	id := hello.Worker

	// Terminal reject before any codec negotiation, so the reply is always
	// a plain gob message the worker can parse: a done master will never
	// run another step, and the worker must stop burning its redial budget
	// (fleet workers return to the control plane's pool on this signal).
	m.mu.Lock()
	if m.done {
		m.mu.Unlock()
		_ = c.send(&Envelope{Kind: MsgJobGone})
		_ = c.close()
		return
	}
	m.mu.Unlock()

	// Extra gather lanes attach through the same listener: a binaryv2
	// hello tagged with a lane index joins an existing registration
	// instead of creating one.
	if hello.Wire == WireBinary2 && hello.Shard > 0 {
		m.attachLane(c, hello, readers)
		return
	}

	// Codec negotiation, completed before the connection becomes visible
	// to broadcasts and readers so no message can straddle the switch. A
	// worker that proposed an upgrade gets a gob hello ack naming the
	// chosen codec; a pre-negotiation hello (empty Wire) gets no ack and
	// stays on gob — exactly the legacy exchange. A binaryv2 proposal
	// carries the worker's desired lane count; the ack answers with the
	// granted one (possibly negotiated down to a single binaryv1 stream).
	wire := WireGob
	shards := 1
	if hello.Wire != "" {
		switch {
		case hello.Wire == WireBinary2 && m.cfg.Wire != WireGob:
			shards = grantShards(hello.Shards, m.cfg.GatherShards)
			if shards > 1 {
				wire = WireBinary2
			} else {
				wire = WireBinary
			}
		case hello.Wire == WireBinary && m.cfg.Wire != WireGob:
			wire = WireBinary
		}
		m.mu.Lock()
		masterGen := m.generation
		m.mu.Unlock()
		// The ack carries the master's run generation so a resuming worker
		// learns it is talking to a restored (or failed-over) master.
		ack := &Envelope{Kind: MsgHello, Worker: id, Wire: wire, Gen: masterGen}
		if wire == WireBinary2 {
			ack.Shards = shards
		}
		if err := c.send(ack); err != nil {
			_ = c.close()
			return
		}
		switch wire {
		case WireBinary2:
			// Every gradient on a v2 connection is a sub-frame: decode its
			// payload straight into the shard assembler's gather buffer.
			c.gradReserve = m.shardAsmFor(id).reserveFor
			c.upgradeV2(false)
		case WireBinary:
			c.upgrade(false) // gradient ownership transfers: no vector reuse
		}
	}
	m.cfg.Metrics.markWire(wire)

	m.mu.Lock()
	if m.done {
		m.mu.Unlock()
		// Terminal reject: this master will never run another step, so a
		// reconnecting worker must stop burning its redial budget. Sent
		// best-effort in gob (the connection never upgraded).
		_ = c.send(&Envelope{Kind: MsgJobGone})
		_ = c.close()
		return
	}
	prev := m.workers[id]
	if prev != nil && prev.alive {
		// Duplicate id on a live connection: refuse the newcomer.
		m.mu.Unlock()
		_ = c.close()
		return
	}
	gen := 0
	if prev != nil {
		gen = prev.gen + 1
		m.rejoins++
		m.cfg.Metrics.markRejoin()
	}
	m.workers[id] = &workerState{c: c, alive: true, lastSeen: time.Now(), gen: gen}
	m.cfg.Metrics.setWorkerAlive(id, true)
	step := events.NoStep
	if m.running {
		step = m.curStep
	}
	var resume *Envelope
	if m.running {
		resume = &Envelope{Kind: MsgStep, Step: m.curStep, Params: m.curParams}
	}
	m.mu.Unlock()

	if gen > 0 {
		m.cfg.Events.Info("master.worker_rejoined", "worker re-registered mid-run", step, id,
			events.Fields{"generation": gen, "wire": wire})
	} else {
		m.cfg.Events.Info("master.worker_registered", "worker registered", step, id,
			events.Fields{"wire": wire})
	}

	m.pokeLiveness()
	if resume != nil {
		// Mid-run rejoin: hand the worker the in-flight step immediately
		// so it can participate without waiting for the next broadcast.
		if err := c.send(resume); err != nil {
			_ = c.close() // the reader below will mark it dead
		}
	}
	readers.Add(1)
	go m.readFrom(id, gen, c, readers)
}

// readFrom pumps one worker connection: heartbeats refresh lastSeen,
// gradients are forwarded to the gather loop, and connection loss marks the
// worker dead and wakes the gather loop — the "reader-exit notification"
// that keeps trainLoop from blocking forever on a dead fleet.
func (m *Master) readFrom(id, gen int, c *conn, readers *sync.WaitGroup) {
	defer readers.Done()
	for {
		e, err := c.recv()
		if err != nil {
			break
		}
		m.mu.Lock()
		if ws := m.workers[id]; ws != nil && ws.gen == gen {
			ws.lastSeen = time.Now()
		}
		m.mu.Unlock()
		if e.Kind == MsgGradient {
			if !m.deliverGradient(id, e) {
				return
			}
		}
	}
	m.mu.Lock()
	ws := m.workers[id]
	current := ws != nil && ws.gen == gen
	var lanes []*conn
	if current {
		ws.alive = false
		ws.deadSince = time.Now()
		lanes = ws.lanes
	}
	step := events.NoStep
	if m.running {
		step = m.curStep
	}
	done := m.done
	m.mu.Unlock()
	if current {
		m.cfg.Metrics.setWorkerAlive(id, false)
		if !done {
			// The single authoritative eviction event: every path that kills
			// a connection (remote close, liveness timeout, failed send)
			// funnels through this reader exit.
			m.cfg.Events.Warn("master.worker_evicted", "worker connection lost", step, id,
				events.Fields{"generation": gen, "reason": "connection_lost"})
		}
		_ = c.close()
		for _, lc := range lanes {
			_ = lc.close()
		}
		m.pokeLiveness()
	}
}

// deliverGradient routes one authenticated gradient envelope to the gather
// loop: whole-vector gradients forward directly, sub-frames commit to the
// worker's shard assembler and forward once the last span lands. Returns
// false when the master is shutting down.
func (m *Master) deliverGradient(id int, e *Envelope) bool {
	if e.Total > 0 {
		if e.Coded == nil {
			// Declined reservation: a stale, overlapping, or mismatched
			// sub-frame whose payload bytes were drained undecoded.
			return true
		}
		m.cfg.Metrics.markSubFrames(1)
		full, ok := m.shardAsmFor(id).commit(e)
		if !ok {
			return true // more spans outstanding, or the step was evicted
		}
		e = &Envelope{Kind: MsgGradient, Worker: id, Step: e.Step, Coded: full,
			ComputeStartUnixNano: e.ComputeStartUnixNano, ComputeDurNanos: e.ComputeDurNanos}
	}
	a := arrival{worker: id, step: e.Step, coded: e.Coded, recvAt: time.Now(),
		computeDur: time.Duration(e.ComputeDurNanos)}
	if e.ComputeStartUnixNano > 0 {
		a.computeStart = time.Unix(0, e.ComputeStartUnixNano)
	}
	// The arrival is attributed to the authenticated connection id, not
	// the envelope's claim, so a worker cannot spoof another.
	select {
	case m.grads <- a:
	case <-m.quit:
		return false
	}
	return true
}

// pokeLiveness nudges whoever is blocked on the gather/accept select to
// recompute the alive set. The channel holds one pending signal; dropping
// extras is fine because the consumer recomputes from scratch.
func (m *Master) pokeLiveness() {
	select {
	case m.wakeup <- struct{}{}:
	default:
	}
}

// monitorLiveness closes connections that have been silent for longer than
// LivenessTimeout; the reader then marks the worker dead. Heartbeats keep
// healthy-but-idle workers off this path.
func (m *Master) monitorLiveness() {
	interval := m.cfg.LivenessTimeout / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-t.C:
			now := time.Now()
			type victim struct {
				id     int
				c      *conn
				silent time.Duration
			}
			var evict []victim
			m.mu.Lock()
			for id, ws := range m.workers {
				if ws != nil && ws.alive && now.Sub(ws.lastSeen) > m.cfg.LivenessTimeout {
					evict = append(evict, victim{id: id, c: ws.c, silent: now.Sub(ws.lastSeen)})
				}
			}
			step := events.NoStep
			if m.running {
				step = m.curStep
			}
			m.mu.Unlock()
			for _, v := range evict {
				m.cfg.Metrics.markEviction()
				m.cfg.Events.Warn("master.worker_liveness_timeout", "no message within liveness timeout",
					step, v.id, events.Fields{"silent": v.silent.String(), "timeout": m.cfg.LivenessTimeout.String()})
				_ = v.c.close()
			}
		}
	}
}

// monitorPermanentEvictions watches for workers that died and then failed
// to rejoin for PermanentAfter — the signal that a worker is gone for good
// (machine loss) rather than hiccuping (network blip, master failover).
// Each death fires OnPermanentEviction exactly once per worker generation:
// the permFired latch sits on the workerState a rejoin replaces, so a
// reborn worker re-arms the hook while repeated monitor ticks on the same
// corpse do not re-fire it.
func (m *Master) monitorPermanentEvictions() {
	interval := m.cfg.PermanentAfter / 4
	if interval < 5*time.Millisecond {
		interval = 5 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.quit:
			return
		case <-t.C:
			type death struct{ id, gen int }
			var fired []death
			now := time.Now()
			m.mu.Lock()
			if m.done {
				m.mu.Unlock()
				return
			}
			step := events.NoStep
			if m.running {
				step = m.curStep
			}
			for id, ws := range m.workers {
				if ws != nil && !ws.alive && !ws.permFired && !ws.deadSince.IsZero() &&
					now.Sub(ws.deadSince) > m.cfg.PermanentAfter {
					ws.permFired = true
					fired = append(fired, death{id: id, gen: ws.gen})
				}
			}
			m.mu.Unlock()
			for _, d := range fired {
				m.cfg.Metrics.markPermanentEviction()
				m.cfg.Events.Warn("master.worker_permanently_evicted",
					"worker stayed dead past the permanent-eviction window", step, d.id,
					events.Fields{"generation": d.gen, "window": m.cfg.PermanentAfter.String()})
				m.cfg.OnPermanentEviction(d.id, d.gen)
			}
		}
	}
}

// awaitFleet blocks until all n workers are registered and alive, or the
// accept timeout expires.
func (m *Master) awaitFleet(n int) error {
	deadline := time.NewTimer(m.cfg.AcceptTimeout)
	defer deadline.Stop()
	for {
		if alive := m.countAlive(); alive >= n {
			return nil
		}
		select {
		case <-m.wakeup:
		case <-deadline.C:
			return fmt.Errorf("cluster: accept (have %d/%d workers): timed out after %v",
				m.countAlive(), n, m.cfg.AcceptTimeout)
		}
	}
}

// countAlive returns the number of workers with a live connection.
func (m *Master) countAlive() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	alive := 0
	for _, ws := range m.workers {
		if ws != nil && ws.alive {
			alive++
		}
	}
	return alive
}

// achievable returns the most gradients the current step can still gather:
// those already received plus the alive workers yet to deliver. (A worker
// that uploaded and then died still contributed.)
func (m *Master) achievable(avail *bitset.Set) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	count := avail.Len()
	for id, ws := range m.workers {
		if ws != nil && ws.alive && !avail.Contains(id) {
			count++
		}
	}
	return count
}

// trainState carries the setup shared by the synchronous and pipelined
// step loops: scheme geometry, the (possibly restored) parameter vector,
// the loss-evaluation pool, and the step to start from.
type trainState struct {
	st          engine.Strategy
	n           int
	waitFor     int
	flexible    bool
	useDeadline bool
	params      []float64
	dim         int
	all         []dataset.Sample
	pool        *model.ParallelGrad
	startStep   int
}

func (m *Master) trainLoop() (*engine.Result, error) {
	res := &engine.Result{}
	ts, finished, err := m.setupTrain(res)
	if err != nil || finished {
		return res, err
	}
	// The per-step full-dataset loss is the master's only heavy compute;
	// shard it across a long-lived pool.
	ts.pool = model.NewParallelGrad(m.cfg.ComputePar)
	defer ts.pool.Close()
	m.cfg.Metrics.setComputeShards(ts.pool.Par())
	if m.cfg.Pipeline {
		return m.runPipelined(ts, res)
	}
	return m.runSync(ts, res)
}

// setupTrain resolves the scheme geometry and the starting parameters —
// cold start, warm handoff, or durable-checkpoint restore. finished is
// true when a completed checkpoint already answers the run (res is then
// fully populated).
func (m *Master) setupTrain(res *engine.Result) (*trainState, bool, error) {
	st := m.cfg.Strategy
	n := st.N()
	ts := &trainState{st: st, n: n, waitFor: st.WaitFor(m.cfg.W)}
	// Deadline mode and graceful degradation apply only to flexible
	// schemes: a rigid scheme reports the same WaitFor for every target
	// and cannot decode a smaller subset.
	ts.flexible = st.WaitFor(1) != st.WaitFor(n)
	ts.useDeadline = m.cfg.Deadline > 0 && ts.flexible
	ts.params = m.cfg.Model.InitParams(m.cfg.Seed)
	ts.dim = len(ts.params)
	ts.all = make([]dataset.Sample, m.cfg.Data.Len())
	for i := range ts.all {
		ts.all[i] = m.cfg.Data.At(i)
	}

	if m.cfg.Warm != nil {
		// Live re-placement handoff: resume from the in-memory state the
		// previous master generation quiesced on. Checkpoint-equivalent —
		// same params, same next step — just without the disk round trip.
		if len(m.cfg.Warm.Params) != ts.dim {
			return ts, false, fmt.Errorf("cluster: warm params dim %d, model dim %d", len(m.cfg.Warm.Params), ts.dim)
		}
		ts.params = append([]float64(nil), m.cfg.Warm.Params...)
		ts.startStep = m.cfg.Warm.StartStep
		m.cfg.Events.Info("master.warm_resumed", "resumed from in-memory handoff state", ts.startStep,
			events.NoWorker, events.Fields{"generation": m.cfg.Warm.Generation})
	}
	if m.cfg.Restore && m.cfg.Checkpoint != nil {
		var cst checkpoint.State
		info, err := m.cfg.Checkpoint.Latest(&cst)
		switch {
		case errors.Is(err, checkpoint.ErrNoCheckpoint):
			// Fresh directory: cold start.
		case err != nil:
			return ts, false, fmt.Errorf("cluster: restore: %w", err)
		default:
			if cst.Scheme != st.Name() || cst.N != n || cst.Seed != m.cfg.Seed {
				return ts, false, fmt.Errorf("cluster: checkpoint %s is for scheme=%q n=%d seed=%d, config says scheme=%q n=%d seed=%d",
					info.File, cst.Scheme, cst.N, cst.Seed, st.Name(), n, m.cfg.Seed)
			}
			ts.params = checkpoint.BytesToFloat64s(cst.Params)
			ts.startStep = cst.Step
			if rs, ok := st.(engine.RandStateful); ok {
				rs.RestoreRandState(cst.DecoderSeed, cst.DecoderDraws)
			}
			m.mu.Lock()
			m.generation = cst.Generation + 1
			if cst.RunID != "" {
				m.runID = cst.RunID
			}
			gen := m.generation
			m.mu.Unlock()
			m.lastCkptStep.Store(int64(cst.Step))
			m.lastCkptUnixNano.Store(cst.SavedAtUnixNano)
			m.cfg.Events.Info("master.checkpoint_restored", "resumed from durable checkpoint", cst.Step,
				events.NoWorker, events.Fields{"file": info.File, "generation": gen, "completed": cst.Completed})
			if cst.Completed {
				res.Params = ts.params
				res.Converged = cst.Step < m.cfg.MaxSteps
				if res.Converged {
					res.StepsToThreshold = cst.Step
				} else {
					res.StepsToThreshold = m.cfg.MaxSteps
				}
				return ts, true, nil
			}
		}
	}
	return ts, false, nil
}

// runSync is the classic strictly phase-serialized step loop: broadcast,
// gather, decode, update, loss, record — nothing overlaps. This is the
// default path and every step of it is pinned bit-identical by the
// equivalence suites.
func (m *Master) runSync(ts *trainState, res *engine.Result) (*engine.Result, error) {
	st, n := ts.st, ts.n
	waitFor, flexible, useDeadline := ts.waitFor, ts.flexible, ts.useDeadline
	params, dim, all, pool := ts.params, ts.dim, ts.all, ts.pool
	startStep := ts.startStep
	saveCheckpoint := func(nextStep, records int, completed bool) {
		m.writeCheckpoint(params, nextStep, records, completed)
	}

	interrupted := func(step, records int) {
		res.Interrupted = true
		if m.cfg.Checkpoint != nil {
			saveCheckpoint(step, records, false)
		}
	}
	for step := startStep; step < m.cfg.MaxSteps; step++ {
		select {
		case <-m.stop:
			// Stop before broadcasting a new step: params are exactly the
			// post-step-(step-1) state, so the checkpoint resumes at step.
			interrupted(step, res.Run.Steps())
			res.Params = params
			return res, nil
		default:
		}
		m.mu.Lock()
		m.running = true
		m.curStep = step
		// Rejoin handshakes read curParams concurrently with the AXPY
		// update below, so they get their own copy.
		m.curParams = append([]float64(nil), params...)
		m.mu.Unlock()
		bcastStart := time.Now()
		m.broadcast(&Envelope{Kind: MsgStep, Step: step, Params: params})
		stepStart := time.Now()

		avail := bitset.New(n)
		coded := make([][]float64, n)
		accept := func(a arrival) {
			if a.step != step || a.worker < 0 || a.worker >= n || avail.Contains(a.worker) {
				// Stale or duplicate delivery: the work was done but the
				// master cannot use it — the "ignored" column of the
				// attribution report. A duplicate's arrival is measured
				// against the current broadcast; a stale gradient has no
				// valid baseline, so its latency stays unmeasured (zero).
				if a.worker >= 0 && a.worker < n {
					s := trace.ArrivalSample{Worker: a.worker, Step: step, Compute: a.computeDur}
					if a.step == step {
						s.Arrival = a.recvAt.Sub(stepStart)
					}
					m.attribution.ObserveIgnored(s)
				}
				return
			}
			if len(a.coded) != dim {
				// A malformed envelope must never reach Recover/AXPY,
				// where a wrong-dimension vector panics the master.
				m.malformed.Add(1)
				m.cfg.Metrics.markMalformed()
				m.cfg.Events.Warn("master.malformed_gradient", "gradient rejected before decode",
					step, a.worker, events.Fields{"got_dim": len(a.coded), "want_dim": dim})
				return
			}
			avail.Add(a.worker)
			coded[a.worker] = a.coded
			m.accepted[a.worker].Add(1)
			m.cfg.Metrics.markAccepted(a.worker)
			m.attribution.ObserveAccepted(trace.ArrivalSample{
				Worker: a.worker, Step: step,
				Compute: a.computeDur, Arrival: a.recvAt.Sub(stepStart),
			})
			if a.computeDur > 0 && !a.computeStart.IsZero() {
				// The worker's self-reported compute interval, rendered on
				// its own track. The start stamp is the worker's clock —
				// on one machine that is the same clock; across machines
				// skew shifts the span without changing its length.
				m.cfg.Timeline.Add(events.Span{
					Name: "compute", Cat: "compute", TID: a.worker + 1,
					Start: a.computeStart, Dur: a.computeDur,
					Args: map[string]any{"step": step},
				})
			}
		}

		var degraded bool
		var gatherErr error
		if useDeadline {
			gatherErr = m.gatherDeadline(step, n, avail, accept)
		} else {
			degraded, gatherErr = m.gatherFastest(step, n, waitFor, flexible, avail, accept)
		}
		if errors.Is(gatherErr, errInterrupted) {
			// Stopped mid-gather: params are still the pre-update state of
			// this step, so the checkpoint replays step in the next life.
			interrupted(step, res.Run.Steps())
			res.Params = params
			return res, nil
		}
		if gatherErr != nil {
			return res, gatherErr
		}
		gatherEnd := time.Now()
		elapsed := gatherEnd.Sub(stepStart)
		if degraded {
			m.mu.Lock()
			m.degraded++
			m.mu.Unlock()
			m.cfg.Events.Warn("master.step_degraded", "gather target shrank below configured wait",
				step, events.NoWorker, events.Fields{"gathered": avail.Len(), "configured": waitFor})
		}

		ghat, recParts, err := st.Recover(avail, coded)
		if err != nil {
			return res, fmt.Errorf("cluster: step %d: %w", step, err)
		}
		decodeEnd := time.Now()
		recovered := len(recParts)
		m.cfg.Metrics.observeStep(elapsed, float64(recovered)/float64(n), degraded)
		if recovered > 0 {
			linalg.AXPY(params, -m.cfg.LearningRate/float64(recovered), ghat)
		}
		loss := pool.Loss(params, m.cfg.Model, all)
		updateEnd := time.Now()
		if m.cfg.Timeline != nil {
			stepArgs := map[string]any{"gathered": avail.Len(), "recovered": recovered, "degraded": degraded}
			m.cfg.Timeline.Add(events.Span{Name: fmt.Sprintf("step %d", step), Cat: "step",
				Start: bcastStart, Dur: updateEnd.Sub(bcastStart), Args: stepArgs})
			m.cfg.Timeline.Add(events.Span{Name: "broadcast", Cat: "phase",
				Start: bcastStart, Dur: stepStart.Sub(bcastStart)})
			m.cfg.Timeline.Add(events.Span{Name: "gather", Cat: "phase",
				Start: stepStart, Dur: elapsed})
			m.cfg.Timeline.Add(events.Span{Name: "decode", Cat: "phase",
				Start: gatherEnd, Dur: decodeEnd.Sub(gatherEnd)})
			m.cfg.Timeline.Add(events.Span{Name: "update", Cat: "phase",
				Start: decodeEnd, Dur: updateEnd.Sub(decodeEnd)})
		}
		m.cfg.Events.Debug("master.step_completed", "step finished", step, events.NoWorker,
			events.Fields{"gathered": avail.Len(), "recovered": recovered,
				"degraded": degraded, "loss": loss, "elapsed": elapsed.String()})
		res.Run.Append(trace.StepRecord{
			Step:              step,
			Available:         avail.Len(),
			Chosen:            recovered / st.C(),
			RecoveredFraction: float64(recovered) / float64(n),
			Partitions:        recParts,
			Alive:             m.countAlive(),
			Degraded:          degraded,
			Loss:              loss,
			Elapsed:           elapsed,
		})
		if m.cfg.LossThreshold > 0 && loss <= m.cfg.LossThreshold {
			res.Converged = true
			res.StepsToThreshold = step + 1
			break
		}
		if m.cfg.Checkpoint != nil && (step+1)%m.cfg.CheckpointEvery == 0 && step+1 < m.cfg.MaxSteps {
			saveCheckpoint(step+1, res.Run.Steps(), false)
		}
	}
	if !res.Converged {
		res.StepsToThreshold = m.cfg.MaxSteps
	}
	res.Params = params
	if m.cfg.Checkpoint != nil {
		saveCheckpoint(startStep+res.Run.Steps(), res.Run.Steps(), true)
	}
	return res, nil
}

// runPipelined is the overlapped step loop: step t+1's broadcast goes out
// the moment step t's update lands, and step t's loss evaluation + record
// finalization run while the fleet is already computing t+1. With
// Staleness == 0 the schedule is the only thing that changes — the gather
// target, every record, and the final parameters are bit-identical to
// runSync, because the deferred loss is evaluated on the same parameter
// bits (a broadcast writes nothing). With Staleness = k > 0 the gather
// target drops to max(1, waitFor−k) and each decoded step stays pending
// for k steps: a straggler gradient arriving while a later step gathers
// folds into the current parameters as the exact correction that
// retroactively includes it in its own step's normalized update.
func (m *Master) runPipelined(ts *trainState, res *engine.Result) (*engine.Result, error) {
	st, n := ts.st, ts.n
	params, dim, all, pool := ts.params, ts.dim, ts.all, ts.pool
	startStep := ts.startStep
	target := ts.waitFor
	if m.cfg.Staleness > 0 {
		if target -= m.cfg.Staleness; target < 1 {
			target = 1
		}
	}
	saveCheckpoint := func(nextStep, records int, completed bool) {
		m.writeCheckpoint(params, nextStep, records, completed)
	}
	interrupted := func(step, records int) {
		res.Interrupted = true
		if m.cfg.Checkpoint != nil {
			saveCheckpoint(step, records, false)
		}
	}

	// pendingStep is a decoded-but-still-correctable step: its owned
	// gradient sum, normalizer, and covered partitions stick around for
	// Staleness more steps so late stragglers can fold in.
	type pendingStep struct {
		step  int
		avail *bitset.Set // workers already counted
		mask  *bitset.Set // partitions already counted
		g     []float64   // owned decoded sum over mask
		r     int         // partitions in g (the update's normalizer)
	}
	var pending []*pendingStep
	folded := 0 // folds landed during the current gather

	// tryFold retroactively includes a straggler's gradient in its own
	// step's update. The parameters already carry −lr·G/r for that step;
	// folding the late sum g (c fresh partitions) means applying the
	// difference −lr·((G+g)/(r+c) − G/r) now — exact, because SGD updates
	// compose additively on the parameter vector.
	tryFold := func(a arrival) bool {
		if m.cfg.Staleness == 0 || a.worker < 0 || a.worker >= n || len(a.coded) != dim {
			return false
		}
		var p *pendingStep
		for _, q := range pending {
			if q.step == a.step {
				p = q
				break
			}
		}
		if p == nil || p.avail.Contains(a.worker) {
			return false
		}
		parts := st.Partitions(a.worker)
		for _, pt := range parts {
			if p.mask.Contains(pt) {
				return false // overlaps the counted set: cannot fold exactly
			}
		}
		rOld, rNew := float64(p.r), float64(p.r+len(parts))
		lr := m.cfg.LearningRate
		for i, g := range a.coded {
			ng := p.g[i] + g
			old := 0.0
			if p.r > 0 {
				old = p.g[i] / rOld
			}
			params[i] -= lr * (ng/rNew - old)
			p.g[i] = ng
		}
		p.r += len(parts)
		p.avail.Add(a.worker)
		for _, pt := range parts {
			p.mask.Add(pt)
		}
		folded++
		m.accepted[a.worker].Add(1)
		m.cfg.Metrics.markAccepted(a.worker)
		m.cfg.Metrics.markFolded()
		m.attribution.ObserveAccepted(trace.ArrivalSample{Worker: a.worker, Step: a.step, Compute: a.computeDur})
		m.cfg.Events.Debug("master.gradient_folded", "late gradient folded into parameters",
			a.step, a.worker, events.Fields{"partitions": len(parts), "normalizer": p.r})
		return true
	}

	// deferredStep is a completed step whose loss evaluation and record
	// append are finalized one iteration later, under the next step's
	// compute window.
	type deferredStep struct {
		step, avail, recovered, aliveAt, folded     int
		recParts                                    []int
		degraded                                    bool
		elapsed                                     time.Duration
		bcastStart, stepStart, gatherEnd, decodeEnd time.Time
		updateEnd                                   time.Time
	}
	var prev *deferredStep
	// finalize evaluates the deferred step's loss on the current
	// parameters — identical bits to evaluating before the next broadcast
	// — appends its record, and handles convergence and periodic
	// checkpoints. Returns true when the run converged.
	finalize := func(d *deferredStep) bool {
		loss := pool.Loss(params, m.cfg.Model, all)
		lossEnd := time.Now()
		if m.cfg.Timeline != nil {
			stepArgs := map[string]any{"gathered": d.avail, "recovered": d.recovered, "degraded": d.degraded}
			if d.folded > 0 {
				stepArgs["folded"] = d.folded
			}
			m.cfg.Timeline.Add(events.Span{Name: fmt.Sprintf("step %d", d.step), Cat: "step",
				Start: d.bcastStart, Dur: d.updateEnd.Sub(d.bcastStart), Args: stepArgs})
			m.cfg.Timeline.Add(events.Span{Name: "broadcast", Cat: "phase",
				Start: d.bcastStart, Dur: d.stepStart.Sub(d.bcastStart)})
			m.cfg.Timeline.Add(events.Span{Name: "gather", Cat: "phase",
				Start: d.stepStart, Dur: d.elapsed})
			m.cfg.Timeline.Add(events.Span{Name: "decode", Cat: "phase",
				Start: d.gatherEnd, Dur: d.decodeEnd.Sub(d.gatherEnd)})
			m.cfg.Timeline.Add(events.Span{Name: "update", Cat: "phase",
				Start: d.decodeEnd, Dur: d.updateEnd.Sub(d.decodeEnd)})
			// The deferred loss overlaps the next step's broadcast and the
			// fleet's compute — the pipelining win, visible as a phase span
			// that outlives its own step span.
			m.cfg.Timeline.Add(events.Span{Name: "loss", Cat: "phase",
				Start: d.updateEnd, Dur: lossEnd.Sub(d.updateEnd), Args: map[string]any{"step": d.step}})
		}
		m.cfg.Events.Debug("master.step_completed", "step finished", d.step, events.NoWorker,
			events.Fields{"gathered": d.avail, "recovered": d.recovered,
				"degraded": d.degraded, "loss": loss, "elapsed": d.elapsed.String()})
		res.Run.Append(trace.StepRecord{
			Step:              d.step,
			Available:         d.avail,
			Chosen:            d.recovered / st.C(),
			RecoveredFraction: float64(d.recovered) / float64(n),
			Partitions:        d.recParts,
			Alive:             d.aliveAt,
			Degraded:          d.degraded,
			Folded:            d.folded,
			Loss:              loss,
			Elapsed:           d.elapsed,
		})
		if m.cfg.LossThreshold > 0 && loss <= m.cfg.LossThreshold {
			res.Converged = true
			res.StepsToThreshold = d.step + 1
			return true
		}
		if m.cfg.Checkpoint != nil && (d.step+1)%m.cfg.CheckpointEvery == 0 && d.step+1 < m.cfg.MaxSteps {
			saveCheckpoint(d.step+1, res.Run.Steps(), false)
		}
		return false
	}

	for step := startStep; step < m.cfg.MaxSteps; step++ {
		select {
		case <-m.stop:
			if prev != nil && finalize(prev) {
				// The deferred record converged: the run finished on its own
				// before the stop could take effect.
				res.Params = params
				if m.cfg.Checkpoint != nil {
					saveCheckpoint(startStep+res.Run.Steps(), res.Run.Steps(), true)
				}
				return res, nil
			}
			// Params are exactly the post-step-(step−1) state (plus any
			// landed folds), so the checkpoint resumes at step.
			interrupted(step, res.Run.Steps())
			res.Params = params
			return res, nil
		default:
		}
		m.mu.Lock()
		m.running = true
		m.curStep = step
		// Rejoin handshakes read curParams concurrently with the updates
		// below, so they get their own copy.
		m.curParams = append([]float64(nil), params...)
		m.mu.Unlock()
		bcastStart := time.Now()
		m.broadcast(&Envelope{Kind: MsgStep, Step: step, Params: params})
		stepStart := time.Now()

		// The fleet is computing step now; finalize the previous step's
		// loss and record under that window.
		if prev != nil {
			done := finalize(prev)
			prev = nil
			if done {
				break
			}
		}

		avail := bitset.New(n)
		coded := make([][]float64, n)
		folded = 0
		accept := func(a arrival) {
			if a.step != step || a.worker < 0 || a.worker >= n || avail.Contains(a.worker) {
				if tryFold(a) {
					return
				}
				// Stale or duplicate delivery outside the fold window: the
				// "ignored" column of the attribution report, exactly as in
				// the synchronous loop.
				if a.worker >= 0 && a.worker < n {
					s := trace.ArrivalSample{Worker: a.worker, Step: step, Compute: a.computeDur}
					if a.step == step {
						s.Arrival = a.recvAt.Sub(stepStart)
					}
					m.attribution.ObserveIgnored(s)
				}
				return
			}
			if len(a.coded) != dim {
				m.malformed.Add(1)
				m.cfg.Metrics.markMalformed()
				m.cfg.Events.Warn("master.malformed_gradient", "gradient rejected before decode",
					step, a.worker, events.Fields{"got_dim": len(a.coded), "want_dim": dim})
				return
			}
			avail.Add(a.worker)
			coded[a.worker] = a.coded
			m.accepted[a.worker].Add(1)
			m.cfg.Metrics.markAccepted(a.worker)
			m.attribution.ObserveAccepted(trace.ArrivalSample{
				Worker: a.worker, Step: step,
				Compute: a.computeDur, Arrival: a.recvAt.Sub(stepStart),
			})
			if a.computeDur > 0 && !a.computeStart.IsZero() {
				m.cfg.Timeline.Add(events.Span{
					Name: "compute", Cat: "compute", TID: a.worker + 1,
					Start: a.computeStart, Dur: a.computeDur,
					Args: map[string]any{"step": step},
				})
			}
		}

		degraded, gatherErr := m.gatherFastest(step, n, target, ts.flexible, avail, accept)
		if errors.Is(gatherErr, errInterrupted) {
			// Stopped mid-gather: params are still this step's pre-update
			// state, so the checkpoint replays step in the next life.
			interrupted(step, res.Run.Steps())
			res.Params = params
			return res, nil
		}
		if gatherErr != nil {
			return res, gatherErr
		}
		gatherEnd := time.Now()
		elapsed := gatherEnd.Sub(stepStart)
		if degraded {
			m.mu.Lock()
			m.degraded++
			m.mu.Unlock()
			m.cfg.Events.Warn("master.step_degraded", "gather target shrank below configured wait",
				step, events.NoWorker, events.Fields{"gathered": avail.Len(), "configured": target})
		}

		ghat, recParts, err := st.Recover(avail, coded)
		if err != nil {
			return res, fmt.Errorf("cluster: step %d: %w", step, err)
		}
		decodeEnd := time.Now()
		recovered := len(recParts)
		m.cfg.Metrics.observeStep(elapsed, float64(recovered)/float64(n), degraded)
		if recovered > 0 {
			linalg.AXPY(params, -m.cfg.LearningRate/float64(recovered), ghat)
		}
		updateEnd := time.Now()
		prev = &deferredStep{step: step, avail: avail.Len(), recovered: recovered,
			aliveAt: m.countAlive(), folded: folded, recParts: recParts, degraded: degraded,
			elapsed: elapsed, bcastStart: bcastStart, stepStart: stepStart,
			gatherEnd: gatherEnd, decodeEnd: decodeEnd, updateEnd: updateEnd}

		if m.cfg.Staleness > 0 {
			g := ghat
			if g == nil {
				g = make([]float64, dim)
			}
			mask := bitset.New(n)
			for _, pt := range recParts {
				mask.Add(pt)
			}
			pending = append(pending, &pendingStep{step: step, avail: avail, mask: mask, g: g, r: recovered})
			// A gradient for step s can fold while steps s+1..s+k gather;
			// gathering step+1 next, keep entries with step s > step−k.
			keep := pending[:0]
			for _, p := range pending {
				if p.step > step-m.cfg.Staleness {
					keep = append(keep, p)
				}
			}
			pending = keep
		}
	}
	if prev != nil {
		finalize(prev)
	}
	if !res.Converged {
		res.StepsToThreshold = m.cfg.MaxSteps
	}
	res.Params = params
	if m.cfg.Checkpoint != nil {
		saveCheckpoint(startStep+res.Run.Steps(), res.Run.Steps(), true)
	}
	return res, nil
}

// writeCheckpoint persists one durable snapshot. Failures are counted and
// logged but do not stop training — losing durability is better than
// losing the run.
func (m *Master) writeCheckpoint(params []float64, nextStep, records int, completed bool) {
	st := m.cfg.Strategy
	m.mu.Lock()
	gen := m.generation
	runID := m.runID
	m.mu.Unlock()
	cst := checkpoint.State{
		Version:         checkpoint.Version,
		RunID:           runID,
		Generation:      gen,
		Scheme:          st.Name(),
		N:               st.N(),
		C:               st.C(),
		Seed:            m.cfg.Seed,
		W:               m.cfg.W,
		Step:            nextStep,
		Params:          checkpoint.Float64sToBytes(params),
		EventCursor:     m.cfg.Events.Total(),
		RecordCursor:    records,
		Completed:       completed,
		SavedAtUnixNano: time.Now().UnixNano(),
	}
	if rs, ok := st.(engine.RandStateful); ok {
		cst.DecoderSeed, cst.DecoderDraws = rs.RandState()
	}
	info, err := m.cfg.Checkpoint.Save(nextStep, &cst)
	if err != nil {
		m.cfg.Metrics.markCheckpointError()
		m.cfg.Events.Error("master.checkpoint_error", "checkpoint write failed", nextStep,
			events.NoWorker, events.Fields{"error": err.Error()})
		return
	}
	m.lastCkptStep.Store(int64(nextStep))
	m.lastCkptUnixNano.Store(time.Now().UnixNano())
	m.cfg.Metrics.markCheckpointWrite(info.Size, nextStep)
	m.cfg.Events.Info("master.checkpoint_written", "durable checkpoint saved", nextStep,
		events.NoWorker, events.Fields{"file": info.File, "bytes": info.Size, "completed": completed})
}

// gatherFastest implements the fastest-w gather with graceful degradation:
// when fewer than waitFor gradients remain achievable, a flexible scheme
// shrinks its target to the achievable set (IS-GC decodes any subset) and
// the step is marked degraded; a rigid scheme fails fast with a diagnostic
// instead of hanging forever.
func (m *Master) gatherFastest(step, n, waitFor int, flexible bool, avail *bitset.Set, accept func(arrival)) (bool, error) {
	var timeout <-chan time.Time
	if m.cfg.StepTimeout > 0 {
		timer := time.NewTimer(m.cfg.StepTimeout)
		defer timer.Stop()
		timeout = timer.C
	}
	for {
		target := waitFor
		if reachable := m.achievable(avail); reachable < waitFor {
			if !flexible {
				return false, fmt.Errorf(
					"cluster: step %d: only %d of %d workers reachable; rigid scheme %s needs %d — failing fast",
					step, m.countAlive(), n, m.cfg.Strategy.Name(), waitFor)
			}
			if reachable == 0 {
				return false, fmt.Errorf("cluster: step %d: all %d workers lost", step, n)
			}
			target = reachable
		}
		if avail.Len() >= target {
			return avail.Len() < waitFor, nil
		}
		select {
		case a := <-m.grads:
			accept(a)
		case <-m.wakeup:
			// Liveness changed: recompute the target on the next pass.
		case <-m.stop:
			return false, errInterrupted
		case <-timeout:
			// Alive workers exist but the gradients are not coming (lossy
			// links, drop faults): proceed degraded rather than stall.
			if flexible && !avail.Empty() {
				return true, nil
			}
			return false, fmt.Errorf(
				"cluster: step %d: gathered %d of %d needed gradients within %v (scheme %s)",
				step, avail.Len(), waitFor, m.cfg.StepTimeout, m.cfg.Strategy.Name())
		}
	}
}

// gatherDeadline implements the Sec. IV deadline policy with liveness
// awareness: accept everything until the deadline, stop early when no more
// gradients can arrive, and — when nobody beat the deadline — block for
// the first arrival only while someone is alive to produce it.
func (m *Master) gatherDeadline(step, n int, avail *bitset.Set, accept func(arrival)) error {
	timer := time.NewTimer(m.cfg.Deadline)
	defer timer.Stop()
gather:
	for avail.Len() < n {
		if m.achievable(avail) <= avail.Len() {
			break // every remaining worker is dead; waiting is pointless
		}
		select {
		case a := <-m.grads:
			accept(a)
		case <-m.wakeup:
		case <-m.stop:
			return errInterrupted
		case <-timer.C:
			break gather
		}
	}
	// The step must make progress: if nobody beat the deadline, block for
	// the first arrival of this step — but only while someone is alive to
	// produce it, and never past the step timeout.
	var timeout <-chan time.Time
	if m.cfg.StepTimeout > 0 {
		t := time.NewTimer(m.cfg.StepTimeout)
		defer t.Stop()
		timeout = t.C
	}
	for avail.Empty() {
		if m.countAlive() == 0 {
			return fmt.Errorf("cluster: step %d: all %d workers lost", step, n)
		}
		select {
		case a := <-m.grads:
			accept(a)
		case <-m.wakeup:
		case <-m.stop:
			return errInterrupted
		case <-timeout:
			return fmt.Errorf("cluster: step %d: no gradient within step timeout %v", step, m.cfg.StepTimeout)
		}
	}
	return nil
}

// broadcast sends e to every live worker. The connection list is
// snapshotted under the lock but the sends happen outside it, each bounded
// by the write timeout, so one stalled socket can neither wedge
// registration/shutdown paths nor stall the other workers; a failed send
// evicts the connection (its reader marks the worker dead).
func (m *Master) broadcast(e *Envelope) {
	type target struct {
		id int
		c  *conn
	}
	m.mu.Lock()
	conns := make([]target, 0, len(m.workers))
	for id, ws := range m.workers {
		if ws != nil && ws.alive {
			conns = append(conns, target{id: id, c: ws.c})
		}
	}
	m.mu.Unlock()
	for _, t := range conns {
		if err := t.c.send(e); err != nil {
			m.cfg.Metrics.markEviction()
			if e.Kind != MsgStop {
				m.cfg.Events.Warn("master.worker_send_failed", "send failed; closing connection",
					e.Step, t.id, events.Fields{"kind": e.Kind, "error": err.Error()})
			}
			_ = t.c.close()
		}
	}
}

func (m *Master) closeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, ws := range m.workers {
		if ws != nil {
			_ = ws.c.close()
			for _, lc := range ws.lanes {
				_ = lc.close()
			}
		}
	}
}
