package cluster

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"isgc/internal/bitset"
	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/linalg"
	"isgc/internal/model"
	"isgc/internal/trace"
)

// MasterConfig configures a training master.
type MasterConfig struct {
	// Addr is the listen address, e.g. "127.0.0.1:0".
	Addr string
	// Strategy decodes coded gradients (shared vocabulary with the
	// in-process engine).
	Strategy engine.Strategy
	// Model evaluates the training loss; the master holds the parameters.
	Model model.Model
	// Data is the full training set (for loss evaluation).
	Data *dataset.Dataset
	// LearningRate is η.
	LearningRate float64
	// W is the number of workers to wait for per step (flexible schemes).
	W int
	// Deadline, when positive, replaces the fastest-w gather for flexible
	// schemes with the Sec. IV deadline policy: each step the master
	// accepts every gradient that arrives within Deadline of the step
	// broadcast and then proceeds (waiting for at least one arrival).
	// Rigid schemes (Sync-SGD, classic GC) ignore it.
	Deadline time.Duration
	// MaxSteps bounds the run.
	MaxSteps int
	// LossThreshold stops early when reached (0 disables).
	LossThreshold float64
	// Seed initializes the parameters (must match the workers' data seed
	// discipline).
	Seed int64
	// AcceptTimeout bounds how long the master waits for all workers to
	// register (default 10s).
	AcceptTimeout time.Duration
}

// Master orchestrates distributed training over TCP.
type Master struct {
	cfg MasterConfig
	ln  net.Listener

	mu    sync.Mutex
	conns map[int]*conn

	// accepted[i] counts the steps in which worker i's gradient was
	// gathered before the cut-off — the per-worker availability view an
	// operator uses to spot enduring stragglers. Written only by the
	// training loop; read via ArrivalCounts after Run returns.
	accepted []int
}

// ArrivalCounts returns, per worker, how many steps gathered that worker's
// gradient. Valid after Run returns.
func (m *Master) ArrivalCounts() []int {
	out := make([]int, len(m.accepted))
	copy(out, m.accepted)
	return out
}

// arrival is one gradient delivery tagged with its origin.
type arrival struct {
	worker int
	step   int
	coded  []float64
}

// NewMaster starts listening; workers may connect immediately after.
func NewMaster(cfg MasterConfig) (*Master, error) {
	switch {
	case cfg.Strategy == nil:
		return nil, fmt.Errorf("cluster: nil strategy")
	case cfg.Model == nil:
		return nil, fmt.Errorf("cluster: nil model")
	case cfg.Data == nil:
		return nil, fmt.Errorf("cluster: nil dataset")
	case cfg.LearningRate <= 0:
		return nil, fmt.Errorf("cluster: need LearningRate > 0")
	case cfg.MaxSteps <= 0:
		return nil, fmt.Errorf("cluster: need MaxSteps > 0")
	}
	if cfg.AcceptTimeout <= 0 {
		cfg.AcceptTimeout = 10 * time.Second
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: listen: %w", err)
	}
	return &Master{cfg: cfg, ln: ln, conns: map[int]*conn{}}, nil
}

// Addr returns the actual listen address (useful with ":0").
func (m *Master) Addr() string { return m.ln.Addr().String() }

// Run accepts the n workers, trains, shuts the workers down, and returns
// the run result. It blocks until training finishes or fails.
func (m *Master) Run() (*engine.Result, error) {
	defer m.ln.Close()
	n := m.cfg.Strategy.N()

	grads := make(chan arrival, 4*n)
	var readers sync.WaitGroup
	if err := m.acceptWorkers(n, grads, &readers); err != nil {
		m.closeAll()
		return nil, err
	}

	res, err := m.trainLoop(grads)

	// Stop workers and close connections; readers drain on close.
	m.broadcast(&Envelope{Kind: MsgStop})
	m.closeAll()
	readers.Wait()
	return res, err
}

func (m *Master) acceptWorkers(n int, grads chan<- arrival, readers *sync.WaitGroup) error {
	deadline := time.Now().Add(m.cfg.AcceptTimeout)
	for len(m.conns) < n {
		type deadliner interface{ SetDeadline(time.Time) error }
		if d, ok := m.ln.(deadliner); ok {
			if err := d.SetDeadline(deadline); err != nil {
				return fmt.Errorf("cluster: %w", err)
			}
		}
		raw, err := m.ln.Accept()
		if err != nil {
			return fmt.Errorf("cluster: accept (have %d/%d workers): %w", len(m.conns), n, err)
		}
		c := newConn(raw)
		hello, err := c.recv()
		if err != nil || hello.Kind != MsgHello {
			_ = c.close()
			return fmt.Errorf("cluster: bad hello from %s: %v", raw.RemoteAddr(), err)
		}
		if hello.Worker < 0 || hello.Worker >= n {
			_ = c.close()
			return fmt.Errorf("cluster: worker id %d out of range [0,%d)", hello.Worker, n)
		}
		m.mu.Lock()
		if _, dup := m.conns[hello.Worker]; dup {
			m.mu.Unlock()
			_ = c.close()
			return fmt.Errorf("cluster: duplicate worker id %d", hello.Worker)
		}
		m.conns[hello.Worker] = c
		m.mu.Unlock()

		readers.Add(1)
		go func(c *conn) {
			defer readers.Done()
			for {
				e, err := c.recv()
				if err != nil {
					return // connection closed
				}
				if e.Kind == MsgGradient {
					grads <- arrival{worker: e.Worker, step: e.Step, coded: e.Coded}
				}
			}
		}(c)
	}
	return nil
}

func (m *Master) trainLoop(grads <-chan arrival) (*engine.Result, error) {
	st := m.cfg.Strategy
	n := st.N()
	waitFor := st.WaitFor(m.cfg.W)
	// Deadline mode applies only to flexible schemes: a rigid scheme
	// reports the same WaitFor for every target.
	useDeadline := m.cfg.Deadline > 0 && st.WaitFor(1) != st.WaitFor(n)
	m.accepted = make([]int, n)
	params := m.cfg.Model.InitParams(m.cfg.Seed)
	all := make([]dataset.Sample, m.cfg.Data.Len())
	for i := range all {
		all[i] = m.cfg.Data.At(i)
	}

	res := &engine.Result{}
	for step := 0; step < m.cfg.MaxSteps; step++ {
		m.broadcast(&Envelope{Kind: MsgStep, Step: step, Params: params})
		stepStart := time.Now()

		avail := bitset.New(n)
		coded := make([][]float64, n)
		accept := func(a arrival) {
			if a.step != step || a.worker < 0 || a.worker >= n || avail.Contains(a.worker) {
				return // stale or duplicate delivery
			}
			avail.Add(a.worker)
			coded[a.worker] = a.coded
			m.accepted[a.worker]++
		}
		if useDeadline {
			timer := time.NewTimer(m.cfg.Deadline)
		gather:
			for avail.Len() < n {
				select {
				case a, ok := <-grads:
					if !ok {
						timer.Stop()
						return res, errors.New("cluster: gradient channel closed mid-step")
					}
					accept(a)
				case <-timer.C:
					break gather
				}
			}
			timer.Stop()
			// The step must make progress: if nobody beat the deadline,
			// block for the first arrival of this step.
			for avail.Empty() {
				a, ok := <-grads
				if !ok {
					return res, errors.New("cluster: gradient channel closed mid-step")
				}
				accept(a)
			}
		} else {
			for avail.Len() < waitFor {
				a, ok := <-grads
				if !ok {
					return res, errors.New("cluster: gradient channel closed mid-step")
				}
				accept(a)
			}
		}
		elapsed := time.Since(stepStart)

		ghat, recParts, err := st.Recover(avail, coded)
		if err != nil {
			return res, fmt.Errorf("cluster: step %d: %w", step, err)
		}
		recovered := len(recParts)
		if recovered > 0 {
			linalg.AXPY(params, -m.cfg.LearningRate/float64(recovered), ghat)
		}
		loss := m.cfg.Model.Loss(params, all)
		res.Run.Append(trace.StepRecord{
			Step:              step,
			Available:         avail.Len(),
			Chosen:            recovered / st.C(),
			RecoveredFraction: float64(recovered) / float64(n),
			Partitions:        recParts,
			Loss:              loss,
			Elapsed:           elapsed,
		})
		if m.cfg.LossThreshold > 0 && loss <= m.cfg.LossThreshold {
			res.Converged = true
			res.StepsToThreshold = step + 1
			break
		}
	}
	if !res.Converged {
		res.StepsToThreshold = m.cfg.MaxSteps
	}
	res.Params = params
	return res, nil
}

func (m *Master) broadcast(e *Envelope) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.conns {
		_ = c.send(e) // a dead worker just becomes a permanent straggler
	}
}

func (m *Master) closeAll() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, c := range m.conns {
		_ = c.close()
	}
}
