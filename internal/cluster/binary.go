// The binary wire codec: a versioned, length-prefixed frame format for the
// gradient/params hot path. gob re-transmits type metadata, boxes every
// float64, and allocates per message; at 2^16-dim gradients that overhead
// dominates the master's gather (the paper's per-iteration completion time,
// Fig. 12). A frame here is a fixed 36-byte little-endian header followed
// by raw IEEE-754 float64 payload words, written via math.Float64bits —
// no reflection, no per-value framing, no unsafe.
//
// Frame layout (all little-endian):
//
//	offset size field
//	0      4    magic "ISGC"
//	4      1    version (currently 1)
//	5      1    message type (1 hello, 2 step, 3 gradient, 4 heartbeat, 5 stop)
//	6      2    reserved (must be zero in v1)
//	8      4    worker id
//	12     4    step
//	16     8    compute start (unix nanoseconds)
//	24     8    compute duration (nanoseconds)
//	32     4    dim — payload length in float64 words (the length prefix)
//	36     8·dim payload: params (step) or coded gradient (gradient)
//
// The encoding is canonical: for every envelope a frame can carry there is
// exactly one valid byte representation, and DecodeFrame rejects anything
// else (bad magic, version skew, nonzero reserved bytes, payload on a
// payload-free kind, truncated or trailing bytes). The negotiation that
// selects this codec per connection rides in the gob hello exchange — see
// wire.go — so frames never appear on a connection whose peer did not opt
// in.
package cluster

import (
	"fmt"
	"io"
	"math"
	"sync"
)

// Binary frame geometry and versioning.
const (
	frameMagic0 = 'I'
	frameMagic1 = 'S'
	frameMagic2 = 'G'
	frameMagic3 = 'C'

	// frameVersion is the current binary wire version. A decoder only
	// accepts frames of the exact version it speaks: version skew is a
	// negotiation bug, and silently misparsing a future layout would be
	// far worse than an eviction.
	frameVersion = 1

	frameHeaderSize = 36

	// maxFrameID bounds worker ids and steps on the wire. They travel as
	// uint32 but land in Go ints; capping at MaxInt32 keeps the conversion
	// safe on every platform.
	maxFrameID = math.MaxInt32
)

// Binary message type codes (header byte 5).
const (
	frameTypeHello     = 1
	frameTypeStep      = 2
	frameTypeGradient  = 3
	frameTypeHeartbeat = 4
	frameTypeStop      = 5
)

// frameTypeOf maps an envelope kind to its wire code (0 = unencodable).
func frameTypeOf(kind string) byte {
	switch kind {
	case MsgHello:
		return frameTypeHello
	case MsgStep:
		return frameTypeStep
	case MsgGradient:
		return frameTypeGradient
	case MsgHeartbeat:
		return frameTypeHeartbeat
	case MsgStop:
		return frameTypeStop
	default:
		return 0
	}
}

// frameKindOf maps a wire code back to the envelope kind ("" = unknown).
func frameKindOf(t byte) string {
	switch t {
	case frameTypeHello:
		return MsgHello
	case frameTypeStep:
		return MsgStep
	case frameTypeGradient:
		return MsgGradient
	case frameTypeHeartbeat:
		return MsgHeartbeat
	case frameTypeStop:
		return MsgStop
	default:
		return ""
	}
}

// framePayload returns the vector a frame of this kind carries. Only the
// hot-path kinds carry one; every other kind must have dim == 0.
func framePayload(e *Envelope) ([]float64, error) {
	switch e.Kind {
	case MsgStep:
		if len(e.Coded) != 0 {
			return nil, fmt.Errorf("cluster: %s frame cannot carry a coded gradient", e.Kind)
		}
		return e.Params, nil
	case MsgGradient:
		if len(e.Params) != 0 {
			return nil, fmt.Errorf("cluster: %s frame cannot carry params", e.Kind)
		}
		return e.Coded, nil
	default:
		if len(e.Params) != 0 || len(e.Coded) != 0 {
			return nil, fmt.Errorf("cluster: %s frame cannot carry a payload", e.Kind)
		}
		return nil, nil
	}
}

// putU32 and getU32 are the little-endian accessors the codec uses; spelled
// out here (rather than importing encoding/binary) they inline to single
// moves on little-endian hardware.
func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putU64(b []byte, v uint64) {
	_ = b[7]
	putU32(b, uint32(v))
	putU32(b[4:], uint32(v>>32))
}

func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(getU32(b)) | uint64(getU32(b[4:]))<<32
}

// AppendFrame appends the canonical binary encoding of e to dst and returns
// the extended slice. It refuses envelopes the frame format cannot
// represent faithfully: invalid envelopes, negotiation fields (Wire rides
// only in the gob hello exchange), out-of-range ids, and payloads on
// payload-free kinds.
func AppendFrame(dst []byte, e *Envelope) ([]byte, error) {
	if err := validateEnvelope(e); err != nil {
		return nil, err
	}
	if e.Wire != "" {
		return nil, fmt.Errorf("cluster: %s frame cannot carry wire negotiation %q", e.Kind, e.Wire)
	}
	if e.Shards != 0 || e.Shard != 0 {
		return nil, fmt.Errorf("cluster: %s frame cannot carry lane negotiation", e.Kind)
	}
	if e.Offset != 0 || e.Total != 0 {
		return nil, fmt.Errorf("cluster: v1 %s frame cannot carry sub-frame geometry (%d, %d)", e.Kind, e.Offset, e.Total)
	}
	t := frameTypeOf(e.Kind)
	if t == 0 {
		return nil, fmt.Errorf("cluster: no binary frame type for kind %q", e.Kind)
	}
	if e.Worker > maxFrameID {
		return nil, fmt.Errorf("cluster: worker id %d exceeds frame limit", e.Worker)
	}
	if e.Step > maxFrameID {
		return nil, fmt.Errorf("cluster: step %d exceeds frame limit", e.Step)
	}
	vec, err := framePayload(e)
	if err != nil {
		return nil, err
	}

	off := len(dst)
	need := frameHeaderSize + 8*len(vec)
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	h := dst[off:]
	h[0], h[1], h[2], h[3] = frameMagic0, frameMagic1, frameMagic2, frameMagic3
	h[4] = frameVersion
	h[5] = t
	h[6], h[7] = 0, 0
	putU32(h[8:], uint32(e.Worker))
	putU32(h[12:], uint32(e.Step))
	putU64(h[16:], uint64(e.ComputeStartUnixNano))
	putU64(h[24:], uint64(e.ComputeDurNanos))
	putU32(h[32:], uint32(len(vec)))
	p := h[frameHeaderSize:]
	for i, v := range vec {
		putU64(p[8*i:], math.Float64bits(v))
	}
	return dst, nil
}

// EncodeFrame renders one envelope as a standalone binary frame — the
// binary counterpart of EncodeMessage, used by tests, fuzz seeds, and the
// golden vectors.
func EncodeFrame(e *Envelope) ([]byte, error) {
	return AppendFrame(nil, e)
}

// frameHeader is the parsed fixed header of one binary frame.
type frameHeader struct {
	kind         string
	worker, step int
	computeStart int64
	computeDur   int64
	dim          int
}

// parseFrameHeader validates and parses a 36-byte header. Every rejection
// is an error, never a panic: this parser fronts adversarial bytes and is
// hammered by FuzzDecodeFrame.
func parseFrameHeader(h []byte) (frameHeader, error) {
	var fh frameHeader
	if len(h) < frameHeaderSize {
		return fh, fmt.Errorf("cluster: frame header truncated: %d of %d bytes", len(h), frameHeaderSize)
	}
	if h[0] != frameMagic0 || h[1] != frameMagic1 || h[2] != frameMagic2 || h[3] != frameMagic3 {
		return fh, fmt.Errorf("cluster: bad frame magic % x", h[:4])
	}
	if h[4] != frameVersion {
		return fh, fmt.Errorf("cluster: unsupported frame version %d (speak %d)", h[4], frameVersion)
	}
	fh.kind = frameKindOf(h[5])
	if fh.kind == "" {
		return fh, fmt.Errorf("cluster: unknown frame type %d", h[5])
	}
	if h[6] != 0 || h[7] != 0 {
		return fh, fmt.Errorf("cluster: nonzero reserved bytes % x in v1 frame", h[6:8])
	}
	worker := getU32(h[8:])
	step := getU32(h[12:])
	if worker > maxFrameID || step > maxFrameID {
		return fh, fmt.Errorf("cluster: frame worker=%d step=%d exceed id limit", worker, step)
	}
	fh.worker = int(worker)
	fh.step = int(step)
	fh.computeStart = int64(getU64(h[16:]))
	fh.computeDur = int64(getU64(h[24:]))
	dim := getU32(h[32:])
	if dim > maxVectorLen {
		return fh, fmt.Errorf("cluster: frame dim %d exceeds limit %d", dim, maxVectorLen)
	}
	fh.dim = int(dim)
	return fh, nil
}

// frameEnvelope assembles the envelope a parsed header + payload describe
// and passes it through the shared validation choke point.
func frameEnvelope(fh frameHeader, vec []float64) (*Envelope, error) {
	e := &Envelope{
		Kind:                 fh.kind,
		Worker:               fh.worker,
		Step:                 fh.step,
		ComputeStartUnixNano: fh.computeStart,
		ComputeDurNanos:      fh.computeDur,
	}
	switch fh.kind {
	case MsgStep:
		e.Params = vec
	case MsgGradient:
		e.Coded = vec
	default:
		if fh.dim != 0 {
			return nil, fmt.Errorf("cluster: %s frame carries unexpected %d-word payload", fh.kind, fh.dim)
		}
	}
	if err := validateEnvelope(e); err != nil {
		return nil, err
	}
	return e, nil
}

// DecodeFrame decodes exactly one standalone binary frame. Truncated
// headers, short or trailing payload bytes, bad magic, version skew, and
// over-limit dims all error; nothing panics. It is the binary counterpart
// of DecodeMessage and the target of FuzzDecodeFrame.
func DecodeFrame(data []byte) (*Envelope, error) {
	fh, err := parseFrameHeader(data)
	if err != nil {
		return nil, err
	}
	if want := frameHeaderSize + 8*fh.dim; len(data) != want {
		return nil, fmt.Errorf("cluster: frame length %d, want %d for dim %d", len(data), want, fh.dim)
	}
	var vec []float64
	if fh.dim > 0 {
		vec = decodePayload(data[frameHeaderSize:], make([]float64, fh.dim))
	}
	return frameEnvelope(fh, vec)
}

// decodePayload fills vec from 8·len(vec) little-endian payload bytes.
func decodePayload(p []byte, vec []float64) []float64 {
	for i := range vec {
		vec[i] = math.Float64frombits(getU64(p[8*i:]))
	}
	return vec
}

// frameBufPool recycles whole-frame send buffers and receive payload
// scratch across connections and steps. At steady state every connection
// reuses one grown buffer per direction, so the wire path allocates
// nothing per message beyond the gradient vectors whose ownership
// genuinely transfers to the gather loop.
var frameBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// sendFrame serializes e into a pooled buffer and writes it with a single
// Write call (one syscall per message, and the counting writer sees the
// exact framed byte count). Callers hold sendMu.
func (c *conn) sendFrame(e *Envelope) error {
	bp := frameBufPool.Get().(*[]byte)
	buf, err := AppendFrame((*bp)[:0], e)
	if err != nil {
		frameBufPool.Put(bp)
		return err
	}
	_, werr := c.w.Write(buf)
	*bp = buf[:0]
	frameBufPool.Put(bp)
	return werr
}

// recvFrame reads one binary frame from the connection. The header lands
// in a per-connection array and the payload bytes in a per-connection
// scratch slice; the decoded vector is freshly allocated unless the
// connection opted into vector reuse (the worker side, where params are
// consumed within the step and never retained).
func (c *conn) recvFrame() (*Envelope, error) {
	if _, err := io.ReadFull(c.r, c.hdrScratch[:frameHeaderSize]); err != nil {
		return nil, fmt.Errorf("cluster: recv frame header: %w", err)
	}
	fh, err := parseFrameHeader(c.hdrScratch[:frameHeaderSize])
	if err != nil {
		return nil, err
	}
	var vec []float64
	if fh.dim > 0 {
		nbytes := 8 * fh.dim
		if cap(c.payloadScratch) < nbytes {
			c.payloadScratch = make([]byte, nbytes)
		}
		p := c.payloadScratch[:nbytes]
		if _, err := io.ReadFull(c.r, p); err != nil {
			return nil, fmt.Errorf("cluster: recv %s payload (%d words): %w", fh.kind, fh.dim, err)
		}
		if c.reuseVecs {
			if cap(c.vecScratch) < fh.dim {
				c.vecScratch = make([]float64, fh.dim)
			}
			vec = c.vecScratch[:fh.dim]
		} else {
			vec = make([]float64, fh.dim)
		}
		decodePayload(p, vec)
	}
	return frameEnvelope(fh, vec)
}
