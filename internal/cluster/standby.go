package cluster

import (
	"errors"
	"fmt"
	"os"
	"time"

	"isgc/internal/checkpoint"
	"isgc/internal/events"
)

// ErrStandbyStopped reports that WaitForTakeover returned because its stop
// channel closed, not because the primary died.
var ErrStandbyStopped = errors.New("cluster: standby stopped before takeover")

// WaitForTakeover blocks until the primary master's liveness lease in the
// checkpoint directory lapses, then returns nil: the caller should restore
// from the same store and run as the new primary (the workers' reconnect
// loops redial the shared address until the successor starts listening).
//
// The lease protocol distinguishes two hand-offs:
//
//   - Graceful exit: the primary removes the lease on its way out, so the
//     standby takes over as soon as the next poll notices — no TTL wait.
//   - Crash: the lease file survives but stops being renewed; the standby
//     waits until it is a full TTL stale before declaring the primary dead.
//
// A standby started before the primary simply waits: takeover requires
// having observed the primary's lease at least once, or a checkpoint in the
// store — otherwise an empty directory would make a mis-started standby
// cold-start a run of its own.
//
// ttl should match the primary's LeaseTTL; when a lease is present its own
// recorded TTL wins, so a mismatch only affects polling cadence. Closing
// stop aborts the wait with ErrStandbyStopped.
func WaitForTakeover(store *checkpoint.Store, ttl time.Duration, stop <-chan struct{}, ev *events.Log) error {
	if store == nil {
		return fmt.Errorf("cluster: standby needs a checkpoint store")
	}
	if ttl <= 0 {
		ttl = 5 * time.Second
	}
	interval := ttl / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	ev.Info("standby.watching", "standing by for primary lease lapse", events.NoStep, events.NoWorker,
		events.Fields{"ttl": ttl.String(), "poll": interval.String()})
	t := time.NewTicker(interval)
	defer t.Stop()
	sawLease := false
	var badSince time.Time
	for {
		lease, err := store.ReadLease()
		switch {
		case err == nil:
			sawLease = true
			badSince = time.Time{}
			if lease.Expired(time.Now()) {
				ev.Warn("master.failover", "primary lease expired; standby taking over", events.NoStep,
					events.NoWorker, events.Fields{"reason": "lease_expired", "holder": lease.Holder,
						"stale": time.Since(lease.RenewedAt()).String()})
				return nil
			}
		case errors.Is(err, os.ErrNotExist):
			// No lease. Either the primary released it (graceful exit), it
			// crashed and a previous takeover cleaned up, or it has not
			// started yet. Only the first two justify taking over.
			badSince = time.Time{}
			if sawLease || hasCheckpoint(store) {
				ev.Info("master.failover", "primary lease released; standby taking over", events.NoStep,
					events.NoWorker, events.Fields{"reason": "lease_released"})
				return nil
			}
		default:
			// An unreadable (corrupted) lease file: not proof of death by
			// itself, but a primary that stays unreadable for a full TTL is
			// not renewing — treat it like an expired lease.
			if badSince.IsZero() {
				badSince = time.Now()
				ev.Warn("standby.lease_unreadable", "could not read primary lease", events.NoStep,
					events.NoWorker, events.Fields{"error": err.Error()})
			}
			if time.Since(badSince) > ttl && (sawLease || hasCheckpoint(store)) {
				ev.Warn("master.failover", "primary lease unreadable for a full TTL; standby taking over",
					events.NoStep, events.NoWorker, events.Fields{"reason": "lease_unreadable"})
				return nil
			}
		}
		select {
		case <-stop:
			return ErrStandbyStopped
		case <-t.C:
		}
	}
}

// hasCheckpoint reports whether the store holds at least one checkpoint
// file (valid or not — existence is enough evidence that a primary ran).
func hasCheckpoint(store *checkpoint.Store) bool {
	steps, err := store.List()
	return err == nil && len(steps) > 0
}
