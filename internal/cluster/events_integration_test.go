package cluster

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"isgc/internal/events"
	"isgc/internal/straggler"
)

// TestEventLogCapturesCrashAndRejoin drives a CR(3,2) cluster through a
// mid-run crash (worker 2) and a disconnect-then-rejoin round trip
// (worker 1) with a shared JSONL event log attached, then replays the log:
// every line must parse, the lifecycle events must appear in causal order
// (eviction before the first degraded step before the rejoin), and a run
// that ends successfully must not have logged anything at error level.
func TestEventLogCapturesCrashAndRejoin(t *testing.T) {
	var buf bytes.Buffer
	ev := events.New(events.Config{Writer: &buf, MinLevel: events.LevelDebug})
	st := newCRStrategy(t, 3)
	faults := []straggler.Fault{
		nil,
		straggler.DisconnectAt{Step: 5},
		straggler.CrashAt{Step: 2},
	}
	master, res, err := runFaultyCluster(t, st, faultyOpts{
		w: 3, maxSteps: 8, faults: faults,
		reconnect: 10 * time.Second, events: ev,
	})
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	if res.Run.Steps() != 8 {
		t.Fatalf("steps = %d, want 8", res.Run.Steps())
	}
	if master.Rejoins() != 1 {
		t.Fatalf("rejoins = %d, want 1 (worker 1's round trip)", master.Rejoins())
	}
	if ev.WriteErrors() != 0 {
		t.Fatalf("event log reported %d write errors", ev.WriteErrors())
	}

	// Replay the JSONL stream. Track the line index of each first
	// occurrence so causal ordering is checkable.
	type entry struct {
		Level  string `json:"level"`
		Type   string `json:"type"`
		Step   int    `json:"step"`
		Worker int    `json:"worker"`
		Msg    string `json:"msg"`
	}
	first := map[string]int{}
	var nLines int
	for i, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		nLines++
		var e entry
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if e.Type == "" || e.Msg == "" {
			t.Fatalf("line %d is missing type or msg: %s", i+1, line)
		}
		if e.Level == "error" {
			t.Errorf("successful run logged at error level: %s", line)
		}
		if _, ok := first[e.Type]; !ok {
			first[e.Type] = i
		}
	}
	if nLines < 10 {
		t.Fatalf("suspiciously few event lines (%d) for an 8-step faulty run", nLines)
	}

	for _, want := range []string{
		"master.run_started",
		"master.worker_registered",
		"master.worker_evicted",
		"master.step_degraded",
		"master.worker_rejoined",
		"master.run_finished",
		"worker.connected",
		"worker.crash_injected",
		"worker.disconnect_injected",
		"worker.reconnected",
	} {
		if _, ok := first[want]; !ok {
			t.Errorf("event log missing %q (saw %v)", want, keys(first))
		}
	}
	if t.Failed() {
		return
	}

	// Causal order: worker 2's crash is noticed (eviction) before the
	// shrunken fleet forces the first degraded step, and worker 1's rejoin
	// at step 5 comes after both.
	evicted, degraded, rejoined := first["master.worker_evicted"], first["master.step_degraded"], first["master.worker_rejoined"]
	if !(evicted < degraded) {
		t.Errorf("eviction (line %d) must precede the first degraded step (line %d)", evicted+1, degraded+1)
	}
	if !(degraded < rejoined) {
		t.Errorf("first degraded step (line %d) must precede the rejoin (line %d)", degraded+1, rejoined+1)
	}
	if !(first["master.run_started"] < first["master.worker_registered"]) {
		t.Error("run_started must be the master's first lifecycle event")
	}
}

func keys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
