package cluster

import (
	"reflect"
	"testing"

	"isgc/internal/trace"
)

// TestWireCodecEquivalence is the end-to-end equivalence satellite: the
// codec must change only the bytes on the wire, never the math. Two
// identically seeded IS-GC runs — one forced onto the legacy gob stream,
// one on binary frames — must produce bit-identical loss curves, chosen
// worker sets, and final parameters. With w = n and no injected delays the
// per-step availability set is always the full fleet, so the scheme's
// seeded RNG draws the same decode sequence in both runs and any
// divergence can only come from the transport.
func TestWireCodecEquivalence(t *testing.T) {
	wires := []string{WireGob, WireBinary}
	results := make([]*trace.Run, len(wires))
	params := make([][]float64, len(wires))
	for i, wire := range wires {
		fleet := []string{wire, wire, wire, wire}
		res, counts := runWireCluster(t, wire, fleet)
		if counts[wire] != 4 {
			t.Fatalf("%s run negotiated %v, want 4 × %s", wire, counts, wire)
		}
		run := res.Run
		// Elapsed is wall time and legitimately differs between runs;
		// everything else must match exactly.
		for j := range run.Records {
			run.Records[j].Elapsed = 0
		}
		results[i] = &run
		params[i] = res.Params
	}

	if !reflect.DeepEqual(results[0].Records, results[1].Records) {
		for j := range results[0].Records {
			if !reflect.DeepEqual(results[0].Records[j], results[1].Records[j]) {
				t.Fatalf("step %d diverged:\n  gob    %+v\n  binary %+v",
					j, results[0].Records[j], results[1].Records[j])
			}
		}
		t.Fatal("records diverged")
	}
	if len(params[0]) == 0 || !reflect.DeepEqual(params[0], params[1]) {
		t.Fatal("final parameters differ between gob and binary runs")
	}
	for j, rec := range results[0].Records {
		if rec.Available != 4 {
			t.Fatalf("step %d available = %d; equivalence argument needs the full fleet", j, rec.Available)
		}
	}
}
