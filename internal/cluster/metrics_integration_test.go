package cluster

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"isgc/internal/admin"
	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

// TestMasterMetricsMatchTrace runs a full in-process cluster with a
// mid-run worker crash while an admin server is scraped concurrently,
// then checks that the exported metrics agree exactly with the final
// trace.Run — the acceptance contract of the observability layer.
func TestMasterMetricsMatchTrace(t *testing.T) {
	p, err := placement.CR(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 7))
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)

	reg := metrics.NewRegistry()
	mm := NewMasterMetrics(reg)
	master, err := NewMaster(MasterConfig{
		Addr:            "127.0.0.1:0",
		Strategy:        st,
		Model:           mdl,
		Data:            data,
		LearningRate:    0.3,
		W:               2,
		MaxSteps:        8,
		Seed:            42,
		AcceptTimeout:   10 * time.Second,
		LivenessTimeout: 500 * time.Millisecond,
		Metrics:         mm,
	})
	if err != nil {
		t.Fatal(err)
	}

	adm := admin.New(admin.Config{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Health:   func() any { return master.Health() },
	})
	if err := adm.Start(); err != nil {
		t.Fatal(err)
	}
	defer adm.Shutdown(context.Background())

	parts, err := data.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	workerMetrics := make([]*WorkerMetrics, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		i := i
		workerMetrics[i] = NewWorkerMetrics(metrics.NewRegistry())
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var err error
				loaders[j], err = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if err != nil {
					t.Error(err)
					return
				}
			}
			var fault straggler.Fault
			if i == 3 {
				fault = straggler.CrashAt{Step: 3}
			}
			wk, err := NewWorker(WorkerConfig{
				Addr:              master.Addr(),
				ID:                i,
				Partitions:        pids,
				Loaders:           loaders,
				Model:             mdl,
				Encode:            SumEncoder(),
				Fault:             fault,
				HeartbeatInterval: 100 * time.Millisecond,
				Metrics:           workerMetrics[i],
			})
			if err != nil {
				t.Error(err)
				return
			}
			if _, err := wk.Run(); err != nil {
				t.Error(err)
			}
		}()
	}

	// Scrape continuously while the cluster trains: the race-detector
	// workout for live exposition and health snapshots.
	scrapeStop := make(chan struct{})
	scrapeDone := make(chan struct{})
	go func() {
		defer close(scrapeDone)
		client := &http.Client{Timeout: time.Second}
		for {
			select {
			case <-scrapeStop:
				return
			default:
			}
			resp, err := client.Get(adm.URL() + "/metrics")
			if err != nil {
				t.Error(err)
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			resp, err = client.Get(adm.URL() + "/healthz")
			if err != nil {
				t.Error(err)
				return
			}
			var h MasterHealth
			if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
				t.Errorf("mid-run healthz decode: %v", err)
			}
			resp.Body.Close()
			if len(h.Workers) != 4 {
				t.Errorf("mid-run healthz has %d workers, want 4", len(h.Workers))
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	res, err := master.Run()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	close(scrapeStop)
	<-scrapeDone

	// Metrics must agree with the final trace.
	steps := uint64(res.Run.Steps())
	if got := mm.Steps.Value(); got != steps {
		t.Errorf("steps counter = %d, trace says %d", got, steps)
	}
	if got := mm.GatherLatency.Count(); got != steps {
		t.Errorf("gather histogram count = %d, trace says %d steps", got, steps)
	}
	if got, want := mm.DegradedSteps.Value(), uint64(res.Run.DegradedSteps()); got != want {
		t.Errorf("degraded counter = %d, trace says %d", got, want)
	}
	last := res.Run.Records[len(res.Run.Records)-1]
	if got := mm.RecoveredFraction.Value(); got != last.RecoveredFraction {
		t.Errorf("recovered fraction gauge = %v, trace says %v", got, last.RecoveredFraction)
	}
	if got := mm.Malformed.Value(); got != 0 {
		t.Errorf("malformed counter = %d, want 0", got)
	}
	if mm.SentBytes.Value() == 0 {
		t.Error("master sent-bytes counter never moved")
	}

	// The final health snapshot reflects the crash and the run's end.
	h := master.Health()
	if h.Running {
		t.Error("health still reports running after Run returned")
	}
	if len(h.Workers) != 4 {
		t.Fatalf("health has %d workers, want 4", len(h.Workers))
	}
	if h.Workers[3].Alive {
		t.Error("crashed worker 3 still reported alive")
	}
	if h.DegradedSteps != res.Run.DegradedSteps() {
		t.Errorf("health degraded = %d, trace says %d", h.DegradedSteps, res.Run.DegradedSteps())
	}
	if h.GatherP95Seconds <= 0 || h.GatherP50Seconds <= 0 {
		t.Errorf("health gather quantiles p50=%v p95=%v, want > 0 after a run",
			h.GatherP50Seconds, h.GatherP95Seconds)
	}
	if h.GatherP50Seconds > h.GatherP95Seconds {
		t.Errorf("gather p50 %v > p95 %v", h.GatherP50Seconds, h.GatherP95Seconds)
	}
	counts := master.ArrivalCounts()
	for i, v := range h.Workers {
		if int(v.AcceptedSteps) != counts[i] {
			t.Errorf("health accepted[%d] = %d, ArrivalCounts says %d", i, v.AcceptedSteps, counts[i])
		}
	}

	// Worker-side instruments moved for a surviving worker.
	wm := workerMetrics[0]
	if wm.Steps.Value() == 0 || wm.ComputeTime.Count() == 0 || wm.SentBytes.Value() == 0 {
		t.Errorf("worker 0 instruments did not move: steps=%d compute=%d bytes=%d",
			wm.Steps.Value(), wm.ComputeTime.Count(), wm.SentBytes.Value())
	}
	if wm.Steps.Value() != wm.ComputeTime.Count() {
		t.Errorf("worker 0 steps (%d) != compute observations (%d)", wm.Steps.Value(), wm.ComputeTime.Count())
	}

	// The exposition carries the per-worker families with real values.
	reqCtx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(reqCtx, "GET", adm.URL()+"/metrics", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"isgc_master_gather_latency_seconds_bucket",
		"isgc_master_recovered_fraction",
		"isgc_master_degraded_steps_total",
		"isgc_master_alive_workers",
		"isgc_master_max_heartbeat_age_seconds",
		`isgc_master_worker_alive{worker="3"} 0`,
		`isgc_master_accepted_gradients_total{worker="0"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestWorkerHealthSnapshot pins the worker-side /healthz payload fields.
func TestWorkerHealthSnapshot(t *testing.T) {
	p, err := placement.CR(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 7))
	if err != nil {
		t.Fatal(err)
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	data := testData(t)
	res := launchClusterHealth(t, st, data, mdl)
	if res == nil {
		t.Fatal("no result")
	}
}

// launchClusterHealth is a small variant of launchCluster that checks
// Worker.Health before, during and after a run.
func launchClusterHealth(t *testing.T, st engine.Strategy, data *dataset.Dataset, mdl model.Model) *engine.Result {
	t.Helper()
	master, err := NewMaster(MasterConfig{
		Addr: "127.0.0.1:0", Strategy: st, Model: mdl, Data: data,
		LearningRate: 0.3, W: st.N(), MaxSteps: 3, Seed: 42,
		AcceptTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	parts, err := data.Partition(st.N())
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < st.N(); i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			pids := st.Partitions(i)
			loaders := make([]*dataset.Loader, len(pids))
			for j, d := range pids {
				var lerr error
				loaders[j], lerr = dataset.NewLoader(parts[d], 16, 42+int64(d)*7919)
				if lerr != nil {
					t.Error(lerr)
					return
				}
			}
			wk, err := NewWorker(WorkerConfig{
				Addr: master.Addr(), ID: i, Partitions: pids, Loaders: loaders,
				Model: mdl, Encode: SumEncoder(),
			})
			if err != nil {
				t.Error(err)
				return
			}
			h := wk.Health()
			if h.ID != i || !h.Connected || h.StepsServed != 0 {
				t.Errorf("fresh worker health = %+v", h)
			}
			steps, err := wk.Run()
			if err != nil {
				t.Error(err)
				return
			}
			h = wk.Health()
			if h.Connected {
				t.Errorf("worker %d health still connected after Run", i)
			}
			if int(h.StepsServed) != steps {
				t.Errorf("worker %d health steps = %d, Run returned %d", i, h.StepsServed, steps)
			}
		}()
	}
	res, err := master.Run()
	if err != nil {
		t.Fatalf("master: %v", err)
	}
	wg.Wait()
	return res
}
