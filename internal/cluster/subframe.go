// The binaryv2 sub-frame codec: the binary frame grammar of binary.go with
// a 44-byte header whose two extra fields, offset and total, describe where
// a gradient payload lands inside the full gradient vector. This is what
// lets one step's upload split across S parallel lane connections — each
// lane carries a contiguous (offset, len) slice, and the master's shard
// assembler decodes every payload straight into the gather buffer at its
// offset, with no reassembly copies (see shard.go).
//
// Frame layout (all little-endian):
//
//	offset size field
//	0      4    magic "ISGC"
//	4      1    version (2)
//	5      1    message type (1 hello, 2 step, 3 gradient, 4 heartbeat, 5 stop)
//	6      2    reserved (must be zero)
//	8      4    worker id
//	12     4    step
//	16     8    compute start (unix nanoseconds)
//	24     8    compute duration (nanoseconds)
//	32     4    dim — payload length in float64 words (the length prefix)
//	36     4    offset — first gradient element this payload covers
//	40     4    total — full gradient dimension the sub-frame belongs to
//	44     8·dim payload
//
// The sub-frame geometry is meaningful only on gradient frames: every
// other kind must carry zero offset and total (like the reserved bytes),
// so a whole-vector step broadcast is byte-for-byte the v1 frame plus the
// version bump and eight zero bytes. The encoding stays canonical — one
// valid byte representation per envelope, everything else rejected — and
// FuzzDecodeSubFrame hammers the parser exactly like FuzzDecodeFrame
// hammers v1.
package cluster

import (
	"fmt"
	"io"
	"math"
)

// Binary v2 frame geometry.
const (
	frameVersion2     = 2
	frameHeaderSizeV2 = 44
)

// shardSpans splits a dim-length vector into contiguous, near-equal
// (offset, len) spans, one per lane — the first dim%shards spans are one
// element wider, so the widths differ by at most one. More lanes than
// elements leaves the surplus lanes with zero-width spans, which senders
// skip; the split is pure arithmetic, so both peers and the tests derive
// the same geometry without negotiating it.
func shardSpans(dim, shards int) [][2]int {
	if shards < 1 {
		shards = 1
	}
	spans := make([][2]int, shards)
	base, rem := dim/shards, dim%shards
	off := 0
	for s := range spans {
		w := base
		if s < rem {
			w++
		}
		spans[s] = [2]int{off, w}
		off += w
	}
	return spans
}

// AppendSubFrame appends the canonical binaryv2 encoding of e to dst and
// returns the extended slice. On top of AppendFrame's refusals it enforces
// the sub-frame geometry rules: gradient frames need a positive Total
// covering [Offset, Offset+len(Coded)), every other kind must have both
// zero.
func AppendSubFrame(dst []byte, e *Envelope) ([]byte, error) {
	if err := validateEnvelope(e); err != nil {
		return nil, err
	}
	if e.Wire != "" {
		return nil, fmt.Errorf("cluster: %s frame cannot carry wire negotiation %q", e.Kind, e.Wire)
	}
	if e.Shards != 0 || e.Shard != 0 {
		return nil, fmt.Errorf("cluster: %s frame cannot carry lane negotiation", e.Kind)
	}
	t := frameTypeOf(e.Kind)
	if t == 0 {
		return nil, fmt.Errorf("cluster: no binary frame type for kind %q", e.Kind)
	}
	if e.Worker > maxFrameID {
		return nil, fmt.Errorf("cluster: worker id %d exceeds frame limit", e.Worker)
	}
	if e.Step > maxFrameID {
		return nil, fmt.Errorf("cluster: step %d exceeds frame limit", e.Step)
	}
	vec, err := framePayload(e)
	if err != nil {
		return nil, err
	}
	if e.Kind == MsgGradient {
		if e.Total < 1 {
			return nil, fmt.Errorf("cluster: gradient sub-frame needs a positive total, got %d", e.Total)
		}
	} else if e.Offset != 0 || e.Total != 0 {
		return nil, fmt.Errorf("cluster: %s frame cannot carry sub-frame geometry (%d, %d)", e.Kind, e.Offset, e.Total)
	}

	off := len(dst)
	need := frameHeaderSizeV2 + 8*len(vec)
	if cap(dst)-off < need {
		grown := make([]byte, off, off+need)
		copy(grown, dst)
		dst = grown
	}
	dst = dst[:off+need]
	h := dst[off:]
	h[0], h[1], h[2], h[3] = frameMagic0, frameMagic1, frameMagic2, frameMagic3
	h[4] = frameVersion2
	h[5] = t
	h[6], h[7] = 0, 0
	putU32(h[8:], uint32(e.Worker))
	putU32(h[12:], uint32(e.Step))
	putU64(h[16:], uint64(e.ComputeStartUnixNano))
	putU64(h[24:], uint64(e.ComputeDurNanos))
	putU32(h[32:], uint32(len(vec)))
	putU32(h[36:], uint32(e.Offset))
	putU32(h[40:], uint32(e.Total))
	p := h[frameHeaderSizeV2:]
	for i, v := range vec {
		putU64(p[8*i:], math.Float64bits(v))
	}
	return dst, nil
}

// EncodeSubFrame renders one envelope as a standalone binaryv2 frame — used
// by tests, fuzz seeds, and the golden vectors.
func EncodeSubFrame(e *Envelope) ([]byte, error) {
	return AppendSubFrame(nil, e)
}

// frameHeaderV2 is the parsed fixed header of one binaryv2 frame.
type frameHeaderV2 struct {
	frameHeader
	offset, total int
}

// parseFrameHeaderV2 validates and parses a 44-byte v2 header. Every
// rejection is an error, never a panic — this parser fronts adversarial
// bytes and is hammered by FuzzDecodeSubFrame.
func parseFrameHeaderV2(h []byte) (frameHeaderV2, error) {
	var fh frameHeaderV2
	if len(h) < frameHeaderSizeV2 {
		return fh, fmt.Errorf("cluster: v2 frame header truncated: %d of %d bytes", len(h), frameHeaderSizeV2)
	}
	if h[0] != frameMagic0 || h[1] != frameMagic1 || h[2] != frameMagic2 || h[3] != frameMagic3 {
		return fh, fmt.Errorf("cluster: bad frame magic % x", h[:4])
	}
	if h[4] != frameVersion2 {
		return fh, fmt.Errorf("cluster: unsupported frame version %d (speak %d)", h[4], frameVersion2)
	}
	fh.kind = frameKindOf(h[5])
	if fh.kind == "" {
		return fh, fmt.Errorf("cluster: unknown frame type %d", h[5])
	}
	if h[6] != 0 || h[7] != 0 {
		return fh, fmt.Errorf("cluster: nonzero reserved bytes % x in v2 frame", h[6:8])
	}
	worker := getU32(h[8:])
	step := getU32(h[12:])
	if worker > maxFrameID || step > maxFrameID {
		return fh, fmt.Errorf("cluster: frame worker=%d step=%d exceed id limit", worker, step)
	}
	fh.worker = int(worker)
	fh.step = int(step)
	fh.computeStart = int64(getU64(h[16:]))
	fh.computeDur = int64(getU64(h[24:]))
	dim := getU32(h[32:])
	if dim > maxVectorLen {
		return fh, fmt.Errorf("cluster: frame dim %d exceeds limit %d", dim, maxVectorLen)
	}
	fh.dim = int(dim)
	offset := getU32(h[36:])
	total := getU32(h[40:])
	if offset > maxVectorLen || total > maxVectorLen {
		return fh, fmt.Errorf("cluster: sub-frame geometry (%d, %d) exceeds limit %d", offset, total, maxVectorLen)
	}
	fh.offset = int(offset)
	fh.total = int(total)
	if fh.kind == MsgGradient {
		if fh.total < 1 {
			return fh, fmt.Errorf("cluster: gradient sub-frame with zero total")
		}
		if fh.offset+fh.dim > fh.total {
			return fh, fmt.Errorf("cluster: sub-frame [%d, %d) exceeds total %d", fh.offset, fh.offset+fh.dim, fh.total)
		}
	} else if fh.offset != 0 || fh.total != 0 {
		return fh, fmt.Errorf("cluster: %s frame carries sub-frame geometry (%d, %d)", fh.kind, fh.offset, fh.total)
	}
	return fh, nil
}

// subFrameEnvelope assembles the envelope a parsed v2 header + payload
// describe and passes it through the shared validation choke point.
func subFrameEnvelope(fh frameHeaderV2, vec []float64) (*Envelope, error) {
	e := &Envelope{
		Kind:                 fh.kind,
		Worker:               fh.worker,
		Step:                 fh.step,
		ComputeStartUnixNano: fh.computeStart,
		ComputeDurNanos:      fh.computeDur,
		Offset:               fh.offset,
		Total:                fh.total,
	}
	switch fh.kind {
	case MsgStep:
		e.Params = vec
	case MsgGradient:
		e.Coded = vec
	default:
		if fh.dim != 0 {
			return nil, fmt.Errorf("cluster: %s frame carries unexpected %d-word payload", fh.kind, fh.dim)
		}
	}
	if err := validateEnvelope(e); err != nil {
		return nil, err
	}
	return e, nil
}

// DecodeSubFrame decodes exactly one standalone binaryv2 frame, with the
// same totality guarantees as DecodeFrame: truncation, trailing bytes,
// version skew, and geometry violations all error, nothing panics.
func DecodeSubFrame(data []byte) (*Envelope, error) {
	fh, err := parseFrameHeaderV2(data)
	if err != nil {
		return nil, err
	}
	if want := frameHeaderSizeV2 + 8*fh.dim; len(data) != want {
		return nil, fmt.Errorf("cluster: v2 frame length %d, want %d for dim %d", len(data), want, fh.dim)
	}
	var vec []float64
	if fh.dim > 0 {
		vec = decodePayload(data[frameHeaderSizeV2:], make([]float64, fh.dim))
	}
	return subFrameEnvelope(fh, vec)
}

// sendFrameV2 serializes e as a binaryv2 frame into a pooled buffer and
// writes it with a single Write call. Sub-frame sends size the pooled
// buffer by their shard width, not the full gradient dimension — S lanes
// streaming a dim-sized gradient pool S width-sized buffers, not S
// dim-sized ones. Callers hold sendMu.
func (c *conn) sendFrameV2(e *Envelope) error {
	bp := frameBufPool.Get().(*[]byte)
	buf, err := AppendSubFrame((*bp)[:0], e)
	if err != nil {
		frameBufPool.Put(bp)
		return err
	}
	_, werr := c.w.Write(buf)
	*bp = buf[:0]
	frameBufPool.Put(bp)
	return werr
}

// recvFrameV2 reads one binaryv2 frame from the connection. Gradient
// payloads decode through the gradReserve hook when the owner installed
// one — straight into the shard assembler's gather buffer at the
// sub-frame's offset, no copy — and a declined reservation (nil
// destination) drains the payload bytes without decoding them, surfacing
// the envelope with a nil Coded for the reader to count and drop.
func (c *conn) recvFrameV2() (*Envelope, error) {
	if _, err := io.ReadFull(c.r, c.hdrScratch[:frameHeaderSizeV2]); err != nil {
		return nil, fmt.Errorf("cluster: recv frame header: %w", err)
	}
	fh, err := parseFrameHeaderV2(c.hdrScratch[:frameHeaderSizeV2])
	if err != nil {
		return nil, err
	}
	var vec []float64
	if fh.dim > 0 {
		nbytes := 8 * fh.dim
		if cap(c.payloadScratch) < nbytes {
			c.payloadScratch = make([]byte, nbytes)
		}
		p := c.payloadScratch[:nbytes]
		if _, err := io.ReadFull(c.r, p); err != nil {
			return nil, fmt.Errorf("cluster: recv %s payload (%d words): %w", fh.kind, fh.dim, err)
		}
		switch {
		case fh.kind == MsgGradient && c.gradReserve != nil:
			if dst := c.gradReserve(fh.worker, fh.step, fh.offset, fh.dim, fh.total); dst != nil {
				vec = decodePayload(p, dst)
			}
		case c.reuseVecs:
			if cap(c.vecScratch) < fh.dim {
				c.vecScratch = make([]float64, fh.dim)
			}
			vec = decodePayload(p, c.vecScratch[:fh.dim])
		default:
			vec = decodePayload(p, make([]float64, fh.dim))
		}
	}
	if fh.kind == MsgGradient && vec == nil && fh.dim > 0 {
		// Declined reservation: keep the envelope well-formed (a gradient
		// with geometry but no payload) so the reader can account for it.
		e := &Envelope{
			Kind: MsgGradient, Worker: fh.worker, Step: fh.step,
			ComputeStartUnixNano: fh.computeStart, ComputeDurNanos: fh.computeDur,
			Offset: fh.offset, Total: fh.total,
		}
		return e, nil
	}
	return subFrameEnvelope(fh, vec)
}
