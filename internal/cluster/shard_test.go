package cluster

import (
	"reflect"
	"testing"
)

func TestShardSpans(t *testing.T) {
	cases := []struct {
		dim, shards int
		want        [][2]int
	}{
		{10, 4, [][2]int{{0, 3}, {3, 3}, {6, 2}, {8, 2}}},
		{8, 1, [][2]int{{0, 8}}},
		// More lanes than elements: the surplus lanes get zero-width spans.
		{2, 4, [][2]int{{0, 1}, {1, 1}, {2, 0}, {2, 0}}},
		// A non-positive lane count is clamped to one lane.
		{5, 0, [][2]int{{0, 5}}},
	}
	for _, c := range cases {
		if got := shardSpans(c.dim, c.shards); !reflect.DeepEqual(got, c.want) {
			t.Errorf("shardSpans(%d, %d) = %v, want %v", c.dim, c.shards, got, c.want)
		}
	}

	// Property check across shapes: spans are contiguous from zero, cover
	// the vector exactly, and widths differ by at most one.
	for _, dim := range []int{1, 7, 16, 65} {
		for shards := 1; shards <= 6; shards++ {
			spans := shardSpans(dim, shards)
			if len(spans) != shards {
				t.Fatalf("shardSpans(%d, %d): %d spans", dim, shards, len(spans))
			}
			off, min, max := 0, dim, 0
			for _, sp := range spans {
				if sp[0] != off {
					t.Fatalf("shardSpans(%d, %d): span %v not contiguous at %d", dim, shards, sp, off)
				}
				off += sp[1]
				if sp[1] < min {
					min = sp[1]
				}
				if sp[1] > max {
					max = sp[1]
				}
			}
			if off != dim {
				t.Fatalf("shardSpans(%d, %d): spans cover %d elements", dim, shards, off)
			}
			if max-min > 1 {
				t.Fatalf("shardSpans(%d, %d): widths range [%d, %d]", dim, shards, min, max)
			}
		}
	}
}

func TestGrantShards(t *testing.T) {
	cases := []struct{ proposed, cap, want int }{
		{0, 0, 1},  // no proposal: one lane
		{-3, 0, 1}, // nonsense clamps up
		{1, 0, 1},  // single-lane stays single-lane
		{4, 0, 4},  // cap 0: grant up to the protocol max
		{maxGatherShards + 5, 0, maxGatherShards},
		{4, 2, 2}, // cap below the proposal wins
		{2, 8, 2}, // cap above the proposal is a no-op
		{4, 1, 1}, // cap 1: down-negotiate to an unsharded lane
		{maxGatherShards + 5, maxGatherShards + 9, maxGatherShards},
	}
	for _, c := range cases {
		if got := grantShards(c.proposed, c.cap); got != c.want {
			t.Errorf("grantShards(%d, %d) = %d, want %d", c.proposed, c.cap, got, c.want)
		}
	}
}

func newTestAssembler(window int, rejects *int) *shardAssembler {
	return &shardAssembler{window: window, newest: -1, steps: make(map[int]*shardBuf),
		onReject: func(step, offset, count, total int) { *rejects++ }}
}

// TestShardAssemblerReassemblesSpans drives the reserve/commit sequence
// recvFrameV2 runs: the reserved slices alias the step's gather buffer
// (zero-copy), and the completed vector surfaces exactly once, with the
// last committed span.
func TestShardAssemblerReassemblesSpans(t *testing.T) {
	rejects := 0
	a := newTestAssembler(3, &rejects)

	lo := a.reserveFor(99, 7, 0, 3, 6) // claimed worker id is ignored
	if len(lo) != 3 {
		t.Fatalf("first reserve returned %d elements, want 3", len(lo))
	}
	copy(lo, []float64{1, 2, 3})
	if _, done := a.commit(&Envelope{Kind: MsgGradient, Step: 7, Total: 6, Coded: lo}); done {
		t.Fatal("half-assembled step reported done")
	}

	hi := a.reserveFor(0, 7, 3, 3, 6)
	if len(hi) != 3 {
		t.Fatalf("second reserve returned %d elements, want 3", len(hi))
	}
	copy(hi, []float64{4, 5, 6})
	vec, done := a.commit(&Envelope{Kind: MsgGradient, Step: 7, Total: 6, Coded: hi})
	if !done {
		t.Fatal("fully assembled step not reported done")
	}
	if want := []float64{1, 2, 3, 4, 5, 6}; !reflect.DeepEqual(vec, want) {
		t.Fatalf("assembled vector %v, want %v", vec, want)
	}
	if &vec[0] != &lo[0] {
		t.Fatal("assembled vector is a copy; spans must decode into the gather buffer")
	}
	if len(a.steps) != 0 {
		t.Fatalf("completed step still tracked: %d in-flight", len(a.steps))
	}
	if rejects != 0 {
		t.Fatalf("clean reassembly counted %d rejects", rejects)
	}
}

// TestShardAssemblerRejectsBadGeometry: overlapping spans, a total that
// disagrees with the step's buffer, and out-of-range spans all decline the
// reservation (nil — the payload is drained, not decoded) and count a
// protocol violation.
func TestShardAssemblerRejectsBadGeometry(t *testing.T) {
	rejects := 0
	a := newTestAssembler(3, &rejects)

	if got := a.reserveFor(0, 1, 0, 4, 8); len(got) != 4 {
		t.Fatalf("seed reserve returned %d elements", len(got))
	}
	if a.reserveFor(0, 1, 2, 4, 8) != nil {
		t.Error("overlapping span was not declined")
	}
	if a.reserveFor(0, 1, 4, 2, 9) != nil {
		t.Error("total mismatch was not declined")
	}
	if a.reserveFor(0, 1, 6, 4, 8) != nil {
		t.Error("out-of-range span was not declined")
	}
	if rejects != 3 {
		t.Errorf("counted %d rejects, want 3", rejects)
	}

	// Commits for steps the assembler is not tracking, or with a total that
	// disagrees with the tracked buffer, report not-done without state damage.
	if _, done := a.commit(&Envelope{Kind: MsgGradient, Step: 42, Total: 8, Coded: []float64{1}}); done {
		t.Error("commit for an unknown step reported done")
	}
	if _, done := a.commit(&Envelope{Kind: MsgGradient, Step: 1, Total: 9, Coded: []float64{1}}); done {
		t.Error("commit with a mismatched total reported done")
	}
}

// TestShardAssemblerEvictsStaleSteps: a step whose missing spans never
// arrive falls out of the in-flight window when newer steps register, and
// a late commit for it lands harmlessly as not-done.
func TestShardAssemblerEvictsStaleSteps(t *testing.T) {
	rejects := 0
	a := newTestAssembler(3, &rejects)

	stale := a.reserveFor(0, 0, 0, 2, 4) // partial: step 0 never completes
	if len(stale) != 2 {
		t.Fatalf("partial reserve returned %d elements", len(stale))
	}
	for step := 1; step <= 3; step++ {
		if got := a.reserveFor(0, step, 0, 4, 4); len(got) != 4 {
			t.Fatalf("step %d reserve returned %d elements", step, len(got))
		}
	}
	if _, tracked := a.steps[0]; tracked {
		t.Fatal("step 0 survived past the in-flight window")
	}
	if len(a.steps) != 3 {
		t.Fatalf("%d steps in flight, want 3", len(a.steps))
	}
	if _, done := a.commit(&Envelope{Kind: MsgGradient, Step: 0, Total: 4, Coded: stale}); done {
		t.Fatal("commit for an evicted step reported done")
	}
	if rejects != 0 {
		t.Fatalf("window eviction counted %d rejects; it is not a protocol violation", rejects)
	}
}
