package cliconfig

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"isgc/internal/events"
)

func TestOpenEventLogRingOnly(t *testing.T) {
	log, closer, err := OpenEventLog("", "")
	if err != nil {
		t.Fatal(err)
	}
	if closer != nil {
		t.Fatal("ring-only log must not return a closer")
	}
	log.Info("test.event", "hello", events.NoStep, events.NoWorker, nil)
	if log.Total() != 1 {
		t.Fatalf("ring total = %d, want 1", log.Total())
	}
	// The empty level defaults to info: debug must be filtered.
	log.Debug("test.debug", "filtered", events.NoStep, events.NoWorker, nil)
	if log.Total() != 1 {
		t.Fatal("empty level must default to info and filter debug")
	}
}

func TestOpenEventLogFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ev.jsonl")
	log, closer, err := OpenEventLog(path, "warn")
	if err != nil {
		t.Fatal(err)
	}
	if closer == nil {
		t.Fatal("file-backed log must return its closer")
	}
	log.Info("test.info", "filtered", events.NoStep, events.NoWorker, nil)
	log.Warn("test.warn", "kept", events.NoStep, events.NoWorker, nil)
	if err := closer.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(string(raw)); strings.Count(got, "\n") != 0 || !strings.Contains(got, "test.warn") {
		t.Fatalf("file must hold exactly the one warn line, got:\n%s", got)
	}
}

func TestOpenEventLogErrors(t *testing.T) {
	if _, _, err := OpenEventLog("", "loud"); err == nil {
		t.Fatal("bad level must error")
	}
	if _, _, err := OpenEventLog(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), "info"); err == nil {
		t.Fatal("uncreatable path must error")
	}
}
