package cliconfig

import (
	"testing"

	"isgc/internal/placement"
)

func TestSchemeSpecBuild(t *testing.T) {
	cases := []struct {
		spec SchemeSpec
		kind placement.Kind
		ok   bool
	}{
		{SchemeSpec{Scheme: "fr", N: 4, C: 2}, placement.KindFR, true},
		{SchemeSpec{Scheme: "cr", N: 7, C: 3}, placement.KindCR, true},
		{SchemeSpec{Scheme: "hr", N: 8, C: 4, C1: 2, G: 2}, placement.KindHR, true},
		{SchemeSpec{Scheme: "hr", N: 8, C: 4, C1: 0, G: 2}, placement.KindCR, true}, // c1=0 → CR
		{SchemeSpec{Scheme: "fr", N: 5, C: 2}, 0, false},                            // c∤n
		{SchemeSpec{Scheme: "hr", N: 8, C: 4, C1: 5, G: 2}, 0, false},               // c1 > c
		{SchemeSpec{Scheme: "hr", N: 8, C: 4, C1: -1, G: 2}, 0, false},
		{SchemeSpec{Scheme: "mystery", N: 4, C: 2}, 0, false},
	}
	for i, tc := range cases {
		p, err := tc.spec.Build()
		if tc.ok {
			if err != nil {
				t.Errorf("case %d: %v", i, err)
				continue
			}
			if p.Kind() != tc.kind {
				t.Errorf("case %d: kind %v, want %v", i, p.Kind(), tc.kind)
			}
		} else if err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestDataSpecLoaders(t *testing.T) {
	d := DefaultData(42)
	data, err := d.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	if data.Len() != 240 || data.Dim() != 6 {
		t.Fatalf("dataset shape %dx%d", data.Len(), data.Dim())
	}
	loaders, err := d.BuildLoaders(data, 4, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(loaders) != 2 {
		t.Fatalf("loaders = %d", len(loaders))
	}
	// Replica consistency: building loaders twice gives identical batches.
	again, err := d.BuildLoaders(data, 4, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 10; step++ {
		a, b := loaders[0].Batch(step), again[0].Batch(step)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("step %d: replica batches differ", step)
			}
		}
	}
}

func TestBuildLoadersErrors(t *testing.T) {
	d := DefaultData(1)
	data, err := d.BuildDataset()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.BuildLoaders(data, 7, []int{0}); err == nil {
		t.Error("indivisible partitioning must error")
	}
	if _, err := d.BuildLoaders(data, 4, []int{4}); err == nil {
		t.Error("out-of-range partition must error")
	}
	if _, err := d.BuildLoaders(data, 4, []int{-1}); err == nil {
		t.Error("negative partition must error")
	}
}

func TestLoaderSeedDistinctPerPartition(t *testing.T) {
	d := DefaultData(5)
	seen := map[int64]bool{}
	for part := 0; part < 16; part++ {
		s := d.LoaderSeed(part)
		if seen[s] {
			t.Fatalf("duplicate loader seed for partition %d", part)
		}
		seen[s] = true
	}
}
