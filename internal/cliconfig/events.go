package cliconfig

import (
	"fmt"
	"io"
	"os"

	"isgc/internal/events"
)

// OpenEventLog builds the structured event log the -events and -log-level
// flags describe, shared by the master and worker binaries. path "" yields
// a ring-only log (events visible on /debug/events but written nowhere),
// "-" logs to stderr, anything else creates/truncates a JSONL file. The
// returned closer is nil unless a file was opened; callers defer its Close.
func OpenEventLog(path, level string) (*events.Log, io.Closer, error) {
	if level == "" {
		level = "info"
	}
	lvl, err := events.ParseLevel(level)
	if err != nil {
		return nil, nil, err
	}
	var w io.Writer
	var closer io.Closer
	switch path {
	case "":
		// ring-only
	case "-":
		w = os.Stderr
	default:
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, fmt.Errorf("event log: %w", err)
		}
		w = f
		closer = f
	}
	return events.New(events.Config{Writer: w, MinLevel: lvl}), closer, nil
}
