// Package cliconfig holds the configuration logic shared by the
// isgc-master and isgc-worker binaries: parsing the scheme flags into a
// placement, and constructing the deterministic per-partition loaders that
// both sides must agree on (the paper's controlled-seed requirement — a
// partition's mini-batch at step t must be identical on every worker
// replicating it, or coded gradients stop being summable).
package cliconfig

import (
	"fmt"

	"isgc/internal/dataset"
	"isgc/internal/placement"
)

// SchemeSpec captures the placement flags of both binaries.
type SchemeSpec struct {
	// Scheme is "fr", "cr", or "hr".
	Scheme string
	// N is the worker/partition count, C the partitions per worker.
	N, C int
	// C1 and G configure HR (Scheme == "hr"): the placement is
	// HR(N, C1, C-C1, G).
	C1, G int
}

// Build resolves the spec to a placement.
func (s SchemeSpec) Build() (*placement.Placement, error) {
	switch s.Scheme {
	case "fr":
		return placement.FR(s.N, s.C)
	case "cr":
		return placement.CR(s.N, s.C)
	case "hr":
		if s.C1 < 0 || s.C1 > s.C {
			return nil, fmt.Errorf("cliconfig: need 0 ≤ c1 ≤ c, got c1=%d c=%d", s.C1, s.C)
		}
		return placement.HR(s.N, s.C1, s.C-s.C1, s.G)
	default:
		return nil, fmt.Errorf("cliconfig: unknown scheme %q (want fr, cr, or hr)", s.Scheme)
	}
}

// DataSpec captures the dataset flags both binaries must agree on.
type DataSpec struct {
	// Samples, Features, Classes, Separation parameterize the synthetic
	// classification dataset.
	Samples, Features, Classes int
	Separation                 float64
	// Seed is the shared dataset/loader seed.
	Seed int64
	// Batch is the per-partition mini-batch size.
	Batch int
}

// DefaultData returns the dataset configuration both binaries default to.
func DefaultData(seed int64) DataSpec {
	return DataSpec{Samples: 240, Features: 6, Classes: 3, Separation: 1.5, Seed: seed, Batch: 8}
}

// BuildDataset generates the shared synthetic dataset.
func (d DataSpec) BuildDataset() (*dataset.Dataset, error) {
	return dataset.SyntheticClusters(d.Samples, d.Features, d.Classes, d.Separation, d.Seed)
}

// LoaderSeed returns the canonical loader seed for a partition; master and
// every worker replica derive the same value, which is what makes replica
// batches identical.
func (d DataSpec) LoaderSeed(part int) int64 {
	return d.Seed + int64(part)*7919
}

// BuildLoaders partitions the dataset and returns loaders for the given
// partition ids (a worker passes its own placement row; the full range
// gives the master's view).
func (d DataSpec) BuildLoaders(data *dataset.Dataset, n int, partIDs []int) ([]*dataset.Loader, error) {
	parts, err := data.Partition(n)
	if err != nil {
		return nil, fmt.Errorf("cliconfig: %w", err)
	}
	out := make([]*dataset.Loader, len(partIDs))
	for j, id := range partIDs {
		if id < 0 || id >= n {
			return nil, fmt.Errorf("cliconfig: partition %d out of range [0,%d)", id, n)
		}
		out[j], err = dataset.NewLoader(parts[id], d.Batch, d.LoaderSeed(id))
		if err != nil {
			return nil, fmt.Errorf("cliconfig: partition %d: %w", id, err)
		}
	}
	return out, nil
}
