package isgc

import (
	"math"
	"math/rand"
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/graph"
	"isgc/internal/placement"
)

func mustScheme(t *testing.T, p *placement.Placement, err error, seed int64) *Scheme {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	return New(p, seed)
}

func frScheme(t *testing.T, n, c int, seed int64) *Scheme {
	t.Helper()
	p, err := placement.FR(n, c)
	return mustScheme(t, p, err, seed)
}

func crScheme(t *testing.T, n, c int, seed int64) *Scheme {
	t.Helper()
	p, err := placement.CR(n, c)
	return mustScheme(t, p, err, seed)
}

func hrScheme(t *testing.T, n, c1, c2, g int, seed int64) *Scheme {
	t.Helper()
	p, err := placement.HR(n, c1, c2, g)
	return mustScheme(t, p, err, seed)
}

func randAvail(rng *rand.Rand, n int, p float64) *bitset.Set {
	s := bitset.New(n)
	for v := 0; v < n; v++ {
		if rng.Float64() < p {
			s.Add(v)
		}
	}
	return s
}

// checkDecode verifies the decoder contract on one instance: the chosen set
// is an available independent set of the conflict graph whose size matches
// the exact independence number α(G[W']).
func checkDecode(t *testing.T, s *Scheme, avail *bitset.Set) {
	t.Helper()
	chosen := s.Decode(avail)
	if !chosen.SubsetOf(avail) {
		t.Fatalf("%v: chosen %v ⊄ available %v", s.Placement(), chosen, avail)
	}
	cg := s.Placement().ConflictGraph()
	if !cg.IsIndependent(chosen) {
		t.Fatalf("%v: chosen %v not independent (W'=%v)", s.Placement(), chosen, avail)
	}
	want := graph.IndependenceNumber(cg, avail)
	if chosen.Len() != want {
		t.Fatalf("%v: decode size %d ≠ α(G[W']) = %d (W'=%v, chosen=%v)",
			s.Placement(), chosen.Len(), want, avail, chosen)
	}
}

func TestDecodeEmptyAvailability(t *testing.T) {
	for _, s := range []*Scheme{frScheme(t, 4, 2, 1), crScheme(t, 5, 2, 1), hrScheme(t, 8, 2, 2, 2, 1)} {
		if got := s.Decode(bitset.New(s.Placement().N())); !got.Empty() {
			t.Errorf("%v: Decode(∅) = %v, want empty", s.Placement(), got)
		}
		if got := s.Decode(nil); !got.Empty() {
			t.Errorf("%v: Decode(nil) = %v, want empty", s.Placement(), got)
		}
	}
}

func TestDecodeIgnoresOutOfRangeWorkers(t *testing.T) {
	s := crScheme(t, 4, 2, 3)
	avail := bitset.FromSlice([]int{1, 3, 99})
	chosen := s.Decode(avail)
	if chosen.Contains(99) {
		t.Fatal("decode must ignore out-of-range worker ids")
	}
	if chosen.Len() != 2 {
		t.Fatalf("decode size %d, want 2", chosen.Len())
	}
}

// Paper Fig. 1(d): CR(4, 2), workers W2 and W4 available (0-indexed 1, 3):
// IS-GC fully recovers g1+g2+g3+g4 from just two workers, which classic GC
// (s = c-1 = 1) cannot do with two stragglers.
func TestPaperFig1dFullRecoveryFromTwoWorkers(t *testing.T) {
	s := crScheme(t, 4, 2, 1)
	avail := bitset.FromSlice([]int{1, 3})
	chosen := s.Decode(avail)
	if chosen.Len() != 2 {
		t.Fatalf("chosen = %v, want both workers", chosen)
	}
	if got := s.RecoveredFraction(avail); got != 1.0 {
		t.Fatalf("recovered fraction = %v, want 1.0", got)
	}
}

// Sec. V-A motivating example (Fig. 3): receiving W1 first is a trap — the
// optimal choice given {W2, W4} later is to discard W1. The decoder sees
// the full availability set, so it must find the 2-worker solution.
func TestCRNonGreedyBySequence(t *testing.T) {
	s := crScheme(t, 4, 2, 2)
	avail := bitset.FromSlice([]int{0, 1, 3}) // W1, W2, W4 in paper numbering
	chosen := s.Decode(avail)
	if chosen.Len() != 2 {
		t.Fatalf("chosen = %v (size %d), want size 2 ({1,3})", chosen, chosen.Len())
	}
	if !chosen.Contains(1) || !chosen.Contains(3) {
		t.Fatalf("chosen = %v, want {1, 3}", chosen)
	}
}

// The Fig. 4(b) trap for Alg. 2's multi-start rule: with W' = {W1, W2, W3}
// in CR(4, 2), starting at W2 alone yields only {W2}, but the maximum is
// {W1, W3}. The c-start window must recover the maximum regardless of the
// random anchor.
func TestCRMultiStartEscapesLocalOptimum(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		s := crScheme(t, 4, 2, seed)
		avail := bitset.FromSlice([]int{0, 1, 2})
		chosen := s.Decode(avail)
		if chosen.Len() != 2 {
			t.Fatalf("seed %d: chosen = %v, want {0, 2}", seed, chosen)
		}
	}
}

func TestDecodeFROptimalExhaustive(t *testing.T) {
	// All availability subsets for small FR instances.
	for _, tc := range []struct{ n, c int }{{4, 2}, {6, 2}, {6, 3}, {8, 4}, {9, 3}, {5, 1}, {4, 4}} {
		s := frScheme(t, tc.n, tc.c, 7)
		for mask := 0; mask < 1<<tc.n; mask++ {
			avail := bitset.New(tc.n)
			for v := 0; v < tc.n; v++ {
				if mask&(1<<v) != 0 {
					avail.Add(v)
				}
			}
			checkDecode(t, s, avail)
		}
	}
}

func TestDecodeCROptimalExhaustive(t *testing.T) {
	for _, tc := range []struct{ n, c int }{{4, 2}, {5, 2}, {6, 3}, {7, 3}, {8, 3}, {9, 4}, {6, 1}, {5, 5}, {10, 4}} {
		s := crScheme(t, tc.n, tc.c, 13)
		for mask := 0; mask < 1<<tc.n; mask++ {
			avail := bitset.New(tc.n)
			for v := 0; v < tc.n; v++ {
				if mask&(1<<v) != 0 {
					avail.Add(v)
				}
			}
			checkDecode(t, s, avail)
		}
	}
}

func TestDecodeHROptimalExhaustive(t *testing.T) {
	for _, tc := range []struct{ n, c1, c2, g int }{
		{8, 4, 0, 2}, {8, 3, 1, 2}, {8, 2, 2, 2}, {8, 1, 3, 2}, // Fig. 13 family
		{9, 2, 1, 3}, {9, 3, 0, 3}, {12, 2, 2, 3}, {12, 2, 1, 4},
		{10, 3, 2, 2}, {16, 2, 2, 4},
	} {
		s := hrScheme(t, tc.n, tc.c1, tc.c2, tc.g, 17)
		n := tc.n
		for mask := 0; mask < 1<<n; mask++ {
			avail := bitset.New(n)
			for v := 0; v < n; v++ {
				if mask&(1<<v) != 0 {
					avail.Add(v)
				}
			}
			checkDecode(t, s, avail)
		}
	}
}

// Randomized deep check across many seeds and larger n, all schemes.
func TestDecodeOptimalRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	var schemes []*Scheme
	for _, tc := range []struct{ n, c int }{{12, 3}, {20, 4}, {24, 2}, {15, 5}} {
		schemes = append(schemes, frScheme(t, tc.n, tc.c, rng.Int63()))
	}
	for _, tc := range []struct{ n, c int }{{12, 3}, {20, 4}, {24, 2}, {17, 5}, {23, 7}} {
		schemes = append(schemes, crScheme(t, tc.n, tc.c, rng.Int63()))
	}
	for _, tc := range []struct{ n, c1, c2, g int }{
		{16, 2, 2, 4}, {20, 3, 2, 4}, {24, 2, 1, 8}, {18, 4, 2, 3}, {24, 3, 3, 4},
	} {
		schemes = append(schemes, hrScheme(t, tc.n, tc.c1, tc.c2, tc.g, rng.Int63()))
	}
	for _, s := range schemes {
		for trial := 0; trial < 150; trial++ {
			checkDecode(t, s, randAvail(rng, s.Placement().N(), 0.2+0.6*rng.Float64()))
		}
	}
}

// Fairness (Sec. IV): when workers straggle i.i.d., every partition must
// appear in ĝ with (approximately) equal probability. We fix |W'| = w drawn
// uniformly among w-subsets and count partition inclusion.
func TestDecodeFairnessAcrossPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	schemes := []*Scheme{
		frScheme(t, 8, 2, 21),
		crScheme(t, 8, 2, 22),
		hrScheme(t, 8, 2, 2, 2, 23),
	}
	const trials = 6000
	for _, s := range schemes {
		n := s.Placement().N()
		counts := make([]int, n)
		for trial := 0; trial < trials; trial++ {
			// Uniform random 4-subset of workers.
			perm := rng.Perm(n)
			avail := bitset.FromSlice(perm[:4])
			rec := s.Recovered(s.Decode(avail))
			rec.Range(func(d int) bool {
				counts[d]++
				return true
			})
		}
		mean := 0.0
		for _, c := range counts {
			mean += float64(c)
		}
		mean /= float64(n)
		for d, c := range counts {
			if dev := math.Abs(float64(c)-mean) / mean; dev > 0.08 {
				t.Errorf("%v: partition %d inclusion count %d deviates %.1f%% from mean %.1f",
					s.Placement(), d, c, dev*100, mean)
			}
		}
	}
}

// Determinism: same seed + same availability sequence ⇒ same decodes.
func TestDecodeDeterministicUnderSeed(t *testing.T) {
	run := func(seed int64) []string {
		s := crScheme(t, 10, 3, seed)
		rng := rand.New(rand.NewSource(4))
		var out []string
		for i := 0; i < 50; i++ {
			out = append(out, s.Decode(randAvail(rng, 10, 0.5)).String())
		}
		return out
	}
	a, b := run(77), run(77)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: %s ≠ %s", i, a[i], b[i])
		}
	}
}

func TestRecoveredFractionBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	s := crScheme(t, 12, 3, 8)
	for trial := 0; trial < 200; trial++ {
		avail := randAvail(rng, 12, 0.5)
		f := s.RecoveredFraction(avail)
		if f < 0 || f > 1 {
			t.Fatalf("fraction %v out of [0,1]", f)
		}
		if avail.Empty() && f != 0 {
			t.Fatalf("fraction %v for empty availability", f)
		}
		w := avail.Len()
		if w > 0 {
			lo, _ := s.Placement().AlphaBounds(w)
			if f < float64(lo*3)/12 {
				t.Fatalf("fraction %v below theorem lower bound %v (w=%d)", f, float64(lo*3)/12, w)
			}
		}
	}
}

// Full recovery threshold: with w ≥ n-c+1 available workers IS-GC always
// recovers all gradients on FR and CR (matches GC's guarantee; Fig. 12(a)
// shows 100% at w = 3 = n-c+1 for n=4, c=2).
func TestFullRecoveryAtGCThreshold(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	for _, s := range []*Scheme{frScheme(t, 12, 3, 1), crScheme(t, 12, 3, 2), crScheme(t, 9, 3, 3), frScheme(t, 8, 2, 4), crScheme(t, 8, 2, 5)} {
		n, c := s.Placement().N(), s.Placement().C()
		w := n - c + 1
		for trial := 0; trial < 50; trial++ {
			perm := rng.Perm(n)
			avail := bitset.FromSlice(perm[:w])
			if f := s.RecoveredFraction(avail); f != 1.0 {
				t.Fatalf("%v: w=%d recovered %v, want full recovery", s.Placement(), w, f)
			}
		}
	}
}

func TestEncodeSumsPartitionGradients(t *testing.T) {
	s := crScheme(t, 4, 2, 1)
	grads := [][]float64{{1, 0}, {0, 1}, {2, 2}, {-1, 3}}
	coded, err := s.Encode(0, grads) // worker 0 holds partitions {0, 1}
	if err != nil {
		t.Fatal(err)
	}
	if coded[0] != 1 || coded[1] != 1 {
		t.Fatalf("coded = %v, want [1 1]", coded)
	}
	coded3, err := s.Encode(3, grads) // worker 3 holds {3, 0}
	if err != nil {
		t.Fatal(err)
	}
	if coded3[0] != 0 || coded3[1] != 3 {
		t.Fatalf("coded = %v, want [0 3]", coded3)
	}
}

func TestEncodeErrors(t *testing.T) {
	s := crScheme(t, 4, 2, 1)
	if _, err := s.Encode(-1, make([][]float64, 4)); err == nil {
		t.Error("expected error for negative worker")
	}
	if _, err := s.Encode(4, make([][]float64, 4)); err == nil {
		t.Error("expected error for worker ≥ n")
	}
	if _, err := s.Encode(0, make([][]float64, 3)); err == nil {
		t.Error("expected error for wrong gradient count")
	}
	if _, err := s.Encode(0, [][]float64{{1}, {1, 2}, {1}, {1}}); err == nil {
		t.Error("expected error for mismatched dims")
	}
}

func TestEncodePartial(t *testing.T) {
	s := crScheme(t, 4, 2, 1)
	coded, err := s.EncodePartial(2, [][]float64{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if coded[0] != 4 || coded[1] != 6 {
		t.Fatalf("coded = %v, want [4 6]", coded)
	}
	if _, err := s.EncodePartial(2, [][]float64{{1, 2}}); err == nil {
		t.Error("expected error for wrong local gradient count")
	}
	if _, err := s.EncodePartial(9, nil); err == nil {
		t.Error("expected error for bad worker")
	}
	if _, err := s.EncodePartial(0, [][]float64{{1, 2}, {3}}); err == nil {
		t.Error("expected error for dim mismatch")
	}
}

// End-to-end algebra: the aggregated ĝ must equal the sum of the true
// per-partition gradients over exactly the recovered partition set.
func TestDecodeAndAggregateMatchesDirectSum(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	schemes := []*Scheme{
		frScheme(t, 8, 2, 1), crScheme(t, 8, 3, 2), hrScheme(t, 8, 2, 2, 2, 3), crScheme(t, 7, 2, 4),
	}
	const dim = 5
	for _, s := range schemes {
		n := s.Placement().N()
		for trial := 0; trial < 100; trial++ {
			grads := make([][]float64, n)
			for d := range grads {
				grads[d] = make([]float64, dim)
				for k := range grads[d] {
					grads[d][k] = rng.NormFloat64()
				}
			}
			coded := make([][]float64, n)
			avail := randAvail(rng, n, 0.6)
			avail.Range(func(i int) bool {
				var err error
				coded[i], err = s.Encode(i, grads)
				if err != nil {
					t.Fatal(err)
				}
				return true
			})
			ghat, parts, chosen, err := s.DecodeAndAggregate(avail, coded)
			if err != nil {
				t.Fatal(err)
			}
			if avail.Empty() {
				if ghat != nil || !chosen.Empty() {
					t.Fatal("empty availability must produce nil ĝ")
				}
				continue
			}
			if parts.Len() != chosen.Len()*s.Placement().C() {
				t.Fatalf("%v: |parts| = %d ≠ |I|·c = %d", s.Placement(), parts.Len(), chosen.Len()*s.Placement().C())
			}
			want := make([]float64, dim)
			parts.Range(func(d int) bool {
				for k := range want {
					want[k] += grads[d][k]
				}
				return true
			})
			for k := range want {
				if math.Abs(want[k]-ghat[k]) > 1e-9 {
					t.Fatalf("%v: ĝ[%d] = %v, want %v", s.Placement(), k, ghat[k], want[k])
				}
			}
		}
	}
}

func TestAggregateMissingCodedGradient(t *testing.T) {
	s := crScheme(t, 4, 2, 1)
	chosen := bitset.FromSlice([]int{1})
	if _, _, err := s.Aggregate(chosen, make([][]float64, 4)); err == nil {
		t.Error("expected error when chosen worker has nil coded gradient")
	}
	if _, _, err := s.Aggregate(bitset.FromSlice([]int{9}), make([][]float64, 4)); err == nil {
		t.Error("expected error when chosen worker is out of coded range")
	}
	coded := [][]float64{nil, {1, 2}, {3}, nil}
	if _, _, err := s.Aggregate(bitset.FromSlice([]int{1, 2}), coded); err == nil {
		t.Error("expected error for dim mismatch across chosen workers")
	}
}
