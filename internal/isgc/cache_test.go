package isgc

import (
	"testing"

	"isgc/internal/bitset"
)

// maskSet builds the availability set for the n-worker mask bits.
func maskSet(mask uint32, n int) *bitset.Set {
	s := bitset.New(n)
	for v := 0; v < n; v++ {
		if mask&(1<<uint(v)) != 0 {
			s.Add(v)
		}
	}
	return s
}

// TestDecodeCacheMatchesFresh enumerates every availability mask of
// several small schemes. Pass 1 compares the caching scheme against an
// identically seeded cache-less twin: each mask is seen for the first
// time, so no rng draw is skipped and the results must be bit-identical.
// Pass 2 replays every mask against the recorded pass-1 answers: now
// every lookup is a hit and must return exactly the memoized set.
func TestDecodeCacheMatchesFresh(t *testing.T) {
	schemes := []struct {
		name          string
		cached, fresh *Scheme
	}{
		{"FR(12,3)", frScheme(t, 12, 3, 42), frScheme(t, 12, 3, 42)},
		{"CR(9,3)", crScheme(t, 9, 3, 42), crScheme(t, 9, 3, 42)},
		{"CR(16,4)", crScheme(t, 16, 4, 7), crScheme(t, 16, 4, 7)},
		{"HR(12,2,1,4)", hrScheme(t, 12, 2, 1, 4, 13), hrScheme(t, 12, 2, 1, 4, 13)},
	}
	for _, tc := range schemes {
		t.Run(tc.name, func(t *testing.T) {
			n := tc.cached.Placement().N()
			masks := 1 << uint(n)
			tc.cached.EnableDecodeCache(masks)
			recorded := make([]*bitset.Set, masks)
			for mask := 0; mask < masks; mask++ {
				avail := maskSet(uint32(mask), n)
				got := tc.cached.Decode(avail)
				want := tc.fresh.Decode(avail)
				if !got.Equal(want) {
					t.Fatalf("mask %b: cached-first %v ≠ fresh %v", mask, got, want)
				}
				recorded[mask] = got
			}
			for mask := 0; mask < masks; mask++ {
				avail := maskSet(uint32(mask), n)
				got := tc.cached.Decode(avail)
				if !got.Equal(recorded[mask]) {
					t.Fatalf("mask %b: replay %v ≠ memoized %v", mask, got, recorded[mask])
				}
				chosen, recovered := tc.cached.DecodeWithRecovered(avail)
				if !chosen.Equal(recorded[mask]) {
					t.Fatalf("mask %b: DecodeWithRecovered chosen %v ≠ memoized %v", mask, chosen, recorded[mask])
				}
				if want := tc.cached.Recovered(chosen); !recovered.Equal(want) {
					t.Fatalf("mask %b: recovered %v ≠ %v", mask, recovered, want)
				}
			}
			hits, misses := tc.cached.DecodeCacheStats()
			// Pass 1: all misses except the empty mask, which short-circuits
			// before the cache. Pass 2: 2 hits per non-empty mask.
			if wantMisses := uint64(masks - 1); misses != wantMisses {
				t.Errorf("misses = %d, want %d", misses, wantMisses)
			}
			if wantHits := uint64(2 * (masks - 1)); hits != wantHits {
				t.Errorf("hits = %d, want %d", hits, wantHits)
			}
		})
	}
}

// TestDecodeCacheEviction exercises the LRU with a capacity far below the
// mask population. Recomputed-after-eviction results must still satisfy
// the decoder contract with the cardinality of a maximum independent set
// — the one decode property that is deterministic across rng states.
func TestDecodeCacheEviction(t *testing.T) {
	s := crScheme(t, 10, 3, 3)
	oracle := crScheme(t, 10, 3, 99)
	s.EnableDecodeCache(4)
	n := s.Placement().N()
	cg := s.Placement().ConflictGraph()
	// Cycle 16 masks 3 times through a 4-entry cache so every mask is
	// evicted and recomputed repeatedly.
	for round := 0; round < 3; round++ {
		for mask := uint32(1); mask <= 16; mask++ {
			avail := maskSet(mask*37%1024, n)
			chosen := s.Decode(avail)
			if !chosen.SubsetOf(avail) {
				t.Fatalf("round %d mask %b: chosen %v ⊄ avail %v", round, mask, chosen, avail)
			}
			if !cg.IsIndependent(chosen) {
				t.Fatalf("round %d mask %b: chosen %v not independent", round, mask, chosen)
			}
			if want := oracle.Decode(avail).Len(); chosen.Len() != want {
				t.Fatalf("round %d mask %b: |chosen| = %d, want maximum %d", round, mask, chosen.Len(), want)
			}
		}
	}
	if hits, misses := s.DecodeCacheStats(); hits+misses == 0 || misses < 16 {
		t.Errorf("implausible stats after eviction churn: hits=%d misses=%d", hits, misses)
	}
}

// TestDecodeCacheHooks checks the metrics glue and that returned sets are
// clones (mutating one must not corrupt the cache).
func TestDecodeCacheHooks(t *testing.T) {
	s := frScheme(t, 6, 2, 1)
	var hits, misses int
	s.SetDecodeCacheHooks(func() { hits++ }, func() { misses++ })
	s.EnableDecodeCache(8)
	avail := maskSet(0b111011, 6)
	first := s.Decode(avail)
	first.Add(63) // vandalize the returned clone
	second := s.Decode(avail)
	if second.Contains(63) {
		t.Fatal("cache returned an aliased set: caller mutation leaked into the cache")
	}
	if hits != 1 || misses != 1 {
		t.Fatalf("hooks saw hits=%d misses=%d, want 1 and 1", hits, misses)
	}
	s.DisableDecodeCache()
	if h, m := s.DecodeCacheStats(); h != 0 || m != 0 {
		t.Fatalf("stats after disable = %d/%d, want zeros", h, m)
	}
}
