package isgc

import (
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/graph"
	"isgc/internal/placement"
)

// exhaustiveMaxN bounds the exhaustive sweep: every placement with up to
// this many workers is checked against every one of its 2^n availability
// sets. 12 keeps the whole sweep to a few seconds while covering every
// small-n corner (empty sets, singletons, full availability, and all the
// wrap-around windows the greedy walks must handle).
const exhaustiveMaxN = 12

// exhaustivePlacements enumerates every constructor-valid FR, CR, and HR
// placement with n ≤ exhaustiveMaxN and c ∈ {2, 3}.
func exhaustivePlacements(t *testing.T) []*placement.Placement {
	t.Helper()
	var ps []*placement.Placement
	for n := 2; n <= exhaustiveMaxN; n++ {
		for _, c := range []int{2, 3} {
			if c > n {
				continue
			}
			p, err := placement.CR(n, c)
			if err != nil {
				t.Fatalf("CR(%d,%d): %v", n, c, err)
			}
			ps = append(ps, p)
			if n%c == 0 {
				p, err := placement.FR(n, c)
				if err != nil {
					t.Fatalf("FR(%d,%d): %v", n, c, err)
				}
				ps = append(ps, p)
			}
			// HR: every (c1 ≥ 1, c2, g) split the constructor accepts.
			// c1 = 0 degenerates to CR (returned as KindCR) and is already
			// covered above, so only genuine hybrids are kept.
			for c1 := 1; c1 <= c; c1++ {
				for g := 1; g <= n; g++ {
					if n%g != 0 {
						continue
					}
					p, err := placement.HR(n, c1, c-c1, g)
					if err != nil || p.Kind() != placement.KindHR {
						continue
					}
					ps = append(ps, p)
				}
			}
		}
	}
	return ps
}

// TestExhaustiveDecodeOptimal is the strongest correctness statement the
// suite makes about the paper's decoders: for every FR/CR/HR placement with
// n ≤ 12 and c ∈ {2, 3}, and for EVERY subset of available workers, Decode
// returns a valid independent set of the conflict graph whose size equals
// the exact independence number α(G[W']) computed by the branch-and-bound
// oracle, and the recovered partition count is exactly |I|·c (Sec. V-A).
// The randomized quick tests sample this space; this test closes it.
func TestExhaustiveDecodeOptimal(t *testing.T) {
	for _, p := range exhaustivePlacements(t) {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			n, c := p.N(), p.C()
			s := New(p, 1)
			g := p.ConflictGraph()
			for mask := 0; mask < 1<<n; mask++ {
				avail := bitset.New(n)
				for v := 0; v < n; v++ {
					if mask&(1<<v) != 0 {
						avail.Add(v)
					}
				}
				chosen := s.Decode(avail)
				if !chosen.SubsetOf(avail) {
					t.Fatalf("avail=%v: chosen %v not a subset", avail, chosen)
				}
				if !g.IsIndependent(chosen) {
					t.Fatalf("avail=%v: chosen %v is not independent", avail, chosen)
				}
				if want := graph.IndependenceNumber(g, avail); chosen.Len() != want {
					t.Fatalf("avail=%v: |chosen|=%d, want α=%d", avail, chosen.Len(), want)
				}
				if rec := s.Recovered(chosen); rec.Len() != chosen.Len()*c {
					t.Fatalf("avail=%v: recovered %d partitions from %d workers, want %d",
						avail, rec.Len(), chosen.Len(), chosen.Len()*c)
				}
			}
		})
	}
}
