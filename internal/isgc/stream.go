package isgc

import (
	"fmt"

	"isgc/internal/bitset"
)

// StreamDecoder tracks the best decodable worker set as coded gradients
// arrive one at a time — the online view of the decoding problem from
// Sec. V-A (Fig. 3): the master cannot greedily commit to arrivals,
// because an early worker may have to be discarded once better
// combinations become available. StreamDecoder re-optimizes after every
// arrival with the scheme's linear-time decoder, so Current() is always a
// maximum independent set of the arrivals so far.
//
// Typical master loop:
//
//	sd := isgc.NewStreamDecoder(scheme)
//	for arrival := range gradientCh {
//	    sd.Add(arrival.Worker)
//	    if sd.RecoveredPartitions() >= target {
//	        break // enough of ĝ is decodable; ignore the rest
//	    }
//	}
//	chosen := sd.Current()
//
// A StreamDecoder is not safe for concurrent use.
type StreamDecoder struct {
	scheme  *Scheme
	arrived *bitset.Set
	current *bitset.Set
	dirty   bool
}

// NewStreamDecoder returns an empty stream decoder over the scheme.
func NewStreamDecoder(s *Scheme) *StreamDecoder {
	n := s.Placement().N()
	return &StreamDecoder{
		scheme:  s,
		arrived: bitset.New(n),
		current: bitset.New(n),
	}
}

// Add records the arrival of worker w's coded gradient. It returns an
// error for out-of-range ids and is a no-op for duplicates.
func (d *StreamDecoder) Add(w int) error {
	if w < 0 || w >= d.scheme.Placement().N() {
		return fmt.Errorf("isgc: worker %d out of range [0,%d)", w, d.scheme.Placement().N())
	}
	if d.arrived.Contains(w) {
		return nil
	}
	d.arrived.Add(w)
	d.dirty = true
	return nil
}

// Arrived returns the number of distinct workers seen so far.
func (d *StreamDecoder) Arrived() int { return d.arrived.Len() }

func (d *StreamDecoder) refresh() {
	if d.dirty {
		d.current = d.scheme.Decode(d.arrived)
		d.dirty = false
	}
}

// Current returns a maximum independent set over the arrivals so far
// (copy; callers may mutate it).
func (d *StreamDecoder) Current() *bitset.Set {
	d.refresh()
	return d.current.Clone()
}

// RecoveredPartitions returns how many partitions the current best set
// covers (|Current()|·c).
func (d *StreamDecoder) RecoveredPartitions() int {
	d.refresh()
	return d.current.Len() * d.scheme.Placement().C()
}

// FullyRecovered reports whether the current best set covers every
// partition, i.e. waiting for more workers cannot improve ĝ.
func (d *StreamDecoder) FullyRecovered() bool {
	return d.RecoveredPartitions() == d.scheme.Placement().N()
}

// Reset clears all arrivals for the next training step, retaining the
// scheme.
func (d *StreamDecoder) Reset() {
	d.arrived.Clear()
	d.current.Clear()
	d.dirty = false
}
