package isgc

import (
	"isgc/internal/bitset"
)

// decodeFR implements Algorithm 1: in FR the conflict graph is a disjoint
// union of per-group cliques, so a maximum independent set simply picks one
// available worker from every group that has one. The pick within a group
// is uniform random so every worker — and hence every partition — has an
// equal chance of joining ĝ. O(|W'|).
func (s *Scheme) decodeFR(avail *bitset.Set) *bitset.Set {
	n, c := s.p.N(), s.p.C()
	out := bitset.New(n)
	// Reservoir-sample one available worker per group in a single pass.
	chosen := make([]int, n/c)
	seen := make([]int, n/c)
	for i := range chosen {
		chosen[i] = -1
	}
	avail.Range(func(v int) bool {
		g := v / c
		seen[g]++
		if s.rng.Intn(seen[g]) == 0 {
			chosen[g] = v
		}
		return true
	})
	for _, v := range chosen {
		if v >= 0 {
			out.Add(v)
		}
	}
	return out
}

// decodeCR implements Algorithm 2: a greedy clockwise walk over the worker
// circle. By Theorem 1, workers u and v conflict iff their circular
// distance d(u, v) < c, so an independent set is a set of available workers
// with pairwise circular distance ≥ c. The greedy walk from a fixed start
// accepts the earliest available vertex at distance ≥ c from the previously
// accepted vertex and ≥ c from the start (the wrap-around constraint);
// consecutive-gap arithmetic then guarantees full pairwise independence.
//
// A single start is only guaranteed maximal (Theorem 2); per Theorem 3,
// among the ≤ c starts in the window W' ∩ {u, …, u+c-1} for any available
// u, at least one walk yields a maximum independent set. The anchor u is
// random so gradients on each worker join ĝ with equal probability.
func (s *Scheme) decodeCR(avail *bitset.Set) *bitset.Set {
	n, c := s.p.N(), s.p.C()
	u := s.randomAvailable(avail)
	best := bitset.New(n)
	for off := 0; off < c; off++ {
		start := (u + off) % n
		if !avail.Contains(start) {
			continue
		}
		cur := s.greedyWalkCR(avail, start)
		if cur.Len() > best.Len() {
			best = cur
		}
	}
	return best
}

// greedyWalkCR performs one greedy pass of Algorithm 2 from start.
//
// Rather than test every vertex, it jumps between accepted vertices with
// word-parallel bit scans. Working in offset space relative to start (the
// accepted offsets o satisfy CircDist(o, offlast) ≥ c and
// CircDist(o, 0) ≥ c), the admissible region after accepting offlast is the
// single contiguous interval [offlast+c, n−c]: the lower end comes from the
// distance to the last accepted vertex, the upper end from the wrap-around
// distance back to start. The linear scan it replaces visits skipped
// vertices without accepting them, so jumping straight to the earliest
// available offset in that interval produces the identical set
// (TestGreedyWalkCRMatchesLinearReference pins this bit-for-bit).
func (s *Scheme) greedyWalkCR(avail *bitset.Set, start int) *bitset.Set {
	n, c := s.p.N(), s.p.C()
	cur := bitset.New(n)
	cur.Add(start)
	offlast := 0
	for {
		lo, hi := offlast+c, n-c // inclusive offset bounds
		if lo > hi {
			break
		}
		o := nextAvailOffset(avail, n, start, lo, hi+1)
		if o < 0 {
			break
		}
		cur.Add((start + o) % n)
		offlast = o
	}
	return cur
}

// nextAvailOffset returns the smallest offset o in [lo, hi) — offsets taken
// clockwise from start, 0 < lo ≤ o < hi ≤ n — whose vertex (start+o) mod n
// is available, or -1. The circular interval unwraps into at most two
// linear NextInRange probes, each O(span/64) words.
func nextAvailOffset(avail *bitset.Set, n, start, lo, hi int) int {
	a, b := start+lo, start+hi
	if b <= n {
		if v := avail.NextInRange(a, b); v >= 0 {
			return v - start
		}
		return -1
	}
	if a < n {
		if v := avail.NextInRange(a, n); v >= 0 {
			return v - start
		}
		a = n
	}
	if v := avail.NextInRange(a-n, b-n); v >= 0 {
		return v - start + n
	}
	return -1
}

// decodeHR implements Algorithm 3 (+ the CONFLICT predicate of Algorithm 4,
// realized here as O(1) lookups in the conflict predicate, which tests
// prove identical to the Alg. 4 formula): pick a random group with at
// least one available worker, run the greedy clockwise walk from every
// available worker of that group, and keep the largest result.
//
// Correctness of a walk (Theorem 9): each group is a clique, so a single
// clockwise pass accepts at most one worker per group (same-group revisits
// conflict with either the last accepted vertex or the start); conflicts
// only exist within a group or between clockwise-neighboring groups, so
// checking the last accepted vertex and the start suffices for full
// pairwise independence.
//
// Anchor escalation: the anchor-group guarantee ("some maximum independent
// set intersects the start group's available workers") can fail on sparse
// masks where the anchor group's only available workers are dominated —
// e.g. HR(12, c1=1, c2=3, g=3) with W' = {3, 6, 8}: worker 6 conflicts
// with both 3 and 8, so no maximum set touches group 1, and walks anchored
// there top out one short of α (a latent miss FuzzIncrementalDecode
// surfaced). When the anchor group's best walk falls short of the
// structural upper bound on α, the decoder escalates to walking from every
// other group's available workers, so some start lands inside a maximum
// set. Escalation is rare — on dense masks the anchor walks reach the
// bound — so the expected cost stays the paper's O(c·|W'| + c²).
func (s *Scheme) decodeHR(avail *bitset.Set) *bitset.Set {
	n := s.p.N()
	n0 := s.p.GroupSize()
	u := s.randomAvailable(avail)
	anchorBase := (u / n0) * n0
	best := s.walkHRGroup(avail, anchorBase, bitset.New(n))
	if bound := s.freshBound(avail); best.Len() < bound {
		for base := 0; base < n && best.Len() < bound; base += n0 {
			if base != anchorBase {
				best = s.walkHRGroup(avail, base, best)
			}
		}
	}
	return best
}

// walkHRGroup runs the Alg. 3 greedy walk from every available worker of
// the group starting at base, returning the largest of those walks and
// best.
func (s *Scheme) walkHRGroup(avail *bitset.Set, base int, best *bitset.Set) *bitset.Set {
	n0 := s.p.GroupSize()
	for start := avail.NextInRange(base, base+n0); start >= 0; start = avail.NextInRange(start+1, base+n0) {
		if cur := s.greedyWalkConflict(avail, start); cur.Len() > best.Len() {
			best = cur
		}
	}
	return best
}

// greedyWalkConflict performs one greedy clockwise pass accepting vertices
// that do not conflict with the previously accepted vertex or the start.
func (s *Scheme) greedyWalkConflict(avail *bitset.Set, start int) *bitset.Set {
	n := s.p.N()
	cur := bitset.New(n)
	cur.Add(start)
	last := start
	for off := 1; off < n; off++ {
		v := (start + off) % n
		if !avail.Contains(v) {
			continue
		}
		if !s.p.Conflicts(last, v) && !s.p.Conflicts(v, start) {
			cur.Add(v)
			last = v
		}
	}
	return cur
}
