package isgc

import (
	"isgc/internal/bitset"
	"isgc/internal/graph"
)

// decodeFR implements Algorithm 1: in FR the conflict graph is a disjoint
// union of per-group cliques, so a maximum independent set simply picks one
// available worker from every group that has one. The pick within a group
// is uniform random so every worker — and hence every partition — has an
// equal chance of joining ĝ. O(|W'|).
func (s *Scheme) decodeFR(avail *bitset.Set) *bitset.Set {
	n, c := s.p.N(), s.p.C()
	out := bitset.New(n)
	// Reservoir-sample one available worker per group in a single pass.
	chosen := make([]int, n/c)
	seen := make([]int, n/c)
	for i := range chosen {
		chosen[i] = -1
	}
	avail.Range(func(v int) bool {
		g := v / c
		seen[g]++
		if s.rng.Intn(seen[g]) == 0 {
			chosen[g] = v
		}
		return true
	})
	for _, v := range chosen {
		if v >= 0 {
			out.Add(v)
		}
	}
	return out
}

// decodeCR implements Algorithm 2: a greedy clockwise walk over the worker
// circle. By Theorem 1, workers u and v conflict iff their circular
// distance d(u, v) < c, so an independent set is a set of available workers
// with pairwise circular distance ≥ c. The greedy walk from a fixed start
// accepts the earliest available vertex at distance ≥ c from the previously
// accepted vertex and ≥ c from the start (the wrap-around constraint);
// consecutive-gap arithmetic then guarantees full pairwise independence.
//
// A single start is only guaranteed maximal (Theorem 2); per Theorem 3,
// among the ≤ c starts in the window W' ∩ {u, …, u+c-1} for any available
// u, at least one walk yields a maximum independent set. The anchor u is
// random so gradients on each worker join ĝ with equal probability.
func (s *Scheme) decodeCR(avail *bitset.Set) *bitset.Set {
	n, c := s.p.N(), s.p.C()
	u := s.randomAvailable(avail)
	best := bitset.New(n)
	for off := 0; off < c; off++ {
		start := (u + off) % n
		if !avail.Contains(start) {
			continue
		}
		cur := s.greedyWalkCR(avail, start)
		if cur.Len() > best.Len() {
			best = cur
		}
	}
	return best
}

// greedyWalkCR performs one greedy pass of Algorithm 2 from start.
func (s *Scheme) greedyWalkCR(avail *bitset.Set, start int) *bitset.Set {
	n, c := s.p.N(), s.p.C()
	cur := bitset.New(n)
	cur.Add(start)
	last := start
	for off := 1; off < n; off++ {
		v := (start + off) % n
		if !avail.Contains(v) {
			continue
		}
		if graph.CircDist(last, v, n) >= c && graph.CircDist(v, start, n) >= c {
			cur.Add(v)
			last = v
		}
	}
	return cur
}

// decodeHR implements Algorithm 3 (+ the CONFLICT predicate of Algorithm 4,
// realized here as O(1) lookups in the precomputed conflict graph, which
// tests prove identical to the Alg. 4 formula): pick a random group with at
// least one available worker, run the greedy clockwise walk from every
// available worker of that group, and keep the largest result.
//
// Correctness of a walk (Theorem 9): each group is a clique, so a single
// clockwise pass accepts at most one worker per group (same-group revisits
// conflict with either the last accepted vertex or the start); conflicts
// only exist within a group or between clockwise-neighboring groups, so
// checking the last accepted vertex and the start suffices for full
// pairwise independence. Theorem 8 guarantees some maximum independent set
// intersects the chosen start group's available workers.
func (s *Scheme) decodeHR(avail *bitset.Set) *bitset.Set {
	n := s.p.N()
	n0 := s.p.GroupSize()
	u := s.randomAvailable(avail)
	groupBase := (u / n0) * n0
	best := bitset.New(n)
	for j := 0; j < n0; j++ {
		start := groupBase + j
		if !avail.Contains(start) {
			continue
		}
		cur := s.greedyWalkConflict(avail, start)
		if cur.Len() > best.Len() {
			best = cur
		}
	}
	return best
}

// greedyWalkConflict performs one greedy clockwise pass accepting vertices
// that do not conflict with the previously accepted vertex or the start.
func (s *Scheme) greedyWalkConflict(avail *bitset.Set, start int) *bitset.Set {
	n := s.p.N()
	cur := bitset.New(n)
	cur.Add(start)
	last := start
	for off := 1; off < n; off++ {
		v := (start + off) % n
		if !avail.Contains(v) {
			continue
		}
		if !s.p.Conflicts(last, v) && !s.p.Conflicts(v, start) {
			cur.Add(v)
			last = v
		}
	}
	return cur
}
