// Package isgc implements the paper's primary contribution:
// Ignore-Straggler Gradient Coding (IS-GC).
//
// In IS-GC every worker uploads the plain (all-ones) sum of the gradients
// computed on its c dataset partitions. Because all coefficients are 1, the
// master can combine coded gradients from an *arbitrary* subset W' of
// workers — the crux is choosing which of the received coded gradients to
// add so that no partition is double-counted while as many partitions as
// possible are covered. That is exactly a maximum independent set of the
// conflict graph induced on W' (Sec. V-A), and this package provides the
// linear-time exact decoders for the FR, CR, and HR placements
// (Algorithms 1, 2, and 3+4), plus recovery accounting.
package isgc

import (
	"fmt"
	"math/rand"

	"isgc/internal/bitset"
	"isgc/internal/placement"
	"isgc/internal/randsrc"
)

// Scheme couples a placement with its IS-GC decoder and a seeded RNG used
// for the randomized start choices that give every worker an equal chance
// of joining the recovered sum (the fairness property of Sec. IV).
//
// A Scheme is not safe for concurrent use; give each master goroutine its
// own Scheme (they can share the underlying Placement, which is immutable).
type Scheme struct {
	p *placement.Placement
	// src backs rng and makes the decode stream checkpointable: capturing
	// (seed, draws) and restoring it lands a resumed master on exactly the
	// tie-break the crashed one would have drawn next.
	src *randsrc.Source
	rng *rand.Rand

	// cache, when non-nil, memoizes Decode results per availability mask
	// (see cache.go for the LRU and the fairness tradeoff).
	cache      *decodeCache
	cacheHooks [2]func() // onHit, onMiss — survive cache resets

	// inc, when non-nil, repairs the previous chosen set against the mask
	// delta instead of re-solving (see incremental.go for the repair rules
	// and the proof obligations on accepted repairs).
	inc      *incrementalState
	incHooks [2]func() // onRepair, onFallback — survive re-enables
}

// New returns an IS-GC scheme over the given placement. The seed fixes the
// randomized tie-breaking, making decode sequences reproducible.
func New(p *placement.Placement, seed int64) *Scheme {
	src := randsrc.New(seed)
	return &Scheme{p: p, src: src, rng: src.Rand()}
}

// RandState returns the decoder RNG's serializable position (seed and
// draws so far) — what a checkpoint stores so restore is bit-exact.
func (s *Scheme) RandState() (seed int64, draws uint64) { return s.src.State() }

// RestoreRandState repositions the decoder RNG to a checkpointed state.
// With the decode cache enabled the draw sequence additionally depends on
// cache hits, which are not checkpointed — see DESIGN.md "Durability".
func (s *Scheme) RestoreRandState(seed int64, draws uint64) { s.src.Restore(seed, draws) }

// Placement returns the underlying placement.
func (s *Scheme) Placement() *placement.Placement { return s.p }

// Decode implements the paper's Decode() function: given the set of
// available (non-straggling) workers W', it returns a maximum independent
// set I of the conflict graph G[W'] — the workers whose coded gradients the
// master should add up. The returned set is empty iff available is empty.
//
// Complexity is O(c·|W'| + c²) for CR/HR and O(|W'|) for FR, matching the
// paper's linear-time claims; optimality is property-tested against an
// exact branch-and-bound oracle.
func (s *Scheme) Decode(available *bitset.Set) *bitset.Set {
	chosen, _ := s.decodeMasked(s.clampAvailable(available), false)
	return chosen
}

// decodeMasked runs the full decode pipeline — decode-cache lookup,
// incremental repair, fresh solve — on an already-clamped mask. The
// recovered set is non-nil only when wantRecovered or when the cache
// computes it as a side effect; returned sets are the caller's to mutate.
//
// Coherence rules between the two acceleration layers: a cache hit syncs
// the incremental baseline (a later repair must start from the set the
// caller actually received, not a stale one), and an accepted repair is
// never stored in the cache (only fresh solves are; see incremental.go).
func (s *Scheme) decodeMasked(avail *bitset.Set, wantRecovered bool) (*bitset.Set, *bitset.Set) {
	n := s.p.N()
	if avail.Empty() {
		if s.inc != nil {
			s.inc.invalidate()
		}
		return bitset.New(n), bitset.New(n)
	}
	if s.cache != nil {
		if e := s.cache.lookup(avail); e != nil {
			if s.inc != nil {
				s.inc.sync(avail, e.chosen)
				s.rebuildIncBound(avail)
			}
			return e.chosen.Clone(), e.recovered.Clone()
		}
	}
	if s.inc != nil && s.inc.valid {
		if repaired, ok := s.tryRepair(avail); ok {
			var rec *bitset.Set
			if wantRecovered {
				rec = s.p.RecoveredPartitions(repaired)
			}
			return repaired.Clone(), rec
		}
	}
	chosen := s.decode(avail)
	if s.inc != nil {
		s.inc.adopt(avail, chosen)
		s.rebuildIncBound(avail)
	}
	if s.cache != nil {
		rec := s.p.RecoveredPartitions(chosen)
		s.cache.store(avail, chosen, rec)
		return chosen.Clone(), rec.Clone()
	}
	var rec *bitset.Set
	if wantRecovered {
		rec = s.p.RecoveredPartitions(chosen)
	}
	return chosen, rec
}

// decode dispatches to the placement-specific greedy MIS walk.
func (s *Scheme) decode(avail *bitset.Set) *bitset.Set {
	switch s.p.Kind() {
	case placement.KindFR:
		return s.decodeFR(avail)
	case placement.KindCR:
		return s.decodeCR(avail)
	case placement.KindHR:
		return s.decodeHR(avail)
	default:
		panic(fmt.Sprintf("isgc: unknown placement kind %v", s.p.Kind()))
	}
}

// clampAvailable restricts the availability set to valid worker indices.
// Word-parallel (O(n/64)): this runs on every decode, so a per-bit walk
// would dominate the incremental path's cost at large n.
func (s *Scheme) clampAvailable(available *bitset.Set) *bitset.Set {
	if available == nil {
		return bitset.New(s.p.N())
	}
	return available.CloneCapped(s.p.N())
}

// Recovered maps a decoded worker set I to the set of partition indices
// whose gradients appear in ĝ = Σ_{i∈I} (coded gradient of worker i).
// When I is an independent set, |Recovered(I)| = |I|·c exactly.
func (s *Scheme) Recovered(chosen *bitset.Set) *bitset.Set {
	return s.p.RecoveredPartitions(chosen)
}

// DecodeWithRecovered returns Decode(available) together with the set of
// partitions the chosen workers recover. With the decode cache enabled
// both sets come from one memoized entry, so the recovery mapping is not
// recomputed for repeated masks. The returned sets are the caller's to
// mutate.
func (s *Scheme) DecodeWithRecovered(available *bitset.Set) (chosen, recovered *bitset.Set) {
	return s.decodeMasked(s.clampAvailable(available), true)
}

// RecoveredFraction returns |Recovered(Decode(available))| / n — the
// fraction of dataset partitions represented in the recovered gradient.
// This is the quantity plotted in Fig. 12(a) and Fig. 13(a).
func (s *Scheme) RecoveredFraction(available *bitset.Set) float64 {
	_, recovered := s.DecodeWithRecovered(available)
	return float64(recovered.Len()) / float64(s.p.N())
}

// randomAvailable picks a uniformly random element of avail (non-empty).
// Select skips words by popcount, so the pick is O(n/64); the single
// rng.Intn draw keeps decode sequences bit-identical to the per-bit walk
// this replaced.
func (s *Scheme) randomAvailable(avail *bitset.Set) int {
	return avail.Select(s.rng.Intn(avail.Len()))
}
