package isgc

import (
	"fmt"

	"isgc/internal/bitset"
)

// Encode computes worker i's coded gradient: the plain sum of the gradient
// vectors of its c partitions (Sec. IV — all-ones coefficients are what
// make arbitrary-subset decoding possible). grads[d] is the gradient on
// partition d; all vectors must have the same dimension. The result is a
// freshly allocated vector.
func (s *Scheme) Encode(worker int, grads [][]float64) ([]float64, error) {
	if worker < 0 || worker >= s.p.N() {
		return nil, fmt.Errorf("isgc: worker %d out of range [0,%d)", worker, s.p.N())
	}
	if len(grads) != s.p.N() {
		return nil, fmt.Errorf("isgc: got %d partition gradients, want %d", len(grads), s.p.N())
	}
	parts := s.p.Partitions(worker)
	dim := len(grads[parts[0]])
	out := make([]float64, dim)
	for _, d := range parts {
		g := grads[d]
		if len(g) != dim {
			return nil, fmt.Errorf("isgc: partition %d gradient dim %d ≠ %d", d, len(g), dim)
		}
		for k, x := range g {
			out[k] += x
		}
	}
	return out, nil
}

// EncodePartial computes worker i's coded gradient from only the gradients
// it can locally see: local[j] is the gradient of the worker's j-th
// partition (j indexes Partitions(worker)). This is the form a real worker
// uses — it never holds gradients for partitions it does not store.
func (s *Scheme) EncodePartial(worker int, local [][]float64) ([]float64, error) {
	if worker < 0 || worker >= s.p.N() {
		return nil, fmt.Errorf("isgc: worker %d out of range [0,%d)", worker, s.p.N())
	}
	if len(local) != s.p.C() {
		return nil, fmt.Errorf("isgc: worker %d got %d local gradients, want c=%d", worker, len(local), s.p.C())
	}
	dim := len(local[0])
	out := make([]float64, dim)
	for j, g := range local {
		if len(g) != dim {
			return nil, fmt.Errorf("isgc: local gradient %d dim %d ≠ %d", j, len(g), dim)
		}
		for k, x := range g {
			out[k] += x
		}
	}
	return out, nil
}

// Aggregate sums the coded gradients of the decoded worker set I into the
// recovered gradient ĝ = Σ_{i∈I} coded[i]. coded[i] may be nil for workers
// outside I (stragglers whose gradients never arrived). It returns ĝ and
// the set of partitions it covers.
func (s *Scheme) Aggregate(chosen *bitset.Set, coded [][]float64) ([]float64, *bitset.Set, error) {
	if chosen.Empty() {
		return nil, bitset.New(s.p.N()), nil
	}
	dim := -1
	var ghat []float64
	var err error
	chosen.Range(func(i int) bool {
		if i >= len(coded) || coded[i] == nil {
			err = fmt.Errorf("isgc: chosen worker %d has no coded gradient", i)
			return false
		}
		if dim < 0 {
			dim = len(coded[i])
			ghat = make([]float64, dim)
		}
		if len(coded[i]) != dim {
			err = fmt.Errorf("isgc: worker %d coded gradient dim %d ≠ %d", i, len(coded[i]), dim)
			return false
		}
		for k, x := range coded[i] {
			ghat[k] += x
		}
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	return ghat, s.Recovered(chosen), nil
}

// DecodeAndAggregate runs the full master-side step: decode the available
// set, then aggregate the corresponding coded gradients. It returns the
// recovered gradient ĝ (nil when no worker is available), the partition set
// it covers, and the chosen worker set I.
func (s *Scheme) DecodeAndAggregate(available *bitset.Set, coded [][]float64) (ghat []float64, parts, chosen *bitset.Set, err error) {
	chosen = s.Decode(available)
	ghat, parts, err = s.Aggregate(chosen, coded)
	if err != nil {
		return nil, nil, nil, err
	}
	return ghat, parts, chosen, nil
}
