package isgc

import (
	"container/list"
	"sync/atomic"

	"isgc/internal/bitset"
)

// decodeCache memoizes Decode results keyed on the availability bitmask.
// Availability masks repeat heavily across training steps (the same
// subset of workers tends to be slow), so after warm-up the master skips
// the greedy MIS walk entirely for recurring masks.
//
// Caching freezes the randomized tie-breaking of Algorithms 1–3 for a
// repeated mask: the first decode of a mask fixes which maximum
// independent set is used forever after (until eviction). The *size* of
// the result is unaffected — every maximum independent set of G[W'] has
// the same cardinality — so recovered-fraction numbers are identical;
// only the per-worker fairness rotation of Sec. IV is traded away. That
// is why the cache is opt-in (EnableDecodeCache) rather than always on.
//
// Like Scheme itself the cache is not safe for concurrent use; the
// hit/miss counters are atomics only so that metrics scrapes may read
// them from other goroutines.
type decodeCache struct {
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used
	hits     atomic.Uint64
	misses   atomic.Uint64
	onHit    func()
	onMiss   func()
	keyBuf   []byte
}

type cacheEntry struct {
	key       string
	chosen    *bitset.Set
	recovered *bitset.Set
}

func newDecodeCache(capacity int) *decodeCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &decodeCache{
		capacity: capacity,
		entries:  make(map[string]*list.Element, capacity),
		order:    list.New(),
	}
}

// lookup returns the cached entry for the mask, or nil on a miss.
func (c *decodeCache) lookup(avail *bitset.Set) *cacheEntry {
	c.keyBuf = avail.AppendKey(c.keyBuf[:0])
	el, ok := c.entries[string(c.keyBuf)]
	if !ok {
		c.misses.Add(1)
		if c.onMiss != nil {
			c.onMiss()
		}
		return nil
	}
	c.hits.Add(1)
	if c.onHit != nil {
		c.onHit()
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry)
}

// store inserts a freshly decoded result, evicting the least recently
// used entry when the cache is full. The sets are stored as-is: callers
// receive clones (see Scheme.Decode), so cached sets are never mutated.
func (c *decodeCache) store(avail *bitset.Set, chosen, recovered *bitset.Set) {
	key := string(avail.AppendKey(c.keyBuf[:0]))
	if _, ok := c.entries[key]; ok {
		return
	}
	if c.order.Len() >= c.capacity {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*cacheEntry).key)
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, chosen: chosen, recovered: recovered})
}

// EnableDecodeCache turns on decode memoization with an LRU of the given
// capacity (entries; <=0 means 1). Calling it again resets the cache and
// its counters. See the decodeCache comment for the fairness tradeoff.
func (s *Scheme) EnableDecodeCache(capacity int) {
	cache := newDecodeCache(capacity)
	cache.onHit, cache.onMiss = s.cacheHooks[0], s.cacheHooks[1]
	s.cache = cache
}

// DisableDecodeCache turns memoization back off.
func (s *Scheme) DisableDecodeCache() { s.cache = nil }

// SetDecodeCacheHooks registers callbacks fired on every cache hit and
// miss — the glue for external metrics counters. Either may be nil. The
// hooks survive EnableDecodeCache resets.
func (s *Scheme) SetDecodeCacheHooks(onHit, onMiss func()) {
	s.cacheHooks = [2]func(){onHit, onMiss}
	if s.cache != nil {
		s.cache.onHit, s.cache.onMiss = onHit, onMiss
	}
}

// DecodeCacheStats returns the cumulative hit and miss counts since the
// cache was (last) enabled, or zeros when it is disabled.
func (s *Scheme) DecodeCacheStats() (hits, misses uint64) {
	if s.cache == nil {
		return 0, 0
	}
	return s.cache.hits.Load(), s.cache.misses.Load()
}
