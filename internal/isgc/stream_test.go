package isgc

import (
	"math/rand"
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/graph"
)

func TestStreamDecoderFig3Scenario(t *testing.T) {
	// Sec. V-A, Fig. 3: in CR(4,2), W1 arrives first (0-indexed worker 0);
	// committing to it would be a trap once workers 1 and 3 arrive.
	s := crScheme(t, 4, 2, 1)
	d := NewStreamDecoder(s)

	if err := d.Add(0); err != nil {
		t.Fatal(err)
	}
	if got := d.Current(); got.Len() != 1 || !got.Contains(0) {
		t.Fatalf("after first arrival current = %v", got)
	}
	if d.RecoveredPartitions() != 2 {
		t.Fatalf("recovered = %d", d.RecoveredPartitions())
	}

	if err := d.Add(1); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(3); err != nil {
		t.Fatal(err)
	}
	// The optimal set is now {1, 3} — worker 0 must be discarded.
	got := d.Current()
	if got.Len() != 2 || !got.Contains(1) || !got.Contains(3) {
		t.Fatalf("current = %v, want {1, 3}", got)
	}
	if !d.FullyRecovered() {
		t.Fatal("2 independent workers × c=2 partitions = full recovery")
	}
	if d.Arrived() != 3 {
		t.Fatalf("arrived = %d", d.Arrived())
	}
}

func TestStreamDecoderErrorsAndDuplicates(t *testing.T) {
	s := crScheme(t, 4, 2, 1)
	d := NewStreamDecoder(s)
	if err := d.Add(-1); err == nil {
		t.Error("negative worker must error")
	}
	if err := d.Add(4); err == nil {
		t.Error("out-of-range worker must error")
	}
	if err := d.Add(2); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(2); err != nil {
		t.Fatal("duplicate must be a silent no-op")
	}
	if d.Arrived() != 1 {
		t.Fatalf("arrived = %d after duplicate", d.Arrived())
	}
}

func TestStreamDecoderReset(t *testing.T) {
	s := frScheme(t, 4, 2, 1)
	d := NewStreamDecoder(s)
	if err := d.Add(0); err != nil {
		t.Fatal(err)
	}
	if err := d.Add(2); err != nil {
		t.Fatal(err)
	}
	if d.RecoveredPartitions() != 4 {
		t.Fatalf("recovered = %d", d.RecoveredPartitions())
	}
	d.Reset()
	if d.Arrived() != 0 || d.RecoveredPartitions() != 0 || d.FullyRecovered() {
		t.Fatal("reset must clear all state")
	}
	if err := d.Add(1); err != nil {
		t.Fatal(err)
	}
	if d.RecoveredPartitions() != 2 {
		t.Fatal("decoder unusable after reset")
	}
}

// The streaming view must agree with the batch decoder after every prefix
// of a random arrival order, and its best-set size must be non-decreasing.
func TestStreamDecoderMatchesBatchDecodePrefixes(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	schemes := []*Scheme{
		frScheme(t, 8, 2, 1),
		crScheme(t, 9, 3, 2),
		hrScheme(t, 8, 2, 2, 2, 3),
	}
	for _, s := range schemes {
		n := s.Placement().N()
		for trial := 0; trial < 30; trial++ {
			order := rng.Perm(n)
			d := NewStreamDecoder(s)
			arrived := bitset.New(n)
			prevBest := 0
			for _, w := range order {
				if err := d.Add(w); err != nil {
					t.Fatal(err)
				}
				arrived.Add(w)
				cur := d.Current()
				if !cur.SubsetOf(arrived) {
					t.Fatalf("%v: current %v ⊄ arrived %v", s.Placement(), cur, arrived)
				}
				if !s.Placement().ConflictGraph().IsIndependent(cur) {
					t.Fatalf("%v: current %v not independent", s.Placement(), cur)
				}
				want := graph.IndependenceNumber(s.Placement().ConflictGraph(), arrived)
				if cur.Len() != want {
					t.Fatalf("%v: stream best %d ≠ batch optimum %d (arrived %v)",
						s.Placement(), cur.Len(), want, arrived)
				}
				if cur.Len() < prevBest {
					t.Fatalf("%v: best-set size decreased %d → %d", s.Placement(), prevBest, cur.Len())
				}
				prevBest = cur.Len()
			}
			if !d.FullyRecovered() {
				t.Fatalf("%v: all workers arrived but not fully recovered", s.Placement())
			}
		}
	}
}

// Early-exit use case: once FullyRecovered, adding more workers never
// changes the recovered count.
func TestStreamDecoderEarlyExit(t *testing.T) {
	s := crScheme(t, 6, 2, 5)
	d := NewStreamDecoder(s)
	for _, w := range []int{0, 2, 4} { // pairwise distance 2 ≥ c: independent
		if err := d.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	if !d.FullyRecovered() {
		t.Fatal("three spread workers fully recover CR(6,2)")
	}
	for _, w := range []int{1, 3, 5} {
		if err := d.Add(w); err != nil {
			t.Fatal(err)
		}
		if d.RecoveredPartitions() != 6 {
			t.Fatal("late arrivals must not reduce recovery")
		}
	}
}
