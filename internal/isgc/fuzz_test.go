package isgc

import (
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/graph"
	"isgc/internal/placement"
)

// FuzzDecodeCR drives the CR decoder with arbitrary parameters and
// availability masks, asserting the full decoder contract: the chosen set
// is an available independent set whose size matches the exact
// independence number.
func FuzzDecodeCR(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(0b1010), int64(1))
	f.Add(uint8(7), uint8(3), uint16(0b1011011), int64(2))
	f.Add(uint8(12), uint8(5), uint16(0xFFF), int64(3))
	f.Fuzz(func(t *testing.T, nRaw, cRaw uint8, mask uint16, seed int64) {
		n := int(nRaw%14) + 2 // 2..15, keeps the oracle fast
		c := int(cRaw)%n + 1  // 1..n
		p, err := placement.CR(n, c)
		if err != nil {
			t.Fatalf("CR(%d,%d) must be constructible: %v", n, c, err)
		}
		s := New(p, seed)
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				avail.Add(v)
			}
		}
		chosen := s.Decode(avail)
		if !chosen.SubsetOf(avail) {
			t.Fatalf("chosen %v ⊄ available %v", chosen, avail)
		}
		if !p.ConflictGraph().IsIndependent(chosen) {
			t.Fatalf("chosen %v not independent in CR(%d,%d)", chosen, n, c)
		}
		if want := graph.IndependenceNumber(p.ConflictGraph(), avail); chosen.Len() != want {
			t.Fatalf("CR(%d,%d) W'=%v: decode %d ≠ α %d", n, c, avail, chosen.Len(), want)
		}
	})
}

// FuzzDecodeHR does the same for HR over fuzzer-chosen (possibly invalid)
// parameters: invalid combinations must be rejected by the constructor,
// valid ones must decode optimally.
func FuzzDecodeHR(f *testing.F) {
	f.Add(uint8(2), uint8(2), uint8(2), uint8(2), uint16(0xAB), int64(1))
	f.Add(uint8(3), uint8(2), uint8(2), uint8(2), uint16(0x5D), int64(2))
	f.Add(uint8(1), uint8(3), uint8(3), uint8(3), uint16(0x1FF), int64(3))
	f.Fuzz(func(t *testing.T, c1Raw, c2Raw, n0Raw, gRaw uint8, mask uint16, seed int64) {
		c1 := int(c1Raw % 5)
		c2 := int(c2Raw % 5)
		n0 := int(n0Raw%5) + 1
		g := int(gRaw%4) + 1
		n := n0 * g
		if n > 16 {
			return
		}
		p, err := placement.HR(n, c1, c2, g)
		if err != nil {
			return // invalid parameters: rejection is the correct behavior
		}
		s := New(p, seed)
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if mask&(1<<v) != 0 {
				avail.Add(v)
			}
		}
		chosen := s.Decode(avail)
		if !chosen.SubsetOf(avail) || !p.ConflictGraph().IsIndependent(chosen) {
			t.Fatalf("%v: bad decode %v for W'=%v", p, chosen, avail)
		}
		if want := graph.IndependenceNumber(p.ConflictGraph(), avail); chosen.Len() != want {
			t.Fatalf("%v W'=%v: decode %d ≠ α %d", p, avail, chosen.Len(), want)
		}
	})
}

// FuzzIncrementalDecode drives the incremental repair path with arbitrary
// placements, base masks, and mask deltas, asserting every repaired result
// is an available independent set whose size equals the exact independence
// number — i.e. indistinguishable from a fresh solve. Seeds are drawn from
// the golden exhaustive placements of exhaustive_test.go.
func FuzzIncrementalDecode(f *testing.F) {
	// kind: 0 → FR, 1 → CR, 2 → HR (mirrors exhaustivePlacements coverage).
	f.Add(uint8(0), uint8(8), uint8(2), uint8(0), uint16(0xFF), uint16(0x08), uint16(0x11), int64(1))
	f.Add(uint8(1), uint8(10), uint8(3), uint8(0), uint16(0x3B7), uint16(0x101), uint16(0x040), int64(2))
	f.Add(uint8(2), uint8(12), uint8(2), uint8(2), uint16(0xFFF), uint16(0x021), uint16(0x400), int64(3))
	f.Add(uint8(1), uint8(5), uint8(1), uint8(0), uint16(0x1F), uint16(0x02), uint16(0x02), int64(4))
	f.Fuzz(func(t *testing.T, kind, nRaw, aRaw, bRaw uint8, mask, delta1, delta2 uint16, seed int64) {
		n := int(nRaw%14) + 2 // 2..15 keeps the oracle fast
		var p *placement.Placement
		var err error
		switch kind % 3 {
		case 0:
			c := int(aRaw)%n + 1
			if n%c != 0 {
				return
			}
			p, err = placement.FR(n, c)
		case 1:
			p, err = placement.CR(n, int(aRaw)%n+1)
		case 2:
			c1, c2 := int(aRaw%5), int(bRaw%5)
			g := 1 + int(seed&3)
			if n%g != 0 {
				return
			}
			p, err = placement.HR(n, c1, c2, g)
		}
		if err != nil {
			return // invalid parameters: rejection is the correct behavior
		}
		s := New(p, seed)
		s.EnableIncrementalDecode()
		toSet := func(m uint16) *bitset.Set {
			avail := bitset.New(n)
			for v := 0; v < n; v++ {
				if m&(1<<v) != 0 {
					avail.Add(v)
				}
			}
			return avail
		}
		g := p.ConflictGraph()
		// Walk: base mask, two deltas, then the base again (return path).
		for _, m := range []uint16{mask, mask ^ delta1, mask ^ delta1 ^ delta2, mask} {
			avail := toSet(m)
			chosen := s.Decode(avail)
			if !chosen.SubsetOf(avail) {
				t.Fatalf("%v m=%04x: chosen %v ⊄ %v", p, m, chosen, avail)
			}
			if !g.IsIndependent(chosen) {
				t.Fatalf("%v m=%04x: chosen %v not independent", p, m, chosen)
			}
			if want := graph.IndependenceNumber(g, avail); chosen.Len() != want {
				t.Fatalf("%v m=%04x: incremental |I|=%d ≠ α=%d", p, m, chosen.Len(), want)
			}
		}
	})
}

// FuzzEncodeAggregate checks the end-to-end algebra under fuzzed gradient
// values: ĝ must equal the direct sum over recovered partitions.
func FuzzEncodeAggregate(f *testing.F) {
	f.Add(uint16(0b1010), 1.5, -2.0, int64(7))
	f.Fuzz(func(t *testing.T, mask uint16, x, y float64, seed int64) {
		if x != x || y != y || x > 1e100 || x < -1e100 || y > 1e100 || y < -1e100 {
			return // NaN/huge values make exact comparison meaningless
		}
		p, err := placement.CR(6, 2)
		if err != nil {
			t.Fatal(err)
		}
		s := New(p, seed)
		grads := make([][]float64, 6)
		for d := range grads {
			grads[d] = []float64{x * float64(d), y + float64(d)}
		}
		coded := make([][]float64, 6)
		avail := bitset.New(6)
		for v := 0; v < 6; v++ {
			if mask&(1<<v) != 0 {
				avail.Add(v)
				coded[v], err = s.Encode(v, grads)
				if err != nil {
					t.Fatal(err)
				}
			}
		}
		ghat, parts, _, err := s.DecodeAndAggregate(avail, coded)
		if err != nil {
			t.Fatal(err)
		}
		if avail.Empty() {
			return
		}
		want := []float64{0, 0}
		parts.Range(func(d int) bool {
			want[0] += grads[d][0]
			want[1] += grads[d][1]
			return true
		})
		scale := 1.0
		for _, v := range want {
			if av := abs(v); av > scale {
				scale = av
			}
		}
		if abs(ghat[0]-want[0]) > 1e-9*scale || abs(ghat[1]-want[1]) > 1e-9*scale {
			t.Fatalf("ĝ = %v, want %v", ghat, want)
		}
	})
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
