package isgc

import (
	"sync/atomic"

	"isgc/internal/bitset"
	"isgc/internal/placement"
)

// Incremental decode.
//
// In a long-running fleet the availability mask drifts by a worker or two
// per step, yet Decode re-solves the maximum-independent-set from scratch
// every time. The incremental path instead repairs the previous step's
// chosen set against the mask delta:
//
//   - a departed chosen worker triggers a local re-expansion (FR: refill
//     the group; CR: one resync walk anchored at the smallest surviving
//     chosen vertex; HR: refill the group subject to adjacent-group
//     conflicts),
//   - a returned worker is admitted only if it conflicts with no current
//     chosen worker (an O(n/64) word-parallel probe),
//   - the repaired set is accepted only when it is *provably* maximum:
//     its size must reach min(structural upper bound on α(G[W']),
//     |previous chosen| + |returned|). Any independent set is bounded by
//     both quantities, so meeting them certifies optimality. Otherwise the
//     decoder falls back to the fresh solve, which is maximum by
//     Theorems 3/8/9.
//
// FR needs no bound check: the repair reconstructs "one worker per group
// with availability", which is exactly the maximum.
//
// Cache coherence: a decode-cache hit overwrites ("syncs") the incremental
// state so a later repair never starts from a stale baseline, and an
// accepted repair is never stored in the LRU — only fresh solves, whose
// randomized tie-breaking the cache is documented to freeze, get cached.
//
// Like the decode cache, repairs freeze the randomized tie-breaking of
// Algorithms 1–3 while the mask drifts, trading the per-worker fairness
// rotation of Sec. IV for latency; hence the path is opt-in.

// incrementalState carries the previous step's mask and chosen set plus
// repair counters. Counters are atomics only so metrics scrapes may read
// them from other goroutines; the state itself shares Scheme's
// single-goroutine contract.
type incrementalState struct {
	valid  bool
	prev   *bitset.Set // previous clamped availability mask
	chosen *bitset.Set // maximum independent set for prev

	// Incrementally maintained structural bound on α: per-range available
	// worker counts (ranges are the length-c windows for CR, the groups
	// for FR/HR) and the number of nonempty ranges. Updating it costs
	// O(|mask delta|) per step, where recomputing from scratch would cost
	// O(n/c) probes — the difference between the repair path being O(n/64)
	// and it being dominated by its own acceptance check at n = 50k.
	rangeSize int
	occupied  []int32
	nonempty  int

	repairs    atomic.Uint64
	fallbacks  atomic.Uint64
	fullSolves atomic.Uint64
	cacheSyncs atomic.Uint64

	onRepair   func()
	onFallback func()
}

// IncrementalStats is a snapshot of the incremental decoder's counters.
type IncrementalStats struct {
	// Repairs counts decodes served by repairing the previous chosen set
	// (including the equal-mask fast path).
	Repairs uint64
	// Fallbacks counts repair attempts whose result could not be certified
	// maximum, forcing a fresh solve.
	Fallbacks uint64
	// FullSolves counts fresh solves run while the incremental path was
	// enabled (cold starts and fallbacks alike).
	FullSolves uint64
	// CacheSyncs counts decode-cache hits that overwrote the incremental
	// baseline, keeping the two paths coherent.
	CacheSyncs uint64
}

// EnableIncrementalDecode turns on incremental repair of the chosen set
// across consecutive decodes. Calling it again resets the repair state and
// counters. See the package comment above for the fairness tradeoff.
func (s *Scheme) EnableIncrementalDecode() {
	st := &incrementalState{}
	st.onRepair, st.onFallback = s.incHooks[0], s.incHooks[1]
	s.inc = st
}

// DisableIncrementalDecode turns the incremental path back off.
func (s *Scheme) DisableIncrementalDecode() { s.inc = nil }

// IncrementalDecodeStats returns the cumulative counters since the
// incremental path was (last) enabled, or zeros when it is disabled.
func (s *Scheme) IncrementalDecodeStats() IncrementalStats {
	if s.inc == nil {
		return IncrementalStats{}
	}
	return IncrementalStats{
		Repairs:    s.inc.repairs.Load(),
		Fallbacks:  s.inc.fallbacks.Load(),
		FullSolves: s.inc.fullSolves.Load(),
		CacheSyncs: s.inc.cacheSyncs.Load(),
	}
}

// SetIncrementalHooks registers callbacks fired on every accepted repair
// and every fallback — the glue for external metrics counters. Either may
// be nil. The hooks survive EnableIncrementalDecode resets.
func (s *Scheme) SetIncrementalHooks(onRepair, onFallback func()) {
	s.incHooks = [2]func(){onRepair, onFallback}
	if s.inc != nil {
		s.inc.onRepair, s.inc.onFallback = onRepair, onFallback
	}
}

func (st *incrementalState) invalidate() {
	st.valid = false
	st.prev, st.chosen = nil, nil
	st.occupied, st.nonempty = nil, 0
}

// applyBoundDelta folds a mask delta into the maintained per-range counts.
func (st *incrementalState) applyBoundDelta(departed, returned *bitset.Set) {
	departed.Range(func(w int) bool {
		i := w / st.rangeSize
		st.occupied[i]--
		if st.occupied[i] == 0 {
			st.nonempty--
		}
		return true
	})
	returned.Range(func(w int) bool {
		i := w / st.rangeSize
		if st.occupied[i] == 0 {
			st.nonempty++
		}
		st.occupied[i]++
		return true
	})
}

// sync overwrites the baseline from a decode-cache hit so the next repair
// starts from the entry the caller actually received.
func (st *incrementalState) sync(avail, chosen *bitset.Set) {
	st.prev, st.chosen = avail.Clone(), chosen.Clone()
	st.valid = true
	st.cacheSyncs.Add(1)
}

// adopt records a fresh solve as the new baseline.
func (st *incrementalState) adopt(avail, chosen *bitset.Set) {
	st.prev, st.chosen = avail.Clone(), chosen.Clone()
	st.valid = true
	st.fullSolves.Add(1)
}

// tryRepair attempts to repair the previous chosen set for the new mask.
// On success the returned set is state-owned (callers must clone), proven
// maximum, and adopted as the new baseline. On failure (false) the caller
// must run a fresh solve; the fallback has already been counted.
func (s *Scheme) tryRepair(avail *bitset.Set) (*bitset.Set, bool) {
	st := s.inc
	if avail.Equal(st.prev) {
		st.repairs.Add(1)
		if st.onRepair != nil {
			st.onRepair()
		}
		return st.chosen, true
	}
	departed := st.prev.AndNot(avail)
	returned := avail.AndNot(st.prev)
	st.applyBoundDelta(departed, returned)
	oldLen := st.chosen.Len()

	var repaired *bitset.Set
	exact := false
	switch s.p.Kind() {
	case placement.KindFR:
		repaired = s.repairFR(avail, returned)
		exact = true // reconstructs one-per-available-group, the exact max
	case placement.KindCR:
		repaired = s.repairCR(avail, returned)
	case placement.KindHR:
		repaired = s.repairHR(avail, returned)
	}

	if repaired != nil && !exact {
		bound := oldLen + returned.Len() // α grows ≤1 per added vertex
		if sb := s.incBound(); sb < bound {
			bound = sb
		}
		if repaired.Len() < bound {
			repaired = nil
		}
	}
	if repaired == nil {
		st.fallbacks.Add(1)
		if st.onFallback != nil {
			st.onFallback()
		}
		return nil, false
	}
	st.prev, st.chosen = avail.Clone(), repaired
	st.valid = true
	st.repairs.Add(1)
	if st.onRepair != nil {
		st.onRepair()
	}
	return repaired, true
}

// incBound returns the maintained structural upper bound on α(G[prev]) in
// O(1). It equals freshBound(st.prev) by construction: rebuildIncBound
// seeds the per-range counts on every adopt/sync and applyBoundDelta keeps
// them current across repairs.
func (s *Scheme) incBound() int {
	b := s.inc.nonempty
	if s.p.Kind() == placement.KindCR {
		if m := s.p.N() / s.p.C(); m < b {
			b = m
		}
	}
	return b
}

// rebuildIncBound recomputes the per-range availability counts from
// scratch — used whenever the baseline is replaced wholesale (fresh solve
// or decode-cache sync) rather than delta-repaired.
func (s *Scheme) rebuildIncBound(avail *bitset.Set) {
	st := s.inc
	size := s.p.C()
	if k := s.p.Kind(); k == placement.KindFR || k == placement.KindHR {
		size = s.p.GroupSize()
	}
	n := s.p.N()
	nr := (n + size - 1) / size
	if st.rangeSize != size || len(st.occupied) != nr {
		st.occupied = make([]int32, nr)
		st.rangeSize = size
	}
	st.nonempty = 0
	for i := 0; i < nr; i++ {
		lo, hi := i*size, (i+1)*size
		if hi > n {
			hi = n
		}
		cnt := avail.CountInRange(lo, hi)
		st.occupied[i] = int32(cnt)
		if cnt > 0 {
			st.nonempty++
		}
	}
}

// freshBound returns a structural upper bound on α(G[avail]) computable in
// O(n/64): FR/HR count groups with at least one available worker (each
// group is a clique); CR takes min(⌊n/c⌋, number of length-c windows
// holding an available worker) — two chosen in one window would sit at
// circular distance < c.
func (s *Scheme) freshBound(avail *bitset.Set) int {
	n, c := s.p.N(), s.p.C()
	switch s.p.Kind() {
	case placement.KindFR, placement.KindHR:
		n0 := s.p.GroupSize()
		b := 0
		for lo := 0; lo < n; lo += n0 {
			if avail.AnyInRange(lo, lo+n0) {
				b++
			}
		}
		return b
	case placement.KindCR:
		windows := 0
		for lo := 0; lo < n; lo += c {
			hi := lo + c
			if hi > n {
				hi = n
			}
			if avail.AnyInRange(lo, hi) {
				windows++
			}
		}
		if m := n / c; m < windows {
			return m
		}
		return windows
	}
	return n
}

// repairFR rebuilds "one chosen worker per group with availability": drop
// departed chosen workers (refilling their group from the mask) and admit
// returned workers into empty groups.
func (s *Scheme) repairFR(avail, returned *bitset.Set) *bitset.Set {
	c := s.p.C()
	out := s.inc.chosen.Clone()
	s.inc.chosen.AndNot(avail).Range(func(w int) bool {
		out.Remove(w)
		g := w / c
		if v := avail.NextInRange(g*c, (g+1)*c); v >= 0 {
			out.Add(v)
		}
		return true
	})
	returned.Range(func(v int) bool {
		g := v / c
		if !out.AnyInRange(g*c, (g+1)*c) {
			out.Add(v)
		}
		return true
	})
	return out
}

// repairCR repairs a circulant chosen set. With no chosen departures it
// admits each returned worker whose (2c−1)-wide conflict window holds no
// chosen vertex; a chosen departure instead triggers one resync walk
// anchored at the smallest surviving chosen vertex (nil if none survive —
// the caller falls back).
func (s *Scheme) repairCR(avail, returned *bitset.Set) *bitset.Set {
	n, c := s.p.N(), s.p.C()
	if s.inc.chosen.AndNot(avail).Empty() {
		out := s.inc.chosen.Clone()
		returned.Range(func(v int) bool {
			if !anyInCircRange(out, n, v-c+1, v+c) {
				out.Add(v)
			}
			return true
		})
		return out
	}
	surviving := s.inc.chosen.Clone()
	surviving.IntersectWith(avail)
	anchor := surviving.Min()
	if anchor < 0 {
		return nil
	}
	return s.greedyWalkCR(avail, anchor)
}

// repairHR repairs a hybrid chosen set: departed chosen workers are
// replaced by a conflict-free available worker of the same group when one
// exists, then returned workers are admitted if conflict-free. Conflicts
// in HR are confined to a worker's own group (a clique) and the two
// neighboring groups (the c2 spill-over spans at most one group), so each
// probe touches three group ranges.
func (s *Scheme) repairHR(avail, returned *bitset.Set) *bitset.Set {
	n0 := s.p.GroupSize()
	out := s.inc.chosen.Clone()
	s.inc.chosen.AndNot(avail).Range(func(w int) bool {
		out.Remove(w)
		g := w / n0
		for x := avail.NextInRange(g*n0, (g+1)*n0); x >= 0; x = avail.NextInRange(x+1, (g+1)*n0) {
			if !s.hrConflictsChosen(out, x) {
				out.Add(x)
				break
			}
		}
		return true
	})
	returned.Range(func(v int) bool {
		if !s.hrConflictsChosen(out, v) {
			out.Add(v)
		}
		return true
	})
	return out
}

// hrConflictsChosen reports whether v conflicts with any chosen worker,
// scanning only v's own and neighboring groups.
func (s *Scheme) hrConflictsChosen(chosen *bitset.Set, v int) bool {
	n0 := s.p.GroupSize()
	gs := s.p.Groups()
	g := v / n0
	for d := -1; d <= 1; d++ {
		ag := ((g+d)%gs + gs) % gs
		lo, hi := ag*n0, (ag+1)*n0
		for u := chosen.NextInRange(lo, hi); u >= 0; u = chosen.NextInRange(u+1, hi) {
			if u != v && s.p.Conflicts(u, v) {
				return true
			}
		}
	}
	return false
}

// anyInCircRange reports whether set holds an element of the circular
// interval [lo, hi) on Z_n; lo may be negative and hi may exceed n.
func anyInCircRange(set *bitset.Set, n, lo, hi int) bool {
	span := hi - lo
	if span <= 0 {
		return false
	}
	if span >= n {
		return !set.Empty()
	}
	lo = ((lo % n) + n) % n
	end := lo + span
	if end <= n {
		return set.AnyInRange(lo, end)
	}
	return set.AnyInRange(lo, n) || set.AnyInRange(0, end-n)
}
