package isgc

import (
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/placement"
)

// TestRandStateRoundTrip pins the durability contract of the decoder RNG:
// capturing RandState mid-run and restoring it into a fresh Scheme yields
// the exact same sequence of decode choices a continuing scheme produces.
func TestRandStateRoundTrip(t *testing.T) {
	p, err := placement.CR(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	ref := New(p, 41)

	// Advance the decode stream through masks that exercise the random
	// tie-breaking (partial availability → reservoir draws).
	avail := bitset.New(p.N())
	for i := 0; i < p.N(); i += 2 {
		avail.Add(i)
	}
	for i := 0; i < 50; i++ {
		ref.Decode(avail)
	}

	seed, draws := ref.RandState()
	if seed != 41 {
		t.Fatalf("RandState seed = %d, want 41", seed)
	}

	resumed := New(p, 0) // wrong seed on purpose; restore must fix it
	resumed.RestoreRandState(seed, draws)

	for i := 0; i < 50; i++ {
		a, b := ref.Decode(avail), resumed.Decode(avail)
		if a.String() != b.String() {
			t.Fatalf("decode %d diverged after restore: %v vs %v", i, a, b)
		}
	}
	rs, rd := ref.RandState()
	ss, sd := resumed.RandState()
	if rs != ss || rd != sd {
		t.Fatalf("post-run states diverged: (%d,%d) vs (%d,%d)", rs, rd, ss, sd)
	}
}
