package isgc

import (
	"math/rand"
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/graph"
	"isgc/internal/placement"
)

// differentialPlacements returns FR/CR/HR placements spanning n ∈ {8..64},
// including the n ≤ 12 sizes where the branch-and-bound oracle is cheap
// enough to pin exact α.
func differentialPlacements(t *testing.T) []*placement.Placement {
	t.Helper()
	var ps []*placement.Placement
	mustCR := func(n, c int) {
		p, err := placement.CR(n, c)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	mustFR := func(n, c int) {
		p, err := placement.FR(n, c)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, p)
	}
	mustHR := func(n, c1, c2, g int) {
		p, err := placement.HR(n, c1, c2, g)
		if err != nil {
			t.Fatal(err)
		}
		if p.Kind() != placement.KindHR {
			t.Fatalf("HR(%d,%d,%d,%d) degenerated to %v", n, c1, c2, g, p.Kind())
		}
		ps = append(ps, p)
	}
	for _, n := range []int{8, 9, 12, 16, 24, 33, 64} {
		mustCR(n, 3)
		switch n {
		case 8:
			mustFR(8, 2)
			mustHR(8, 2, 2, 2)
		case 9:
			mustFR(9, 3)
			mustHR(9, 1, 2, 3)
		case 12:
			mustFR(12, 3)
			mustHR(12, 2, 2, 3)
		case 16:
			mustFR(16, 4)
			mustHR(16, 2, 2, 4)
		case 24:
			mustFR(24, 3)
			mustHR(24, 2, 2, 6)
		case 33:
			mustFR(33, 3)
			mustHR(33, 5, 3, 3)
		case 64:
			mustFR(64, 8)
			mustHR(64, 2, 2, 16)
		}
	}
	return ps
}

// churnStep mutates the mask in place according to the named model.
func churnStep(model string, rng *rand.Rand, mask *bitset.Set, n int) {
	present := mask.Len()
	switch model {
	case "single-departure":
		if present > 1 {
			mask.Remove(mask.Select(rng.Intn(present)))
		} else {
			// Refill so the walk keeps exercising departures.
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					mask.Add(v)
				}
			}
		}
	case "single-return":
		if present < n {
			for {
				v := rng.Intn(n)
				if !mask.Contains(v) {
					mask.Add(v)
					return
				}
			}
		}
		mask.Remove(mask.Select(rng.Intn(present)))
	case "batch":
		k := 1 + rng.Intn(4)
		for i := 0; i < k; i++ {
			v := rng.Intn(n)
			if mask.Contains(v) {
				mask.Remove(v)
			} else {
				mask.Add(v)
			}
		}
	default:
		panic("unknown churn model " + model)
	}
}

// assertIncrementalStep checks the full contract of one incremental decode
// against an independent fresh scheme (and the oracle at small n): the
// repaired set must be an available independent set of the same size as
// the fresh maximum, with the matching recovered-partition count.
func assertIncrementalStep(t *testing.T, p *placement.Placement, inc, fresh *Scheme, avail *bitset.Set, useOracle bool) {
	t.Helper()
	chosen, rec := inc.DecodeWithRecovered(avail)
	if !chosen.SubsetOf(avail) {
		t.Fatalf("%v avail=%v: incremental chosen %v not available", p, avail, chosen)
	}
	g := p.ConflictGraph()
	if !g.IsIndependent(chosen) {
		t.Fatalf("%v avail=%v: incremental chosen %v not independent", p, avail, chosen)
	}
	fchosen, frec := fresh.DecodeWithRecovered(avail)
	if chosen.Len() != fchosen.Len() {
		t.Fatalf("%v avail=%v: incremental |I|=%d, fresh |I|=%d", p, avail, chosen.Len(), fchosen.Len())
	}
	if rec.Len() != frec.Len() {
		t.Fatalf("%v avail=%v: incremental recovers %d partitions, fresh %d",
			p, avail, rec.Len(), frec.Len())
	}
	if p.Kind() == placement.KindFR && !rec.Equal(frec) {
		// In FR every worker of a group holds the same partitions, so the
		// recovered set — not just its size — is determined by the mask.
		t.Fatalf("%v avail=%v: FR recovered sets differ: %v vs %v", p, avail, rec, frec)
	}
	if useOracle {
		if want := graph.IndependenceNumber(g, avail); chosen.Len() != want {
			t.Fatalf("%v avail=%v: incremental |I|=%d, oracle α=%d", p, avail, chosen.Len(), want)
		}
	}
}

// TestIncrementalDifferentialWalks is the differential suite: random
// mask-delta walks under three churn models assert that the incremental
// decoder matches an independent fresh scheme at every step (and the
// branch-and-bound oracle at n ≤ 12), for all of FR/CR/HR at n ∈ {8..64}.
func TestIncrementalDifferentialWalks(t *testing.T) {
	for _, p := range differentialPlacements(t) {
		for _, model := range []string{"single-departure", "single-return", "batch"} {
			p, model := p, model
			t.Run(p.String()+"/"+model, func(t *testing.T) {
				n := p.N()
				useOracle := n <= 12
				rng := rand.New(rand.NewSource(int64(n)*31 + int64(len(model))))
				inc := New(p, 7)
				inc.EnableIncrementalDecode()
				fresh := New(p, 8)

				mask := bitset.New(n)
				start := n
				if model == "single-return" {
					start = 1 + n/4
				}
				for v := 0; v < start; v++ {
					mask.Add(v)
				}
				steps := 120
				if useOracle {
					steps = 80
				}
				for step := 0; step < steps; step++ {
					assertIncrementalStep(t, p, inc, fresh, mask, useOracle)
					churnStep(model, rng, mask, n)
				}
				stats := inc.IncrementalDecodeStats()
				if stats.Repairs == 0 {
					t.Fatalf("%v/%s: walk never exercised the repair path (stats %+v)", p, model, stats)
				}
				if stats.Repairs+stats.FullSolves == 0 {
					t.Fatalf("%v/%s: no decodes recorded", p, model)
				}
			})
		}
	}
}

// TestIncrementalEqualMaskFastPath pins the repeated-mask shortcut: the
// second decode of an identical mask must be served by the repair path and
// return the same chosen set.
func TestIncrementalEqualMaskFastPath(t *testing.T) {
	p, err := placement.CR(24, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, 3)
	s.EnableIncrementalDecode()
	avail := bitset.FromSlice([]int{0, 2, 5, 9, 14, 15, 20, 23})
	first := s.Decode(avail)
	second := s.Decode(avail)
	if !first.Equal(second) {
		t.Fatalf("equal-mask decodes differ: %v vs %v", first, second)
	}
	stats := s.IncrementalDecodeStats()
	if stats.FullSolves != 1 || stats.Repairs != 1 {
		t.Fatalf("stats = %+v, want 1 full solve + 1 repair", stats)
	}
	// The caller's copy must be private: mutating it cannot corrupt state.
	second.Clear()
	third := s.Decode(avail)
	if !first.Equal(third) {
		t.Fatalf("state aliased caller's set: %v vs %v", first, third)
	}
}

// TestIncrementalEmptyMaskInvalidates checks an empty mask resets the
// baseline instead of repairing from garbage.
func TestIncrementalEmptyMaskInvalidates(t *testing.T) {
	p, err := placement.FR(12, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, 5)
	s.EnableIncrementalDecode()
	full := bitset.New(12)
	for v := 0; v < 12; v++ {
		full.Add(v)
	}
	if got := s.Decode(full); got.Len() != 4 {
		t.Fatalf("full mask decode = %v", got)
	}
	if got := s.Decode(bitset.New(12)); !got.Empty() {
		t.Fatalf("empty mask decode = %v", got)
	}
	if got := s.Decode(full); got.Len() != 4 {
		t.Fatalf("post-empty decode = %v", got)
	}
	stats := s.IncrementalDecodeStats()
	if stats.FullSolves != 2 {
		t.Fatalf("stats = %+v, want 2 full solves around the empty mask", stats)
	}
}

// TestIncrementalCacheInterplay is the regression test for the
// decode-cache/incremental coherence rules: a cache hit must resynchronize
// the repair baseline, and a repaired result must never be inserted into
// the LRU.
func TestIncrementalCacheInterplay(t *testing.T) {
	p, err := placement.CR(32, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, 11)
	s.EnableDecodeCache(16)
	s.EnableIncrementalDecode()
	fresh := New(p, 12)

	maskA := bitset.New(32)
	for v := 0; v < 32; v++ {
		maskA.Add(v)
	}
	maskB := maskA.Clone()
	maskB.Remove(7) // A with one departure
	maskC := maskB.Clone()
	maskC.Remove(19) // B with one more departure

	check := func(mask *bitset.Set, label string) {
		t.Helper()
		chosen := s.Decode(mask)
		if !chosen.SubsetOf(mask) || !p.ConflictGraph().IsIndependent(chosen) {
			t.Fatalf("%s: invalid chosen %v", label, chosen)
		}
		if want := fresh.Decode(mask).Len(); chosen.Len() != want {
			t.Fatalf("%s: |I|=%d, fresh α=%d", label, chosen.Len(), want)
		}
	}

	check(maskA, "A cold")      // miss → fresh solve, cached, adopted
	check(maskB, "B repair")    // miss → repaired, must NOT be cached
	check(maskB, "B again")     // must still miss the cache; equal-mask repair
	check(maskA, "A cache hit") // hit → must resync incremental baseline
	check(maskC, "C from A")    // miss → repair must run from A's set, not B's

	hits, misses := s.DecodeCacheStats()
	if hits != 1 {
		t.Fatalf("cache hits = %d, want exactly 1 (repairs must not populate the LRU)", hits)
	}
	// A cold, B, B again, C — four lookups missed.
	if misses != 4 {
		t.Fatalf("cache misses = %d, want 4", misses)
	}
	stats := s.IncrementalDecodeStats()
	if stats.CacheSyncs != 1 {
		t.Fatalf("stats = %+v, want exactly 1 cache sync", stats)
	}
	if stats.Repairs < 2 {
		t.Fatalf("stats = %+v, want ≥2 repairs (B and its equal-mask re-decode)", stats)
	}
	if stats.FullSolves < 1 {
		t.Fatalf("stats = %+v, want the cold solve counted", stats)
	}

	// Interleave a longer churned sequence through the cached scheme and a
	// fresh one; α must agree at every step regardless of which layer
	// serves the decode.
	rng := rand.New(rand.NewSource(99))
	mask := maskA.Clone()
	for step := 0; step < 60; step++ {
		churnStep("batch", rng, mask, 32)
		if mask.Empty() {
			continue
		}
		check(mask.Clone(), "interleaved")
		if step%7 == 0 {
			check(maskA, "recurring A") // keeps hitting the cache mid-walk
		}
	}
}

// TestDecodeHRDominatedAnchorGroup is the regression for a latent
// fresh-decoder miss FuzzIncrementalDecode surfaced: in HR(12,1,3,3) with
// W' = {3, 6, 8}, worker 6 conflicts with both other available workers, so
// no maximum independent set touches group 1 — walks anchored there found
// only {6} (α = 2) until decodeHR learned to escalate past the anchor
// group when the structural bound is not met. Every seed must now decode
// optimally regardless of which anchor the RNG draws.
func TestDecodeHRDominatedAnchorGroup(t *testing.T) {
	p, err := placement.HR(12, 1, 3, 3)
	if err != nil {
		t.Fatal(err)
	}
	avail := bitset.FromSlice([]int{3, 6, 8})
	want := graph.IndependenceNumber(p.ConflictGraph(), avail)
	if want != 2 {
		t.Fatalf("oracle α = %d, counterexample expects 2", want)
	}
	for seed := int64(0); seed < 40; seed++ {
		s := New(p, seed)
		if got := s.Decode(avail); got.Len() != want {
			t.Fatalf("seed %d: decode %v (size %d), want α=%d", seed, got, got.Len(), want)
		}
	}
}

// TestIncrementalHooksAndReset checks hook delivery and that re-enabling
// resets counters but keeps hooks, mirroring the decode-cache contract.
func TestIncrementalHooksAndReset(t *testing.T) {
	p, err := placement.CR(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := New(p, 1)
	var repairs, fallbacks int
	s.SetIncrementalHooks(func() { repairs++ }, func() { fallbacks++ })
	s.EnableIncrementalDecode()

	mask := bitset.New(16)
	for v := 0; v < 16; v++ {
		mask.Add(v)
	}
	s.Decode(mask)
	mask.Remove(3)
	s.Decode(mask)
	stats := s.IncrementalDecodeStats()
	if int(stats.Repairs) != repairs || int(stats.Fallbacks) != fallbacks {
		t.Fatalf("hooks (r=%d f=%d) disagree with stats %+v", repairs, fallbacks, stats)
	}
	if repairs+fallbacks == 0 {
		t.Fatal("second decode took neither repair nor fallback path")
	}

	s.EnableIncrementalDecode() // reset
	if got := s.IncrementalDecodeStats(); got != (IncrementalStats{}) {
		t.Fatalf("counters survived reset: %+v", got)
	}
	before := repairs
	s.Decode(mask)
	mask.Remove(8)
	s.Decode(mask)
	if repairs+fallbacks == before && s.IncrementalDecodeStats().Repairs == 0 {
		t.Fatal("hooks lost after re-enable")
	}
}

// TestIncrementalBoundMaintenance: the acceptance rule's proof rests on the
// O(1) maintained bound (incBound) equaling the O(n/c)-probe freshBound of
// the current mask. Walk random deltas — including cache syncs and empty-
// mask invalidations — and pin the two against each other after every step.
func TestIncrementalBoundMaintenance(t *testing.T) {
	for _, p := range differentialPlacements(t) {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			n := p.N()
			rng := rand.New(rand.NewSource(int64(n)))
			s := New(p, 5)
			s.EnableDecodeCache(8) // exercise the sync path too
			s.EnableIncrementalDecode()
			mask := bitset.New(n)
			for v := 0; v < n; v++ {
				mask.Add(v)
			}
			for step := 0; step < 150; step++ {
				s.Decode(mask)
				if s.inc.valid {
					if got, want := s.incBound(), s.freshBound(s.inc.prev); got != want {
						t.Fatalf("%v step %d mask=%v: maintained bound %d, fresh bound %d",
							p, step, s.inc.prev, got, want)
					}
				}
				switch step % 10 {
				case 7:
					mask.Clear() // invalidates; next decode readopts
					for v := 0; v < n; v++ {
						if rng.Intn(4) > 0 {
							mask.Add(v)
						}
					}
				default:
					churnStep("batch", rng, mask, n)
				}
			}
		})
	}
}
