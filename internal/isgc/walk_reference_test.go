package isgc

import (
	"math/rand"
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/graph"
	"isgc/internal/placement"
)

// referenceGreedyWalkCR is a frozen copy of the original linear-scan
// Algorithm 2 pass. The word-parallel greedyWalkCR must stay bit-identical
// to it — not merely same-cardinality — because decode sequences feed
// checkpoint/restore equivalence tests that compare exact chosen sets.
func referenceGreedyWalkCR(avail *bitset.Set, n, c, start int) *bitset.Set {
	cur := bitset.New(n)
	cur.Add(start)
	last := start
	for off := 1; off < n; off++ {
		v := (start + off) % n
		if !avail.Contains(v) {
			continue
		}
		if graph.CircDist(last, v, n) >= c && graph.CircDist(v, start, n) >= c {
			cur.Add(v)
			last = v
		}
	}
	return cur
}

// referenceRandomAvailable is the original per-bit uniform pick. It must
// consume exactly one rng.Intn(len) draw and return the same element as the
// Select-based replacement for any fixed draw value.
func referenceRandomAvailable(avail *bitset.Set, k int) int {
	picked := -1
	avail.Range(func(v int) bool {
		if k == 0 {
			picked = v
			return false
		}
		k--
		return true
	})
	return picked
}

// TestGreedyWalkCRMatchesLinearReference sweeps n, c, densities, and start
// vertices, asserting the interval-scan walk equals the frozen linear walk
// element-for-element.
func TestGreedyWalkCRMatchesLinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, n := range []int{3, 4, 5, 8, 13, 16, 31, 64, 65, 100, 129} {
		for _, c := range []int{1, 2, 3, 5, 8} {
			if c >= n {
				continue
			}
			p, err := placement.CR(n, c)
			if err != nil {
				t.Fatalf("CR(%d,%d): %v", n, c, err)
			}
			s := New(p, 1)
			for trial := 0; trial < 25; trial++ {
				avail := bitset.New(n)
				for v := 0; v < n; v++ {
					if rng.Float64() < []float64{0.1, 0.5, 0.9, 1.0}[trial%4] {
						avail.Add(v)
					}
				}
				avail.Range(func(start int) bool {
					got := s.greedyWalkCR(avail, start)
					want := referenceGreedyWalkCR(avail, n, c, start)
					if !got.Equal(want) {
						t.Fatalf("n=%d c=%d start=%d avail=%v: walk %v, reference %v",
							n, c, start, avail, got, want)
					}
					return true
				})
			}
		}
	}
}

// TestRandomAvailableMatchesReference fixes the rng draw and checks the
// Select-based pick lands on the same worker as the per-bit walk, for masks
// straddling word boundaries.
func TestRandomAvailableMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.3 {
				avail.Add(v)
			}
		}
		if avail.Empty() {
			avail.Add(rng.Intn(n))
		}
		for k := 0; k < avail.Len(); k++ {
			if got, want := avail.Select(k), referenceRandomAvailable(avail, k); got != want {
				t.Fatalf("n=%d k=%d: Select=%d reference=%d (avail %v)", n, k, got, want, avail)
			}
		}
	}
}
