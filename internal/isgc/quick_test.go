package isgc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"isgc/internal/bitset"
	"isgc/internal/graph"
	"isgc/internal/placement"
)

// Property: for random CR parameters and availability sets, Decode returns
// an independent set of exactly the optimal size.
func TestQuickDecodeCROptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(14)
		c := 1 + rng.Intn(n)
		p, err := placement.CR(n, c)
		if err != nil {
			return false
		}
		s := New(p, rng.Int63())
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.3+0.5*rng.Float64() {
				avail.Add(v)
			}
		}
		chosen := s.Decode(avail)
		if !chosen.SubsetOf(avail) || !p.ConflictGraph().IsIndependent(chosen) {
			return false
		}
		return chosen.Len() == graph.IndependenceNumber(p.ConflictGraph(), avail)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: for random valid HR parameters, Decode is exactly optimal.
func TestQuickDecodeHROptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Draw valid HR parameters: g|n, c ≤ n0 ≤ min(2c-1, c+c1).
		g := 1 + rng.Intn(5)
		n0 := 2 + rng.Intn(5)
		n := g * n0
		c := (n0+1)/2 + rng.Intn(n0-(n0+1)/2+1) // c in [⌈n0/2⌉, n0] ⇒ n0 ≤ 2c-1... approximately
		if c < 2 {
			c = 2
		}
		if c > n0 {
			c = n0
		}
		if n0 > 2*c-1 {
			return true // skip invalid draw
		}
		lo := 1
		if n0-c > lo {
			lo = n0 - c
		}
		if lo > c {
			return true
		}
		c1 := lo + rng.Intn(c-lo+1)
		p, err := placement.HR(n, c1, c-c1, g)
		if err != nil {
			return true // out-of-range draw: skip, constructor correctness is tested elsewhere
		}
		s := New(p, rng.Int63())
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.5 {
				avail.Add(v)
			}
		}
		chosen := s.Decode(avail)
		if !chosen.SubsetOf(avail) || !p.ConflictGraph().IsIndependent(chosen) {
			return false
		}
		return chosen.Len() == graph.IndependenceNumber(p.ConflictGraph(), avail)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: recovered partition count is always exactly |I|·c and the
// fraction lies within the Theorem 10/11 bounds scaled by c/n.
func TestQuickRecoveryWithinBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		c := 1 + rng.Intn(n)
		p, err := placement.CR(n, c)
		if err != nil {
			return false
		}
		s := New(p, rng.Int63())
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.6 {
				avail.Add(v)
			}
		}
		chosen := s.Decode(avail)
		rec := s.Recovered(chosen)
		if rec.Len() != chosen.Len()*c {
			return false
		}
		if avail.Empty() {
			return rec.Len() == 0
		}
		lo, hi := p.AlphaBounds(avail.Len())
		return chosen.Len() >= lo && chosen.Len() <= hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding is monotone in availability for the optimum size —
// adding workers never decreases |Decode| (α is monotone under vertex
// addition; the decoder is exactly optimal, so it inherits monotonicity).
func TestQuickDecodeMonotoneInAvailability(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		c := 1 + rng.Intn(n/2+1)
		p, err := placement.CR(n, c)
		if err != nil {
			return false
		}
		s := New(p, rng.Int63())
		small := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.4 {
				small.Add(v)
			}
		}
		big := small.Clone()
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.3 {
				big.Add(v)
			}
		}
		return s.Decode(big).Len() >= s.Decode(small).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Theorem 4 at decode level — with identical availability, the
// FR decoder never recovers fewer partitions than the CR decoder.
func TestQuickFRDecodesAtLeastCR(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(4) // groups
		c := 1 + rng.Intn(4)
		n := k * c
		pfr, err := placement.FR(n, c)
		if err != nil {
			return false
		}
		pcr, err := placement.CR(n, c)
		if err != nil {
			return false
		}
		sfr, scr := New(pfr, rng.Int63()), New(pcr, rng.Int63())
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.5 {
				avail.Add(v)
			}
		}
		return sfr.Decode(avail).Len() >= scr.Decode(avail).Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
