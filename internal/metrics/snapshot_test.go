package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// exactPercentile is the linear-interpolation order statistic the trace
// package uses — the ground truth the bucket estimator is judged against.
func exactPercentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// TestQuantileAgainstExactPercentiles drives random sample sets through a
// finely bucketed histogram and asserts every estimated quantile lands
// within one bucket width of the exact order statistic — the best any
// bucket interpolator can promise.
func TestQuantileAgainstExactPercentiles(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	buckets := LinearBuckets(0.01, 0.01, 100) // 10ms-wide buckets over (0, 1]
	const width = 0.01
	for trial := 0; trial < 25; trial++ {
		r := NewRegistry()
		h := r.NewHistogram("h", "", buckets)
		n := 1 + rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() // uniform in [0,1)
			h.Observe(xs[i])
		}
		snap := h.Snapshot()
		if snap.Count != uint64(n) {
			t.Fatalf("trial %d: snapshot count %d, want %d", trial, snap.Count, n)
		}
		for _, p := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
			got := snap.Quantile(p)
			// The estimator's rank convention (p·n) and the exact order
			// statistic's (p·(n−1) interpolated) legitimately differ by up
			// to ~one sample rank, so the honest bound is the exact
			// percentile envelope at p ± 1.5/n, widened by one bucket.
			slack := 1.5 / float64(n)
			lo := exactPercentile(xs, math.Max(0, p-slack)) - width - 1e-12
			hi := exactPercentile(xs, math.Min(1, p+slack)) + width + 1e-12
			if got < lo || got > hi {
				t.Errorf("trial %d n=%d: Quantile(%v) = %v, outside exact envelope [%v, %v]",
					trial, n, p, got, lo, hi)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if v := nilH.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("nil histogram quantile = %v, want NaN", v)
	}
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{1, 2, 4})
	if v := h.Quantile(0.5); !math.IsNaN(v) {
		t.Errorf("empty histogram quantile = %v, want NaN", v)
	}
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(3)
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if v := h.Quantile(p); !math.IsNaN(v) {
			t.Errorf("Quantile(%v) = %v, want NaN", p, v)
		}
	}
	// Observations past the last finite bound clamp to it.
	h.Observe(100)
	if v := h.Quantile(1); v != 4 {
		t.Errorf("p=1 with +Inf-bucket sample = %v, want clamp to 4", v)
	}
	// Exactly one bucket occupied: answer stays inside that bucket.
	r2 := NewRegistry()
	h2 := r2.NewHistogram("h2", "", []float64{1, 2, 4})
	h2.Observe(1.5)
	h2.Observe(1.6)
	for _, p := range []float64{0, 0.5, 1} {
		if v := h2.Quantile(p); v < 1 || v > 2 {
			t.Errorf("single-bucket Quantile(%v) = %v, want within (1,2]", p, v)
		}
	}
	// All-negative first bucket has no zero floor to interpolate from.
	r3 := NewRegistry()
	h3 := r3.NewHistogram("h3", "", []float64{-1, 0, 1})
	h3.Observe(-5)
	if v := h3.Quantile(0.5); v != -1 {
		t.Errorf("negative-bucket quantile = %v, want -1", v)
	}
}

func TestSnapshotSubWindowedDelta(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", LinearBuckets(1, 1, 10))
	h.Observe(1)
	h.Observe(1)
	prev := h.Snapshot()
	h.Observe(9)
	h.Observe(9)
	h.Observe(9)
	d := h.Snapshot().Sub(prev)
	if d.Count != 3 {
		t.Fatalf("delta count = %d, want 3", d.Count)
	}
	if v := d.Quantile(0.5); v < 8 || v > 9 {
		t.Errorf("delta median = %v, want within (8,9] — the old observations must not drag it down", v)
	}
	if math.Abs(d.Sum-27) > 1e-9 {
		t.Errorf("delta sum = %v, want 27", d.Sum)
	}
	// A reset (prev ahead of current) returns the full distribution.
	fresh := r.NewHistogram("h2", "", LinearBuckets(1, 1, 10)).Snapshot()
	fresh.Counts = make([]uint64, len(prev.Counts))
	fresh.Upper = prev.Upper
	fresh.Counts[0] = 1
	fresh.Count = 1
	got := fresh.Sub(prev)
	if got.Count != fresh.Count {
		t.Errorf("reset delta count = %d, want the full snapshot (%d)", got.Count, fresh.Count)
	}
}

func TestGatherTypedSamples(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("zz_total", "")
	g := r.NewGauge("aa_gauge", "")
	r.NewGaugeFunc("fn_gauge", "", func() float64 { return 42 })
	h := r.NewHistogram("lat_seconds", "", DefBuckets)
	cv := r.NewCounterVec("per_worker_total", "", "worker")
	gv := r.NewGaugeVec("per_job", "", "job", "role")

	c.Add(5)
	g.Set(-1.5)
	h.Observe(0.2)
	h.Observe(0.3)
	cv.With("3").Add(7)
	cv.With("0").Inc()
	gv.With("job-001", "master").Set(9)

	var nilReg *Registry
	if got := nilReg.Gather(); got != nil {
		t.Errorf("nil registry Gather = %v, want nil", got)
	}
	samples := r.Gather()
	byKey := map[string]Sample{}
	for _, s := range samples {
		key := s.Name
		for _, l := range s.Labels {
			key += "," + l.Name + "=" + l.Value
		}
		byKey[key] = s
	}
	check := func(key string, kind Kind, value float64) {
		t.Helper()
		s, ok := byKey[key]
		if !ok {
			t.Fatalf("Gather missing %q (have %v)", key, samples)
		}
		if s.Kind != kind || s.Value != value {
			t.Errorf("%q = kind %v value %v, want %v / %v", key, s.Kind, s.Value, kind, value)
		}
	}
	check("zz_total", KindCounter, 5)
	check("aa_gauge", KindGauge, -1.5)
	check("fn_gauge", KindGauge, 42)
	check("per_worker_total,worker=3", KindCounter, 7)
	check("per_worker_total,worker=0", KindCounter, 1)
	check("per_job,job=job-001,role=master", KindGauge, 9)
	hs, ok := byKey["lat_seconds"]
	if !ok || hs.Kind != KindHistogram || hs.Hist == nil {
		t.Fatalf("histogram sample missing or untyped: %+v", hs)
	}
	if hs.Hist.Count != 2 || hs.Value != 2 {
		t.Errorf("histogram snapshot count = %d / value %v, want 2", hs.Hist.Count, hs.Value)
	}
	// Families arrive sorted by name.
	for i := 1; i < len(samples); i++ {
		if samples[i].Name < samples[i-1].Name {
			t.Errorf("Gather out of order: %q after %q", samples[i].Name, samples[i-1].Name)
		}
	}
}
