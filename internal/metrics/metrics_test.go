package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounter(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("requests_total", "Total requests.")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("Value() = %d, want 42", got)
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("temperature", "Current temperature.")
	g.Set(1.5)
	g.Add(-0.5)
	if got := g.Value(); got != 1.0 {
		t.Fatalf("Value() = %v, want 1", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("latency_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 5, 50} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("Count() = %d, want 5", got)
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+5+50; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum() = %v, want %v", got, want)
	}
	// Cumulative bucket counts: le=0.1 → 2 (0.05, 0.1 inclusive),
	// le=1 → 3, le=10 → 4, +Inf → 5.
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`latency_seconds_bucket{le="0.1"} 2`,
		`latency_seconds_bucket{le="1"} 3`,
		`latency_seconds_bucket{le="10"} 4`,
		`latency_seconds_bucket{le="+Inf"} 5`,
		`latency_seconds_count 5`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestHistogramExplicitInfBucket(t *testing.T) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", []float64{1, math.Inf(1)})
	h.Observe(2)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(b.String(), `le="+Inf"`); got != 1 {
		t.Fatalf("want exactly one +Inf bucket, got %d:\n%s", got, b.String())
	}
}

func TestGaugeFunc(t *testing.T) {
	r := NewRegistry()
	v := 3.0
	r.NewGaugeFunc("live_value", "Computed at scrape.", func() float64 { return v })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "live_value 3\n") {
		t.Fatalf("missing gauge func sample:\n%s", b.String())
	}
}

func TestVecLabels(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("grads_total", "Accepted gradients.", "worker")
	cv.With("1").Add(3)
	cv.With("0").Inc()
	cv.With("1").Inc() // same child again
	gv := r.NewGaugeVec("alive", "Liveness.", "worker")
	gv.With("0").Set(1)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range []string{
		`grads_total{worker="0"} 1`,
		`grads_total{worker="1"} 4`,
		`alive{worker="0"} 1`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
	// Children must be sorted by label value for deterministic scrapes.
	if strings.Index(out, `worker="0"} 1`) > strings.Index(out, `worker="1"} 4`) {
		t.Errorf("vec children not sorted:\n%s", out)
	}
}

func TestNilSafety(t *testing.T) {
	// Every instrument must be a no-op on a nil receiver so disabled
	// instrumentation needs no branches at call sites.
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *Gauge
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
	var h *Histogram
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil histogram has observations")
	}
	var cv *CounterVec
	cv.With("x").Inc()
	var gv *GaugeVec
	gv.With("x").Set(1)
}

func TestRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("ok_name", "")
	for name, fn := range map[string]func(){
		"duplicate":     func() { r.NewCounter("ok_name", "") },
		"invalid name":  func() { r.NewCounter("0bad", "") },
		"invalid label": func() { r.NewCounterVec("v", "", "0bad") },
		"no labels":     func() { r.NewCounterVec("v2", "") },
		"empty buckets": func() { r.NewHistogram("h", "", nil) },
		"non-monotonic": func() { r.NewHistogram("h2", "", []float64{2, 1}) },
		"nil gaugefunc": func() { r.NewGaugeFunc("gf", "", nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestVecArityPanics(t *testing.T) {
	r := NewRegistry()
	cv := r.NewCounterVec("v", "", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on label arity mismatch")
		}
	}()
	cv.With("only-one")
}

// TestConcurrentUpdatesAndScrapes is the race-detector workout: writers
// hammer every instrument kind while readers scrape.
func TestConcurrentUpdatesAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	g := r.NewGauge("g", "")
	h := r.NewHistogram("h", "", DefBuckets)
	cv := r.NewCounterVec("cv", "", "w")
	var wg sync.WaitGroup
	const writers, perWriter = 8, 500
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j) / 100)
				cv.With(string(rune('a' + i%4))).Inc()
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				var b strings.Builder
				if err := r.WritePrometheus(&b); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Value() != writers*perWriter {
		t.Fatalf("counter = %d, want %d", c.Value(), writers*perWriter)
	}
	if h.Count() != writers*perWriter {
		t.Fatalf("histogram count = %d, want %d", h.Count(), writers*perWriter)
	}
	if g.Value() != writers*perWriter {
		t.Fatalf("gauge = %v, want %d", g.Value(), writers*perWriter)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(1, 2, 3)
	if lin[0] != 1 || lin[1] != 3 || lin[2] != 5 {
		t.Fatalf("LinearBuckets = %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if exp[3] != 8 {
		t.Fatalf("ExponentialBuckets = %v", exp)
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.NewCounter("c", "")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.NewHistogram("h", "", DefBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%100) / 100)
	}
}
