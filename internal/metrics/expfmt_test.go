package metrics

import (
	"math"
	"strings"
	"testing"
)

// TestExpositionGolden pins the full output byte-for-byte: family order
// (sorted by name), HELP/TYPE headers, escaping, histogram layout.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	g := r.NewGauge("zz_last", "Registered first, renders last.")
	g.Set(0.25)
	c := r.NewCounter("aa_first", `Help with a "quote", back\slash and`+"\nnewline.")
	c.Add(7)
	h := r.NewHistogram("mid_hist", "A histogram.", []float64{0.5, 1})
	h.Observe(0.4)
	h.Observe(0.6)
	h.Observe(2)
	cv := r.NewCounterVec("mid_vec", "Labeled.", "worker", "kind")
	cv.With("3", `odd"value`+"\n").Add(2)

	const want = `# HELP aa_first Help with a "quote", back\\slash and\nnewline.
# TYPE aa_first counter
aa_first 7
# HELP mid_hist A histogram.
# TYPE mid_hist histogram
mid_hist_bucket{le="0.5"} 1
mid_hist_bucket{le="1"} 2
mid_hist_bucket{le="+Inf"} 3
mid_hist_sum 3
mid_hist_count 3
# HELP mid_vec Labeled.
# TYPE mid_vec counter
mid_vec{worker="3",kind="odd\"value\n"} 2
# HELP zz_last Registered first, renders last.
# TYPE zz_last gauge
zz_last 0.25
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), want)
	}
}

func TestFormatFloatSpecials(t *testing.T) {
	for v, want := range map[float64]string{
		math.Inf(1):  "+Inf",
		math.Inf(-1): "-Inf",
		0.1:          "0.1",
		3:            "3",
	} {
		if got := formatFloat(v); got != want {
			t.Errorf("formatFloat(%v) = %q, want %q", v, got, want)
		}
	}
	if got := formatFloat(math.NaN()); got != "NaN" {
		t.Errorf("formatFloat(NaN) = %q", got)
	}
}

func TestNoHelpOmitsHelpLine(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("bare", "")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), "# HELP") {
		t.Fatalf("unexpected HELP line:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "# TYPE bare counter\n") {
		t.Fatalf("missing TYPE line:\n%s", b.String())
	}
}
