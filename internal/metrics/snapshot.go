// Structured read side of the registry: point-in-time histogram snapshots
// with bucket-interpolated quantiles, and a typed Gather over every
// registered family. The Prometheus text exposition is for external
// scrapers; Gather is for in-process consumers — the time-series store
// (internal/obs), /healthz summaries, and the master's printed latency
// line — that need values, not text.
package metrics

import (
	"math"
)

// Kind discriminates the instrument families Gather reports.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus type name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Label is one name/value pair of a labeled (vec) child.
type Label struct {
	Name  string
	Value string
}

// Sample is one gathered instrument value. Counters and gauges carry
// Value; histograms carry Hist (Value is then the observation count, a
// convenience for consumers that only want volume).
type Sample struct {
	Name   string
	Labels []Label
	Kind   Kind
	Value  float64
	Hist   *HistogramSnapshot
}

// Gather returns a typed snapshot of every registered instrument, families
// sorted by name, vec children sorted by label values. Like the text
// exposition, a gather concurrent with updates is per-value atomic, not a
// cross-metric point-in-time cut. Safe on a nil registry (returns nil).
func (r *Registry) Gather() []Sample {
	if r == nil {
		return nil
	}
	var out []Sample
	for _, f := range r.families() {
		if f.gather != nil {
			out = f.gather(out)
		}
	}
	return out
}

// HistogramSnapshot is a point-in-time copy of a histogram's buckets:
// the raw material for estimated quantiles and for windowed deltas
// between two scrapes.
type HistogramSnapshot struct {
	// Upper are the finite bucket upper bounds, strictly increasing. The
	// slice is shared with the histogram; do not mutate it.
	Upper []float64
	// Counts are per-bucket (non-cumulative) observation counts;
	// len(Counts) == len(Upper)+1, the last entry being the +Inf bucket.
	Counts []uint64
	// Count is the total observation count (sum of Counts — internally
	// consistent with the buckets even under concurrent observes).
	Count uint64
	// Sum is the sum of observed values.
	Sum float64
}

// Snapshot copies the histogram's current bucket counts. The total Count
// is derived from the bucket reads so the pair stays consistent; Sum is
// read separately and may be a few observations ahead or behind under
// concurrent updates. Safe on a nil receiver (zero snapshot).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Upper:  h.upper,
		Counts: make([]uint64, len(h.counts)),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	return s
}

// Quantile estimates the p-quantile (p in [0, 1]) of the observed
// distribution by linear interpolation within the bucket that contains the
// target rank — the same estimator as Prometheus's histogram_quantile.
// Values landing in the +Inf bucket clamp to the highest finite bound.
// Returns NaN for an empty snapshot or p outside [0, 1].
func (s HistogramSnapshot) Quantile(p float64) float64 {
	if s.Count == 0 || len(s.Upper) == 0 || math.IsNaN(p) || p < 0 || p > 1 {
		return math.NaN()
	}
	target := p * float64(s.Count)
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if float64(cum+c) >= target {
			if i >= len(s.Upper) {
				// +Inf bucket: no finite upper edge to interpolate toward.
				return s.Upper[len(s.Upper)-1]
			}
			upper := s.Upper[i]
			lower := 0.0
			if i > 0 {
				lower = s.Upper[i-1]
			} else if upper <= 0 {
				// All-negative first bucket: no zero floor to lean on.
				return upper
			}
			pos := (target - float64(cum)) / float64(c)
			if pos < 0 {
				pos = 0
			}
			return lower + (upper-lower)*pos
		}
		cum += c
	}
	return s.Upper[len(s.Upper)-1]
}

// Sub returns the windowed delta s − prev: the distribution of
// observations made between the two snapshots. A mismatched bucket layout
// or a counter reset (prev ahead of s anywhere) returns s unchanged — the
// full distribution is the only honest answer after a reset.
func (s HistogramSnapshot) Sub(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) != len(s.Counts) || prev.Count > s.Count {
		return s
	}
	d := HistogramSnapshot{
		Upper:  s.Upper,
		Counts: make([]uint64, len(s.Counts)),
		Sum:    s.Sum - prev.Sum,
	}
	for i := range s.Counts {
		if prev.Counts[i] > s.Counts[i] {
			return s // per-bucket reset
		}
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
		d.Count += d.Counts[i]
	}
	if d.Sum < 0 {
		d.Sum = 0
	}
	return d
}

// Quantile is shorthand for Snapshot().Quantile(p) — one estimated
// quantile off the live histogram. Returns NaN on a nil or empty
// histogram.
func (h *Histogram) Quantile(p float64) float64 {
	return h.Snapshot().Quantile(p)
}
