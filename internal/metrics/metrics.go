// Package metrics is a zero-third-party-dependency, race-safe metrics
// registry with Prometheus text-format exposition. It provides the three
// classic instrument kinds — monotonic Counter, settable Gauge (plus
// pull-time GaugeFunc), and fixed-bucket Histogram — together with
// labeled families (CounterVec, GaugeVec), and renders everything in the
// Prometheus exposition format version 0.0.4 so any off-the-shelf scraper
// can consume a running master or worker.
//
// Design notes:
//
//   - Hot-path operations (Inc, Add, Set, Observe) are lock-free atomics;
//     a scrape never blocks an instrumented training step.
//   - Every instrument method is safe on a nil receiver and does nothing,
//     so instrumented code paths need no "metrics enabled?" branches.
//   - Registration panics on invalid or duplicate names: metric names are
//     compile-time constants in this codebase, so a bad one is a
//     programmer error, not a runtime condition.
//   - A scrape taken concurrently with updates is not a point-in-time
//     snapshot across metrics (each value is individually atomic); this
//     matches the guarantees of the standard Prometheus client.
package metrics

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"sync"
	"sync/atomic"
)

var (
	nameRE  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRE = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// DefBuckets are general-purpose latency buckets in seconds, matching the
// Prometheus client defaults.
var DefBuckets = []float64{.005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10}

// LinearBuckets returns count bucket upper bounds start, start+width, …
func LinearBuckets(start, width float64, count int) []float64 {
	if count < 1 || width <= 0 {
		panic(fmt.Sprintf("metrics: LinearBuckets(%v, %v, %d): need count ≥ 1 and width > 0", start, width, count))
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count bucket upper bounds start, start·factor, …
func ExponentialBuckets(start, factor float64, count int) []float64 {
	if count < 1 || start <= 0 || factor <= 1 {
		panic(fmt.Sprintf("metrics: ExponentialBuckets(%v, %v, %d): need count ≥ 1, start > 0, factor > 1", start, factor, count))
	}
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

// family is one registered metric family: name, metadata, a collector
// that appends the family's sample lines at scrape time, and a gatherer
// that appends typed Samples for in-process consumers.
type family struct {
	name, help, typ string
	collect         func(b *lineWriter)
	gather          func(out []Sample) []Sample
}

// Registry holds metric families and renders them. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu     sync.Mutex
	byName map[string]*family
	fams   []*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds a family, panicking on invalid or duplicate names —
// metric names are source-code constants, so this is a programmer error.
func (r *Registry) register(name, help, typ string, collect func(*lineWriter), gather func([]Sample) []Sample) {
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", name))
	}
	f := &family{name: name, help: help, typ: typ, collect: collect, gather: gather}
	r.byName[name] = f
	r.fams = append(r.fams, f)
}

// families returns the registered families sorted by name.
func (r *Registry) families() []*family {
	r.mu.Lock()
	fams := append([]*family(nil), r.fams...)
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func checkLabels(name string, labels []string) {
	if len(labels) == 0 {
		panic(fmt.Sprintf("metrics: vec %q needs at least one label", name))
	}
	for _, l := range labels {
		if !labelRE.MatchString(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %q", l, name))
		}
	}
}

// Counter -----------------------------------------------------------------

// Counter is a monotonically increasing integer counter. All methods are
// safe on a nil receiver (no-ops), so disabled instrumentation costs one
// predictable branch.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add increases the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", func(b *lineWriter) {
		b.sample(name, "", formatUint(c.Value()))
	}, func(out []Sample) []Sample {
		return append(out, Sample{Name: name, Kind: KindCounter, Value: float64(c.Value())})
	})
	return c
}

// Gauge -------------------------------------------------------------------

// Gauge is a float value that can go up and down. Safe on nil receivers.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d (CAS loop).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// NewGauge registers and returns a gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", func(b *lineWriter) {
		b.sample(name, "", formatFloat(g.Value()))
	}, func(out []Sample) []Sample {
		return append(out, Sample{Name: name, Kind: KindGauge, Value: g.Value()})
	})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed by fn at scrape
// time — for quantities that are views over live state (alive workers,
// heartbeat age) rather than stored values. fn must be safe to call from
// the scrape goroutine.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64) {
	if fn == nil {
		panic(fmt.Sprintf("metrics: nil GaugeFunc for %q", name))
	}
	r.register(name, help, "gauge", func(b *lineWriter) {
		b.sample(name, "", formatFloat(fn()))
	}, func(out []Sample) []Sample {
		return append(out, Sample{Name: name, Kind: KindGauge, Value: fn()})
	})
}

// Histogram ---------------------------------------------------------------

// Histogram counts observations into fixed buckets (cumulative "le" style
// at exposition). Safe on nil receivers.
type Histogram struct {
	upper   []float64 // sorted upper bounds, excluding +Inf
	counts  []atomic.Uint64
	sumBits atomic.Uint64
	count   atomic.Uint64
}

func newHistogram(name string, buckets []float64) *Histogram {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("metrics: histogram %q needs at least one bucket", name))
	}
	upper := append([]float64(nil), buckets...)
	for i := 1; i < len(upper); i++ {
		if upper[i] <= upper[i-1] {
			panic(fmt.Sprintf("metrics: histogram %q buckets not strictly increasing at %v", name, upper[i]))
		}
	}
	if math.IsInf(upper[len(upper)-1], +1) {
		upper = upper[:len(upper)-1] // +Inf is implicit
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(seconds float64) { h.Observe(seconds) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

func (h *Histogram) write(b *lineWriter, name, labels string) {
	cum := uint64(0)
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		b.sample(name+"_bucket", joinLabels(labels, `le="`+formatFloat(ub)+`"`), formatUint(cum))
	}
	// The +Inf bucket equals the total count by definition; use the count
	// counter so the pair stays consistent within one scrape line group.
	total := h.Count()
	b.sample(name+"_bucket", joinLabels(labels, `le="+Inf"`), formatUint(total))
	b.sample(name+"_sum", labels, formatFloat(h.Sum()))
	b.sample(name+"_count", labels, formatUint(total))
}

// NewHistogram registers and returns a histogram with the given bucket
// upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) NewHistogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(name, buckets)
	r.register(name, help, "histogram", func(b *lineWriter) {
		h.write(b, name, "")
	}, func(out []Sample) []Sample {
		snap := h.Snapshot()
		return append(out, Sample{Name: name, Kind: KindHistogram, Value: float64(snap.Count), Hist: &snap})
	})
	return h
}

// Labeled families ---------------------------------------------------------

// vec is the shared child store of CounterVec / GaugeVec: an insertion-
// ordered map from the joined label values to the child metric.
type vec[T any] struct {
	labels   []string
	mu       sync.Mutex
	children map[string]*T
	keys     []string            // insertion order; sorted at collect time
	vals     map[string][]string // key → the raw label values (for Gather)
}

func (v *vec[T]) with(name string, values []string, make func() *T) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("metrics: %q wants %d label values, got %d", name, len(v.labels), len(values)))
	}
	key := labelPairs(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.children[key]; ok {
		return c
	}
	c := make()
	v.children[key] = c
	v.keys = append(v.keys, key)
	if v.vals == nil {
		v.vals = map[string][]string{}
	}
	v.vals[key] = append([]string(nil), values...)
	return c
}

func (v *vec[T]) collect(b *lineWriter, write func(b *lineWriter, labels string, child *T)) {
	v.mu.Lock()
	keys := append([]string(nil), v.keys...)
	children := make([]*T, len(keys))
	sort.Strings(keys)
	for i, k := range keys {
		children[i] = v.children[k]
	}
	v.mu.Unlock()
	for i, k := range keys {
		write(b, k, children[i])
	}
}

// gatherChildren visits every child with its structured labels, sorted by
// rendered label key — the typed counterpart of collect.
func (v *vec[T]) gatherChildren(visit func(labels []Label, child *T)) {
	v.mu.Lock()
	keys := append([]string(nil), v.keys...)
	sort.Strings(keys)
	children := make([]*T, len(keys))
	values := make([][]string, len(keys))
	for i, k := range keys {
		children[i] = v.children[k]
		values[i] = v.vals[k]
	}
	v.mu.Unlock()
	for i := range keys {
		labels := make([]Label, len(v.labels))
		for j, l := range v.labels {
			labels[j] = Label{Name: l, Value: values[i][j]}
		}
		visit(labels, children[i])
	}
}

// labelPairs renders `l1="v1",l2="v2"` with Prometheus escaping.
func labelPairs(labels, values []string) string {
	out := ""
	for i, l := range labels {
		if i > 0 {
			out += ","
		}
		out += l + `="` + escapeLabelValue(values[i]) + `"`
	}
	return out
}

// CounterVec is a counter family partitioned by label values.
type CounterVec struct {
	name string
	vec  vec[Counter]
}

// NewCounterVec registers a labeled counter family.
func (r *Registry) NewCounterVec(name, help string, labels ...string) *CounterVec {
	checkLabels(name, labels)
	cv := &CounterVec{name: name, vec: vec[Counter]{labels: labels, children: make(map[string]*Counter)}}
	r.register(name, help, "counter", func(b *lineWriter) {
		cv.vec.collect(b, func(b *lineWriter, lbls string, c *Counter) {
			b.sample(name, lbls, formatUint(c.Value()))
		})
	}, func(out []Sample) []Sample {
		cv.vec.gatherChildren(func(labels []Label, c *Counter) {
			out = append(out, Sample{Name: name, Labels: labels, Kind: KindCounter, Value: float64(c.Value())})
		})
		return out
	})
	return cv
}

// With returns the child counter for the given label values, creating it
// on first use. Safe on a nil receiver (returns a nil, no-op child).
func (cv *CounterVec) With(values ...string) *Counter {
	if cv == nil {
		return nil
	}
	return cv.vec.with(cv.name, values, func() *Counter { return &Counter{} })
}

// GaugeVec is a gauge family partitioned by label values.
type GaugeVec struct {
	name string
	vec  vec[Gauge]
}

// NewGaugeVec registers a labeled gauge family.
func (r *Registry) NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	checkLabels(name, labels)
	gv := &GaugeVec{name: name, vec: vec[Gauge]{labels: labels, children: make(map[string]*Gauge)}}
	r.register(name, help, "gauge", func(b *lineWriter) {
		gv.vec.collect(b, func(b *lineWriter, lbls string, g *Gauge) {
			b.sample(name, lbls, formatFloat(g.Value()))
		})
	}, func(out []Sample) []Sample {
		gv.vec.gatherChildren(func(labels []Label, g *Gauge) {
			out = append(out, Sample{Name: name, Labels: labels, Kind: KindGauge, Value: g.Value()})
		})
		return out
	})
	return gv
}

// With returns the child gauge for the given label values, creating it on
// first use. Safe on a nil receiver (returns a nil, no-op child).
func (gv *GaugeVec) With(values ...string) *Gauge {
	if gv == nil {
		return nil
	}
	return gv.vec.with(gv.name, values, func() *Gauge { return &Gauge{} })
}
