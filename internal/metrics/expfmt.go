// Prometheus text exposition (format version 0.0.4): the rendering half
// of the registry. Families are emitted sorted by name, each with # HELP
// and # TYPE headers followed by its sample lines.
package metrics

import (
	"bufio"
	"io"
	"strconv"
	"strings"
)

// TextContentType is the Content-Type of the exposition format served on
// /metrics.
const TextContentType = "text/plain; version=0.0.4; charset=utf-8"

// WritePrometheus renders every registered family to w in the Prometheus
// text format. Families appear sorted by name; vec children sorted by
// label values. Safe to call concurrently with metric updates.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	lw := &lineWriter{w: bw}
	for _, f := range r.families() {
		lw.meta(f.name, f.help, f.typ)
		f.collect(lw)
		if lw.err != nil {
			return lw.err
		}
	}
	if lw.err != nil {
		return lw.err
	}
	return bw.Flush()
}

// lineWriter accumulates exposition lines, remembering the first write
// error so collectors can stay error-free.
type lineWriter struct {
	w   *bufio.Writer
	err error
}

func (lw *lineWriter) meta(name, help, typ string) {
	if lw.err != nil {
		return
	}
	if help != "" {
		_, lw.err = lw.w.WriteString("# HELP " + name + " " + escapeHelp(help) + "\n")
		if lw.err != nil {
			return
		}
	}
	_, lw.err = lw.w.WriteString("# TYPE " + name + " " + typ + "\n")
}

// sample writes one `name{labels} value` line; labels may be empty.
func (lw *lineWriter) sample(name, labels, value string) {
	if lw.err != nil {
		return
	}
	line := name
	if labels != "" {
		line += "{" + labels + "}"
	}
	_, lw.err = lw.w.WriteString(line + " " + value + "\n")
}

// joinLabels merges two comma-joined label-pair strings, either possibly
// empty.
func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	// strconv handles ±Inf and NaN with the spellings Prometheus expects
	// ("+Inf", "-Inf", "NaN").
	return strconv.FormatFloat(v, 'g', -1, 64)
}
