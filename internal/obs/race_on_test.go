//go:build race

package obs_test

// raceEnabled reports that the race detector instruments this build;
// timing budgets are not meaningful then.
const raceEnabled = true
