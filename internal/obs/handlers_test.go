package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"isgc/internal/metrics"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	reg := metrics.NewRegistry()
	c := reg.NewCounter("steps_total", "")
	g := reg.NewGauge("frac", "")
	s := NewStore(StoreConfig{Interval: time.Second, Retention: 16})
	s.AddSource("job/a", reg, map[string]string{"job": "a"})
	c.Add(4)
	g.Set(0.5)
	s.SampleNow()
	c.Add(4)
	g.Set(1.0)
	s.SampleNow()
	return s
}

// TestTimeseriesHandlerParams is the table-driven contract for the query
// API: good requests serve JSON 200, malformed window/step/agg serve a
// 400 with a JSON error body — never a text/plain shrug.
func TestTimeseriesHandlerParams(t *testing.T) {
	h := HandleTimeseries(newTestStore(t))
	cases := []struct {
		name       string
		url        string
		status     int
		wantInBody string
	}{
		{"catalog", "/api/timeseries", 200, `"steps_total"`},
		{"series", "/api/timeseries?name=frac", 200, `"points"`},
		{"series with window", "/api/timeseries?name=frac&window=30s", 200, `"points"`},
		{"bare-seconds window", "/api/timeseries?name=frac&window=30", 200, `"points"`},
		{"step and agg", "/api/timeseries?name=steps_total&window=1m&step=2s&agg=rate", 200, `"series"`},
		{"label match", "/api/timeseries?name=frac&label.job=a", 200, `"job": "a"`},
		{"label mismatch", "/api/timeseries?name=frac&label.job=zz", 200, `"interval_seconds"`},
		{"malformed window", "/api/timeseries?name=frac&window=bogus", 400, `"error"`},
		{"negative window", "/api/timeseries?name=frac&window=-30s", 400, `"error"`},
		{"malformed step", "/api/timeseries?name=frac&step=1x", 400, `"error"`},
		{"negative step", "/api/timeseries?name=frac&step=-5s", 400, `"error"`},
		{"trailing junk duration", "/api/timeseries?name=frac&window=30zz", 400, `"error"`},
		{"unknown agg", "/api/timeseries?name=frac&agg=median", 400, `"error"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodGet, tc.url, nil)
			rw := httptest.NewRecorder()
			h.ServeHTTP(rw, req)
			if rw.Code != tc.status {
				t.Fatalf("%s: status %d, want %d (body %s)", tc.url, rw.Code, tc.status, rw.Body.String())
			}
			if ct := rw.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("%s: content-type %q, want application/json", tc.url, ct)
			}
			if !strings.Contains(rw.Body.String(), tc.wantInBody) {
				t.Errorf("%s: body %q missing %q", tc.url, rw.Body.String(), tc.wantInBody)
			}
		})
	}

	// Method guard.
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodPost, "/api/timeseries", nil))
	if rw.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", rw.Code)
	}
}

func TestTimeseriesHandlerPointsShape(t *testing.T) {
	h := HandleTimeseries(newTestStore(t))
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/api/timeseries?name=steps_total", nil))
	var resp struct {
		IntervalSeconds float64 `json:"interval_seconds"`
		Series          []struct {
			Name   string            `json:"name"`
			Labels map[string]string `json:"labels"`
			Points [][2]float64      `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &resp); err != nil {
		t.Fatalf("decode: %v (%s)", err, rw.Body.String())
	}
	if resp.IntervalSeconds != 1 {
		t.Errorf("interval = %v, want 1", resp.IntervalSeconds)
	}
	if len(resp.Series) != 1 || len(resp.Series[0].Points) != 2 {
		t.Fatalf("series shape: %+v", resp.Series)
	}
	if resp.Series[0].Labels["job"] != "a" {
		t.Errorf("labels = %v", resp.Series[0].Labels)
	}
	if got := resp.Series[0].Points[1][1]; got != 8 {
		t.Errorf("last point value = %v, want 8", got)
	}
	if ts := resp.Series[0].Points[0][0]; ts < 1e12 {
		t.Errorf("timestamp %v does not look like unix millis", ts)
	}
}

func TestTimeseriesHandlerNilStore(t *testing.T) {
	h := HandleTimeseries(nil)
	rw := httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/api/timeseries", nil))
	if rw.Code != 200 {
		t.Fatalf("nil store catalog status = %d", rw.Code)
	}
}

func TestAlertsHandler(t *testing.T) {
	// Nil engine: empty but well-formed.
	rw := httptest.NewRecorder()
	HandleAlerts(nil).ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/api/alerts", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), `"alerts": []`) {
		t.Fatalf("nil engine: %d %s", rw.Code, rw.Body.String())
	}

	reg := metrics.NewRegistry()
	reg.NewGauge("frac", "").Set(0.1)
	store := NewStore(StoreConfig{Retention: 8})
	store.AddSource("job/a", reg, map[string]string{"job": "a"})
	store.SampleNow()
	ru := NewRules(RulesConfig{Store: store, Rules: []Rule{{
		Name: "floor", Series: "frac", Agg: AggLast,
		Window: time.Minute, Op: OpBelow, Bound: 0.9, For: time.Nanosecond,
	}}})
	ru.EvalNow()
	time.Sleep(time.Millisecond)
	store.SampleNow()
	ru.EvalNow()

	rw = httptest.NewRecorder()
	HandleAlerts(ru).ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/api/alerts", nil))
	body := rw.Body.String()
	for _, want := range []string{`"state": "firing"`, `"rule": "floor"`, `"job": "a"`, `"firing": 1`} {
		if !strings.Contains(body, want) {
			t.Errorf("alerts body missing %q: %s", want, body)
		}
	}
}

func TestProfilesHandler(t *testing.T) {
	// Nil profiler: list is empty, download 404s.
	rw := httptest.NewRecorder()
	HandleProfiles(nil).ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/profiles", nil))
	if rw.Code != 200 || !strings.Contains(rw.Body.String(), `"profiles": []`) {
		t.Fatalf("nil profiler: %d %s", rw.Code, rw.Body.String())
	}
	rw = httptest.NewRecorder()
	HandleProfiles(nil).ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/profiles?download=x.pprof", nil))
	if rw.Code != http.StatusNotFound {
		t.Errorf("nil profiler download status = %d, want 404", rw.Code)
	}

	p, err := NewProfiler(ProfilerConfig{Dir: t.TempDir(), CPUDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p.CaptureNow()
	h := HandleProfiles(p)

	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/profiles", nil))
	body := rw.Body.String()
	if !strings.Contains(body, `"kind": "heap"`) || !strings.Contains(body, `"kind": "cpu"`) {
		t.Fatalf("profiles list missing captures: %s", body)
	}
	var listing struct {
		Profiles []ProfileInfo `json:"profiles"`
	}
	if err := json.Unmarshal(rw.Body.Bytes(), &listing); err != nil {
		t.Fatal(err)
	}

	// Download round-trips a real capture.
	rw = httptest.NewRecorder()
	h.ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/profiles?download="+listing.Profiles[0].Name, nil))
	if rw.Code != 200 || rw.Body.Len() == 0 {
		t.Errorf("download: %d, %d bytes", rw.Code, rw.Body.Len())
	}

	// Traversal and junk names are rejected.
	for _, bad := range []string{"../../etc/passwd", "a/b.pprof", "x.txt"} {
		rw = httptest.NewRecorder()
		req := httptest.NewRequest(http.MethodGet, "/debug/profiles", nil)
		q := req.URL.Query()
		q.Set("download", bad)
		req.URL.RawQuery = q.Encode()
		h.ServeHTTP(rw, req)
		if rw.Code != http.StatusBadRequest && rw.Code != http.StatusNotFound {
			t.Errorf("download %q status = %d, want 400/404", bad, rw.Code)
		}
	}
}

func TestDashHandler(t *testing.T) {
	rw := httptest.NewRecorder()
	HandleDash(nil).ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/dash", nil))
	if rw.Code != 200 {
		t.Fatalf("dash status = %d", rw.Code)
	}
	if ct := rw.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content-type = %q", ct)
	}
	body := rw.Body.String()
	for _, want := range []string{
		"/api/timeseries", "/api/alerts",
		"c-steps", "c-gather", "c-frac", "c-fleet",
		"isgc_master_recovered_fraction", "prefers-color-scheme",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dash missing %q", want)
		}
	}

	// With a populated store the page bootstraps the job catalog, so the
	// served HTML itself names every known job.
	rw = httptest.NewRecorder()
	HandleDash(newTestStore(t)).ServeHTTP(rw, httptest.NewRequest(http.MethodGet, "/debug/dash", nil))
	if body := rw.Body.String(); !strings.Contains(body, `"jobs":["a"]`) {
		t.Errorf("dash bootstrap missing job catalog")
	}
}
