package obs

import (
	"encoding/json"
	"net/http"
	"strings"
)

// HandleDash serves the zero-dependency live dashboard: one HTML page
// whose inline script polls /api/timeseries, /api/alerts, and the
// control-plane /jobs route (tolerating its absence under a standalone
// master). No external assets, no build step — the page works wherever
// the admin server does. The store's current job catalog is rendered
// into the page as a bootstrap, which pins each job's palette slot in
// sorted order before the first poll (color follows the job, never the
// arrival order of async responses) and lets curl see the fleet's job
// ids without executing the script. A nil store bootstraps empty.
func HandleDash(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		jobs := s.LabelValues("job")
		if jobs == nil {
			jobs = []string{}
		}
		boot, err := json.Marshal(map[string]any{"jobs": jobs})
		if err != nil {
			boot = []byte(`{"jobs":[]}`)
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write([]byte(strings.Replace(dashHTML, bootstrapMarker, string(boot), 1)))
	})
}

// bootstrapMarker is replaced with the serve-time bootstrap JSON.
const bootstrapMarker = `{"jobs":[]} /*BOOTSTRAP*/`

// dashHTML is the whole dashboard. Design notes: the categorical palette
// is the three all-pairs-validated slots (blue, orange, aqua) assigned to
// jobs in fixed first-seen order and never cycled — a fourth job folds to
// muted gray; status colors (firing red, good green) are a separate
// reserved set and always ship with a text label; dark mode is its own
// stepped palette behind prefers-color-scheme, not an inversion.
const dashHTML = `<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>isgc dashboard</title>
<style>
:root {
  color-scheme: light;
  --page:      #f9f9f7;
  --surface-1: #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --grid:     #e1e0d9;
  --baseline: #c3c2b7;
  --border:   rgba(11,11,11,0.10);
  --series-1: #2a78d6;
  --series-2: #eb6834;
  --series-3: #1baf7a;
  --series-other: #898781;
  --status-good:     #0ca30c;
  --status-warning:  #fab219;
  --status-critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    color-scheme: dark;
    --page:      #0d0d0d;
    --surface-1: #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --grid:     #2c2c2a;
    --baseline: #383835;
    --border:   rgba(255,255,255,0.10);
    --series-1: #3987e5;
    --series-2: #d95926;
    --series-3: #199e70;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0; padding: 16px;
  background: var(--page); color: var(--text-primary);
  font: 13px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 16px; font-weight: 600; margin: 0 0 4px; }
.sub { color: var(--text-secondary); margin-bottom: 12px; }
#alerts { margin: 0 0 12px; }
.alert {
  display: flex; align-items: center; gap: 8px;
  background: var(--surface-1); border: 1px solid var(--border);
  border-left: 3px solid var(--status-critical);
  border-radius: 6px; padding: 8px 12px; margin-bottom: 6px;
}
.alert .icon { color: var(--status-critical); font-weight: 700; }
.alert .what { font-weight: 600; }
.alert .why  { color: var(--text-secondary); }
.allclear { color: var(--text-secondary); }
.allclear .icon { color: var(--status-good); font-weight: 700; }
.grid { display: grid; grid-template-columns: repeat(auto-fit, minmax(280px, 1fr)); gap: 12px; }
.panel {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px;
}
.panel h2 { font-size: 12px; font-weight: 600; margin: 0; color: var(--text-primary); }
.panel .note { font-size: 11px; color: var(--text-muted); margin-bottom: 6px; }
.panel canvas { width: 100%; height: 96px; display: block; }
.legend { display: flex; flex-wrap: wrap; gap: 10px; margin-top: 6px; font-size: 11px; color: var(--text-secondary); }
.legend .sw { display: inline-block; width: 10px; height: 3px; border-radius: 2px; vertical-align: middle; margin-right: 4px; }
table { width: 100%; border-collapse: collapse; margin-top: 12px; background: var(--surface-1);
        border: 1px solid var(--border); border-radius: 8px; overflow: hidden; }
th, td { text-align: left; padding: 6px 10px; font-variant-numeric: tabular-nums; }
th { font-size: 11px; font-weight: 600; color: var(--text-secondary); border-bottom: 1px solid var(--grid); }
td { border-bottom: 1px solid var(--grid); }
tr:last-child td { border-bottom: none; }
.chip { display: inline-block; width: 8px; height: 8px; border-radius: 2px; margin-right: 6px; vertical-align: baseline; }
.state-ok   { color: var(--status-good); }
.state-bad  { color: var(--status-critical); }
.state-dim  { color: var(--text-muted); }
#tip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-1); border: 1px solid var(--border); border-radius: 6px;
  padding: 6px 8px; font-size: 11px; color: var(--text-primary);
  box-shadow: 0 2px 8px rgba(0,0,0,0.15);
}
#tip .t { color: var(--text-muted); }
footer { margin-top: 12px; color: var(--text-muted); font-size: 11px; }
footer a { color: var(--text-secondary); }
</style>
</head>
<body>
<h1>isgc fleet dashboard</h1>
<div class="sub" id="sub">connecting&hellip;</div>
<div id="alerts"></div>
<div class="grid">
  <div class="panel"><h2>steps / sec</h2><div class="note">per job, rate over 5&thinsp;s</div>
    <canvas id="c-steps"></canvas><div class="legend" id="l-steps"></div></div>
  <div class="panel"><h2>gather latency (s)</h2><div class="note">solid p95 &middot; dashed p50</div>
    <canvas id="c-gather"></canvas><div class="legend" id="l-gather"></div></div>
  <div class="panel"><h2>recovered fraction</h2><div class="note">1.0 = full-gradient recovery</div>
    <canvas id="c-frac"></canvas><div class="legend" id="l-frac"></div></div>
  <div class="panel"><h2>fleet agents</h2><div class="note">busy vs idle</div>
    <canvas id="c-fleet"></canvas><div class="legend" id="l-fleet"></div></div>
</div>
<div id="jobs"></div>
<div id="tip"></div>
<footer>polls /api/timeseries every 2&thinsp;s &middot; <a href="/api/alerts">alerts</a> &middot; <a href="/metrics">metrics</a> &middot; <a href="/debug/profiles">profiles</a></footer>
<script>
"use strict";
const BOOTSTRAP = {"jobs":[]} /*BOOTSTRAP*/;
const SLOTS = ["--series-1", "--series-2", "--series-3"];
const jobSlots = new Map();   // job id -> slot index, fixed at first sight
(BOOTSTRAP.jobs || []).forEach(j => { if (!jobSlots.has(j)) jobSlots.set(j, jobSlots.size); });
function colorFor(job) {
  if (!jobSlots.has(job)) jobSlots.set(job, jobSlots.size);
  const i = jobSlots.get(job);
  const v = i < SLOTS.length ? SLOTS[i] : "--series-other";
  return getComputedStyle(document.documentElement).getPropertyValue(v).trim();
}
function cssVar(n) { return getComputedStyle(document.documentElement).getPropertyValue(n).trim(); }

async function getJSON(url) {
  const r = await fetch(url);
  if (!r.ok) throw new Error(url + ": " + r.status);
  return r.json();
}

// drawChart renders 2px polylines on a shared y-scale with a hairline
// baseline and midline. series: [{label, color, dash, points:[[t,v],…]}].
const chartState = new Map();  // canvas id -> {series, ymin, ymax, t0, t1}
function drawChart(id, series, opts) {
  opts = opts || {};
  const cv = document.getElementById(id);
  const dpr = window.devicePixelRatio || 1;
  const W = cv.clientWidth, H = cv.clientHeight;
  if (cv.width !== W * dpr) { cv.width = W * dpr; cv.height = H * dpr; }
  const ctx = cv.getContext("2d");
  ctx.setTransform(dpr, 0, 0, dpr, 0, 0);
  ctx.clearRect(0, 0, W, H);
  let t0 = Infinity, t1 = -Infinity, vmin = Infinity, vmax = -Infinity;
  for (const s of series) for (const [t, v] of s.points) {
    if (t < t0) t0 = t; if (t > t1) t1 = t;
    if (v < vmin) vmin = v; if (v > vmax) vmax = v;
  }
  if (!isFinite(t0) || t1 <= t0) { chartState.delete(id); return; }
  if (opts.ymin !== undefined) vmin = Math.min(opts.ymin, vmin);
  if (opts.ymax !== undefined) vmax = Math.max(opts.ymax, vmax);
  if (vmax === vmin) vmax = vmin + 1;
  const pad = 4;
  const x = t => pad + (W - 2 * pad) * (t - t0) / (t1 - t0);
  const y = v => H - pad - (H - 2 * pad) * (v - vmin) / (vmax - vmin);
  ctx.strokeStyle = cssVar("--grid");
  ctx.lineWidth = 1;
  ctx.beginPath(); ctx.moveTo(0, y(vmin) + 0.5); ctx.lineTo(W, y(vmin) + 0.5); ctx.stroke();
  ctx.beginPath(); ctx.setLineDash([2, 4]);
  ctx.moveTo(0, y((vmin + vmax) / 2) + 0.5); ctx.lineTo(W, y((vmin + vmax) / 2) + 0.5);
  ctx.stroke(); ctx.setLineDash([]);
  for (const s of series) {
    if (!s.points.length) continue;
    ctx.strokeStyle = s.color;
    ctx.lineWidth = 2;
    ctx.setLineDash(s.dash ? [4, 3] : []);
    ctx.beginPath();
    s.points.forEach(([t, v], i) => { i ? ctx.lineTo(x(t), y(v)) : ctx.moveTo(x(t), y(v)); });
    ctx.stroke();
  }
  ctx.setLineDash([]);
  // y-extent labels in muted ink (text wears text tokens, not series color)
  ctx.fillStyle = cssVar("--text-muted");
  ctx.font = "10px system-ui, sans-serif";
  ctx.fillText(fmt(vmax), pad, 10);
  chartState.set(id, { series, t0, t1, vmin, vmax, W, H, pad });
}
function fmt(v) {
  if (!isFinite(v)) return "";
  const a = Math.abs(v);
  if (a >= 100) return v.toFixed(0);
  if (a >= 1) return v.toFixed(1);
  return v.toFixed(3);
}
function legend(id, entries) {
  const el = document.getElementById(id);
  // a single series needs no legend box — the title names it
  el.innerHTML = entries.length < 2 ? "" : entries.map(e =>
    '<span><span class="sw" style="background:' + e.color + '"></span>' + esc(e.label) + "</span>").join("");
}
function esc(s) {
  return String(s).replace(/[&<>"]/g, c => ({ "&": "&amp;", "<": "&lt;", ">": "&gt;", '"': "&quot;" }[c]));
}

// hover layer: nearest-point tooltip per chart
const tip = document.getElementById("tip");
document.querySelectorAll("canvas").forEach(cv => {
  cv.addEventListener("mousemove", ev => {
    const st = chartState.get(cv.id);
    if (!st) { tip.style.display = "none"; return; }
    const rect = cv.getBoundingClientRect();
    const mx = ev.clientX - rect.left;
    const tAt = st.t0 + (mx - st.pad) / (st.W - 2 * st.pad) * (st.t1 - st.t0);
    let best = null;
    for (const s of st.series) for (const [t, v] of s.points) {
      const d = Math.abs(t - tAt);
      if (!best || d < best.d) best = { d, t, v, label: s.label };
    }
    if (!best) { tip.style.display = "none"; return; }
    tip.innerHTML = "<b>" + esc(best.label) + "</b> " + fmt(best.v) +
      ' <span class="t">' + new Date(best.t).toLocaleTimeString() + "</span>";
    tip.style.display = "block";
    tip.style.left = (ev.clientX + 12) + "px";
    tip.style.top = (ev.clientY + 12) + "px";
  });
  cv.addEventListener("mouseleave", () => { tip.style.display = "none"; });
});

async function series(name, params) {
  const q = new URLSearchParams(Object.assign({ name, window: "5m" }, params || {}));
  const data = await getJSON("/api/timeseries?" + q);
  return data.series || [];
}
function jobOf(s) { return (s.labels && s.labels.job) || "master"; }

async function refreshCharts() {
  const [steps, p95, p50, frac, agents, idle] = await Promise.all([
    series("isgc_master_steps_total", { agg: "rate", step: "5s" }),
    series("isgc_master_gather_latency_seconds_p95"),
    series("isgc_master_gather_latency_seconds_p50"),
    series("isgc_master_recovered_fraction"),
    series("isgc_plane_fleet_agents"),
    series("isgc_plane_fleet_idle"),
  ]);
  // fix slot order before drawing: color follows the job, never its rank
  for (const s of steps.concat(p95, frac)) colorFor(jobOf(s));

  drawChart("c-steps", steps.map(s => ({ label: jobOf(s), color: colorFor(jobOf(s)), points: s.points })), { ymin: 0 });
  legend("l-steps", steps.map(s => ({ label: jobOf(s), color: colorFor(jobOf(s)) })));

  const gather = p95.map(s => ({ label: jobOf(s) + " p95", color: colorFor(jobOf(s)), points: s.points }))
    .concat(p50.map(s => ({ label: jobOf(s) + " p50", color: colorFor(jobOf(s)), dash: true, points: s.points })));
  drawChart("c-gather", gather, { ymin: 0 });
  legend("l-gather", p95.map(s => ({ label: jobOf(s), color: colorFor(jobOf(s)) })));

  drawChart("c-frac", frac.map(s => ({ label: jobOf(s), color: colorFor(jobOf(s)), points: s.points })), { ymin: 0, ymax: 1 });
  legend("l-frac", frac.map(s => ({ label: jobOf(s), color: colorFor(jobOf(s)) })));

  const idlePts = idle.length ? idle[0].points : [];
  const idleAt = new Map(idlePts.map(p => [p[0], p[1]]));
  const busy = agents.length ? agents[0].points.map(p => [p[0], p[1] - (idleAt.get(p[0]) || 0)]) : [];
  drawChart("c-fleet", [
    { label: "busy", color: cssVar("--series-1"), points: busy },
    { label: "idle", color: cssVar("--series-2"), points: idlePts },
  ], { ymin: 0 });
  legend("l-fleet", [
    { label: "busy", color: cssVar("--series-1") },
    { label: "idle", color: cssVar("--series-2") },
  ]);
}

async function refreshAlerts() {
  const el = document.getElementById("alerts");
  try {
    const data = await getJSON("/api/alerts");
    const firing = (data.alerts || []).filter(a => a.state === "firing");
    if (!firing.length) {
      el.innerHTML = '<div class="allclear"><span class="icon">&#10003;</span> no firing alerts' +
        (data.summary && data.summary.rules ? " &middot; " + data.summary.rules + " rules active" : "") + "</div>";
      return;
    }
    el.innerHTML = firing.map(a =>
      '<div class="alert"><span class="icon">&#9888; FIRING</span><span class="what">' + esc(a.rule) +
      "</span><span class=\"why\">" + esc(a.series) +
      (a.labels && a.labels.job ? " &middot; job " + esc(a.labels.job) : "") +
      " &middot; value " + fmt(a.value) + " vs bound " + fmt(a.bound) + "</span></div>").join("");
  } catch (e) {
    el.innerHTML = "";
  }
}

async function refreshJobs() {
  const el = document.getElementById("jobs");
  try {
    const data = await getJSON("/jobs");
    const jobs = data.jobs || [];
    if (!jobs.length) { el.innerHTML = ""; return; }
    el.innerHTML = "<table><tr><th>job</th><th>state</th><th>step</th><th>workers</th><th>replacements</th></tr>" +
      jobs.map(j => {
        const cls = j.state === "running" ? "state-ok" : (j.state === "failed" ? "state-bad" : "state-dim");
        return "<tr><td><span class=\"chip\" style=\"background:" + colorFor(j.id) + "\"></span>" + esc(j.id) +
          (j.name ? ' <span class="state-dim">' + esc(j.name) + "</span>" : "") +
          '</td><td class="' + cls + '">' + esc(j.state) + "</td><td>" + (j.step ?? "") +
          "</td><td>" + (Array.isArray(j.workers) ? j.workers.length : (j.n ?? "")) +
          "</td><td>" + (j.replacements ?? 0) + "</td></tr>";
      }).join("") + "</table>";
  } catch (e) {
    el.innerHTML = "";  // standalone master: no control-plane jobs route
  }
}

async function tick() {
  try {
    await Promise.all([refreshCharts(), refreshAlerts(), refreshJobs()]);
    document.getElementById("sub").textContent =
      "live · updated " + new Date().toLocaleTimeString();
  } catch (e) {
    document.getElementById("sub").textContent = "disconnected: " + e.message;
  }
  setTimeout(tick, 2000);
}
tick();
</script>
</body>
</html>
`
