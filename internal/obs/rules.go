package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"isgc/internal/events"
)

// Op compares an observed value against a rule bound.
type Op string

const (
	OpAbove Op = "above" // fires when value > Bound
	OpBelow Op = "below" // fires when value < Bound
)

// Rule is one SLO condition evaluated per matching series on every rules
// tick. Two shapes share the struct:
//
//   - Threshold (Budget == 0): the windowed aggregate of Series breaches
//     Bound per Op.
//   - Burn rate (Budget > 0): the windowed aggregate — read as an error
//     fraction, optionally via Invert — consumes error budget at ≥ Factor
//     times the sustainable rate over BOTH the short window (Window) and
//     the long window (LongWindow), the classic two-window guard against
//     paging on noise.
//
// A rule stays pending until the breach has held For consecutive ticks'
// worth of time, and a firing rule resolves only after the condition has
// been healthy for the same hold — symmetric hysteresis, so one breach
// emits exactly one firing event and one resolved event, never a flap
// per tick.
type Rule struct {
	// Name identifies the rule in alerts, events, and the dashboard.
	Name string
	// Series is the time-series name to evaluate (e.g.
	// "isgc_master_recovered_fraction").
	Series string
	// Match restricts evaluation to series carrying these labels; each
	// distinct matching series alerts independently (per-job alerts from
	// one rule).
	Match map[string]string
	// Agg folds the window into the evaluated value (default avg; use
	// AggRate for counters).
	Agg Agg
	// Window is the evaluation window (default 30s).
	Window time.Duration
	// Op / Bound define the breach for threshold rules, and the direction
	// of "error" for burn-rate rules.
	Op    Op
	Bound float64
	// For is how long the condition must hold before firing, and how long
	// it must clear before resolving (default one window).
	For time.Duration
	// Severity is attached to alerts and events ("warn" default, "error"
	// escalates the event level).
	Severity string

	// Burn-rate extension.
	// Budget is the allowed error fraction (e.g. 0.05 for a 95% SLO);
	// zero means this is a plain threshold rule.
	Budget float64
	// Factor is the burn multiple that pages (default 2).
	Factor float64
	// LongWindow is the confirmation window (default 6×Window).
	LongWindow time.Duration
	// Invert maps the observed value v into an error fraction as 1−v —
	// for "fraction good" gauges like recovered_fraction.
	Invert bool
}

func (r Rule) window() time.Duration {
	if r.Window > 0 {
		return r.Window
	}
	return 30 * time.Second
}

func (r Rule) hold() time.Duration {
	if r.For > 0 {
		return r.For
	}
	return r.window()
}

func (r Rule) longWindow() time.Duration {
	if r.LongWindow > 0 {
		return r.LongWindow
	}
	return 6 * r.window()
}

func (r Rule) factor() float64 {
	if r.Factor > 0 {
		return r.Factor
	}
	return 2
}

func (r Rule) severity() string {
	if r.Severity != "" {
		return r.Severity
	}
	return "warn"
}

// AlertState is the lifecycle position of one (rule, series) pair.
type AlertState string

const (
	StateOK      AlertState = "ok"
	StatePending AlertState = "pending" // breaching, hold not yet met
	StateFiring  AlertState = "firing"
)

// Alert is the externally visible state of one (rule, series) pair.
type Alert struct {
	Rule     string            `json:"rule"`
	Series   string            `json:"series"`
	Labels   map[string]string `json:"labels,omitempty"`
	State    AlertState        `json:"state"`
	Severity string            `json:"severity"`
	Value    float64           `json:"value"`
	Bound    float64           `json:"bound"`
	// Since is when the current state was entered.
	Since time.Time `json:"since"`
	// FiredAt is when the alert last transitioned to firing (zero if it
	// never has).
	FiredAt time.Time `json:"fired_at,omitzero"`
}

// alertTrack is the internal state machine for one (rule, series) pair.
type alertTrack struct {
	labels   map[string]string
	state    AlertState
	since    time.Time
	firedAt  time.Time
	breachAt time.Time // first tick of the current contiguous breach
	okAt     time.Time // first tick of the current contiguous recovery
	value    float64
}

// RulesConfig configures a rule engine.
type RulesConfig struct {
	Store *Store
	Rules []Rule
	// Events receives alert lifecycle events (type "slo_firing" /
	// "slo_resolved"); nil discards.
	Events *events.Log
	// Interval is the evaluation period for Start (0 → the store's
	// sampling interval, or 1s without a store).
	Interval time.Duration
}

// Rules evaluates SLO rules against a Store and tracks alert lifecycles.
// All methods are safe on nil.
type Rules struct {
	store    *Store
	rules    []Rule
	ev       *events.Log
	interval time.Duration

	mu     sync.Mutex
	tracks map[string]*alertTrack // rule name + series key → track

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewRules builds a rule engine; nothing evaluates until Start (or
// EvalNow). Returns nil when there are no rules, which every downstream
// consumer tolerates.
func NewRules(cfg RulesConfig) *Rules {
	if len(cfg.Rules) == 0 {
		return nil
	}
	iv := cfg.Interval
	if iv <= 0 {
		iv = cfg.Store.Interval()
	}
	if iv <= 0 {
		iv = time.Second
	}
	return &Rules{
		store:    cfg.Store,
		rules:    cfg.Rules,
		ev:       cfg.Events,
		interval: iv,
		tracks:   make(map[string]*alertTrack),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the background evaluator. Safe on nil; idempotent.
func (ru *Rules) Start() {
	if ru == nil {
		return
	}
	ru.startOnce.Do(func() {
		go func() {
			defer close(ru.done)
			t := time.NewTicker(ru.interval)
			defer t.Stop()
			for {
				select {
				case <-ru.stop:
					return
				case <-t.C:
					ru.EvalNow()
				}
			}
		}()
	})
}

// Stop halts the evaluator and waits for it. Safe on nil and without
// Start.
func (ru *Rules) Stop() {
	if ru == nil {
		return
	}
	ru.stopOnce.Do(func() { close(ru.stop) })
	ru.startOnce.Do(func() { close(ru.done) })
	<-ru.done
}

// breached reports whether a threshold rule's condition holds for value
// v (burn-rate breaches are decided by EvalNow's two-window check).
func (r Rule) breached(v float64) bool {
	switch r.Op {
	case OpBelow:
		return v < r.Bound
	default:
		return v > r.Bound
	}
}

// errFraction maps an observed value to an error fraction for burn-rate
// rules.
func (r Rule) errFraction(v float64) float64 {
	if r.Invert {
		v = 1 - v
	}
	if v < 0 {
		v = 0
	}
	return v
}

// EvalNow runs one synchronous evaluation pass. Safe on nil.
func (ru *Rules) EvalNow() {
	if ru == nil {
		return
	}
	now := time.Now()
	type obs struct {
		rule   Rule
		key    string
		labels map[string]string
		value  float64
		breach bool
	}
	var observed []obs
	for _, r := range ru.rules {
		agg := r.Agg
		if agg == "" {
			agg = AggAvg
		}
		if r.Budget > 0 {
			short := ru.store.WindowStat(r.Series, r.Match, r.window(), agg)
			long := ru.store.WindowStat(r.Series, r.Match, r.longWindow(), agg)
			longBy := make(map[string]SeriesStat, len(long))
			for _, st := range long {
				longBy[statKey(st.Labels)] = st
			}
			for _, st := range short {
				lf, ok := longBy[statKey(st.Labels)]
				if !ok {
					continue
				}
				burnShort := r.errFraction(st.Value) / r.Budget
				burnLong := r.errFraction(lf.Value) / r.Budget
				burn := burnShort
				if burnLong < burn {
					burn = burnLong
				}
				observed = append(observed, obs{
					rule: r, key: r.Name + "|" + statKey(st.Labels),
					labels: st.Labels, value: burn,
					breach: burnShort >= r.factor() && burnLong >= r.factor(),
				})
			}
			continue
		}
		for _, st := range ru.store.WindowStat(r.Series, r.Match, r.window(), agg) {
			observed = append(observed, obs{
				rule: r, key: r.Name + "|" + statKey(st.Labels),
				labels: st.Labels, value: st.Value,
				breach: r.breached(st.Value),
			})
		}
	}

	type transition struct {
		rule   Rule
		labels map[string]string
		value  float64
		fired  bool // else resolved
	}
	var fire []transition
	ru.mu.Lock()
	seen := make(map[string]bool, len(observed))
	for _, o := range observed {
		seen[o.key] = true
		tr := ru.tracks[o.key]
		if tr == nil {
			tr = &alertTrack{labels: o.labels, state: StateOK, since: now}
			ru.tracks[o.key] = tr
		}
		tr.value = o.value
		if o.breach {
			tr.okAt = time.Time{}
			if tr.breachAt.IsZero() {
				tr.breachAt = now
			}
			switch tr.state {
			case StateOK:
				tr.state = StatePending
				tr.since = now
			case StatePending:
				if now.Sub(tr.breachAt) >= o.rule.hold() {
					tr.state = StateFiring
					tr.since = now
					tr.firedAt = now
					fire = append(fire, transition{o.rule, o.labels, o.value, true})
				}
			}
			continue
		}
		tr.breachAt = time.Time{}
		switch tr.state {
		case StatePending:
			tr.state = StateOK
			tr.since = now
			tr.okAt = time.Time{}
		case StateFiring:
			if tr.okAt.IsZero() {
				tr.okAt = now
			}
			if now.Sub(tr.okAt) >= o.rule.hold() {
				tr.state = StateOK
				tr.since = now
				tr.okAt = time.Time{}
				fire = append(fire, transition{o.rule, o.labels, o.value, false})
			}
		}
	}
	// Series that vanished (job finished, source removed): resolve firing
	// alerts so nothing stays stuck red forever.
	for key, tr := range ru.tracks {
		if seen[key] {
			continue
		}
		if tr.state == StateFiring {
			r := ru.ruleOf(key)
			tr.state = StateOK
			tr.since = now
			fire = append(fire, transition{r, tr.labels, tr.value, false})
		} else {
			delete(ru.tracks, key)
		}
	}
	ru.mu.Unlock()

	for _, t := range fire {
		fields := events.Fields{
			"rule":   t.rule.Name,
			"series": t.rule.Series,
			"value":  t.value,
			"bound":  t.rule.Bound,
		}
		for k, v := range t.labels {
			fields[k] = v
		}
		if t.fired {
			msg := fmt.Sprintf("SLO breach: %s (%s %s %g, got %g)",
				t.rule.Name, t.rule.Series, t.rule.Op, t.rule.Bound, t.value)
			if t.rule.severity() == "error" {
				ru.ev.Error("slo_firing", msg, events.NoStep, events.NoWorker, fields)
			} else {
				ru.ev.Warn("slo_firing", msg, events.NoStep, events.NoWorker, fields)
			}
		} else {
			ru.ev.Info("slo_resolved",
				fmt.Sprintf("SLO recovered: %s (%s back within %g)",
					t.rule.Name, t.rule.Series, t.rule.Bound),
				events.NoStep, events.NoWorker, fields)
		}
	}
}

func (ru *Rules) ruleOf(trackKey string) Rule {
	name, _, _ := strings.Cut(trackKey, "|")
	for _, r := range ru.rules {
		if r.Name == name {
			return r
		}
	}
	return Rule{Name: name}
}

func statKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(labels[k])
	}
	return b.String()
}

// Alerts returns the current state of every tracked (rule, series) pair,
// firing first, then pending, then ok, each group sorted by rule name.
// Safe on nil (returns nil).
func (ru *Rules) Alerts() []Alert {
	if ru == nil {
		return nil
	}
	ru.mu.Lock()
	out := make([]Alert, 0, len(ru.tracks))
	for key, tr := range ru.tracks {
		r := ru.ruleOf(key)
		out = append(out, Alert{
			Rule:     r.Name,
			Series:   r.Series,
			Labels:   tr.labels,
			State:    tr.state,
			Severity: r.severity(),
			Value:    tr.value,
			Bound:    r.Bound,
			Since:    tr.since,
			FiredAt:  tr.firedAt,
		})
	}
	ru.mu.Unlock()
	rank := func(s AlertState) int {
		switch s {
		case StateFiring:
			return 0
		case StatePending:
			return 1
		}
		return 2
	}
	sort.Slice(out, func(i, j int) bool {
		if ri, rj := rank(out[i].State), rank(out[j].State); ri != rj {
			return ri < rj
		}
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return statKey(out[i].Labels) < statKey(out[j].Labels)
	})
	return out
}

// Firing returns how many alerts are currently firing. Safe on nil.
func (ru *Rules) Firing() int {
	if ru == nil {
		return 0
	}
	ru.mu.Lock()
	defer ru.mu.Unlock()
	n := 0
	for _, tr := range ru.tracks {
		if tr.state == StateFiring {
			n++
		}
	}
	return n
}

// Summary is the compact health-endpoint view of the rule engine.
type Summary struct {
	Rules   int `json:"rules"`
	Firing  int `json:"firing"`
	Pending int `json:"pending"`
}

// Summarize returns alert counts for /healthz. Safe on nil (zero value).
func (ru *Rules) Summarize() Summary {
	if ru == nil {
		return Summary{}
	}
	ru.mu.Lock()
	defer ru.mu.Unlock()
	s := Summary{Rules: len(ru.rules)}
	for _, tr := range ru.tracks {
		switch tr.state {
		case StateFiring:
			s.Firing++
		case StatePending:
			s.Pending++
		}
	}
	return s
}
