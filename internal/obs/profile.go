package obs

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"
)

// ProfilerConfig configures continuous profiling.
type ProfilerConfig struct {
	// Dir is where profiles are written; empty disables profiling
	// (NewProfiler returns nil).
	Dir string
	// Interval between capture rounds (0 → 60s).
	Interval time.Duration
	// CPUDuration bounds each CPU capture (0 → 5s; clamped below
	// Interval).
	CPUDuration time.Duration
	// Keep bounds how many files of each kind are retained; older
	// captures are pruned (0 → 20).
	Keep int
}

// Profiler periodically captures CPU and heap pprof profiles into a
// retention-pruned directory, so a straggler investigation can reach for
// the profile covering the incident instead of reproducing it. All
// methods are safe on nil.
type Profiler struct {
	dir      string
	interval time.Duration
	cpuDur   time.Duration
	keep     int

	mu       sync.Mutex
	captures uint64
	lastErr  error

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewProfiler builds a profiler, creating the directory. Returns nil when
// cfg.Dir is empty; errors only on directory creation.
func NewProfiler(cfg ProfilerConfig) (*Profiler, error) {
	if cfg.Dir == "" {
		return nil, nil
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("profile dir: %w", err)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 60 * time.Second
	}
	if cfg.CPUDuration <= 0 {
		cfg.CPUDuration = 5 * time.Second
	}
	if cfg.CPUDuration >= cfg.Interval {
		cfg.CPUDuration = cfg.Interval / 2
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 20
	}
	return &Profiler{
		dir:      cfg.Dir,
		interval: cfg.Interval,
		cpuDur:   cfg.CPUDuration,
		keep:     cfg.Keep,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}, nil
}

// Dir returns the capture directory ("" on nil).
func (p *Profiler) Dir() string {
	if p == nil {
		return ""
	}
	return p.dir
}

// Start launches the capture loop. Safe on nil; idempotent.
func (p *Profiler) Start() {
	if p == nil {
		return
	}
	p.startOnce.Do(func() {
		go func() {
			defer close(p.done)
			t := time.NewTicker(p.interval)
			defer t.Stop()
			for {
				select {
				case <-p.stop:
					return
				case <-t.C:
					p.CaptureNow()
				}
			}
		}()
	})
}

// Stop halts the loop and waits for any in-flight capture. Safe on nil
// and without Start.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.stopOnce.Do(func() { close(p.stop) })
	p.startOnce.Do(func() { close(p.done) })
	<-p.done
}

// CaptureNow runs one capture round synchronously: a CPU profile of
// CPUDuration (skipped if another CPU profile is already running — e.g.
// a live /debug/pprof/profile request) followed by a heap profile, then
// retention pruning. Safe on nil.
func (p *Profiler) CaptureNow() {
	if p == nil {
		return
	}
	stamp := time.Now().UTC().Format("20060102T150405")
	p.captureCPU(stamp)
	p.captureHeap(stamp)
	p.prune()
}

func (p *Profiler) captureCPU(stamp string) {
	path := filepath.Join(p.dir, "cpu-"+stamp+".pprof")
	f, err := os.Create(path)
	if err != nil {
		p.fail(err)
		return
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		// Another CPU profile is in flight; not a fault, just skip.
		f.Close()
		os.Remove(path)
		return
	}
	select {
	case <-p.stop:
	case <-time.After(p.cpuDur):
	}
	pprof.StopCPUProfile()
	if err := f.Close(); err != nil {
		p.fail(err)
		return
	}
	p.ok()
}

func (p *Profiler) captureHeap(stamp string) {
	path := filepath.Join(p.dir, "heap-"+stamp+".pprof")
	f, err := os.Create(path)
	if err != nil {
		p.fail(err)
		return
	}
	err = pprof.Lookup("heap").WriteTo(f, 0)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		p.fail(err)
		return
	}
	p.ok()
}

func (p *Profiler) fail(err error) {
	p.mu.Lock()
	p.lastErr = err
	p.mu.Unlock()
}

func (p *Profiler) ok() {
	p.mu.Lock()
	p.captures++
	p.lastErr = nil
	p.mu.Unlock()
}

// prune deletes the oldest captures of each kind past the retention
// bound. Filenames embed a sortable UTC stamp, so lexical order is
// chronological.
func (p *Profiler) prune() {
	for _, prefix := range []string{"cpu-", "heap-"} {
		names, err := filepath.Glob(filepath.Join(p.dir, prefix+"*.pprof"))
		if err != nil || len(names) <= p.keep {
			continue
		}
		sort.Strings(names)
		for _, n := range names[:len(names)-p.keep] {
			os.Remove(n)
		}
	}
}

// ProfileInfo describes one retained capture.
type ProfileInfo struct {
	Name string    `json:"name"`
	Kind string    `json:"kind"` // "cpu" or "heap"
	Size int64     `json:"size"`
	Time time.Time `json:"time"`
}

// List returns the retained captures, newest first. Safe on nil.
func (p *Profiler) List() []ProfileInfo {
	if p == nil {
		return nil
	}
	names, err := filepath.Glob(filepath.Join(p.dir, "*.pprof"))
	if err != nil {
		return nil
	}
	out := make([]ProfileInfo, 0, len(names))
	for _, n := range names {
		fi, err := os.Stat(n)
		if err != nil {
			continue
		}
		base := filepath.Base(n)
		kind, _, _ := strings.Cut(base, "-")
		out = append(out, ProfileInfo{
			Name: base,
			Kind: kind,
			Size: fi.Size(),
			Time: fi.ModTime(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time.After(out[j].Time) })
	return out
}

// Captures returns how many successful captures have run, and the most
// recent error if the last capture failed. Safe on nil.
func (p *Profiler) Captures() (uint64, error) {
	if p == nil {
		return 0, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.captures, p.lastErr
}
