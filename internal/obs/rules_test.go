package obs

import (
	"testing"
	"time"

	"isgc/internal/events"
	"isgc/internal/metrics"
)

// countEvents tallies events of a type in the log's ring.
func countEvents(ev *events.Log, typ string) int {
	n := 0
	for _, e := range ev.Snapshot() {
		if e.Type == typ {
			n++
		}
	}
	return n
}

// TestRulesFireOnceThenResolveOnce drives a recovered-fraction floor
// through breach → sustained breach → recovery and asserts exactly one
// firing and one resolved event — the anti-flap contract.
func TestRulesFireOnceThenResolveOnce(t *testing.T) {
	reg := metrics.NewRegistry()
	frac := reg.NewGauge("isgc_master_recovered_fraction", "")
	store := NewStore(StoreConfig{Retention: 64})
	store.AddSource("job/a", reg, map[string]string{"job": "a"})
	ev := events.New(events.Config{})
	ru := NewRules(RulesConfig{
		Store:  store,
		Events: ev,
		Rules: []Rule{{
			Name:   "recovered-fraction-floor",
			Series: "isgc_master_recovered_fraction",
			Agg:    AggLast,
			Window: time.Minute,
			Op:     OpBelow,
			Bound:  0.9,
			For:    time.Millisecond,
		}},
	})

	// Healthy: stays ok.
	frac.Set(1.0)
	store.SampleNow()
	ru.EvalNow()
	if got := ru.Alerts(); len(got) != 1 || got[0].State != StateOK {
		t.Fatalf("healthy alerts = %+v, want one ok", got)
	}

	// Breach: first eval goes pending, then fires after the hold — and
	// repeated breaching evals must NOT fire again.
	frac.Set(0.5)
	store.SampleNow()
	ru.EvalNow()
	if got := ru.Alerts(); got[0].State != StatePending {
		t.Fatalf("first breach state = %v, want pending", got[0].State)
	}
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 5; i++ {
		store.SampleNow()
		ru.EvalNow()
	}
	if got := ru.Alerts(); got[0].State != StateFiring {
		t.Fatalf("sustained breach state = %v, want firing", got[0].State)
	}
	if n := countEvents(ev, "slo_firing"); n != 1 {
		t.Fatalf("firing events = %d, want exactly 1", n)
	}
	if ru.Firing() != 1 {
		t.Errorf("Firing() = %d, want 1", ru.Firing())
	}
	sum := ru.Summarize()
	if sum.Firing != 1 || sum.Rules != 1 {
		t.Errorf("Summarize = %+v", sum)
	}

	// Recovery: holds for the same duration before resolving, exactly once.
	frac.Set(1.0)
	store.SampleNow()
	ru.EvalNow()
	if got := ru.Alerts(); got[0].State != StateFiring {
		t.Fatalf("state flipped to %v before the recovery hold", got[0].State)
	}
	time.Sleep(2 * time.Millisecond)
	for i := 0; i < 5; i++ {
		store.SampleNow()
		ru.EvalNow()
	}
	if got := ru.Alerts(); got[0].State != StateOK {
		t.Fatalf("recovered state = %v, want ok", got[0].State)
	}
	if n := countEvents(ev, "slo_resolved"); n != 1 {
		t.Fatalf("resolved events = %d, want exactly 1", n)
	}
	if n := countEvents(ev, "slo_firing"); n != 1 {
		t.Fatalf("firing events after recovery = %d, want still 1", n)
	}
}

// TestRulesBriefBlipNeverFires: a single breaching eval shorter than the
// hold goes pending and returns to ok without any event.
func TestRulesBriefBlipNeverFires(t *testing.T) {
	reg := metrics.NewRegistry()
	frac := reg.NewGauge("frac", "")
	store := NewStore(StoreConfig{Retention: 64})
	store.AddSource("x", reg, nil)
	ev := events.New(events.Config{})
	ru := NewRules(RulesConfig{
		Store:  store,
		Events: ev,
		Rules: []Rule{{
			Name: "floor", Series: "frac", Agg: AggLast,
			Window: time.Minute, Op: OpBelow, Bound: 0.9, For: time.Hour,
		}},
	})
	frac.Set(0.1)
	store.SampleNow()
	ru.EvalNow()
	frac.Set(1.0)
	store.SampleNow()
	ru.EvalNow()
	if got := ru.Alerts(); got[0].State != StateOK {
		t.Errorf("post-blip state = %v, want ok", got[0].State)
	}
	if ev.Total() != 0 {
		t.Errorf("blip emitted %d events, want 0", ev.Total())
	}
}

func TestRulesPerSeriesIndependence(t *testing.T) {
	regA, regB := metrics.NewRegistry(), metrics.NewRegistry()
	fa := regA.NewGauge("frac", "")
	fb := regB.NewGauge("frac", "")
	store := NewStore(StoreConfig{Retention: 64})
	store.AddSource("job/a", regA, map[string]string{"job": "a"})
	store.AddSource("job/b", regB, map[string]string{"job": "b"})
	ru := NewRules(RulesConfig{
		Store: store,
		Rules: []Rule{{
			Name: "floor", Series: "frac", Agg: AggLast,
			Window: time.Minute, Op: OpBelow, Bound: 0.9, For: time.Nanosecond,
		}},
	})
	fa.Set(0.5)
	fb.Set(1.0)
	store.SampleNow()
	ru.EvalNow()
	time.Sleep(time.Millisecond)
	store.SampleNow()
	ru.EvalNow()
	alerts := ru.Alerts()
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v, want 2", alerts)
	}
	// Firing sorts first.
	if alerts[0].State != StateFiring || alerts[0].Labels["job"] != "a" {
		t.Errorf("alert[0] = %+v, want job a firing", alerts[0])
	}
	if alerts[1].State != StateOK || alerts[1].Labels["job"] != "b" {
		t.Errorf("alert[1] = %+v, want job b ok", alerts[1])
	}
}

// TestRulesVanishedSeriesResolves: a firing alert whose series disappears
// (job finished) resolves instead of staying red forever.
func TestRulesVanishedSeriesResolves(t *testing.T) {
	reg := metrics.NewRegistry()
	frac := reg.NewGauge("frac", "")
	store := NewStore(StoreConfig{Retention: 4})
	store.AddSource("x", reg, nil)
	ev := events.New(events.Config{})
	ru := NewRules(RulesConfig{
		Store:  store,
		Events: ev,
		Rules: []Rule{{
			Name: "floor", Series: "frac", Agg: AggLast,
			Window: 40 * time.Millisecond, Op: OpBelow, Bound: 0.9, For: time.Nanosecond,
		}},
	})
	frac.Set(0.1)
	store.SampleNow()
	ru.EvalNow()
	time.Sleep(time.Millisecond)
	store.SampleNow()
	ru.EvalNow()
	if ru.Firing() != 1 {
		t.Fatalf("setup: firing = %d, want 1", ru.Firing())
	}
	store.RemoveSource("x")
	time.Sleep(50 * time.Millisecond) // age every point out of the window
	ru.EvalNow()
	if ru.Firing() != 0 {
		t.Errorf("vanished series still firing")
	}
	if n := countEvents(ev, "slo_resolved"); n != 1 {
		t.Errorf("resolved events = %d, want 1", n)
	}
}

// TestRulesBurnRate exercises the two-window burn-rate shape: fires only
// when both windows burn past the factor.
func TestRulesBurnRate(t *testing.T) {
	reg := metrics.NewRegistry()
	frac := reg.NewGauge("frac", "")
	store := NewStore(StoreConfig{Retention: 256})
	store.AddSource("x", reg, nil)
	ev := events.New(events.Config{})
	ru := NewRules(RulesConfig{
		Store:  store,
		Events: ev,
		Rules: []Rule{{
			Name:       "recovery-burn",
			Series:     "frac",
			Agg:        AggAvg,
			Window:     10 * time.Millisecond,
			LongWindow: time.Minute,
			Budget:     0.05, // 95% recovery SLO
			Factor:     2,
			Invert:     true, // error fraction = 1 − recovered fraction
			For:        time.Nanosecond,
			Severity:   "error",
		}},
	})

	// Healthy history: error fraction 0 — no burn.
	frac.Set(1.0)
	for i := 0; i < 5; i++ {
		store.SampleNow()
	}
	ru.EvalNow()
	if f := ru.Firing(); f != 0 {
		t.Fatalf("healthy burn fired: %d", f)
	}

	// Sustained 50% errors: burn = 0.5/0.05 = 10× in both windows.
	frac.Set(0.5)
	for i := 0; i < 20; i++ {
		store.SampleNow()
	}
	ru.EvalNow()
	time.Sleep(time.Millisecond)
	store.SampleNow()
	ru.EvalNow()
	if f := ru.Firing(); f != 1 {
		t.Fatalf("sustained burn firing = %d, want 1", f)
	}
	if n := countEvents(ev, "slo_firing"); n != 1 {
		t.Errorf("firing events = %d, want 1", n)
	}
	// Severity "error" escalates the event level.
	if got := ev.Count(events.LevelError); got != 1 {
		t.Errorf("error-level events = %d, want 1", got)
	}
}

func TestRulesNilSafety(t *testing.T) {
	var ru *Rules
	ru.Start()
	ru.Stop()
	ru.EvalNow()
	if ru.Alerts() != nil || ru.Firing() != 0 {
		t.Error("nil rules should be inert")
	}
	if s := ru.Summarize(); s != (Summary{}) {
		t.Errorf("nil Summarize = %+v", s)
	}
	if NewRules(RulesConfig{}) != nil {
		t.Error("NewRules with no rules should return nil")
	}
}

func TestRulesStartStop(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.NewGauge("v", "").Set(5)
	store := NewStore(StoreConfig{Interval: time.Millisecond, Retention: 16})
	store.AddSource("x", reg, nil)
	store.Start()
	ru := NewRules(RulesConfig{
		Store:    store,
		Interval: time.Millisecond,
		Rules: []Rule{{
			Name: "ceiling", Series: "v", Agg: AggLast,
			Window: time.Second, Op: OpAbove, Bound: 1, For: time.Nanosecond,
		}},
	})
	ru.Start()
	deadline := time.Now().Add(2 * time.Second)
	for ru.Firing() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	ru.Stop()
	store.Stop()
	if ru.Firing() != 1 {
		t.Error("background evaluator never fired the ceiling rule")
	}
	// Stop is idempotent and Start-after-Stop must not panic.
	ru.Stop()
	store.Stop()
}
