package obs_test

import (
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/obs"
	"isgc/internal/placement"
)

// TestDashOverhead is the executable form of the sampling-cost budget:
// a store scraping the training registry every 10ms — far hotter than
// the 1s production default — must not slow the instrumented step loop
// by more than 5%. Best-of-three timings shed scheduler noise; the first
// attempt under budget passes.
func TestDashOverhead(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector inflates lock costs; budget holds for normal builds")
	}
	p, err := placement.CR(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := engine.NewISGC(isgc.New(p, 7))
	if err != nil {
		t.Fatal(err)
	}
	data, err := dataset.SyntheticClusters(960, 6, 3, 4.0, 101)
	if err != nil {
		t.Fatal(err)
	}
	run := func(sample bool) time.Duration {
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			reg := metrics.NewRegistry()
			cfg := engine.Config{
				Strategy:     st,
				Model:        model.SoftmaxRegression{Features: 6, Classes: 3},
				Data:         data,
				BatchSize:    16,
				LearningRate: 0.3,
				W:            4,
				MaxSteps:     60,
				Seed:         42,
				EvalEvery:    60,
				Metrics:      engine.NewMetrics(reg),
			}
			var store *obs.Store
			if sample {
				store = obs.NewStore(obs.StoreConfig{Interval: 10 * time.Millisecond})
				store.AddSource("train", reg, nil)
				store.Start()
			}
			start := time.Now()
			if _, err := engine.Train(cfg); err != nil {
				t.Fatal(err)
			}
			d := time.Since(start)
			store.Stop()
			if d < best {
				best = d
			}
		}
		return best
	}
	run(false) // warm caches
	var overhead float64
	for attempt := 0; attempt < 3; attempt++ {
		off := run(false)
		on := run(true)
		overhead = float64(on-off) / float64(off)
		t.Logf("attempt %d: sampling off %v, on %v, overhead %.2f%%", attempt, off, on, overhead*100)
		if overhead <= 0.05 {
			return
		}
	}
	t.Errorf("dashboard sampling overhead %.2f%% exceeds 5%% budget on all attempts", overhead*100)
}
