package obs

import (
	"math"
	"sync"
	"testing"
	"time"

	"isgc/internal/metrics"
)

func TestStoreSamplesCountersGaugesHistograms(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.NewCounter("steps_total", "")
	g := reg.NewGauge("frac", "")
	h := reg.NewHistogram("lat_seconds", "", metrics.LinearBuckets(0.01, 0.01, 100))

	s := NewStore(StoreConfig{Interval: time.Second, Retention: 16})
	s.AddSource("job/a", reg, map[string]string{"job": "a"})

	c.Add(3)
	g.Set(0.75)
	h.Observe(0.10)
	h.Observe(0.20)
	s.SampleNow()

	for _, tc := range []struct {
		name string
		want float64
	}{
		{"steps_total", 3},
		{"frac", 0.75},
		{"lat_seconds_count", 2},
	} {
		got := s.Query(tc.name, map[string]string{"job": "a"}, QueryOpts{})
		if len(got) != 1 || len(got[0].Points) != 1 {
			t.Fatalf("%s: got %+v, want one series with one point", tc.name, got)
		}
		if got[0].Points[0].V != tc.want {
			t.Errorf("%s = %v, want %v", tc.name, got[0].Points[0].V, tc.want)
		}
		if got[0].Labels["job"] != "a" {
			t.Errorf("%s labels = %v, want job=a", tc.name, got[0].Labels)
		}
	}

	// First tick's quantiles come from the lifetime distribution.
	p50 := s.Query("lat_seconds_p50", nil, QueryOpts{})
	if len(p50) != 1 || len(p50[0].Points) != 1 {
		t.Fatalf("p50 series: %+v", p50)
	}
	if v := p50[0].Points[0].V; v < 0.09 || v > 0.21 {
		t.Errorf("first-tick p50 = %v, want within the observed range", v)
	}

	// Second tick: only new observations shape the windowed quantile.
	h.Observe(0.90)
	h.Observe(0.90)
	h.Observe(0.90)
	s.SampleNow()
	p50 = s.Query("lat_seconds_p50", nil, QueryOpts{})
	last := p50[0].Points[len(p50[0].Points)-1].V
	if last < 0.85 || last > 0.91 {
		t.Errorf("windowed p50 = %v, want ~0.9 (old ticks' samples excluded)", last)
	}

	// An idle tick holds the lifetime estimate instead of gapping.
	s.SampleNow()
	p50 = s.Query("lat_seconds_p50", nil, QueryOpts{})
	if got := len(p50[0].Points); got != 3 {
		t.Errorf("idle tick: %d p50 points, want 3 (held, not gapped)", got)
	}
}

func TestStoreRingWraparound(t *testing.T) {
	reg := metrics.NewRegistry()
	g := reg.NewGauge("v", "")
	s := NewStore(StoreConfig{Retention: 4})
	s.AddSource("x", reg, nil)
	for i := 0; i < 10; i++ {
		g.Set(float64(i))
		s.SampleNow()
	}
	got := s.Query("v", nil, QueryOpts{})
	if len(got) != 1 {
		t.Fatalf("query: %+v", got)
	}
	pts := got[0].Points
	if len(pts) != 4 {
		t.Fatalf("retention: %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(6 + i); p.V != want {
			t.Errorf("point %d = %v, want %v (oldest-first after wrap)", i, p.V, want)
		}
	}
}

func TestStoreRateClampsResets(t *testing.T) {
	pts := []Point{
		{T: time.Unix(0, 0), V: 10},
		{T: time.Unix(1, 0), V: 30},  // +20/s
		{T: time.Unix(2, 0), V: 5},   // reset → clamp to 0
		{T: time.Unix(3, 0), V: 15},  // +10/s
		{T: time.Unix(3, 0), V: 999}, // dt=0 → dropped
	}
	got := ratePoints(pts)
	if len(got) != 3 {
		t.Fatalf("ratePoints: %d points, want 3: %+v", len(got), got)
	}
	if got[0].V != 20 || got[1].V != 0 || got[2].V != 10 {
		t.Errorf("rates = %v %v %v, want 20 0 10", got[0].V, got[1].V, got[2].V)
	}
	if ratePoints(pts[:1]) != nil {
		t.Error("single point should have no rate")
	}
}

func TestStoreBucketize(t *testing.T) {
	base := time.Unix(100, 0)
	var pts []Point
	for i := 0; i < 10; i++ { // values 0..9, one per second
		pts = append(pts, Point{T: base.Add(time.Duration(i) * time.Second), V: float64(i)})
	}
	for _, tc := range []struct {
		agg  Agg
		want []float64 // 5s buckets over 0..4 and 5..9
	}{
		{AggAvg, []float64{2, 7}},
		{AggMin, []float64{0, 5}},
		{AggMax, []float64{4, 9}},
		{AggLast, []float64{4, 9}},
	} {
		got := bucketize(pts, 5*time.Second, tc.agg)
		if len(got) != 2 {
			t.Fatalf("%s: %d buckets, want 2", tc.agg, len(got))
		}
		for i := range got {
			if math.Abs(got[i].V-tc.want[i]) > 1e-9 {
				t.Errorf("%s bucket %d = %v, want %v", tc.agg, i, got[i].V, tc.want[i])
			}
		}
	}
}

func TestStoreWindowQuery(t *testing.T) {
	reg := metrics.NewRegistry()
	g := reg.NewGauge("v", "")
	s := NewStore(StoreConfig{Retention: 8})
	s.AddSource("x", reg, nil)
	g.Set(1)
	s.SampleNow()
	g.Set(2)
	s.SampleNow()
	// A generous window keeps both; a zero-length effective window drops
	// points older than it.
	if got := s.Query("v", nil, QueryOpts{Window: time.Minute}); len(got[0].Points) != 2 {
		t.Errorf("window=1m: %d points, want 2", len(got[0].Points))
	}
	if got := s.Query("v", nil, QueryOpts{Window: time.Nanosecond}); len(got[0].Points) != 0 {
		t.Errorf("window=1ns: %d points, want 0", len(got[0].Points))
	}
}

func TestStoreFederationAndRemoval(t *testing.T) {
	regA, regB := metrics.NewRegistry(), metrics.NewRegistry()
	regA.NewCounter("steps_total", "").Add(5)
	regB.NewCounter("steps_total", "").Add(7)
	s := NewStore(StoreConfig{Retention: 8})
	s.AddSource("job/a", regA, map[string]string{"job": "a"})
	s.AddSource("job/b", regB, map[string]string{"job": "b"})
	s.SampleNow()

	all := s.Query("steps_total", nil, QueryOpts{})
	if len(all) != 2 {
		t.Fatalf("fleet-wide query: %d series, want 2", len(all))
	}
	onlyB := s.Query("steps_total", map[string]string{"job": "b"}, QueryOpts{})
	if len(onlyB) != 1 || onlyB[0].Points[0].V != 7 {
		t.Fatalf("per-job query: %+v", onlyB)
	}

	s.RemoveSource("job/a")
	s.SampleNow()
	all = s.Query("steps_total", nil, QueryOpts{})
	var aPts, bPts int
	for _, sd := range all {
		if sd.Labels["job"] == "a" {
			aPts = len(sd.Points)
		} else {
			bPts = len(sd.Points)
		}
	}
	if aPts != 1 || bPts != 2 {
		t.Errorf("after removal: a has %d points (want 1, frozen), b has %d (want 2)", aPts, bPts)
	}

	names := s.Names()
	if len(names) != 1 || names[0] != "steps_total" {
		t.Errorf("Names = %v", names)
	}
}

func TestStoreNilSafety(t *testing.T) {
	var s *Store
	s.AddSource("x", metrics.NewRegistry(), nil)
	s.RemoveSource("x")
	s.SampleNow()
	s.Start()
	s.Stop()
	if s.Query("v", nil, QueryOpts{}) != nil {
		t.Error("nil store Query should return nil")
	}
	if s.Names() != nil {
		t.Error("nil store Names should return nil")
	}
	if s.WindowStat("v", nil, time.Minute, AggAvg) != nil {
		t.Error("nil store WindowStat should return nil")
	}
	if s.Interval() != 0 || s.Ticks() != 0 {
		t.Error("nil store scalar getters should be zero")
	}
}

// TestStoreConcurrentScrapeWhileSample hammers the store from samplers,
// queriers, and source churn at once — the -race build is the assertion.
func TestStoreConcurrentScrapeWhileSample(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.NewCounter("steps_total", "")
	h := reg.NewHistogram("lat_seconds", "", metrics.DefBuckets)
	s := NewStore(StoreConfig{Interval: time.Millisecond, Retention: 32})
	s.AddSource("job/a", reg, map[string]string{"job": "a"})
	s.Start()
	defer s.Stop()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				h.Observe(0.01)
				s.SampleNow()
				s.Query("steps_total", nil, QueryOpts{Window: time.Second, Agg: AggRate})
				s.Query("lat_seconds_p95", nil, QueryOpts{})
				s.Names()
				s.WindowStat("steps_total", nil, time.Second, AggRate)
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		reg2 := metrics.NewRegistry()
		reg2.NewGauge("churn", "").Set(1)
		for i := 0; i < 200; i++ {
			s.AddSource("job/churn", reg2, map[string]string{"job": "churn"})
			s.RemoveSource("job/churn")
		}
	}()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	if s.Ticks() == 0 {
		t.Error("sampler never ticked")
	}
}

func TestWindowStatAggregations(t *testing.T) {
	reg := metrics.NewRegistry()
	g := reg.NewGauge("frac", "")
	s := NewStore(StoreConfig{Retention: 8})
	s.AddSource("job/a", reg, map[string]string{"job": "a"})
	for _, v := range []float64{1.0, 0.5, 0.75} {
		g.Set(v)
		s.SampleNow()
	}
	stats := s.WindowStat("frac", nil, time.Minute, AggAvg)
	if len(stats) != 1 {
		t.Fatalf("stats: %+v", stats)
	}
	if math.Abs(stats[0].Value-0.75) > 1e-9 {
		t.Errorf("avg = %v, want 0.75", stats[0].Value)
	}
	if stats[0].Samples != 3 || stats[0].Labels["job"] != "a" {
		t.Errorf("stat meta = %+v", stats[0])
	}
	if st := s.WindowStat("frac", nil, time.Minute, AggMin); math.Abs(st[0].Value-0.5) > 1e-9 {
		t.Errorf("min = %v, want 0.5", st[0].Value)
	}
	if st := s.WindowStat("frac", nil, time.Minute, AggLast); math.Abs(st[0].Value-0.75) > 1e-9 {
		t.Errorf("last = %v, want 0.75", st[0].Value)
	}
	// Rate over a gauge-like counter: feed a counter for determinism.
	if st := s.WindowStat("nosuch", nil, time.Minute, AggAvg); st != nil {
		t.Errorf("missing series stat = %+v, want nil", st)
	}
}
