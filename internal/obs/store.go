// Package obs is the fleet-wide observability layer: a zero-dependency
// in-process time-series store that samples metrics registries on a
// ticker into fixed-retention ring buffers, an SLO rule engine with
// anti-flap state transitions, periodic pprof capture, and the HTTP
// surface (/api/timeseries, /api/alerts, /debug/dash, /debug/profiles)
// the admin server mounts.
//
// The store federates: every source is a (registry, constant labels)
// pair, so a control plane registers each per-job master's registry with
// a {job: id} label and one plane-level store answers both fleet-wide
// and per-job queries. Counters are stored raw (rates are a query-time
// aggregation, robust to the counter resets a job re-placement causes);
// gauges store the sampled value; histograms expand into _count, _sum,
// and windowed-delta p50/p95/p99 series estimated from the bucket
// difference between consecutive ticks.
//
// Every exported method is safe on a nil *Store, matching the metrics
// package's discipline: an unobserved process pays one branch.
package obs

import (
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"isgc/internal/metrics"
)

// Quantiles are the windowed-delta quantile series derived per histogram
// (suffix → p).
var histQuantiles = []struct {
	Suffix string
	P      float64
}{
	{"_p50", 0.50},
	{"_p95", 0.95},
	{"_p99", 0.99},
}

// StoreConfig configures a Store.
type StoreConfig struct {
	// Interval is the sampling period (0 → 1s).
	Interval time.Duration
	// Retention is how many points each series ring holds (0 → 600 — ten
	// minutes at the default interval).
	Retention int
}

// Point is one sampled value.
type Point struct {
	T time.Time
	V float64
}

// source is one registered (registry, constant labels) pair.
type source struct {
	reg    *metrics.Registry
	labels []metrics.Label
}

// series is one named, labeled ring of points.
type series struct {
	name    string
	labels  []metrics.Label
	counter bool // counter semantics: monotone, rate-aggregatable
	pts     []Point
	head    int // next write slot
	n       int // filled
}

func (se *series) push(p Point) {
	if len(se.pts) == 0 {
		return
	}
	se.pts[se.head] = p
	se.head = (se.head + 1) % len(se.pts)
	if se.n < len(se.pts) {
		se.n++
	}
}

// points returns the ring oldest-first.
func (se *series) points() []Point {
	out := make([]Point, 0, se.n)
	start := se.head - se.n
	if start < 0 {
		start += len(se.pts)
	}
	for i := 0; i < se.n; i++ {
		out = append(out, se.pts[(start+i)%len(se.pts)])
	}
	return out
}

// Store is the in-process time-series database. Create with NewStore,
// register sources, then either Start the background sampler or drive
// SampleNow directly (tests, sim clocks).
type Store struct {
	interval  time.Duration
	retention int

	mu       sync.Mutex
	sources  map[string]*source
	series   map[string]*series
	order    []string // series keys, insertion order
	lastHist map[string]metrics.HistogramSnapshot
	ticks    uint64

	startOnce sync.Once
	stopOnce  sync.Once
	stop      chan struct{}
	done      chan struct{}
}

// NewStore builds a store; nothing samples until Start (or SampleNow).
func NewStore(cfg StoreConfig) *Store {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Retention <= 0 {
		cfg.Retention = 600
	}
	return &Store{
		interval:  cfg.Interval,
		retention: cfg.Retention,
		sources:   make(map[string]*source),
		series:    make(map[string]*series),
		lastHist:  make(map[string]metrics.HistogramSnapshot),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Interval returns the sampling period (0 on nil).
func (s *Store) Interval() time.Duration {
	if s == nil {
		return 0
	}
	return s.interval
}

// AddSource registers a registry under id with constant labels stamped
// onto every series it produces. Re-adding an id replaces the registry
// (a job's successor master continues the same labeled series). Safe on
// nil.
func (s *Store) AddSource(id string, reg *metrics.Registry, labels map[string]string) {
	if s == nil || reg == nil {
		return
	}
	ls := make([]metrics.Label, 0, len(labels))
	for k, v := range labels {
		ls = append(ls, metrics.Label{Name: k, Value: v})
	}
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	s.mu.Lock()
	s.sources[id] = &source{reg: reg, labels: ls}
	s.mu.Unlock()
}

// RemoveSource stops sampling a source. Its series stay queryable until
// their points age out of every window. Safe on nil.
func (s *Store) RemoveSource(id string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	delete(s.sources, id)
	s.mu.Unlock()
}

// Start launches the background sampler. Safe on nil; idempotent.
func (s *Store) Start() {
	if s == nil {
		return
	}
	s.startOnce.Do(func() {
		go func() {
			defer close(s.done)
			t := time.NewTicker(s.interval)
			defer t.Stop()
			for {
				select {
				case <-s.stop:
					return
				case <-t.C:
					s.SampleNow()
				}
			}
		}()
	})
}

// Stop halts the sampler and waits for it. Safe on nil and without Start.
func (s *Store) Stop() {
	if s == nil {
		return
	}
	s.stopOnce.Do(func() { close(s.stop) })
	s.startOnce.Do(func() { close(s.done) }) // never started: unblock the wait
	<-s.done
}

// Ticks returns how many sampling passes have run (0 on nil).
func (s *Store) Ticks() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ticks
}

// seriesKey renders the canonical identity of a series.
func seriesKey(name string, labels []metrics.Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabels combines source labels with a sample's own labels, sorted
// by name (sample labels win on collision, which registries never
// produce in practice).
func mergeLabels(src, own []metrics.Label) []metrics.Label {
	if len(src) == 0 && len(own) == 0 {
		return nil
	}
	out := make([]metrics.Label, 0, len(src)+len(own))
	seen := make(map[string]bool, len(own))
	for _, l := range own {
		seen[l.Name] = true
		out = append(out, l)
	}
	for _, l := range src {
		if !seen[l.Name] {
			out = append(out, l)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// rec is one pending ring append, staged so user GaugeFuncs run outside
// the store lock.
type rec struct {
	name    string
	labels  []metrics.Label
	counter bool
	v       float64
}

// SampleNow runs one synchronous sampling pass over every source. The
// registries are gathered outside the store lock (GaugeFuncs may take
// process locks of their own); the ring appends happen under it. Safe on
// nil.
func (s *Store) SampleNow() {
	if s == nil {
		return
	}
	now := time.Now()
	s.mu.Lock()
	srcs := make([]*source, 0, len(s.sources))
	for _, src := range s.sources {
		srcs = append(srcs, src)
	}
	s.mu.Unlock()

	var recs []rec
	var histKeys []string
	var histSnaps []metrics.HistogramSnapshot
	for _, src := range srcs {
		for _, sm := range src.reg.Gather() {
			labels := mergeLabels(src.labels, sm.Labels)
			switch sm.Kind {
			case metrics.KindCounter:
				recs = append(recs, rec{sm.Name, labels, true, sm.Value})
			case metrics.KindGauge:
				recs = append(recs, rec{sm.Name, labels, false, sm.Value})
			case metrics.KindHistogram:
				if sm.Hist == nil {
					continue
				}
				recs = append(recs, rec{sm.Name + "_count", labels, true, float64(sm.Hist.Count)})
				recs = append(recs, rec{sm.Name + "_sum", labels, true, sm.Hist.Sum})
				histKeys = append(histKeys, seriesKey(sm.Name, labels))
				histSnaps = append(histSnaps, *sm.Hist)
				// Quantile recs are resolved under the lock, where the
				// previous snapshot lives; stage placeholders.
				for range histQuantiles {
					recs = append(recs, rec{sm.Name, labels, false, math.NaN()})
				}
			}
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.ticks++
	hi := 0
	for i := 0; i < len(recs); i++ {
		r := recs[i]
		if math.IsNaN(r.v) && hi < len(histKeys) {
			// The staged quantile block for histKeys[hi]: diff against the
			// previous tick's snapshot for windowed quantiles.
			key := histKeys[hi]
			snap := histSnaps[hi]
			delta := snap.Sub(s.lastHist[key])
			s.lastHist[key] = snap
			hi++
			for q, hq := range histQuantiles {
				v := delta.Quantile(hq.P)
				if delta.Count == 0 {
					// No observations this tick: hold the lifetime estimate
					// so the series has no artificial gaps.
					v = snap.Quantile(hq.P)
				}
				if !math.IsNaN(v) {
					s.record(recs[i+q].name+hq.Suffix, r.labels, false, v, now)
				}
			}
			i += len(histQuantiles) - 1
			continue
		}
		s.record(r.name, r.labels, r.counter, r.v, now)
	}
}

// record appends one point, creating the series on first sight. Caller
// holds mu.
func (s *Store) record(name string, labels []metrics.Label, counter bool, v float64, now time.Time) {
	key := seriesKey(name, labels)
	se := s.series[key]
	if se == nil {
		se = &series{
			name:    name,
			labels:  labels,
			counter: counter,
			pts:     make([]Point, s.retention),
		}
		s.series[key] = se
		s.order = append(s.order, key)
	}
	se.push(Point{T: now, V: v})
}

// Agg selects the query-time aggregation.
type Agg string

const (
	AggLast Agg = "last"
	AggMin  Agg = "min"
	AggMax  Agg = "max"
	AggAvg  Agg = "avg"
	// AggRate is the per-second increase of a counter series, computed
	// from adjacent raw samples with negative deltas clamped to zero
	// (counter resets — a restarted master — read as a momentary zero,
	// not a huge negative spike).
	AggRate Agg = "rate"
)

// ParseAgg validates an aggregation name ("" → last).
func ParseAgg(s string) (Agg, bool) {
	switch Agg(s) {
	case "":
		return AggLast, true
	case AggLast, AggMin, AggMax, AggAvg, AggRate:
		return Agg(s), true
	}
	return "", false
}

// QueryOpts bounds and shapes a range query.
type QueryOpts struct {
	// Window keeps points newer than now−Window (0 → everything retained).
	Window time.Duration
	// Step groups points into Step-wide buckets aggregated with Agg
	// (0 → raw points; rate still transforms).
	Step time.Duration
	// Agg is the bucket aggregation (default last).
	Agg Agg
}

// SeriesData is one query result.
type SeriesData struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []Point           `json:"-"`
}

// matches reports whether the series carries every label in match.
func (se *series) matches(match map[string]string) bool {
	for k, v := range match {
		found := false
		for _, l := range se.labels {
			if l.Name == k && l.Value == v {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

func labelMap(ls []metrics.Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Name] = l.Value
	}
	return m
}

// Query returns every series with the given name whose labels are a
// superset of match, its points windowed, rate-transformed, and bucketed
// per opts. Results are ordered by series key. Safe on nil (returns nil).
func (s *Store) Query(name string, match map[string]string, opts QueryOpts) []SeriesData {
	if s == nil {
		return nil
	}
	now := time.Now()
	s.mu.Lock()
	type hit struct {
		key string
		se  *series
		pts []Point
	}
	var hits []hit
	for _, key := range s.order {
		se := s.series[key]
		if se.name != name || !se.matches(match) {
			continue
		}
		hits = append(hits, hit{key, se, se.points()})
	}
	s.mu.Unlock()

	out := make([]SeriesData, 0, len(hits))
	for _, h := range hits {
		pts := h.pts
		if opts.Window > 0 {
			cut := now.Add(-opts.Window)
			i := sort.Search(len(pts), func(i int) bool { return !pts[i].T.Before(cut) })
			pts = pts[i:]
		}
		if opts.Agg == AggRate {
			pts = ratePoints(pts)
		}
		if opts.Step > 0 {
			pts = bucketize(pts, opts.Step, opts.Agg)
		}
		out = append(out, SeriesData{Name: h.se.name, Labels: labelMap(h.se.labels), Points: pts})
	}
	return out
}

// ratePoints converts cumulative samples into instantaneous per-second
// rates between adjacent points, clamping resets to zero.
func ratePoints(pts []Point) []Point {
	if len(pts) < 2 {
		return nil
	}
	out := make([]Point, 0, len(pts)-1)
	for i := 1; i < len(pts); i++ {
		dt := pts[i].T.Sub(pts[i-1].T).Seconds()
		if dt <= 0 {
			continue
		}
		dv := pts[i].V - pts[i-1].V
		if dv < 0 {
			dv = 0
		}
		out = append(out, Point{T: pts[i].T, V: dv / dt})
	}
	return out
}

// bucketize groups points into step-wide buckets (aligned to the first
// point) and aggregates each. Rate input has already been transformed, so
// its buckets average.
func bucketize(pts []Point, step time.Duration, agg Agg) []Point {
	if len(pts) == 0 {
		return pts
	}
	if agg == "" || agg == AggRate {
		agg = AggAvg
	}
	var out []Point
	start := pts[0].T
	i := 0
	for i < len(pts) {
		end := start.Add(step)
		j := i
		for j < len(pts) && pts[j].T.Before(end) {
			j++
		}
		if j > i {
			out = append(out, Point{T: pts[j-1].T, V: aggregate(pts[i:j], agg)})
		}
		start = end
		i = j
	}
	return out
}

func aggregate(pts []Point, agg Agg) float64 {
	switch agg {
	case AggMin:
		m := pts[0].V
		for _, p := range pts[1:] {
			m = math.Min(m, p.V)
		}
		return m
	case AggMax:
		m := pts[0].V
		for _, p := range pts[1:] {
			m = math.Max(m, p.V)
		}
		return m
	case AggAvg:
		sum := 0.0
		for _, p := range pts {
			sum += p.V
		}
		return sum / float64(len(pts))
	default: // last
		return pts[len(pts)-1].V
	}
}

// Names returns the distinct series names, sorted. Safe on nil.
func (s *Store) Names() []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	seen := make(map[string]bool)
	for _, key := range s.order {
		seen[s.series[key].name] = true
	}
	s.mu.Unlock()
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// LabelValues returns the distinct values of a label across every
// series, sorted — e.g. LabelValues("job") is the fleet's job catalog.
// Safe on nil.
func (s *Store) LabelValues(label string) []string {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	seen := make(map[string]bool)
	for _, key := range s.order {
		for _, l := range s.series[key].labels {
			if l.Name == label {
				seen[l.Value] = true
			}
		}
	}
	s.mu.Unlock()
	vals := make([]string, 0, len(seen))
	for v := range seen {
		vals = append(vals, v)
	}
	sort.Strings(vals)
	return vals
}

// SeriesStat is one windowed aggregate — the rule engine's view.
type SeriesStat struct {
	Labels  map[string]string
	Value   float64
	Samples int
}

// WindowStat aggregates the last window of every matching series into one
// value each. Series with no points in the window are omitted. Safe on
// nil.
func (s *Store) WindowStat(name string, match map[string]string, window time.Duration, agg Agg) []SeriesStat {
	if s == nil {
		return nil
	}
	var out []SeriesStat
	for _, sd := range s.Query(name, match, QueryOpts{Window: window, Agg: agg}) {
		pts := sd.Points
		if len(pts) == 0 {
			continue
		}
		a := agg
		if a == AggRate {
			a = AggAvg // average the instantaneous rates over the window
		}
		out = append(out, SeriesStat{Labels: sd.Labels, Value: aggregate(pts, a), Samples: len(pts)})
	}
	return out
}
