package obs

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"
)

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// httpError writes a structured JSON error — malformed observability
// queries get a machine-readable 400, not a text/plain shrug.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// parseDuration parses an optional duration query parameter, accepting
// Go duration syntax ("30s", "5m") or a bare number of seconds. Returns
// def when the parameter is absent; an error on malformed or negative
// values.
func parseDuration(q string, def time.Duration) (time.Duration, error) {
	if q == "" {
		return def, nil
	}
	d, err := time.ParseDuration(q)
	if err != nil {
		// Bare seconds for curl ergonomics: ?window=30.
		var secs float64
		if _, serr := fmt.Sscanf(q, "%g", &secs); serr != nil || strings.TrimSpace(q) != strings.TrimSpace(fmt.Sprintf("%g", secs)) {
			return 0, fmt.Errorf("malformed duration %q", q)
		}
		d = time.Duration(secs * float64(time.Second))
	}
	if d < 0 {
		return 0, fmt.Errorf("negative duration %q", q)
	}
	return d, nil
}

// tsPoint marshals as a [unixMillis, value] pair — compact for the
// dashboard's polling loop.
type tsPoint struct {
	T int64
	V float64
}

func (p tsPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal([2]float64{float64(p.T), p.V})
}

type tsSeries struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Points []tsPoint         `json:"points"`
}

type tsResponse struct {
	IntervalSeconds float64    `json:"interval_seconds"`
	Names           []string   `json:"names,omitempty"`
	Series          []tsSeries `json:"series,omitempty"`
}

// HandleTimeseries serves the windowed query API:
//
//	GET /api/timeseries                          → catalog of series names
//	GET /api/timeseries?name=N[&window=][&step=][&agg=][&label.K=V…]
//
// window/step accept Go durations ("30s") or bare seconds; agg is one of
// last|min|max|avg|rate. Malformed parameters return 400 with a JSON
// error body. A nil store serves an empty catalog.
func HandleTimeseries(s *Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		q := r.URL.Query()
		name := q.Get("name")
		if name == "" {
			writeJSON(w, http.StatusOK, tsResponse{
				IntervalSeconds: s.Interval().Seconds(),
				Names:           s.Names(),
			})
			return
		}
		window, err := parseDuration(q.Get("window"), 5*time.Minute)
		if err != nil {
			httpError(w, http.StatusBadRequest, "window: %v", err)
			return
		}
		step, err := parseDuration(q.Get("step"), 0)
		if err != nil {
			httpError(w, http.StatusBadRequest, "step: %v", err)
			return
		}
		agg, ok := ParseAgg(q.Get("agg"))
		if !ok {
			httpError(w, http.StatusBadRequest, "agg: unknown aggregation %q (want last|min|max|avg|rate)", q.Get("agg"))
			return
		}
		match := map[string]string{}
		for key, vals := range q {
			if lk, found := strings.CutPrefix(key, "label."); found && len(vals) > 0 {
				match[lk] = vals[0]
			}
		}
		resp := tsResponse{IntervalSeconds: s.Interval().Seconds()}
		for _, sd := range s.Query(name, match, QueryOpts{Window: window, Step: step, Agg: agg}) {
			ts := tsSeries{Name: sd.Name, Labels: sd.Labels, Points: make([]tsPoint, 0, len(sd.Points))}
			for _, p := range sd.Points {
				ts.Points = append(ts.Points, tsPoint{T: p.T.UnixMilli(), V: p.V})
			}
			resp.Series = append(resp.Series, ts)
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

// HandleAlerts serves the rule engine's current alert states as JSON.
// A nil engine serves an empty list.
func HandleAlerts(ru *Rules) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		alerts := ru.Alerts()
		if alerts == nil {
			alerts = []Alert{}
		}
		writeJSON(w, http.StatusOK, map[string]any{
			"summary": ru.Summarize(),
			"alerts":  alerts,
		})
	})
}

// HandleProfiles lists retained pprof captures and serves individual
// files (?download=<name>). A nil profiler serves an empty list.
func HandleProfiles(p *Profiler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "method %s not allowed", r.Method)
			return
		}
		if name := r.URL.Query().Get("download"); name != "" {
			if p == nil {
				httpError(w, http.StatusNotFound, "profiling disabled")
				return
			}
			if name != filepath.Base(name) || !strings.HasSuffix(name, ".pprof") {
				httpError(w, http.StatusBadRequest, "invalid profile name %q", name)
				return
			}
			path := filepath.Join(p.Dir(), name)
			f, err := os.Open(path)
			if err != nil {
				httpError(w, http.StatusNotFound, "no such profile %q", name)
				return
			}
			defer f.Close()
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Header().Set("Content-Disposition", `attachment; filename="`+name+`"`)
			http.ServeContent(w, r, name, time.Time{}, f)
			return
		}
		captures, lastErr := p.Captures()
		list := p.List()
		if list == nil {
			list = []ProfileInfo{}
		}
		resp := map[string]any{
			"dir":      p.Dir(),
			"captures": captures,
			"profiles": list,
		}
		if lastErr != nil {
			resp["last_error"] = lastErr.Error()
		}
		writeJSON(w, http.StatusOK, resp)
	})
}
