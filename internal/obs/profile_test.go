package obs

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestProfilerCaptureAndList(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{Dir: dir, CPUDuration: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	p.CaptureNow()
	n, lastErr := p.Captures()
	if lastErr != nil {
		t.Fatalf("capture error: %v", lastErr)
	}
	if n == 0 {
		t.Fatal("no successful captures recorded")
	}
	list := p.List()
	kinds := map[string]int{}
	for _, pi := range list {
		kinds[pi.Kind]++
		if pi.Size == 0 && pi.Kind == "heap" {
			t.Errorf("empty heap profile %s", pi.Name)
		}
	}
	if kinds["cpu"] != 1 || kinds["heap"] != 1 {
		t.Fatalf("capture kinds = %v, want one cpu + one heap", kinds)
	}
}

func TestProfilerRetentionPrune(t *testing.T) {
	dir := t.TempDir()
	p, err := NewProfiler(ProfilerConfig{Dir: dir, Keep: 3, CPUDuration: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	// Seed stale captures with sortable stamps older than anything new.
	for i := 0; i < 6; i++ {
		stamp := time.Date(2020, 1, 1, 0, 0, i, 0, time.UTC).Format("20060102T150405")
		for _, prefix := range []string{"cpu-", "heap-"} {
			if err := os.WriteFile(filepath.Join(dir, prefix+stamp+".pprof"), []byte("x"), 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	p.prune()
	for _, prefix := range []string{"cpu-", "heap-"} {
		names, _ := filepath.Glob(filepath.Join(dir, prefix+"*.pprof"))
		if len(names) != 3 {
			t.Errorf("%s retention: %d files, want 3", prefix, len(names))
		}
		// The survivors are the newest (lexically greatest) stamps.
		for _, n := range names {
			if filepath.Base(n) < prefix+"20200101T000003" {
				t.Errorf("pruned wrong file: kept %s", n)
			}
		}
	}
}

func TestProfilerDisabledAndNil(t *testing.T) {
	p, err := NewProfiler(ProfilerConfig{})
	if err != nil || p != nil {
		t.Fatalf("empty dir: p=%v err=%v, want nil/nil", p, err)
	}
	var nilP *Profiler
	nilP.Start()
	nilP.Stop()
	nilP.CaptureNow()
	if nilP.List() != nil || nilP.Dir() != "" {
		t.Error("nil profiler should be inert")
	}
	if n, e := nilP.Captures(); n != 0 || e != nil {
		t.Error("nil profiler Captures should be zero")
	}
}

func TestProfilerStartStop(t *testing.T) {
	p, err := NewProfiler(ProfilerConfig{
		Dir:         t.TempDir(),
		Interval:    20 * time.Millisecond,
		CPUDuration: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if n, _ := p.Captures(); n > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if n, _ := p.Captures(); n == 0 {
		t.Error("background profiler never captured")
	}
}
