package gc

import (
	"math"
	"math/rand"
	"testing"

	"isgc/internal/bitset"
	"isgc/internal/linalg"
)

// subsets of size k from 0..n-1, passed to fn.
func forEachSubset(n, k int, fn func([]int)) {
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(idx)
			return
		}
		for v := start; v <= n-(k-depth); v++ {
			idx[depth] = v
			rec(v+1, depth+1)
		}
	}
	rec(0, 0)
}

func randomGrads(rng *rand.Rand, n, dim int) [][]float64 {
	grads := make([][]float64, n)
	for d := range grads {
		grads[d] = make([]float64, dim)
		for k := range grads[d] {
			grads[d][k] = rng.NormFloat64()
		}
	}
	return grads
}

func fullSum(grads [][]float64) []float64 {
	out := make([]float64, len(grads[0]))
	for _, g := range grads {
		linalg.AddTo(out, g)
	}
	return out
}

func TestFRBIsZeroOneOnSupport(t *testing.T) {
	code, err := NewFR(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	b := code.B()
	for i := 0; i < 6; i++ {
		support := map[int]bool{}
		for _, d := range code.Placement().Partitions(i) {
			support[d] = true
		}
		for j := 0; j < 6; j++ {
			want := 0.0
			if support[j] {
				want = 1.0
			}
			if b.At(i, j) != want {
				t.Fatalf("B[%d,%d] = %v, want %v", i, j, b.At(i, j), want)
			}
		}
	}
}

func TestCRBSupportIsCyclic(t *testing.T) {
	code, err := NewCR(6, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := code.B()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			onSupport := false
			for r := 0; r < 3; r++ {
				if (i+r)%6 == j {
					onSupport = true
				}
			}
			if !onSupport && b.At(i, j) != 0 {
				t.Fatalf("B[%d,%d] = %v off support", i, j, b.At(i, j))
			}
		}
		if b.At(i, i) != 1 {
			t.Fatalf("B[%d,%d] = %v, want 1", i, i, b.At(i, i))
		}
	}
}

// The defining property of classic GC: every (n-s)-subset of workers can
// decode the exact full gradient. Exhaustively checked for small n.
func TestFullRecoveryAllSubsetsFR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, tc := range []struct{ n, c int }{{4, 2}, {6, 2}, {6, 3}, {8, 4}} {
		code, err := NewFR(tc.n, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		grads := randomGrads(rng, tc.n, 4)
		want := fullSum(grads)
		coded := make([][]float64, tc.n)
		for i := range coded {
			coded[i], err = code.Encode(i, grads)
			if err != nil {
				t.Fatal(err)
			}
		}
		w := code.MinWorkers()
		forEachSubset(tc.n, w, func(workers []int) {
			avail := bitset.FromSlice(workers)
			got, err := code.Decode(avail, coded)
			if err != nil {
				t.Fatalf("FR(%d,%d) W'=%v: %v", tc.n, tc.c, workers, err)
			}
			if linalg.MaxAbsDiff(got, want) > 1e-8 {
				t.Fatalf("FR(%d,%d) W'=%v: wrong recovery", tc.n, tc.c, workers)
			}
		})
	}
}

func TestFullRecoveryAllSubsetsCR(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ n, c int }{{4, 2}, {5, 2}, {6, 3}, {7, 3}, {8, 4}, {5, 5}} {
		code, err := NewCR(tc.n, tc.c, 7)
		if err != nil {
			t.Fatal(err)
		}
		grads := randomGrads(rng, tc.n, 4)
		want := fullSum(grads)
		coded := make([][]float64, tc.n)
		for i := range coded {
			coded[i], err = code.Encode(i, grads)
			if err != nil {
				t.Fatal(err)
			}
		}
		w := code.MinWorkers()
		forEachSubset(tc.n, w, func(workers []int) {
			avail := bitset.FromSlice(workers)
			got, err := code.Decode(avail, coded)
			if err != nil {
				t.Fatalf("CR(%d,%d) W'=%v: %v", tc.n, tc.c, workers, err)
			}
			if linalg.MaxAbsDiff(got, want) > 1e-6 {
				t.Fatalf("CR(%d,%d) W'=%v: wrong recovery (diff %g)", tc.n, tc.c, workers, linalg.MaxAbsDiff(got, want))
			}
		})
	}
}

// More stragglers than s = c-1: classic GC must refuse (this is exactly the
// rigidity IS-GC removes — Fig. 1(d) vs Fig. 1(b)).
func TestDecodeFailsWithTooFewWorkers(t *testing.T) {
	code, err := NewCR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	coded := make([][]float64, 4)
	if _, err := code.Decode(bitset.FromSlice([]int{1, 3}), coded); err == nil {
		t.Fatal("classic GC must fail with 2 stragglers when s=1")
	}
	if _, err := code.DecodeCoefficients(bitset.New(4)); err == nil {
		t.Fatal("classic GC must fail with no workers")
	}
	if _, err := code.DecodeCoefficients(nil); err == nil {
		t.Fatal("classic GC must fail with nil availability")
	}
}

func TestCEquals1IsSyncSGD(t *testing.T) {
	code, err := NewCR(4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if code.MinWorkers() != 4 {
		t.Fatalf("MinWorkers = %d, want 4 (no straggler tolerance)", code.MinWorkers())
	}
	rng := rand.New(rand.NewSource(4))
	grads := randomGrads(rng, 4, 3)
	coded := make([][]float64, 4)
	for i := range coded {
		coded[i], err = code.Encode(i, grads)
		if err != nil {
			t.Fatal(err)
		}
		if linalg.MaxAbsDiff(coded[i], grads[i]) != 0 {
			t.Fatal("with c=1 the coded gradient is the plain gradient")
		}
	}
	all := bitset.FromSlice([]int{0, 1, 2, 3})
	got, err := code.Decode(all, coded)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.MaxAbsDiff(got, fullSum(grads)) > 1e-9 {
		t.Fatal("c=1 decode must equal the plain sum")
	}
}

func TestEncodeErrors(t *testing.T) {
	code, err := NewCR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := code.Encode(-1, make([][]float64, 4)); err == nil {
		t.Error("expected error for negative worker")
	}
	if _, err := code.Encode(0, make([][]float64, 3)); err == nil {
		t.Error("expected error for wrong grad count")
	}
	grads := [][]float64{{1, 2}, {3}, {4, 5}, {6, 7}}
	if _, err := code.Encode(0, grads); err == nil {
		t.Error("expected error for dim mismatch within support")
	}
}

func TestDecodeMissingCodedGradient(t *testing.T) {
	code, err := NewCR(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	grads := randomGrads(rng, 4, 3)
	coded := make([][]float64, 4)
	for i := 0; i < 2; i++ {
		coded[i], err = code.Encode(i, grads)
		if err != nil {
			t.Fatal(err)
		}
	}
	// W' = {0,1,2} is the minimum decode set and only worker 2 covers
	// partition 3, so its coefficient is necessarily nonzero — a nil coded
	// gradient there must surface as an error.
	avail := bitset.FromSlice([]int{0, 1, 2})
	if _, err := code.Decode(avail, coded); err == nil {
		t.Fatal("expected error for nil coded gradient of needed worker")
	}
}

func TestConstructorErrors(t *testing.T) {
	if _, err := NewFR(5, 2); err == nil {
		t.Error("NewFR must propagate c∤n error")
	}
	if _, err := NewCR(4, 5, 1); err == nil {
		t.Error("NewCR must propagate c>n error")
	}
	if _, err := NewFR(0, 1); err == nil {
		t.Error("NewFR must reject n=0")
	}
}

// Determinism: same seed ⇒ identical B.
func TestNewCRDeterministicUnderSeed(t *testing.T) {
	a, err := NewCR(6, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCR(6, 3, 42)
	if err != nil {
		t.Fatal(err)
	}
	if linalg.MaxAbsDiff(a.B().Data, b.B().Data) != 0 {
		t.Fatal("same seed must give same code")
	}
}

// Every row of B must combine to 1ᵀ over the full worker set too
// (w = n is a valid, straggler-free decode).
func TestDecodeWithAllWorkers(t *testing.T) {
	code, err := NewCR(8, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	all := bitset.New(8)
	for i := 0; i < 8; i++ {
		all.Add(i)
	}
	a, err := code.DecodeCoefficients(all)
	if err != nil {
		t.Fatal(err)
	}
	recon, err := code.B().VecMat(a)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range recon {
		if math.Abs(v-1) > 1e-6 {
			t.Fatalf("aᵀB = %v, want all ones", recon)
		}
	}
}
