package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"isgc/internal/bitset"
	"isgc/internal/linalg"
)

// Property: for random (n, c) and random (≥ MinWorkers)-subsets, classic
// CR gradient coding recovers the exact full gradient.
func TestQuickCRFullRecoveryRandomSubsets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		c := 1 + rng.Intn(n)
		code, err := NewCR(n, c, rng.Int63())
		if err != nil {
			return false
		}
		grads := randomGrads(rng, n, 3)
		want := fullSum(grads)
		coded := make([][]float64, n)
		for i := range coded {
			coded[i], err = code.Encode(i, grads)
			if err != nil {
				return false
			}
		}
		// Random subset of size between MinWorkers and n.
		w := code.MinWorkers() + rng.Intn(n-code.MinWorkers()+1)
		avail := bitset.FromSlice(rng.Perm(n)[:w])
		got, err := code.Decode(avail, coded)
		if err != nil {
			return false
		}
		return linalg.MaxAbsDiff(got, want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the decode coefficients reconstruct exactly the all-ones row
// vector over the partitions (aᵀB_{W'} = 1ᵀ) — the defining identity.
func TestQuickDecodeCoefficientsIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		c := 2 + rng.Intn(n-1)
		code, err := NewCR(n, c, rng.Int63())
		if err != nil {
			return false
		}
		w := code.MinWorkers() + rng.Intn(n-code.MinWorkers()+1)
		avail := bitset.FromSlice(rng.Perm(n)[:w])
		a, err := code.DecodeCoefficients(avail)
		if err != nil {
			return false
		}
		// Workers outside W' must have zero coefficients.
		for i, ai := range a {
			if !avail.Contains(i) && ai != 0 {
				return false
			}
		}
		recon, err := code.B().VecMat(a)
		if err != nil {
			return false
		}
		for _, v := range recon {
			if v < 1-1e-6 || v > 1+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: FR and CR codes never succeed below MinWorkers.
func TestQuickDecodeRefusesBelowThreshold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(6)
		c := 2 + rng.Intn(n/2)
		var code *Code
		var err error
		if n%c == 0 && rng.Intn(2) == 0 {
			code, err = NewFR(n, c)
		} else {
			code, err = NewCR(n, c, rng.Int63())
		}
		if err != nil {
			return false
		}
		w := rng.Intn(code.MinWorkers()) // strictly below threshold
		avail := bitset.FromSlice(rng.Perm(n)[:w])
		_, err = code.DecodeCoefficients(avail)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
