// Package gc implements the classic gradient-coding baseline of Tandon et
// al. (ICML 2017), which the paper compares IS-GC against (Sec. III and
// Sec. VIII). In classic GC each worker uploads a fixed linear combination
// b_i of the gradients of its c partitions; the master waits for any
// w = n - s workers (s = c - 1 tolerable stragglers) and solves
// aᵀ·B_{W'} = 1ᵀ for the decode coefficients a, recovering the exact full
// gradient g = Σ_i g_i. With more than c-1 stragglers classic GC recovers
// nothing — the rigidity IS-GC removes.
package gc

import (
	"fmt"
	"math/rand"

	"isgc/internal/bitset"
	"isgc/internal/linalg"
	"isgc/internal/placement"
)

// Code is a classic gradient code: a placement plus the n×n encoding matrix
// B whose row i gives worker i's coefficients over the n partitions
// (zero outside the worker's partition support).
type Code struct {
	p *placement.Placement
	b *linalg.Matrix
}

// NewFR constructs the classic FR gradient code: every worker sums its
// partitions with all-ones coefficients. Any n-c+1 workers include at least
// one complete worker per group, so picking one per group with coefficient
// 1 recovers g exactly.
func NewFR(n, c int) (*Code, error) {
	p, err := placement.FR(n, c)
	if err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	b := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for _, d := range p.Partitions(i) {
			b.Set(i, d, 1)
		}
	}
	return &Code{p: p, b: b}, nil
}

// NewCR constructs the classic CR gradient code with cyclic support
// {i, …, i+c-1} mod n, following the randomized construction of Tandon et
// al.: draw an (s)×n matrix H (s = c-1) with i.i.d. Gaussian entries whose
// columns sum to zero and any s columns are linearly independent (holds
// with probability 1; we verify and redraw on the measure-zero failure).
// Row i of B is then chosen with b_i(i) = 1 and the remaining s support
// coefficients solving H_{S_i\{i\}}·x = −H_i, which guarantees that for
// every (n-s)-subset W' the all-ones vector lies in the row span of B_{W'}.
func NewCR(n, c int, seed int64) (*Code, error) {
	p, err := placement.CR(n, c)
	if err != nil {
		return nil, fmt.Errorf("gc: %w", err)
	}
	s := c - 1
	b := linalg.NewMatrix(n, n)
	if s == 0 {
		// c = 1: plain synchronous SGD, B = I.
		for i := 0; i < n; i++ {
			b.Set(i, i, 1)
		}
		return &Code{p: p, b: b}, nil
	}
	rng := rand.New(rand.NewSource(seed))
	const maxDraws = 32
	for draw := 0; draw < maxDraws; draw++ {
		h, ok := drawH(rng, s, n)
		if !ok {
			continue
		}
		if bm, ok := buildB(p, h, n, c); ok {
			return &Code{p: p, b: bm}, nil
		}
	}
	return nil, fmt.Errorf("gc: failed to construct CR code for n=%d c=%d after %d draws", n, c, maxDraws)
}

// drawH samples an s×n Gaussian matrix and projects its columns so they sum
// to zero (subtract the row means); it reports ok=false if some s-column
// submatrix needed later could be singular — full verification happens in
// buildB, so here we only reject degenerate all-zero draws.
func drawH(rng *rand.Rand, s, n int) (*linalg.Matrix, bool) {
	h := linalg.NewMatrix(s, n)
	for i := range h.Data {
		h.Data[i] = rng.NormFloat64()
	}
	for r := 0; r < s; r++ {
		row := h.Row(r)
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(n)
		for j := range row {
			row[j] -= mean
		}
	}
	return h, true
}

// buildB computes each row of B from H. Row i has support
// S_i = {i, …, i+c-1} mod n with b_i(i) = 1; the other coefficients x solve
// H_cols(S_i \ {i}) · x = -H_col(i).
func buildB(p *placement.Placement, h *linalg.Matrix, n, c int) (*linalg.Matrix, bool) {
	s := c - 1
	b := linalg.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		support := p.Partitions(i) // sorted; includes i
		sub := linalg.NewMatrix(s, s)
		rhs := make([]float64, s)
		colIdx := make([]int, 0, s)
		for _, d := range support {
			if d != i {
				colIdx = append(colIdx, d)
			}
		}
		for r := 0; r < s; r++ {
			for k, d := range colIdx {
				sub.Set(r, k, h.At(r, d))
			}
			rhs[r] = -h.At(r, i)
		}
		x, err := linalg.Solve(sub, rhs)
		if err != nil {
			return nil, false
		}
		b.Set(i, i, 1)
		for k, d := range colIdx {
			b.Set(i, d, x[k])
		}
	}
	return b, true
}

// Placement returns the underlying placement.
func (g *Code) Placement() *placement.Placement { return g.p }

// B returns the encoding matrix (shared; callers must not mutate).
func (g *Code) B() *linalg.Matrix { return g.b }

// MinWorkers returns the minimum number of workers classic GC needs for a
// full recovery: n - (c-1).
func (g *Code) MinWorkers() int { return g.p.N() - g.p.C() + 1 }

// Encode computes worker i's coded gradient Σ_d B[i,d]·grads[d]; grads must
// hold all n per-partition gradients (only the worker's support is read).
func (g *Code) Encode(worker int, grads [][]float64) ([]float64, error) {
	n := g.p.N()
	if worker < 0 || worker >= n {
		return nil, fmt.Errorf("gc: worker %d out of range [0,%d)", worker, n)
	}
	if len(grads) != n {
		return nil, fmt.Errorf("gc: got %d partition gradients, want %d", len(grads), n)
	}
	parts := g.p.Partitions(worker)
	dim := len(grads[parts[0]])
	out := make([]float64, dim)
	for _, d := range parts {
		if len(grads[d]) != dim {
			return nil, fmt.Errorf("gc: partition %d gradient dim %d ≠ %d", d, len(grads[d]), dim)
		}
		linalg.AXPY(out, g.b.At(worker, d), grads[d])
	}
	return out, nil
}

// DecodeCoefficients returns the decode vector a (indexed like workers,
// zero for workers outside W') such that Σ_{i∈W'} a_i·B_i = 1ᵀ, or an error
// if W' has fewer than MinWorkers workers or the solve fails.
func (g *Code) DecodeCoefficients(available *bitset.Set) ([]float64, error) {
	n := g.p.N()
	workers := make([]int, 0, n)
	if available != nil {
		available.Range(func(v int) bool {
			if v < n {
				workers = append(workers, v)
			}
			return true
		})
	}
	if len(workers) < g.MinWorkers() {
		return nil, fmt.Errorf("gc: only %d workers available, classic GC needs ≥ %d (s ≤ c-1 = %d stragglers)",
			len(workers), g.MinWorkers(), g.p.C()-1)
	}
	// Solve Bᵀ_{W'} · a = 1: rows of B_{W'} span 1ᵀ by construction, but
	// the system is usually rank-deficient (FR repeats rows; w may exceed
	// the minimum), so we need a particular solution, not least squares.
	sub, err := g.b.SelectRows(workers)
	if err != nil {
		return nil, err
	}
	ones := make([]float64, n)
	for i := range ones {
		ones[i] = 1
	}
	a, err := linalg.SolveAny(sub.T(), ones)
	if err != nil {
		return nil, fmt.Errorf("gc: decode solve: %w", err)
	}
	// Verify aᵀ·B_{W'} = 1ᵀ.
	recon, err := sub.VecMat(a)
	if err != nil {
		return nil, err
	}
	if linalg.MaxAbsDiff(recon, ones) > 1e-6 {
		return nil, fmt.Errorf("gc: decode verification failed: max residual %g", linalg.MaxAbsDiff(recon, ones))
	}
	full := make([]float64, n)
	for k, w := range workers {
		full[w] = a[k]
	}
	return full, nil
}

// Decode recovers the full gradient g = Σ_i g_i from the coded gradients of
// the available workers. coded[i] may be nil for stragglers.
func (g *Code) Decode(available *bitset.Set, coded [][]float64) ([]float64, error) {
	a, err := g.DecodeCoefficients(available)
	if err != nil {
		return nil, err
	}
	var out []float64
	for i, ai := range a {
		if ai == 0 && !available.Contains(i) {
			continue
		}
		if coded[i] == nil {
			if ai == 0 {
				continue
			}
			return nil, fmt.Errorf("gc: worker %d needed for decode but has no coded gradient", i)
		}
		if out == nil {
			out = make([]float64, len(coded[i]))
		}
		if len(coded[i]) != len(out) {
			return nil, fmt.Errorf("gc: worker %d coded gradient dim %d ≠ %d", i, len(coded[i]), len(out))
		}
		linalg.AXPY(out, ai, coded[i])
	}
	return out, nil
}
