// Package buildinfo reports what binary is running: module version, Go
// toolchain, and (when built inside a git checkout) the VCS revision.
// Everything comes from debug.ReadBuildInfo — no ldflags stamping, no
// build-system coupling — so the three CLIs and the /healthz payload can
// identify themselves with zero configuration.
package buildinfo

import (
	"fmt"
	"runtime/debug"
)

// Info identifies the running binary.
type Info struct {
	// Module is the main module path (e.g. "isgc").
	Module string `json:"module"`
	// Version is the main module version ("(devel)" for local builds).
	Version string `json:"version"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, empty when built outside VCS or
	// with -buildvcs=false.
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes at build time.
	Dirty bool `json:"dirty,omitempty"`
}

// Get reads the binary's build information. It degrades gracefully: a
// binary built without module support still reports its Go version.
func Get() Info {
	info := Info{Version: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.GoVersion = bi.GoVersion
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// String renders the info as the one-line -version output.
func (i Info) String() string {
	s := fmt.Sprintf("%s %s (%s)", i.Module, i.Version, i.GoVersion)
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " " + rev
		if i.Dirty {
			s += "-dirty"
		}
	}
	return s
}
