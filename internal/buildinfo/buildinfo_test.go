package buildinfo

import (
	"strings"
	"testing"
)

func TestGet(t *testing.T) {
	info := Get()
	// Under `go test` the main module is the test binary's module and the
	// toolchain is always known.
	if info.GoVersion == "" {
		t.Fatal("GoVersion must be populated under go test")
	}
	if info.Version == "" {
		t.Fatal("Version must never be empty")
	}
}

func TestString(t *testing.T) {
	i := Info{Module: "isgc", Version: "(devel)", GoVersion: "go1.22",
		Revision: "0123456789abcdef0123", Dirty: true}
	s := i.String()
	for _, want := range []string{"isgc", "(devel)", "go1.22", "0123456789ab", "-dirty"} {
		if !strings.Contains(s, want) {
			t.Fatalf("String() = %q, missing %q", s, want)
		}
	}
	if strings.Contains(s, "0123456789abcdef") {
		t.Fatalf("String() = %q: revision not truncated", s)
	}
}

func TestStringWithoutVCS(t *testing.T) {
	s := Info{Module: "isgc", Version: "unknown", GoVersion: "go1.22"}.String()
	if strings.Contains(s, "dirty") {
		t.Fatalf("String() = %q: no VCS info should add no suffix", s)
	}
}
