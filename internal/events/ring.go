package events

import "sync"

// defaultRingSize bounds the in-memory event history when the caller does
// not choose one: large enough to cover a whole default training run's
// lifecycle events, small enough to be irrelevant memory-wise.
const defaultRingSize = 1024

// Ring is a bounded circular buffer of events: appends never block or
// allocate past the fixed capacity, and a snapshot can be taken while
// other goroutines keep appending. The admin /debug/events endpoint reads
// it live during training.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int    // index of the slot the next append writes
	total uint64 // appends ever, including overwritten ones
}

// NewRing returns a ring holding at most capacity events (<= 0 selects the
// default).
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = defaultRingSize
	}
	return &Ring{buf: make([]Event, 0, capacity)}
}

// Append adds e, evicting the oldest entry once the ring is full.
func (r *Ring) Append(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
	} else {
		r.buf[r.next] = e
	}
	r.next = (r.next + 1) % cap(r.buf)
	r.total++
}

// Snapshot returns the buffered events, oldest first. The returned slice
// is a copy; callers may keep it across further appends.
func (r *Ring) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	if len(r.buf) < cap(r.buf) {
		// Not yet wrapped: the buffer is already oldest-first.
		return append(out, r.buf...)
	}
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Len returns how many events are currently buffered.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.buf)
}

// Cap returns the ring's fixed capacity.
func (r *Ring) Cap() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return cap(r.buf)
}

// Total returns how many events were ever appended, including those the
// ring has since evicted.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
