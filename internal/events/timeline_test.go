package events

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// decodeTrace parses a Chrome trace document the way a viewer would.
func decodeTrace(t *testing.T, data []byte) chromeTrace {
	t.Helper()
	var tr chromeTrace
	if err := json.Unmarshal(data, &tr); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, data)
	}
	return tr
}

func TestTimelineChromeTrace(t *testing.T) {
	tl := NewTimeline(0)
	tl.SetThreadName(0, "master")
	tl.SetThreadName(1, "worker 0")
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	tl.Add(Span{Name: "step 0", Cat: "step", TID: 0, Start: base, Dur: 100 * time.Millisecond})
	tl.Add(Span{Name: "compute", Cat: "compute", TID: 1, Start: base.Add(10 * time.Millisecond),
		Dur: 40 * time.Millisecond, Args: map[string]any{"step": 0}})

	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, buf.Bytes())
	if tr.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tr.DisplayTimeUnit)
	}
	var metas, spans int
	var compute *chromeEvent
	for i := range tr.TraceEvents {
		e := &tr.TraceEvents[i]
		switch e.Ph {
		case "M":
			metas++
		case "X":
			spans++
			if e.Name == "compute" {
				compute = e
			}
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
	}
	if metas != 3 { // process_name + 2 thread_names
		t.Fatalf("metadata events = %d, want 3", metas)
	}
	if spans != 2 {
		t.Fatalf("span events = %d, want 2", spans)
	}
	if compute == nil || compute.Dur == nil {
		t.Fatal("compute span missing or without dur")
	}
	// Timestamps are micros relative to the earliest span.
	if compute.TS != 10_000 || *compute.Dur != 40_000 {
		t.Fatalf("compute ts=%v dur=%v, want 10000/40000 µs", compute.TS, *compute.Dur)
	}
	if compute.TID != 1 {
		t.Fatalf("compute tid=%d, want 1", compute.TID)
	}
}

func TestTimelineCapCountsDropped(t *testing.T) {
	tl := NewTimeline(2)
	for i := 0; i < 5; i++ {
		tl.Add(Span{Name: "s", Start: time.Now()})
	}
	if len(tl.Spans()) != 2 || tl.Dropped() != 3 {
		t.Fatalf("spans=%d dropped=%d, want 2/3", len(tl.Spans()), tl.Dropped())
	}
}

func TestNilTimelineIsSafe(t *testing.T) {
	var tl *Timeline
	tl.Add(Span{Name: "x"})
	tl.SetThreadName(0, "m")
	if tl.Spans() != nil || tl.Dropped() != 0 {
		t.Fatal("nil timeline must report zeros")
	}
	var buf bytes.Buffer
	if err := tl.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, buf.Bytes())
	if len(tr.TraceEvents) != 0 {
		t.Fatalf("nil timeline rendered %d events", len(tr.TraceEvents))
	}
}

func TestTimelineWriteFile(t *testing.T) {
	tl := NewTimeline(0)
	tl.Add(Span{Name: "step 0", Cat: "step", Start: time.Now(), Dur: time.Millisecond})
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tl.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr := decodeTrace(t, data)
	found := false
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" && e.Name == "step 0" {
			found = true
		}
	}
	if !found {
		t.Fatalf("written trace misses the span: %s", data)
	}
}

// Concurrent adds while exporting: run with -race.
func TestTimelineConcurrentAddExport(t *testing.T) {
	tl := NewTimeline(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					tl.Add(Span{Name: "s", Start: time.Now(), Dur: time.Microsecond})
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		var buf bytes.Buffer
		if err := tl.WriteChromeTrace(&buf); err != nil {
			t.Fatal(err)
		}
		decodeTrace(t, buf.Bytes())
	}
	close(stop)
	wg.Wait()
}
