package events

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestParseLevel(t *testing.T) {
	for name, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"error": LevelError, "INFO": LevelInfo, "Warn": LevelWarn,
	} {
		got, err := ParseLevel(name)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", name, got, err, want)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Error("ParseLevel must reject unknown names")
	}
}

func TestLogEmitsJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := New(Config{Writer: &buf})
	l.Info("test.started", "hello", NoStep, NoWorker, nil)
	l.Warn("test.worker_evicted", "gone", 3, 1, Fields{"reason": "connection_lost"})
	l.Debug("test.detail", "fine print", 4, NoWorker, nil)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), buf.String())
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatalf("line 2 is not JSON: %v", err)
	}
	if e.Level != LevelWarn || e.Type != "test.worker_evicted" || e.Step != 3 || e.Worker != 1 {
		t.Fatalf("decoded %+v", e)
	}
	if e.Fields["reason"] != "connection_lost" {
		t.Fatalf("fields = %v", e.Fields)
	}
	if e.Time.IsZero() {
		t.Fatal("event timestamp missing")
	}
}

func TestLogMinLevelFilters(t *testing.T) {
	var buf bytes.Buffer
	l := New(Config{Writer: &buf, MinLevel: LevelWarn})
	l.Debug("x", "", NoStep, NoWorker, nil)
	l.Info("x", "", NoStep, NoWorker, nil)
	l.Warn("x", "", NoStep, NoWorker, nil)
	l.Error("x", "", NoStep, NoWorker, nil)
	if got := strings.Count(buf.String(), "\n"); got != 2 {
		t.Fatalf("min level warn kept %d lines, want 2", got)
	}
	if l.Count(LevelDebug) != 0 || l.Count(LevelWarn) != 1 || l.Count(LevelError) != 1 {
		t.Fatalf("counts debug=%d warn=%d error=%d", l.Count(LevelDebug), l.Count(LevelWarn), l.Count(LevelError))
	}
	if len(l.Snapshot()) != 2 {
		t.Fatalf("ring kept %d events, want 2", len(l.Snapshot()))
	}
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Info("x", "", NoStep, NoWorker, nil) // must not panic
	if l.Snapshot() != nil || l.Count(LevelInfo) != 0 || l.Total() != 0 || l.WriteErrors() != 0 {
		t.Fatal("nil log must report zeros")
	}
}

// errWriter fails every write; the log must count, not propagate.
type errWriter struct{}

func (errWriter) Write(p []byte) (int, error) { return 0, bufio.ErrBufferFull }

func TestLogCountsWriteErrors(t *testing.T) {
	l := New(Config{Writer: errWriter{}})
	l.Info("x", "", NoStep, NoWorker, nil)
	if l.WriteErrors() != 1 {
		t.Fatalf("write errors = %d, want 1", l.WriteErrors())
	}
	if len(l.Snapshot()) != 1 {
		t.Fatal("ring must keep the event even when the sink fails")
	}
}

// TestLogConcurrentEmit exercises the JSONL writer under contention: run
// with -race, and every emitted line must still parse individually.
func TestLogConcurrentEmit(t *testing.T) {
	var buf bytes.Buffer
	l := New(Config{Writer: &buf})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				l.Info("test.concurrent", "m", i, g, Fields{"g": g})
			}
		}()
	}
	wg.Wait()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 400 {
		t.Fatalf("got %d lines, want 400", len(lines))
	}
	for i, line := range lines {
		var e Event
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("line %d corrupted under concurrency: %v\n%s", i+1, err, line)
		}
	}
	if l.Total() != 400 {
		t.Fatalf("total = %d, want 400", l.Total())
	}
}

func TestLevelJSONRoundTrip(t *testing.T) {
	for _, lv := range []Level{LevelDebug, LevelInfo, LevelWarn, LevelError} {
		data, err := json.Marshal(lv)
		if err != nil {
			t.Fatal(err)
		}
		var back Level
		if err := json.Unmarshal(data, &back); err != nil || back != lv {
			t.Fatalf("round trip %v -> %s -> %v (%v)", lv, data, back, err)
		}
	}
	var lv Level
	if err := json.Unmarshal([]byte(`"nope"`), &lv); err == nil {
		t.Fatal("unmarshal must reject unknown level names")
	}
}
