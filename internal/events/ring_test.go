package events

import (
	"fmt"
	"sync"
	"testing"
)

func mkEvent(i int) Event {
	return Event{Type: fmt.Sprintf("t%d", i), Step: i, Worker: NoWorker}
}

func TestRingBelowCapacity(t *testing.T) {
	r := NewRing(8)
	for i := 0; i < 5; i++ {
		r.Append(mkEvent(i))
	}
	snap := r.Snapshot()
	if len(snap) != 5 || r.Len() != 5 || r.Total() != 5 {
		t.Fatalf("len=%d total=%d snapshot=%d", r.Len(), r.Total(), len(snap))
	}
	for i, e := range snap {
		if e.Step != i {
			t.Fatalf("snapshot[%d].Step = %d, want %d (oldest first)", i, e.Step, i)
		}
	}
}

// Wraparound: appending past capacity evicts the oldest entries and the
// snapshot stays oldest-first across the wrap point.
func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 11; i++ {
		r.Append(mkEvent(i))
	}
	if r.Len() != 4 || r.Cap() != 4 {
		t.Fatalf("len=%d cap=%d, want 4/4", r.Len(), r.Cap())
	}
	if r.Total() != 11 {
		t.Fatalf("total=%d, want 11", r.Total())
	}
	snap := r.Snapshot()
	want := []int{7, 8, 9, 10}
	for i, e := range snap {
		if e.Step != want[i] {
			t.Fatalf("snapshot steps = %v, want %v", steps(snap), want)
		}
	}
	// Exactly one more append shifts the window by one.
	r.Append(mkEvent(11))
	if got := steps(r.Snapshot()); got[0] != 8 || got[3] != 11 {
		t.Fatalf("after one more append: %v", got)
	}
}

func steps(es []Event) []int {
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.Step
	}
	return out
}

func TestRingDefaultCapacity(t *testing.T) {
	if NewRing(0).Cap() != defaultRingSize || NewRing(-3).Cap() != defaultRingSize {
		t.Fatal("non-positive capacity must select the default")
	}
}

// Concurrent append-while-snapshot: run with -race. Snapshots taken during
// heavy appending must always be internally consistent (monotone step
// numbers per producer ordering is not guaranteed across goroutines, but
// the snapshot must never contain zero-value holes once the ring filled).
func TestRingConcurrentAppendSnapshot(t *testing.T) {
	r := NewRing(64)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Append(Event{Type: "concurrent", Step: i, Worker: NoWorker})
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()
	for stopped := false; !stopped; {
		select {
		case <-done:
			stopped = true
		default:
		}
		snap := r.Snapshot()
		if len(snap) > r.Cap() {
			t.Fatalf("snapshot larger than capacity: %d", len(snap))
		}
		if len(snap) == r.Cap() {
			for _, e := range snap {
				if e.Type != "concurrent" {
					t.Fatalf("snapshot contains a hole: %+v", e)
				}
			}
		}
	}
	if r.Total() != 4000 {
		t.Fatalf("total = %d, want 4000", r.Total())
	}
}
