package events

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// defaultTimelineSpans bounds span memory when the caller does not choose:
// a 200-step run with a dozen workers produces a few thousand spans, so
// 64k covers paper-scale runs with a wide margin while capping a runaway
// producer at a few MiB.
const defaultTimelineSpans = 1 << 16

// Span is one timed interval on a track: a master phase (broadcast,
// gather, decode, update), a whole step, or a worker's compute/upload.
type Span struct {
	// Name is the span label shown in the trace viewer.
	Name string
	// Cat is the Chrome trace category (used for filtering in the UI).
	Cat string
	// TID selects the track: 0 is the master, worker i renders on i+1.
	TID int
	// Start and Dur delimit the interval in wall time.
	Start time.Time
	Dur   time.Duration
	// Args carries span metadata shown on click in the viewer.
	Args map[string]any
}

// Timeline collects spans for export as a Chrome trace-event file
// (the JSON format ui.perfetto.dev and chrome://tracing load natively).
// It is race-safe, bounded, and nil-receiver-safe: a nil *Timeline
// discards spans with a single branch.
type Timeline struct {
	mu      sync.Mutex
	max     int
	spans   []Span
	dropped uint64
	threads map[int]string
}

// NewTimeline returns a timeline holding at most max spans (<= 0 selects
// the default). Once full, further spans are counted as dropped rather
// than evicting history — the start of a run matters more than a runaway
// tail.
func NewTimeline(max int) *Timeline {
	if max <= 0 {
		max = defaultTimelineSpans
	}
	return &Timeline{max: max, threads: make(map[int]string)}
}

// SetThreadName labels a track (e.g. 0 → "master", 3 → "worker 2").
func (t *Timeline) SetThreadName(tid int, name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.threads[tid] = name
}

// Add records one span. Safe for concurrent use and on a nil receiver.
func (t *Timeline) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) >= t.max {
		t.dropped++
		return
	}
	t.spans = append(t.spans, s)
}

// Spans returns a copy of the recorded spans in insertion order.
func (t *Timeline) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Dropped returns how many spans were discarded because the cap was hit.
func (t *Timeline) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// chromeEvent is one entry of the Chrome trace-event JSON format. Only
// the fields this exporter uses are modeled: "X" complete events (with
// microsecond ts/dur) and "M" metadata events (thread names).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace file object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace renders the timeline as a Chrome trace-event JSON
// document. Timestamps are microseconds relative to the earliest span so
// the viewer opens at t≈0.
func (t *Timeline) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[],"displayTimeUnit":"ms"}`)
		return err
	}
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	threads := make(map[int]string, len(t.threads))
	for k, v := range t.threads {
		threads[k] = v
	}
	t.mu.Unlock()

	var epoch time.Time
	for _, s := range spans {
		if epoch.IsZero() || s.Start.Before(epoch) {
			epoch = s.Start
		}
	}

	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: make([]chromeEvent, 0, len(spans)+len(threads)+1)}
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1, Args: map[string]any{"name": "isgc"},
	})
	tids := make([]int, 0, len(threads))
	for tid := range threads {
		tids = append(tids, tid)
	}
	sort.Ints(tids)
	for _, tid := range tids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 1, TID: tid,
			Args: map[string]any{"name": threads[tid]},
		})
	}
	for _, s := range spans {
		dur := float64(s.Dur) / float64(time.Microsecond)
		if dur < 0 {
			dur = 0
		}
		d := dur
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			TS:  float64(s.Start.Sub(epoch)) / float64(time.Microsecond),
			Dur: &d,
			PID: 1, TID: s.TID, Args: s.Args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteFile writes the Chrome trace to path, creating or truncating it.
func (t *Timeline) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("events: timeline: %w", err)
	}
	if err := t.WriteChromeTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("events: timeline: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("events: timeline: %w", err)
	}
	return nil
}
