// Package events is the tracing and structured-logging layer of the
// runtime: a leveled JSONL event log backed by a bounded in-memory ring
// buffer, and a span timeline exportable as a Chrome trace-event file
// (loadable in ui.perfetto.dev). It is stdlib-only, race-safe, and every
// entry point is nil-receiver-safe so instrumentation can be disabled by
// simply not providing a Log or Timeline — the hot paths then pay one
// branch, exactly like the metrics package.
//
// The paper's evaluation reasons about *which* workers straggle and what
// the decoder does about the subset that arrived; this package is the
// runtime counterpart: per-step master spans (broadcast → gather → decode
// → update), per-worker compute spans with worker-reported durations, and
// structured events for every liveness transition (eviction, rejoin,
// degraded step) that previously happened silently.
package events

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level is the severity of an event.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

var levelNames = [...]string{"debug", "info", "warn", "error"}

func (l Level) String() string {
	if l < LevelDebug || l > LevelError {
		return fmt.Sprintf("level(%d)", int8(l))
	}
	return levelNames[l]
}

// MarshalJSON renders the level as its lowercase name.
func (l Level) MarshalJSON() ([]byte, error) { return json.Marshal(l.String()) }

// UnmarshalJSON parses a lowercase level name.
func (l *Level) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	lv, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = lv
	return nil
}

// ParseLevel converts a level name ("debug", "info", "warn", "error") to a
// Level; it accepts any case.
func ParseLevel(s string) (Level, error) {
	for i, name := range levelNames {
		if strings.EqualFold(s, name) {
			return Level(i), nil
		}
	}
	return LevelInfo, fmt.Errorf("events: unknown level %q (want debug, info, warn, or error)", s)
}

// Fields carries optional structured context on an event.
type Fields = map[string]any

// NoStep and NoWorker mark an event as not scoped to a step or worker.
const (
	NoStep   = -1
	NoWorker = -1
)

// Event is one structured log entry. Step and Worker are -1 (NoStep,
// NoWorker) when the event is not scoped to a training step or a worker.
type Event struct {
	Time   time.Time `json:"ts"`
	Level  Level     `json:"level"`
	Type   string    `json:"type"`
	Step   int       `json:"step"`
	Worker int       `json:"worker"`
	Msg    string    `json:"msg"`
	Fields Fields    `json:"fields,omitempty"`
}

// Config configures a Log.
type Config struct {
	// Writer, when non-nil, receives one JSON object per event, newline-
	// terminated (JSONL). The Log serializes writes; the writer itself
	// need not be concurrency-safe.
	Writer io.Writer
	// MinLevel drops events below it (default LevelDebug: keep all).
	MinLevel Level
	// RingSize bounds the in-memory ring buffer backing Snapshot and the
	// /debug/events endpoint (default 1024; negative disables the ring).
	RingSize int
}

// Log is a leveled, race-safe structured event log: every emitted event is
// appended to a bounded ring buffer (for live inspection) and, when a
// writer is configured, encoded as one JSONL line. A nil *Log discards
// everything — callers instrument unconditionally and the zero branch
// decides.
type Log struct {
	mu  sync.Mutex
	w   io.Writer
	min Level

	ring   *Ring
	counts [len(levelNames)]atomic.Uint64
	// writeErrs counts failed sink writes; the log never propagates them
	// (observability must not take the training plane down).
	writeErrs atomic.Uint64
}

// New builds a Log from cfg.
func New(cfg Config) *Log {
	l := &Log{w: cfg.Writer, min: cfg.MinLevel}
	if cfg.RingSize >= 0 {
		l.ring = NewRing(cfg.RingSize)
	}
	return l
}

// Emit records one event. Safe for concurrent use and on a nil receiver.
// fields may be nil; the map is stored as-is, so callers must not mutate
// it afterwards.
func (l *Log) Emit(level Level, typ, msg string, step, worker int, fields Fields) {
	if l == nil || level < l.min {
		return
	}
	e := Event{
		Time:   time.Now(),
		Level:  level,
		Type:   typ,
		Step:   step,
		Worker: worker,
		Msg:    msg,
		Fields: fields,
	}
	if level >= LevelDebug && level <= LevelError {
		l.counts[level].Add(1)
	}
	if l.ring != nil {
		l.ring.Append(e)
	}
	if l.w == nil {
		return
	}
	// Marshal outside the lock; only the write itself is serialized.
	line, err := json.Marshal(e)
	if err != nil {
		l.writeErrs.Add(1)
		return
	}
	line = append(line, '\n')
	l.mu.Lock()
	_, err = l.w.Write(line)
	l.mu.Unlock()
	if err != nil {
		l.writeErrs.Add(1)
	}
}

// Debug emits a LevelDebug event.
func (l *Log) Debug(typ, msg string, step, worker int, fields Fields) {
	l.Emit(LevelDebug, typ, msg, step, worker, fields)
}

// Info emits a LevelInfo event.
func (l *Log) Info(typ, msg string, step, worker int, fields Fields) {
	l.Emit(LevelInfo, typ, msg, step, worker, fields)
}

// Warn emits a LevelWarn event.
func (l *Log) Warn(typ, msg string, step, worker int, fields Fields) {
	l.Emit(LevelWarn, typ, msg, step, worker, fields)
}

// Error emits a LevelError event.
func (l *Log) Error(typ, msg string, step, worker int, fields Fields) {
	l.Emit(LevelError, typ, msg, step, worker, fields)
}

// Snapshot returns the ring's current contents, oldest first. Safe during
// concurrent emission; nil when the ring is disabled or the log is nil.
func (l *Log) Snapshot() []Event {
	if l == nil || l.ring == nil {
		return nil
	}
	return l.ring.Snapshot()
}

// Count returns how many events were emitted at the given level (including
// those evicted from the ring).
func (l *Log) Count(level Level) uint64 {
	if l == nil || level < LevelDebug || level > LevelError {
		return 0
	}
	return l.counts[level].Load()
}

// Total returns how many events were emitted across all levels.
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	var t uint64
	for i := range l.counts {
		t += l.counts[i].Load()
	}
	return t
}

// WriteErrors returns how many sink writes failed (dropped lines).
func (l *Log) WriteErrors() uint64 {
	if l == nil {
		return 0
	}
	return l.writeErrs.Load()
}
