package straggler

import (
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay(nil); err == nil {
		t.Error("empty trace must error")
	}
	if _, err := NewReplay([]time.Duration{time.Second, -1}); err == nil {
		t.Error("negative delay must error")
	}
}

func TestReplayCyclesTrace(t *testing.T) {
	r, err := NewReplay([]time.Duration{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	want := []time.Duration{1, 2, 3, 1, 2, 3, 1}
	for i, w := range want {
		if got := r.Sample(rng); got != w {
			t.Fatalf("sample %d = %v, want %v", i, got, w)
		}
	}
	if !strings.Contains(r.String(), "len=3") {
		t.Errorf("String = %q", r.String())
	}
}

func TestReplayCopiesTrace(t *testing.T) {
	trace := []time.Duration{5, 6}
	r, err := NewReplay(trace)
	if err != nil {
		t.Fatal(err)
	}
	trace[0] = 99
	rng := rand.New(rand.NewSource(1))
	if r.Sample(rng) != 5 {
		t.Fatal("NewReplay must copy the trace")
	}
}

func TestReplayCloneOffsets(t *testing.T) {
	r, err := NewReplay([]time.Duration{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	c1 := r.Clone(1)
	if c1.Sample(rng) != 20 {
		t.Fatal("offset clone must start mid-trace")
	}
	cNeg := r.Clone(-1)
	if cNeg.Sample(rng) != 30 {
		t.Fatal("negative offsets must wrap")
	}
	// Clones are independent of each other and of the original.
	if r.Sample(rng) != 10 {
		t.Fatal("original position must be untouched by clones")
	}
}

func TestBurstyValidation(t *testing.T) {
	if _, err := NewBursty(nil, Constant{D: 1}, 0.1, 0.1); err == nil {
		t.Error("nil fast model must error")
	}
	if _, err := NewBursty(Constant{D: 1}, nil, 0.1, 0.1); err == nil {
		t.Error("nil slow model must error")
	}
	if _, err := NewBursty(Constant{D: 1}, Constant{D: 2}, -0.1, 0.1); err == nil {
		t.Error("negative probability must error")
	}
	if _, err := NewBursty(Constant{D: 1}, Constant{D: 2}, 0.1, 1.5); err == nil {
		t.Error("probability > 1 must error")
	}
}

func TestBurstyStationaryFraction(t *testing.T) {
	// Two-state chain with enter=0.1, exit=0.3: stationary P(slow) =
	// enter/(enter+exit) = 0.25.
	b, err := NewBursty(Constant{D: time.Millisecond}, Constant{D: time.Second}, 0.1, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	slow := 0
	const steps = 200000
	for i := 0; i < steps; i++ {
		if b.Sample(rng) == time.Second {
			slow++
		}
	}
	frac := float64(slow) / steps
	if frac < 0.23 || frac > 0.27 {
		t.Fatalf("slow fraction %v, want ≈0.25", frac)
	}
}

func TestBurstyIsBursty(t *testing.T) {
	// With tiny transition probabilities the state persists: consecutive
	// samples should be highly correlated, unlike Bernoulli.
	b, err := NewBursty(Constant{D: 0}, Constant{D: time.Second}, 0.02, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	transitions, prev := 0, time.Duration(-1)
	const steps = 20000
	for i := 0; i < steps; i++ {
		d := b.Sample(rng)
		if prev >= 0 && d != prev {
			transitions++
		}
		prev = d
	}
	// Expected transitions ≈ steps * 0.02·(flip prob) ≈ 400; Bernoulli at
	// p=0.5 would flip ~10000 times.
	if transitions > 1500 {
		t.Fatalf("%d transitions in %d steps: not bursty", transitions, steps)
	}
	if transitions == 0 {
		t.Fatal("chain never left its state — transition sampling broken")
	}
}

func TestBurstyStartsFast(t *testing.T) {
	b, err := NewBursty(Constant{D: 0}, Constant{D: time.Second}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if b.InSlowState() {
		t.Fatal("zero value must start in the fast state")
	}
	rng := rand.New(rand.NewSource(4))
	// With both transition probabilities zero it stays fast forever.
	for i := 0; i < 100; i++ {
		if b.Sample(rng) != 0 {
			t.Fatal("chain must stay fast with p=0 transitions")
		}
	}
	if !strings.Contains(b.String(), "bursty") {
		t.Errorf("String = %q", b.String())
	}
}

func TestReplayInProfile(t *testing.T) {
	// Replay models plug into Profile like any other Model.
	r, err := NewReplay([]time.Duration{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	p := NewProfileFromModels([]Model{r.Clone(0), r.Clone(1)}, 1)
	first := p.SampleAll()
	if first[0] != 7 || first[1] != 8 {
		t.Fatalf("first = %v", first)
	}
	second := p.SampleAll()
	if second[0] != 8 || second[1] != 7 {
		t.Fatalf("second = %v", second)
	}
}
