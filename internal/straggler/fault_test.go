package straggler

import (
	"math/rand"
	"testing"
)

func TestCrashAt(t *testing.T) {
	f := CrashAt{Step: 5}
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 5; step++ {
		if got := f.At(step, rng); got != FaultNone {
			t.Fatalf("step %d: %v, want none before the crash step", step, got)
		}
	}
	// Crash is permanent: every step from Step on reports it.
	for step := 5; step < 8; step++ {
		if got := f.At(step, rng); got != FaultCrash {
			t.Fatalf("step %d: %v, want crash", step, got)
		}
	}
	if f.String() != "crashAt(5)" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestDisconnectAt(t *testing.T) {
	f := DisconnectAt{Step: 3}
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 8; step++ {
		want := FaultNone
		if step == 3 {
			want = FaultDisconnect
		}
		if got := f.At(step, rng); got != want {
			t.Fatalf("step %d: %v, want %v", step, got, want)
		}
	}
}

func TestDropWithProb(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	always := DropWithProb{P: 1}
	never := DropWithProb{P: 0}
	for step := 0; step < 10; step++ {
		if always.At(step, rng) != FaultDrop {
			t.Fatal("p=1 must always drop")
		}
		if never.At(step, rng) != FaultNone {
			t.Fatal("p=0 must never drop")
		}
	}
	// p=0.5 drops roughly half the steps.
	half := DropWithProb{P: 0.5}
	drops := 0
	for step := 0; step < 1000; step++ {
		if half.At(step, rng) == FaultDrop {
			drops++
		}
	}
	if drops < 400 || drops > 600 {
		t.Fatalf("p=0.5 dropped %d/1000", drops)
	}
}

func TestComposeSeverity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := Compose{DropWithProb{P: 1}, DisconnectAt{Step: 2}, CrashAt{Step: 4}}
	wants := []FaultAction{FaultDrop, FaultDrop, FaultDisconnect, FaultDrop, FaultCrash, FaultCrash}
	for step, want := range wants {
		if got := f.At(step, rng); got != want {
			t.Fatalf("step %d: %v, want %v", step, got, want)
		}
	}
	if Compose(nil).At(0, rng) != FaultNone {
		t.Fatal("empty compose must be benign")
	}
	if f.String() != "compose(dropWithProb(1.00),disconnectAt(2),crashAt(4))" {
		t.Fatalf("String = %q", f.String())
	}
}

func TestFaultActionString(t *testing.T) {
	cases := map[FaultAction]string{
		FaultNone:       "none",
		FaultDrop:       "drop",
		FaultDisconnect: "disconnect",
		FaultCrash:      "crash",
		FaultAction(9):  "fault(9)",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Fatalf("%d.String() = %q, want %q", int(a), a.String(), want)
		}
	}
}
