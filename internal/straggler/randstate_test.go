package straggler

import (
	"testing"
	"time"
)

// TestProfileRandStateRoundTrip asserts that restoring a profile's RNG
// position reproduces the continuing profile's delay stream exactly.
func TestProfileRandStateRoundTrip(t *testing.T) {
	ref := NewProfile(8, Exponential{Mean: 10 * time.Millisecond}, 13)
	for i := 0; i < 100; i++ {
		ref.SampleAll()
	}
	seed, draws := ref.RandState()

	resumed := NewProfile(8, Exponential{Mean: 10 * time.Millisecond}, 99)
	resumed.RestoreRandState(seed, draws)

	for i := 0; i < 100; i++ {
		a, b := ref.SampleAll(), resumed.SampleAll()
		for w := range a {
			if a[w] != b[w] {
				t.Fatalf("step %d worker %d diverged: %v vs %v", i, w, a[w], b[w])
			}
		}
	}
}
