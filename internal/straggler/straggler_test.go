package straggler

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"time"
)

func TestNone(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var m None
	for i := 0; i < 10; i++ {
		if m.Sample(rng) != 0 {
			t.Fatal("None must sample 0")
		}
	}
	if m.String() != "none" {
		t.Fatal("wrong String")
	}
}

func TestConstant(t *testing.T) {
	m := Constant{D: 3 * time.Second}
	rng := rand.New(rand.NewSource(1))
	if m.Sample(rng) != 3*time.Second {
		t.Fatal("wrong constant sample")
	}
	if !strings.Contains(m.String(), "3s") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestUniformRange(t *testing.T) {
	m := Uniform{Min: time.Second, Max: 2 * time.Second}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 1000; i++ {
		d := m.Sample(rng)
		if d < time.Second || d > 2*time.Second {
			t.Fatalf("sample %v outside [1s, 2s]", d)
		}
	}
	// Degenerate range.
	deg := Uniform{Min: time.Second, Max: time.Second}
	if deg.Sample(rng) != time.Second {
		t.Fatal("degenerate uniform must return Min")
	}
	inv := Uniform{Min: 2 * time.Second, Max: time.Second}
	if inv.Sample(rng) != 2*time.Second {
		t.Fatal("inverted uniform must return Min")
	}
}

func TestExponentialMean(t *testing.T) {
	m := Exponential{Mean: 1500 * time.Millisecond}
	rng := rand.New(rand.NewSource(3))
	const trials = 200000
	var sum float64
	for i := 0; i < trials; i++ {
		d := m.Sample(rng)
		if d < 0 {
			t.Fatal("negative delay")
		}
		sum += float64(d)
	}
	mean := sum / trials
	want := float64(1500 * time.Millisecond)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("empirical mean %v, want ≈%v", time.Duration(mean), time.Duration(want))
	}
	if (Exponential{}).Sample(rng) != 0 {
		t.Fatal("zero-mean exponential must sample 0")
	}
}

func TestShiftedExponential(t *testing.T) {
	m := ShiftedExponential{Shift: time.Second, Mean: 500 * time.Millisecond}
	rng := rand.New(rand.NewSource(4))
	const trials = 100000
	var sum float64
	for i := 0; i < trials; i++ {
		d := m.Sample(rng)
		if d < time.Second {
			t.Fatalf("sample %v below shift", d)
		}
		sum += float64(d)
	}
	mean := sum / trials
	want := float64(1500 * time.Millisecond)
	if math.Abs(mean-want)/want > 0.02 {
		t.Fatalf("empirical mean %v, want ≈%v", time.Duration(mean), time.Duration(want))
	}
	noTail := ShiftedExponential{Shift: time.Second}
	if noTail.Sample(rng) != time.Second {
		t.Fatal("mean=0 shifted exponential must return shift")
	}
}

func TestBernoulli(t *testing.T) {
	m := Bernoulli{P: 0.25, Slow: 10 * time.Second, Fast: time.Second}
	rng := rand.New(rand.NewSource(5))
	slow := 0
	const trials = 100000
	for i := 0; i < trials; i++ {
		switch m.Sample(rng) {
		case 10 * time.Second:
			slow++
		case time.Second:
		default:
			t.Fatal("unexpected sample value")
		}
	}
	frac := float64(slow) / trials
	if math.Abs(frac-0.25) > 0.01 {
		t.Fatalf("slow fraction %v, want ≈0.25", frac)
	}
}

func TestScaled(t *testing.T) {
	m := Scaled{Inner: Constant{D: 2 * time.Second}, Factor: 1.5}
	rng := rand.New(rand.NewSource(6))
	if m.Sample(rng) != 3*time.Second {
		t.Fatal("wrong scaled sample")
	}
	if !strings.Contains(m.String(), "1.50") {
		t.Fatalf("String = %q", m.String())
	}
}

func TestProfileUniformModel(t *testing.T) {
	p := NewProfile(4, Constant{D: time.Second}, 1)
	if p.N() != 4 {
		t.Fatalf("N = %d", p.N())
	}
	all := p.SampleAll()
	if len(all) != 4 {
		t.Fatalf("SampleAll len = %d", len(all))
	}
	for i, d := range all {
		if d != time.Second {
			t.Fatalf("worker %d delay %v", i, d)
		}
		if p.Sample(i) != time.Second {
			t.Fatal("Sample(i) wrong")
		}
	}
}

func TestPartialProfileFig11Setup(t *testing.T) {
	// Paper: delays on 12 of 24 workers.
	p := PartialProfile(24, 12, Exponential{Mean: 1500 * time.Millisecond}, 7)
	slow, fast := 0, 0
	for i := 0; i < 24; i++ {
		switch p.Model(i).(type) {
		case Exponential:
			slow++
		case None:
			fast++
		default:
			t.Fatalf("unexpected model %T", p.Model(i))
		}
	}
	if slow != 12 || fast != 12 {
		t.Fatalf("slow=%d fast=%d, want 12/12", slow, fast)
	}
}

func TestWithEnduringStraggler(t *testing.T) {
	p := NewProfile(4, Constant{D: time.Second}, 1)
	q := p.WithEnduringStraggler(2, 3.0, 2)
	if q.Sample(2) != 3*time.Second {
		t.Fatal("enduring straggler not scaled")
	}
	if q.Sample(0) != time.Second {
		t.Fatal("other workers must be unchanged")
	}
	// Original profile untouched.
	if p.Sample(2) != time.Second {
		t.Fatal("WithEnduringStraggler must not mutate the receiver")
	}
	// Out-of-range index is a no-op.
	r := p.WithEnduringStraggler(99, 3.0, 3)
	if r.Sample(0) != time.Second {
		t.Fatal("out-of-range enduring straggler must be a no-op")
	}
}

func TestNewProfileFromModelsCopies(t *testing.T) {
	models := []Model{None{}, Constant{D: time.Second}}
	p := NewProfileFromModels(models, 1)
	models[0] = Constant{D: 9 * time.Second}
	if p.Sample(0) != 0 {
		t.Fatal("NewProfileFromModels must copy the slice")
	}
}

func TestProfileDeterminism(t *testing.T) {
	a := NewProfile(8, Exponential{Mean: time.Second}, 99)
	b := NewProfile(8, Exponential{Mean: time.Second}, 99)
	for step := 0; step < 20; step++ {
		da, db := a.SampleAll(), b.SampleAll()
		for i := range da {
			if da[i] != db[i] {
				t.Fatalf("step %d worker %d: %v ≠ %v", step, i, da[i], db[i])
			}
		}
	}
}
