// Package straggler models worker slowness for the paper's experiments.
//
// The paper's Sec. VIII-B methodology: "simulate stragglers by adding an
// arbitrary delay before sending (coded) gradients to the master from 12 or
// 24 workers. The delay is generated randomly following an exponential
// distribution, based on the measurements from real cloud workloads."
// This package provides that exponential model plus the other delay shapes
// used in ablations (constant, uniform, shifted exponential, Bernoulli
// slowdown) and the "enduring straggler" the paper observes in Fig. 12(a).
//
// All delays are time.Duration values produced from a seeded RNG so whole
// experiments are reproducible.
package straggler

import (
	"fmt"
	"math/rand"
	"time"

	"isgc/internal/randsrc"
)

// Model produces a random delay sample for one worker in one step.
type Model interface {
	// Sample returns the delay added to the worker's step time.
	Sample(rng *rand.Rand) time.Duration
	// String describes the model for experiment logs.
	String() string
}

// None is the zero-delay model.
type None struct{}

// Sample implements Model.
func (None) Sample(*rand.Rand) time.Duration { return 0 }

// String implements Model.
func (None) String() string { return "none" }

// Constant always returns the same delay D.
type Constant struct {
	D time.Duration
}

// Sample implements Model.
func (c Constant) Sample(*rand.Rand) time.Duration { return c.D }

// String implements Model.
func (c Constant) String() string { return fmt.Sprintf("constant(%v)", c.D) }

// Uniform samples uniformly from [Min, Max].
type Uniform struct {
	Min, Max time.Duration
}

// Sample implements Model.
func (u Uniform) Sample(rng *rand.Rand) time.Duration {
	if u.Max <= u.Min {
		return u.Min
	}
	return u.Min + time.Duration(rng.Int63n(int64(u.Max-u.Min)+1))
}

// String implements Model.
func (u Uniform) String() string { return fmt.Sprintf("uniform[%v,%v]", u.Min, u.Max) }

// Exponential samples Exp(λ) with mean Mean — the paper's primary straggler
// model (Sec. VIII-B, after real cloud measurements).
type Exponential struct {
	Mean time.Duration
}

// Sample implements Model.
func (e Exponential) Sample(rng *rand.Rand) time.Duration {
	if e.Mean <= 0 {
		return 0
	}
	return time.Duration(rng.ExpFloat64() * float64(e.Mean))
}

// String implements Model.
func (e Exponential) String() string { return fmt.Sprintf("exp(mean=%v)", e.Mean) }

// ShiftedExponential samples Shift + Exp(mean=Mean): the classic model for
// compute time with a deterministic floor.
type ShiftedExponential struct {
	Shift time.Duration
	Mean  time.Duration
}

// Sample implements Model.
func (s ShiftedExponential) Sample(rng *rand.Rand) time.Duration {
	d := s.Shift
	if s.Mean > 0 {
		d += time.Duration(rng.ExpFloat64() * float64(s.Mean))
	}
	return d
}

// String implements Model.
func (s ShiftedExponential) String() string {
	return fmt.Sprintf("shiftedExp(shift=%v,mean=%v)", s.Shift, s.Mean)
}

// Bernoulli is slow with probability P (delay Slow), fast otherwise
// (delay Fast). Useful for "fail-slow with probability p" ablations.
type Bernoulli struct {
	P          float64
	Slow, Fast time.Duration
}

// Sample implements Model.
func (b Bernoulli) Sample(rng *rand.Rand) time.Duration {
	if rng.Float64() < b.P {
		return b.Slow
	}
	return b.Fast
}

// String implements Model.
func (b Bernoulli) String() string {
	return fmt.Sprintf("bernoulli(p=%.2f,slow=%v,fast=%v)", b.P, b.Slow, b.Fast)
}

// Scaled multiplies another model's samples by Factor — e.g. to express
// "this worker is 3× slower than the fleet".
type Scaled struct {
	Inner  Model
	Factor float64
}

// Sample implements Model.
func (s Scaled) Sample(rng *rand.Rand) time.Duration {
	return time.Duration(float64(s.Inner.Sample(rng)) * s.Factor)
}

// String implements Model.
func (s Scaled) String() string { return fmt.Sprintf("scaled(%.2f×%s)", s.Factor, s.Inner) }

// Profile assigns one delay model per worker, plus a shared seeded RNG.
// A Profile is the unit of straggler configuration an experiment passes to
// the simulator or engine. It is not safe for concurrent use.
type Profile struct {
	models []Model
	// src backs rng so a checkpoint can capture the delay stream's exact
	// position (seed + draws) and restore it bit-identically.
	src *randsrc.Source
	rng *rand.Rand
}

func newProfile(models []Model, seed int64) *Profile {
	src := randsrc.New(seed)
	return &Profile{models: models, src: src, rng: src.Rand()}
}

// NewProfile builds a profile where all n workers share the same model.
func NewProfile(n int, m Model, seed int64) *Profile {
	models := make([]Model, n)
	for i := range models {
		models[i] = m
	}
	return newProfile(models, seed)
}

// NewProfileFromModels builds a profile with per-worker models.
func NewProfileFromModels(models []Model, seed int64) *Profile {
	out := make([]Model, len(models))
	copy(out, models)
	return newProfile(out, seed)
}

// PartialProfile reproduces the paper's Fig. 11 setup: the first slowCount
// workers straggle following slow; the rest experience no added delay.
func PartialProfile(n, slowCount int, slow Model, seed int64) *Profile {
	models := make([]Model, n)
	for i := range models {
		if i < slowCount {
			models[i] = slow
		} else {
			models[i] = None{}
		}
	}
	return newProfile(models, seed)
}

// WithEnduringStraggler returns a copy of the profile where worker idx is
// consistently Factor× slower — the "enduring straggler" the paper credits
// for the >expected recovery at w=2 in Fig. 12(a).
func (p *Profile) WithEnduringStraggler(idx int, factor float64, seed int64) *Profile {
	models := make([]Model, len(p.models))
	copy(models, p.models)
	if idx >= 0 && idx < len(models) {
		models[idx] = Scaled{Inner: models[idx], Factor: factor}
	}
	return newProfile(models, seed)
}

// RandState returns the delay RNG's serializable position.
func (p *Profile) RandState() (seed int64, draws uint64) { return p.src.State() }

// RestoreRandState repositions the delay RNG to a checkpointed state.
func (p *Profile) RestoreRandState(seed int64, draws uint64) { p.src.Restore(seed, draws) }

// N returns the number of workers in the profile.
func (p *Profile) N() int { return len(p.models) }

// Model returns worker i's delay model.
func (p *Profile) Model(i int) Model { return p.models[i] }

// SampleAll draws one delay per worker for a single training step.
func (p *Profile) SampleAll() []time.Duration {
	out := make([]time.Duration, len(p.models))
	for i, m := range p.models {
		out[i] = m.Sample(p.rng)
	}
	return out
}

// Sample draws a delay for worker i.
func (p *Profile) Sample(i int) time.Duration {
	return p.models[i].Sample(p.rng)
}
