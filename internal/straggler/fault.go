package straggler

import (
	"fmt"
	"math/rand"
)

// FaultAction is what a faulty worker does at one training step. Delay
// models (Model) make workers slow; faults make them wrong or gone —
// the regime related work calls "partial recovery", where some machines
// never respond at all.
type FaultAction int

const (
	// FaultNone means the worker behaves normally this step.
	FaultNone FaultAction = iota
	// FaultDrop means the worker computes but never uploads this step's
	// gradient (a lossy link or a silently failed send).
	FaultDrop
	// FaultDisconnect means the worker tears down its connection at this
	// step and then rejoins (if reconnection is enabled).
	FaultDisconnect
	// FaultCrash means the worker dies permanently at this step.
	FaultCrash
)

// String names the action for logs.
func (a FaultAction) String() string {
	switch a {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDisconnect:
		return "disconnect"
	case FaultCrash:
		return "crash"
	default:
		return fmt.Sprintf("fault(%d)", int(a))
	}
}

// Fault decides, per training step, whether a worker misbehaves and how.
// Like Model it is sampled with the worker's seeded RNG so whole fault
// scenarios are reproducible. Implementations may be stateful; give each
// worker its own value.
type Fault interface {
	// At returns the worker's action for the given step.
	At(step int, rng *rand.Rand) FaultAction
	// String describes the fault for experiment logs.
	String() string
}

// CrashAt kills the worker permanently at step Step.
type CrashAt struct {
	Step int
}

// At implements Fault.
func (c CrashAt) At(step int, _ *rand.Rand) FaultAction {
	if step >= c.Step {
		return FaultCrash
	}
	return FaultNone
}

// String implements Fault.
func (c CrashAt) String() string { return fmt.Sprintf("crashAt(%d)", c.Step) }

// DisconnectAt tears the connection down at step Step (once); whether the
// worker comes back depends on the runtime's reconnect policy.
type DisconnectAt struct {
	Step int
}

// At implements Fault.
func (d DisconnectAt) At(step int, _ *rand.Rand) FaultAction {
	if step == d.Step {
		return FaultDisconnect
	}
	return FaultNone
}

// String implements Fault.
func (d DisconnectAt) String() string { return fmt.Sprintf("disconnectAt(%d)", d.Step) }

// DropWithProb drops each step's gradient independently with probability P.
type DropWithProb struct {
	P float64
}

// At implements Fault.
func (d DropWithProb) At(_ int, rng *rand.Rand) FaultAction {
	if rng.Float64() < d.P {
		return FaultDrop
	}
	return FaultNone
}

// String implements Fault.
func (d DropWithProb) String() string { return fmt.Sprintf("dropWithProb(%.2f)", d.P) }

// Compose combines faults: the most severe action any member returns wins
// (crash > disconnect > drop > none), so e.g. a lossy worker can also be
// scheduled to crash later.
type Compose []Fault

// At implements Fault.
func (cs Compose) At(step int, rng *rand.Rand) FaultAction {
	worst := FaultNone
	for _, f := range cs {
		if a := f.At(step, rng); a > worst {
			worst = a
		}
	}
	return worst
}

// String implements Fault.
func (cs Compose) String() string {
	s := "compose("
	for i, f := range cs {
		if i > 0 {
			s += ","
		}
		s += f.String()
	}
	return s + ")"
}
