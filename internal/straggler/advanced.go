package straggler

import (
	"fmt"
	"math/rand"
	"time"
)

// Replay cycles through a recorded sequence of delays — the trace-driven
// counterpart of the synthetic models, for experiments that want to feed
// measured per-step delays (the paper bases its exponential parameters
// "on the measurements from real cloud workloads"; with real measurements
// in hand one can replay them directly). Each Sample call consumes the
// next trace entry, wrapping around at the end.
//
// A Replay is stateful: give each worker its own Replay value (the Clone
// helper makes per-worker copies).
type Replay struct {
	trace []time.Duration
	pos   int
}

// NewReplay validates and wraps the trace.
func NewReplay(trace []time.Duration) (*Replay, error) {
	if len(trace) == 0 {
		return nil, fmt.Errorf("straggler: empty replay trace")
	}
	for i, d := range trace {
		if d < 0 {
			return nil, fmt.Errorf("straggler: negative delay %v at trace index %d", d, i)
		}
	}
	out := make([]time.Duration, len(trace))
	copy(out, trace)
	return &Replay{trace: out}, nil
}

// Clone returns an independent replay starting at the given offset into
// the trace (mod its length); use distinct offsets to de-synchronize
// workers sharing a trace.
func (r *Replay) Clone(offset int) *Replay {
	return &Replay{trace: r.trace, pos: ((offset % len(r.trace)) + len(r.trace)) % len(r.trace)}
}

// Sample implements Model: it returns the next trace entry.
func (r *Replay) Sample(*rand.Rand) time.Duration {
	d := r.trace[r.pos]
	r.pos = (r.pos + 1) % len(r.trace)
	return d
}

// String implements Model.
func (r *Replay) String() string {
	return fmt.Sprintf("replay(len=%d)", len(r.trace))
}

// Bursty is a two-state Markov-modulated delay model: a worker is either
// in the fast state (delay ~ Fast) or the slow state (delay ~ Slow), and
// flips state per step with probability PEnterSlow / PExitSlow. It
// captures the bursty, correlated slowness of real cloud workers that
// memoryless exponentials miss — the regime where the Fig. 12(a) enduring-
// straggler effect appears organically.
type Bursty struct {
	// Fast and Slow generate the per-step delay in each state.
	Fast, Slow Model
	// PEnterSlow is the per-step probability of a fast worker turning
	// slow; PExitSlow of a slow worker recovering.
	PEnterSlow, PExitSlow float64

	slow bool // current state; zero value starts fast
}

// NewBursty validates the parameters. Each worker needs its own *Bursty
// (the model is stateful).
func NewBursty(fast, slow Model, pEnter, pExit float64) (*Bursty, error) {
	if fast == nil || slow == nil {
		return nil, fmt.Errorf("straggler: bursty needs both state models")
	}
	if pEnter < 0 || pEnter > 1 || pExit < 0 || pExit > 1 {
		return nil, fmt.Errorf("straggler: bursty probabilities must be in [0,1], got enter=%v exit=%v", pEnter, pExit)
	}
	return &Bursty{Fast: fast, Slow: slow, PEnterSlow: pEnter, PExitSlow: pExit}, nil
}

// Sample implements Model: advance the Markov chain, then draw from the
// current state's model.
func (b *Bursty) Sample(rng *rand.Rand) time.Duration {
	if b.slow {
		if rng.Float64() < b.PExitSlow {
			b.slow = false
		}
	} else {
		if rng.Float64() < b.PEnterSlow {
			b.slow = true
		}
	}
	if b.slow {
		return b.Slow.Sample(rng)
	}
	return b.Fast.Sample(rng)
}

// InSlowState reports the chain's current state (mainly for tests).
func (b *Bursty) InSlowState() bool { return b.slow }

// String implements Model.
func (b *Bursty) String() string {
	return fmt.Sprintf("bursty(enter=%.2f,exit=%.2f,fast=%s,slow=%s)", b.PEnterSlow, b.PExitSlow, b.Fast, b.Slow)
}
