// Package simclock is the virtual-time cluster simulator behind the
// timing results (Fig. 11, Fig. 12(c), Fig. 12(d)). Instead of sleeping, it
// samples each worker's per-step finish time — compute (proportional to the
// number of stored partitions c, as in the paper's observation that GC's
// higher c costs compute), upload, plus the straggler delay — and reduces
// them with the master's gather policy:
//
//   - FastestW(w): the master proceeds when the w fastest workers have
//     arrived (the paper's ray.wait(w) — used by GC, IS-SGD and IS-GC);
//   - Deadline(d): the master accepts whatever arrived by the deadline
//     (the alternative policy sketched in Sec. IV).
//
// The simulated elapsed time per step is an order statistic of the n
// finish times, which preserves exactly the phenomenon the paper measures:
// who waits for whom, and for how long.
package simclock

import (
	"fmt"
	"sort"
	"time"

	"isgc/internal/bitset"
	"isgc/internal/straggler"
)

// Config describes one simulated cluster.
type Config struct {
	// N is the number of workers.
	N int
	// ComputePerPartition is the time to evaluate gradients on one
	// partition's mini-batch (a worker storing c partitions computes for
	// c × this value).
	ComputePerPartition time.Duration
	// PartitionsPerWorker is c.
	PartitionsPerWorker int
	// Upload is the time to ship the coded gradient to the master. A
	// worker uploads one coded vector regardless of c (IS-GC and GC both
	// sum c gradients into a single vector).
	Upload time.Duration
	// Profile adds the per-worker straggler delay; it must cover N
	// workers. Nil means no straggling.
	Profile *straggler.Profile
	// ComputeFactors optionally scales each worker's compute time
	// (heterogeneous fleets: factor 2.0 = a worker twice as slow at the
	// same partition count). Nil means a homogeneous fleet; otherwise the
	// slice must have N positive entries.
	ComputeFactors []float64
}

// Simulator samples per-step worker finish times. Not safe for concurrent
// use.
type Simulator struct {
	cfg Config
}

// New validates the configuration and returns a simulator.
func New(cfg Config) (*Simulator, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("simclock: need N > 0, got %d", cfg.N)
	}
	if cfg.PartitionsPerWorker <= 0 {
		return nil, fmt.Errorf("simclock: need PartitionsPerWorker > 0, got %d", cfg.PartitionsPerWorker)
	}
	if cfg.ComputePerPartition < 0 || cfg.Upload < 0 {
		return nil, fmt.Errorf("simclock: negative durations")
	}
	if cfg.Profile != nil && cfg.Profile.N() < cfg.N {
		return nil, fmt.Errorf("simclock: profile covers %d workers, need %d", cfg.Profile.N(), cfg.N)
	}
	if cfg.ComputeFactors != nil {
		if len(cfg.ComputeFactors) != cfg.N {
			return nil, fmt.Errorf("simclock: %d compute factors for %d workers", len(cfg.ComputeFactors), cfg.N)
		}
		for i, f := range cfg.ComputeFactors {
			if f <= 0 {
				return nil, fmt.Errorf("simclock: compute factor %v for worker %d must be positive", f, i)
			}
		}
	}
	return &Simulator{cfg: cfg}, nil
}

// Step samples the finish time of every worker for one training step.
func (s *Simulator) Step() []time.Duration {
	compute := time.Duration(s.cfg.PartitionsPerWorker) * s.cfg.ComputePerPartition
	out := make([]time.Duration, s.cfg.N)
	for i := range out {
		c := compute
		if s.cfg.ComputeFactors != nil {
			c = time.Duration(float64(compute) * s.cfg.ComputeFactors[i])
		}
		out[i] = c + s.cfg.Upload
		if s.cfg.Profile != nil {
			out[i] += s.cfg.Profile.Sample(i)
		}
	}
	return out
}

// FastestW returns the availability set of the w fastest workers and the
// elapsed step time (the w-th order statistic of finish times). Ties are
// broken by worker index, matching a deterministic ray.wait.
func FastestW(times []time.Duration, w int) (*bitset.Set, time.Duration, error) {
	n := len(times)
	if w <= 0 || w > n {
		return nil, 0, fmt.Errorf("simclock: need 0 < w ≤ %d, got %d", n, w)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return times[order[a]] < times[order[b]] })
	avail := bitset.New(n)
	for _, i := range order[:w] {
		avail.Add(i)
	}
	return avail, times[order[w-1]], nil
}

// Deadline returns the workers that finished by the deadline and the
// elapsed time (the deadline itself, or the last arrival when everyone
// beats it). The availability set may be empty.
func Deadline(times []time.Duration, d time.Duration) (*bitset.Set, time.Duration) {
	avail := bitset.New(len(times))
	latest := time.Duration(0)
	for i, t := range times {
		if t <= d {
			avail.Add(i)
			if t > latest {
				latest = t
			}
		}
	}
	if avail.Len() == len(times) {
		return avail, latest
	}
	return avail, d
}

// WaitAll returns the full availability set and the max finish time —
// synchronous SGD's gather.
func WaitAll(times []time.Duration) (*bitset.Set, time.Duration) {
	avail := bitset.New(len(times))
	latest := time.Duration(0)
	for i, t := range times {
		avail.Add(i)
		if t > latest {
			latest = t
		}
	}
	return avail, latest
}
