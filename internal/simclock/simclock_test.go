package simclock

import (
	"math"
	"testing"
	"time"

	"isgc/internal/straggler"
)

func TestNewValidation(t *testing.T) {
	cases := []Config{
		{N: 0, ComputePerPartition: time.Second, PartitionsPerWorker: 1},
		{N: 4, ComputePerPartition: time.Second, PartitionsPerWorker: 0},
		{N: 4, ComputePerPartition: -time.Second, PartitionsPerWorker: 1},
		{N: 4, ComputePerPartition: time.Second, PartitionsPerWorker: 1, Upload: -1},
		{N: 4, ComputePerPartition: time.Second, PartitionsPerWorker: 1,
			Profile: straggler.NewProfile(2, straggler.None{}, 1)},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestStepBaseTime(t *testing.T) {
	s, err := New(Config{
		N:                   3,
		ComputePerPartition: 100 * time.Millisecond,
		PartitionsPerWorker: 2,
		Upload:              50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range s.Step() {
		if d != 250*time.Millisecond {
			t.Fatalf("finish time %v, want 250ms (2·100 + 50)", d)
		}
	}
}

func TestStepAddsStragglerDelay(t *testing.T) {
	prof := straggler.PartialProfile(4, 2, straggler.Constant{D: time.Second}, 1)
	s, err := New(Config{
		N:                   4,
		ComputePerPartition: 100 * time.Millisecond,
		PartitionsPerWorker: 1,
		Profile:             prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	times := s.Step()
	if times[0] != 1100*time.Millisecond || times[1] != 1100*time.Millisecond {
		t.Fatalf("slow workers: %v", times[:2])
	}
	if times[2] != 100*time.Millisecond || times[3] != 100*time.Millisecond {
		t.Fatalf("fast workers: %v", times[2:])
	}
}

func TestComputeFactorsHeterogeneousFleet(t *testing.T) {
	s, err := New(Config{
		N:                   3,
		ComputePerPartition: 100 * time.Millisecond,
		PartitionsPerWorker: 2,
		Upload:              50 * time.Millisecond,
		ComputeFactors:      []float64{1, 2, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	times := s.Step()
	want := []time.Duration{250 * time.Millisecond, 450 * time.Millisecond, 150 * time.Millisecond}
	for i, w := range want {
		if times[i] != w {
			t.Fatalf("worker %d: %v, want %v", i, times[i], w)
		}
	}
}

func TestComputeFactorsValidation(t *testing.T) {
	base := Config{N: 2, ComputePerPartition: time.Second, PartitionsPerWorker: 1}
	bad := base
	bad.ComputeFactors = []float64{1} // wrong length
	if _, err := New(bad); err == nil {
		t.Error("wrong-length factors must error")
	}
	bad2 := base
	bad2.ComputeFactors = []float64{1, 0}
	if _, err := New(bad2); err == nil {
		t.Error("non-positive factor must error")
	}
	bad3 := base
	bad3.ComputeFactors = []float64{1, -2}
	if _, err := New(bad3); err == nil {
		t.Error("negative factor must error")
	}
}

func TestFastestW(t *testing.T) {
	times := []time.Duration{40, 10, 30, 20}
	avail, elapsed, err := FastestW(times, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !avail.Contains(1) || !avail.Contains(3) || avail.Len() != 2 {
		t.Fatalf("avail = %v, want {1, 3}", avail)
	}
	if elapsed != 20 {
		t.Fatalf("elapsed = %v, want 20", elapsed)
	}

	all, elapsedAll, err := FastestW(times, 4)
	if err != nil {
		t.Fatal(err)
	}
	if all.Len() != 4 || elapsedAll != 40 {
		t.Fatalf("w=n: avail %v elapsed %v", all, elapsedAll)
	}
}

func TestFastestWTieBreaking(t *testing.T) {
	times := []time.Duration{10, 10, 10, 10}
	avail, elapsed, err := FastestW(times, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !avail.Contains(0) || !avail.Contains(1) {
		t.Fatalf("ties must break by index: %v", avail)
	}
	if elapsed != 10 {
		t.Fatalf("elapsed = %v", elapsed)
	}
}

func TestFastestWErrors(t *testing.T) {
	times := []time.Duration{1, 2}
	if _, _, err := FastestW(times, 0); err == nil {
		t.Error("expected error for w=0")
	}
	if _, _, err := FastestW(times, 3); err == nil {
		t.Error("expected error for w>n")
	}
}

func TestDeadline(t *testing.T) {
	times := []time.Duration{5, 50, 15, 100}
	avail, elapsed := Deadline(times, 20)
	if !avail.Contains(0) || !avail.Contains(2) || avail.Len() != 2 {
		t.Fatalf("avail = %v", avail)
	}
	if elapsed != 20 {
		t.Fatalf("elapsed = %v, want the deadline", elapsed)
	}
	// Everyone beats the deadline: elapsed is the last arrival.
	avail2, elapsed2 := Deadline(times, 200)
	if avail2.Len() != 4 || elapsed2 != 100 {
		t.Fatalf("avail %v elapsed %v", avail2, elapsed2)
	}
	// Nobody makes it.
	avail3, elapsed3 := Deadline(times, 1)
	if !avail3.Empty() || elapsed3 != 1 {
		t.Fatalf("avail %v elapsed %v", avail3, elapsed3)
	}
}

func TestWaitAll(t *testing.T) {
	times := []time.Duration{5, 50, 15}
	avail, elapsed := WaitAll(times)
	if avail.Len() != 3 || elapsed != 50 {
		t.Fatalf("avail %v elapsed %v", avail, elapsed)
	}
}

// Statistical sanity: with exponential stragglers on half the fleet, the
// expected FastestW(w=n/2) step time must be far below WaitAll — the core
// effect behind Fig. 11.
func TestFastestWBeatsWaitAllUnderStragglers(t *testing.T) {
	prof := straggler.PartialProfile(24, 12, straggler.Exponential{Mean: 1500 * time.Millisecond}, 3)
	s, err := New(Config{
		N:                   24,
		ComputePerPartition: 50 * time.Millisecond,
		PartitionsPerWorker: 2,
		Upload:              10 * time.Millisecond,
		Profile:             prof,
	})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 2000
	var sumFast, sumAll float64
	for i := 0; i < steps; i++ {
		times := s.Step()
		_, ef, err := FastestW(times, 12)
		if err != nil {
			t.Fatal(err)
		}
		_, ea := WaitAll(times)
		sumFast += float64(ef)
		sumAll += float64(ea)
	}
	if !(sumFast < 0.5*sumAll) {
		t.Fatalf("fastest-12 mean %v not ≪ wait-all mean %v",
			time.Duration(sumFast/steps), time.Duration(sumAll/steps))
	}
	// The 12 non-straggling workers finish in base time, so the fastest-12
	// gather should be very close to base (160ms).
	meanFast := time.Duration(sumFast / steps)
	if meanFast > 200*time.Millisecond {
		t.Fatalf("fastest-12 mean %v, want ≈160ms", meanFast)
	}
}

// Order statistics: E[max of n Exp(mean)] ≈ mean·H_n; check within 10%.
func TestExponentialMaxOrderStatistic(t *testing.T) {
	const n = 8
	prof := straggler.NewProfile(n, straggler.Exponential{Mean: time.Second}, 7)
	s, err := New(Config{N: n, ComputePerPartition: time.Nanosecond, PartitionsPerWorker: 1, Profile: prof})
	if err != nil {
		t.Fatal(err)
	}
	const steps = 60000
	var sum float64
	for i := 0; i < steps; i++ {
		_, e := WaitAll(s.Step())
		sum += float64(e)
	}
	mean := sum / steps
	hn := 0.0
	for k := 1; k <= n; k++ {
		hn += 1 / float64(k)
	}
	want := hn * float64(time.Second)
	if math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("E[max] = %v, want ≈ %v", time.Duration(mean), time.Duration(want))
	}
}
