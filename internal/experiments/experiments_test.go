package experiments

import (
	"strings"
	"testing"
	"time"
)

// findFig11 returns the mean step time for (scheme, slowCount).
func findFig11(rows []Fig11Row, scheme string, slow int) (time.Duration, bool) {
	for _, r := range rows {
		if r.Scheme == scheme && r.SlowCount == slow {
			return r.MeanStep, true
		}
	}
	return 0, false
}

func TestFig11Shape(t *testing.T) {
	cfg := DefaultFig11a()
	cfg.Steps = 200 // keep the test fast
	rows, tab, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(rows) {
		t.Fatal("table rows mismatch")
	}
	for _, slow := range cfg.SlowCounts {
		sync, ok := findFig11(rows, "Sync-SGD", slow)
		if !ok {
			t.Fatal("missing Sync-SGD row")
		}
		gcRow, ok := findFig11(rows, "GC(c=2)", slow)
		if !ok {
			t.Fatal("missing GC row")
		}
		isgc12, ok := findFig11(rows, "IS-GC(w=12)", slow)
		if !ok {
			t.Fatal("missing IS-GC(w=12) row")
		}
		issgd12, ok := findFig11(rows, "IS-SGD(w=12)", slow)
		if !ok {
			t.Fatal("missing IS-SGD(w=12) row")
		}
		// Paper: "synchronous SGD and GC suffer significantly"; IS-GC at
		// w=12 is dramatically faster (up to 74.9% in the paper).
		if !(isgc12 < sync/2) {
			t.Errorf("slow=%d: IS-GC(w=12) %v not ≪ Sync-SGD %v", slow, isgc12, sync)
		}
		if !(isgc12 < gcRow) {
			t.Errorf("slow=%d: IS-GC(w=12) %v not < GC %v", slow, isgc12, gcRow)
		}
		// IS-GC pays a small compute premium over IS-SGD (higher c).
		if !(isgc12 >= issgd12) {
			t.Errorf("slow=%d: IS-GC %v unexpectedly beats IS-SGD %v per step", slow, isgc12, issgd12)
		}
	}

	// Paper: "GC consumes much more time than synchronous SGD due to a
	// higher c" — holds when only part of the fleet straggles slowly
	// enough; with 12 idle-fast workers GC(c=2) must wait for 23 workers
	// including stragglers, while sync waits for all 24: check GC ≥ sync
	// is NOT required, but GC must at least pay the compute premium at
	// slow=24... the robust claim is the IS-side, checked above. Here we
	// check GC is never faster than IS-GC(w=18).
	for _, slow := range cfg.SlowCounts {
		gcRow, _ := findFig11(rows, "GC(c=2)", slow)
		isgc18, ok := findFig11(rows, "IS-GC(w=18)", slow)
		if !ok {
			t.Fatal("missing IS-GC(w=18)")
		}
		if !(isgc18 <= gcRow) {
			t.Errorf("slow=%d: IS-GC(w=18) %v not ≤ GC (waits 23) %v", slow, isgc18, gcRow)
		}
	}
}

func TestFig11MoreDelayHurtsMore(t *testing.T) {
	a := DefaultFig11a()
	a.Steps = 150
	b := DefaultFig11b()
	b.Steps = 150
	rowsA, _, err := Fig11(a)
	if err != nil {
		t.Fatal(err)
	}
	rowsB, _, err := Fig11(b)
	if err != nil {
		t.Fatal(err)
	}
	syncA, _ := findFig11(rowsA, "Sync-SGD", 24)
	syncB, _ := findFig11(rowsB, "Sync-SGD", 24)
	if !(syncB > syncA) {
		t.Errorf("doubling delay mean must slow Sync-SGD: %v vs %v", syncA, syncB)
	}
}

func TestFig11InvalidConfig(t *testing.T) {
	if _, _, err := Fig11(Fig11Config{}); err == nil {
		t.Fatal("expected error for zero config")
	}
}

func TestFig12Shape(t *testing.T) {
	// Use the defaults verbatim: they are exactly what EXPERIMENTS.md
	// reports, and the shape assertions below are the reproduction claims.
	cfg := DefaultFig12()
	rows, tables, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("want 4 panel tables, got %d", len(tables))
	}

	// Panel (a): recovery grows with w; IS-GC ≥ IS-SGD at every w;
	// full recovery at w ≥ n-c+1 = 3; FR ≥ CR at w=2.
	for _, scheme := range []string{"IS-SGD", "IS-GC-FR", "IS-GC-CR"} {
		prev := -1.0
		for w := 1; w <= 4; w++ {
			r := FindRow(rows, scheme, w)
			if r == nil {
				t.Fatalf("missing row %s w=%d", scheme, w)
			}
			if r.Recovered < prev-1e-9 {
				t.Errorf("%s: recovery not monotone in w (w=%d: %v after %v)", scheme, w, r.Recovered, prev)
			}
			prev = r.Recovered
		}
	}
	for w := 1; w <= 4; w++ {
		is := FindRow(rows, "IS-SGD", w).Recovered
		fr := FindRow(rows, "IS-GC-FR", w).Recovered
		cr := FindRow(rows, "IS-GC-CR", w).Recovered
		if fr < is-1e-9 || cr < is-1e-9 {
			t.Errorf("w=%d: IS-GC (FR %v, CR %v) must recover ≥ IS-SGD (%v)", w, fr, cr, is)
		}
	}
	if fr3 := FindRow(rows, "IS-GC-FR", 3).Recovered; fr3 != 1.0 {
		t.Errorf("IS-GC-FR at w=3 recovered %v, want 1.0", fr3)
	}
	if cr3 := FindRow(rows, "IS-GC-CR", 3).Recovered; cr3 != 1.0 {
		t.Errorf("IS-GC-CR at w=3 recovered %v, want 1.0", cr3)
	}
	fr2 := FindRow(rows, "IS-GC-FR", 2).Recovered
	cr2 := FindRow(rows, "IS-GC-CR", 2).Recovered
	if fr2 < cr2-1e-9 {
		t.Errorf("w=2: FR (%v) must recover ≥ CR (%v) — Theorem 4", fr2, cr2)
	}

	// Panel (b): more recovery ⇒ fewer steps. IS-GC-FR at w=2 must need
	// no more steps than IS-SGD at w=2.
	isSteps := FindRow(rows, "IS-SGD", 2).Steps
	frSteps := FindRow(rows, "IS-GC-FR", 2).Steps
	if frSteps > isSteps {
		t.Errorf("w=2: IS-GC-FR steps %v > IS-SGD steps %v", frSteps, isSteps)
	}
	// Full-recovery runs achieve the minimum step count.
	syncSteps := FindRow(rows, "Sync-SGD", 4).Steps
	fr4Steps := FindRow(rows, "IS-GC-FR", 4).Steps
	if fr4Steps > syncSteps+1 {
		t.Errorf("IS-GC-FR at w=4 (%v steps) should match Sync-SGD (%v)", fr4Steps, syncSteps)
	}

	// Panel (c): step time grows with w for the flexible schemes, and
	// IS-GC is never faster per step than IS-SGD at the same w.
	for _, scheme := range []string{"IS-SGD", "IS-GC-FR", "IS-GC-CR"} {
		t1 := FindRow(rows, scheme, 1).StepTime
		t4 := FindRow(rows, scheme, 4).StepTime
		if !(t4 > t1) {
			t.Errorf("%s: step time must grow with w (%v → %v)", scheme, t1, t4)
		}
	}
	for w := 1; w <= 4; w++ {
		is := FindRow(rows, "IS-SGD", w).StepTime
		fr := FindRow(rows, "IS-GC-FR", w).StepTime
		if fr < is {
			t.Errorf("w=%d: IS-GC-FR step time %v < IS-SGD %v", w, fr, is)
		}
	}

	// Panel (d): every converged IS-GC total time must beat Sync-SGD's
	// (the whole point of straggler mitigation), and IS-GC at w=2 beats
	// IS-SGD at w=2 (better recovery compensates the per-step premium).
	syncTotal := FindRow(rows, "Sync-SGD", 4).TotalTime
	fr2Total := FindRow(rows, "IS-GC-FR", 2).TotalTime
	if !(fr2Total < syncTotal) {
		t.Errorf("IS-GC-FR w=2 total %v not < Sync-SGD %v", fr2Total, syncTotal)
	}
	is2Total := FindRow(rows, "IS-SGD", 2).TotalTime
	if !(fr2Total < is2Total) {
		t.Errorf("IS-GC-FR w=2 total %v not < IS-SGD w=2 %v", fr2Total, is2Total)
	}
}

func TestFig12InvalidConfig(t *testing.T) {
	if _, _, err := Fig12(Fig12Config{}); err == nil {
		t.Fatal("expected error for zero config")
	}
	bad := DefaultFig12()
	bad.Workload = "resnet18"
	if _, _, err := Fig12(bad); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

// Robustness: the Fig. 12(a) recovery shape is model-independent (it is a
// decoder property), so it must survive switching to the MLP workload,
// and training must still converge monotonically enough to rank schemes.
func TestFig12MLPWorkload(t *testing.T) {
	cfg := DefaultFig12()
	cfg.Workload = "mlp"
	cfg.Hidden = 6
	cfg.Trials = 2
	cfg.MaxSteps = 400
	cfg.LossThreshold = 0.45 // the tiny MLP plateaus higher than softmax
	rows, _, err := Fig12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for w := 1; w <= 4; w++ {
		is := FindRow(rows, "IS-SGD", w)
		fr := FindRow(rows, "IS-GC-FR", w)
		if is == nil || fr == nil {
			t.Fatalf("missing rows at w=%d", w)
		}
		if fr.Recovered < is.Recovered-1e-9 {
			t.Errorf("w=%d: MLP run broke the recovery ordering (%v < %v)", w, fr.Recovered, is.Recovered)
		}
	}
	if r := FindRow(rows, "IS-GC-FR", 3); r.Recovered != 1.0 {
		t.Errorf("full recovery at w=3 must be workload-independent, got %v", r.Recovered)
	}
}

func TestFig13Shape(t *testing.T) {
	cfg := DefaultFig13()
	cfg.Trials = 2
	cfg.LossSteps = 80
	rows, curves, tables, err := Fig13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("want 2 tables, got %d", len(tables))
	}
	// Panel (a): recovery non-decreasing in c1 at every w (Theorem 7:
	// larger c1 removes conflict edges).
	for _, w := range cfg.Ws {
		prev := -1.0
		for _, c1 := range cfg.C1s {
			r := FindFig13Row(rows, c1, w)
			if r == nil {
				t.Fatalf("missing row c1=%d w=%d", c1, w)
			}
			if r.Recovered < prev-0.02 { // small trials tolerance
				t.Errorf("w=%d: recovery dropped at c1=%d: %v after %v", w, c1, r.Recovered, prev)
			}
			prev = r.Recovered
		}
		// Endpoints: c1=0 is CR, c1=3 is FR-equivalent; FR must be ≥ CR.
		cr := FindFig13Row(rows, 0, w).Recovered
		fr := FindFig13Row(rows, 3, w).Recovered
		if fr < cr-1e-9 {
			t.Errorf("w=%d: FR-end %v < CR-end %v", w, fr, cr)
		}
	}
	// With w=6 ≥ n-c+1=5 everything recovers fully.
	for _, c1 := range cfg.C1s {
		if r := FindFig13Row(rows, c1, 6); r.Recovered != 1.0 {
			t.Errorf("c1=%d w=6: recovered %v, want 1.0", c1, r.Recovered)
		}
	}
	// Panel (b): all curves must descend; the FR-like curve (c1=3) ends
	// at a loss no worse than the CR curve (c1=0), as in the paper.
	if len(curves) != len(cfg.C1s) {
		t.Fatalf("want %d curves", len(cfg.C1s))
	}
	var lossCR, lossFR float64
	for _, c := range curves {
		first, last := c.Losses[0], c.Losses[len(c.Losses)-1]
		if !(last < first) {
			t.Errorf("c1=%d: loss did not decrease (%v → %v)", c.C1, first, last)
		}
		switch c.C1 {
		case 0:
			lossCR = last
		case 3:
			lossFR = last
		}
	}
	if lossFR > lossCR*1.15 {
		t.Errorf("final loss FR-like %v much worse than CR %v", lossFR, lossCR)
	}
}

func TestFig13InvalidConfig(t *testing.T) {
	if _, _, _, err := Fig13(Fig13Config{}); err == nil {
		t.Fatal("expected error for zero config")
	}
}

func TestTheoryRunner(t *testing.T) {
	cfg := DefaultTheory()
	cfg.Trials = 60
	cfg.Steps = 60
	rows, tab, err := Theory(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != cfg.N {
		t.Fatalf("rows = %d, want %d", len(rows), cfg.N)
	}
	for i, r := range rows {
		if r.Violations != 0 {
			t.Errorf("recovery %d: %d descent violations", r.Recovered, r.Violations)
		}
		if i > 0 && r.MSE > rows[i-1].MSE*1.1 {
			t.Errorf("MSE not decreasing at recovery %d: %v after %v", r.Recovered, r.MSE, rows[i-1].MSE)
		}
	}
	if last := rows[len(rows)-1]; last.MSE > 1e-15 {
		t.Errorf("full recovery MSE %v, want ≈0", last.MSE)
	}
	if !strings.Contains(tab.String(), "grad_mse") {
		t.Error("table header missing")
	}
}

func TestTheoryInvalidConfig(t *testing.T) {
	if _, _, err := Theory(TheoryConfig{}); err == nil {
		t.Fatal("expected error for zero config")
	}
	bad := DefaultTheory()
	bad.Samples = 241 // not divisible by N
	if _, _, err := Theory(bad); err == nil {
		t.Fatal("expected divisibility error")
	}
}

func TestBoundsAllWithinTheorems(t *testing.T) {
	cfg := DefaultBounds()
	cfg.Trials = 150
	rows, tab, err := Bounds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != len(rows) {
		t.Fatal("table rows mismatch")
	}
	schemes := map[string]bool{}
	for _, r := range rows {
		schemes[r.Scheme] = true
		if !r.WithinBounds {
			t.Errorf("%s w=%d: α ∈ [%d,%d] outside bounds [%d,%d]",
				r.Scheme, r.W, r.MinAlpha, r.MaxAlpha, r.LowerBound, r.UpperBound)
		}
		if r.MinAlpha > r.MaxAlpha {
			t.Errorf("%s w=%d: min > max", r.Scheme, r.W)
		}
	}
	for _, want := range []string{"FR", "CR", "HR(c1=1)", "HR(c1=2)", "HR(c1=3)"} {
		if !schemes[want] {
			t.Errorf("missing scheme %s", want)
		}
	}
	// Theorem 4/7 ordering on mean α: FR ≥ HR(c1) ≥ HR(c1-1) ≥ CR at
	// every w.
	meanOf := func(scheme string, w int) float64 {
		for _, r := range rows {
			if r.Scheme == scheme && r.W == w {
				return r.MeanAlpha
			}
		}
		t.Fatalf("missing %s w=%d", scheme, w)
		return 0
	}
	order := []string{"FR", "HR(c1=3)", "HR(c1=2)", "HR(c1=1)", "CR"}
	for w := 1; w <= cfg.N; w++ {
		for i := 1; i < len(order); i++ {
			hi, lo := meanOf(order[i-1], w), meanOf(order[i], w)
			if lo > hi+1e-9 {
				t.Errorf("w=%d: mean α(%s)=%v > mean α(%s)=%v violates the chain",
					w, order[i], lo, order[i-1], hi)
			}
		}
	}
}

func TestBoundsInvalidConfig(t *testing.T) {
	if _, _, err := Bounds(BoundsConfig{}); err == nil {
		t.Fatal("expected error")
	}
}

func TestTablesRender(t *testing.T) {
	cfg := DefaultBounds()
	cfg.Trials = 20
	_, tab, err := Bounds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	if !strings.Contains(s, "Theorems 10-11") || !strings.Contains(s, "alpha_mean") {
		t.Errorf("table rendering incomplete:\n%s", s)
	}
}
