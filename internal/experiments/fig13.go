package experiments

import (
	"fmt"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// Fig13Config parameterizes the HR trade-off study of Fig. 13:
// HR(8, c1, 4-c1) with c = 4, g = 2 and n = 8 workers; c1 = 0 is CR(8, 4),
// c1 ∈ {3, 4} is FR-equivalent.
type Fig13Config struct {
	// N, C, G fix the HR family (paper: 8, 4, 2).
	N, C, G int
	// C1s lists the c1 values swept (paper: 0..3).
	C1s []int
	// Ws lists the fastest-w values for the recovery panel (a).
	Ws []int
	// LossW is the w used for the loss-curve panel (b) (paper: 2).
	LossW int
	// LossSteps is the number of steps recorded for panel (b).
	LossSteps int
	// Dataset/optimizer knobs, as in Fig12Config.
	Samples, Features, Classes int
	Separation                 float64
	BatchSize                  int
	LearningRate               float64
	DelayMean                  time.Duration
	Trials                     int
	Seed                       int64
	// ComputePar sizes the engine's gradient compute pool (0 keeps the
	// sequential default); bit-identical either way.
	ComputePar int
}

// DefaultFig13 returns the paper's configuration scaled to the synthetic
// workload.
func DefaultFig13() Fig13Config {
	return Fig13Config{
		N: 8, C: 4, G: 2,
		C1s:       []int{0, 1, 2, 3},
		Ws:        []int{2, 4, 6},
		LossW:     2,
		LossSteps: 150,
		Samples:   240, Features: 6, Classes: 3, Separation: 1.0,
		BatchSize:    2,
		LearningRate: 0.2,
		DelayMean:    500 * time.Millisecond,
		Trials:       3,
		Seed:         11,
	}
}

// Fig13Row is one (c1, w) recovery point of panel (a).
type Fig13Row struct {
	C1        int
	W         int
	Recovered float64
}

// Fig13LossCurve is panel (b): the loss series at w = LossW for one c1.
type Fig13LossCurve struct {
	C1     int
	Losses []float64
}

// hrStrategy builds the IS-GC strategy for HR(n, c1, c-c1) — with the CR
// degenerate case at c1 = 0 (placement.HR already collapses it).
func hrStrategy(n, c1, c, g int, seed int64) (engine.Strategy, error) {
	p, err := placement.HR(n, c1, c-c1, g)
	if err != nil {
		return nil, err
	}
	return engine.NewISGC(isgc.New(p, seed))
}

// Fig13 reproduces both panels: recovery vs c1 (a) and training-loss curves
// at w = LossW (b).
func Fig13(cfg Fig13Config) ([]Fig13Row, []Fig13LossCurve, []*trace.Table, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 || len(cfg.C1s) == 0 {
		return nil, nil, nil, fmt.Errorf("experiments: invalid Fig13 config %+v", cfg)
	}
	data, err := dataset.SyntheticClusters(cfg.Samples, cfg.Features, cfg.Classes, cfg.Separation, cfg.Seed)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("experiments: %w", err)
	}
	mdl := model.SoftmaxRegression{Features: cfg.Features, Classes: cfg.Classes}

	train := func(c1, w, steps int, trialSeed int64) (*engine.Result, error) {
		st, err := hrStrategy(cfg.N, c1, cfg.C, cfg.G, trialSeed)
		if err != nil {
			return nil, err
		}
		return engine.Train(engine.Config{
			Strategy:     st,
			Model:        mdl,
			Data:         data,
			BatchSize:    cfg.BatchSize,
			LearningRate: cfg.LearningRate,
			W:            w,
			MaxSteps:     steps,
			ComputePar:   cfg.ComputePar,
			Profile:      straggler.NewProfile(cfg.N, straggler.Exponential{Mean: cfg.DelayMean}, trialSeed+900),
			// Shared across c1 values within a trial so the sweep is a
			// controlled comparison (paper methodology).
			Seed: trialSeed,
		})
	}

	// Panel (a): recovery vs c1 for each w.
	var rows []Fig13Row
	for _, c1 := range cfg.C1s {
		for _, w := range cfg.Ws {
			sum := 0.0
			for trial := 0; trial < cfg.Trials; trial++ {
				res, err := train(c1, w, 60, cfg.Seed+int64(trial)*211)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("experiments: fig13 c1=%d w=%d: %w", c1, w, err)
				}
				sum += res.Run.MeanRecovered()
			}
			rows = append(rows, Fig13Row{C1: c1, W: w, Recovered: sum / float64(cfg.Trials)})
		}
	}

	// Panel (b): loss curves at w = LossW (single trial per c1; the curves
	// share seeds so they are directly comparable, as in the paper).
	var curves []Fig13LossCurve
	for _, c1 := range cfg.C1s {
		res, err := train(c1, cfg.LossW, cfg.LossSteps, cfg.Seed)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("experiments: fig13 loss c1=%d: %w", c1, err)
		}
		curves = append(curves, Fig13LossCurve{C1: c1, Losses: res.Run.Losses()})
	}

	ta := trace.NewTable(
		fmt.Sprintf("Fig. 13(a): recovered fraction vs c1 for HR(%d, c1, %d-c1), g=%d", cfg.N, cfg.C, cfg.G),
		"c1", "w", "recovered_fraction")
	for _, r := range rows {
		ta.AddRow(r.C1, r.W, r.Recovered)
	}
	tb := trace.NewTable(
		fmt.Sprintf("Fig. 13(b): training loss at w=%d (every 10th step)", cfg.LossW),
		append([]string{"step"}, c1Headers(cfg.C1s)...)...)
	for s := 0; s < cfg.LossSteps; s += 10 {
		cells := make([]interface{}, 0, len(curves)+1)
		cells = append(cells, s)
		for _, c := range curves {
			if s < len(c.Losses) {
				cells = append(cells, c.Losses[s])
			} else {
				cells = append(cells, "-")
			}
		}
		tb.AddRow(cells...)
	}
	return rows, curves, []*trace.Table{ta, tb}, nil
}

func c1Headers(c1s []int) []string {
	out := make([]string, len(c1s))
	for i, c1 := range c1s {
		out[i] = fmt.Sprintf("loss(c1=%d)", c1)
	}
	return out
}

// FindFig13Row returns the row for (c1, w), or nil.
func FindFig13Row(rows []Fig13Row, c1, w int) *Fig13Row {
	for i := range rows {
		if rows[i].C1 == c1 && rows[i].W == w {
			return &rows[i]
		}
	}
	return nil
}
