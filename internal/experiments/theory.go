package experiments

import (
	"fmt"

	"isgc/internal/analysis"
	"isgc/internal/dataset"
	"isgc/internal/model"
	"isgc/internal/trace"
)

// TheoryConfig parameterizes the Theorem 12 validation run and the
// gradient-variance profile (the quantitative mechanism behind
// Fig. 12(b)).
type TheoryConfig struct {
	// N is the partition count; Samples the dataset size (divisible by N).
	N, Samples int
	// Features is the regression dimensionality.
	Features int
	// Eta is the SGD step size for the descent check.
	Eta float64
	// Steps is the number of descent steps checked per recovery level.
	Steps int
	// Trials is the number of draws for the variance profile.
	Trials int
	// Seed drives everything.
	Seed int64
}

// DefaultTheory returns a configuration that runs in well under a second.
func DefaultTheory() TheoryConfig {
	return TheoryConfig{
		N: 4, Samples: 240, Features: 4,
		Eta:    0.05,
		Steps:  120,
		Trials: 150,
		Seed:   5,
	}
}

// TheoryRow is one recovery level of the Theorem 12 table.
type TheoryRow struct {
	Recovered  int
	Violations int
	FinalLoss  float64
	MSE        float64
}

// Theory validates the Theorem 12 descent inequality at every recovery
// level and reports the matching gradient-variance profile.
func Theory(cfg TheoryConfig) ([]TheoryRow, *trace.Table, error) {
	if cfg.N <= 0 || cfg.Steps <= 0 || cfg.Trials <= 0 {
		return nil, nil, fmt.Errorf("experiments: invalid theory config %+v", cfg)
	}
	if cfg.Samples%cfg.N != 0 {
		return nil, nil, fmt.Errorf("experiments: samples %d not divisible by n=%d", cfg.Samples, cfg.N)
	}
	d, _, err := dataset.SyntheticLinear(cfg.Samples, cfg.Features, 0.1, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	data := make([]dataset.Sample, d.Len())
	for i := range data {
		data[i] = d.At(i)
	}
	size := cfg.Samples / cfg.N
	parts := make([][]dataset.Sample, cfg.N)
	for i := range parts {
		parts[i] = data[i*size : (i+1)*size]
	}
	mdl := model.LinearRegression{Features: cfg.Features}

	mses, err := analysis.VarianceProfile(mdl, parts, cfg.Trials, 0.5, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}

	var rows []TheoryRow
	for k := 1; k <= cfg.N; k++ {
		rep, err := analysis.CheckDescent(mdl, data, cfg.N, k, cfg.Eta, cfg.Steps, 1.5, cfg.Seed)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, TheoryRow{
			Recovered:  k,
			Violations: rep.Violations,
			FinalLoss:  rep.FinalLoss,
			MSE:        mses[k-1],
		})
	}
	tab := trace.NewTable(
		fmt.Sprintf("Theorem 12: descent inequality + gradient variance (n=%d, η=%v, %d steps)", cfg.N, cfg.Eta, cfg.Steps),
		"recovered_partitions", "descent_violations", "final_loss", "grad_mse")
	for _, r := range rows {
		tab.AddRow(r.Recovered, r.Violations, r.FinalLoss, r.MSE)
	}
	return rows, tab, nil
}
