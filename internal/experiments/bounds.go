package experiments

import (
	"fmt"
	"math/rand"

	"isgc/internal/bitset"
	"isgc/internal/graph"
	"isgc/internal/placement"
	"isgc/internal/trace"
)

// BoundsConfig parameterizes the empirical validation of Theorems 10–11
// (α(G[W']) bounds) and the FR ≥ HR ≥ CR recovery ordering of
// Theorems 4 and 7 (Sec. V-C and VI).
type BoundsConfig struct {
	// N, C fix the FR/CR comparison; G additionally fixes the HR family
	// (requires n0 = n/g = c for the paper's bounds to apply to HR).
	N, C, G int
	// Trials is the number of random availability sets per w.
	Trials int
	// Seed drives sampling.
	Seed int64
}

// DefaultBounds returns the Fig. 13 family: n=8, c=4, g=2.
func DefaultBounds() BoundsConfig {
	return BoundsConfig{N: 8, C: 4, G: 2, Trials: 300, Seed: 3}
}

// BoundsRow summarizes one (scheme, w) cell: the empirical min/mean/max of
// α(G[W']) over uniform random w-subsets W', next to the theoretical
// bounds.
type BoundsRow struct {
	Scheme                 string
	W                      int
	LowerBound, UpperBound int
	MinAlpha, MaxAlpha     int
	MeanAlpha              float64
	WithinBounds           bool
}

// Bounds computes the table for FR(n, c), every HR(n, c1, c-c1) with
// n0 = c, and CR(n, c).
func Bounds(cfg BoundsConfig) ([]BoundsRow, *trace.Table, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 {
		return nil, nil, fmt.Errorf("experiments: invalid Bounds config %+v", cfg)
	}
	type entry struct {
		name string
		p    *placement.Placement
	}
	var entries []entry
	fr, err := placement.FR(cfg.N, cfg.C)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	entries = append(entries, entry{"FR", fr})
	for c1 := cfg.C - 1; c1 >= 1; c1-- {
		p, err := placement.HR(cfg.N, c1, cfg.C-c1, cfg.G)
		if err != nil {
			continue // parameter combination outside the Theorem 6 range
		}
		entries = append(entries, entry{fmt.Sprintf("HR(c1=%d)", c1), p})
	}
	cr, err := placement.CR(cfg.N, cfg.C)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	entries = append(entries, entry{"CR", cr})

	// Draw the availability sets once per (w, trial) and reuse them across
	// schemes: the Theorem 4/7 edge-nesting then implies the α ordering
	// pointwise, so the reported means are exactly comparable.
	rng := rand.New(rand.NewSource(cfg.Seed))
	avails := make([][]*bitset.Set, cfg.N+1)
	for w := 1; w <= cfg.N; w++ {
		avails[w] = make([]*bitset.Set, cfg.Trials)
		for trial := range avails[w] {
			perm := rng.Perm(cfg.N)
			avails[w][trial] = bitset.FromSlice(perm[:w])
		}
	}

	var rows []BoundsRow
	for _, e := range entries {
		for w := 1; w <= cfg.N; w++ {
			lo, hi := e.p.AlphaBounds(w)
			row := BoundsRow{
				Scheme: e.name, W: w,
				LowerBound: lo, UpperBound: hi,
				MinAlpha: cfg.N + 1, MaxAlpha: -1,
				WithinBounds: true,
			}
			sum := 0
			for _, avail := range avails[w] {
				alpha := graph.IndependenceNumber(e.p.ConflictGraph(), avail)
				sum += alpha
				if alpha < row.MinAlpha {
					row.MinAlpha = alpha
				}
				if alpha > row.MaxAlpha {
					row.MaxAlpha = alpha
				}
			}
			row.MeanAlpha = float64(sum) / float64(cfg.Trials)
			row.WithinBounds = row.MinAlpha >= lo && row.MaxAlpha <= hi
			rows = append(rows, row)
		}
	}

	tab := trace.NewTable(
		fmt.Sprintf("Theorems 10-11: α(G[W']) bounds, n=%d c=%d g=%d (%d trials/cell)", cfg.N, cfg.C, cfg.G, cfg.Trials),
		"scheme", "w", "bound_lo", "alpha_min", "alpha_mean", "alpha_max", "bound_hi", "ok")
	for _, r := range rows {
		tab.AddRow(r.Scheme, r.W, r.LowerBound, r.MinAlpha, r.MeanAlpha, r.MaxAlpha, r.UpperBound, r.WithinBounds)
	}
	return rows, tab, nil
}
