package experiments

import (
	"fmt"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// HeterogeneityConfig parameterizes the heterogeneous-fleet study: beyond
// the paper's random exponential delays, real fleets have *persistent*
// speed spreads (older machines, noisy neighbors). The study scales worker
// i's compute time by a linear ramp from 1 up to MaxFactor and measures
// how IS-GC's fastest-w gather converts that spread into step-time savings
// while the per-worker arrival distribution skews toward the fast half.
type HeterogeneityConfig struct {
	// N, C fix the CR placement.
	N, C int
	// MaxFactor is the slowest worker's compute multiplier (fleet ramps
	// linearly from 1 to MaxFactor).
	MaxFactor float64
	// Ws lists the fastest-w targets compared.
	Ws []int
	// Steps per run, Trials averaged.
	Steps, Trials int
	// Compute, Upload, DelayMean parameterize the simulated step.
	Compute, Upload time.Duration
	DelayMean       time.Duration
	// Seed drives everything.
	Seed int64
	// ComputePar sizes the engine's gradient compute pool (0 keeps the
	// sequential default); bit-identical either way.
	ComputePar int
}

// DefaultHeterogeneity returns an 8-worker fleet with a 3x speed spread.
func DefaultHeterogeneity() HeterogeneityConfig {
	return HeterogeneityConfig{
		N: 8, C: 2,
		MaxFactor: 3.0,
		Ws:        []int{2, 4, 6, 8},
		Steps:     80,
		Trials:    3,
		Compute:   50 * time.Millisecond,
		Upload:    20 * time.Millisecond,
		DelayMean: 100 * time.Millisecond,
		Seed:      23,
	}
}

// HeterogeneityRow is one w-level of the study.
type HeterogeneityRow struct {
	W int
	// StepTime is the mean step time on the heterogeneous fleet.
	StepTime time.Duration
	// HomogeneousStepTime is the same fleet with all factors 1 (baseline).
	HomogeneousStepTime time.Duration
	// Recovered is the mean recovered fraction (heterogeneous fleet).
	Recovered float64
	// SlowestInclusion is the fraction of steps in which the slowest
	// worker's partitions joined ĝ (via itself or replicas).
	SlowestInclusion float64
}

// Heterogeneity runs the study for IS-GC over CR(n, c).
func Heterogeneity(cfg HeterogeneityConfig) ([]HeterogeneityRow, *trace.Table, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 || cfg.Steps <= 0 {
		return nil, nil, fmt.Errorf("experiments: invalid heterogeneity config %+v", cfg)
	}
	data, err := dataset.SyntheticClusters(240, 6, 3, 1.5, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	factors := make([]float64, cfg.N)
	for i := range factors {
		factors[i] = 1 + (cfg.MaxFactor-1)*float64(i)/float64(cfg.N-1)
	}

	run := func(w int, hetero bool, trialSeed int64) (*engine.Result, error) {
		p, err := placement.CR(cfg.N, cfg.C)
		if err != nil {
			return nil, err
		}
		st, err := engine.NewISGC(isgc.New(p, trialSeed))
		if err != nil {
			return nil, err
		}
		ecfg := engine.Config{
			Strategy:            st,
			Model:               mdl,
			Data:                data,
			BatchSize:           4,
			LearningRate:        0.1,
			W:                   w,
			MaxSteps:            cfg.Steps,
			ComputePerPartition: cfg.Compute,
			Upload:              cfg.Upload,
			ComputePar:          cfg.ComputePar,
			Profile:             straggler.NewProfile(cfg.N, straggler.Exponential{Mean: cfg.DelayMean}, trialSeed+7),
			Seed:                trialSeed,
		}
		if hetero {
			ecfg.ComputeFactors = factors
		}
		return engine.Train(ecfg)
	}

	var rows []HeterogeneityRow
	for _, w := range cfg.Ws {
		row := HeterogeneityRow{W: w}
		for trial := 0; trial < cfg.Trials; trial++ {
			trialSeed := cfg.Seed + int64(trial)*449
			het, err := run(w, true, trialSeed)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: heterogeneity w=%d: %w", w, err)
			}
			hom, err := run(w, false, trialSeed)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: heterogeneity baseline w=%d: %w", w, err)
			}
			row.StepTime += het.Run.MeanStepTime()
			row.HomogeneousStepTime += hom.Run.MeanStepTime()
			row.Recovered += het.Run.MeanRecovered()
			// The slowest worker's own partition is the last one in the
			// ramp; inclusion comes from the recorded partition sets.
			row.SlowestInclusion += het.Run.PartitionInclusion(cfg.N)[cfg.N-1]
		}
		inv := 1 / float64(cfg.Trials)
		row.StepTime = time.Duration(float64(row.StepTime) * inv)
		row.HomogeneousStepTime = time.Duration(float64(row.HomogeneousStepTime) * inv)
		row.Recovered *= inv
		row.SlowestInclusion *= inv
		rows = append(rows, row)
	}
	tab := trace.NewTable(
		fmt.Sprintf("Heterogeneous fleet: CR(%d,%d), compute ramp 1..%.1fx", cfg.N, cfg.C, cfg.MaxFactor),
		"w", "step_time_hetero", "step_time_homog", "recovered", "slowest_partition_inclusion")
	for _, r := range rows {
		tab.AddRow(r.W, r.StepTime, r.HomogeneousStepTime, r.Recovered, r.SlowestInclusion)
	}
	return rows, tab, nil
}
