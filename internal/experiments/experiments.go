// Package experiments contains one runner per figure of the paper's
// evaluation (Sec. VIII), plus the theory-bounds table. Each runner returns
// structured rows (for tests and benchmarks) and a rendered table (for the
// CLI). Defaults are sized to finish in seconds; the isgc-experiments CLI
// exposes flags to scale them up.
//
// See DESIGN.md for the per-experiment index and EXPERIMENTS.md for the
// paper-vs-measured comparison.
package experiments

import (
	"fmt"
	"time"

	"isgc/internal/simclock"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// Fig11Config parameterizes the step-time simulation of Fig. 11: training
// "ResNet-18 on ImageNet" with n=24 workers where 12 or 24 workers are
// slowed by exponential delays (mean 1.5 s in (a), 3 s in (b)).
type Fig11Config struct {
	// N is the worker count (paper: 24).
	N int
	// C is the partitions per worker for GC and IS-GC (paper: 2).
	C int
	// DelayMean is the exponential straggler mean (paper: 1.5s / 3s).
	DelayMean time.Duration
	// SlowCounts lists how many workers straggle (paper: 12 and 24).
	SlowCounts []int
	// Ws lists the fastest-w targets for IS-SGD and IS-GC.
	Ws []int
	// Compute is the per-partition gradient compute time (stands in for
	// one ResNet-18 mini-batch on a P100).
	Compute time.Duration
	// Upload is the coded-gradient upload time.
	Upload time.Duration
	// Steps is the number of simulated steps per configuration.
	Steps int
	// Seed drives all sampling.
	Seed int64
}

// DefaultFig11a returns the Fig. 11(a) configuration (delay mean 1.5 s).
func DefaultFig11a() Fig11Config {
	return Fig11Config{
		N: 24, C: 2,
		DelayMean:  1500 * time.Millisecond,
		SlowCounts: []int{12, 24},
		Ws:         []int{6, 12, 18},
		Compute:    50 * time.Millisecond,
		Upload:     20 * time.Millisecond,
		Steps:      400,
		Seed:       1,
	}
}

// DefaultFig11b returns the Fig. 11(b) configuration (delay mean 3 s).
func DefaultFig11b() Fig11Config {
	cfg := DefaultFig11a()
	cfg.DelayMean = 3 * time.Second
	return cfg
}

// Fig11Row is one bar of Fig. 11: a scheme's average time per step under a
// given number of straggling workers, plus the p95 tail (straggling is a
// tail phenomenon; the mean alone undersells rigid schemes' pain).
type Fig11Row struct {
	Scheme    string
	W         int // workers waited for (n for Sync, n-c+1 for GC)
	SlowCount int
	MeanStep  time.Duration
	P95Step   time.Duration
}

// Fig11 simulates the average time per step of Sync-SGD, classic GC,
// IS-SGD(w) and IS-GC(w) under partial-fleet exponential straggling.
func Fig11(cfg Fig11Config) ([]Fig11Row, *trace.Table, error) {
	if cfg.N <= 0 || cfg.C <= 0 || cfg.Steps <= 0 {
		return nil, nil, fmt.Errorf("experiments: invalid Fig11 config %+v", cfg)
	}
	var rows []Fig11Row
	seed := cfg.Seed
	for _, slow := range cfg.SlowCounts {
		type variant struct {
			name string
			c    int
			wait int
		}
		variants := []variant{
			{"Sync-SGD", 1, cfg.N},
			{fmt.Sprintf("GC(c=%d)", cfg.C), cfg.C, cfg.N - cfg.C + 1},
		}
		for _, w := range cfg.Ws {
			variants = append(variants,
				variant{fmt.Sprintf("IS-SGD(w=%d)", w), 1, w},
				variant{fmt.Sprintf("IS-GC(w=%d)", w), cfg.C, w},
			)
		}
		for _, v := range variants {
			seed++
			prof := straggler.PartialProfile(cfg.N, slow, straggler.Exponential{Mean: cfg.DelayMean}, seed)
			sim, err := simclock.New(simclock.Config{
				N:                   cfg.N,
				ComputePerPartition: cfg.Compute,
				PartitionsPerWorker: v.c,
				Upload:              cfg.Upload,
				Profile:             prof,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: %w", err)
			}
			elapsedSecs := make([]float64, 0, cfg.Steps)
			var total time.Duration
			for s := 0; s < cfg.Steps; s++ {
				_, elapsed, err := simclock.FastestW(sim.Step(), v.wait)
				if err != nil {
					return nil, nil, fmt.Errorf("experiments: %w", err)
				}
				total += elapsed
				elapsedSecs = append(elapsedSecs, float64(elapsed))
			}
			rows = append(rows, Fig11Row{
				Scheme:    v.name,
				W:         v.wait,
				SlowCount: slow,
				MeanStep:  total / time.Duration(cfg.Steps),
				P95Step:   time.Duration(trace.Percentile(elapsedSecs, 95)),
			})
		}
	}
	tab := trace.NewTable(
		fmt.Sprintf("Fig. 11: avg time per step (n=%d, c=%d, exp delay mean %v)", cfg.N, cfg.C, cfg.DelayMean),
		"stragglers", "scheme", "wait_w", "avg_step_time", "p95_step_time")
	for _, r := range rows {
		tab.AddRow(r.SlowCount, r.Scheme, r.W, r.MeanStep, r.P95Step)
	}
	return rows, tab, nil
}
