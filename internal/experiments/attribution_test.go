package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestAttributionExperiment(t *testing.T) {
	cfg := DefaultAttribution()
	cfg.Steps = 40
	rep, tab, err := Attribution(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Workers) != cfg.N {
		t.Fatalf("workers = %d, want %d", len(rep.Workers), cfg.N)
	}
	// Every worker must have delivered or been ignored at least once over
	// 40 steps, and the fast majority should be chosen more often than the
	// straggling minority.
	fastChosen, slowChosen := 0, 0
	for _, w := range rep.Workers {
		if w.Chosen+w.Ignored == 0 {
			t.Fatalf("worker %d never observed", w.Worker)
		}
		if w.Worker < cfg.SlowCount {
			slowChosen += w.Chosen
		} else {
			fastChosen += w.Chosen
		}
	}
	if fastChosen <= slowChosen {
		t.Fatalf("fast workers chosen %d times vs slow %d — attribution inverted", fastChosen, slowChosen)
	}
	// Uniform compute: every chosen worker reports the same compute p50,
	// so lateness is attributed to delivery, not compute.
	for _, w := range rep.Workers {
		if w.Chosen > 0 && w.ComputeP50 != time.Duration(cfg.C)*cfg.Compute {
			t.Fatalf("worker %d compute p50 = %v, want %v", w.Worker, w.ComputeP50, time.Duration(cfg.C)*cfg.Compute)
		}
	}
	if tab.NumRows() != cfg.N {
		t.Fatalf("table rows = %d, want %d", tab.NumRows(), cfg.N)
	}
	if !strings.Contains(tab.String(), "straggler attribution") {
		t.Fatalf("table caption:\n%s", tab.String())
	}
}

func TestAttributionRejectsBadConfig(t *testing.T) {
	if _, _, err := Attribution(AttributionConfig{}); err == nil {
		t.Fatal("zero config must be rejected")
	}
}
