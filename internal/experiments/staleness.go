package experiments

import (
	"fmt"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// StalenessConfig parameterizes the bounded-staleness convergence sweep:
// the Fig. 12 training setup (IS-SGD and IS-GC-CR under homogeneous
// exponential straggling) re-run with the pipelined engine's Staleness
// knob, so the k = 0 rows ARE the synchronous Fig. 12 points and the
// k > 0 rows show what folding k-stale gradients in as exact corrections
// buys in wall-clock time and costs in steps to the threshold.
type StalenessConfig struct {
	// N is the worker count and C the partitions per worker (IS-GC-CR
	// rows; IS-SGD keeps every worker on its own partition).
	N, C int
	// Samples, Features, Classes, Separation parameterize the synthetic
	// classification dataset (shared with Fig12Config).
	Samples, Features, Classes int
	Separation                 float64
	// BatchSize and LearningRate configure SGD.
	BatchSize    int
	LearningRate float64
	// LossThreshold is the training-loss stopping criterion.
	LossThreshold float64
	// MaxSteps caps each run.
	MaxSteps int
	// W is the synchronous wait target; staleness k waits for
	// max(1, W−k) workers and folds the rest in late.
	W int
	// Ks lists the staleness bounds to sweep; include 0 for the
	// synchronous baseline.
	Ks []int
	// DelayMean is the exponential straggler delay mean applied to every
	// worker, and Compute/Upload the simulated step-time parameters.
	DelayMean       time.Duration
	Compute, Upload time.Duration
	// Trials is the number of independent runs averaged per point.
	Trials int
	// Seed drives everything.
	Seed int64
	// ComputePar sizes the engine's gradient compute pool (bit-identical
	// at any size).
	ComputePar int
}

// DefaultStaleness returns a sweep over k = 0, 1, 2 at w = 3 under the
// DefaultFig12 workload, finishing in a few seconds.
func DefaultStaleness() StalenessConfig {
	f := DefaultFig12()
	return StalenessConfig{
		N: f.N, C: f.C,
		Samples: f.Samples, Features: f.Features, Classes: f.Classes, Separation: f.Separation,
		BatchSize:     f.BatchSize,
		LearningRate:  f.LearningRate,
		LossThreshold: f.LossThreshold,
		MaxSteps:      f.MaxSteps,
		W:             3,
		Ks:            []int{0, 1, 2},
		DelayMean:     f.DelayMean,
		Compute:       f.Compute,
		Upload:        f.Upload,
		Trials:        f.Trials,
		Seed:          f.Seed,
	}
}

// StalenessRow is one (scheme, k) point of the sweep.
type StalenessRow struct {
	Scheme string
	// K is the staleness bound and Wait the resulting per-step wait
	// target max(1, W−K).
	K, Wait int
	// Recovered is the mean recovered fraction counted at gather time
	// (folds land later and are not in it).
	Recovered float64
	// FoldedPerStep is the mean number of late gradients folded in per
	// step (0 for the k = 0 baseline by construction).
	FoldedPerStep float64
	// Steps is the mean step count to reach the loss threshold.
	Steps float64
	// StepTime and TotalTime are the mean simulated per-step and total
	// training times.
	StepTime, TotalTime time.Duration
	// Converged reports whether every trial reached the threshold.
	Converged bool
}

// Staleness runs the sweep. Within a trial every (scheme, k) point shares
// the seed, so the k = 0 row is bit-identical to the synchronous engine
// under the same config and the k > 0 rows differ only through the
// reduced wait target and the fold corrections.
func Staleness(cfg StalenessConfig) ([]StalenessRow, *trace.Table, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 || cfg.W <= 0 || len(cfg.Ks) == 0 {
		return nil, nil, fmt.Errorf("experiments: invalid Staleness config %+v", cfg)
	}
	data, err := dataset.SyntheticClusters(cfg.Samples, cfg.Features, cfg.Classes, cfg.Separation, cfg.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	mdl := model.SoftmaxRegression{Features: cfg.Features, Classes: cfg.Classes}

	type variant struct {
		name string
		make func(trialSeed int64) (engine.Strategy, error)
	}
	variants := []variant{
		{"IS-SGD", func(int64) (engine.Strategy, error) { return engine.NewISSGD(cfg.N) }},
		{"IS-GC-CR", func(s int64) (engine.Strategy, error) {
			p, err := placement.CR(cfg.N, cfg.C)
			if err != nil {
				return nil, err
			}
			return engine.NewISGC(isgc.New(p, s))
		}},
	}

	var rows []StalenessRow
	for _, v := range variants {
		for _, k := range cfg.Ks {
			wait := cfg.W - k
			if wait < 1 {
				wait = 1
			}
			row := StalenessRow{Scheme: v.name, K: k, Wait: wait, Converged: true}
			for trial := 0; trial < cfg.Trials; trial++ {
				trialSeed := cfg.Seed + int64(trial)*1009
				st, err := v.make(trialSeed)
				if err != nil {
					return nil, nil, fmt.Errorf("experiments: %s: %w", v.name, err)
				}
				res, err := engine.Train(engine.Config{
					Strategy:            st,
					Model:               mdl,
					Data:                data,
					BatchSize:           cfg.BatchSize,
					LearningRate:        cfg.LearningRate,
					W:                   cfg.W,
					Staleness:           k,
					MaxSteps:            cfg.MaxSteps,
					LossThreshold:       cfg.LossThreshold,
					ComputePerPartition: cfg.Compute,
					Upload:              cfg.Upload,
					ComputePar:          cfg.ComputePar,
					Profile:             straggler.NewProfile(cfg.N, straggler.Exponential{Mean: cfg.DelayMean}, trialSeed+500),
					Seed:                trialSeed,
				})
				if err != nil {
					return nil, nil, fmt.Errorf("experiments: %s k=%d: %w", v.name, k, err)
				}
				steps := res.Run.Steps()
				row.Recovered += res.Run.MeanRecovered()
				if steps > 0 {
					row.FoldedPerStep += float64(res.Run.TotalFolded()) / float64(steps)
				}
				row.Steps += float64(res.StepsToThreshold)
				row.StepTime += res.Run.MeanStepTime()
				row.TotalTime += res.Run.TotalTime()
				row.Converged = row.Converged && res.Converged
			}
			inv := 1 / float64(cfg.Trials)
			row.Recovered *= inv
			row.FoldedPerStep *= inv
			row.Steps *= inv
			row.StepTime = time.Duration(float64(row.StepTime) * inv)
			row.TotalTime = time.Duration(float64(row.TotalTime) * inv)
			rows = append(rows, row)
		}
	}

	tab := trace.NewTable(
		fmt.Sprintf("Bounded staleness vs the Fig. 12 baseline (n=%d, c=%d, w=%d, threshold=%v)",
			cfg.N, cfg.C, cfg.W, cfg.LossThreshold),
		"scheme", "k", "wait", "recovered", "folded/step", "steps", "avg_step_time", "total_time", "converged")
	for _, r := range rows {
		tab.AddRow(r.Scheme, r.K, r.Wait, r.Recovered, r.FoldedPerStep, r.Steps, r.StepTime, r.TotalTime, r.Converged)
	}
	return rows, tab, nil
}
