package experiments

import (
	"testing"
	"time"
)

func fastStaleness() StalenessConfig {
	cfg := DefaultStaleness()
	cfg.Trials = 2
	cfg.MaxSteps = 120
	cfg.DelayMean = 4 * time.Millisecond
	cfg.Compute = time.Millisecond
	cfg.Upload = 2 * time.Millisecond
	return cfg
}

func TestStalenessSweep(t *testing.T) {
	cfg := fastStaleness()
	rows, tab, err := Staleness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := 2 * len(cfg.Ks) // IS-SGD and IS-GC-CR per k
	if len(rows) != wantRows {
		t.Fatalf("got %d rows, want %d", len(rows), wantRows)
	}
	if tab.NumRows() != wantRows {
		t.Fatalf("table has %d rows, want %d", tab.NumRows(), wantRows)
	}
	for _, r := range rows {
		if r.K == 0 && r.FoldedPerStep != 0 {
			t.Errorf("%s k=0: baseline must not fold, got %v folds/step", r.Scheme, r.FoldedPerStep)
		}
		wantWait := cfg.W - r.K
		if wantWait < 1 {
			wantWait = 1
		}
		if r.Wait != wantWait {
			t.Errorf("%s k=%d: wait = %d, want %d", r.Scheme, r.K, r.Wait, wantWait)
		}
		if r.Steps <= 0 || r.TotalTime <= 0 {
			t.Errorf("%s k=%d: empty run (steps=%v total=%v)", r.Scheme, r.K, r.Steps, r.TotalTime)
		}
	}
}

// The k > 0 rows exist to trade steps for wall-clock time: under heavy
// straggling the reduced wait target must shorten the mean step, and the
// late uploads must actually fold rather than vanish.
func TestStalenessFoldsAndSpeedsSteps(t *testing.T) {
	cfg := fastStaleness()
	cfg.DelayMean = 40 * time.Millisecond // heavy tail: waiting is expensive
	rows, _, err := Staleness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []string{"IS-SGD", "IS-GC-CR"} {
		var base, stale *StalenessRow
		for i := range rows {
			if rows[i].Scheme != scheme {
				continue
			}
			switch rows[i].K {
			case 0:
				base = &rows[i]
			case 2:
				stale = &rows[i]
			}
		}
		if base == nil || stale == nil {
			t.Fatalf("%s: missing k=0 or k=2 row", scheme)
		}
		if stale.StepTime >= base.StepTime {
			t.Errorf("%s: staleness-2 step time %v not below baseline %v", scheme, stale.StepTime, base.StepTime)
		}
		if stale.FoldedPerStep <= 0 {
			t.Errorf("%s: staleness-2 run folded nothing", scheme)
		}
	}
}
