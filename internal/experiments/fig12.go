package experiments

import (
	"fmt"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/gc"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// Fig12Config parameterizes the end-to-end training comparison of Fig. 12:
// "ResNet-18 on CIFAR-10" with n = 4 workers, c = 2, sweeping the number of
// waited-for workers w. Our workload substitute is softmax regression on
// Gaussian clusters (see DESIGN.md).
type Fig12Config struct {
	// N is the worker count (paper: 4) and C the partitions per worker
	// (paper: 2).
	N, C int
	// Samples, Features, Classes, Separation parameterize the synthetic
	// classification dataset.
	Samples, Features, Classes int
	Separation                 float64
	// BatchSize and LearningRate configure SGD (paper: 128 and 0.006 for
	// ResNet-18; ours are scaled to the synthetic task).
	BatchSize    int
	LearningRate float64
	// LossThreshold is the training-loss stopping criterion.
	LossThreshold float64
	// MaxSteps caps each run.
	MaxSteps int
	// DelayMean is the exponential straggler delay mean applied to every
	// worker (homogeneous straggling, as in the cloud experiment).
	DelayMean time.Duration
	// Compute and Upload parameterize the simulated step time.
	Compute, Upload time.Duration
	// Trials is the number of independent runs averaged per point
	// (paper: 10).
	Trials int
	// Seed drives everything.
	Seed int64
	// Workload selects the model: "softmax" (default) or "mlp" (one
	// hidden layer — the deepest stand-in for the paper's ResNet-18,
	// used as a robustness check that the figure's shape is not an
	// artifact of the convex workload).
	Workload string
	// Hidden is the MLP hidden width (Workload == "mlp"; default 8).
	Hidden int
	// ComputePar sizes the engine's gradient compute pool (0 keeps the
	// sequential default, >1 uses that many workers). Partition-level
	// parallelism is bit-identical to sequential, so the figure's numbers
	// do not change.
	ComputePar int
}

// DefaultFig12 returns a configuration that reproduces the figure's shape
// in a few seconds.
func DefaultFig12() Fig12Config {
	return Fig12Config{
		N: 4, C: 2,
		Samples: 240, Features: 6, Classes: 3, Separation: 1.0,
		BatchSize:     1,
		LearningRate:  0.2,
		LossThreshold: 0.30,
		MaxSteps:      3000,
		DelayMean:     400 * time.Millisecond,
		Compute:       30 * time.Millisecond,
		Upload:        250 * time.Millisecond,
		Trials:        5,
		Seed:          7,
	}
}

// Fig12Row is one (scheme, w) point across the four panels of Fig. 12.
type Fig12Row struct {
	Scheme string
	W      int
	// Recovered is panel (a): mean fraction of samples in ĝ.
	Recovered float64
	// Steps is panel (b): mean steps to reach the loss threshold.
	Steps float64
	// StepTime is panel (c): mean time per step.
	StepTime time.Duration
	// TotalTime is panel (d): mean total training time.
	TotalTime time.Duration
	// Converged reports whether every trial reached the threshold.
	Converged bool
}

// Fig12 reproduces all four panels. Flexible schemes (IS-SGD, IS-GC-FR,
// IS-GC-CR) sweep w = 1..n; Sync-SGD and classic GC are fixed points
// (w = n and w = n-c+1).
func Fig12(cfg Fig12Config) ([]Fig12Row, []*trace.Table, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 {
		return nil, nil, fmt.Errorf("experiments: invalid Fig12 config %+v", cfg)
	}
	data, err := dataset.SyntheticClusters(cfg.Samples, cfg.Features, cfg.Classes, cfg.Separation, cfg.Seed)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %w", err)
	}
	var mdl model.Model
	switch cfg.Workload {
	case "", "softmax":
		mdl = model.SoftmaxRegression{Features: cfg.Features, Classes: cfg.Classes}
	case "mlp":
		hidden := cfg.Hidden
		if hidden <= 0 {
			hidden = 8
		}
		mdl = model.MLP{Features: cfg.Features, Hidden: hidden, Classes: cfg.Classes}
	default:
		return nil, nil, fmt.Errorf("experiments: unknown workload %q (want softmax or mlp)", cfg.Workload)
	}

	type variant struct {
		name string
		make func(trialSeed int64) (engine.Strategy, error)
		ws   []int
	}
	sweep := make([]int, cfg.N)
	for i := range sweep {
		sweep[i] = i + 1
	}
	variants := []variant{
		{"IS-SGD", func(int64) (engine.Strategy, error) { return engine.NewISSGD(cfg.N) }, sweep},
		{"IS-GC-FR", func(s int64) (engine.Strategy, error) {
			p, err := placement.FR(cfg.N, cfg.C)
			if err != nil {
				return nil, err
			}
			return engine.NewISGC(isgc.New(p, s))
		}, sweep},
		{"IS-GC-CR", func(s int64) (engine.Strategy, error) {
			p, err := placement.CR(cfg.N, cfg.C)
			if err != nil {
				return nil, err
			}
			return engine.NewISGC(isgc.New(p, s))
		}, sweep},
		{"Sync-SGD", func(int64) (engine.Strategy, error) { return engine.NewSyncSGD(cfg.N) }, []int{cfg.N}},
		{"GC-CR", func(s int64) (engine.Strategy, error) {
			code, err := gc.NewCR(cfg.N, cfg.C, s)
			if err != nil {
				return nil, err
			}
			return engine.NewClassicGC(code)
		}, []int{cfg.N - cfg.C + 1}},
	}

	var rows []Fig12Row
	for _, v := range variants {
		for _, w := range v.ws {
			row := Fig12Row{Scheme: v.name, W: w, Converged: true}
			for trial := 0; trial < cfg.Trials; trial++ {
				trialSeed := cfg.Seed + int64(trial)*1009
				st, err := v.make(trialSeed)
				if err != nil {
					return nil, nil, fmt.Errorf("experiments: %s: %w", v.name, err)
				}
				res, err := engine.Train(engine.Config{
					Strategy:            st,
					Model:               mdl,
					Data:                data,
					BatchSize:           cfg.BatchSize,
					LearningRate:        cfg.LearningRate,
					W:                   w,
					MaxSteps:            cfg.MaxSteps,
					LossThreshold:       cfg.LossThreshold,
					ComputePerPartition: cfg.Compute,
					Upload:              cfg.Upload,
					ComputePar:          cfg.ComputePar,
					Profile:             straggler.NewProfile(cfg.N, straggler.Exponential{Mean: cfg.DelayMean}, trialSeed+500),
					// The seed is shared across schemes within a trial, so
					// every scheme starts from the same parameters and sees
					// the same batches (the paper's controlled-seed
					// methodology), while trials still average over batch
					// realizations.
					Seed: trialSeed,
				})
				if err != nil {
					return nil, nil, fmt.Errorf("experiments: %s w=%d: %w", v.name, w, err)
				}
				row.Recovered += res.Run.MeanRecovered()
				row.Steps += float64(res.StepsToThreshold)
				row.StepTime += res.Run.MeanStepTime()
				row.TotalTime += res.Run.TotalTime()
				row.Converged = row.Converged && res.Converged
			}
			inv := 1 / float64(cfg.Trials)
			row.Recovered *= inv
			row.Steps *= inv
			row.StepTime = time.Duration(float64(row.StepTime) * inv)
			row.TotalTime = time.Duration(float64(row.TotalTime) * inv)
			rows = append(rows, row)
		}
	}

	tables := fig12Tables(cfg, rows)
	return rows, tables, nil
}

func fig12Tables(cfg Fig12Config, rows []Fig12Row) []*trace.Table {
	mk := func(panel, metric string) *trace.Table {
		return trace.NewTable(
			fmt.Sprintf("Fig. 12(%s): %s (n=%d, c=%d, threshold=%v)", panel, metric, cfg.N, cfg.C, cfg.LossThreshold),
			"scheme", "w", metric)
	}
	ta := mk("a", "recovered_fraction")
	tb := mk("b", "steps_to_threshold")
	tc := mk("c", "avg_step_time")
	td := mk("d", "total_training_time")
	for _, r := range rows {
		ta.AddRow(r.Scheme, r.W, r.Recovered)
		tb.AddRow(r.Scheme, r.W, r.Steps)
		tc.AddRow(r.Scheme, r.W, r.StepTime)
		td.AddRow(r.Scheme, r.W, r.TotalTime)
	}
	return []*trace.Table{ta, tb, tc, td}
}

// FindRow returns the row for (scheme, w), or nil.
func FindRow(rows []Fig12Row, scheme string, w int) *Fig12Row {
	for i := range rows {
		if rows[i].Scheme == scheme && rows[i].W == w {
			return &rows[i]
		}
	}
	return nil
}
