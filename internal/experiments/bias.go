package experiments

import (
	"fmt"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// BiasConfig parameterizes the bias study behind the paper's Sec. I
// motivation: "if some worker experiences severe or consistently lower
// performance, IS-SGD will still make the training biased toward the other
// dataset partitions."
//
// Setup: the dataset is sorted by class before partitioning (so each
// partition is class-skewed), worker 0 is an enduring straggler (pinned
// Factor× slow), and the master waits for w workers. Under IS-SGD,
// partition 0 lives only on worker 0 and its class is essentially never
// trained; under IS-GC the partition is replicated on worker 0's
// group-mate and keeps contributing.
type BiasConfig struct {
	// N, C fix the FR placement.
	N, C int
	// W is the per-step wait count.
	W int
	// Factor is the enduring straggler's slowdown.
	Factor float64
	// Steps per run and trial count.
	Steps, Trials int
	// DelayMean is the baseline exponential delay.
	DelayMean time.Duration
	// Seed drives everything.
	Seed int64
	// ComputePar sizes the engine's gradient compute pool (0 keeps the
	// sequential default); bit-identical either way.
	ComputePar int
}

// DefaultBias returns the n=4, c=2 bias study.
func DefaultBias() BiasConfig {
	return BiasConfig{
		N: 4, C: 2, W: 2,
		Factor:    50,
		Steps:     150,
		Trials:    3,
		DelayMean: 200 * time.Millisecond,
		Seed:      17,
	}
}

// BiasRow summarizes one scheme in the bias study.
type BiasRow struct {
	Scheme string
	// Partition0Inclusion is the fraction of steps in which the straggler
	// partition's gradients joined ĝ.
	Partition0Inclusion float64
	// FinalLoss is the loss over the full (unbiased) dataset.
	FinalLoss float64
	// MeanRecovered is the overall recovered fraction.
	MeanRecovered float64
}

// Bias runs the study for IS-SGD and IS-GC-FR and returns the per-scheme
// summary.
func Bias(cfg BiasConfig) ([]BiasRow, *trace.Table, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 || cfg.Steps <= 0 {
		return nil, nil, fmt.Errorf("experiments: invalid bias config %+v", cfg)
	}
	base, err := dataset.SyntheticClusters(240, 6, cfg.N, 2.5, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	// Class-sort so partition d ≈ class d: losing a partition loses a class.
	data := base.SortByLabel()
	mdl := model.SoftmaxRegression{Features: 6, Classes: cfg.N}

	type variantFn func(trialSeed int64) (engine.Strategy, error)
	variants := []struct {
		name string
		mk   variantFn
	}{
		{"IS-SGD", func(int64) (engine.Strategy, error) { return engine.NewISSGD(cfg.N) }},
		{"IS-GC-FR", func(s int64) (engine.Strategy, error) {
			p, err := placement.FR(cfg.N, cfg.C)
			if err != nil {
				return nil, err
			}
			return engine.NewISGC(isgc.New(p, s))
		}},
	}

	var rows []BiasRow
	for _, v := range variants {
		row := BiasRow{Scheme: v.name}
		for trial := 0; trial < cfg.Trials; trial++ {
			trialSeed := cfg.Seed + int64(trial)*331
			st, err := v.mk(trialSeed)
			if err != nil {
				return nil, nil, err
			}
			prof := straggler.NewProfile(cfg.N, straggler.Exponential{Mean: cfg.DelayMean}, trialSeed+3).
				WithEnduringStraggler(0, cfg.Factor, trialSeed+4)
			res, err := engine.Train(engine.Config{
				Strategy:     st,
				Model:        mdl,
				Data:         data,
				BatchSize:    4,
				LearningRate: 0.15,
				W:            cfg.W,
				MaxSteps:     cfg.Steps,
				ComputePar:   cfg.ComputePar,
				Profile:      prof,
				Seed:         trialSeed,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: bias %s: %w", v.name, err)
			}
			row.FinalLoss += res.Run.FinalLoss()
			row.MeanRecovered += res.Run.MeanRecovered()
			row.Partition0Inclusion += res.Run.PartitionInclusion(cfg.N)[0]
		}
		inv := 1 / float64(cfg.Trials)
		row.FinalLoss *= inv
		row.MeanRecovered *= inv
		row.Partition0Inclusion *= inv
		rows = append(rows, row)
	}

	tab := trace.NewTable(
		fmt.Sprintf("Bias study: class-skewed partitions, worker 0 pinned %.0fx slow, w=%d", cfg.Factor, cfg.W),
		"scheme", "partition0_inclusion", "mean_recovered", "final_full_loss")
	for _, r := range rows {
		tab.AddRow(r.Scheme, r.Partition0Inclusion, r.MeanRecovered, r.FinalLoss)
	}
	return rows, tab, nil
}
