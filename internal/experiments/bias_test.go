package experiments

import (
	"strings"
	"testing"
)

// The paper's Sec. I motivating claim, quantified: with class-skewed
// partitions and an enduring straggler on worker 0, IS-SGD almost never
// trains on partition 0's class while IS-GC-FR keeps recovering it through
// the group-mate replica — and ends at a visibly lower full-dataset loss.
func TestBiasStudy(t *testing.T) {
	cfg := DefaultBias()
	cfg.Trials = 2
	cfg.Steps = 120
	rows, tab, err := Bias(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var isSGD, isGC *BiasRow
	for i := range rows {
		switch rows[i].Scheme {
		case "IS-SGD":
			isSGD = &rows[i]
		case "IS-GC-FR":
			isGC = &rows[i]
		}
	}
	if isSGD == nil || isGC == nil {
		t.Fatal("missing scheme rows")
	}
	// IS-SGD: partition 0 lives only on the pinned worker; with a 50x
	// slowdown it virtually never joins ĝ.
	if isSGD.Partition0Inclusion > 0.05 {
		t.Errorf("IS-SGD partition-0 inclusion %v, want ≈0", isSGD.Partition0Inclusion)
	}
	// IS-GC-FR: worker 1 replicates partition 0 and is rarely slow, so
	// the partition keeps contributing most steps.
	if isGC.Partition0Inclusion < 0.5 {
		t.Errorf("IS-GC-FR partition-0 inclusion %v, want well above IS-SGD", isGC.Partition0Inclusion)
	}
	if !(isGC.Partition0Inclusion > isSGD.Partition0Inclusion+0.4) {
		t.Errorf("inclusion gap too small: IS-GC %v vs IS-SGD %v", isGC.Partition0Inclusion, isSGD.Partition0Inclusion)
	}
	// The bias shows up in the full-dataset loss: never training one class
	// leaves IS-SGD strictly worse.
	if !(isGC.FinalLoss < isSGD.FinalLoss) {
		t.Errorf("IS-GC-FR final loss %v not < biased IS-SGD %v", isGC.FinalLoss, isSGD.FinalLoss)
	}
	if !strings.Contains(tab.String(), "partition0_inclusion") {
		t.Error("table header missing")
	}
}

func TestBiasInvalidConfig(t *testing.T) {
	if _, _, err := Bias(BiasConfig{}); err == nil {
		t.Fatal("expected error")
	}
}
