package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestGatherPoliciesShape(t *testing.T) {
	cfg := DefaultAblations()
	cfg.Trials = 2
	cfg.MaxSteps = 40
	rows, tab, err := GatherPolicies(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 policies", len(rows))
	}
	byName := map[string]GatherRow{}
	for _, r := range rows {
		byName[r.Policy] = r
		if r.Recovered <= 0 || r.Recovered > 1 {
			t.Errorf("%s: recovered %v out of range", r.Policy, r.Recovered)
		}
		if r.StepTime <= 0 {
			t.Errorf("%s: non-positive step time", r.Policy)
		}
	}
	// w=3 waits longer than w=2 and recovers more.
	w2, w3 := byName["fixed w=2"], byName["fixed w=3"]
	if !(w3.StepTime > w2.StepTime) {
		t.Errorf("w=3 step time %v not > w=2 %v", w3.StepTime, w2.StepTime)
	}
	if !(w3.Recovered >= w2.Recovered) {
		t.Errorf("w=3 recovery %v not ≥ w=2 %v", w3.Recovered, w2.Recovered)
	}
	// The adaptive ramp lands between the w=1-ish start and the w=n end.
	ad := byName["adaptive w: 1→n"]
	if !(ad.Recovered > 0.4 && ad.Recovered <= 1.0) {
		t.Errorf("adaptive recovery %v implausible", ad.Recovered)
	}
	if !strings.Contains(tab.String(), "adaptive") {
		t.Error("table missing adaptive row")
	}
}

func TestGatherPoliciesInvalidConfig(t *testing.T) {
	if _, _, err := GatherPolicies(AblationConfig{}); err == nil {
		t.Fatal("expected error")
	}
}

// The paper's Fig. 12(a) footnote: an enduring straggler inflates w=2
// recovery for IS-GC-FR well above the homogeneous expectation of 5/6.
func TestEnduringStragglerInflatesRecovery(t *testing.T) {
	cfg := DefaultAblations()
	cfg.Trials = 3
	cfg.MaxSteps = 80
	cfg.DelayMean = 200 * time.Millisecond
	rows, tab, err := EnduringStraggler(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	hom, onePinned, crossPinned := rows[0].Recovered, rows[1].Recovered, rows[2].Recovered
	// Homogeneous: E = 5/6 ≈ 0.833 (exact, see analysis tests).
	if hom < 0.75 || hom > 0.92 {
		t.Errorf("homogeneous recovery %v, want ≈0.83", hom)
	}
	// One pinned straggler leaves the expectation at 5/6: the pair comes
	// from the other three workers and is same-group with prob 1/3.
	if onePinned < 0.75 || onePinned > 0.92 {
		t.Errorf("one-pinned recovery %v, want ≈0.83", onePinned)
	}
	// One pinned straggler per group: the persistent fast pair is
	// cross-group, so recovery approaches the paper's 99.6%.
	if crossPinned < 0.95 {
		t.Errorf("cross-pinned recovery %v, want ≈1.0 (paper: 0.996)", crossPinned)
	}
	if !strings.Contains(tab.String(), "pinned") {
		t.Error("table missing pinned row")
	}
}

func TestDecoderQualityAblation(t *testing.T) {
	rows, tab, err := DecoderQuality(12, 3, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	single, paper := rows[0], rows[1]
	// The paper's decoder is exactly optimal on every instance.
	if paper.OptimalFraction != 1.0 || paper.MeanAlphaRatio != 1.0 {
		t.Errorf("paper decoder not optimal: %+v", paper)
	}
	// The naive single-start walk must be strictly worse somewhere
	// (Fig. 4(b)'s trap) but still maximal-quality.
	if single.OptimalFraction >= 1.0 {
		t.Errorf("single-start unexpectedly always optimal: %+v", single)
	}
	if single.MeanAlphaRatio < 0.5 {
		t.Errorf("single-start ratio %v implausibly low", single.MeanAlphaRatio)
	}
	if !strings.Contains(tab.String(), "multi-start") {
		t.Error("table missing decoder rows")
	}
}

func TestDecoderQualityErrors(t *testing.T) {
	if _, _, err := DecoderQuality(0, 2, 10, 1); err == nil {
		t.Error("invalid placement must error")
	}
}

func TestHeterogeneityStudy(t *testing.T) {
	cfg := DefaultHeterogeneity()
	cfg.Trials = 2
	cfg.Steps = 50
	rows, tab, err := Heterogeneity(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(cfg.Ws) {
		t.Fatalf("rows = %d", len(rows))
	}
	byW := map[int]HeterogeneityRow{}
	for _, r := range rows {
		byW[r.W] = r
		if r.Recovered <= 0 || r.Recovered > 1 {
			t.Errorf("w=%d: recovered %v out of range", r.W, r.Recovered)
		}
	}
	// At w = n the heterogeneous fleet pays the slowest worker's full 3x
	// compute; with fastest-w (small w) the fast half hides most of it,
	// so the *absolute* hetero-vs-homogeneous step-time penalty must grow
	// with w.
	gapSmall := byW[2].StepTime - byW[2].HomogeneousStepTime
	gapFull := byW[8].StepTime - byW[8].HomogeneousStepTime
	if !(gapFull > gapSmall) {
		t.Errorf("full-wait hetero penalty %v not > fastest-2 penalty %v", gapFull, gapSmall)
	}
	if gapFull <= 0 {
		t.Errorf("full-wait hetero penalty %v must be positive", gapFull)
	}
	// With w = n every partition joins every step.
	if byW[8].SlowestInclusion != 1.0 {
		t.Errorf("w=n slowest inclusion %v, want 1.0", byW[8].SlowestInclusion)
	}
	// With w = 2 the slowest worker rarely arrives itself, but its
	// partitions can still join via replicas on faster workers — the
	// IS-GC replication benefit. Inclusion must be strictly positive.
	if byW[2].SlowestInclusion <= 0 {
		t.Errorf("w=2 slowest inclusion %v, want > 0 via replicas", byW[2].SlowestInclusion)
	}
	if !strings.Contains(tab.String(), "slowest_partition_inclusion") {
		t.Error("table header missing")
	}
}

func TestHeterogeneityInvalidConfig(t *testing.T) {
	if _, _, err := Heterogeneity(HeterogeneityConfig{}); err == nil {
		t.Fatal("expected error")
	}
}

// The HR structure sweep covers the full valid (g, c1) space and respects
// the Theorem 7 ordering within each group count: recovery is
// non-decreasing in c1 for fixed g.
func TestHRStructureSweep(t *testing.T) {
	rows, tab, err := HRStructure(8, 4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	// The CR anchor appears exactly once.
	crCount := 0
	for _, r := range rows {
		if r.C1 == 0 {
			crCount++
		}
		if r.ExpectedRecovery <= 0 || r.ExpectedRecovery > 1 {
			t.Errorf("g=%d c1=%d: recovery %v out of range", r.G, r.C1, r.ExpectedRecovery)
		}
	}
	if crCount != 1 {
		t.Fatalf("CR anchor appears %d times, want once", crCount)
	}
	// Monotone in c1 for the Fig. 13 group count g=2.
	prev := -1.0
	for _, r := range rows {
		if r.G != 2 {
			continue
		}
		if r.ExpectedRecovery < prev-1e-12 {
			t.Fatalf("g=2: recovery not monotone in c1 at c1=%d", r.C1)
		}
		prev = r.ExpectedRecovery
	}
	if tab.NumRows() != len(rows) {
		t.Fatal("table row mismatch")
	}
	if _, _, err := HRStructure(0, 2, 1, 1); err == nil {
		t.Error("invalid sweep must error")
	}
	if _, _, err := HRStructure(8, 4, 9, 1); err == nil {
		t.Error("w > n must error")
	}
}
