package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"isgc/internal/analysis"
	"isgc/internal/bitset"
	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/graph"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// analysisExpectedRecovery wraps the exact/Monte-Carlo expectation with the
// defaults the sweeps use.
func analysisExpectedRecovery(p *placement.Placement, w int, seed int64) (float64, error) {
	return analysis.ExpectedRecovery(p, w, 200000, 20000, seed)
}

// AblationConfig parameterizes the ablation studies for the design points
// DESIGN.md calls out: the Sec. IV gather policies (fixed w vs adaptive w
// vs deadline), the enduring-straggler effect behind Fig. 12(a)'s 99.6%,
// and the decoder-quality ablation (single-start greedy vs the paper's
// multi-start decoder vs the exact oracle).
type AblationConfig struct {
	// N, C fix the placement (CR for gather ablations).
	N, C int
	// Trials averages the training ablations; steps per run come from
	// MaxSteps.
	Trials   int
	MaxSteps int
	// DelayMean parameterizes the exponential stragglers.
	DelayMean time.Duration
	// Seed drives everything.
	Seed int64
	// ComputePar sizes the engine's gradient compute pool (0 keeps the
	// sequential default); bit-identical either way.
	ComputePar int
}

// DefaultAblations returns a configuration sized for seconds.
func DefaultAblations() AblationConfig {
	return AblationConfig{
		N: 4, C: 2,
		Trials:    3,
		MaxSteps:  60,
		DelayMean: 400 * time.Millisecond,
		Seed:      5,
	}
}

// GatherRow is one gather-policy ablation result.
type GatherRow struct {
	Policy    string
	Recovered float64
	StepTime  time.Duration
	FinalLoss float64
}

// GatherPolicies compares fixed-w, adaptive-w, and deadline gathers for
// IS-GC over CR(n, c) under identical stragglers and seeds.
func GatherPolicies(cfg AblationConfig) ([]GatherRow, *trace.Table, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 {
		return nil, nil, fmt.Errorf("experiments: invalid ablation config %+v", cfg)
	}
	data, err := dataset.SyntheticClusters(240, 6, 3, 1.0, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	base := func(trialSeed int64) (engine.Config, error) {
		p, err := placement.CR(cfg.N, cfg.C)
		if err != nil {
			return engine.Config{}, err
		}
		st, err := engine.NewISGC(isgc.New(p, trialSeed))
		if err != nil {
			return engine.Config{}, err
		}
		return engine.Config{
			Strategy:            st,
			Model:               mdl,
			Data:                data,
			BatchSize:           2,
			LearningRate:        0.2,
			MaxSteps:            cfg.MaxSteps,
			ComputePerPartition: 30 * time.Millisecond,
			Upload:              250 * time.Millisecond,
			ComputePar:          cfg.ComputePar,
			Profile:             straggler.NewProfile(cfg.N, straggler.Exponential{Mean: cfg.DelayMean}, trialSeed+100),
			Seed:                trialSeed,
		}, nil
	}

	policies := []struct {
		name  string
		apply func(*engine.Config)
	}{
		{"fixed w=2", func(c *engine.Config) { c.W = 2 }},
		{"fixed w=3", func(c *engine.Config) { c.W = 3 }},
		{"adaptive w: 1→n", func(c *engine.Config) {
			maxSteps := c.MaxSteps
			n := cfg.N
			c.WSchedule = func(step int) int {
				// Ramp from 1 to n across the run (Sec. IV's suggestion).
				return 1 + step*(n-1)/maxIntLocal(1, maxSteps-1)
			}
		}},
		{"deadline=base+mean", func(c *engine.Config) {
			c.Deadline = time.Duration(cfg.C)*30*time.Millisecond + 250*time.Millisecond + cfg.DelayMean
		}},
	}

	var rows []GatherRow
	for _, pol := range policies {
		row := GatherRow{Policy: pol.name}
		for trial := 0; trial < cfg.Trials; trial++ {
			ecfg, err := base(cfg.Seed + int64(trial)*977)
			if err != nil {
				return nil, nil, err
			}
			pol.apply(&ecfg)
			res, err := engine.Train(ecfg)
			if err != nil {
				return nil, nil, fmt.Errorf("experiments: gather %q: %w", pol.name, err)
			}
			row.Recovered += res.Run.MeanRecovered()
			row.StepTime += res.Run.MeanStepTime()
			row.FinalLoss += res.Run.FinalLoss()
		}
		inv := 1 / float64(cfg.Trials)
		row.Recovered *= inv
		row.StepTime = time.Duration(float64(row.StepTime) * inv)
		row.FinalLoss *= inv
		rows = append(rows, row)
	}
	tab := trace.NewTable(
		fmt.Sprintf("Ablation: gather policies for IS-GC-CR(%d,%d), %d steps", cfg.N, cfg.C, cfg.MaxSteps),
		"policy", "recovered_fraction", "avg_step_time", "final_loss")
	for _, r := range rows {
		tab.AddRow(r.Policy, r.Recovered, r.StepTime, r.FinalLoss)
	}
	return rows, tab, nil
}

// EnduringStragglerRow compares recovery with and without a pinned-slow
// worker — the effect the paper credits for >expected recovery at w=2.
type EnduringStragglerRow struct {
	Setup     string
	Recovered float64
}

// EnduringStraggler reproduces the Fig. 12(a) footnote: with one worker
// consistently slow, the availability sets concentrate on the remaining
// workers and IS-GC over FR recovers almost everything at w = 2.
func EnduringStraggler(cfg AblationConfig) ([]EnduringStragglerRow, *trace.Table, error) {
	if cfg.N <= 0 || cfg.Trials <= 0 {
		return nil, nil, fmt.Errorf("experiments: invalid ablation config %+v", cfg)
	}
	data, err := dataset.SyntheticClusters(240, 6, 3, 1.0, cfg.Seed)
	if err != nil {
		return nil, nil, err
	}
	mdl := model.SoftmaxRegression{Features: 6, Classes: 3}
	run := func(prof *straggler.Profile, trialSeed int64) (float64, error) {
		p, err := placement.FR(cfg.N, cfg.C)
		if err != nil {
			return 0, err
		}
		st, err := engine.NewISGC(isgc.New(p, trialSeed))
		if err != nil {
			return 0, err
		}
		res, err := engine.Train(engine.Config{
			Strategy:     st,
			Model:        mdl,
			Data:         data,
			BatchSize:    2,
			LearningRate: 0.2,
			W:            2,
			MaxSteps:     cfg.MaxSteps,
			ComputePar:   cfg.ComputePar,
			Profile:      prof,
			Seed:         trialSeed,
		})
		if err != nil {
			return 0, err
		}
		return res.Run.MeanRecovered(), nil
	}

	// Three straggler worlds. One pinned straggler does NOT change the
	// FR(4,2) w=2 expectation (the pair is drawn from the remaining three
	// workers and still lands in the same group 1/3 of the time: E = 5/6,
	// same as homogeneous). The paper's 99.6% arises when the enduring
	// stragglers leave a persistent *cross-group* fast pair — here one
	// pinned-slow worker per group.
	setups := []struct {
		name string
		prof func(trialSeed int64) *straggler.Profile
	}{
		{"homogeneous stragglers", func(s int64) *straggler.Profile {
			return straggler.NewProfile(cfg.N, straggler.Exponential{Mean: cfg.DelayMean}, s+1)
		}},
		{"worker 0 pinned 50x slow", func(s int64) *straggler.Profile {
			base := straggler.NewProfile(cfg.N, straggler.Exponential{Mean: cfg.DelayMean}, s+1)
			return base.WithEnduringStraggler(0, 50, s+2)
		}},
		{"one pinned per group (paper's 99.6% case)", func(s int64) *straggler.Profile {
			base := straggler.NewProfile(cfg.N, straggler.Exponential{Mean: cfg.DelayMean}, s+1)
			return base.WithEnduringStraggler(0, 50, s+2).WithEnduringStraggler(cfg.C, 50, s+3)
		}},
	}
	rows := make([]EnduringStragglerRow, len(setups))
	for i, setup := range setups {
		rows[i].Setup = setup.name
		for trial := 0; trial < cfg.Trials; trial++ {
			trialSeed := cfg.Seed + int64(trial)*557
			r, err := run(setup.prof(trialSeed), trialSeed)
			if err != nil {
				return nil, nil, err
			}
			rows[i].Recovered += r
		}
		rows[i].Recovered /= float64(cfg.Trials)
	}
	tab := trace.NewTable(
		fmt.Sprintf("Ablation: enduring straggler, IS-GC-FR(%d,%d), w=2", cfg.N, cfg.C),
		"setup", "recovered_fraction")
	for _, r := range rows {
		tab.AddRow(r.Setup, r.Recovered)
	}
	return rows, tab, nil
}

// DecoderQualityRow is one row of the decoder ablation.
type DecoderQualityRow struct {
	Decoder string
	// MeanAlphaRatio is E[found size / optimal size] over random W'.
	MeanAlphaRatio float64
	// OptimalFraction is the fraction of instances decoded optimally.
	OptimalFraction float64
}

// DecoderQuality quantifies why the paper's multi-start greedy matters: a
// naive single-start greedy walk is not always optimal (Fig. 4(b)'s trap),
// the paper's decoder always is, and both are compared against the exact
// oracle on random CR availability sets.
func DecoderQuality(n, c, trials int, seed int64) ([]DecoderQualityRow, *trace.Table, error) {
	p, err := placement.CR(n, c)
	if err != nil {
		return nil, nil, err
	}
	scheme := isgc.New(p, seed)
	rng := rand.New(rand.NewSource(seed + 9))

	singleStart := func(avail *bitset.Set) int {
		// Greedy walk from the lowest available vertex only.
		start := avail.Min()
		cur := 1
		last := start
		for off := 1; off < n; off++ {
			v := (start + off) % n
			if avail.Contains(v) && graph.CircDist(last, v, n) >= c && graph.CircDist(v, start, n) >= c {
				cur++
				last = v
			}
		}
		return cur
	}

	type acc struct {
		ratio   float64
		optimal int
	}
	var single, paper acc
	count := 0
	for t := 0; t < trials; t++ {
		avail := bitset.New(n)
		for v := 0; v < n; v++ {
			if rng.Float64() < 0.5 {
				avail.Add(v)
			}
		}
		if avail.Empty() {
			continue
		}
		count++
		opt := graph.IndependenceNumber(p.ConflictGraph(), avail)
		s := singleStart(avail)
		g := scheme.Decode(avail).Len()
		single.ratio += float64(s) / float64(opt)
		paper.ratio += float64(g) / float64(opt)
		if s == opt {
			single.optimal++
		}
		if g == opt {
			paper.optimal++
		}
	}
	if count == 0 {
		return nil, nil, fmt.Errorf("experiments: no non-empty availability sets sampled")
	}
	rows := []DecoderQualityRow{
		{"single-start greedy", single.ratio / float64(count), float64(single.optimal) / float64(count)},
		{"paper multi-start (Alg. 2)", paper.ratio / float64(count), float64(paper.optimal) / float64(count)},
	}
	tab := trace.NewTable(
		fmt.Sprintf("Ablation: decoder quality on CR(%d,%d), %d random W'", n, c, count),
		"decoder", "mean_alpha_ratio", "optimal_fraction")
	for _, r := range rows {
		tab.AddRow(r.Decoder, r.MeanAlphaRatio, r.OptimalFraction)
	}
	return rows, tab, nil
}

func maxIntLocal(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// HRStructureRow is one (g, c1) cell of the HR structure sweep.
type HRStructureRow struct {
	G, N0, C1, C2 int
	// ExpectedRecovery is E[recovered fraction] at the sweep's w
	// (exact enumeration via the analysis package).
	ExpectedRecovery float64
}

// HRStructure sweeps every valid HR(n, c1, c-c1) with every divisor group
// count g, reporting the exact expected recovery at w available workers —
// the full design space the paper's Fig. 13 samples one slice of (g=2).
// Larger c1 (more FR-like groups) and larger n0 both trade flexibility for
// recovery; the table makes the whole trade-off surface visible.
func HRStructure(n, c, w int, seed int64) ([]HRStructureRow, *trace.Table, error) {
	if n <= 0 || c <= 0 || w <= 0 || w > n {
		return nil, nil, fmt.Errorf("experiments: invalid HR structure sweep n=%d c=%d w=%d", n, c, w)
	}
	var rows []HRStructureRow
	for g := 1; g <= n; g++ {
		if n%g != 0 {
			continue
		}
		for c1 := 0; c1 <= c; c1++ {
			if c1 == 0 && g != 1 {
				continue // c1=0 is the same CR(n, c) regardless of g; emitted once at g=1
			}
			p, err := placement.HR(n, c1, c-c1, g)
			if err != nil {
				continue // outside the Theorem 6 validity range
			}
			er, err := analysisExpectedRecovery(p, w, seed)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, HRStructureRow{
				G: g, N0: n / g, C1: c1, C2: c - c1,
				ExpectedRecovery: er,
			})
		}
	}
	tab := trace.NewTable(
		fmt.Sprintf("HR structure sweep: n=%d, c=%d, w=%d — E[recovered fraction] over the valid (g, c1) space", n, c, w),
		"g", "n0", "c1", "c2", "expected_recovery")
	for _, r := range rows {
		tab.AddRow(r.G, r.N0, r.C1, r.C2, r.ExpectedRecovery)
	}
	return rows, tab, nil
}
