package experiments

import (
	"fmt"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/engine"
	"isgc/internal/events"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
	"isgc/internal/trace"
)

// AttributionConfig parameterizes the straggler-attribution demonstration:
// an IS-GC run over a partially straggling fleet whose per-worker arrival
// and compute times are attributed, answering "who was slow, and was it
// compute or delivery?" — the operator-facing view the cluster master also
// prints after a real run.
type AttributionConfig struct {
	// N, C fix the CR placement; W is the fastest-w gather target.
	N, C, W int
	// Steps is the number of simulated steps.
	Steps int
	// DelayMean is the exponential delay mean of the straggling workers.
	DelayMean time.Duration
	// SlowCount is how many workers straggle (workers 0..SlowCount-1).
	SlowCount int
	// Compute and Upload parameterize the simulated step time.
	Compute time.Duration
	Upload  time.Duration
	// Dataset/optimizer knobs.
	Samples, Features int
	BatchSize         int
	LearningRate      float64
	Seed              int64
	// Events, when non-nil, receives the run's structured events.
	Events *events.Log
	// ComputePar sizes the engine's gradient compute pool (0 keeps the
	// sequential default); bit-identical either way.
	ComputePar int
}

// DefaultAttribution returns a configuration sized to finish in seconds:
// n=8 CR(8,2) with 3 straggling workers — small enough to eyeball the
// table, large enough that chosen-vs-ignored splits are visible.
func DefaultAttribution() AttributionConfig {
	return AttributionConfig{
		N: 8, C: 2, W: 5,
		Steps:     120,
		DelayMean: 400 * time.Millisecond,
		SlowCount: 3,
		Compute:   30 * time.Millisecond,
		Upload:    10 * time.Millisecond,
		Samples:   160, Features: 6,
		BatchSize:    4,
		LearningRate: 0.1,
		Seed:         17,
	}
}

// Attribution runs IS-GC under partial straggling with attribution enabled
// and returns the per-worker report plus its rendered table. The slow
// workers (low ids) should show high arrival percentiles and low
// chosen counts; the attribution separates their delivery delay from the
// (uniform) compute time.
func Attribution(cfg AttributionConfig) (trace.AttributionReport, *trace.Table, error) {
	if cfg.N <= 0 || cfg.C <= 0 || cfg.Steps <= 0 || cfg.W <= 0 {
		return trace.AttributionReport{}, nil, fmt.Errorf("experiments: invalid Attribution config %+v", cfg)
	}
	p, err := placement.CR(cfg.N, cfg.C)
	if err != nil {
		return trace.AttributionReport{}, nil, fmt.Errorf("experiments: %w", err)
	}
	st, err := engine.NewISGC(isgc.New(p, cfg.Seed))
	if err != nil {
		return trace.AttributionReport{}, nil, fmt.Errorf("experiments: %w", err)
	}
	data, _, err := dataset.SyntheticLinear(cfg.Samples, cfg.Features, 0.1, cfg.Seed)
	if err != nil {
		return trace.AttributionReport{}, nil, fmt.Errorf("experiments: %w", err)
	}
	attr := trace.NewAttribution(cfg.N)
	_, err = engine.Train(engine.Config{
		Strategy:            st,
		Model:               model.LinearRegression{Features: cfg.Features},
		Data:                data,
		BatchSize:           cfg.BatchSize,
		LearningRate:        cfg.LearningRate,
		W:                   cfg.W,
		MaxSteps:            cfg.Steps,
		ComputePerPartition: cfg.Compute,
		Upload:              cfg.Upload,
		ComputePar:          cfg.ComputePar,
		Profile:             straggler.PartialProfile(cfg.N, cfg.SlowCount, straggler.Exponential{Mean: cfg.DelayMean}, cfg.Seed+900),
		Seed:                cfg.Seed,
		Events:              cfg.Events,
		Attribution:         attr,
	})
	if err != nil {
		return trace.AttributionReport{}, nil, fmt.Errorf("experiments: attribution: %w", err)
	}
	rep := attr.Report()
	return rep, rep.Table(), nil
}
