// Package admin is the operational HTTP surface of a running master or
// worker process: Prometheus metrics on /metrics, a JSON liveness and
// degradation summary on /healthz, the structured event ring on
// /debug/events, a Chrome-trace timeline on /debug/timeline, and the
// standard Go profiling endpoints under /debug/pprof/. It is stdlib-only
// and deliberately decoupled from the cluster packages — any process
// hands it a metrics registry, an optional health snapshot function, and
// optional event/timeline sinks.
//
// Lifecycle: New → Start (binds the listener, serves in the background) →
// Shutdown (graceful, bounded by the caller's context). Start with
// ":0" and read Addr() to get an ephemeral port, the same discipline the
// cluster listener uses.
package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"isgc/internal/buildinfo"
	"isgc/internal/events"
	"isgc/internal/metrics"
	"isgc/internal/obs"
)

// Config configures the admin server.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:9090" or ":0".
	Addr string
	// Registry backs /metrics; nil serves an empty exposition.
	Registry *metrics.Registry
	// Health produces the /healthz payload at request time; it must be
	// safe to call from any goroutine. Nil serves {"status":"ok"}.
	Health func() any
	// Events backs /debug/events with its in-memory ring; nil serves an
	// empty list.
	Events *events.Log
	// Timeline backs /debug/timeline with a Chrome trace of the spans
	// recorded so far; nil serves an empty trace.
	Timeline *events.Timeline
	// TimeSeries backs /api/timeseries and the /debug/dash dashboard with
	// the process's (or the control plane's federated) time-series store;
	// nil serves an empty catalog and a dashboard with no data.
	TimeSeries *obs.Store
	// Alerts backs /api/alerts with the SLO rule engine's state and adds
	// an "alerts" summary to /healthz; nil serves an empty list.
	Alerts *obs.Rules
	// Profiles backs /debug/profiles with the continuous profiler's
	// retained captures; nil serves an empty list.
	Profiles *obs.Profiler
	// Extra mounts additional routes (pattern → handler) into the admin
	// mux — how the control plane exposes /jobs and /fleet without this
	// package importing it. Extra patterns must not collide with the
	// built-in routes; a collision panics at Handler time, which is a
	// configuration bug, not a runtime condition.
	Extra map[string]http.Handler
}

// Server is one admin HTTP server.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// New builds a server; nothing listens until Start.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg}
	s.srv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// Handler returns the route table (also used directly by tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/events", s.handleEvents)
	mux.HandleFunc("/debug/timeline", s.handleTimeline)
	mux.Handle("/api/timeseries", obs.HandleTimeseries(s.cfg.TimeSeries))
	mux.Handle("/api/alerts", obs.HandleAlerts(s.cfg.Alerts))
	mux.Handle("/debug/dash", obs.HandleDash(s.cfg.TimeSeries))
	mux.Handle("/debug/profiles", obs.HandleProfiles(s.cfg.Profiles))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range s.cfg.Extra {
		mux.Handle(pattern, h)
	}
	return mux
}

// Start binds the listener and serves in a background goroutine.
func (s *Server) Start() error {
	if s.ln != nil {
		return fmt.Errorf("admin: already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("admin: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	go func() {
		// ErrServerClosed is the normal Shutdown result; anything else
		// surfaces on the next Shutdown call, not here — the admin plane
		// must never take the training plane down with it.
		_ = s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns "http://addr" (empty before Start).
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.ln.Addr().String()
}

// Shutdown drains in-flight requests and closes the listener, bounded by
// ctx. Safe to call without a prior Start (no-op).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.ln == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "isgc admin endpoints:\n"+
		"  /metrics         Prometheus exposition\n"+
		"  /healthz         liveness + degradation summary (JSON)\n"+
		"  /api/timeseries  windowed time-series query API (JSON; ?name=&window=&step=&agg=&label.K=V)\n"+
		"  /api/alerts      SLO rule states (JSON)\n"+
		"  /debug/dash      live dashboard (HTML)\n"+
		"  /debug/events    recent structured events (JSON; ?n=K limits)\n"+
		"  /debug/timeline  Chrome trace of the run so far (load in ui.perfetto.dev)\n"+
		"  /debug/profiles  continuous-profiling captures (JSON; ?download=NAME)\n"+
		"  /debug/pprof/    Go profiling\n")
	if len(s.cfg.Extra) > 0 {
		patterns := make([]string, 0, len(s.cfg.Extra))
		for p := range s.cfg.Extra {
			patterns = append(patterns, p)
		}
		sort.Strings(patterns)
		fmt.Fprint(w, "extra endpoints:\n")
		for _, p := range patterns {
			fmt.Fprintf(w, "  %s\n", p)
		}
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.TextContentType)
	if s.cfg.Registry == nil {
		return
	}
	// Errors past the first byte cannot change the status code; the
	// scraper sees a truncated body and retries on its next interval.
	_ = s.cfg.Registry.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var payload any = map[string]string{"status": "ok"}
	if s.cfg.Health != nil {
		payload = s.cfg.Health()
	}
	payload = withBuildInfo(payload)
	payload = withAlerts(payload, s.cfg.Alerts)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
	}
}

// withBuildInfo injects a "build" key into a JSON-object health payload so
// existing consumers that unmarshal the payload into their own struct keep
// working (unknown keys are ignored) while new ones see the binary's
// identity. Non-object payloads pass through untouched.
func withBuildInfo(payload any) any {
	raw, err := json.Marshal(payload)
	if err != nil {
		return payload
	}
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil || obj == nil {
		return payload
	}
	obj["build"] = buildinfo.Get()
	return obj
}

// withAlerts injects the SLO engine's summary — and the firing alerts
// themselves, so /healthz alone tells an operator what is wrong — into a
// JSON-object health payload. Same pass-through contract as
// withBuildInfo; a nil engine adds nothing.
func withAlerts(payload any, ru *obs.Rules) any {
	if ru == nil {
		return payload
	}
	raw, err := json.Marshal(payload)
	if err != nil {
		return payload
	}
	var obj map[string]any
	if err := json.Unmarshal(raw, &obj); err != nil || obj == nil {
		return payload
	}
	summary := ru.Summarize()
	a := map[string]any{"summary": summary}
	if summary.Firing > 0 {
		var firing []obs.Alert
		for _, al := range ru.Alerts() {
			if al.State == obs.StateFiring {
				firing = append(firing, al)
			}
		}
		a["firing"] = firing
	}
	obj["alerts"] = a
	return obj
}

// jsonError writes a structured JSON error body with the right
// content-type — the admin API contract for malformed queries.
func jsonError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// handleEvents serves the in-memory event ring as a JSON array, oldest
// first. ?n=K returns only the most recent K events.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	evs := s.cfg.Events.Snapshot()
	if evs == nil {
		evs = []events.Event{}
	}
	if q := r.URL.Query().Get("n"); q != "" {
		n, err := strconv.Atoi(q)
		if err != nil || n < 0 {
			jsonError(w, http.StatusBadRequest,
				fmt.Sprintf("n must be a non-negative integer, got %q", q))
			return
		}
		if n < len(evs) {
			evs = evs[len(evs)-n:]
		}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(evs); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
	}
}

// handleTimeline serves the recorded spans as a Chrome trace-event JSON
// document — save it (or fetch it directly) and load it in
// ui.perfetto.dev or chrome://tracing.
func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", `attachment; filename="isgc-timeline.json"`)
	_ = s.cfg.Timeline.WriteChromeTrace(w)
}
