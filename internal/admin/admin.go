// Package admin is the operational HTTP surface of a running master or
// worker process: Prometheus metrics on /metrics, a JSON liveness and
// degradation summary on /healthz, and the standard Go profiling
// endpoints under /debug/pprof/. It is stdlib-only and deliberately
// decoupled from the cluster packages — any process hands it a metrics
// registry and an optional health snapshot function.
//
// Lifecycle: New → Start (binds the listener, serves in the background) →
// Shutdown (graceful, bounded by the caller's context). Start with
// ":0" and read Addr() to get an ephemeral port, the same discipline the
// cluster listener uses.
package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"isgc/internal/metrics"
)

// Config configures the admin server.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:9090" or ":0".
	Addr string
	// Registry backs /metrics; nil serves an empty exposition.
	Registry *metrics.Registry
	// Health produces the /healthz payload at request time; it must be
	// safe to call from any goroutine. Nil serves {"status":"ok"}.
	Health func() any
}

// Server is one admin HTTP server.
type Server struct {
	cfg Config
	ln  net.Listener
	srv *http.Server
}

// New builds a server; nothing listens until Start.
func New(cfg Config) *Server {
	s := &Server{cfg: cfg}
	s.srv = &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	return s
}

// Handler returns the route table (also used directly by tests).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Start binds the listener and serves in a background goroutine.
func (s *Server) Start() error {
	if s.ln != nil {
		return fmt.Errorf("admin: already started on %s", s.ln.Addr())
	}
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return fmt.Errorf("admin: listen %s: %w", s.cfg.Addr, err)
	}
	s.ln = ln
	go func() {
		// ErrServerClosed is the normal Shutdown result; anything else
		// surfaces on the next Shutdown call, not here — the admin plane
		// must never take the training plane down with it.
		_ = s.srv.Serve(ln)
	}()
	return nil
}

// Addr returns the bound address (empty before Start).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns "http://addr" (empty before Start).
func (s *Server) URL() string {
	if s.ln == nil {
		return ""
	}
	return "http://" + s.ln.Addr().String()
}

// Shutdown drains in-flight requests and closes the listener, bounded by
// ctx. Safe to call without a prior Start (no-op).
func (s *Server) Shutdown(ctx context.Context) error {
	if s.ln == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "isgc admin endpoints:\n"+
		"  /metrics       Prometheus exposition\n"+
		"  /healthz       liveness + degradation summary (JSON)\n"+
		"  /debug/pprof/  Go profiling\n")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", metrics.TextContentType)
	if s.cfg.Registry == nil {
		return
	}
	// Errors past the first byte cannot change the status code; the
	// scraper sees a truncated body and retries on its next interval.
	_ = s.cfg.Registry.WritePrometheus(w)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	var payload any = map[string]string{"status": "ok"}
	if s.cfg.Health != nil {
		payload = s.cfg.Health()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(payload); err != nil {
		http.Error(w, fmt.Sprintf(`{"error":%q}`, err), http.StatusInternalServerError)
	}
}
