package admin

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"isgc/internal/events"
	"isgc/internal/metrics"
	"isgc/internal/obs"
)

// TestMetricsGolden pins the /metrics response: status, content type, and
// exact exposition body.
func TestMetricsGolden(t *testing.T) {
	reg := metrics.NewRegistry()
	c := reg.NewCounter("steps_total", "Training steps.")
	c.Add(3)
	h := reg.NewHistogram("gather_seconds", "Gather latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)

	s := New(Config{Registry: reg})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))

	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != metrics.TextContentType {
		t.Fatalf("content type = %q", ct)
	}
	const want = `# HELP gather_seconds Gather latency.
# TYPE gather_seconds histogram
gather_seconds_bucket{le="0.1"} 1
gather_seconds_bucket{le="1"} 2
gather_seconds_bucket{le="+Inf"} 2
gather_seconds_sum 0.55
gather_seconds_count 2
# HELP steps_total Training steps.
# TYPE steps_total counter
steps_total 3
`
	if rec.Body.String() != want {
		t.Fatalf("body mismatch:\n--- got ---\n%s--- want ---\n%s", rec.Body.String(), want)
	}
}

func TestHealthzShape(t *testing.T) {
	type workerHealth struct {
		ID    int  `json:"id"`
		Alive bool `json:"alive"`
	}
	s := New(Config{Health: func() any {
		return map[string]any{
			"running": true,
			"step":    7,
			"workers": []workerHealth{{0, true}, {1, false}},
		}
	}})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type = %q", ct)
	}
	var got struct {
		Running bool `json:"running"`
		Step    int  `json:"step"`
		Workers []struct {
			ID    int  `json:"id"`
			Alive bool `json:"alive"`
		} `json:"workers"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("healthz is not valid JSON: %v\n%s", err, rec.Body.String())
	}
	if !got.Running || got.Step != 7 || len(got.Workers) != 2 || got.Workers[1].Alive {
		t.Fatalf("unexpected payload: %+v", got)
	}
}

func TestHealthzDefault(t *testing.T) {
	s := New(Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var got map[string]any
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got["status"] != "ok" {
		t.Fatalf("default healthz = %v", got)
	}
}

// TestHealthzBuildInfo pins that object payloads gain a "build" key with
// the binary's identity — and that struct-typed consumers unmarshaling
// into their own types are unaffected (unknown keys are ignored).
func TestHealthzBuildInfo(t *testing.T) {
	s := New(Config{Health: func() any { return map[string]any{"step": 3} }})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	var got struct {
		Step  int `json:"step"`
		Build struct {
			GoVersion string `json:"go_version"`
			Version   string `json:"version"`
		} `json:"build"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
		t.Fatalf("healthz: %v\n%s", err, rec.Body.String())
	}
	if got.Step != 3 {
		t.Fatalf("payload fields lost: %+v", got)
	}
	if got.Build.GoVersion == "" || got.Build.Version == "" {
		t.Fatalf("build info missing: %s", rec.Body.String())
	}
}

func TestDebugEvents(t *testing.T) {
	log := events.New(events.Config{Writer: io.Discard})
	for i := 0; i < 5; i++ {
		log.Info("test.tick", "tick", i, events.NoWorker, nil)
	}
	log.Warn("test.evicted", "gone", 5, 2, nil)
	s := New(Config{Events: log})

	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var evs []events.Event
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatalf("events: %v\n%s", err, rec.Body.String())
	}
	if len(evs) != 6 || evs[5].Type != "test.evicted" || evs[5].Level != events.LevelWarn {
		t.Fatalf("events = %+v", evs)
	}

	// ?n=2 returns the most recent two.
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?n=2", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[1].Type != "test.evicted" {
		t.Fatalf("limited events = %+v", evs)
	}

	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events?n=bogus", nil))
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("bad n: status = %d, want 400", rec.Code)
	}
}

func TestDebugEventsNilLog(t *testing.T) {
	s := New(Config{})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/events", nil))
	if rec.Code != http.StatusOK || strings.TrimSpace(rec.Body.String()) != "[]" {
		t.Fatalf("nil log: status=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestDebugTimeline(t *testing.T) {
	tl := events.NewTimeline(0)
	tl.SetThreadName(0, "master")
	tl.Add(events.Span{Name: "step 0", Cat: "step", Start: time.Now(), Dur: time.Millisecond})
	s := New(Config{Timeline: tl})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &tr); err != nil {
		t.Fatalf("timeline: %v\n%s", err, rec.Body.String())
	}
	var foundSpan bool
	for _, e := range tr.TraceEvents {
		if e.Ph == "X" && e.Name == "step 0" {
			foundSpan = true
		}
	}
	if !foundSpan {
		t.Fatalf("span missing: %s", rec.Body.String())
	}

	// A nil timeline still serves a loadable empty trace.
	rec = httptest.NewRecorder()
	New(Config{}).Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/timeline", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"traceEvents"`) {
		t.Fatalf("nil timeline: status=%d body=%q", rec.Code, rec.Body.String())
	}
}

func TestIndexAndPprof(t *testing.T) {
	s := New(Config{})
	for _, path := range []string{"/", "/debug/pprof/"} {
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("GET %s: status %d", path, rec.Code)
		}
	}
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/no-such-page", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("GET /no-such-page: status %d, want 404", rec.Code)
	}
}

// sampleLine matches a Prometheus text-format sample or comment line.
var sampleLine = regexp.MustCompile(`^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? (-?[0-9.e+-]+|[+-]Inf|NaN))$`)

// TestConcurrentScrapeWhileStepping runs a real HTTP server and hammers
// /metrics and /healthz while "training steps" update the instruments —
// the -race workout for the whole scrape path.
func TestConcurrentScrapeWhileStepping(t *testing.T) {
	reg := metrics.NewRegistry()
	steps := reg.NewCounter("steps_total", "")
	gather := reg.NewHistogram("gather_seconds", "", metrics.DefBuckets)
	frac := reg.NewGauge("recovered_fraction", "")
	var stepCount int64
	var mu sync.Mutex
	reg.NewGaugeFunc("alive_workers", "", func() float64 {
		mu.Lock()
		defer mu.Unlock()
		return float64(stepCount % 5)
	})

	s := New(Config{
		Addr:     "127.0.0.1:0",
		Registry: reg,
		Health: func() any {
			mu.Lock()
			defer mu.Unlock()
			return map[string]int64{"step": stepCount}
		},
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // the "training loop"
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			steps.Inc()
			gather.Observe(float64(i%100) / 1000)
			frac.Set(float64(i%10) / 10)
			mu.Lock()
			stepCount++
			mu.Unlock()
		}
	}()

	client := &http.Client{Timeout: 2 * time.Second}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				resp, err := client.Get(s.URL() + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				body, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil {
					t.Error(err)
					return
				}
				for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
					if !sampleLine.MatchString(line) {
						t.Errorf("invalid exposition line %q", line)
						return
					}
				}
				resp, err = client.Get(s.URL() + "/healthz")
				if err != nil {
					t.Error(err)
					return
				}
				var payload struct {
					Step int64 `json:"step"`
				}
				err = json.NewDecoder(resp.Body).Decode(&payload)
				resp.Body.Close()
				if err != nil {
					t.Errorf("healthz decode: %v", err)
					return
				}
			}
		}()
	}
	// Let the scrapers finish, then stop the stepper.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	time.Sleep(50 * time.Millisecond)
	close(stop)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for scrapers")
	}
}

func TestDoubleStartFails(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if err := s.Start(); err == nil {
		t.Fatal("second Start should fail")
	}
}

func TestShutdownWithoutStart(t *testing.T) {
	s := New(Config{})
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestAddrBeforeStart(t *testing.T) {
	s := New(Config{Addr: "127.0.0.1:0"})
	if s.Addr() != "" || s.URL() != "" {
		t.Fatal("Addr/URL should be empty before Start")
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown(context.Background())
	if s.Addr() == "" || !strings.HasPrefix(s.URL(), "http://127.0.0.1:") {
		t.Fatalf("Addr = %q URL = %q", s.Addr(), s.URL())
	}
	// The server actually answers on that address.
	resp, err := http.Get(s.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}

func ExampleServer() {
	reg := metrics.NewRegistry()
	reg.NewCounter("example_total", "An example counter.").Add(2)
	s := New(Config{Addr: "127.0.0.1:0", Registry: reg})
	if err := s.Start(); err != nil {
		fmt.Println(err)
		return
	}
	defer s.Shutdown(context.Background())
	resp, err := http.Get(s.URL() + "/metrics")
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	fmt.Print(string(body))
	// Output:
	// # HELP example_total An example counter.
	// # TYPE example_total counter
	// example_total 2
}

// TestExtraRoutes covers Config.Extra: the handlers are mounted into the
// mux and the index page advertises them.
func TestExtraRoutes(t *testing.T) {
	s := New(Config{Extra: map[string]http.Handler{
		"/jobs": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "jobs here")
		}),
		"/fleet": http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			fmt.Fprint(w, "fleet here")
		}),
	}})
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/jobs", nil))
	if rec.Code != http.StatusOK || rec.Body.String() != "jobs here" {
		t.Fatalf("GET /jobs = %d %q", rec.Code, rec.Body.String())
	}
	rec = httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	body := rec.Body.String()
	for _, want := range []string{"extra endpoints:", "/fleet", "/jobs"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index page does not list %q:\n%s", want, body)
		}
	}
	if strings.Index(body, "/fleet") > strings.Index(body, "/jobs") {
		t.Fatal("extra endpoints are not sorted on the index page")
	}
}

// TestDebugEventsParamTable is the table-driven contract for ?n=
// hardening: malformed and negative values return 400 with a JSON error
// body and content type, valid values limit.
func TestDebugEventsParamTable(t *testing.T) {
	log := events.New(events.Config{})
	for i := 0; i < 4; i++ {
		log.Info("tick", "t", i, events.NoWorker, nil)
	}
	s := New(Config{Events: log})
	cases := []struct {
		name   string
		url    string
		status int
	}{
		{"no limit", "/debug/events", 200},
		{"zero", "/debug/events?n=0", 200},
		{"in range", "/debug/events?n=2", 200},
		{"past end", "/debug/events?n=99", 200},
		{"negative", "/debug/events?n=-1", 400},
		{"malformed", "/debug/events?n=two", 400},
		{"float", "/debug/events?n=1.5", 400},
		{"empty value kept as unset", "/debug/events?n=", 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", tc.url, nil))
			if rec.Code != tc.status {
				t.Fatalf("%s: status %d, want %d", tc.url, rec.Code, tc.status)
			}
			if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
				t.Errorf("%s: content-type %q, want application/json", tc.url, ct)
			}
			if tc.status == 400 && !strings.Contains(rec.Body.String(), `"error"`) {
				t.Errorf("%s: 400 body %q has no error field", tc.url, rec.Body.String())
			}
		})
	}
}

// TestObsRoutes exercises the observability surface mounted by the admin
// server: time-series queries, alerts, the dashboard page, and profiles.
func TestObsRoutes(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.NewGauge("isgc_master_recovered_fraction", "").Set(0.4)
	store := obs.NewStore(obs.StoreConfig{Retention: 16})
	store.AddSource("job/a", reg, map[string]string{"job": "a"})
	store.SampleNow()
	rules := obs.NewRules(obs.RulesConfig{
		Store: store,
		Rules: []obs.Rule{{
			Name: "recovered-floor", Series: "isgc_master_recovered_fraction",
			Agg: obs.AggLast, Window: time.Minute, Op: obs.OpBelow, Bound: 0.9,
			For: time.Nanosecond,
		}},
	})
	rules.EvalNow()
	time.Sleep(time.Millisecond)
	store.SampleNow()
	rules.EvalNow() // breach held past For → firing

	s := New(Config{
		Registry:   reg,
		TimeSeries: store,
		Alerts:     rules,
	})
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/api/timeseries?name=isgc_master_recovered_fraction&label.job=a")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"points"`) {
		t.Fatalf("/api/timeseries: %d %s", rec.Code, rec.Body.String())
	}
	rec = get("/api/timeseries?name=x&window=junk")
	if rec.Code != 400 || !strings.Contains(rec.Body.String(), `"error"`) {
		t.Fatalf("malformed window: %d %s", rec.Code, rec.Body.String())
	}

	rec = get("/api/alerts")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"firing"`) {
		t.Fatalf("/api/alerts: %d %s", rec.Code, rec.Body.String())
	}

	rec = get("/debug/dash")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "/api/timeseries") {
		t.Fatalf("/debug/dash: %d", rec.Code)
	}

	rec = get("/debug/profiles")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), `"profiles"`) {
		t.Fatalf("/debug/profiles: %d %s", rec.Code, rec.Body.String())
	}

	// /healthz carries the alerts summary plus the firing alerts.
	rec = get("/healthz")
	var health struct {
		Alerts struct {
			Summary obs.Summary `json:"summary"`
			Firing  []obs.Alert `json:"firing"`
		} `json:"alerts"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatalf("healthz: %v\n%s", err, rec.Body.String())
	}
	if health.Alerts.Summary.Firing != 1 || len(health.Alerts.Firing) != 1 {
		t.Fatalf("healthz alerts = %+v, want one firing", health.Alerts)
	}
	if health.Alerts.Firing[0].Rule != "recovered-floor" {
		t.Errorf("firing rule = %q", health.Alerts.Firing[0].Rule)
	}

	// The index advertises the new routes.
	rec = get("/")
	for _, want := range []string{"/api/timeseries", "/api/alerts", "/debug/dash", "/debug/profiles"} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Errorf("index missing %s", want)
		}
	}
}
