// Primary-liveness lease for warm-standby failover. The acting master
// holds a LEASE file in the checkpoint directory and renews it
// periodically; a standby polls and takes over once the lease has not been
// renewed for a full TTL. The lease is advisory — a filesystem timestamp,
// not a distributed lock — which matches the deployment model here: one
// checkpoint directory shared by at most one primary and its standbys.

package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// LeaseName is the lease file's name inside a checkpoint directory.
const LeaseName = "LEASE"

// Lease is the on-disk liveness record.
type Lease struct {
	Holder            string        `json:"holder"`
	RenewedAtUnixNano int64         `json:"renewed_at_unix_nano"`
	TTL               time.Duration `json:"ttl_nanos"`
}

// RenewedAt returns the last renewal instant.
func (l Lease) RenewedAt() time.Time { return time.Unix(0, l.RenewedAtUnixNano) }

// Expired reports whether the lease has lapsed at time now.
func (l Lease) Expired(now time.Time) bool {
	return now.Sub(l.RenewedAt()) > l.TTL
}

// WriteLease atomically (re)writes the lease as held by holder, renewed
// now. Called by the primary on acquire and on every renewal tick.
func (s *Store) WriteLease(holder string, ttl time.Duration) error {
	l := Lease{Holder: holder, RenewedAtUnixNano: time.Now().UnixNano(), TTL: ttl}
	data, err := json.Marshal(l)
	if err != nil {
		return fmt.Errorf("checkpoint: marshal lease: %w", err)
	}
	return writeFileAtomic(filepath.Join(s.dir, LeaseName), data)
}

// ReadLease returns the current lease. os.ErrNotExist when no lease file
// exists (no primary has ever run, or it released cleanly).
func (s *Store) ReadLease() (Lease, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, LeaseName))
	if err != nil {
		return Lease{}, err
	}
	var l Lease
	if err := json.Unmarshal(data, &l); err != nil {
		return Lease{}, fmt.Errorf("checkpoint: decode lease: %w", err)
	}
	return l, nil
}

// ReleaseLease removes the lease file — the graceful-exit path, letting a
// standby take over immediately instead of waiting out the TTL.
func (s *Store) ReleaseLease() error {
	err := os.Remove(filepath.Join(s.dir, LeaseName))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return nil
}
