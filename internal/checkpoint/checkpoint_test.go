package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func newTestStore(t *testing.T, retain int) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir(), retain)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLatestRoundTrip(t *testing.T) {
	s := newTestStore(t, 0)
	want := State{
		Version:      1,
		RunID:        "run-1",
		Scheme:       "cr",
		N:            12,
		C:            3,
		Seed:         42,
		W:            8,
		Step:         17,
		Params:       Float64sToBytes([]float64{1.5, -2.25, 3.125}),
		LastLoss:     0.25,
		DecoderSeed:  42,
		DecoderDraws: 999,
		EventCursor:  123,
		RecordCursor: 17,
	}
	info, err := s.Save(want.Step, &want)
	if err != nil {
		t.Fatal(err)
	}
	if info.Step != 17 || info.File == "" || info.Size == 0 {
		t.Fatalf("bad save info: %+v", info)
	}

	var got State
	linfo, err := s.Latest(&got)
	if err != nil {
		t.Fatal(err)
	}
	if linfo.Step != 17 {
		t.Fatalf("Latest step = %d, want 17", linfo.Step)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if ps := BytesToFloat64s(got.Params); !reflect.DeepEqual(ps, []float64{1.5, -2.25, 3.125}) {
		t.Fatalf("params decode = %v", ps)
	}
}

func TestLatestPicksNewest(t *testing.T) {
	s := newTestStore(t, 10)
	for _, step := range []int{1, 5, 9} {
		if _, err := s.Save(step, &State{Step: step}); err != nil {
			t.Fatal(err)
		}
	}
	var got State
	info, err := s.Latest(&got)
	if err != nil {
		t.Fatal(err)
	}
	if info.Step != 9 || got.Step != 9 {
		t.Fatalf("Latest = step %d (payload %d), want 9", info.Step, got.Step)
	}
}

func TestRetentionPrunes(t *testing.T) {
	s := newTestStore(t, 2)
	for step := 1; step <= 5; step++ {
		if _, err := s.Save(step, &State{Step: step}); err != nil {
			t.Fatal(err)
		}
	}
	steps, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(steps, []int{4, 5}) {
		t.Fatalf("retained steps = %v, want [4 5]", steps)
	}
	entries, err := os.ReadDir(s.Dir())
	if err != nil {
		t.Fatal(err)
	}
	files := 0
	for _, e := range entries {
		if e.Name() != manifestName {
			files++
		}
	}
	if files != 2 {
		t.Fatalf("dir holds %d checkpoint files, want 2", files)
	}
}

func TestLatestEmptyDir(t *testing.T) {
	s := newTestStore(t, 0)
	var got State
	if _, err := s.Latest(&got); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
}

func TestSameStepOverwrite(t *testing.T) {
	s := newTestStore(t, 3)
	if _, err := s.Save(4, &State{Step: 4, LastLoss: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save(4, &State{Step: 4, LastLoss: 2}); err != nil {
		t.Fatal(err)
	}
	steps, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(steps, []int{4}) {
		t.Fatalf("steps = %v, want [4]", steps)
	}
	var got State
	if _, err := s.Latest(&got); err != nil {
		t.Fatal(err)
	}
	if got.LastLoss != 2 {
		t.Fatalf("got stale payload: %+v", got)
	}
}

// Corruption tests ---------------------------------------------------------

// corrupt truncates or mutates the latest checkpoint file and asserts the
// store falls back to the previous one, reporting the skip.
func TestRestoreSkipsTruncatedFile(t *testing.T) {
	s := newTestStore(t, 5)
	mustSave(t, s, 3)
	mustSave(t, s, 7)
	truncateFile(t, filepath.Join(s.Dir(), checkpointFileName(7)), 10)

	var skips []string
	s.SetSkipHook(func(file string, reason error) { skips = append(skips, file) })

	var got State
	info, err := s.Latest(&got)
	if err != nil {
		t.Fatal(err)
	}
	if info.Step != 3 || got.Step != 3 {
		t.Fatalf("restored step %d, want fallback to 3", info.Step)
	}
	if len(skips) != 1 || skips[0] != checkpointFileName(7) {
		t.Fatalf("skip hook calls = %v, want exactly the truncated file", skips)
	}
}

// TestRestoreSkipsBadCRC flips payload bytes without breaking JSON syntax
// — only the CRC can catch this — and asserts fallback to the previous
// checkpoint.
func TestRestoreSkipsBadCRC(t *testing.T) {
	s := newTestStore(t, 5)
	mustSave(t, s, 3)
	if _, err := s.Save(7, &State{Step: 7, RunID: "genuine"}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.Dir(), checkpointFileName(7))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutated := []byte(string(data))
	replaced := false
	for i := 0; i+7 <= len(mutated); i++ {
		if string(mutated[i:i+7]) == "genuine" {
			copy(mutated[i:], "forgery")
			replaced = true
			break
		}
	}
	if !replaced {
		t.Fatal("marker not found in checkpoint file")
	}
	if err := os.WriteFile(path, mutated, 0o644); err != nil {
		t.Fatal(err)
	}

	skips := 0
	s.SetSkipHook(func(string, error) { skips++ })
	var got State
	info, err := s.Latest(&got)
	if err != nil {
		t.Fatal(err)
	}
	if info.Step != 3 || skips == 0 {
		t.Fatalf("restored step %d with %d skips; want CRC to catch the mutation and fall back to 3", info.Step, skips)
	}
}

// TestRestoreTornManifest simulates a crash between writing a checkpoint
// file and renaming the manifest: the temp manifest exists, the real one
// is stale (or gone). Restore must still find the newest valid file via
// the directory scan.
func TestRestoreTornManifest(t *testing.T) {
	s := newTestStore(t, 5)
	mustSave(t, s, 3)
	mustSave(t, s, 7)

	// Stale manifest: rewind it to mention only step 3, leave step 7's
	// file on disk (as if the crash hit before the manifest rename).
	manifestPath := filepath.Join(s.Dir(), manifestName)
	if err := os.Remove(manifestPath); err != nil {
		t.Fatal(err)
	}
	mustSave(t, s, 3) // rebuilds a manifest knowing only step 3
	// Leave a torn temp file around too.
	if err := os.WriteFile(manifestPath+".tmp-123", []byte("{\"version\":1,"), 0o644); err != nil {
		t.Fatal(err)
	}

	var got State
	info, err := s.Latest(&got)
	if err != nil {
		t.Fatal(err)
	}
	if info.Step != 7 || got.Step != 7 {
		t.Fatalf("restored step %d, want 7 via directory scan", info.Step)
	}
}

func TestRestoreGarbageManifest(t *testing.T) {
	s := newTestStore(t, 5)
	mustSave(t, s, 5)
	if err := os.WriteFile(filepath.Join(s.Dir(), manifestName), []byte("not json at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	skips := 0
	s.SetSkipHook(func(string, error) { skips++ })
	var got State
	info, err := s.Latest(&got)
	if err != nil {
		t.Fatal(err)
	}
	if info.Step != 5 {
		t.Fatalf("restored step %d, want 5", info.Step)
	}
	if skips == 0 {
		t.Fatal("garbage manifest should be reported via the skip hook")
	}
}

func TestRestoreAllCorrupt(t *testing.T) {
	s := newTestStore(t, 5)
	mustSave(t, s, 1)
	mustSave(t, s, 2)
	for _, step := range []int{1, 2} {
		truncateFile(t, filepath.Join(s.Dir(), checkpointFileName(step)), 5)
	}
	var got State
	if _, err := s.Latest(&got); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint (and no panic)", err)
	}
}

// Lease tests --------------------------------------------------------------

func TestLeaseLifecycle(t *testing.T) {
	s := newTestStore(t, 0)
	if _, err := s.ReadLease(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("fresh dir lease err = %v, want ErrNotExist", err)
	}
	if err := s.WriteLease("master-1", 100*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	l, err := s.ReadLease()
	if err != nil {
		t.Fatal(err)
	}
	if l.Holder != "master-1" || l.TTL != 100*time.Millisecond {
		t.Fatalf("lease = %+v", l)
	}
	if l.Expired(time.Now()) {
		t.Fatal("fresh lease reports expired")
	}
	if !l.Expired(time.Now().Add(200 * time.Millisecond)) {
		t.Fatal("lease not expired after TTL elapsed")
	}
	if err := s.ReleaseLease(); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadLease(); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after release err = %v, want ErrNotExist", err)
	}
	// Releasing twice is fine.
	if err := s.ReleaseLease(); err != nil {
		t.Fatal(err)
	}
}

// Helpers ------------------------------------------------------------------

func mustSave(t *testing.T, s *Store, step int) {
	t.Helper()
	if _, err := s.Save(step, &State{Step: step}); err != nil {
		t.Fatal(err)
	}
}

func truncateFile(t *testing.T, path string, n int64) {
	t.Helper()
	if err := os.Truncate(path, n); err != nil {
		t.Fatal(err)
	}
}
