// Package checkpoint provides durable, atomic, self-verifying checkpoints
// for training runs. A Store manages one directory of numbered checkpoint
// files plus a manifest; every write follows the temp-file → fsync →
// rename → fsync-dir protocol so a crash at any instant leaves either the
// previous state or the new one, never a torn file being the latest.
//
// Layout of a checkpoint directory:
//
//	ckpt-00000042.json   one checkpoint (envelope + CRC + payload)
//	MANIFEST.json        latest pointer + retained history with per-file CRCs
//	LEASE                primary-liveness lease for warm-standby failover
//
// Each checkpoint file is self-verifying (its envelope carries the CRC of
// its own payload), so restore can fall back to a directory scan when the
// manifest itself is torn or missing. Corrupt or truncated files are
// skipped — reported through the skip hook, never fatal — and restore
// lands on the newest file that checks out.
package checkpoint

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// Version identifies the on-disk envelope/manifest format. Bump on any
// incompatible change; Load rejects versions it does not understand.
const Version = 1

const (
	manifestName = "MANIFEST.json"
	filePrefix   = "ckpt-"
	fileSuffix   = ".json"
)

// DefaultRetain is how many checkpoints a Store keeps when the caller
// passes retain <= 0.
const DefaultRetain = 3

// ErrNoCheckpoint is returned by Latest when the directory holds no valid
// checkpoint (empty, or everything corrupt).
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

// envelope is the on-disk frame around one checkpoint payload. CRC32
// (IEEE) covers exactly the Payload bytes, making every file verifiable
// in isolation.
type envelope struct {
	Version         int             `json:"version"`
	Step            int             `json:"step"`
	SavedAtUnixNano int64           `json:"saved_at_unix_nano"`
	CRC32           uint32          `json:"crc32"`
	Payload         json.RawMessage `json:"payload"`
}

// manifestEntry describes one retained checkpoint file.
type manifestEntry struct {
	File            string `json:"file"`
	Step            int    `json:"step"`
	CRC32           uint32 `json:"crc32"`
	Size            int64  `json:"size"`
	SavedAtUnixNano int64  `json:"saved_at_unix_nano"`
}

// manifest is the directory index: a latest pointer plus the retained
// history, newest last.
type manifest struct {
	Version int             `json:"version"`
	Latest  string          `json:"latest"`
	Entries []manifestEntry `json:"entries"`
}

// Info describes a saved or loaded checkpoint.
type Info struct {
	File    string
	Step    int
	Size    int64
	SavedAt time.Time
}

// Store manages one checkpoint directory. Methods are not safe for
// concurrent use; serialize Save/Latest externally (the master calls them
// from its training loop only).
type Store struct {
	dir    string
	retain int
	// skip, when set, is invoked once per corrupt/unreadable file or
	// manifest encountered during restore. Wired to the
	// checkpoint_restore_skipped metric by the cluster master.
	skip func(file string, reason error)
}

// NewStore opens (creating if needed) a checkpoint directory. retain <= 0
// means DefaultRetain.
func NewStore(dir string, retain int) (*Store, error) {
	if dir == "" {
		return nil, errors.New("checkpoint: empty directory")
	}
	if retain <= 0 {
		retain = DefaultRetain
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint: create dir: %w", err)
	}
	return &Store{dir: dir, retain: retain}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// SetSkipHook registers a callback invoked for every corrupt or unreadable
// file skipped during restore. Pass nil to clear.
func (s *Store) SetSkipHook(fn func(file string, reason error)) { s.skip = fn }

func (s *Store) skipped(file string, reason error) {
	if s.skip != nil {
		s.skip(file, reason)
	}
}

func checkpointFileName(step int) string {
	return fmt.Sprintf("%s%08d%s", filePrefix, step, fileSuffix)
}

// Save durably writes payload as the checkpoint for step. The file lands
// first, then the manifest is updated to point at it; old checkpoints
// beyond the retention count are pruned afterwards.
func (s *Store) Save(step int, payload any) (Info, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return Info{}, fmt.Errorf("checkpoint: marshal payload: %w", err)
	}
	now := time.Now()
	env := envelope{
		Version:         Version,
		Step:            step,
		SavedAtUnixNano: now.UnixNano(),
		CRC32:           crc32.ChecksumIEEE(raw),
		Payload:         raw,
	}
	data, err := json.Marshal(env)
	if err != nil {
		return Info{}, fmt.Errorf("checkpoint: marshal envelope: %w", err)
	}
	name := checkpointFileName(step)
	if err := writeFileAtomic(filepath.Join(s.dir, name), data); err != nil {
		return Info{}, err
	}

	m, _ := s.readManifest() // torn/missing manifest is rebuilt from this entry on
	entries := m.Entries
	// Replace any previous entry for the same file (same-step overwrite).
	kept := entries[:0]
	for _, e := range entries {
		if e.File != name {
			kept = append(kept, e)
		}
	}
	entries = append(kept, manifestEntry{
		File:            name,
		Step:            step,
		CRC32:           env.CRC32,
		Size:            int64(len(data)),
		SavedAtUnixNano: env.SavedAtUnixNano,
	})
	sort.Slice(entries, func(i, j int) bool { return entries[i].Step < entries[j].Step })

	// Prune beyond retention: drop oldest entries and their files.
	var pruned []manifestEntry
	if len(entries) > s.retain {
		pruned = append(pruned, entries[:len(entries)-s.retain]...)
		entries = entries[len(entries)-s.retain:]
	}
	newM := manifest{Version: Version, Latest: name, Entries: entries}
	mdata, err := json.MarshalIndent(newM, "", "  ")
	if err != nil {
		return Info{}, fmt.Errorf("checkpoint: marshal manifest: %w", err)
	}
	if err := writeFileAtomic(filepath.Join(s.dir, manifestName), mdata); err != nil {
		return Info{}, err
	}
	// Only after the manifest durably stopped referencing them.
	for _, e := range pruned {
		os.Remove(filepath.Join(s.dir, e.File))
	}
	return Info{File: name, Step: step, Size: int64(len(data)), SavedAt: now}, nil
}

// Latest loads the newest valid checkpoint into payload (a pointer).
// Corrupt entries are skipped (reported via the skip hook) and the next
// newest is tried; a torn or missing manifest falls back to scanning the
// directory for self-verifying files. Returns ErrNoCheckpoint when nothing
// valid exists.
func (s *Store) Latest(payload any) (Info, error) {
	if _, err := os.Stat(s.dir); err != nil {
		return Info{}, ErrNoCheckpoint
	}
	candidates := s.candidateFiles()
	for _, name := range candidates {
		info, err := s.loadFile(name, payload)
		if err != nil {
			s.skipped(name, err)
			continue
		}
		return info, nil
	}
	return Info{}, ErrNoCheckpoint
}

// candidateFiles returns checkpoint file names to try, newest first. The
// manifest and a directory scan are merged: a crash between a checkpoint's
// rename and the manifest's rename leaves a durable file the manifest does
// not know about, and that file — being newest and self-verifying — must
// still win. Step numbers are zero-padded, so lexical order is step order.
func (s *Store) candidateFiles() []string {
	seen := map[string]bool{}
	var out []string
	add := func(name string) {
		if name != "" && !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	m, err := s.readManifest()
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		s.skipped(manifestName, err)
	}
	add(m.Latest)
	for _, e := range m.Entries {
		add(e.File)
	}
	names, _ := os.ReadDir(s.dir)
	for _, de := range names {
		n := de.Name()
		if strings.HasPrefix(n, filePrefix) && strings.HasSuffix(n, fileSuffix) {
			add(n)
		}
	}
	sort.Sort(sort.Reverse(sort.StringSlice(out)))
	return out
}

// loadFile reads one checkpoint file, verifying version and CRC, and
// unmarshals its payload.
func (s *Store) loadFile(name string, payload any) (Info, error) {
	if name != filepath.Base(name) {
		// A hostile manifest must not make restore read outside the dir.
		return Info{}, fmt.Errorf("invalid checkpoint file name %q", name)
	}
	path := filepath.Join(s.dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return Info{}, err
	}
	var env envelope
	if err := json.Unmarshal(data, &env); err != nil {
		return Info{}, fmt.Errorf("decode envelope: %w", err)
	}
	if env.Version != Version {
		return Info{}, fmt.Errorf("unsupported checkpoint version %d", env.Version)
	}
	if got := crc32.ChecksumIEEE(env.Payload); got != env.CRC32 {
		return Info{}, fmt.Errorf("crc mismatch: file says %08x, payload is %08x", env.CRC32, got)
	}
	if err := json.Unmarshal(env.Payload, payload); err != nil {
		return Info{}, fmt.Errorf("decode payload: %w", err)
	}
	return Info{
		File:    name,
		Step:    env.Step,
		Size:    int64(len(data)),
		SavedAt: time.Unix(0, env.SavedAtUnixNano),
	}, nil
}

// List returns the steps of all retained checkpoints per the manifest,
// oldest first. Intended for tests and tooling.
func (s *Store) List() ([]int, error) {
	m, err := s.readManifest()
	if err != nil {
		return nil, err
	}
	steps := make([]int, len(m.Entries))
	for i, e := range m.Entries {
		steps[i] = e.Step
	}
	return steps, nil
}

func (s *Store) readManifest() (manifest, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, manifestName))
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("decode manifest: %w", err)
	}
	if m.Version != Version {
		return manifest{}, fmt.Errorf("unsupported manifest version %d", m.Version)
	}
	return m, nil
}

// writeFileAtomic writes data at path via a temp file in the same
// directory: write → fsync file → close → rename → fsync directory. After
// it returns nil the file is durable under the final name.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("checkpoint: create temp: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: write temp: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: fsync temp: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: close temp: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("checkpoint: rename: %w", err)
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("checkpoint: open dir: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("checkpoint: fsync dir: %w", err)
	}
	return nil
}
