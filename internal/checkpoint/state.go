// Training-run state snapshots: the payloads the engine, cluster master,
// and cluster worker persist through a Store. Kept as pure data (plus the
// float64↔bytes helpers) so the package stays dependency-free.

package checkpoint

import (
	"encoding/binary"
	"math"
)

// State is one durable snapshot of a training run, taken at a step
// boundary: Step is the next step to execute, Params/Velocity are the
// model state *before* that step. Restoring a State and replaying from
// Step is bit-identical to never having stopped, provided the RNG
// positions below are restored too.
type State struct {
	Version int `json:"version"`
	// RunID identifies the logical run across restarts; a restored master
	// keeps it so traces from both lives can be stitched together.
	RunID string `json:"run_id"`
	// Generation counts master lives: 0 for the first, +1 per restore or
	// failover. Propagated to workers in the hello ack.
	Generation int `json:"generation"`

	// Configuration fingerprint — restore refuses a checkpoint whose
	// scheme shape does not match the configured one.
	Scheme string `json:"scheme"`
	N      int    `json:"n"`
	C      int    `json:"c"`
	Seed   int64  `json:"seed"`
	W      int    `json:"w"`

	// Step is the next step to run (steps [0, Step) are complete).
	Step int `json:"step"`
	// Params and Velocity are little-endian float64 bits — see
	// Float64sToBytes. Velocity is empty when momentum is off.
	Params   []byte `json:"params"`
	Velocity []byte `json:"velocity,omitempty"`
	// LastLoss/LastAccuracy carry the engine's periodic-eval cache so a
	// resumed run records the same values between evals.
	LastLoss     float64 `json:"last_loss"`
	LastAccuracy float64 `json:"last_accuracy"`

	// RNG stream positions (seed + draws), restored via randsrc.
	DecoderSeed   int64  `json:"decoder_seed"`
	DecoderDraws  uint64 `json:"decoder_draws"`
	ProfileSeed   int64  `json:"profile_seed,omitempty"`
	ProfileDraws  uint64 `json:"profile_draws,omitempty"`
	ProfileActive bool   `json:"profile_active,omitempty"`

	// Cursors into append-only observability streams at save time.
	EventCursor  uint64 `json:"event_cursor"`
	RecordCursor int    `json:"record_cursor"`

	// Completed marks a final checkpoint of a finished run; restore-on-
	// start and standby takeover treat it as "nothing left to do".
	Completed       bool  `json:"completed"`
	SavedAtUnixNano int64 `json:"saved_at_unix_nano"`
}

// WorkerState is a worker's durable snapshot: its RNG stream positions and
// progress counter, enough to resume delay/fault sampling bit-identically.
type WorkerState struct {
	Version        int    `json:"version"`
	ID             int    `json:"id"`
	Steps          int64  `json:"steps"`
	DelaySeed      int64  `json:"delay_seed"`
	DelayDraws     uint64 `json:"delay_draws"`
	FaultSeed      int64  `json:"fault_seed"`
	FaultDraws     uint64 `json:"fault_draws"`
	FaultedThrough int    `json:"faulted_through"`
}

// Float64sToBytes encodes xs as little-endian IEEE-754 bits. Used for
// params/velocity so checkpoints are bit-exact by construction (and JSON
// base64-encodes []byte, keeping files compact).
func Float64sToBytes(xs []float64) []byte {
	out := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(x))
	}
	return out
}

// BytesToFloat64s is the inverse of Float64sToBytes. Trailing bytes that
// do not fill a float64 are ignored.
func BytesToFloat64s(b []byte) []float64 {
	out := make([]float64, len(b)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}
