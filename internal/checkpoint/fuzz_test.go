package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeCheckpoint throws arbitrary bytes at the restore path as both
// a checkpoint file and a manifest. The property under test: Latest never
// panics, and either returns a valid checkpoint or ErrNoCheckpoint — a
// hostile directory must degrade to "nothing to restore", not crash a
// recovering master.
func FuzzDecodeCheckpoint(f *testing.F) {
	f.Add([]byte(`{"version":1,"step":3,"crc32":0,"payload":{}}`), []byte(`{"version":1,"latest":"ckpt-00000003.json"}`))
	f.Add([]byte(``), []byte(``))
	f.Add([]byte(`not json`), []byte(`{"version":1,`))
	f.Add([]byte(`{"version":99,"payload":{}}`), []byte(`{"version":1,"latest":"../../etc/passwd"}`))
	f.Add([]byte(`{"version":1,"step":-1,"crc32":4294967295,"payload":[1,2,3]}`), []byte(`{"version":1,"entries":[{"file":"ckpt-00000001.json","step":1}]}`))

	f.Fuzz(func(t *testing.T, ckpt, man []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "ckpt-00000003.json"), ckpt, 0o644); err != nil {
			t.Skip()
		}
		if err := os.WriteFile(filepath.Join(dir, manifestName), man, 0o644); err != nil {
			t.Skip()
		}
		s, err := NewStore(dir, 3)
		if err != nil {
			t.Fatal(err)
		}
		var st State
		if _, err := s.Latest(&st); err == nil {
			// A fuzz input that decodes cleanly must also round-trip
			// through Save without error.
			if _, err := s.Save(st.Step, &st); err != nil {
				t.Fatalf("valid checkpoint failed to re-save: %v", err)
			}
		}
	})
}
