package bitset

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestAddContainsRemove(t *testing.T) {
	s := New(10)
	for _, v := range []int{0, 3, 63, 64, 65, 200} {
		s.Add(v)
		if !s.Contains(v) {
			t.Fatalf("Contains(%d) = false after Add", v)
		}
	}
	if s.Len() != 6 {
		t.Fatalf("Len = %d, want 6", s.Len())
	}
	s.Remove(63)
	if s.Contains(63) {
		t.Fatal("Contains(63) = true after Remove")
	}
	if s.Len() != 5 {
		t.Fatalf("Len = %d, want 5", s.Len())
	}
}

func TestNegativeValuesIgnored(t *testing.T) {
	s := New(4)
	s.Add(-1)
	if !s.Empty() {
		t.Fatal("Add(-1) should be a no-op")
	}
	if s.Contains(-5) {
		t.Fatal("Contains(-5) should be false")
	}
	s.Remove(-2) // must not panic
}

func TestZeroValueUsable(t *testing.T) {
	var s Set
	s.Add(70)
	if !s.Contains(70) || s.Len() != 1 {
		t.Fatal("zero-value Set should be usable")
	}
}

func TestNewNegativeCapacity(t *testing.T) {
	s := New(-3)
	s.Add(1)
	if !s.Contains(1) {
		t.Fatal("New(-3) should yield an empty usable set")
	}
}

func TestSetOps(t *testing.T) {
	a := FromSlice([]int{1, 2, 3, 100})
	b := FromSlice([]int{2, 3, 4})

	u := a.Clone()
	u.UnionWith(b)
	if got, want := u.String(), "{1, 2, 3, 4, 100}"; got != want {
		t.Fatalf("union = %s, want %s", got, want)
	}

	i := a.Clone()
	i.IntersectWith(b)
	if got, want := i.String(), "{2, 3}"; got != want {
		t.Fatalf("intersection = %s, want %s", got, want)
	}

	d := a.Clone()
	d.DifferenceWith(b)
	if got, want := d.String(), "{1, 100}"; got != want {
		t.Fatalf("difference = %s, want %s", got, want)
	}

	if !a.Intersects(b) {
		t.Fatal("a.Intersects(b) = false")
	}
	if a.IntersectionCount(b) != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", a.IntersectionCount(b))
	}
	if FromSlice([]int{1}).Intersects(FromSlice([]int{2})) {
		t.Fatal("disjoint sets must not intersect")
	}
}

func TestEqualDifferentWordLengths(t *testing.T) {
	a := FromSlice([]int{1, 2})
	b := New(1000)
	b.Add(1)
	b.Add(2)
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal must ignore trailing zero words")
	}
	b.Add(999)
	if a.Equal(b) || b.Equal(a) {
		t.Fatal("sets differing in a high word must not be Equal")
	}
}

func TestSubsetOf(t *testing.T) {
	a := FromSlice([]int{2, 4})
	b := FromSlice([]int{1, 2, 3, 4})
	if !a.SubsetOf(b) {
		t.Fatal("a ⊆ b expected")
	}
	if b.SubsetOf(a) {
		t.Fatal("b ⊄ a expected")
	}
	var empty Set
	if !empty.SubsetOf(a) {
		t.Fatal("∅ ⊆ a expected")
	}
	big := FromSlice([]int{500})
	if big.SubsetOf(a) {
		t.Fatal("{500} ⊄ a expected")
	}
}

func TestMinMax(t *testing.T) {
	var s Set
	if s.Min() != -1 || s.Max() != -1 {
		t.Fatal("Min/Max of empty set must be -1")
	}
	s.Add(65)
	s.Add(7)
	s.Add(129)
	if s.Min() != 7 {
		t.Fatalf("Min = %d, want 7", s.Min())
	}
	if s.Max() != 129 {
		t.Fatalf("Max = %d, want 129", s.Max())
	}
}

func TestRangeEarlyStop(t *testing.T) {
	s := FromSlice([]int{1, 2, 3, 4, 5})
	var seen []int
	s.Range(func(v int) bool {
		seen = append(seen, v)
		return len(seen) < 3
	})
	if len(seen) != 3 {
		t.Fatalf("Range visited %d elements, want 3", len(seen))
	}
}

func TestSliceSorted(t *testing.T) {
	s := FromSlice([]int{300, 5, 64, 63, 0})
	got := s.Slice()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("Slice() not sorted: %v", got)
	}
	if len(got) != 5 {
		t.Fatalf("Slice() len = %d, want 5", len(got))
	}
}

func TestClearRetainsUsability(t *testing.T) {
	s := FromSlice([]int{1, 2, 3})
	s.Clear()
	if !s.Empty() {
		t.Fatal("set not empty after Clear")
	}
	s.Add(2)
	if s.Len() != 1 {
		t.Fatal("set unusable after Clear")
	}
}

// Property: set semantics match a map[int]bool reference implementation
// under a random operation sequence.
func TestQuickAgainstMapReference(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New(0)
		ref := map[int]bool{}
		for i := 0; i < 300; i++ {
			v := rng.Intn(200)
			switch rng.Intn(3) {
			case 0:
				s.Add(v)
				ref[v] = true
			case 1:
				s.Remove(v)
				delete(ref, v)
			default:
				if s.Contains(v) != ref[v] {
					return false
				}
			}
		}
		if s.Len() != len(ref) {
			return false
		}
		for v := range ref {
			if !s.Contains(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: De Morgan-ish identity |A∪B| = |A| + |B| − |A∩B|.
func TestQuickInclusionExclusion(t *testing.T) {
	f := func(av, bv []uint16) bool {
		a, b := New(0), New(0)
		for _, v := range av {
			a.Add(int(v) % 500)
		}
		for _, v := range bv {
			b.Add(int(v) % 500)
		}
		u := a.Clone()
		u.UnionWith(b)
		return u.Len() == a.Len()+b.Len()-a.IntersectionCount(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Clone is independent of the original.
func TestQuickCloneIndependence(t *testing.T) {
	f := func(vs []uint16) bool {
		a := New(0)
		for _, v := range vs {
			a.Add(int(v) % 300)
		}
		c := a.Clone()
		if !c.Equal(a) {
			return false
		}
		c.Add(301)
		return !a.Contains(301)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
