// Package bitset provides a compact set of non-negative integers backed by
// machine words. It is the workhorse behind the conflict-graph adjacency
// structures and the exact maximum-independent-set oracle: all hot-path
// operations (intersection, population count, iteration) are word-parallel.
package bitset

import (
	"fmt"
	"math/bits"
	"strings"
)

const wordBits = 64

// Set is a growable bitset. The zero value is an empty set ready for use.
// Set is not safe for concurrent mutation.
type Set struct {
	words []uint64
}

// New returns a set with capacity for values in [0, n). The set may still
// grow beyond n via Add.
func New(n int) *Set {
	if n < 0 {
		n = 0
	}
	return &Set{words: make([]uint64, (n+wordBits-1)/wordBits)}
}

// FromSlice builds a set containing every value in vs.
func FromSlice(vs []int) *Set {
	s := &Set{}
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

func (s *Set) grow(word int) {
	if word < len(s.words) {
		return
	}
	w := make([]uint64, word+1)
	copy(w, s.words)
	s.words = w
}

// Add inserts v into the set. Negative values are ignored.
func (s *Set) Add(v int) {
	if v < 0 {
		return
	}
	w := v / wordBits
	s.grow(w)
	s.words[w] |= 1 << uint(v%wordBits)
}

// Remove deletes v from the set if present.
func (s *Set) Remove(v int) {
	if v < 0 {
		return
	}
	w := v / wordBits
	if w < len(s.words) {
		s.words[w] &^= 1 << uint(v%wordBits)
	}
}

// Contains reports whether v is in the set.
func (s *Set) Contains(v int) bool {
	if v < 0 {
		return false
	}
	w := v / wordBits
	return w < len(s.words) && s.words[w]&(1<<uint(v%wordBits)) != 0
}

// Len returns the number of elements in the set.
func (s *Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Empty reports whether the set has no elements.
func (s *Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of the set.
func (s *Set) Clone() *Set {
	c := &Set{words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// Clear removes all elements, retaining capacity.
func (s *Set) Clear() {
	for i := range s.words {
		s.words[i] = 0
	}
}

func (s *Set) alignTo(o *Set) {
	if len(o.words) > len(s.words) {
		s.grow(len(o.words) - 1)
	}
}

// UnionWith adds every element of o to s.
func (s *Set) UnionWith(o *Set) {
	s.alignTo(o)
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// IntersectWith removes from s every element not in o.
func (s *Set) IntersectWith(o *Set) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &= o.words[i]
		} else {
			s.words[i] = 0
		}
	}
}

// DifferenceWith removes from s every element of o.
func (s *Set) DifferenceWith(o *Set) {
	for i := range s.words {
		if i < len(o.words) {
			s.words[i] &^= o.words[i]
		}
	}
}

// Intersects reports whether s and o share at least one element.
func (s *Set) Intersects(o *Set) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectionCount returns |s ∩ o| without allocating.
func (s *Set) IntersectionCount(o *Set) int {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	c := 0
	for i := 0; i < n; i++ {
		c += bits.OnesCount64(s.words[i] & o.words[i])
	}
	return c
}

// AndNot returns a new set holding s \ o (the elements of s not in o).
// The word-parallel complement of DifferenceWith for callers that need the
// original left intact — mask-delta computations (departed = prev &^ cur,
// returned = cur &^ prev) are its hot use.
func (s *Set) AndNot(o *Set) *Set {
	out := &Set{words: make([]uint64, len(s.words))}
	for i, w := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		out.words[i] = w &^ ow
	}
	return out
}

// PopcountAnd returns |s ∩ o| one word at a time — the same value as
// IntersectionCount, named for the machine operation so conflict-probe
// call sites read as what they cost.
func (s *Set) PopcountAnd(o *Set) int { return s.IntersectionCount(o) }

// IntersectsAny reports whether s shares an element with any of the given
// sets, short-circuiting on the first word-level overlap.
func (s *Set) IntersectsAny(os ...*Set) bool {
	for _, o := range os {
		if o != nil && s.Intersects(o) {
			return true
		}
	}
	return false
}

// rangeWords visits the words overlapping [lo, hi) with the partial first
// and last words masked down to the range, calling fn(index, maskedWord).
// Iteration stops early when fn returns false.
func (s *Set) rangeWords(lo, hi int, fn func(i int, w uint64) bool) {
	if lo < 0 {
		lo = 0
	}
	if max := len(s.words) * wordBits; hi > max {
		hi = max
	}
	if lo >= hi {
		return
	}
	first, last := lo/wordBits, (hi-1)/wordBits
	for i := first; i <= last; i++ {
		w := s.words[i]
		if i == first {
			w &= ^uint64(0) << uint(lo%wordBits)
		}
		if i == last {
			if r := (hi-1)%wordBits + 1; r < wordBits {
				w &= (1 << uint(r)) - 1
			}
		}
		if !fn(i, w) {
			return
		}
	}
}

// AnyInRange reports whether s contains an element in [lo, hi).
// O((hi-lo)/64) words, independent of the population.
func (s *Set) AnyInRange(lo, hi int) bool {
	found := false
	s.rangeWords(lo, hi, func(_ int, w uint64) bool {
		if w != 0 {
			found = true
			return false
		}
		return true
	})
	return found
}

// CountInRange returns |s ∩ [lo, hi)| via per-word popcounts.
func (s *Set) CountInRange(lo, hi int) int {
	n := 0
	s.rangeWords(lo, hi, func(_ int, w uint64) bool {
		n += bits.OnesCount64(w)
		return true
	})
	return n
}

// NextInRange returns the smallest element of s in [lo, hi), or -1 when the
// range holds none. This is the bit-scan primitive behind the interval
// greedy walks: each probe costs O(range/64) words, not O(range) bits.
func (s *Set) NextInRange(lo, hi int) int {
	out := -1
	s.rangeWords(lo, hi, func(i int, w uint64) bool {
		if w != 0 {
			out = i*wordBits + bits.TrailingZeros64(w)
			return false
		}
		return true
	})
	return out
}

// IntersectsRange reports whether s ∩ o has an element in [lo, hi) — the
// word-parallel conflict probe: "does any chosen worker sit inside this
// conflict window?" without materializing the intersection.
func (s *Set) IntersectsRange(o *Set, lo, hi int) bool {
	found := false
	s.rangeWords(lo, hi, func(i int, w uint64) bool {
		if i < len(o.words) && w&o.words[i] != 0 {
			found = true
			return false
		}
		return true
	})
	return found
}

// Select returns the k-th smallest element (0-based), or -1 when k is out
// of range. Words are skipped by popcount, so selection is O(n/64 + 64)
// rather than a per-element walk — what makes a uniform random pick from a
// 50k-worker availability mask cheap.
func (s *Set) Select(k int) int {
	if k < 0 {
		return -1
	}
	for i, w := range s.words {
		c := bits.OnesCount64(w)
		if k >= c {
			k -= c
			continue
		}
		for ; ; k-- {
			b := bits.TrailingZeros64(w)
			if k == 0 {
				return i*wordBits + b
			}
			w &^= 1 << uint(b)
		}
	}
	return -1
}

// CloneCapped returns a copy of s restricted to values in [0, n), sized
// for exactly that universe. The word-parallel form of "clone, then drop
// out-of-range elements": O(n/64) words regardless of population, which is
// what keeps per-step mask clamping cheap at tens of thousands of workers.
func (s *Set) CloneCapped(n int) *Set {
	out := New(n)
	m := len(out.words)
	if len(s.words) < m {
		m = len(s.words)
	}
	copy(out.words[:m], s.words[:m])
	if r := n % wordBits; r != 0 && len(out.words) > 0 {
		out.words[len(out.words)-1] &= (1 << uint(r)) - 1
	}
	return out
}

// Equal reports whether s and o contain exactly the same elements.
func (s *Set) Equal(o *Set) bool {
	long, short := s.words, o.words
	if len(short) > len(long) {
		long, short = short, long
	}
	for i, w := range short {
		if long[i] != w {
			return false
		}
	}
	for _, w := range long[len(short):] {
		if w != 0 {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every element of s is in o.
func (s *Set) SubsetOf(o *Set) bool {
	for i, w := range s.words {
		var ow uint64
		if i < len(o.words) {
			ow = o.words[i]
		}
		if w&^ow != 0 {
			return false
		}
	}
	return true
}

// Min returns the smallest element, or -1 if the set is empty.
func (s *Set) Min() int {
	for i, w := range s.words {
		if w != 0 {
			return i*wordBits + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// Max returns the largest element, or -1 if the set is empty.
func (s *Set) Max() int {
	for i := len(s.words) - 1; i >= 0; i-- {
		if w := s.words[i]; w != 0 {
			return i*wordBits + wordBits - 1 - bits.LeadingZeros64(w)
		}
	}
	return -1
}

// Range calls fn for each element in ascending order. If fn returns false,
// iteration stops.
func (s *Set) Range(fn func(v int) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(i*wordBits + b) {
				return
			}
			w &^= 1 << uint(b)
		}
	}
}

// Slice returns the elements in ascending order.
func (s *Set) Slice() []int {
	out := make([]int, 0, s.Len())
	s.Range(func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}

// AppendKey appends a canonical byte encoding of the set to dst and
// returns the extended slice. Two sets with equal elements produce equal
// encodings regardless of internal capacity (trailing zero words are
// trimmed), which makes the result usable as a map key via string(key).
func (s *Set) AppendKey(dst []byte) []byte {
	n := len(s.words)
	for n > 0 && s.words[n-1] == 0 {
		n--
	}
	for _, w := range s.words[:n] {
		dst = append(dst,
			byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
	return dst
}

// String renders the set as "{a, b, c}".
func (s *Set) String() string {
	var b strings.Builder
	b.WriteByte('{')
	first := true
	s.Range(func(v int) bool {
		if !first {
			b.WriteString(", ")
		}
		first = false
		fmt.Fprintf(&b, "%d", v)
		return true
	})
	b.WriteByte('}')
	return b.String()
}
