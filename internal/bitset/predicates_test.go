package bitset

import (
	"math/rand"
	"testing"
)

// naive* are the bit-by-bit reference implementations the word-parallel
// predicates are property-tested against. They intentionally share no code
// with the production paths.

func naiveAndNot(a, b *Set, universe int) []int {
	var out []int
	for v := 0; v < universe; v++ {
		if a.Contains(v) && !b.Contains(v) {
			out = append(out, v)
		}
	}
	return out
}

func naiveCountInRange(s *Set, lo, hi, universe int) int {
	n := 0
	for v := 0; v < universe; v++ {
		if v >= lo && v < hi && s.Contains(v) {
			n++
		}
	}
	return n
}

func naiveNextInRange(s *Set, lo, hi, universe int) int {
	for v := 0; v < universe; v++ {
		if v >= lo && v < hi && s.Contains(v) {
			return v
		}
	}
	return -1
}

func naiveIntersectsRange(a, b *Set, lo, hi, universe int) bool {
	for v := 0; v < universe; v++ {
		if v >= lo && v < hi && a.Contains(v) && b.Contains(v) {
			return true
		}
	}
	return false
}

func naivePopcountAnd(a, b *Set, universe int) int {
	n := 0
	for v := 0; v < universe; v++ {
		if a.Contains(v) && b.Contains(v) {
			n++
		}
	}
	return n
}

func naiveSelect(s *Set, k, universe int) int {
	for v := 0; v < universe; v++ {
		if s.Contains(v) {
			if k == 0 {
				return v
			}
			k--
		}
	}
	return -1
}

func randomSet(rng *rand.Rand, universe int, density float64) *Set {
	s := New(universe)
	for v := 0; v < universe; v++ {
		if rng.Float64() < density {
			s.Add(v)
		}
	}
	return s
}

// TestWordParallelPredicatesVsNaive drives every new predicate against the
// bit-by-bit reference over random sets whose sizes straddle word
// boundaries, with ranges that start/end mid-word, exactly on word edges,
// in the tail word, and beyond capacity.
func TestWordParallelPredicatesVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	universes := []int{0, 1, 5, 63, 64, 65, 127, 128, 129, 200, 300}
	for _, u := range universes {
		for trial := 0; trial < 30; trial++ {
			density := []float64{0, 0.05, 0.3, 0.7, 1}[trial%5]
			a := randomSet(rng, u, density)
			b := randomSet(rng, u, 0.4)
			// Universe+64 lets ranges run past the tail word on purpose.
			probe := u + 64

			got := a.AndNot(b).Slice()
			want := naiveAndNot(a, b, probe)
			if len(got) != len(want) {
				t.Fatalf("u=%d AndNot: got %v want %v", u, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("u=%d AndNot: got %v want %v", u, got, want)
				}
			}
			if g, w := a.PopcountAnd(b), naivePopcountAnd(a, b, probe); g != w {
				t.Fatalf("u=%d PopcountAnd: got %d want %d", u, g, w)
			}
			if g, w := a.IntersectsAny(b), naivePopcountAnd(a, b, probe) > 0; g != w {
				t.Fatalf("u=%d IntersectsAny: got %v want %v", u, g, w)
			}

			// Ranges: random plus handcrafted word-boundary cases.
			ranges := [][2]int{
				{0, 0}, {0, probe}, {0, 1}, {63, 64}, {63, 65}, {64, 64},
				{64, 128}, {u - 1, u + 10}, {u, u + 10}, {-5, 3}, {10, 5},
			}
			for r := 0; r < 10; r++ {
				lo := rng.Intn(probe+1) - 2
				ranges = append(ranges, [2]int{lo, lo + rng.Intn(probe+2)})
			}
			for _, rg := range ranges {
				lo, hi := rg[0], rg[1]
				cl, ch := lo, hi // clamp for the naive probe loop
				if cl < 0 {
					cl = 0
				}
				if g, w := a.CountInRange(lo, hi), naiveCountInRange(a, cl, ch, probe); g != w {
					t.Fatalf("u=%d CountInRange(%d,%d): got %d want %d", u, lo, hi, g, w)
				}
				if g, w := a.AnyInRange(lo, hi), naiveCountInRange(a, cl, ch, probe) > 0; g != w {
					t.Fatalf("u=%d AnyInRange(%d,%d): got %v want %v", u, lo, hi, g, w)
				}
				if g, w := a.NextInRange(lo, hi), naiveNextInRange(a, cl, ch, probe); g != w {
					t.Fatalf("u=%d NextInRange(%d,%d): got %d want %d", u, lo, hi, g, w)
				}
				if g, w := a.IntersectsRange(b, lo, hi), naiveIntersectsRange(a, b, cl, ch, probe); g != w {
					t.Fatalf("u=%d IntersectsRange(%d,%d): got %v want %v", u, lo, hi, g, w)
				}
			}

			for _, k := range []int{-1, 0, 1, a.Len() - 1, a.Len(), a.Len() + 3} {
				if g, w := a.Select(k), naiveSelect(a, k, probe); g != w {
					if k < 0 && g == -1 && w == -1 {
						continue
					}
					t.Fatalf("u=%d Select(%d): got %d want %d", u, k, g, w)
				}
			}
		}
	}
}

// TestCloneCappedVsNaive checks the word-parallel clamp against an
// element-by-element rebuild, across word-boundary cap values.
func TestCloneCappedVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, u := range []int{0, 1, 63, 64, 65, 129, 300} {
		for trial := 0; trial < 20; trial++ {
			s := randomSet(rng, u, 0.4)
			for _, cap := range []int{0, 1, 5, 63, 64, 65, u - 1, u, u + 7, u + 64} {
				if cap < 0 {
					continue
				}
				want := New(cap)
				for v := 0; v < cap; v++ {
					if s.Contains(v) {
						want.Add(v)
					}
				}
				if got := s.CloneCapped(cap); !got.Equal(want) {
					t.Fatalf("u=%d CloneCapped(%d) = %v, want %v", u, cap, got, want)
				}
			}
		}
	}
}

// TestSelectMatchesRange pins Select(k) to the k-th element Range visits.
func TestSelectMatchesRange(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		s := randomSet(rng, 1+rng.Intn(400), 0.25)
		var elems []int
		s.Range(func(v int) bool { elems = append(elems, v); return true })
		for k, v := range elems {
			if got := s.Select(k); got != v {
				t.Fatalf("Select(%d) = %d, want %d (set %v)", k, got, v, s)
			}
		}
		if got := s.Select(len(elems)); got != -1 {
			t.Fatalf("Select past end = %d, want -1", got)
		}
	}
}

// TestAndNotLeavesOperandsIntact guards the non-mutating contract.
func TestAndNotLeavesOperandsIntact(t *testing.T) {
	a := FromSlice([]int{1, 64, 130})
	b := FromSlice([]int{64})
	before := a.Slice()
	got := a.AndNot(b)
	if !a.Equal(FromSlice(before)) {
		t.Fatalf("AndNot mutated receiver: %v", a)
	}
	if !b.Equal(FromSlice([]int{64})) {
		t.Fatalf("AndNot mutated operand: %v", b)
	}
	if want := FromSlice([]int{1, 130}); !got.Equal(want) {
		t.Fatalf("AndNot = %v, want %v", got, want)
	}
}
