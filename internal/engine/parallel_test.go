package engine

import (
	"testing"

	"isgc/internal/dataset"
	"isgc/internal/model"
	"isgc/internal/placement"
)

// The parallel gradient path must be bit-identical to the serial path:
// every partition writes its own slot and float arithmetic per partition
// is unchanged.
func TestParallelMatchesSerial(t *testing.T) {
	d, err := dataset.SyntheticClusters(240, 6, 3, 1.5, 41)
	if err != nil {
		t.Fatal(err)
	}
	run := func(parallel bool) []float64 {
		p, err := placement.CR(8, 3)
		if err != nil {
			t.Fatal(err)
		}
		st := isgcStrategy(t, p, nil, 11)
		res, err := Train(Config{
			Strategy:     st,
			Model:        model.MLP{Features: 6, Hidden: 8, Classes: 3},
			Data:         d,
			BatchSize:    8,
			LearningRate: 0.1,
			W:            5,
			MaxSteps:     30,
			Seed:         11,
			Parallel:     parallel,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Params
	}
	serial := run(false)
	par := run(true)
	for j := range serial {
		if serial[j] != par[j] {
			t.Fatalf("param %d differs: serial %v vs parallel %v", j, serial[j], par[j])
		}
	}
}
