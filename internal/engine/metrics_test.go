package engine

import (
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/isgc"
	"isgc/internal/metrics"
	"isgc/internal/model"
	"isgc/internal/placement"
)

// TestTrainMetrics runs the same config with and without instrumentation:
// the results must be bit-identical (metrics are pure observation) and the
// exported values must agree with the trace.
func TestTrainMetrics(t *testing.T) {
	p, perr := placement.CR(4, 2)
	st := isgcStrategy(t, p, perr, 7)
	cfg := baseConfig(t, st)
	cfg.W = 2
	cfg.MaxSteps = 20

	plain, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := metrics.NewRegistry()
	em := NewMetrics(reg)
	cfg.Metrics = em
	// Fresh strategy: the decoder's RNG is stateful across runs.
	p, perr = placement.CR(4, 2)
	cfg.Strategy = isgcStrategy(t, p, perr, 7)
	instrumented, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Observation must not perturb training.
	if len(plain.Params) != len(instrumented.Params) {
		t.Fatal("param dim changed")
	}
	for i := range plain.Params {
		if plain.Params[i] != instrumented.Params[i] {
			t.Fatalf("params diverge at %d: %v vs %v", i, plain.Params[i], instrumented.Params[i])
		}
	}

	// Exported values agree with the trace.
	steps := uint64(instrumented.Run.Steps())
	if got := em.Steps.Value(); got != steps {
		t.Errorf("steps counter = %d, trace says %d", got, steps)
	}
	if got := em.StepTime.Count(); got != steps {
		t.Errorf("step-time observations = %d, want %d", got, steps)
	}
	if got := em.MISSize.Count(); got != steps {
		t.Errorf("MIS-size observations = %d, want %d", got, steps)
	}
	var wantParts uint64
	var lastFrac float64
	for _, rec := range instrumented.Run.Records {
		wantParts += uint64(len(rec.Partitions))
		lastFrac = rec.RecoveredFraction
	}
	if got := em.PartitionsRecovered.Value(); got != wantParts {
		t.Errorf("partitions recovered = %d, trace says %d", got, wantParts)
	}
	if got := em.RecoveredFraction.Value(); got != lastFrac {
		t.Errorf("recovered fraction gauge = %v, trace says %v", got, lastFrac)
	}
}

// BenchmarkTrainStep measures the engine step hot path with metrics off
// and on — the acceptance criterion is < 5% overhead when enabled.
func BenchmarkTrainStep(b *testing.B) {
	for _, withMetrics := range []bool{false, true} {
		name := "metrics=off"
		if withMetrics {
			name = "metrics=on"
		}
		b.Run(name, func(b *testing.B) {
			p, err := placement.CR(8, 2)
			if err != nil {
				b.Fatal(err)
			}
			st, err := NewISGC(isgc.New(p, 7))
			if err != nil {
				b.Fatal(err)
			}
			data, err := dataset.SyntheticClusters(960, 6, 3, 4.0, 101)
			if err != nil {
				b.Fatal(err)
			}
			const stepsPerRun = 50
			cfg := Config{
				Strategy:     st,
				Model:        model.SoftmaxRegression{Features: 6, Classes: 3},
				Data:         data,
				BatchSize:    16,
				LearningRate: 0.3,
				W:            4,
				MaxSteps:     stepsPerRun,
				Seed:         42,
				EvalEvery:    stepsPerRun, // keep the loss pass off the hot path
			}
			if withMetrics {
				cfg.Metrics = NewMetrics(metrics.NewRegistry())
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Train(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			perStep := float64(b.Elapsed().Nanoseconds()) / float64(b.N*stepsPerRun)
			b.ReportMetric(perStep, "ns/step")
		})
	}
}

// TestMetricsOverheadBudget is the executable form of the < 5% criterion:
// it times the step loop with metrics off and on (best of three, to shed
// scheduler noise) and fails when the instrumented path is more than 5%
// slower.
func TestMetricsOverheadBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-sensitive; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("race detector inflates atomic costs; budget holds for normal builds")
	}
	p, err := placement.CR(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewISGC(isgc.New(p, 7))
	if err != nil {
		t.Fatal(err)
	}
	data, err := dataset.SyntheticClusters(960, 6, 3, 4.0, 101)
	if err != nil {
		t.Fatal(err)
	}
	run := func(em *Metrics) time.Duration {
		cfg := Config{
			Strategy:     st,
			Model:        model.SoftmaxRegression{Features: 6, Classes: 3},
			Data:         data,
			BatchSize:    16,
			LearningRate: 0.3,
			W:            4,
			MaxSteps:     60,
			Seed:         42,
			EvalEvery:    60,
			Metrics:      em,
		}
		best := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := Train(cfg); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	run(nil) // warm caches
	// A single measurement is at the mercy of whatever the rest of the
	// test binary is doing; accept the first attempt under budget.
	var overhead float64
	for attempt := 0; attempt < 3; attempt++ {
		off := run(nil)
		on := run(NewMetrics(metrics.NewRegistry()))
		overhead = float64(on-off) / float64(off)
		t.Logf("attempt %d: metrics off %v, on %v, overhead %.2f%%", attempt, off, on, overhead*100)
		if overhead <= 0.05 {
			return
		}
	}
	t.Errorf("metrics overhead %.2f%% exceeds 5%% budget on all attempts", overhead*100)
}
