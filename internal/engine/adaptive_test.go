package engine

import (
	"testing"
	"time"

	"isgc/internal/placement"
	"isgc/internal/straggler"
)

// The adaptive policy of Sec. IV: wait for few workers early, more later.
func TestWScheduleAdaptive(t *testing.T) {
	p, perr := placement.CR(4, 2)
	st := isgcStrategy(t, p, perr, 3)
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 20
	cfg.Profile = straggler.NewProfile(4, straggler.Exponential{Mean: time.Second}, 5)
	cfg.WSchedule = func(step int) int {
		if step < 10 {
			return 1
		}
		return 3
	}
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, rec := range res.Run.Records {
		want := 1
		if i >= 10 {
			want = 3
		}
		if rec.Available != want {
			t.Fatalf("step %d: available %d, want %d", i, rec.Available, want)
		}
	}
	// With w=3 ≥ n-c+1 the late phase fully recovers.
	for _, rec := range res.Run.Records[10:] {
		if rec.RecoveredFraction != 1.0 {
			t.Fatalf("late phase recovered %v", rec.RecoveredFraction)
		}
	}
}

// WSchedule values outside [1, n] are clamped by the strategy.
func TestWScheduleClamped(t *testing.T) {
	p, perr := placement.CR(4, 2)
	st := isgcStrategy(t, p, perr, 4)
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 4
	cfg.WSchedule = func(step int) int { return step*100 - 50 } // -50, 50, 150, 250
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Records[0].Available != 1 {
		t.Fatalf("step 0 available %d, want clamp to 1", res.Run.Records[0].Available)
	}
	if res.Run.Records[1].Available != 4 {
		t.Fatalf("step 1 available %d, want clamp to 4", res.Run.Records[1].Available)
	}
}

// Rigid schemes ignore the schedule entirely.
func TestWScheduleIgnoredByRigidSchemes(t *testing.T) {
	st, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 5
	cfg.WSchedule = func(int) int { return 1 }
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Run.Records {
		if rec.Available != 4 {
			t.Fatalf("Sync-SGD available %d, want 4", rec.Available)
		}
	}
}

// Deadline gather: availability varies with who beats the deadline; the
// recorded elapsed time is the deadline when some (but not all) workers
// miss it.
func TestDeadlineGather(t *testing.T) {
	p, perr := placement.CR(4, 2)
	st := isgcStrategy(t, p, perr, 6)
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 30
	cfg.ComputePerPartition = 10 * time.Millisecond
	// Workers 0,1 always slow by 1s; workers 2,3 on time.
	cfg.Profile = straggler.PartialProfile(4, 2, straggler.Constant{D: time.Second}, 9)
	cfg.Deadline = 100 * time.Millisecond
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Run.Records {
		if rec.Available != 2 {
			t.Fatalf("available %d, want the 2 on-time workers", rec.Available)
		}
		if rec.Elapsed != 100*time.Millisecond {
			t.Fatalf("elapsed %v, want the 100ms deadline", rec.Elapsed)
		}
		// Workers 2 and 3 are adjacent in CR(4,2): they conflict, so
		// recovery is exactly 1/2.
		if rec.RecoveredFraction != 0.5 {
			t.Fatalf("recovered %v, want 0.5", rec.RecoveredFraction)
		}
	}
}

// When nobody makes the deadline the master falls back to the fastest
// worker and is charged that worker's arrival time.
func TestDeadlineFallbackToFastest(t *testing.T) {
	p, perr := placement.CR(4, 2)
	st := isgcStrategy(t, p, perr, 7)
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 10
	cfg.ComputePerPartition = 50 * time.Millisecond
	cfg.Upload = 50 * time.Millisecond // base 150ms > deadline
	cfg.Deadline = 10 * time.Millisecond
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Run.Records {
		if rec.Available != 1 {
			t.Fatalf("available %d, want fallback single worker", rec.Available)
		}
		if rec.Elapsed != 150*time.Millisecond {
			t.Fatalf("elapsed %v, want the fastest arrival (150ms), not the deadline", rec.Elapsed)
		}
	}
}

// When everyone beats a generous deadline, all workers contribute and the
// step is charged the last arrival.
func TestDeadlineGenerousAcceptsAll(t *testing.T) {
	p, perr := placement.FR(4, 2)
	st := isgcStrategy(t, p, perr, 8)
	cfg := baseConfig(t, st)
	cfg.MaxSteps = 5
	cfg.ComputePerPartition = 10 * time.Millisecond
	cfg.Deadline = time.Hour
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res.Run.Records {
		if rec.Available != 4 {
			t.Fatalf("available %d, want all", rec.Available)
		}
		if rec.RecoveredFraction != 1.0 {
			t.Fatalf("recovered %v", rec.RecoveredFraction)
		}
		if rec.Elapsed != 20*time.Millisecond {
			t.Fatalf("elapsed %v, want last arrival 20ms", rec.Elapsed)
		}
	}
}
