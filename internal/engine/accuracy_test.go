package engine

import (
	"testing"

	"isgc/internal/dataset"
	"isgc/internal/model"
)

// Classifier workloads record a rising accuracy series; regression
// workloads record zero.
func TestAccuracyRecording(t *testing.T) {
	st, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	// Overlapping clusters (separation 0.8) so accuracy has room to grow.
	hard, err := dataset.SyntheticClusters(240, 6, 3, 0.8, 101)
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(t, st)
	cfg.Data = hard
	cfg.MaxSteps = 150
	res, err := Train(cfg)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Run.Records[0].Accuracy
	last := res.Run.Records[len(res.Run.Records)-1].Accuracy
	if !(last > first) {
		t.Fatalf("accuracy %v → %v, expected improvement", first, last)
	}
	if last < 0.6 {
		t.Fatalf("final accuracy %v too low for the clustered task", last)
	}

	// Regression workload: accuracy stays zero (LinearRegression is not a
	// Classifier).
	d, _, err := dataset.SyntheticLinear(240, 4, 0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := NewSyncSGD(4)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Train(Config{
		Strategy: st2, Model: model.LinearRegression{Features: 4}, Data: d,
		BatchSize: 8, LearningRate: 0.05, W: 4, MaxSteps: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range res2.Run.Records {
		if rec.Accuracy != 0 {
			t.Fatalf("regression run recorded accuracy %v", rec.Accuracy)
		}
	}
}
