package engine

import (
	"testing"
	"time"

	"isgc/internal/dataset"
	"isgc/internal/isgc"
	"isgc/internal/model"
	"isgc/internal/placement"
	"isgc/internal/straggler"
)

// Fig. 11-scale integration: 24 workers, 12 of them straggling with
// exponential delays (mean 1.5 s), CR(24, 2), waiting for the 12 fastest —
// the engine must train end-to-end at the paper's simulation scale, and
// the mean step time must sit near the base compute time because the 12
// non-straggling workers always win the race.
func TestEngineAtFig11Scale(t *testing.T) {
	const n = 24
	d, err := dataset.SyntheticClusters(240, 6, 3, 2.0, 31)
	if err != nil {
		t.Fatal(err)
	}
	p, err := placement.CR(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewISGC(isgc.New(p, 31))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Train(Config{
		Strategy:            st,
		Model:               model.SoftmaxRegression{Features: 6, Classes: 3},
		Data:                d,
		BatchSize:           4,
		LearningRate:        0.1,
		W:                   12,
		MaxSteps:            80,
		ComputePerPartition: 50 * time.Millisecond,
		Upload:              20 * time.Millisecond,
		Profile:             straggler.PartialProfile(n, 12, straggler.Exponential{Mean: 1500 * time.Millisecond}, 7),
		Seed:                31,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Run.Steps() != 80 {
		t.Fatalf("steps = %d", res.Run.Steps())
	}
	// Base time = 2·50 + 20 = 120 ms; the fastest 12 of 24 are exactly the
	// non-straggling half, so every step should cost exactly 120 ms.
	if mean := res.Run.MeanStepTime(); mean != 120*time.Millisecond {
		t.Fatalf("mean step time %v, want 120ms", mean)
	}
	// With 12 consecutive available workers in CR(24,2), the decoder packs
	// them at distance ≥ 2: recovery must be at least the Theorem 10 floor.
	lo, _ := p.AlphaBounds(12)
	for _, rec := range res.Run.Records {
		if rec.Chosen < lo {
			t.Fatalf("step %d chose %d workers, below floor %d", rec.Step, rec.Chosen, lo)
		}
	}
	// Training must still make progress on 12-availability.
	first, last := res.Run.Records[0].Loss, res.Run.FinalLoss()
	if !(last < 0.6*first) {
		t.Fatalf("loss %v → %v: no progress at scale", first, last)
	}
}

// Bursty stragglers integrate with the engine: a two-state Markov fleet
// still trains, and the step-time distribution shows both regimes.
func TestEngineWithBurstyStragglers(t *testing.T) {
	const n = 8
	d, err := dataset.SyntheticClusters(240, 6, 3, 2.0, 33)
	if err != nil {
		t.Fatal(err)
	}
	p, err := placement.CR(n, 2)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewISGC(isgc.New(p, 33))
	if err != nil {
		t.Fatal(err)
	}
	models := make([]straggler.Model, n)
	for i := range models {
		b, err := straggler.NewBursty(
			straggler.None{},
			straggler.Constant{D: 2 * time.Second},
			0.05, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		models[i] = b
	}
	res, err := Train(Config{
		Strategy:     st,
		Model:        model.SoftmaxRegression{Features: 6, Classes: 3},
		Data:         d,
		BatchSize:    4,
		LearningRate: 0.1,
		// w=7 of 8: a step is slow whenever ≥2 workers are simultaneously
		// in the slow Markov state (stationary P(slow) = 0.05/0.25 = 0.2,
		// so P(≥2 of 8) ≈ 0.5 — both regimes appear over 120 steps).
		W:                   7,
		MaxSteps:            120,
		ComputePerPartition: 10 * time.Millisecond,
		Profile:             straggler.NewProfileFromModels(models, 9),
		Seed:                33,
	})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := 0, 0
	for _, rec := range res.Run.Records {
		if rec.Elapsed < 100*time.Millisecond {
			fast++
		} else {
			slow++
		}
	}
	if fast == 0 || slow == 0 {
		t.Fatalf("bursty fleet should produce both fast (%d) and slow (%d) steps", fast, slow)
	}
}
