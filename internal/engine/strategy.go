// Package engine runs distributed SGD training in-process with simulated
// stragglers, under any of the four schemes the paper compares
// (Sec. VIII): synchronous SGD, classic gradient coding (GC), ignore-
// straggler SGD (IS-SGD), and IS-GC over FR/CR/HR placements. It is the
// workhorse behind the Fig. 12 and Fig. 13 reproductions.
package engine

import (
	"fmt"

	"isgc/internal/bitset"
	"isgc/internal/gc"
	"isgc/internal/isgc"
	"isgc/internal/linalg"
	"isgc/internal/placement"
)

// Strategy abstracts one straggler-mitigation scheme: how partitions are
// placed on workers, how many workers the master waits for, and how the
// master recovers a gradient from the coded gradients it received.
//
// Recover returns the recovered gradient ĝ (the plain sum over the
// recovered partitions' mean gradients) and the number of partitions it
// covers; the engine normalizes ĝ by that count so every scheme performs
// an unbiased estimate of the global mean gradient (Assumption 2 of the
// paper), making step counts comparable across schemes.
type Strategy interface {
	// Name identifies the scheme in experiment output, e.g. "IS-GC-FR".
	Name() string
	// N returns the number of workers (== partitions).
	N() int
	// C returns the number of partitions per worker.
	C() int
	// Partitions returns the partitions stored on worker i.
	Partitions(i int) []int
	// WaitFor returns how many of the n workers the master must wait for,
	// given the experimenter's target w. Rigid schemes ignore w: Sync-SGD
	// needs all n, classic GC needs exactly n-c+1. Flexible schemes clamp
	// w into [1, n].
	WaitFor(w int) int
	// Recover decodes the coded gradients of the available workers;
	// coded[i] is nil for stragglers. It returns the recovered gradient ĝ
	// and the sorted list of partitions it covers.
	Recover(avail *bitset.Set, coded [][]float64) (ghat []float64, parts []int, err error)
	// Encode computes worker i's coded upload from the per-partition mean
	// gradients (only the worker's own partitions are read).
	Encode(worker int, grads [][]float64) ([]float64, error)
}

// syncSGD is plain synchronous SGD: c = 1, wait for everyone.
type syncSGD struct {
	n int
}

// NewSyncSGD returns the synchronous SGD baseline.
func NewSyncSGD(n int) (Strategy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: need n > 0, got %d", n)
	}
	return &syncSGD{n: n}, nil
}

func (s *syncSGD) Name() string           { return "Sync-SGD" }
func (s *syncSGD) N() int                 { return s.n }
func (s *syncSGD) C() int                 { return 1 }
func (s *syncSGD) Partitions(i int) []int { return []int{i} }
func (s *syncSGD) WaitFor(int) int        { return s.n }

func (s *syncSGD) Encode(worker int, grads [][]float64) ([]float64, error) {
	if worker < 0 || worker >= s.n {
		return nil, fmt.Errorf("engine: worker %d out of range", worker)
	}
	return linalg.CloneVec(grads[worker]), nil
}

func (s *syncSGD) Recover(avail *bitset.Set, coded [][]float64) ([]float64, []int, error) {
	if avail.Len() != s.n {
		return nil, nil, fmt.Errorf("engine: Sync-SGD needs all %d workers, got %d", s.n, avail.Len())
	}
	var ghat []float64
	for i := 0; i < s.n; i++ {
		if coded[i] == nil {
			return nil, nil, fmt.Errorf("engine: Sync-SGD missing gradient from worker %d", i)
		}
		if ghat == nil {
			ghat = make([]float64, len(coded[i]))
		}
		linalg.AddTo(ghat, coded[i])
	}
	return ghat, allPartitions(s.n), nil
}

// isSGD is ignore-straggler SGD (k-sync SGD): c = 1, sum whatever arrived.
type isSGD struct {
	n int
}

// NewISSGD returns the IS-SGD baseline (Sec. I, Fig. 1(c)).
func NewISSGD(n int) (Strategy, error) {
	if n <= 0 {
		return nil, fmt.Errorf("engine: need n > 0, got %d", n)
	}
	return &isSGD{n: n}, nil
}

func (s *isSGD) Name() string           { return "IS-SGD" }
func (s *isSGD) N() int                 { return s.n }
func (s *isSGD) C() int                 { return 1 }
func (s *isSGD) Partitions(i int) []int { return []int{i} }

func (s *isSGD) WaitFor(w int) int { return clampW(w, s.n) }

func (s *isSGD) Encode(worker int, grads [][]float64) ([]float64, error) {
	if worker < 0 || worker >= s.n {
		return nil, fmt.Errorf("engine: worker %d out of range", worker)
	}
	return linalg.CloneVec(grads[worker]), nil
}

func (s *isSGD) Recover(avail *bitset.Set, coded [][]float64) ([]float64, []int, error) {
	var ghat []float64
	var parts []int
	var err error
	avail.Range(func(i int) bool {
		if i >= s.n || coded[i] == nil {
			err = fmt.Errorf("engine: IS-SGD missing gradient from available worker %d", i)
			return false
		}
		if ghat == nil {
			ghat = make([]float64, len(coded[i]))
		}
		linalg.AddTo(ghat, coded[i])
		parts = append(parts, i) // worker i's sole partition is i
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	return ghat, parts, nil
}

// classicGC wraps the Tandon-style gradient code.
type classicGC struct {
	code *gc.Code
}

// NewClassicGC returns the classic GC baseline over an FR or CR placement.
func NewClassicGC(code *gc.Code) (Strategy, error) {
	if code == nil {
		return nil, fmt.Errorf("engine: nil gc code")
	}
	return &classicGC{code: code}, nil
}

func (s *classicGC) Name() string {
	return fmt.Sprintf("GC-%s", s.code.Placement().Kind())
}
func (s *classicGC) N() int                 { return s.code.Placement().N() }
func (s *classicGC) C() int                 { return s.code.Placement().C() }
func (s *classicGC) Partitions(i int) []int { return s.code.Placement().Partitions(i) }

// WaitFor ignores the target w: classic GC only works at exactly n-c+1.
func (s *classicGC) WaitFor(int) int { return s.code.MinWorkers() }

func (s *classicGC) Encode(worker int, grads [][]float64) ([]float64, error) {
	return s.code.Encode(worker, grads)
}

func (s *classicGC) Recover(avail *bitset.Set, coded [][]float64) ([]float64, []int, error) {
	ghat, err := s.code.Decode(avail, coded)
	if err != nil {
		return nil, nil, err
	}
	return ghat, allPartitions(s.N()), nil
}

// isGC wraps the paper's scheme.
type isGC struct {
	scheme *isgc.Scheme
}

// NewISGC returns the IS-GC strategy over any placement (FR, CR, or HR).
func NewISGC(scheme *isgc.Scheme) (Strategy, error) {
	if scheme == nil {
		return nil, fmt.Errorf("engine: nil isgc scheme")
	}
	return &isGC{scheme: scheme}, nil
}

func (s *isGC) Name() string {
	p := s.scheme.Placement()
	if p.Kind() == placement.KindHR {
		return fmt.Sprintf("IS-GC-HR(c1=%d,c2=%d)", p.C1(), p.C2())
	}
	return fmt.Sprintf("IS-GC-%s", p.Kind())
}
func (s *isGC) N() int                 { return s.scheme.Placement().N() }
func (s *isGC) C() int                 { return s.scheme.Placement().C() }
func (s *isGC) Partitions(i int) []int { return s.scheme.Placement().Partitions(i) }

func (s *isGC) WaitFor(w int) int { return clampW(w, s.N()) }

// isGC implements DecodeCacher by forwarding to the wrapped scheme: IS-GC
// decode depends only on the availability mask, so memoization is sound.

func (s *isGC) EnableDecodeCache(capacity int)           { s.scheme.EnableDecodeCache(capacity) }
func (s *isGC) SetDecodeCacheHooks(onHit, onMiss func()) { s.scheme.SetDecodeCacheHooks(onHit, onMiss) }
func (s *isGC) DecodeCacheStats() (hits, misses uint64)  { return s.scheme.DecodeCacheStats() }

// isGC also implements IncrementalDecoder by forwarding to the scheme's
// repair path (see isgc/incremental.go).
func (s *isGC) EnableIncrementalDecode() { s.scheme.EnableIncrementalDecode() }
func (s *isGC) SetIncrementalHooks(onRepair, onFallback func()) {
	s.scheme.SetIncrementalHooks(onRepair, onFallback)
}
func (s *isGC) IncrementalDecodeCounts() (repairs, fallbacks, fullSolves, cacheSyncs uint64) {
	st := s.scheme.IncrementalDecodeStats()
	return st.Repairs, st.Fallbacks, st.FullSolves, st.CacheSyncs
}

// isGC implements RandStateful so checkpoints capture the decoder's
// tie-break stream position and restores are bit-exact.

func (s *isGC) RandState() (seed int64, draws uint64)     { return s.scheme.RandState() }
func (s *isGC) RestoreRandState(seed int64, draws uint64) { s.scheme.RestoreRandState(seed, draws) }

func (s *isGC) Encode(worker int, grads [][]float64) ([]float64, error) {
	return s.scheme.Encode(worker, grads)
}

func (s *isGC) Recover(avail *bitset.Set, coded [][]float64) ([]float64, []int, error) {
	ghat, parts, _, err := s.scheme.DecodeAndAggregate(avail, coded)
	if err != nil {
		return nil, nil, err
	}
	if ghat == nil {
		return nil, nil, fmt.Errorf("engine: IS-GC recovered nothing (no available workers)")
	}
	return ghat, parts.Slice(), nil
}

func allPartitions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func clampW(w, n int) int {
	if w < 1 {
		return 1
	}
	if w > n {
		return n
	}
	return w
}
