package engine

import (
	"testing"

	"isgc/internal/dataset"
	"isgc/internal/model"
	"isgc/internal/placement"
)

// runWithCompute trains a fixed MLP/CR(8,3) workload at seed 11 under the
// given compute settings and returns the full result.
func runWithCompute(t *testing.T, computePar int, parallel bool, decodeCache int) *Result {
	t.Helper()
	d, err := dataset.SyntheticClusters(240, 6, 3, 1.5, 41)
	if err != nil {
		t.Fatal(err)
	}
	p, err := placement.CR(8, 3)
	if err != nil {
		t.Fatal(err)
	}
	st := isgcStrategy(t, p, nil, 11)
	res, err := Train(Config{
		Strategy:     st,
		Model:        model.MLP{Features: 6, Hidden: 8, Classes: 3},
		Data:         d,
		BatchSize:    8,
		LearningRate: 0.1,
		W:            5,
		MaxSteps:     30,
		Seed:         11,
		Parallel:     parallel,
		ComputePar:   computePar,
		DecodeCache:  decodeCache,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// requireBitIdentical compares two results step by step: every record
// field that derives from float arithmetic or decode choices, plus the
// final parameter vector, must match exactly.
func requireBitIdentical(t *testing.T, name string, ref, got *Result) {
	t.Helper()
	if len(ref.Run.Records) != len(got.Run.Records) {
		t.Fatalf("%s: %d records vs %d", name, len(got.Run.Records), len(ref.Run.Records))
	}
	for s, rr := range ref.Run.Records {
		gr := got.Run.Records[s]
		if rr.Loss != gr.Loss || rr.Accuracy != gr.Accuracy {
			t.Fatalf("%s: step %d loss/acc %v/%v, want %v/%v", name, s, gr.Loss, gr.Accuracy, rr.Loss, rr.Accuracy)
		}
		if rr.Available != gr.Available || rr.Chosen != gr.Chosen ||
			rr.RecoveredFraction != gr.RecoveredFraction || rr.Elapsed != gr.Elapsed {
			t.Fatalf("%s: step %d record differs: %+v vs %+v", name, s, gr, rr)
		}
		if len(rr.Partitions) != len(gr.Partitions) {
			t.Fatalf("%s: step %d partitions %v, want %v", name, s, gr.Partitions, rr.Partitions)
		}
		for j := range rr.Partitions {
			if rr.Partitions[j] != gr.Partitions[j] {
				t.Fatalf("%s: step %d partitions %v, want %v", name, s, gr.Partitions, rr.Partitions)
			}
		}
	}
	for j := range ref.Params {
		if ref.Params[j] != got.Params[j] {
			t.Fatalf("%s: param %d = %v, want %v", name, j, got.Params[j], ref.Params[j])
		}
	}
}

// TestComputeParSeedEquivalence: any pool size must leave the whole run —
// per-step records and final params — bit-identical to the sequential
// path, because parallelism never crosses a partition boundary.
func TestComputeParSeedEquivalence(t *testing.T) {
	ref := runWithCompute(t, 1, false, 0)
	for _, tc := range []struct {
		name       string
		computePar int
		parallel   bool
	}{
		{"compute-par-2", 2, false},
		{"compute-par-4", 4, false},
		{"compute-par-8", 8, false},
		{"legacy-parallel-auto", 0, true},
	} {
		requireBitIdentical(t, tc.name, ref, runWithCompute(t, tc.computePar, tc.parallel, 0))
	}
}

// TestDecodeCacheInEngine: with memoized decode the run must still
// recover the same number of partitions every step (every maximum
// independent set has the same size), and the cache must actually serve
// hits once masks repeat.
func TestDecodeCacheInEngine(t *testing.T) {
	ref := runWithCompute(t, 1, false, 0)
	cached := runWithCompute(t, 1, false, 64)
	for s, rr := range ref.Run.Records {
		cr := cached.Run.Records[s]
		if rr.RecoveredFraction != cr.RecoveredFraction || rr.Chosen != cr.Chosen {
			t.Fatalf("step %d: cached run recovered %v (|I|=%d), want %v (|I|=%d)",
				s, cr.RecoveredFraction, cr.Chosen, rr.RecoveredFraction, rr.Chosen)
		}
	}
}

// TestDecodeCacheStatsViaStrategy checks the DecodeCacher plumbing: the
// strategy exposes the scheme's counters and every step is either a hit
// or a miss.
func TestDecodeCacheStatsViaStrategy(t *testing.T) {
	d, err := dataset.SyntheticClusters(120, 4, 2, 1.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := placement.CR(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := isgcStrategy(t, p, nil, 5)
	const steps = 40
	_, err = Train(Config{
		Strategy:     st,
		Model:        model.LinearRegression{Features: 4},
		Data:         d,
		BatchSize:    8,
		LearningRate: 0.05,
		W:            4,
		MaxSteps:     steps,
		Seed:         5,
		DecodeCache:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	dc, ok := st.(DecodeCacher)
	if !ok {
		t.Fatal("isGC strategy does not implement DecodeCacher")
	}
	hits, misses := dc.DecodeCacheStats()
	// Recover decodes once per step; with only C(6,2)=15 possible
	// fastest-4 masks over 40 steps the cache must see repeats.
	if hits+misses != steps {
		t.Fatalf("hits+misses = %d, want %d", hits+misses, steps)
	}
	if hits == 0 {
		t.Fatal("expected at least one decode-cache hit across repeated masks")
	}
}
