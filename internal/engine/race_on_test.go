//go:build race

package engine

// raceEnabled reports that the race detector instruments this build;
// timing budgets are not meaningful then.
const raceEnabled = true
